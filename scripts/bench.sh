#!/usr/bin/env bash
# bench.sh — run the tracked benchmark families and record the results.
#
# Usage: scripts/bench.sh [-short] [output.json]
#
# Runs the simulator-engine, stack-distance, prediction-service,
# resilient-client, cluster-serving, and sweep/budget-optimization
# benchmark families with
# -benchtime=1x -count=3 (best-of-3 per benchmark) and writes a JSON array
# of {name, ns_op, allocs_op}. The output path comes from the argument,
# else $BENCH_OUT, else BENCH_PR8.json — it is never hardcoded to one PR's
# artifact, so each PR records its own snapshot without editing this
# script. -short drops to -count=1: the CI smoke mode that only proves the
# benchmarks still compile and run.
set -euo pipefail
cd "$(dirname "$0")/.."

count=3
out=${BENCH_OUT:-BENCH_PR8.json}
for arg in "$@"; do
  case "$arg" in
    -short) count=1 ;;
    *) out=$arg ;;
  esac
done

pattern='^(BenchmarkSimulate|BenchmarkRun|BenchmarkStreamRun|BenchmarkAccessCacheHit|BenchmarkTouch|BenchmarkServe|BenchmarkClient|BenchmarkCluster|BenchmarkOptimizeBudgets|BenchmarkBudgetSweepBrute)'
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for pkg in ./internal/sim/backend ./internal/stackdist ./internal/server ./internal/cost; do
  go test "$pkg" -run '^$' -bench "$pattern" -benchtime=1x -count="$count" -benchmem | tee -a "$raw"
done

# The client and cluster benches cross real TCP sockets, where a single
# iteration mostly measures scheduler and connection-state noise; give
# them enough iterations that ns/op is a steady-state average (the
# forwarded-hit vs local-hit ratio is meaningless otherwise).
for pkg in ./internal/client ./internal/cluster; do
  go test "$pkg" -run '^$' -bench "$pattern" -benchtime=50x -count="$count" -benchmem | tee -a "$raw"
done

# Parallel benchmarks additionally run at fixed -cpu points so per-core
# scaling is comparable across BENCH_*.json snapshots from different
# hosts; their names keep the -N GOMAXPROCS label (the awk below strips
# it only from serial benchmarks).
for pkg in ./internal/sim/backend ./internal/server; do
  go test "$pkg" -run '^$' -bench 'Parallel$' -benchtime=1x -count="$count" -cpu 1,2,4 -benchmem | tee -a "$raw"
done

awk -v out="$out" '
/^Benchmark/ {
    name = $1
    if (name !~ /Parallel/)
        sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix from serial benches
    ns = ""; al = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "allocs/op") al = $(i - 1)
    }
    if (ns == "") next
    if (!(name in best)) order[++n] = name
    if (!(name in best) || ns + 0 < best[name]) {
        best[name] = ns + 0
        allocs[name] = al + 0
    }
}
END {
    printf "[\n" > out
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "  {\"name\": \"%s\", \"ns_op\": %d, \"allocs_op\": %d}%s\n", \
            name, best[name], allocs[name], (i < n ? "," : "") > out
    }
    printf "]\n" > out
}' "$raw"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks, best of $count)"
