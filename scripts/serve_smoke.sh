#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the chc-serve service.
#
# Builds the server, starts it on a scratch port, waits for /healthz,
# checks one golden /v1/predict answer against the chc-model CLI (the two
# must be byte-identical: both render through core.RenderResult), verifies
# the repeat request is a cache hit, and shuts the server down gracefully.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18080
bin=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/chc-serve" ./cmd/chc-serve
go build -o "$bin/chc-model" ./cmd/chc-model
go build -o "$bin/chc-sweep" ./cmd/chc-sweep

"$bin/chc-serve" -addr "$addr" &
pid=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$pid" 2>/dev/null; then echo "server died" >&2; exit 1; fi
  sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS "http://$addr/readyz" >/dev/null
echo "healthz/readyz ok"

req='{"config":{"name":"C4"},"workload":{"name":"fft"}}'
api_text=$(curl -fsS -X POST -d "$req" "http://$addr/v1/predict" | jq -r .text)
cli_text=$("$bin/chc-model" -config C4 -workload fft)

# jq -r strips at most one trailing newline, as does $() on the CLI output.
if [ "$api_text" != "$cli_text" ]; then
  echo "FAIL: /v1/predict text diverges from chc-model output" >&2
  diff <(printf '%s' "$api_text") <(printf '%s\n' "$cli_text") >&2 || true
  exit 1
fi
echo "golden predict ok (byte-identical to chc-model)"

hit=$(curl -fsS -D - -o /dev/null -X POST -d "$req" "http://$addr/v1/predict" |
  tr -d '\r' | awk 'tolower($1)=="x-cache:"{print $2}')
if [ "$hit" != "hit" ]; then
  echo "FAIL: repeat request X-Cache=$hit, want hit" >&2
  exit 1
fi
echo "cache hit ok"

# Sweep golden: every predict point in the NDJSON stream must be the same
# JSON value the equivalent /v1/predict request returns (both sides pass
# through jq -c, so equal values compare byte-identical).
sweep_req='{"configs":[{"name":"C4"},{"name":"C8"}],"workloads":[{"name":"fft"},{"name":"lu"}],"budgets":[5000,8000]}'
sweep=$(curl -fsS -X POST -d "$sweep_req" "http://$addr/v1/sweep")
summary=$(printf '%s\n' "$sweep" | tail -n 1)
if [ "$(jq -r .complete <<<"$summary")" != "true" ] || [ "$(jq -r .points <<<"$summary")" != "6" ] \
   || [ "$(jq -r .errors <<<"$summary")" != "0" ]; then
  echo "FAIL: sweep summary $summary, want complete 6-point error-free grid" >&2
  exit 1
fi
idx=0
for cfg in C4 C8; do
  for wl in fft lu; do
    line=$(printf '%s\n' "$sweep" | sed -n "$((idx + 1))p")
    point=$(jq -c .response <<<"$line")
    direct=$(curl -fsS -X POST -d "{\"config\":{\"name\":\"$cfg\"},\"workload\":{\"name\":\"$wl\"}}" \
      "http://$addr/v1/predict" | jq -c .)
    if [ "$point" != "$direct" ]; then
      echo "FAIL: sweep point $cfg/$wl diverges from /v1/predict" >&2
      diff <(printf '%s' "$point") <(printf '%s' "$direct") >&2 || true
      exit 1
    fi
    idx=$((idx + 1))
  done
done
echo "sweep golden ok (NDJSON points byte-identical to /v1/predict)"

# The sweep warmed the cache: its points answer single requests as hits.
hit=$(curl -fsS -D - -o /dev/null -X POST \
  -d '{"config":{"name":"C8"},"workload":{"name":"lu"}}' "http://$addr/v1/predict" |
  tr -d '\r' | awk 'tolower($1)=="x-cache:"{print $2}')
if [ "$hit" != "hit" ]; then
  echo "FAIL: predict after sweep X-Cache=$hit, want hit" >&2
  exit 1
fi
echo "sweep warms predict cache ok"

# The chc-sweep driver reproduces the paper's full Fig. 2-4 grid in one
# request (exit 2 if any point errored).
"$bin/chc-sweep" -addr "http://$addr" >/dev/null
echo "chc-sweep full-grid ok"

curl -fsS "http://$addr/metrics" | grep -q '"cache_hits"'
echo "metrics ok"

kill -TERM "$pid"
wait "$pid"
echo "graceful shutdown ok"
echo "serve smoke: PASS"
