#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of chc-serve cluster mode.
#
# Starts three real chc-serve processes on one consistent-hash ring,
# posts the golden predict request through every entry node, and demands
# the three answers be byte-identical (whoever owns the key, whichever
# door it enters). Exactly one node may have computed it: across the
# three first-contact responses there must be exactly one X-Cache: miss,
# with the others hit/dedup relays. Then one non-entry node is killed
# mid-cluster and every surviving node must keep answering the same
# bytes — dead-owner keys degrade to local compute, never to an error.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; wait "${pids[@]}" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/chc-serve" ./cmd/chc-serve

a=127.0.0.1:18091
b=127.0.0.1:18092
c=127.0.0.1:18093
peers="a=http://$a,b=http://$b,c=http://$c"

for node in a b c; do
  addr_var=${!node}
  "$bin/chc-serve" -addr "$addr_var" -node "$node" -peers "$peers" \
    -probe-interval 200ms >"$bin/$node.log" 2>&1 &
  pids+=($!)
done

for addr in "$a" "$b" "$c"; do
  for i in $(seq 1 50); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  curl -fsS "http://$addr/readyz" >/dev/null
done

# Wait for every node's probed health view to converge (a node that came
# up first may have probed a not-yet-listening peer and marked it down
# for one probe interval; asserting placement before convergence would
# race that window).
for addr in "$a" "$b" "$c"; do
  for i in $(seq 1 50); do
    if curl -fsS "http://$addr/metrics" |
      jq -e '.cluster.peers | all(.healthy)' >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
done
echo "3 nodes up, health view converged"

req='{"config":{"name":"C4"},"workload":{"name":"fft"}}'

# First contact through each entry node: identical bytes, one miss total.
misses=0
for addr in "$a" "$b" "$c"; do
  curl -fsS -D "$bin/h.$addr" -o "$bin/body.$addr" -X POST -d "$req" "http://$addr/v1/predict"
  cache=$(tr -d '\r' <"$bin/h.$addr" | awk 'tolower($1)=="x-cache:"{print $2}')
  via=$(tr -d '\r' <"$bin/h.$addr" | awk 'tolower($1)=="x-cluster-via:"{print $2}')
  echo "  entry $addr: X-Cache=$cache via=${via:-hit}"
  if [ "$cache" = "miss" ]; then misses=$((misses + 1)); fi
done
if ! cmp -s "$bin/body.$a" "$bin/body.$b" || ! cmp -s "$bin/body.$a" "$bin/body.$c"; then
  echo "FAIL: predict bodies differ across entry nodes" >&2
  exit 1
fi
if [ "$misses" -ne 1 ]; then
  echo "FAIL: $misses cluster-wide misses for one key via three entries, want 1" >&2
  exit 1
fi
echo "golden predict byte-identical across 3 entry nodes, computed once"

# Every node reports the cluster view in /metrics.
for addr in "$a" "$b" "$c"; do
  curl -fsS "http://$addr/metrics" | jq -e '.cluster.ownership_fraction' >/dev/null
done
echo "cluster metrics ok"

# Kill node c (SIGKILL: a crash, not a drain) and re-check through the
# survivors with a fresh key, then the golden key again.
kill -9 "${pids[2]}"
wait "${pids[2]}" 2>/dev/null || true
sleep 0.5 # let health probes notice

fresh='{"config":{"name":"C8"},"workload":{"name":"lu"}}'
curl -fsS -o "$bin/fresh.a" -X POST -d "$fresh" "http://$a/v1/predict"
curl -fsS -o "$bin/fresh.b" -X POST -d "$fresh" "http://$b/v1/predict"
if ! cmp -s "$bin/fresh.a" "$bin/fresh.b"; then
  echo "FAIL: fresh key bodies differ across survivors after node death" >&2
  exit 1
fi
curl -fsS -o "$bin/again.a" -X POST -d "$req" "http://$a/v1/predict"
curl -fsS -o "$bin/again.b" -X POST -d "$req" "http://$b/v1/predict"
if ! cmp -s "$bin/again.a" "$bin/body.$a" || ! cmp -s "$bin/again.b" "$bin/body.$a"; then
  echo "FAIL: golden key bytes changed after node death" >&2
  exit 1
fi
echo "kill-one-node ok (survivors byte-identical, no errors)"

kill -TERM "${pids[0]}" "${pids[1]}"
wait "${pids[0]}" "${pids[1]}" 2>/dev/null || true
echo "cluster smoke: PASS"
