#!/usr/bin/env bash
# chaos_smoke.sh — build and run the chc-chaos resilience harness under
# every fault profile, seed-pinned so the run is reproducible.
#
# Usage: scripts/chaos_smoke.sh [seed]
#
# The harness starts in-process chc-serve instances under each
# fault-injection profile (latency, errors, panics, saturation, timeouts,
# mixed) and checks the resilience invariants: byte-identical cached
# responses, exactly-once single-flight computation, the 429 + Retry-After
# shedding contract, the JSON error contract on every non-2xx, and drain
# completing in-flight work. Non-zero exit means an invariant broke.
set -euo pipefail
cd "$(dirname "$0")/.."

seed=${1:-1}

go build -o /tmp/chc-chaos ./cmd/chc-chaos
/tmp/chc-chaos -seed "$seed" -profile all -requests 400 -concurrency 8

# Cluster chaos: 3 in-process nodes on one ring, soaked through the
# multi-base client while one node is killed and another drained —
# byte-identity across entry nodes, compute-at-most-once, and the error
# contract must survive both.
/tmp/chc-chaos -seed "$seed" -cluster 3 -requests 400 -concurrency 8
