#!/usr/bin/env bash
# bench_compare.sh — diff two bench.sh JSON snapshots and flag regressions.
#
# Usage: scripts/bench_compare.sh BASE.json NEW.json [threshold_pct]
#
# Compares ns/op for every benchmark present in both files and prints a
# delta table. Exits non-zero when any benchmark matching
# ^BenchmarkSimulate, ^BenchmarkServePredict, or ^BenchmarkCluster
# regressed by more than the
# threshold (default 15%). Other families are reported but never gate:
# they are tracked for trend, not enforced, because single-run CI hosts
# are too noisy to hold every microbenchmark to a bound.
#
# CI wires this as a soft gate (continue-on-error) against the newest
# checked-in BENCH_*.json: a regression turns the step red for a human to
# look at without blocking unrelated work, since shared runners routinely
# show >15% swings that no code change caused.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: scripts/bench_compare.sh BASE.json NEW.json [threshold_pct]" >&2
  exit 2
fi
base=$1
new=$2
threshold=${3:-15}

for f in "$base" "$new"; do
  if [ ! -f "$f" ]; then
    echo "bench_compare: no such file: $f" >&2
    exit 2
  fi
done

# The JSON is the line-per-entry array bench.sh emits; field extraction by
# sed keeps this runnable with no dependencies beyond POSIX tools + awk.
extract() {
  sed -n 's/.*"name": *"\([^"]*\)".*"ns_op": *\([0-9]*\).*/\1 \2/p' "$1"
}

extract "$base" | sort >/tmp/bench_base.$$
extract "$new" | sort >/tmp/bench_new.$$
trap 'rm -f /tmp/bench_base.$$ /tmp/bench_new.$$' EXIT

join /tmp/bench_base.$$ /tmp/bench_new.$$ | awk -v thr="$threshold" '
BEGIN {
    printf "%-44s %14s %14s %9s\n", "benchmark", "base ns/op", "new ns/op", "delta"
    fail = 0
}
{
    name = $1; old = $2 + 0; cur = $3 + 0
    delta = (old > 0) ? (cur - old) / old * 100 : 0
    mark = ""
    gated = (name ~ /^BenchmarkSimulate/ || name ~ /^BenchmarkServePredict/ || name ~ /^BenchmarkCluster/)
    if (gated && delta > thr) { mark = "  << REGRESSION"; fail = 1 }
    else if (delta > thr)     { mark = "  (ungated)" }
    printf "%-44s %14d %14d %+8.1f%%%s\n", name, old, cur, delta, mark
}
END {
    if (fail) {
        printf "\nFAIL: gated benchmark regressed more than %s%% ns/op\n", thr
        exit 1
    }
    printf "\nOK: no gated benchmark regressed more than %s%%\n", thr
}'
