#!/usr/bin/env bash
# Build and run the repository's static-analysis suite (cmd/chc-lint) over
# every package. Exits nonzero on any finding, so CI can gate on it the
# same way it gates on go vet.
#
# Usage: scripts/lint.sh [chc-lint flags] [packages...]
# Arguments pass straight through to chc-lint (which defaults to ./...),
# so `scripts/lint.sh -json` works for tooling.
set -euo pipefail
cd "$(dirname "$0")/.."

go build -o /tmp/chc-lint ./cmd/chc-lint
/tmp/chc-lint "$@"
echo "chc-lint: clean"
