// Package stopwatch is the one place reproduction code may touch the wall
// clock. Packages marked //chc:deterministic must not call time.Now — a
// timestamp formatted into an artifact makes runs differ byte-for-byte —
// but measuring *how long* something took is part of the paper's own
// methodology (§5.3 compares model evaluation time against simulation
// time). The compromise: this tiny, unmarked, auditable package hands out
// elapsed durations and nothing else. A duration can still be rendered,
// but only an artifact that declares itself non-deterministic
// (Artifact.Deterministic == false) may do so; detorder keeps everything
// else honest.
package stopwatch

import "time"

// Start begins timing and returns a function that reports the time elapsed
// since the call to Start.
func Start() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration { return time.Since(t0) }
}
