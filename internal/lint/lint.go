// Package lint is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface this repository needs: named
// analyzers that walk type-checked packages and report position-tagged
// diagnostics. It exists because the repo's correctness story — byte-identical
// reproduction artifacts, typed errors surviving wrapping, lock-guarded
// shared state — rests on conventions `go vet` cannot see, and the build
// environment is hermetic (no module downloads), so the framework itself
// has to live in-tree on the standard library alone.
//
// The API mirrors go/analysis closely enough that the analyzers in the
// subpackages (detorder, floateq, errwrap, guardedby) could be ported to
// real *analysis.Analyzer values by changing imports only.
//
// Two comment directives drive the suite:
//
//   - `//chc:deterministic` in a package's doc block declares that the
//     package is part of the reproduction pipeline and must be exactly
//     reproducible run-to-run. detorder and floateq only fire inside
//     marked packages.
//   - `//chc:allow <analyzer> [-- reason]` on the offending line (or the
//     line above it) suppresses one diagnostic. Suppressions are for code
//     whose wall-clock or ordering behaviour is the measurement itself
//     (e.g. the §5.3 model-vs-simulator speed comparison); they are not a
//     substitute for fixing order-dependent rendering.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //chc:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives diagnostics that survived suppression checks.
	report func(Diagnostic)
	// allowed maps filename → line → analyzer names suppressed there.
	allowed map[string]map[int][]string
	// deterministic caches the //chc:deterministic marker lookup.
	deterministic *bool
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless a `//chc:allow <name>`
// directive on the same line or the line immediately above suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

var allowRe = regexp.MustCompile(`^//chc:allow\s+([a-z0-9_,]+)`)

func (p *Pass) suppressed(pos token.Position) bool {
	if p.allowed == nil {
		p.allowed = map[string]map[int][]string{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					byLine := p.allowed[cp.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						p.allowed[cp.Filename] = byLine
					}
					names := strings.Split(m[1], ",")
					// A directive on its own line covers the next line;
					// a trailing directive covers its own line.
					byLine[cp.Line] = append(byLine[cp.Line], names...)
				}
			}
		}
	}
	byLine := p.allowed[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// Deterministic reports whether the package carries the
// `//chc:deterministic` marker in any of its file comments (by convention
// it sits in the package doc block).
func (p *Pass) Deterministic() bool {
	if p.deterministic != nil {
		return *p.deterministic
	}
	det := false
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == "//chc:deterministic" {
					det = true
				}
			}
		}
	}
	p.deterministic = &det
	return det
}

// CalleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, type conversions, and calls of function-typed values.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes a package-level function (not a
// method) named one of names from the package with the given import path.
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the combined
// diagnostics sorted by file, line, and column — a deterministic order, as
// befits the suite.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
