// Package lint is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface this repository needs: named
// analyzers that walk type-checked packages and report position-tagged
// diagnostics. It exists because the repo's correctness story — byte-identical
// reproduction artifacts, typed errors surviving wrapping, lock-guarded
// shared state — rests on conventions `go vet` cannot see, and the build
// environment is hermetic (no module downloads), so the framework itself
// has to live in-tree on the standard library alone.
//
// The API mirrors go/analysis closely enough that the per-package
// analyzers in the subpackages (atomics, detorder, errwrap, floateq,
// guardedby, hotalloc, leakcheck) could be ported to real
// *analysis.Analyzer values by changing imports only. Analyzers that need
// whole-program state (lockorder) additionally set NewState/Finish: the
// runner threads one shared accumulator through every package's Run and
// calls Finish once at the end, the moral equivalent of go/analysis
// facts. Flow-sensitive analyzers build per-function control-flow graphs
// with the sibling cfg package and model lock identity with the locks
// package.
//
// Three comment directives drive the suite:
//
//   - `//chc:deterministic` in a package's doc block declares that the
//     package is part of the reproduction pipeline and must be exactly
//     reproducible run-to-run. detorder and floateq only fire inside
//     marked packages.
//   - `//chc:hotpath` in a function's doc block declares the function is
//     on a measured hot path; hotalloc polices allocation-prone constructs
//     inside it (and inside its function literals).
//   - `//chc:allow <analyzer> [-- reason]` on the offending line (or the
//     line above it) suppresses one diagnostic. Suppressions are for code
//     whose wall-clock or ordering behaviour is the measurement itself
//     (e.g. the §5.3 model-vs-simulator speed comparison) or for provably
//     cold branches inside hot functions; they are not a substitute for
//     fixing order-dependent rendering.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //chc:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// NewState, if non-nil, creates per-lint.Run state. The same value is
	// exposed as Pass.State to every package's Run and handed to Finish —
	// the accumulator of whole-program analyses (lockorder's acquisition
	// graph). Keeping state per lint.Run, not per Analyzer value, keeps the
	// package-level Analyzer singletons reusable across runs and tests.
	NewState func() any
	// Finish, if non-nil, runs once after every package's Run: the
	// program-level half of a whole-program analysis. Reported diagnostics
	// pass the same //chc:allow filter as per-package ones, with
	// directives collected from every analyzed file.
	Finish func(state any, report func(Diagnostic)) error
}

// A Pass provides one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// State is the analyzer's per-lint.Run accumulator (NewState's value,
	// shared across packages); nil for purely per-package analyzers.
	State any

	// report receives diagnostics that survived suppression checks.
	report func(Diagnostic)
	// sup filters diagnostics through //chc:allow directives; shared by
	// every pass of one lint.Run.
	sup *suppressor
	// deterministic caches the //chc:deterministic marker lookup.
	deterministic *bool
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless a `//chc:allow <name>`
// directive on the same line or the line immediately above suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.sup.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

var allowRe = regexp.MustCompile(`^//chc:allow\s+([a-z0-9_,]+)`)

// suppressor is the //chc:allow directive table of one lint.Run, collected
// from every analyzed file so both per-package and Finish-time diagnostics
// consult the same directives.
type suppressor struct {
	// allowed maps filename → line → analyzer names suppressed there.
	allowed map[string]map[int][]string
}

func newSuppressor(pkgs []*Package) *suppressor {
	s := &suppressor{allowed: map[string]map[int][]string{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					cp := pkg.Fset.Position(c.Pos())
					byLine := s.allowed[cp.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						s.allowed[cp.Filename] = byLine
					}
					names := strings.Split(m[1], ",")
					// A directive on its own line covers the next line;
					// a trailing directive covers its own line.
					byLine[cp.Line] = append(byLine[cp.Line], names...)
				}
			}
		}
	}
	return s
}

func (s *suppressor) suppressed(analyzer string, pos token.Position) bool {
	byLine := s.allowed[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// Deterministic reports whether the package carries the
// `//chc:deterministic` marker in any of its file comments (by convention
// it sits in the package doc block).
func (p *Pass) Deterministic() bool {
	if p.deterministic != nil {
		return *p.deterministic
	}
	det := false
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == "//chc:deterministic" {
					det = true
				}
			}
		}
	}
	p.deterministic = &det
	return det
}

// CalleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, type conversions, and calls of function-typed values.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes a package-level function (not a
// method) named one of names from the package with the given import path.
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package — then each analyzer's
// Finish across the whole package set — and returns the combined
// diagnostics sorted by file, line, and column — a deterministic order, as
// befits the suite.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sup := newSuppressor(pkgs)
	states := make(map[*Analyzer]any, len(analyzers))
	for _, a := range analyzers {
		if a.NewState != nil {
			states[a] = a.NewState()
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				State:     states[a],
				sup:       sup,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		report := func(d Diagnostic) {
			d.Analyzer = name
			if sup.suppressed(name, d.Pos) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Finish(states[a], report); err != nil {
			return nil, fmt.Errorf("lint: %s finish: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
