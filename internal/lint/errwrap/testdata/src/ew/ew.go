// Package ew exercises the errwrap analyzer. errwrap needs no package
// marker: typed errors must survive wrapping everywhere.
package ew

import (
	"errors"
	"fmt"
)

// SaturationError mirrors the repo's typed queueing error: it only stays
// visible to errors.As if every wrap on the way up uses %w.
type SaturationError struct{ Rho float64 }

func (e *SaturationError) Error() string { return fmt.Sprintf("saturated: rho=%g", e.Rho) }

func flattenV(err error) error {
	return fmt.Errorf("solving: %v", err) // want "error formatted with %v; use %w"
}

func flattenS(err error) error {
	return fmt.Errorf("solving: %s", err) // want "error formatted with %s; use %w"
}

func flattenTyped(e *SaturationError) error {
	return fmt.Errorf("model: %v", e) // want "error formatted with %v; use %w"
}

func flattenSecond(name string, err error) error {
	return fmt.Errorf("running %s: %v", name, err) // want "error formatted with %v; use %w"
}

func starWidth(err error) error {
	return fmt.Errorf("%*d things went wrong: %v", 5, 3, err) // want "error formatted with %v; use %w"
}

// wrap is the approved idiom.
func wrap(err error) error {
	return fmt.Errorf("solving: %w", err)
}

// nonError formats a plain value: %v is fine.
func nonError(rho float64) error {
	return fmt.Errorf("queueing: utilization %v out of range", rho)
}

// errorString formats the message, not the error: fine (the cause is
// deliberately not propagated, and no error value is flattened).
func errorString(err error) error {
	return fmt.Errorf("solving: %s", err.Error())
}

// percentLiteral must not confuse the verb scanner.
func percentLiteral(err error) error {
	return fmt.Errorf("100%% failure: %w", err)
}

// indexed formats are skipped (conservative).
func indexed(err error) error {
	return fmt.Errorf("%[1]v", err)
}

// notErrorf: other fmt functions are out of scope — a log line does not
// need to preserve the error chain.
func notErrorf(err error) string {
	return fmt.Sprintf("failed: %v", err)
}

// allowed demonstrates a justified suppression: the cause is deliberately
// flattened at an API boundary.
func allowed(err error) error {
	//chc:allow errwrap -- fixture: flattening at the boundary on purpose
	return fmt.Errorf("redacted: %v", err)
}

var errSentinel = errors.New("sentinel")

func sentinelWrap() error {
	return fmt.Errorf("op: %w", errSentinel)
}
