// Package errwrap keeps typed errors inspectable across layers: a
// fmt.Errorf that formats an error argument with %v or %s flattens it to
// text, so errors.Is/errors.As stop seeing the cause. The repo depends on
// exactly this — queueing.SaturationError carries rho from the M/D/1 solver
// through core.Evaluate up to chc-serve's 422 responses — so every error
// argument to fmt.Errorf must travel under %w.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"memhier/internal/lint"
)

// Analyzer flags fmt.Errorf calls that format an error with %v/%s.
var Analyzer = &lint.Analyzer{
	Name: "errwrap",
	Doc: `errwrap reports fmt.Errorf calls whose format string applies %v or %s
to an argument of type error. Use %w so the wrapped error stays visible to
errors.Is and errors.As (typed errors like queueing.SaturationError must
survive wrapping across layers). Formats using explicit argument indexes
(%[1]v) are skipped.`,
	Run: run,
}

func run(pass *lint.Pass) error {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !pass.IsPkgFunc(call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := constantString(pass, call.Args[0])
			if !ok || strings.Contains(format, "%[") {
				return true
			}
			for _, v := range verbs(format) {
				argIdx := 1 + v.arg
				if v.verb != 'v' && v.verb != 's' {
					continue
				}
				if argIdx >= len(call.Args) {
					continue // malformed format; vet's printf check owns this
				}
				arg := call.Args[argIdx]
				t := pass.TypesInfo.Types[arg].Type
				if t == nil || !types.Implements(t, errIface) {
					continue
				}
				pass.Reportf(arg.Pos(), "error formatted with %%%c; use %%w so the cause survives errors.Is/errors.As", v.verb)
			}
			return true
		})
	}
	return nil
}

func constantString(pass *lint.Pass, e ast.Expr) (string, bool) {
	tv := pass.TypesInfo.Types[e]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verb is one conversion in a format string and the index of the argument
// it consumes (0-based over the variadic args).
type verb struct {
	verb rune
	arg  int
}

// verbs scans a Printf-style format, accounting for * width/precision
// arguments. It is deliberately simpler than fmt's scanner: explicit
// argument indexes are rejected upstream.
func verbs(format string) []verb {
	var out []verb
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue
		}
		// flags, width, precision — '*' consumes an argument.
		for i < len(runes) {
			c := runes[i]
			if c == '*' {
				arg++
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.", c) || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(runes) {
			break
		}
		out = append(out, verb{verb: runes[i], arg: arg})
		arg++
	}
	return out
}
