package errwrap_test

import (
	"testing"

	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "testdata/src/ew", errwrap.Analyzer)
}
