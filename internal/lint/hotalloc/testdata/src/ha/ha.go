// Package ha exercises the hotalloc analyzer: allocation-prone constructs
// are flagged only inside //chc:hotpath-marked functions.
package ha

import (
	"fmt"
	"strconv"
)

type table struct {
	m    map[string]int
	keys []string
}

// scan iterates the map and grows an unsized slice: both hot-path smells.
//chc:hotpath
func (t *table) scan(out []int) []int {
	for k := range t.m { // want "map iteration on a hot path"
		out = append(out, t.m[k]) // want "append to out without preallocation on a hot path"
	}
	return out
}

// scanKeys walks the slice kept alongside the map, into a presized
// destination: the approved idiom.
//chc:hotpath
func (t *table) scanKeys() []int {
	out := make([]int, 0, len(t.keys))
	for _, k := range t.keys {
		out = append(out, t.m[k])
	}
	return out
}

// format reaches for fmt where strconv does the job.
//chc:hotpath
func format(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf on a hot path"
}

// formatFast is the fix.
//chc:hotpath
func formatFast(n int) string {
	return strconv.Itoa(n)
}

func sink(x any) { _ = x }

// boxing passes a concrete value where the parameter is an interface.
//chc:hotpath
func boxing(v int) {
	sink(v) // want "passing concrete int as interface"
}

// boxingAssign boxes through an assignment.
//chc:hotpath
func boxingAssign(v int) any {
	var x any
	x = v // want "assigning concrete int to interface"
	return x
}

// boxingConvert boxes through an explicit conversion.
//chc:hotpath
func boxingConvert(v int) {
	sink(any(v)) // want "conversion to any boxes a concrete value"
}

// closureInHot inherits the marker: the literal runs on the hot path too.
//chc:hotpath
func closureInHot(ns []int) func() string {
	return func() string {
		return fmt.Sprint(len(ns)) // want "fmt.Sprint on a hot path"
	}
}

// cold is unmarked: the same constructs are fine off the hot path.
func cold(t *table) string {
	s := ""
	for k := range t.m {
		s += k
	}
	return fmt.Sprintf("%q", s)
}

// coldError keeps a justified fmt on a cold error path inside a hot
// function, with the repo directive documenting why.
//chc:hotpath
func coldError(n int) (string, error) {
	if n < 0 {
		//chc:allow hotalloc -- fixture: cold path, the request already failed
		return "", fmt.Errorf("negative: %d", n)
	}
	return strconv.Itoa(n), nil
}
