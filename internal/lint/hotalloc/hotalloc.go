// Package hotalloc polices allocation discipline inside functions marked
// `//chc:hotpath` in their doc comment. The paper's measurements live or
// die on the per-access cost of the simulator scan loop and the per-request
// cost of the serve hit path; a stray fmt.Sprintf or interface boxing in
// either one shows up directly as memory-hierarchy noise in the numbers
// the repo exists to reproduce.
//
// Inside a marked function (and any function literal it contains — closures
// returned by a hot constructor run on the hot path too), the analyzer
// flags:
//
//   - calls into package fmt: every fmt call allocates (boxing into ...any
//     at minimum) and formats reflectively;
//   - map iteration (range over a map): hidden iterator state, random
//     order, and no way for the compiler to elide bounds work — hot code
//     should walk a slice;
//   - append to a slice never pre-allocated in the function: growth
//     reallocates and copies; make([]T, 0, n) first;
//   - implicit interface conversions at call arguments, assignments, and
//     returns: boxing a concrete value into an interface (including any
//     and error) usually heap-allocates.
//
// Cold error paths inside hot functions (the "cannot happen" guards) keep
// their fmt.Errorf with a `//chc:allow hotalloc -- reason` line — the
// directive is the documentation that the path is cold.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"memhier/internal/lint"
	"memhier/internal/lint/locks"
)

// Analyzer flags allocation-prone constructs in //chc:hotpath functions.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc: `hotalloc reports allocation-prone constructs — fmt calls, map iteration,
append without preallocation, implicit interface boxing — inside functions
whose doc comment carries the //chc:hotpath marker. Cold paths within a hot
function are justified line-by-line with //chc:allow hotalloc.`,
	Run: run,
}

const marker = "//chc:hotpath"

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !marked(fn.Doc) {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil
}

func marked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// checkBody flags hot-path hazards in body, including nested literals.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	prealloc := preallocated(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, x, prealloc)
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "map iteration on a hot path: random order and per-iteration overhead; keep a slice alongside the map")
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, x)
		}
		return true
	})
}

// checkCall flags fmt calls, unpreallocated appends, interface-boxing
// arguments, and conversions to interface types.
func checkCall(pass *lint.Pass, call *ast.CallExpr, prealloc map[string]bool) {
	// Type conversion to an interface: any(x), error(e)-style boxing.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && !types.IsInterface(atv.Type) && !isNil(atv) {
				pass.Reportf(call.Pos(), "conversion to %s boxes a concrete value on a hot path", types.TypeString(tv.Type, nil))
			}
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(pass, id, "append") {
		// Builtin append: require the destination to be preallocated
		// somewhere in this function.
		if len(call.Args) > 0 {
			if key, ok := sliceKey(pass, call.Args[0]); ok && !prealloc[key] {
				pass.Reportf(call.Pos(), "append to %s without preallocation on a hot path: growth reallocates and copies; make it with capacity first", key)
			}
		}
		return
	}
	fn := pass.CalleeFunc(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s on a hot path allocates and formats reflectively; use strconv or precomputed strings", fn.Name())
		return
	}
	// Implicit boxing at call arguments: concrete value passed where the
	// parameter is an interface.
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			pt = sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := pt.(*types.Slice); ok && call.Ellipsis == token.NoPos {
				pt = s.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if atv, ok := pass.TypesInfo.Types[arg]; ok && !types.IsInterface(atv.Type) && !isNil(atv) {
			pass.Reportf(arg.Pos(), "passing concrete %s as interface %s boxes it on a hot path", types.TypeString(atv.Type, nil), types.TypeString(pt, nil))
		}
	}
}

// checkAssign flags assignments that box a concrete value into an
// interface-typed destination.
func checkAssign(pass *lint.Pass, as *ast.AssignStmt) {
	if as.Tok == token.DEFINE || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		ltv, ok := pass.TypesInfo.Types[as.Lhs[i]]
		if !ok || !types.IsInterface(ltv.Type) {
			continue
		}
		rtv, ok := pass.TypesInfo.Types[as.Rhs[i]]
		if !ok || types.IsInterface(rtv.Type) || isNil(rtv) {
			continue
		}
		pass.Reportf(as.Rhs[i].Pos(), "assigning concrete %s to interface %s boxes it on a hot path", types.TypeString(rtv.Type, nil), types.TypeString(ltv.Type, nil))
	}
}

func isNil(tv types.TypeAndValue) bool {
	_, isNil := tv.Type.(*types.Basic)
	if !isNil {
		return false
	}
	return tv.Type.(*types.Basic).Kind() == types.UntypedNil
}

// isBuiltin reports whether id names the builtin of the given name.
func isBuiltin(pass *lint.Pass, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// sliceKey names an append destination well enough to match it against
// make() sites: reuses the lock resolver's selector-chain reduction.
func sliceKey(pass *lint.Pass, e ast.Expr) (string, bool) {
	key, _, ok := locks.Resolve(pass.TypesInfo, e)
	if !ok {
		return "", false
	}
	return key.Root.Name() + key.Path, true
}

// preallocated collects the names of slice destinations given capacity via
// make anywhere in the function (make([]T, n) or make([]T, 0, n)).
func preallocated(pass *lint.Pass, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !isBuiltin(pass, id, "make") {
				continue
			}
			if key, ok := sliceKey(pass, as.Lhs[i]); ok {
				out[key] = true
			}
		}
		return true
	})
	return out
}
