package hotalloc_test

import (
	"testing"

	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/ha", hotalloc.Analyzer)
}
