package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds soft type-checking errors. Analysis still runs on a
	// package with type errors (the AST and partial type info exist), but
	// drivers should surface them: a finding in unparseable code is noise.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load resolves the given `go list` patterns (e.g. "./...") to packages,
// parses their non-test Go files, and type-checks them. All packages share
// one FileSet and one source-level importer, so the (expensive) standard
// library import work is done once per Load call.
//
// Packages are checked in dependency order, and each checked package is
// fed back to the importer for the ones that follow. Without this, the
// source importer re-parses and re-type-checks every in-repo dependency
// from scratch — once for the importer's own cache and once when the
// listed package's turn comes — roughly doubling a whole-repo run.
//
// Test files are deliberately excluded: tests seed math/rand, read
// MEMHIER_PAPER_SCALE from the environment, and time themselves — all
// fine in a test, all contract violations in the code under test.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, errBuf.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	imp := &memoImporter{
		checked:  map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	var pkgs []*Package
	for _, lp := range topoOrder(listed) {
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		imp.checked[pkg.Path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	// Callers (and diagnostics consumers) expect go list's pattern order,
	// not dependency order.
	order := make(map[string]int, len(listed))
	for i, lp := range listed {
		order[lp.ImportPath] = i
	}
	sort.Slice(pkgs, func(i, j int) bool { return order[pkgs[i].Path] < order[pkgs[j].Path] })
	return pkgs, nil
}

// topoOrder sorts the listed packages so every package follows its listed
// dependencies (imports outside the listed set don't constrain the order;
// the importer resolves them). go list guarantees the import graph is
// acyclic.
func topoOrder(listed []listedPackage) []listedPackage {
	byPath := make(map[string]*listedPackage, len(listed))
	for i := range listed {
		byPath[listed[i].ImportPath] = &listed[i]
	}
	var out []listedPackage
	visited := map[string]bool{}
	var visit func(lp *listedPackage)
	visit = func(lp *listedPackage) {
		if visited[lp.ImportPath] {
			return
		}
		visited[lp.ImportPath] = true
		deps := append([]string(nil), lp.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if d := byPath[dep]; d != nil {
				visit(d)
			}
		}
		out = append(out, *lp)
	}
	for i := range listed {
		visit(&listed[i])
	}
	return out
}

// memoImporter serves already-checked listed packages from memory and
// falls back to the source importer (standard library, unlisted deps).
type memoImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (m *memoImporter) Import(path string) (*types.Package, error) {
	if p := m.checked[path]; p != nil {
		return p, nil
	}
	return m.fallback.Import(path)
}

func (m *memoImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := m.checked[path]; p != nil {
		return p, nil
	}
	if from, ok := m.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return m.fallback.Import(path)
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
