package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds soft type-checking errors. Analysis still runs on a
	// package with type errors (the AST and partial type info exist), but
	// drivers should surface them: a finding in unparseable code is noise.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the given `go list` patterns (e.g. "./...") to packages,
// parses their non-test Go files, and type-checks them. All packages share
// one FileSet and one source-level importer, so the (expensive) standard
// library import work is done once per Load call.
//
// Test files are deliberately excluded: tests seed math/rand, read
// MEMHIER_PAPER_SCALE from the environment, and time themselves — all
// fine in a test, all contract violations in the code under test.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, errBuf.String())
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
