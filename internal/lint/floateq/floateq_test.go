package floateq_test

import (
	"testing"

	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata/src/feq", floateq.Analyzer)
}

func TestFloateqIgnoresUnmarkedPackages(t *testing.T) {
	analysistest.Run(t, "testdata/src/unmarked", floateq.Analyzer)
}
