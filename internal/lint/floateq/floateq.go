// Package floateq forbids exact floating-point equality in packages marked
// `//chc:deterministic`. The model-vs-simulator comparisons in core and
// experiments must never silently hinge on two float64 computations landing
// on the same bits; comparisons belong behind a tolerance
// (math.Abs(a-b) <= eps).
//
// Two idioms stay legal:
//
//   - comparison against an exact-zero constant (`x == 0`): zero is a
//     sentinel ("unset option", "guard the division"), not an arithmetic
//     result, and tolerance-comparing against it would change meaning;
//   - self-comparison (`x != x`), the classic NaN probe.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"memhier/internal/lint"
)

// Analyzer flags ==/!= between floating-point operands.
var Analyzer = &lint.Analyzer{
	Name: "floateq",
	Doc: `floateq reports == and != between floating-point operands in
//chc:deterministic packages. Exact float equality makes model/simulator
agreement depend on bit-identical arithmetic; compare with a tolerance
(math.Abs(a-b) <= eps) instead. Comparisons against the exact constant 0
(sentinel/guard checks) and x != x (NaN probe) are allowed.`,
	Run: run,
}

func run(pass *lint.Pass) error {
	if !pass.Deterministic() {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, y := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
			if !isFloat(x.Type) || !isFloat(y.Type) {
				return true
			}
			if isZeroConst(x) || isZeroConst(y) {
				return true
			}
			if x.Value != nil && y.Value != nil {
				return true // constant folding, decided at compile time
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x: the NaN probe
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps) — exact equality depends on bit-identical arithmetic", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func isZeroConst(tv types.TypeAndValue) bool {
	return tv.Value != nil && tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0
}
