// Package unmarked has no //chc:deterministic marker: floateq must stay
// silent here.
package unmarked

func exactEquality(a, b float64) bool { return a == b }
