// Package feq exercises the floateq analyzer.
//
//chc:deterministic
package feq

import "math"

const tol = 1e-9

// exactEquality is the violation: model/sim agreement must not depend on
// bit-identical arithmetic.
func exactEquality(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func exactInequality(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

func namedFloat(a, b float32) bool {
	type celsius = float32
	var c celsius = celsius(a)
	return c == b // want "floating-point == comparison"
}

func constantCompare(a float64) bool {
	return a == 0.75 // want "floating-point == comparison"
}

// almostEqual is the approved idiom: compare within a tolerance.
func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= tol
}

// zeroSentinel is allowed: exact zero is a sentinel/guard, not an
// arithmetic result.
func zeroSentinel(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

// nanProbe is allowed: x != x is the classic NaN check.
func nanProbe(x float64) bool {
	return x != x
}

// intCompare is out of scope.
func intCompare(a, b int) bool {
	return a == b
}

// allowedCompare demonstrates a justified suppression.
func allowedCompare(a, b float64) bool {
	return a == b //chc:allow floateq -- fixture: trailing directive
}
