package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses one function body from source.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reachableCount returns how many blocks are reachable from entry.
func reachableCount(g *Graph) int {
	n := 0
	for range g.Reachable() {
		n++
	}
	return n
}

func TestStraightLine(t *testing.T) {
	g := New(parseBody(t, "x := 1\n_ = x"))
	if !g.Reachable()[g.Exit] {
		t.Fatalf("exit unreachable in straight-line code")
	}
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry leaves = %d, want 2", len(g.Entry.Nodes))
	}
}

func TestIfElseJoins(t *testing.T) {
	g := New(parseBody(t, `
if cond() {
	a()
} else {
	b()
}
c()`))
	// Entry (cond) branches to then and else; both join before c().
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if dispatch has %d successors, want 2", len(g.Entry.Succs))
	}
	if !g.Reachable()[g.Exit] {
		t.Fatalf("exit unreachable")
	}
}

func TestIfWithoutElseHasFallthroughEdge(t *testing.T) {
	g := New(parseBody(t, `
if cond() {
	a()
}
b()`))
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if-no-else dispatch has %d successors, want 2 (then, after)", len(g.Entry.Succs))
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := New(parseBody(t, `
for i := 0; i < 10; i++ {
	body()
}
after()`))
	// Some block must have a back edge: a successor with a smaller index
	// that is not Exit.
	back := false
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s.Index < blk.Index && s != g.Exit && s != g.Entry {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("no back edge in a for loop")
	}
	if !g.Reachable()[g.Exit] {
		t.Fatalf("exit unreachable")
	}
}

func TestInfiniteForCannotReachExit(t *testing.T) {
	g := New(parseBody(t, `
for {
	body()
}`))
	if g.CanReach(g.Exit)[g.Entry] {
		t.Fatalf("entry claims to reach exit past an infinite loop")
	}
}

func TestBreakEscapesInfiniteLoop(t *testing.T) {
	g := New(parseBody(t, `
for {
	if done() {
		break
	}
}
after()`))
	if !g.CanReach(g.Exit)[g.Entry] {
		t.Fatalf("break does not lead to exit")
	}
}

func TestRangeBodyNotInHeader(t *testing.T) {
	g := New(parseBody(t, `
for _, v := range items {
	use(v)
}`))
	// The loop body must be its own block: no block leaf may be the whole
	// RangeStmt (that would smuggle the body into the header).
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				t.Fatalf("RangeStmt stored as a leaf; body statements would be analyzed at the header")
			}
		}
	}
	if !g.Reachable()[g.Exit] {
		t.Fatalf("exit unreachable")
	}
}

func TestEarlyReturn(t *testing.T) {
	g := New(parseBody(t, `
if bad() {
	return
}
work()`))
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2 (early return + fall off end)", len(g.Exit.Preds))
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := New(parseBody(t, `
switch tag() {
case 1:
	one()
	fallthrough
case 2:
	two()
default:
	other()
}
after()`))
	// The clause executing one() must reach the clause executing two()
	// without going through the dispatch block.
	var oneBlk, twoBlk *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "one":
							oneBlk = blk
						case "two":
							twoBlk = blk
						}
					}
				}
			}
		}
	}
	if oneBlk == nil || twoBlk == nil {
		t.Fatalf("clause bodies not found")
	}
	found := false
	for _, s := range oneBlk.Succs {
		if s == twoBlk {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough edge missing from case 1 to case 2")
	}
}

func TestSwitchNoDefaultFallsThrough(t *testing.T) {
	g := New(parseBody(t, `
switch tag() {
case 1:
	one()
}
after()`))
	// With no default, the dispatch block needs a direct edge past the
	// clauses.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("dispatch successors = %d, want 2 (clause, after)", len(g.Entry.Succs))
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := New(parseBody(t, `
select {}
after()`))
	if g.CanReach(g.Exit)[g.Entry] {
		t.Fatalf("entry reaches exit past select{}")
	}
}

func TestSelectBranches(t *testing.T) {
	g := New(parseBody(t, `
select {
case <-a:
	one()
case b <- 1:
	two()
default:
	three()
}
after()`))
	if len(g.Entry.Succs) != 3 {
		t.Fatalf("select dispatch successors = %d, want 3", len(g.Entry.Succs))
	}
	if !g.Reachable()[g.Exit] {
		t.Fatalf("exit unreachable")
	}
}

func TestGotoBackward(t *testing.T) {
	g := New(parseBody(t, `
L:
	work()
	goto L`))
	if g.CanReach(g.Exit)[g.Entry] {
		t.Fatalf("entry reaches exit past goto loop with no escape")
	}
	if reachableCount(g) < 2 {
		t.Fatalf("goto loop blocks unreachable")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := New(parseBody(t, `
outer:
	for {
		for {
			if done() {
				break outer
			}
		}
	}
after()`))
	if !g.CanReach(g.Exit)[g.Entry] {
		t.Fatalf("labeled break does not escape to exit")
	}
}

func TestLabeledContinueTargetsOuterLoop(t *testing.T) {
	g := New(parseBody(t, `
outer:
	for i := 0; i < 3; i++ {
		for {
			continue outer
		}
	}
after()`))
	if !g.CanReach(g.Exit)[g.Entry] {
		t.Fatalf("labeled continue strands control in the inner loop")
	}
}

func TestPanicTerminates(t *testing.T) {
	g := New(parseBody(t, `
if bad() {
	panic("boom")
}
work()`))
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2 (panic + fall off end)", len(g.Exit.Preds))
	}
}

func TestDefersCollectedWithoutEdges(t *testing.T) {
	g := New(parseBody(t, `
defer cleanup()
work()`))
	if len(g.Defers) != 1 {
		t.Fatalf("defers collected = %d, want 1", len(g.Defers))
	}
}

// TestForwardMustAnalysis pins the fixpoint semantics: a "mark() definitely
// called" analysis (boolean fact, AND join) must be true only when every
// path marks.
func TestForwardMustAnalysis(t *testing.T) {
	marked := Flow[bool]{
		Entry: false,
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(n ast.Node, in bool) bool {
			found := in
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						found = true
					}
				}
				return true
			})
			return found
		},
	}

	cases := []struct {
		name string
		body string
		want bool
	}{
		{"straight", "mark()\nwork()", true},
		{"one branch only", "if cond() {\n\tmark()\n}\nwork()", false},
		{"both branches", "if cond() {\n\tmark()\n} else {\n\tmark()\n}", true},
		{"before branch", "mark()\nif cond() {\n\twork()\n}", true},
		{"inside loop body", "for i := 0; i < n; i++ {\n\tmark()\n}", false},
	}
	for _, tc := range cases {
		g := New(parseBody(t, tc.body))
		got, ok := ExitFact(g, marked)
		if !ok {
			t.Fatalf("%s: exit unreachable", tc.name)
		}
		if got != tc.want {
			t.Errorf("%s: must-marked at exit = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestVisitSeesPerLeafFacts checks Visit replays facts statement by
// statement, not just block by block.
func TestVisitSeesPerLeafFacts(t *testing.T) {
	count := Flow[int]{
		Entry: 0,
		Join:  func(a, b int) int { return max(a, b) },
		Equal: func(a, b int) bool { return a == b },
		Transfer: func(n ast.Node, in int) int {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && strings.HasPrefix(id.Name, "step") {
						return in + 1
					}
				}
			}
			return in
		},
	}
	g := New(parseBody(t, "step1()\nstep2()\nstep3()"))
	var before []int
	Visit(g, count, func(n ast.Node, fact int) {
		before = append(before, fact)
	})
	want := []int{0, 1, 2}
	if len(before) != len(want) {
		t.Fatalf("visited %d leaves, want %d", len(before), len(want))
	}
	for i := range want {
		if before[i] != want[i] {
			t.Errorf("leaf %d: fact %d, want %d", i, before[i], want[i])
		}
	}
}

// TestUnreachableBlocksExcluded: code after return contributes no facts.
func TestUnreachableBlocksExcluded(t *testing.T) {
	g := New(parseBody(t, `
return
work()`))
	reach := g.Reachable()
	for _, blk := range g.Blocks {
		if !reach[blk] {
			return // found the dead block: good
		}
	}
	t.Fatalf("dead code after return is marked reachable")
}
