// Package cfg builds function-level control-flow graphs from go/ast and
// runs forward dataflow analyses over them. It is the engine behind the
// flow-sensitive analyzers (guardedby v2, lockorder, leakcheck): where the
// original syntactic checks asked "does a lock call appear anywhere in
// this body", the CFG answers "is the lock held on every path reaching
// this access".
//
// The graph is deliberately small: basic blocks hold leaf statements and
// control expressions in execution order, and every structured and
// unstructured control construct — if/else, for, range, switch (with
// fallthrough), type switch, select, labeled break/continue, goto, defer,
// return, and terminating panic calls — contributes its real edges. Defers
// do not get edges (they run at function exit in reverse order); they are
// collected on the Graph for analyzers that model exit effects, which is
// exactly what the lock-leak check needs.
//
// The dataflow half is a worklist fixpoint over a join-semilattice the
// analyzer supplies: facts are joined where paths merge and propagated
// through a per-leaf transfer function until nothing changes. Must-style
// analyses (intersection joins) and may-style analyses (union joins) both
// fit; unreachable blocks are never visited, so they cannot pollute a
// must-analysis with vacuous facts.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: leaf statements and control expressions in
// execution order, with explicit successor and predecessor edges.
type Block struct {
	Index int
	// Nodes holds the block's leaves: simple statements (assignments,
	// calls, sends, incdec, defer, go, return) and the condition or tag
	// expressions of the control statements that terminate the block.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	// Exit is the single synthetic exit block: every return, every
	// terminating panic, and the fall-off-the-end path lead here.
	Exit   *Block
	Blocks []*Block
	// Defers collects every DeferStmt in the body, in source order. They
	// carry no edges — conceptually they all run on the way to Exit.
	Defers []*ast.DeferStmt
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	cur := b.stmts(b.g.Entry, body.List)
	b.edge(cur, b.g.Exit) // falling off the end
	b.resolveGotos()
	renumber(b.g)
	return b.g
}

// builder carries the construction state: the loop/switch stack for
// break/continue targets and the label table for goto/labeled break.
type builder struct {
	g *Graph
	// breaks/continues are the innermost targets for unlabeled branches.
	breaks    []*Block
	continues []*Block
	// labels maps a label name to its branch targets.
	labels map[string]*labelTarget
	gotos  []pendingGoto
	// pendingLabel is the label whose loop/switch targets the next
	// structured statement should publish (set by LabeledStmt, consumed
	// by withLoop and switchBody via publishLabel).
	pendingLabel *labelTarget
}

type labelTarget struct {
	breakTo    *Block
	continueTo *Block
	stmtBlock  *Block // the labeled statement itself, for goto
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links from → to. A nil from (dead code after a terminator) is a
// no-op, which is how unreachable paths stay unreachable.
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// stmts appends the statement list to cur, returning the block control
// falls out of (nil when every path terminated).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt appends one statement and returns the fall-through block.
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	if cur == nil {
		// Dead code after return/goto/panic: build its structure into a
		// fresh unreachable block so nested labels still resolve, but do
		// not connect it.
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		then := b.newBlock()
		b.edge(cur, then)
		thenEnd := b.stmts(then, s.Body.List)
		after := b.newBlock()
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			elsEnd := b.stmt(els, s.Else)
			b.edge(elsEnd, after)
		} else {
			b.edge(cur, after)
		}
		b.edge(thenEnd, after)
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after) // condition false
		}
		body := b.newBlock()
		b.edge(head, body)
		bodyEnd := b.withLoop(after, post, func() *Block {
			return b.stmts(body, s.Body.List)
		})
		b.edge(bodyEnd, post)
		b.edge(post, head)
		return after

	case *ast.RangeStmt:
		// Only the clause's expressions are leaves here — storing the whole
		// RangeStmt would smuggle the loop body into the header block.
		cur.Nodes = append(cur.Nodes, s.X) // evaluated once, before the loop
		head := b.newBlock()
		b.edge(cur, head)
		// Key/Value are assigned on each iteration.
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		after := b.newBlock()
		b.edge(head, after) // range exhausted
		body := b.newBlock()
		b.edge(head, body)
		bodyEnd := b.withLoop(after, head, func() *Block {
			return b.stmts(body, s.Body.List)
		})
		b.edge(bodyEnd, head)
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(cur, s.Body, nil)

	case *ast.SelectStmt:
		after := b.newBlock()
		hasDefault := false
		var ends []*Block
		b.breaks = append(b.breaks, after)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(cur, blk)
			if cc.Comm == nil {
				hasDefault = true
			} else {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			ends = append(ends, b.stmts(blk, cc.Body))
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		for _, e := range ends {
			b.edge(e, after)
		}
		if len(s.Body.List) == 0 && !hasDefault {
			// select{} blocks forever: no successor.
			return nil
		}
		return after

	case *ast.LabeledStmt:
		head := b.newBlock()
		b.edge(cur, head)
		if b.labels == nil {
			b.labels = map[string]*labelTarget{}
		}
		lt := &labelTarget{stmtBlock: head}
		b.labels[s.Label.Name] = lt
		// For labeled loops and switches the break/continue targets are
		// discovered while building the inner statement; withLoop and
		// switchBody publish into lt via pendingLabel.
		b.pendingLabel = lt
		end := b.stmt(head, s.Stmt)
		b.pendingLabel = nil
		return end

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil {
					b.edge(cur, lt.breakTo)
				}
			} else if n := len(b.breaks); n > 0 {
				b.edge(cur, b.breaks[n-1])
			}
			return nil
		case token.CONTINUE:
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil {
					b.edge(cur, lt.continueTo)
				}
			} else if n := len(b.continues); n > 0 {
				b.edge(cur, b.continues[n-1])
			}
			return nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
			return nil
		case token.FALLTHROUGH:
			// Handled structurally by switchBody (the clause end falls into
			// the next clause); nothing to do here.
			return cur
		}
		return cur

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.DeferStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.g.Defers = append(b.g.Defers, s)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.edge(cur, b.g.Exit)
				return nil
			}
		}
		return cur

	case nil:
		return cur

	default:
		// Assignments, declarations, go statements, sends, incdec, empty
		// statements: straight-line leaves.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody builds the clause blocks of a switch or type switch. Each
// clause's guard expressions are evaluated on the dispatch block; a clause
// ending in fallthrough connects to the next clause's body.
func (b *builder) switchBody(cur *Block, body *ast.BlockStmt, _ *labelTarget) *Block {
	after := b.newBlock()
	b.publishLabel(after, nil)
	b.breaks = append(b.breaks, after)
	var clauseBodies []*Block
	var clauseEnds []*Block
	var falls []bool
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			cur.Nodes = append(cur.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(cur, blk)
		clauseBodies = append(clauseBodies, blk)
		end := b.stmts(blk, cc.Body)
		fallsThrough := false
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		falls = append(falls, fallsThrough)
		clauseEnds = append(clauseEnds, end)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	for i, end := range clauseEnds {
		if falls[i] && i+1 < len(clauseBodies) {
			b.edge(end, clauseBodies[i+1])
		} else {
			b.edge(end, after)
		}
	}
	if !hasDefault {
		b.edge(cur, after) // no clause matched
	}
	return after
}

// publishLabel fills the pending label's branch targets, if one is open.
func (b *builder) publishLabel(breakTo, continueTo *Block) {
	if b.pendingLabel != nil {
		b.pendingLabel.breakTo = breakTo
		b.pendingLabel.continueTo = continueTo
		b.pendingLabel = nil
	}
}

// withLoop runs body with the given unlabeled break/continue targets.
func (b *builder) withLoop(breakTo, continueTo *Block, body func() *Block) *Block {
	b.publishLabel(breakTo, continueTo)
	b.breaks = append(b.breaks, breakTo)
	b.continues = append(b.continues, continueTo)
	end := body()
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	return end
}

// resolveGotos connects forward and backward gotos once every label block
// exists.
func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if lt := b.labels[g.label]; lt != nil {
			b.edge(g.from, lt.stmtBlock)
		}
	}
}

func renumber(g *Graph) {
	for i, blk := range g.Blocks {
		blk.Index = i
	}
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// CanReach reports, for every block, whether to is reachable from it
// (following successor edges; a block trivially reaches itself).
func (g *Graph) CanReach(to *Block) map[*Block]bool {
	can := map[*Block]bool{to: true}
	// Reverse BFS over predecessor edges.
	queue := []*Block{to}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		for _, p := range blk.Preds {
			if !can[p] {
				can[p] = true
				queue = append(queue, p)
			}
		}
	}
	return can
}
