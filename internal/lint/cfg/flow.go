package cfg

import "go/ast"

// A Flow describes one forward dataflow analysis over a Graph: the fact at
// function entry, the join applied where paths merge, and the transfer
// applied to each block leaf. Facts must be treated as immutable by
// Transfer and Join (return fresh values), or the fixpoint will corrupt
// shared state.
type Flow[F any] struct {
	// Entry is the fact holding at function entry.
	Entry F
	// Join merges the facts of two predecessors. Intersection makes a
	// must-analysis, union a may-analysis.
	Join func(a, b F) F
	// Equal reports fact equality; the fixpoint stops when every block's
	// entry fact is stable.
	Equal func(a, b F) bool
	// Transfer pushes a fact through one leaf node.
	Transfer func(n ast.Node, in F) F
}

// Forward runs the analysis to fixpoint and returns each reachable
// block's entry fact. Unreachable blocks do not appear in the result: they
// contribute no facts, so a must-analysis is not weakened by paths that
// cannot execute.
func Forward[F any](g *Graph, fl Flow[F]) map[*Block]F {
	in := map[*Block]F{g.Entry: fl.Entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := fl.blockOut(blk, in[blk])
		for _, s := range blk.Succs {
			next, seen := in[s]
			if !seen {
				next = out
			} else {
				next = fl.Join(next, out)
			}
			if !seen || !fl.Equal(next, in[s]) {
				in[s] = next
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// blockOut folds Transfer over the block's leaves.
func (fl Flow[F]) blockOut(blk *Block, fact F) F {
	for _, n := range blk.Nodes {
		fact = fl.Transfer(n, fact)
	}
	return fact
}

// Visit replays the converged analysis, calling visit on every leaf of
// every reachable block with the fact holding immediately before that
// leaf executes. This is how an analyzer turns block-level fixpoint facts
// into per-statement checks.
func Visit[F any](g *Graph, fl Flow[F], visit func(n ast.Node, before F)) {
	in := Forward(g, fl)
	for _, blk := range g.Blocks {
		fact, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		for _, n := range blk.Nodes {
			visit(n, fact)
			fact = fl.Transfer(n, fact)
		}
	}
}

// ExitFact returns the converged fact at the Exit block, joined over every
// path that reaches it, and whether Exit is reachable at all.
func ExitFact[F any](g *Graph, fl Flow[F]) (F, bool) {
	in := Forward(g, fl)
	f, ok := in[g.Exit]
	return f, ok
}
