// Package analysistest runs a lint.Analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments, the same
// convention as golang.org/x/tools/go/analysis/analysistest.
//
// A fixture directory holds one package of plain Go files (standard-library
// imports only — fixtures are type-checked without module resolution). A
// line that should trigger the analyzer carries a trailing
// `// want "regexp"` comment; several expectations may sit on one line as
// separate quoted strings. A fixture file with no want comments is a
// negative fixture: it demonstrates the approved idiom and must produce no
// diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"memhier/internal/lint"
)

// expectation is one `// want` entry: a position and a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)
var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// One FileSet and source importer per test process: the importer caches the
// (expensive) standard-library type-checking across fixtures.
var (
	fixtureFset = token.NewFileSet()
	fixtureImp  = importer.ForCompiler(fixtureFset, "source", nil)
)

// Run analyzes the fixture package in dir (relative to the test's working
// directory, conventionally "testdata/src/<name>") with the analyzer and
// reports any mismatch between produced diagnostics and want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkg, expects, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var diags []lint.Diagnostic
	got, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	diags = got

	for i := range diags {
		d := &diags[i]
		if e := match(expects, d); e != nil {
			e.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", dir, d)
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// Diagnostics loads the fixture package in dir, runs the analyzer, and
// returns the raw diagnostics without consulting want comments. Mutation
// tests use it to prove an annotation or a code line is load-bearing:
// copy the fixture with the line stripped, re-run, and assert the
// findings change.
func Diagnostics(dir string, a *lint.Analyzer) ([]lint.Diagnostic, error) {
	pkg, _, err := loadFixture(dir)
	if err != nil {
		return nil, err
	}
	return lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
}

func match(expects []*expectation, d *lint.Diagnostic) *expectation {
	for _, e := range expects {
		if e.matched || e.line != d.Pos.Line || filepath.Base(e.file) != filepath.Base(d.Pos.Filename) {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			return e
		}
	}
	return nil
}

// loadFixture parses and type-checks every .go file in dir as one package
// and collects its want comments.
func loadFixture(dir string) (*lint.Package, []*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := fixtureFset
	pkg := &lint.Package{Path: "fixture/" + filepath.Base(dir), Dir: dir, Fset: fset}
	var expects []*expectation
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		pkg.Files = append(pkg.Files, f)
		es, err := parseWants(fset, f)
		if err != nil {
			return nil, nil, err
		}
		expects = append(expects, es...)
	}
	if len(pkg.Files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Slice(pkg.Files, func(i, j int) bool {
		return fset.Position(pkg.Files[i].Pos()).Filename < fset.Position(pkg.Files[j].Pos()).Filename
	})

	pkg.Info = lint.NewTypesInfo()
	conf := types.Config{
		Importer: fixtureImp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return nil, nil, err
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, nil, fmt.Errorf("fixture does not type-check: %w", pkg.TypeErrors[0])
	}
	pkg.Types = tpkg
	return pkg, expects, nil
}

func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var expects []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			quoted := quotedRe.FindAllStringSubmatch(m[1], -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
			}
			for _, q := range quoted {
				re, err := regexp.Compile(q[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern: %w", pos.Filename, pos.Line, err)
				}
				expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return expects, nil
}
