// Package locks resolves mutex operations in an AST to approximate lock
// identities, shared by the flow-sensitive analyzers: guardedby v2 tracks
// which locks are held at each statement, lockorder tracks which locks are
// held when another lock is acquired.
//
// Two identity levels exist:
//
//   - Key names one runtime lock object within a function: the root
//     variable's types.Object plus the field path reaching the mutex
//     ("sh" + ".mu"). Object identity makes the analysis alias-aware
//     enough for real code — two names for the same variable share the
//     object, two distinct variables never do.
//   - Class names the static home of a lock across the whole program:
//     "pkg/path.Type.mu" for a struct field, "pkg/path.var" for a
//     package-level mutex. The lock-order graph is built over classes, so
//     every cacheShard instance contributes to one node.
package locks

import (
	"go/ast"
	"go/types"
	"strings"
)

// Key identifies one lock object within a function: the root variable and
// the selector path from it to the mutex.
type Key struct {
	Root types.Object
	Path string // e.g. ".mu", or "" when Root itself is the mutex
}

// Op is one mutex operation found in a leaf node.
type Op struct {
	Key  Key
	Kind Kind
	// Call is the operation's call expression (for positions).
	Call *ast.CallExpr
	// Class is the static identity of the lock, or "" when it has none
	// (a mutex local to an unnamed scope).
	Class string
}

// Kind classifies a mutex operation.
type Kind int

const (
	Acquire Kind = iota // Lock, RLock
	Release             // Unlock, RUnlock
)

// mutexMethods maps sync.Mutex/RWMutex method names to operation kinds.
var mutexMethods = map[string]Kind{
	"Lock":    Acquire,
	"RLock":   Acquire,
	"Unlock":  Release,
	"RUnlock": Release,
}

// IsMutexType reports whether t (possibly behind pointers) is sync.Mutex
// or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// OpsIn walks one leaf node and returns the mutex operations it performs,
// in source order. Function literals are not descended into: a literal's
// body is its own function with its own lock discipline.
func OpsIn(info *types.Info, n ast.Node) []Op {
	var ops []Op
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind, ok := mutexMethods[sel.Sel.Name]
		if !ok {
			return true
		}
		key, class, ok := Resolve(info, sel.X)
		if !ok {
			return true
		}
		if tv, ok := info.Types[sel.X]; !ok || !IsMutexType(tv.Type) {
			return true
		}
		ops = append(ops, Op{Key: key, Kind: kind, Call: call, Class: class})
		return true
	})
	return ops
}

// Resolve reduces a selector chain (c.mu, sh.items, pkg-level mu) to a
// lock/field Key and its static Class. ok is false for expressions the
// analysis cannot name (calls, index expressions, …).
func Resolve(info *types.Info, expr ast.Expr) (Key, string, bool) {
	var fields []string
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			fields = append(fields, e.Sel.Name)
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if obj == nil {
				return Key{}, "", false
			}
			if _, ok := obj.(*types.PkgName); ok {
				// sync.Mutex the package qualifier — not a value chain.
				return Key{}, "", false
			}
			// fields were collected innermost-first; reverse into a path.
			var path strings.Builder
			for i := len(fields) - 1; i >= 0; i-- {
				path.WriteByte('.')
				path.WriteString(fields[i])
			}
			return Key{Root: obj, Path: path.String()}, classOf(obj, fields), true
		default:
			return Key{}, "", false
		}
	}
}

// classOf derives the static class of a lock from its root object and the
// (innermost-first) field chain: the owning struct type of the mutex field
// when the chain ends in a named struct, else the package-level variable.
func classOf(root types.Object, fieldsInnerFirst []string) string {
	if len(fieldsInnerFirst) == 0 {
		// A bare variable: package-level mutexes get "pkg.name"; function
		// locals have no useful cross-program identity.
		if root.Pkg() != nil && root.Parent() == root.Pkg().Scope() {
			return root.Pkg().Path() + "." + root.Name()
		}
		return ""
	}
	// Walk the types from the root down to the struct owning the last
	// field, so "s.inner.mu" classifies by inner's type, not s's.
	t := root.Type()
	for i := len(fieldsInnerFirst) - 1; i >= 1; i-- {
		ft, ok := fieldType(t, fieldsInnerFirst[i])
		if !ok {
			return ""
		}
		t = ft
	}
	name := namedOf(t)
	if name == nil {
		return ""
	}
	pkg := ""
	if name.Obj().Pkg() != nil {
		pkg = name.Obj().Pkg().Path() + "."
	}
	return pkg + name.Obj().Name() + "." + fieldsInnerFirst[0]
}

// fieldType finds the named field's type within t's underlying struct.
func fieldType(t types.Type, field string) (types.Type, bool) {
	st, ok := structOf(t)
	if !ok {
		return nil, false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return st.Field(i).Type(), true
		}
	}
	return nil, false
}

func structOf(t types.Type) (*types.Struct, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			t = u.Underlying()
		case *types.Struct:
			return u, true
		default:
			return nil, false
		}
	}
}

func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// Set is an immutable-by-convention set of held locks. Transfer functions
// copy before mutating.
type Set map[Key]bool

// With returns a copy of s with k added.
func (s Set) With(k Key) Set {
	if s[k] {
		return s
	}
	n := make(Set, len(s)+1)
	for key := range s {
		n[key] = true
	}
	n[k] = true
	return n
}

// Without returns a copy of s with k removed.
func (s Set) Without(k Key) Set {
	if !s[k] {
		return s
	}
	n := make(Set, len(s))
	for key := range s {
		if key != k {
			n[key] = true
		}
	}
	return n
}

// Intersect returns the must-join of two sets.
func Intersect(a, b Set) Set {
	n := Set{}
	for k := range a {
		if b[k] {
			n[k] = true
		}
	}
	return n
}

// Union returns the may-join of two sets.
func Union(a, b Set) Set {
	n := make(Set, len(a)+len(b))
	for k := range a {
		n[k] = true
	}
	for k := range b {
		n[k] = true
	}
	return n
}

// Equal reports set equality.
func Equal(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// DeferredReleases collects the lock keys released by the function's defer
// statements (including `defer mu.Unlock()` and unlocks inside deferred
// literals): those locks are held to function exit by design, not leaked.
func DeferredReleases(info *types.Info, defers []*ast.DeferStmt) Set {
	rel := Set{}
	for _, d := range defers {
		// The deferred call itself (defer mu.Unlock()).
		if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
			if kind, ok := mutexMethods[sel.Sel.Name]; ok && kind == Release {
				if key, _, ok := Resolve(info, sel.X); ok {
					rel[key] = true
				}
			}
		}
		// Unlocks inside a deferred func literal.
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			for _, op := range OpsIn(info, lit.Body) {
				if op.Kind == Release {
					rel[op.Key] = true
				}
			}
		}
	}
	return rel
}
