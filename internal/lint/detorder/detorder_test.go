package detorder_test

import (
	"testing"

	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/detorder"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, "testdata/src/det", detorder.Analyzer)
}

func TestDetorderIgnoresUnmarkedPackages(t *testing.T) {
	analysistest.Run(t, "testdata/src/unmarked", detorder.Analyzer)
}
