// Package unmarked has no //chc:deterministic marker: detorder must stay
// silent even though every construct here would be flagged in a marked
// package.
package unmarked

import (
	"fmt"
	"io"
	"os"
	"time"
)

func wallClock() time.Time { return time.Now() }

func env() string { return os.Getenv("HOME") }

func printUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
