package det

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// renderSorted is the approved idiom: collect the keys, sort them, range
// over the sorted slice. The collection loop's append is recognized as the
// first half of the idiom because its target is later passed to sort.
func renderSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// sortInterface covers the sort.Sort(byX(keys)) spelling of the idiom.
type byLen []string

func (b byLen) Len() int           { return len(b) }
func (b byLen) Less(i, j int) bool { return len(b[i]) < len(b[j]) }
func (b byLen) Swap(i, j int)      { b[i], b[j] = b[j], b[i] }

func sortInterface(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(byLen(keys))
	return keys
}

// copyMap is order-independent: map writes commute.
func copyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// countInts is order-independent: integer addition is associative.
func countInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// seeded uses an explicitly seeded generator — reproducible by construction.
func seeded() int {
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(10)
}
