// Package det exercises the detorder analyzer: every construct flagged
// here leaks map-iteration order, the wall clock, the environment, or
// global randomness into results that must be reproducible.
//
//chc:deterministic
package det

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"
)

// appendUnsorted leaks map order into the returned slice.
func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order reaches an append"
		out = append(out, k)
	}
	return out
}

// printUnsorted leaks map order straight into the output stream.
func printUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order reaches fmt.Fprintf"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// sumFloats leaks map order into float bits: FP addition is not associative.
func sumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "floating-point accumulation"
		s += v
	}
	return s
}

// concat leaks map order into a string.
func concat(m map[string]string) string {
	s := ""
	for _, v := range m { // want "string concatenation"
		s += v
	}
	return s
}

// wallClock reads the wall clock.
func wallClock() int64 {
	return time.Now().Unix() // want "time.Now in a deterministic package"
}

// globalRand uses the process-global generator.
func globalRand() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

// env reads the process environment.
func env() string {
	return os.Getenv("HOME") // want "environment read in a deterministic package"
}

// allowed demonstrates an explicit, justified suppression.
func allowed() time.Time {
	//chc:allow detorder -- fixture: directive on the preceding line
	return time.Now()
}
