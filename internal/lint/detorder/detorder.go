// Package detorder enforces the reproduction pipeline's determinism
// contract inside packages marked `//chc:deterministic`: no map-iteration
// order may leak into rendered output, and no wall clock, process
// environment, or global (unseeded) randomness may influence results.
//
// The paper's validation methodology (model vs. simulator, Figures 2–4)
// only holds if both sides are exactly reproducible run-to-run; these are
// the three ways Go code silently stops being reproducible.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"memhier/internal/lint"
)

// Analyzer flags order- and environment-dependence in deterministic packages.
var Analyzer = &lint.Analyzer{
	Name: "detorder",
	Doc: `detorder reports three contract violations in //chc:deterministic packages:

  - for-range over a map whose body feeds order-dependent sinks (append,
    printing, io writes, string or floating-point accumulation). The
    approved idiom collects the keys, sorts them, and ranges over the
    sorted slice; a loop that only appends into a slice later passed to a
    sort function is accepted as the first half of that idiom.
  - time.Now: wall-clock readings make artifacts differ run-to-run. Pure
    duration measurement belongs in the unmarked internal/stopwatch
    package or behind an explicit //chc:allow detorder directive.
  - global math/rand functions and os.Getenv/LookupEnv/Environ: results
    must depend only on explicit inputs and explicitly seeded generators.`,
	Run: run,
}

func run(pass *lint.Pass) error {
	if !pass.Deterministic() {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, fn, n)
		case *ast.FuncLit:
			// Keep descending: closures inherit the contract.
		}
		return true
	})
}

// checkCall flags nondeterministic sources.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	switch {
	case pass.IsPkgFunc(call, "time", "Now"):
		pass.Reportf(call.Pos(), "time.Now in a deterministic package: results must not depend on the wall clock (use internal/stopwatch for pure duration measurement, or inject the timestamp)")
	case pass.IsPkgFunc(call, "os", "Getenv", "LookupEnv", "Environ"):
		pass.Reportf(call.Pos(), "environment read in a deterministic package: results must depend only on explicit inputs")
	default:
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if strings.HasPrefix(fn.Name(), "New") {
			return // rand.New(rand.NewSource(seed)) is the approved idiom
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			pass.Reportf(call.Pos(), "global %s.%s in a deterministic package: use an explicitly seeded *rand.Rand", path, fn.Name())
		}
	}
}

// checkMapRange flags range-over-map loops whose bodies are order-dependent.
func checkMapRange(pass *lint.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sink, appendsOnly, targets := scanBody(pass, rng.Body)
	if sink == "" {
		return
	}
	if appendsOnly && allSorted(pass, fn, targets) {
		return // collect-then-sort idiom: the order is re-established below.
	}
	pass.Reportf(rng.Pos(), "map iteration order reaches %s; collect the keys, sort them, and range over the sorted slice", sink)
}

// scanBody looks for order-dependent sinks in a range body. It returns a
// description of the first non-append sink (empty if none), whether every
// sink found was an append, and the rendered append targets.
func scanBody(pass *lint.Pass, body *ast.BlockStmt) (sink string, appendsOnly bool, targets []string) {
	appendsOnly = true
	note := func(s string) {
		if sink == "" {
			sink = s
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(pass, n) {
				note("an append")
				if len(n.Args) > 0 {
					targets = append(targets, types.ExprString(n.Args[0]))
				}
				return true
			}
			if s := callSink(pass, n); s != "" {
				note(s)
				appendsOnly = false
			}
		case *ast.AssignStmt:
			if s := accumSink(pass, n); s != "" {
				note(s)
				appendsOnly = false
			}
		}
		return true
	})
	return sink, appendsOnly, targets
}

func isBuiltinAppend(pass *lint.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// printNames are fmt functions that emit in call order.
var printNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writerMethods are method names whose calls emit output in call order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Render": true, "AddRow": true,
}

func callSink(pass *lint.Pass, call *ast.CallExpr) string {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && printNames[fn.Name()] {
		return "fmt." + fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && writerMethods[fn.Name()] {
		return "a " + fn.Name() + " call"
	}
	return ""
}

// accumSink flags op= accumulation whose result depends on iteration order:
// string concatenation and floating-point arithmetic (FP addition is not
// associative, so even a sum's low bits depend on visit order).
func accumSink(pass *lint.Pass, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	if len(as.Lhs) != 1 {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[as.Lhs[0]]
	if !ok {
		return ""
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch {
	case basic.Info()&types.IsFloat != 0:
		return "a floating-point accumulation (FP addition is order-dependent)"
	case basic.Info()&types.IsString != 0 && as.Tok == token.ADD_ASSIGN:
		return "a string concatenation"
	}
	return ""
}

// sortFuncs maps package path → function names that establish order.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Ints": true, "Strings": true, "Float64s": true,
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// allSorted reports whether every append target is passed to a sort
// function somewhere in the enclosing function (covering sort.Sort(byX(t))
// via one level of wrapping).
func allSorted(pass *lint.Pass, fn *ast.FuncDecl, targets []string) bool {
	if len(targets) == 0 {
		return false
	}
	sorted := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		callee := pass.CalleeFunc(call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		names := sortFuncs[callee.Pkg().Path()]
		if names == nil || !names[callee.Name()] {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if wrap, ok := arg.(*ast.CallExpr); ok && len(wrap.Args) == 1 {
			arg = ast.Unparen(wrap.Args[0]) // sort.Sort(byName(keys))
		}
		sorted[types.ExprString(arg)] = true
		return true
	})
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}
