// Package atomics enforces all-or-nothing atomic discipline: once any code
// accesses a variable or field through the sync/atomic functions
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&hits), …), every access to
// it must be atomic. A plain read racing an atomic write is still a data
// race — and one the race detector only catches when the schedule
// cooperates. Mixed access usually means a counter grew a fast path that
// silently dropped the discipline.
//
// The analyzer works per package, in two passes over the files: first it
// collects every object passed by address to a sync/atomic function
// (remembering those sanctioned expression nodes), then it flags any other
// read or write of the same object. Typed atomics (atomic.Int64 and
// friends) are safe by construction and need no checking — this analyzer
// is why the repo prefers them for new code.
package atomics

import (
	"go/ast"
	"go/types"

	"memhier/internal/lint"
)

// Analyzer flags plain accesses to variables that are elsewhere accessed
// through sync/atomic functions.
var Analyzer = &lint.Analyzer{
	Name: "atomics",
	Doc: `atomics reports non-atomic reads or writes of a variable or struct field
that is accessed via sync/atomic functions elsewhere in the package. Mixing
plain and atomic access is a data race; use the atomic functions everywhere
or a typed atomic (atomic.Int64, atomic.Bool, …).`,
	Run: run,
}

func run(pass *lint.Pass) error {
	// Pass 1: objects used atomically, and the exact AST nodes where the
	// atomic access happens (those are sanctioned).
	atomicObjs := map[types.Object]bool{}
	sanctioned := map[ast.Node]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				target := ast.Unparen(un.X)
				if obj := referent(pass, target); obj != nil {
					atomicObjs[obj] = true
					sanctioned[target] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any other use of those objects is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sanctioned[n] {
				return false
			}
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if obj := referent(pass, x); obj != nil && atomicObjs[obj] {
					pass.Reportf(x.Pos(),
						"%s is accessed via sync/atomic elsewhere in this package; this plain access races with it — use the atomic functions or a typed atomic",
						obj.Name())
					return false
				}
			case *ast.Ident:
				if obj := referent(pass, x); obj != nil && atomicObjs[obj] {
					pass.Reportf(x.Pos(),
						"%s is accessed via sync/atomic elsewhere in this package; this plain access races with it — use the atomic functions or a typed atomic",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// referent resolves an lvalue expression (ident or field selector) to the
// object it names: the field's *types.Var for selectors, the variable for
// idents. Declaration names themselves (struct fields, var specs) are not
// uses and return nil via Uses lookup falling through to Defs being
// intentionally excluded — a declaration is not an access.
func referent(pass *lint.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return nil
		}
		return sel.Obj()
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	}
	return nil
}

// isAtomicFunc reports whether call invokes a package-level function of
// sync/atomic (not a typed-atomic method).
func isAtomicFunc(pass *lint.Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
