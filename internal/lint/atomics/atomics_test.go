package atomics_test

import (
	"testing"

	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/atomics"
)

func TestAtomics(t *testing.T) {
	analysistest.Run(t, "testdata/src/at", atomics.Analyzer)
}
