// Package at exercises the atomics analyzer: once a field or variable is
// accessed through sync/atomic anywhere in the package, every access must
// be atomic.
package at

import "sync/atomic"

type stats struct {
	n     int64
	hits  int64
	plain int64 // never touched atomically: free to access directly
	typed atomic.Int64
}

// bump and read keep the discipline.
func (s *stats) bump() {
	atomic.AddInt64(&s.n, 1)
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) read() int64 {
	return atomic.LoadInt64(&s.n)
}

// mixedRead drops the discipline: a plain read racing bump.
func (s *stats) mixedRead() int64 {
	return s.n // want "n is accessed via sync/atomic elsewhere in this package"
}

// mixedWrite is the same mistake on the write side.
func (s *stats) mixedWrite() {
	s.hits = 0 // want "hits is accessed via sync/atomic elsewhere in this package"
}

// plainOK: a field never accessed atomically has no constraint.
func (s *stats) plainOK() int64 {
	s.plain++
	return s.plain
}

// typedOK: typed atomics are safe by construction, and their method calls
// are not sync/atomic package functions.
func (s *stats) typedOK() int64 {
	s.typed.Add(1)
	return s.typed.Load()
}

// Package-level variables are covered too.
var counter uint64

func incCounter() {
	atomic.AddUint64(&counter, 1)
}

func badCounter() uint64 {
	return counter // want "counter is accessed via sync/atomic elsewhere in this package"
}

// allowedSnapshot documents a deliberately non-atomic read (e.g. a
// monitoring snapshot that tolerates staleness) with the repo directive.
func allowedSnapshot() uint64 {
	//chc:allow atomics -- fixture: monitoring snapshot tolerates a stale read
	return counter
}
