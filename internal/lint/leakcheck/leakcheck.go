// Package leakcheck finds goroutine launch sites whose goroutine can get
// stuck with no way out: some reachable region of its CFG cannot reach
// function exit and contains no blocking signal to wait on. The classic
// shape is `go func() { for { poll() } }()` — a background loop with no
// ctx.Done, no closed channel, no bounded iteration. Such goroutines
// outlive their owner, pin memory (the paper's working-set accounting
// assumes workers retire), and in tests accumulate across cases until the
// race detector's goroutine limit trips.
//
// The check is reachability on the launched function's CFG: blocks that
// are reachable from entry but cannot reach exit form the trapped region.
// A trapped region is fine if it can block on the outside world — a channel
// receive, a channel send, or a select gives the goroutine a place where
// shutdown (channel close, context cancel) wakes it and, in the common
// idiom, a case returns. Only a trapped region with no channel operation
// at all is reported: nothing external can ever stop it.
//
// Launch sites checked: `go func(){…}()` literals and `go name(…)` /
// `go recv.method(…)` where the callee's body is in the same package.
package leakcheck

import (
	"go/ast"
	"go/types"

	"memhier/internal/lint"
	"memhier/internal/lint/cfg"
)

// Analyzer reports goroutines that can loop forever with no channel
// operation to block on.
var Analyzer = &lint.Analyzer{
	Name: "leakcheck",
	Doc: `leakcheck reports go statements launching functions with a CFG region
that cannot reach function exit and contains no channel receive, send, or
select: a goroutine nothing can stop. Give the loop a stop signal
(ctx.Done, a closed channel) or a bounded iteration.`,
	Run: run,
}

func run(pass *lint.Pass) error {
	bodies := declBodies(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := launchedBody(pass, bodies, gs)
			if body == nil {
				return true
			}
			if leaks(body) {
				pass.Reportf(gs.Pos(),
					"goroutine can loop forever with no exit: a reachable region of its control flow cannot reach return and performs no channel operation; add a stop signal (ctx.Done(), closed channel) or bound the loop")
			}
			return true
		})
	}
	return nil
}

// declBodies maps each function object declared in this package to its body.
func declBodies(pass *lint.Pass) map[types.Object]*ast.BlockStmt {
	bodies := map[types.Object]*ast.BlockStmt{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					bodies[obj] = fn.Body
				}
			}
		}
	}
	return bodies
}

// launchedBody resolves the body the go statement starts, when visible.
func launchedBody(pass *lint.Pass, bodies map[types.Object]*ast.BlockStmt, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := pass.CalleeFunc(gs.Call); fn != nil {
		return bodies[types.Object(fn)]
	}
	return nil
}

// leaks reports whether body has a reachable, exit-less, channel-free region.
func leaks(body *ast.BlockStmt) bool {
	g := cfg.New(body)
	reach := g.Reachable()
	canExit := g.CanReach(g.Exit)
	trapped := false
	for _, blk := range g.Blocks {
		if !reach[blk] || canExit[blk] || blk == g.Exit {
			continue
		}
		trapped = true
		for _, n := range blk.Nodes {
			if hasChannelOp(n) {
				return false
			}
		}
	}
	return trapped
}

// hasChannelOp reports whether the leaf contains a channel receive, send,
// or select (not descending into function literals — those run their own
// control flow).
func hasChannelOp(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.SendStmt, *ast.SelectStmt, *ast.RangeStmt:
			// A range leaf only appears for its own header; over a channel
			// it blocks. Cheap over-approximation: any range header counts
			// only when ranging a channel is possible — but the header
			// carries no type info here, and a trapped range-over-slice
			// loop must still contain the real infinite loop elsewhere, so
			// counting it is safe only for select/send. Ranges are handled
			// by the CFG itself (they always have an exit edge), so a
			// trapped block is never a range header.
			if _, isRange := x.(*ast.RangeStmt); !isRange {
				found = true
			}
		}
		return !found
	})
	return found
}
