// Package lc exercises the leakcheck analyzer: goroutines must have a
// reachable exit or a channel operation that shutdown can unblock.
package lc

import "context"

func work() {}

// spinner is the classic leak: an infinite loop with nothing to wake it.
func spinner() {
	go func() { // want "goroutine can loop forever with no exit"
		for {
			work()
		}
	}()
}

// runLoop leaks the same way when launched by name.
func runLoop() {
	for {
		work()
	}
}

func launchNamed() {
	go runLoop() // want "goroutine can loop forever with no exit"
}

// stoppable has a select with a stop case: the loop has an exit.
func stoppable(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// ctxLoop is the context idiom.
func ctxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// bounded loops finitely: every block reaches exit.
func bounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

// receiver blocks on a channel each round: closing ch (or sending) wakes
// it, so the outside world can stop it.
func receiver(ch chan int) {
	go func() {
		for {
			<-ch
			work()
		}
	}()
}

// drainer ranges a channel: exits when the channel closes.
func drainer(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// allowedSpinner documents a deliberate forever-goroutine (e.g. a
// process-lifetime daemon) with the repo directive.
func allowedSpinner() {
	//chc:allow leakcheck -- fixture: process-lifetime daemon, dies with the process
	go func() {
		for {
			work()
		}
	}()
}
