package leakcheck_test

import (
	"testing"

	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/leakcheck"
)

func TestLeakcheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/lc", leakcheck.Analyzer)
}
