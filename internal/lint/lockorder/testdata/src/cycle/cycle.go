// Package cycle exercises the lockorder analyzer's positive cases: a
// direct A-then-B / B-then-A inversion, a cycle closed through a call, and
// a conditional re-acquire of the same lock.
package cycle

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	n   int
)

// abPath acquires A then B. The diagnostic for the A/B cycle lands on the
// inner acquisition of the canonical (lexicographically smallest-first)
// edge, which is this one.
func abPath() {
	muA.Lock()
	muB.Lock() // want "lock order cycle .potential deadlock.: .*muA -> .*muB -> .*muA"
	n++
	muB.Unlock()
	muA.Unlock()
}

// baPath closes the cycle: B then A.
func baPath() {
	muB.Lock()
	muA.Lock()
	n++
	muA.Unlock()
	muB.Unlock()
}

var (
	muC sync.Mutex
	muD sync.Mutex
)

// lockD is the callee through which cdPath picks up D while holding C.
func lockD() {
	muD.Lock()
	n++
	muD.Unlock()
}

// cdPath holds C across a call that (transitively) acquires D…
func cdPath() {
	muC.Lock()
	lockD() // want "lock order cycle .potential deadlock.: .*muC -> .*muD -> .*muC"
	muC.Unlock()
}

// dcPath …while dcPath acquires them in the other order directly.
func dcPath() {
	muD.Lock()
	muC.Lock()
	n++
	muC.Unlock()
	muD.Unlock()
}

var muE sync.Mutex

// reacquire may lock E twice on one path: a self-deadlock with a plain
// Mutex.
func reacquire(maybe bool) {
	if maybe {
		muE.Lock()
	}
	muE.Lock() // want "lock order cycle .potential deadlock.: .*muE -> .*muE"
	n++
	muE.Unlock()
	if maybe {
		muE.Unlock()
	}
}
