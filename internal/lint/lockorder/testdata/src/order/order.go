// Package order is the lockorder negative fixture: a consistent global
// acquisition order (outer before inner, everywhere), nested instance
// locks released before re-acquiring, and deferred unlocks. No cycles, no
// diagnostics.
package order

import "sync"

var (
	outer sync.Mutex
	inner sync.Mutex
	n     int
)

// nested always acquires outer before inner: one global order.
func nested() {
	outer.Lock()
	inner.Lock()
	n++
	inner.Unlock()
	outer.Unlock()
}

// nestedAgain repeats the same order through a call.
func lockInner() {
	inner.Lock()
	n++
	inner.Unlock()
}

func nestedAgain() {
	outer.Lock()
	defer outer.Unlock()
	lockInner()
}

// handoff releases before acquiring the other: no ordering edge at all.
func handoff() {
	inner.Lock()
	n++
	inner.Unlock()
	outer.Lock()
	n++
	outer.Unlock()
}

type shard struct {
	mu sync.Mutex
	v  int
}

// oneAtATime locks shards strictly one at a time.
func oneAtATime(shards []*shard) int {
	total := 0
	for _, sh := range shards {
		sh.mu.Lock()
		total += sh.v
		sh.mu.Unlock()
	}
	return total
}
