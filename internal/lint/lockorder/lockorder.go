// Package lockorder builds a whole-program lock-acquisition-order graph
// and reports cycles: if one code path locks A then B while another locks
// B then A, the two can deadlock even though each path is locally correct.
// The repo holds locks across call boundaries in exactly the places this
// matters — the serve hit path locks a cache shard then calls into the
// single-flight machinery, the cluster forwarder consults the health view,
// the parallel engine's baton passes ps.mu between worker closures.
//
// Per package, a may-held dataflow pass (union join over the CFG) computes
// which locks can be held at every Lock call and every function call. Each
// function contributes to a shared summary:
//
//   - direct edges: lock class A held when lock class B is acquired;
//   - acquires: the classes the function itself locks;
//   - calls: callees invoked with at least one lock held, plus the full
//     call graph for closure.
//
// Finish computes transitive acquires over the call graph to fixpoint —
// the classes each function can lock directly or through callees — and adds
// an edge A→B for every call made with A held to a function that
// transitively acquires B. Cycles in the class graph are reported once per
// canonical cycle.
//
// Determinism: nodes, adjacency, and DFS roots are all processed in sorted
// class order, and each edge keeps its smallest (file, line) witness, so
// the same source always yields the same diagnostics in the same order.
// Function literals are summarized as anonymous functions — their internal
// edges count, but their acquires are not attributed to the enclosing
// function, since a literal may run on another goroutine where the
// caller's locks are not held.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"memhier/internal/lint"
	"memhier/internal/lint/cfg"
	"memhier/internal/lint/locks"
)

// Analyzer reports potential-deadlock cycles in the program's lock
// acquisition order.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: `lockorder builds the whole-program lock-acquisition graph — lock class A
held while lock class B is acquired, directly or through calls — and
reports cycles as potential deadlocks. Node identity is the lock's static
class ("pkg.Type.field" or "pkg.var"); construction and reporting are
deterministic.`,
	Run:      run,
	NewState: func() any { return newState() },
	Finish:   finish,
}

// edge is one observed acquisition ordering with its first witness.
type edge struct {
	from, to string
	pos      token.Position
}

// funcSummary is one function's contribution to the program graph.
type funcSummary struct {
	// acquires holds the lock classes the function locks directly.
	acquires map[string]bool
	// calls lists resolvable callees with the classes held at the call.
	calls []callSite
}

type callSite struct {
	callee string
	held   []string
	pos    token.Position
}

type state struct {
	funcs map[string]*funcSummary
	edges []edge
	// classes remembers every class seen, for stable node ordering.
	classes map[string]bool
}

func newState() *state {
	return &state{funcs: map[string]*funcSummary{}, classes: map[string]bool{}}
}

func run(pass *lint.Pass) error {
	st := pass.State.(*state)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := funcName(pass, fn)
			summarize(pass, st, name, fn.Body)
			// Literals are separate anonymous functions; see package doc.
			i := 0
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					i++
					summarize(pass, st, fmt.Sprintf("%s$%d", name, i), lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

func funcName(pass *lint.Pass, fn *ast.FuncDecl) string {
	if obj, ok := pass.TypesInfo.Defs[fn.Name].(interface{ FullName() string }); ok {
		return obj.FullName()
	}
	return pass.Pkg.Path() + "." + fn.Name.Name
}

// summarize runs the may-held pass over one body and records acquisitions,
// ordering edges, and call sites into the shared state.
func summarize(pass *lint.Pass, st *state, name string, body *ast.BlockStmt) {
	g := cfg.New(body)
	// classByKey resolves held Keys back to classes when recording edges.
	classByKey := map[locks.Key]string{}
	flow := cfg.Flow[locks.Set]{
		Entry: locks.Set{},
		Join:  locks.Union,
		Equal: locks.Equal,
		Transfer: func(n ast.Node, in locks.Set) locks.Set {
			if _, ok := n.(*ast.DeferStmt); ok {
				return in
			}
			for _, op := range locks.OpsIn(pass.TypesInfo, n) {
				if op.Kind == locks.Acquire {
					if op.Class != "" {
						classByKey[op.Key] = op.Class
					}
					in = in.With(op.Key)
				} else {
					in = in.Without(op.Key)
				}
			}
			return in
		},
	}

	sum := st.funcs[name]
	if sum == nil {
		sum = &funcSummary{acquires: map[string]bool{}}
		st.funcs[name] = sum
	}

	cfg.Visit(g, flow, func(n ast.Node, before locks.Set) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return
		}
		fact := before
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			pos := pass.Fset.Position(call.Pos())
			ops := locks.OpsIn(pass.TypesInfo, call)
			if len(ops) == 1 && ops[0].Call == call {
				op := ops[0]
				if op.Kind == locks.Acquire && op.Class != "" {
					st.classes[op.Class] = true
					sum.acquires[op.Class] = true
					for _, from := range heldClasses(fact, classByKey) {
						st.addEdge(from, op.Class, pos)
					}
					classByKey[op.Key] = op.Class
				}
				// Keep fact current within multi-op leaves (a, b := …).
				if op.Kind == locks.Acquire {
					fact = fact.With(op.Key)
				} else {
					fact = fact.Without(op.Key)
				}
				return true
			}
			if fn := pass.CalleeFunc(call); fn != nil {
				held := heldClasses(fact, classByKey)
				sum.calls = append(sum.calls, callSite{callee: fn.FullName(), held: held, pos: pos})
			}
			return true
		})
	})
}

// heldClasses maps a held Key set to its sorted class names.
func heldClasses(held locks.Set, classByKey map[locks.Key]string) []string {
	var out []string
	for key := range held {
		if c := classByKey[key]; c != "" {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

func (st *state) addEdge(from, to string, pos token.Position) {
	st.classes[from] = true
	st.classes[to] = true
	for i := range st.edges {
		e := &st.edges[i]
		if e.from == from && e.to == to {
			if posLess(pos, e.pos) {
				e.pos = pos
			}
			return
		}
	}
	st.edges = append(st.edges, edge{from: from, to: to, pos: pos})
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// finish closes the call graph and reports cycles in the class graph.
func finish(s any, report func(lint.Diagnostic)) error {
	st := s.(*state)

	// Transitive acquires per function, to fixpoint over the call graph.
	trans := map[string]map[string]bool{}
	names := make([]string, 0, len(st.funcs))
	for name, sum := range st.funcs {
		names = append(names, name)
		t := map[string]bool{}
		for c := range sum.acquires {
			t[c] = true
		}
		trans[name] = t
	}
	sort.Strings(names)
	for changed := true; changed; {
		changed = false
		for _, name := range names {
			t := trans[name]
			for _, call := range st.funcs[name].calls {
				for c := range trans[call.callee] {
					if !t[c] {
						t[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Call-induced edges: A held at a call whose callee transitively
	// acquires B contributes A→B at the call site.
	for _, name := range names {
		for _, call := range st.funcs[name].calls {
			if len(call.held) == 0 {
				continue
			}
			callee := make([]string, 0, len(trans[call.callee]))
			for c := range trans[call.callee] {
				callee = append(callee, c)
			}
			sort.Strings(callee)
			for _, from := range call.held {
				for _, to := range callee {
					st.addEdge(from, to, call.pos)
				}
			}
		}
	}

	// Adjacency in sorted order, DFS from sorted roots: deterministic.
	adj := map[string][]edge{}
	for _, e := range st.edges {
		adj[e.from] = append(adj[e.from], e)
	}
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
	}
	nodes := make([]string, 0, len(st.classes))
	for c := range st.classes {
		nodes = append(nodes, c)
	}
	sort.Strings(nodes)

	seen := map[string]bool{}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []edge
	var dfs func(node string)
	dfs = func(node string) {
		color[node] = gray
		for _, e := range adj[node] {
			switch color[e.to] {
			case white:
				stack = append(stack, e)
				dfs(e.to)
				stack = stack[:len(stack)-1]
			case gray:
				reportCycle(append(stack[:len(stack):len(stack)], e), e.to, seen, report)
			}
		}
		color[node] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
	return nil
}

// reportCycle extracts the cycle closing at head from the DFS edge stack,
// canonicalizes it (rotated so the smallest class leads), and reports it
// once at the witness position of its first edge.
func reportCycle(stack []edge, head string, seen map[string]bool, report func(lint.Diagnostic)) {
	start := 0
	for i, e := range stack {
		if e.from == head {
			start = i
			break
		}
	}
	cycle := stack[start:]
	// Rotate so the lexicographically smallest from-class leads.
	min := 0
	for i, e := range cycle {
		if e.from < cycle[min].from {
			min = i
		}
	}
	rotated := make([]edge, 0, len(cycle))
	rotated = append(rotated, cycle[min:]...)
	rotated = append(rotated, cycle[:min]...)

	var path strings.Builder
	for _, e := range rotated {
		path.WriteString(e.from)
		path.WriteString(" -> ")
	}
	path.WriteString(rotated[0].from)
	key := path.String()
	if seen[key] {
		return
	}
	seen[key] = true

	var wits strings.Builder
	for i, e := range rotated {
		if i > 0 {
			wits.WriteString(", ")
		}
		fmt.Fprintf(&wits, "%s->%s at %s:%d", shortClass(e.from), shortClass(e.to), e.pos.Filename, e.pos.Line)
	}
	report(lint.Diagnostic{
		Pos:     rotated[0].pos,
		Message: fmt.Sprintf("lock order cycle (potential deadlock): %s [%s]; pick one global order and release before acquiring against it", key, wits.String()),
	})
}

// shortClass trims the package path to its last element for witness lists.
func shortClass(c string) string {
	if i := strings.LastIndex(c, "/"); i >= 0 {
		return c[i+1:]
	}
	return c
}
