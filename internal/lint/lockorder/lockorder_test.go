package lockorder_test

import (
	"testing"

	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/lockorder"
)

func TestLockorderCycles(t *testing.T) {
	analysistest.Run(t, "testdata/src/cycle", lockorder.Analyzer)
}

func TestLockorderConsistentOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src/order", lockorder.Analyzer)
}
