package lockorder_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memhier/internal/lint"
	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/lockorder"
)

// TestMutationRemovedEdgeBreaksCycle proves the acquisition edges drive
// the cycle reports: deleting baPath's B-then-A inversion from the fixture
// must make the muA/muB cycle disappear (while the unrelated muC/muD and
// muE cycles survive). A lockorder that hallucinates edges — or one that
// stops collecting them — cannot pass both this test and
// TestLockorderCycles.
func TestMutationRemovedEdgeBreaksCycle(t *testing.T) {
	orig, err := analysistest.Diagnostics("testdata/src/cycle", lockorder.Analyzer)
	if err != nil {
		t.Fatalf("original fixture: %v", err)
	}
	if !hasCycle(orig, "muA -> ") {
		t.Fatalf("original fixture missing the muA/muB cycle; the mutation proves nothing")
	}

	dir := t.TempDir()
	data, err := os.ReadFile("testdata/src/cycle/cycle.go")
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	src := string(data)
	inversion := "\tmuB.Lock()\n\tmuA.Lock()\n\tn++\n\tmuA.Unlock()\n\tmuB.Unlock()\n"
	if !strings.Contains(src, inversion) {
		t.Fatalf("fixture no longer contains baPath's inversion; update the mutation")
	}
	src = strings.Replace(src, inversion, "\tmuB.Lock()\n\tn++\n\tmuB.Unlock()\n", 1)
	if err := os.WriteFile(filepath.Join(dir, "cycle.go"), []byte(src), 0o644); err != nil {
		t.Fatalf("writing mutated fixture: %v", err)
	}

	mutated, err := analysistest.Diagnostics(dir, lockorder.Analyzer)
	if err != nil {
		t.Fatalf("mutated fixture: %v", err)
	}
	if hasCycle(mutated, "muA -> ") {
		t.Errorf("muA/muB cycle still reported after its inversion was deleted")
	}
	if !hasCycle(mutated, "muC -> ") {
		t.Errorf("unrelated muC/muD cycle vanished with the muA/muB mutation")
	}
	if !hasCycle(mutated, "muE -> ") {
		t.Errorf("unrelated muE self-cycle vanished with the muA/muB mutation")
	}
}

func hasCycle(diags []lint.Diagnostic, marker string) bool {
	for _, d := range diags {
		if strings.Contains(d.Message, marker) {
			return true
		}
	}
	return false
}
