// Package guardedby checks the repo's lock-annotation convention: a struct
// field whose declaration carries a `// guarded by mu` comment may only be
// touched from a method of that struct while the named mutex is held. The
// sharded response cache, single-flight maps, and worker pool in
// internal/server and internal/experiments carry exactly these comments.
//
// The check is syntactic and flow-insensitive: a method that accesses a
// guarded field must contain a `recv.mu.Lock()` or `recv.mu.RLock()` call
// somewhere in its body. Methods whose names end in "Locked" declare that
// their caller holds the lock and are exempt; that suffix is the approved
// way to split a locked method into helpers.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"memhier/internal/lint"
)

// Analyzer flags guarded-field accesses without the guarding lock in scope.
var Analyzer = &lint.Analyzer{
	Name: "guardedby",
	Doc: `guardedby reports accesses to struct fields annotated "// guarded by mu"
from methods of the same struct that never acquire mu (no mu.Lock/RLock
call syntactically in the method body). Helpers that run under a caller's
lock must be named with a "Locked" suffix.`,
	Run: run,
}

var guardRe = regexp.MustCompile(`guarded by (\w+)`)

// guards maps a struct's type name → guarded field name → mutex field name.
type guards map[*types.TypeName]map[string]string

func run(pass *lint.Pass) error {
	g := collectGuards(pass)
	if len(g) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			checkMethod(pass, g, fn)
		}
	}
	return nil
}

// collectGuards finds `// guarded by <mu>` annotations on struct fields.
func collectGuards(pass *lint.Pass) guards {
	g := guards{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if g[tn] == nil {
						g[tn] = map[string]string{}
					}
					g[tn][name.Name] = mu
				}
			}
			return true
		})
	}
	return g
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkMethod verifies one method against its receiver struct's guards.
func checkMethod(pass *lint.Pass, g guards, fn *ast.FuncDecl) {
	recv := fn.Recv.List[0]
	tn := receiverTypeName(pass, recv.Type)
	fields := g[tn]
	if fields == nil || len(recv.Names) == 0 {
		return
	}
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return // contract: the caller holds the lock.
	}
	recvObj := pass.TypesInfo.Defs[recv.Names[0]]
	if recvObj == nil {
		return
	}

	locked := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := muSel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recvObj {
			locked[muSel.Sel.Name] = true
		}
		return true
	})

	reported := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recvObj {
			return true
		}
		mu, guarded := fields[sel.Sel.Name]
		if !guarded || locked[mu] || reported[sel.Sel.Name] {
			return true
		}
		reported[sel.Sel.Name] = true
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but %s never acquires %s.%s (hold the lock, or name the method with a Locked suffix if the caller holds it)",
			id.Name, sel.Sel.Name, mu, fn.Name.Name, id.Name, mu)
		return true
	})
}

// receiverTypeName resolves a method receiver's type expression to the
// named type it declares a method on.
func receiverTypeName(pass *lint.Pass, expr ast.Expr) *types.TypeName {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return receiverTypeName(pass, t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverTypeName(pass, t.X)
	case *ast.IndexListExpr:
		return receiverTypeName(pass, t.X)
	case *ast.Ident:
		tn, _ := pass.TypesInfo.Uses[t].(*types.TypeName)
		return tn
	}
	return nil
}
