// Package guardedby checks the repo's lock-annotation convention: a struct
// field whose declaration carries a `// guarded by mu` comment may only be
// touched while the named mutex is held. The sharded response cache,
// single-flight maps, worker pool, cluster health view, and parallel
// engine state all carry exactly these comments.
//
// v2 is flow-sensitive: it builds each function's control-flow graph
// (internal/lint/cfg) and runs a must-hold lock analysis over it — a lock
// counts as held at an access only if it is held on *every* path reaching
// that access. This catches what the syntactic v1 ("a Lock call appears
// somewhere in the body") could not:
//
//   - unlock-then-access: mu.Lock(); …; mu.Unlock(); s.field++
//   - branch-dependent locking: if fast { mu.Lock() }; s.field++
//   - early-return lock leaks: mu.Lock(); if err { return err } — the
//     return leaks the lock (no deferred unlock), reported even when every
//     access itself is guarded.
//
// The analysis is object-sensitive, not just receiver-based: sh := c.shard
// (key); sh.mu.Lock(); sh.items[k] — the lock and the access are matched
// through the local variable sh. Deferred unlocks keep the lock held to
// function exit (and exempt the leak check). Conventions carried over from
// v1 and extended:
//
//   - methods named with a "Locked" suffix run under their caller's lock
//     and are exempt;
//   - function literals assigned to variables named with a "Locked"
//     suffix (flushLocked := func() {…}) get the same contract — the
//     closure form of the helper-under-callers-lock idiom;
//   - a local variable initialized from a composite literal in the same
//     function (c := &Cluster{…}) is unshared during construction, so its
//     fields may be initialized without the lock.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"memhier/internal/lint"
	"memhier/internal/lint/cfg"
	"memhier/internal/lint/locks"
)

// Analyzer flags guarded-field accesses without the guarding lock
// must-held, and returns that leak an acquired lock.
var Analyzer = &lint.Analyzer{
	Name: "guardedby",
	Doc: `guardedby (v2, flow-sensitive) reports accesses to struct fields annotated
"// guarded by mu" at program points where the named mutex is not held on
every control-flow path, and return statements that leak a held lock (no
unlock on the path and no deferred unlock). Helpers that run under a
caller's lock must be named with a "Locked" suffix — methods and closure
variables alike.`,
	Run: run,
}

var guardRe = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo is the annotation table of one package: guarded field objects
// and the name of the mutex field that guards each.
type guardInfo struct {
	// mu maps a guarded field's object to its guarding mutex field name.
	mu map[*types.Var]string
	// owner maps the field to its declaring struct's type name (messages).
	owner map[*types.Var]string
}

func run(pass *lint.Pass) error {
	gi := collectGuards(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			exempt := strings.HasSuffix(fn.Name.Name, "Locked")
			if !exempt {
				checkFunc(pass, gi, fn.Name.Name, fn.Body)
			}
			checkLits(pass, gi, fn.Body)
		}
	}
	return nil
}

// checkLits finds function literals in body and checks each as its own
// function (lock state never flows into a literal: it may run on another
// goroutine or after the caller unlocked). Literals assigned to
// Locked-suffixed variables are exempt by contract.
func checkLits(pass *lint.Pass, gi guardInfo, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var lits []*ast.FuncLit
		var name string
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if lit, ok := rhs.(*ast.FuncLit); ok && i < len(s.Lhs) {
					if id, ok := s.Lhs[i].(*ast.Ident); ok {
						lits, name = append(lits, lit), id.Name
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range s.Values {
				if lit, ok := rhs.(*ast.FuncLit); ok && i < len(s.Names) {
					lits, name = append(lits, lit), s.Names[i].Name
				}
			}
		case *ast.FuncLit:
			// A literal not captured by the cases above (direct go/defer/
			// call argument); checked under its own empty lock state.
			checkFunc(pass, gi, "func literal", s.Body)
			return false
		}
		for _, lit := range lits {
			if !strings.HasSuffix(name, "Locked") {
				checkFunc(pass, gi, name, lit.Body)
			} else {
				// Exempt from the must-hold check, but literals nested
				// inside it still get their own analysis.
				checkLits(pass, gi, lit.Body)
			}
		}
		return len(lits) == 0
	})
}

// checkFunc runs the must-hold analysis over one function body.
func checkFunc(pass *lint.Pass, gi guardInfo, name string, body *ast.BlockStmt) {
	if len(gi.mu) == 0 {
		return
	}
	g := cfg.New(body)
	deferred := locks.DeferredReleases(pass.TypesInfo, g.Defers)
	fresh := freshObjects(pass.TypesInfo, body)

	flow := cfg.Flow[locks.Set]{
		Entry: locks.Set{},
		Join:  locks.Intersect,
		Equal: locks.Equal,
		Transfer: func(n ast.Node, in locks.Set) locks.Set {
			if _, ok := n.(*ast.DeferStmt); ok {
				return in // deferred releases run at exit, not here
			}
			for _, op := range locks.OpsIn(pass.TypesInfo, n) {
				if op.Kind == locks.Acquire {
					in = in.With(op.Key)
				} else {
					in = in.Without(op.Key)
				}
			}
			return in
		},
	}

	in := cfg.Forward(g, flow)
	reported := map[*types.Var]bool{}
	for _, blk := range g.Blocks {
		fact, reachable := in[blk]
		if !reachable {
			continue
		}
		exits := false
		for _, s := range blk.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		for i, n := range blk.Nodes {
			checkAccesses(pass, gi, name, n, fact, fresh, reported)
			if ret, ok := n.(*ast.ReturnStmt); ok {
				reportLeaks(pass, name, ret.Pos(), fact, deferred)
			}
			fact = flow.Transfer(n, fact)
			_ = i
		}
		// Fall-off-the-end path: a block flowing into Exit without a
		// return or panic terminator ends the function with fact held.
		if exits && !terminates(blk) {
			reportLeaks(pass, name, body.Rbrace, fact, deferred)
		}
	}
}

// terminates reports whether the block's last node explicitly ends the
// function (return, or a terminating panic call). Panics may hold locks —
// the process is crashing, or a recover-and-unlock defer handles it.
func terminates(blk *cfg.Block) bool {
	if len(blk.Nodes) == 0 {
		return false
	}
	switch last := blk.Nodes[len(blk.Nodes)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// reportLeaks flags locks still must-held at a function exit that no
// deferred unlock releases.
func reportLeaks(pass *lint.Pass, name string, pos token.Pos, held, deferred locks.Set) {
	var leaked []string
	for key := range held {
		if deferred[key] {
			continue
		}
		leaked = append(leaked, lockName(key))
	}
	sort.Strings(leaked)
	for _, l := range leaked {
		pass.Reportf(pos, "%s returns with %s held: unlock before returning or defer the unlock", name, l)
	}
}

func lockName(key locks.Key) string {
	return key.Root.Name() + key.Path
}

// checkAccesses walks one leaf for guarded-field accesses and verifies the
// guarding lock is in the must-held set. Function literals are skipped —
// they are separate functions, analyzed by checkLits.
func checkAccesses(pass *lint.Pass, gi guardInfo, name string, n ast.Node, held locks.Set, fresh map[types.Object]bool, reported map[*types.Var]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, guarded := gi.mu[field]
		if !guarded || reported[field] {
			return true
		}
		base, _, ok := locks.Resolve(pass.TypesInfo, sel.X)
		if !ok {
			return true // unnameable base: cannot match a lock, stay quiet
		}
		if fresh[base.Root] && base.Path == "" {
			return true // constructing a not-yet-shared object
		}
		need := locks.Key{Root: base.Root, Path: base.Path + "." + mu}
		if held[need] {
			return true
		}
		reported[field] = true
		pass.Reportf(sel.Pos(),
			"%s.%s (%s.%s) is guarded by %s, but %s is not held on every path to this access (hold %s, or use a Locked-suffix helper if the caller holds it)",
			exprString(sel.X), field.Name(), gi.owner[field], field.Name(), mu, lockName(need), lockName(need))
		return true
	})
}

// exprString renders a selector base for messages (best effort).
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprString(e.X)
	}
	return "<expr>"
}

// freshObjects finds local variables initialized from composite literals
// in this function: objects still private to the constructor, whose fields
// may be initialized lock-free.
func freshObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				return true
			}
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				if !isCompositeLit(rhs) {
					continue
				}
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range s.Values {
				if i >= len(s.Names) || !isCompositeLit(rhs) {
					continue
				}
				if obj := info.Defs[s.Names[i]]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func isCompositeLit(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// collectGuards finds `// guarded by <mu>` annotations on struct fields.
func collectGuards(pass *lint.Pass) guardInfo {
	gi := guardInfo{mu: map[*types.Var]string{}, owner: map[*types.Var]string{}}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						gi.mu[v] = mu
						gi.owner[v] = ts.Name.Name
					}
				}
			}
			return true
		})
	}
	return gi
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}
