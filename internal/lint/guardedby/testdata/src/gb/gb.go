// Package gb exercises the guardedby analyzer.
package gb

import "sync"

// counter annotates its state the way the repo's sharded cache and worker
// pool do.
type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	// hits is also protected; the annotation may sit in a doc comment.
	// guarded by mu
	hits int
	free int // unguarded: accessible without the lock
}

// inc holds the lock: the approved idiom.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.hits++
}

// get forgets the lock.
func (c *counter) get() int {
	return c.n // want "c.n .* guarded by mu, but c.mu is not held on every path"
}

// reset touches two guarded fields without the lock; each is reported once.
func (c *counter) reset() {
	c.n = 0    // want "c.n .* guarded by mu, but c.mu is not held on every path"
	c.hits = 0 // want "c.hits .* guarded by mu, but c.mu is not held on every path"
}

// bumpLocked declares via its name that the caller holds the lock.
func (c *counter) bumpLocked() {
	c.n++
}

// touchFree reads an unguarded field: no lock needed.
func (c *counter) touchFree() int {
	return c.free
}

// rwstate covers RLock and RWMutex.
type rwstate struct {
	mu   sync.RWMutex
	data map[string]int // guarded by mu
}

func (s *rwstate) lookup(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[k]
}

func (s *rwstate) peek(k string) int {
	return s.data[k] // want "s.data .* guarded by mu, but s.mu is not held on every path"
}

// allowed demonstrates a justified suppression (e.g. a read that races
// benignly by design and is documented as such).
func (s *rwstate) allowed(k string) int {
	//chc:allow guardedby -- fixture: documented benign race
	return s.data[k]
}
