// gb_flow.go exercises what v2's CFG/dataflow analysis sees and the
// syntactic v1 could not: early-return lock leaks, branch-dependent
// locking, unlock-then-access, object-sensitive lock matching, the
// Locked-suffix closure contract, and constructor freshness.
package gb

import (
	"errors"
	"sync"
)

var errFixture = errors.New("fixture")

type box struct {
	mu  sync.Mutex
	val int // guarded by mu
}

// earlyReturn is THE v1 blind spot: a Lock call appears in the body, so
// the syntactic check was satisfied — but the error path returns with the
// lock still held.
func (b *box) earlyReturn(fail bool) error {
	b.mu.Lock()
	if fail {
		return errFixture // want "earlyReturn returns with b.mu held"
	}
	b.val++
	b.mu.Unlock()
	return nil
}

// deferred is the same shape done right: the deferred unlock covers every
// return, so neither the early return nor the access is a finding.
func (b *box) deferred(fail bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if fail {
		return errFixture
	}
	b.val++
	return nil
}

// branchDependent only locks on one path; the access is not must-guarded.
func (b *box) branchDependent(fast bool) {
	if fast {
		b.mu.Lock()
	}
	b.val++ // want "b.val .* b.mu is not held on every path"
	if fast {
		b.mu.Unlock()
	}
}

// unlockThenUse touches the field after releasing.
func (b *box) unlockThenUse() int {
	b.mu.Lock()
	b.val = 1
	b.mu.Unlock()
	return b.val // want "b.val .* b.mu is not held on every path"
}

// lockLoopBody re-locks around every iteration: clean.
func (b *box) lockLoopBody(n int) {
	for i := 0; i < n; i++ {
		b.mu.Lock()
		b.val++
		b.mu.Unlock()
	}
}

// newBox initializes a guarded field before the value is shared: the
// freshly-constructed object needs no lock.
func newBox() *box {
	b := &box{}
	b.val = 7
	return b
}

type shardSet struct {
	shards []*box
}

func (s *shardSet) pick(i int) *box { return s.shards[i] }

// addVia locks through a local variable: the lock and the access match on
// the variable's object, not just the receiver.
func (s *shardSet) addVia(i int) {
	sh := s.pick(i)
	sh.mu.Lock()
	sh.val++
	sh.mu.Unlock()
}

// addWrongLock holds a's lock while touching c's field: different objects,
// different locks.
func (s *shardSet) addWrongLock(i, j int) {
	a := s.pick(i)
	c := s.pick(j)
	a.mu.Lock()
	c.val++ // want "c.val .* c.mu is not held on every path"
	a.mu.Unlock()
}

// total locks each shard inside the range body — a regression guard for
// the CFG builder: the body must not be analyzed at the loop header.
func (s *shardSet) total() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.val
		sh.mu.Unlock()
	}
	return n
}

// batch uses the closure form of the Locked-suffix contract: a literal
// assigned to a Locked-suffixed variable runs under its caller's lock.
func (b *box) batch(n int) {
	bumpLocked := func() {
		b.val++
	}
	b.mu.Lock()
	for i := 0; i < n; i++ {
		bumpLocked()
	}
	b.mu.Unlock()
}

// closureMiss shows a plain closure gets its own (empty) lock state: the
// literal may run on any goroutine at any time.
func (b *box) closureMiss() func() {
	f := func() {
		b.val++ // want "b.val .* b.mu is not held on every path"
	}
	return f
}
