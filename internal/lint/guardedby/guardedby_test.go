package guardedby_test

import (
	"testing"

	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/guardedby"
)

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, "testdata/src/gb", guardedby.Analyzer)
}
