package guardedby_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memhier/internal/lint/analysistest"
	"memhier/internal/lint/guardedby"
)

// TestMutationAnnotationIsLoadBearing proves the "guarded by mu" comments
// drive the analysis: the same fixture with every annotation stripped must
// produce zero diagnostics, which would fail every positive want in the
// fixture suite. A refactor that silently drops annotation parsing cannot
// pass both this test and TestGuardedby.
func TestMutationAnnotationIsLoadBearing(t *testing.T) {
	orig, err := analysistest.Diagnostics("testdata/src/gb", guardedby.Analyzer)
	if err != nil {
		t.Fatalf("original fixture: %v", err)
	}
	if len(orig) == 0 {
		t.Fatalf("original fixture produced no diagnostics; the mutation proves nothing")
	}

	dir := copyFixture(t, "testdata/src/gb", func(src string) string {
		return strings.ReplaceAll(src, "guarded by", "tracked near")
	})
	mutated, err := analysistest.Diagnostics(dir, guardedby.Analyzer)
	if err != nil {
		t.Fatalf("mutated fixture: %v", err)
	}
	if len(mutated) != 0 {
		t.Errorf("stripped annotations still produced %d diagnostics, first: %s", len(mutated), mutated[0])
	}
}

// copyFixture copies every fixture file through transform into a temp dir.
func copyFixture(t *testing.T, src string, transform func(string) string) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatalf("reading %s: %v", ent.Name(), err)
		}
		out := transform(string(data))
		if err := os.WriteFile(filepath.Join(dir, ent.Name()), []byte(out), 0o644); err != nil {
			t.Fatalf("writing mutated %s: %v", ent.Name(), err)
		}
	}
	return dir
}
