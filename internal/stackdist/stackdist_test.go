package stackdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDistance recomputes stack distances with an explicit LRU stack, the
// O(n^2) reference implementation the Fenwick version must match.
type naiveLRU struct {
	stack []uint64
}

func (n *naiveLRU) touch(d uint64) int {
	for i, v := range n.stack {
		if v == d {
			n.stack = append(n.stack[:i], n.stack[i+1:]...)
			n.stack = append([]uint64{d}, n.stack...)
			return i
		}
	}
	n.stack = append([]uint64{d}, n.stack...)
	return -1
}

func TestTouchSimpleSequences(t *testing.T) {
	tests := []struct {
		name string
		refs []uint64
		want []int
	}{
		{"repeat", []uint64{1, 1, 1}, []int{-1, 0, 0}},
		{"two items", []uint64{1, 2, 1, 2}, []int{-1, -1, 1, 1}},
		{"abcba", []uint64{1, 2, 3, 2, 1}, []int{-1, -1, -1, 1, 2}},
		{"sequential cold", []uint64{1, 2, 3, 4}, []int{-1, -1, -1, -1}},
		{"loop", []uint64{1, 2, 3, 1, 2, 3}, []int{-1, -1, -1, 2, 2, 2}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAnalyzer(8)
			for i, r := range tc.refs {
				if got := a.Touch(r); got != tc.want[i] {
					t.Errorf("ref %d (%d): distance %d, want %d", i, r, got, tc.want[i])
				}
			}
		})
	}
}

func TestTouchMatchesNaiveLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := NewAnalyzer(64)
		n := &naiveLRU{}
		universe := uint64(2 + rng.Intn(50))
		for i := 0; i < 500; i++ {
			d := uint64(rng.Intn(int(universe)))
			got, want := a.Touch(d), n.touch(d)
			if got != want {
				t.Fatalf("trial %d ref %d datum %d: fenwick=%d naive=%d", trial, i, d, got, want)
			}
		}
	}
}

func TestAnalyzerCounters(t *testing.T) {
	a := NewAnalyzer(0)
	for _, r := range []uint64{5, 6, 5, 7, 6, 5} {
		a.Touch(r)
	}
	if a.References() != 6 {
		t.Errorf("References = %d, want 6", a.References())
	}
	if a.Cold() != 3 {
		t.Errorf("Cold = %d, want 3", a.Cold())
	}
	if a.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", a.Distinct())
	}
}

func TestDistanceBoundedByDistinct(t *testing.T) {
	// Property: a stack distance is always < number of distinct data seen.
	f := func(seq []uint8) bool {
		a := NewAnalyzer(len(seq))
		for _, r := range seq {
			d := a.Touch(uint64(r))
			if d >= a.Distinct() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributionTotals(t *testing.T) {
	f := func(seq []uint8) bool {
		a := NewAnalyzer(len(seq))
		for _, r := range seq {
			a.Touch(uint64(r))
		}
		d := a.Distribution()
		return d.Total+d.Cold == a.References() && int(d.Cold) == a.Distinct()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFMonotoneAndLimits(t *testing.T) {
	a := NewAnalyzer(64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a.Touch(uint64(rng.Intn(40)))
	}
	d := a.Distribution()
	prev := 0.0
	for x := 0; x <= 45; x++ {
		c := d.CDF(x)
		if c < prev-1e-15 {
			t.Fatalf("CDF not monotone at %d: %v < %v", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF(%d) = %v out of [0,1]", x, c)
		}
		prev = c
	}
	if got := d.CDF(1 << 30); got != 1 {
		t.Errorf("CDF(inf) = %v, want 1", got)
	}
	if got := d.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v, want 0", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var d Distribution
	if got := d.CDF(100); got != 0 {
		t.Errorf("empty CDF = %v, want 0", got)
	}
}

func TestPointsMatchCDF(t *testing.T) {
	a := NewAnalyzer(64)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a.Touch(uint64(rng.Intn(30)))
	}
	d := a.Distribution()
	xs, ps := d.Points()
	if len(xs) != len(ps) || len(xs) != len(d.Distances) {
		t.Fatalf("Points length mismatch")
	}
	for i := range xs {
		if got := d.CDF(int(xs[i])); math.Abs(got-ps[i]) > 1e-12 {
			t.Errorf("Points[%d]: CDF(%v)=%v, point says %v", i, xs[i], got, ps[i])
		}
	}
}

// TestHitRatioMatchesLRUSimulation is the LRU inclusion cross-check: the
// analytic hit ratio from stack distances must equal an actual fully
// associative LRU cache simulation at every capacity.
func TestHitRatioMatchesLRUSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	refs := make([]uint64, 3000)
	for i := range refs {
		// Mix of sequential and random to get a nontrivial curve.
		if rng.Intn(3) == 0 {
			refs[i] = uint64(i % 64)
		} else {
			refs[i] = uint64(rng.Intn(128))
		}
	}
	a := NewAnalyzer(len(refs))
	for _, r := range refs {
		a.Touch(r)
	}
	d := a.Distribution()

	for _, capacity := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		hits := 0
		lru := &naiveLRU{}
		for _, r := range refs {
			if dist := lru.touch(r); dist >= 0 && dist < capacity {
				hits++
			}
			if len(lru.stack) > capacity {
				// Distance-based hit test above does not require eviction,
				// but keep the stack bounded for speed.
				lru.stack = lru.stack[:capacity+1]
			}
		}
		want := float64(hits) / float64(len(refs))
		if got := d.HitRatio(capacity); math.Abs(got-want) > 1e-12 {
			t.Errorf("capacity %d: HitRatio=%v, simulated=%v", capacity, got, want)
		}
	}
}

func TestHitRatioInclusion(t *testing.T) {
	// Larger caches never hit less (LRU inclusion property).
	a := NewAnalyzer(64)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4000; i++ {
		a.Touch(uint64(rng.Intn(200)))
	}
	d := a.Distribution()
	prev := 0.0
	for c := 1; c <= 256; c *= 2 {
		h := d.HitRatio(c)
		if h < prev-1e-15 {
			t.Fatalf("hit ratio decreased at capacity %d: %v < %v", c, h, prev)
		}
		prev = h
	}
}

func TestHitRatioEdgeCases(t *testing.T) {
	var d Distribution
	if d.HitRatio(8) != 0 {
		t.Error("empty distribution should have 0 hit ratio")
	}
	a := NewAnalyzer(4)
	a.Touch(1)
	a.Touch(1)
	dd := a.Distribution()
	if got := dd.HitRatio(0); got != 0 {
		t.Errorf("capacity 0 hit ratio = %v, want 0", got)
	}
	if got := dd.HitRatio(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("capacity 1 hit ratio = %v, want 0.5", got)
	}
}

func TestMean(t *testing.T) {
	a := NewAnalyzer(8)
	for _, r := range []uint64{1, 2, 1, 2} { // distances 1, 1
		a.Touch(r)
	}
	d := a.Distribution()
	if got := d.Mean(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Mean = %v, want 1", got)
	}
	var empty Distribution
	if !math.IsNaN(empty.Mean()) {
		t.Error("empty Mean should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	a := NewAnalyzer(16)
	// distances: 0 x3, 2 x1
	for _, r := range []uint64{1, 1, 1, 1, 2, 3, 1} {
		a.Touch(r)
	}
	d := a.Distribution()
	q, err := d.Quantile(0.5)
	if err != nil || q != 0 {
		t.Errorf("Quantile(0.5) = %d, %v; want 0", q, err)
	}
	q, err = d.Quantile(1)
	if err != nil || q != 2 {
		t.Errorf("Quantile(1) = %d, %v; want 2", q, err)
	}
	if _, err := d.Quantile(0); err == nil {
		t.Error("Quantile(0) accepted")
	}
	if _, err := d.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5) accepted")
	}
	var empty Distribution
	if _, err := empty.Quantile(0.5); err == nil {
		t.Error("Quantile on empty accepted")
	}
}

func TestMerge(t *testing.T) {
	a1 := NewAnalyzer(8)
	for _, r := range []uint64{1, 2, 1} { // distance 1, cold 2
		a1.Touch(r)
	}
	a2 := NewAnalyzer(8)
	for _, r := range []uint64{5, 5, 6, 5} { // distances 0, 1; cold 2
		a2.Touch(r)
	}
	m := Merge(a1.Distribution(), a2.Distribution())
	if m.Total != 3 || m.Cold != 4 {
		t.Fatalf("Merge totals = %d finite, %d cold; want 3, 4", m.Total, m.Cold)
	}
	if got := m.CDF(0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("merged CDF(0) = %v, want 1/3", got)
	}
	if got := m.CDF(1); got != 1 {
		t.Errorf("merged CDF(1) = %v, want 1", got)
	}
}

func TestMergePreservesMass(t *testing.T) {
	f := func(s1, s2 []uint8) bool {
		a1, a2 := NewAnalyzer(len(s1)), NewAnalyzer(len(s2))
		for _, r := range s1 {
			a1.Touch(uint64(r))
		}
		for _, r := range s2 {
			a2.Touch(uint64(r))
		}
		d1, d2 := a1.Distribution(), a2.Distribution()
		m := Merge(d1, d2)
		return m.Total == d1.Total+d2.Total && m.Cold == d1.Cold+d2.Cold
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsample(t *testing.T) {
	a := NewAnalyzer(1 << 12)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		a.Touch(uint64(rng.Intn(3000)))
	}
	d := a.Distribution()
	ds := d.Downsample(50)
	if len(ds.Distances) > 51 {
		t.Errorf("Downsample(50) kept %d points", len(ds.Distances))
	}
	if ds.Total != d.Total || ds.Cold != d.Cold {
		t.Errorf("Downsample lost mass: %d/%d vs %d/%d", ds.Total, ds.Cold, d.Total, d.Cold)
	}
	// Tail CDF must be preserved exactly.
	if got, want := ds.CDF(1<<30), d.CDF(1<<30); got != want {
		t.Errorf("tail CDF changed: %v vs %v", got, want)
	}
	// No-op cases.
	same := d.Downsample(0)
	if len(same.Distances) != len(d.Distances) {
		t.Error("Downsample(0) should be a no-op")
	}
	small := d.Downsample(1 << 20)
	if len(small.Distances) != len(d.Distances) {
		t.Error("Downsample larger than support should be a no-op")
	}
}

func BenchmarkTouch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewAnalyzer(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Touch(uint64(rng.Intn(1 << 16)))
	}
}
