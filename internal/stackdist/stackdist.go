// Package stackdist computes exact LRU stack distances of memory reference
// streams and summarizes them as histograms and cumulative distributions.
//
// The stack distance of a reference to datum A is the number of distinct
// data touched since the previous reference to A (the paper counts the
// unique items strictly between the two references; a re-reference to the
// most recently used item has distance 0, and the hit ratio of a fully
// associative LRU cache of capacity c equals P(distance < c)). First-time
// references have infinite distance and are reported separately.
//
// The analyzer uses the classic Fenwick-tree (binary indexed tree) marker
// algorithm: each distinct datum keeps the position of its last reference;
// a reference at position t to a datum last seen at position p has distance
// equal to the number of markers in (p, t), maintained in O(log n) per
// reference.
package stackdist

import (
	"fmt"
	"math"
	"sort"
)

// Analyzer ingests a reference stream and produces stack-distance
// statistics. The zero value is not usable; call NewAnalyzer.
type Analyzer struct {
	last map[uint64]int // datum -> position of last reference (1-based in tree)
	tree []int          // Fenwick tree over reference positions; 1 if position is the latest ref to its datum
	pos  int            // number of references ingested
	hist map[int]uint64 // distance -> count (finite distances)
	cold uint64         // first-time references (infinite distance)
	max  int            // max finite distance observed
}

// NewAnalyzer returns an Analyzer expecting roughly capacityHint references
// (the structure grows as needed; the hint only pre-sizes storage).
func NewAnalyzer(capacityHint int) *Analyzer {
	if capacityHint < 16 {
		capacityHint = 16
	}
	return &Analyzer{
		last: make(map[uint64]int, capacityHint/4),
		tree: make([]int, 1, capacityHint+1),
		hist: make(map[int]uint64),
	}
}

func (a *Analyzer) add(i, delta int) {
	for ; i < len(a.tree); i += i & (-i) {
		a.tree[i] += delta
	}
}

func (a *Analyzer) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += a.tree[i]
	}
	return s
}

// Touch ingests one reference to the given datum (an opaque identity, e.g.
// a cache-line address) and returns its stack distance, or -1 for a
// first-time (cold) reference.
func (a *Analyzer) Touch(datum uint64) int {
	a.pos++
	for len(a.tree) <= a.pos {
		// A new Fenwick node at index i covers the range (i-lowbit(i), i];
		// initialize it with the mass already in that range so that later
		// prefix sums over grown indices stay correct.
		i := len(a.tree)
		a.tree = append(a.tree, a.sum(i-1)-a.sum(i-(i&-i)))
	}
	d := -1
	if p, ok := a.last[datum]; ok {
		// Markers strictly after p and before the current position are the
		// distinct data touched in between.
		d = a.sum(a.pos-1) - a.sum(p)
		a.add(p, -1)
		a.hist[d]++
		if d > a.max {
			a.max = d
		}
	} else {
		a.cold++
	}
	a.last[datum] = a.pos
	a.add(a.pos, 1)
	return d
}

// References returns the total number of references ingested.
func (a *Analyzer) References() uint64 { return uint64(a.pos) }

// Cold returns the number of first-time references.
func (a *Analyzer) Cold() uint64 { return a.cold }

// Distinct returns the number of distinct data seen.
func (a *Analyzer) Distinct() int { return len(a.last) }

// Distribution extracts the empirical distance distribution accumulated so
// far. It is safe to keep ingesting afterwards.
func (a *Analyzer) Distribution() Distribution {
	ds := make([]int, 0, len(a.hist))
	for d := range a.hist {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	dist := Distribution{
		Distances: ds,
		Counts:    make([]uint64, len(ds)),
		Cold:      a.cold,
	}
	for i, d := range ds {
		dist.Counts[i] = a.hist[d]
		dist.Total += a.hist[d]
	}
	return dist
}

// Distribution is an empirical stack-distance distribution: sorted distinct
// finite distances with their reference counts, plus the cold-miss count.
type Distribution struct {
	Distances []int    // sorted ascending
	Counts    []uint64 // parallel to Distances
	Cold      uint64   // first-time references (infinite distance)
	Total     uint64   // sum of Counts (finite-distance references)
}

// CDF returns the cumulative probability P(distance <= x) among
// finite-distance references. The curve is what the paper's eq. (1) is fit
// against. An empty distribution yields P(x) = 0.
func (d Distribution) CDF(x int) float64 {
	if d.Total == 0 || x < 0 {
		return 0
	}
	i := sort.SearchInts(d.Distances, x+1) // first index with distance > x
	var c uint64
	for j := 0; j < i; j++ {
		c += d.Counts[j]
	}
	return float64(c) / float64(d.Total)
}

// Points returns the empirical CDF as (x, P(distance <= x)) pairs, one per
// distinct observed distance, suitable for least-squares fitting.
func (d Distribution) Points() (xs []float64, ps []float64) {
	xs = make([]float64, len(d.Distances))
	ps = make([]float64, len(d.Distances))
	var c uint64
	for i, x := range d.Distances {
		c += d.Counts[i]
		xs[i] = float64(x)
		ps[i] = float64(c) / float64(d.Total)
	}
	return xs, ps
}

// HitRatio returns the hit ratio of a fully associative LRU cache with the
// given capacity (in the same units as the datum identities, e.g. lines),
// counting cold misses as misses: hits = references with distance < capacity.
func (d Distribution) HitRatio(capacity int) float64 {
	refs := d.Total + d.Cold
	if refs == 0 || capacity <= 0 {
		return 0
	}
	i := sort.SearchInts(d.Distances, capacity) // first index with distance >= capacity
	var hits uint64
	for j := 0; j < i; j++ {
		hits += d.Counts[j]
	}
	return float64(hits) / float64(refs)
}

// Mean returns the mean finite stack distance, or NaN if none were observed.
func (d Distribution) Mean() float64 {
	if d.Total == 0 {
		return math.NaN()
	}
	var s float64
	for i, x := range d.Distances {
		s += float64(x) * float64(d.Counts[i])
	}
	return s / float64(d.Total)
}

// Quantile returns the smallest distance q such that P(distance <= q) >= p,
// for p in (0, 1]. It returns an error on an empty distribution or a p out
// of range.
func (d Distribution) Quantile(p float64) (int, error) {
	if d.Total == 0 {
		return 0, fmt.Errorf("stackdist: quantile of empty distribution")
	}
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("stackdist: quantile p=%v out of (0,1]", p)
	}
	target := uint64(math.Ceil(p * float64(d.Total)))
	var c uint64
	for i, x := range d.Distances {
		c += d.Counts[i]
		if c >= target {
			return x, nil
		}
	}
	return d.Distances[len(d.Distances)-1], nil
}

// Merge combines two distributions (e.g. from different processors of an
// SPMD program) into one.
func Merge(a, b Distribution) Distribution {
	m := make(map[int]uint64, len(a.Distances)+len(b.Distances))
	for i, d := range a.Distances {
		m[d] += a.Counts[i]
	}
	for i, d := range b.Distances {
		m[d] += b.Counts[i]
	}
	ds := make([]int, 0, len(m))
	for d := range m {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	out := Distribution{Distances: ds, Counts: make([]uint64, len(ds)), Cold: a.Cold + b.Cold}
	for i, d := range ds {
		out.Counts[i] = m[d]
		out.Total += m[d]
	}
	return out
}

// Downsample returns a distribution whose support is reduced to at most
// maxPoints logarithmically spaced distances, preserving total mass by
// merging each bucket into its largest member distance. Fitting quality is
// insensitive to this compaction while it bounds the cost of least squares
// on very long traces.
func (d Distribution) Downsample(maxPoints int) Distribution {
	if maxPoints <= 0 || len(d.Distances) <= maxPoints {
		return d
	}
	lo, hi := d.Distances[0], d.Distances[len(d.Distances)-1]
	if lo < 1 {
		lo = 1
	}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(maxPoints))
	if ratio <= 1 {
		ratio = 1 + 1e-9
	}
	out := Distribution{Cold: d.Cold}
	bucketHi := float64(lo)
	var acc uint64
	accDist := d.Distances[0]
	flush := func() {
		if acc > 0 {
			out.Distances = append(out.Distances, accDist)
			out.Counts = append(out.Counts, acc)
			out.Total += acc
			acc = 0
		}
	}
	for i, x := range d.Distances {
		for float64(x) > bucketHi {
			flush()
			bucketHi *= ratio
		}
		acc += d.Counts[i]
		accDist = x
	}
	flush()
	return out
}
