// Package stackdist computes exact LRU stack distances of memory reference
// streams and summarizes them as histograms and cumulative distributions.
//
// The stack distance of a reference to datum A is the number of distinct
// data touched since the previous reference to A (the paper counts the
// unique items strictly between the two references; a re-reference to the
// most recently used item has distance 0, and the hit ratio of a fully
// associative LRU cache of capacity c equals P(distance < c)). First-time
// references have infinite distance and are reported separately.
//
// The analyzer uses the classic Fenwick-tree (binary indexed tree) marker
// algorithm: each distinct datum keeps the position of its last reference;
// a reference at position t to a datum last seen at position p has distance
// equal to the number of markers in (p, t), maintained in O(log n) per
// reference.
//
//chc:deterministic
package stackdist

import (
	"fmt"
	"math"
	"sort"

	"memhier/internal/trace"
)

// Analyzer ingests a reference stream and produces stack-distance
// statistics. The zero value is not usable; call NewAnalyzer.
//
// Storage is laid out for the ingest hot path: the distance histogram is a
// dense slice indexed by distance (a distance never exceeds the number of
// distinct data, so the slice is bounded by the footprint), the Fenwick
// tree is pre-sized from the capacity hint so hinted ingestion never runs
// the tree-growth path, and the datum -> last-position table is a
// linear-probing hash table that resolves lookup and update with a single
// probe per reference (a Go map costs two hashed operations here).
type Analyzer struct {
	last lastTable // datum -> position of last reference (1-based in tree)
	tree []int32   // Fenwick tree over reference positions; 1 if position is the latest ref to its datum
	pos  int       // number of references ingested
	hist []uint64  // hist[d] = count of references at finite distance d
	cold uint64    // first-time references (infinite distance)
	max  int       // max finite distance observed
}

// lastTable is an open-addressing (linear probing) hash table mapping a
// datum to the 1-based position of its previous reference. A slot with
// position 0 is empty — positions are 1-based, so no separate occupancy
// marks are needed. The table doubles at 50% load.
type lastTable struct {
	keys []uint64
	pos  []int32
	n    int
	mask uint64
}

func newLastTable(hint int) lastTable {
	size := 16
	for size < 2*hint {
		size *= 2
	}
	return lastTable{
		keys: make([]uint64, size),
		pos:  make([]int32, size),
		mask: uint64(size - 1),
	}
}

// slot returns the index holding key, or the empty slot where it belongs.
func (t *lastTable) slot(key uint64) int {
	// Fibonacci hashing spreads clustered line addresses across the table.
	i := (key * 0x9E3779B97F4A7C15) & t.mask
	for t.pos[i] != 0 && t.keys[i] != key {
		i = (i + 1) & t.mask
	}
	return int(i)
}

func (t *lastTable) grow() {
	old := *t
	size := 2 * len(old.keys)
	t.keys = make([]uint64, size)
	t.pos = make([]int32, size)
	t.mask = uint64(size - 1)
	for i, p := range old.pos {
		if p != 0 {
			j := t.slot(old.keys[i])
			t.keys[j] = old.keys[i]
			t.pos[j] = p
		}
	}
}

func (t *lastTable) reset() {
	clear(t.pos)
	t.n = 0
}

// maxRefs bounds one Analyzer's stream length: tree nodes hold int32
// marker counts (halving the footprint the Fenwick walks traverse).
const maxRefs = math.MaxInt32

// NewAnalyzer returns an Analyzer expecting roughly capacityHint references
// (the structure grows as needed; the hint only pre-sizes storage).
func NewAnalyzer(capacityHint int) *Analyzer {
	if capacityHint < 16 {
		capacityHint = 16
	}
	if capacityHint > maxRefs {
		capacityHint = maxRefs
	}
	tableHint := capacityHint / 4
	if tableHint > 1<<20 {
		tableHint = 1 << 20 // the table doubles on demand past this
	}
	return &Analyzer{
		last: newLastTable(tableHint),
		tree: make([]int32, capacityHint+1),
	}
}

// Reset returns the analyzer to its empty state, keeping the allocated
// tree, histogram, and hash-table storage for reuse on the next stream.
func (a *Analyzer) Reset() {
	a.last.reset()
	t := a.tree[:cap(a.tree)]
	clear(t)
	a.tree = t
	clear(a.hist)
	a.pos = 0
	a.cold = 0
	a.max = 0
}

func (a *Analyzer) add(i, delta int) {
	for ; i < len(a.tree); i += i & (-i) {
		a.tree[i] += int32(delta)
	}
}

func (a *Analyzer) sum(i int) int {
	s := int32(0)
	for ; i > 0; i -= i & (-i) {
		s += a.tree[i]
	}
	return int(s)
}

// rangeSum returns the marker count in (p, q], p <= q: sum(q) - sum(p)
// computed by peeling both prefix paths until they meet at their common
// ancestor. When the previous reference is recent (the common case under
// locality) this walks O(log(q-p)) nodes instead of two full prefix walks.
func (a *Analyzer) rangeSum(p, q int) int {
	s := int32(0)
	for q > p {
		s += a.tree[q]
		q -= q & (-q)
	}
	for p > q {
		s -= a.tree[p]
		p -= p & (-p)
	}
	return int(s)
}

// grow extends the Fenwick tree to cover position pos. A new node at index
// i covers the range (i-lowbit(i), i]; initialize it with the mass already
// in that range so that later prefix sums over grown indices stay correct.
func (a *Analyzer) grow(pos int) {
	if pos > maxRefs {
		panic("stackdist: more than 2^31-1 references in one analyzer")
	}
	for len(a.tree) <= pos {
		i := len(a.tree)
		a.tree = append(a.tree, int32(a.sum(i-1)-a.sum(i-(i&-i))))
	}
}

// Touch ingests one reference to the given datum (an opaque identity, e.g.
// a cache-line address) and returns its stack distance, or -1 for a
// first-time (cold) reference.
func (a *Analyzer) Touch(datum uint64) int {
	a.pos++
	if len(a.tree) <= a.pos {
		a.grow(a.pos)
	}
	d := -1
	i := a.last.slot(datum)
	if p := int(a.last.pos[i]); p != 0 {
		// Markers strictly after p and before the current position are the
		// distinct data touched in between.
		d = a.rangeSum(p, a.pos-1)
		a.add(p, -1)
		a.count(d)
	} else {
		a.last.keys[i] = datum
		a.last.n++
		a.cold++
	}
	a.last.pos[i] = int32(a.pos)
	a.add(a.pos, 1)
	if 2*a.last.n > len(a.last.keys) {
		a.last.grow()
	}
	return d
}

// count records one finite distance in the dense histogram.
func (a *Analyzer) count(d int) {
	if d >= len(a.hist) {
		if d < cap(a.hist) {
			a.hist = a.hist[:d+1]
		} else {
			grown := make([]uint64, d+1, max(2*cap(a.hist), d+1))
			copy(grown, a.hist)
			a.hist = grown
		}
	}
	a.hist[d]++
	if d > a.max {
		a.max = d
	}
}

// TouchAll ingests every memory reference of a batch of trace events at the
// given line granularity (a power of two; 1 means item granularity),
// skipping compute and barrier events. It is the bulk entry point for
// characterization passes: one call per event run, no per-reference call
// overhead or distance returns.
func (a *Analyzer) TouchAll(events []trace.Event, lineSize int) {
	if lineSize < 1 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("stackdist: line size %d not a power of two", lineSize))
	}
	shift := 0
	for 1<<shift < lineSize {
		shift++
	}
	for _, e := range events {
		if e.Kind != trace.Read && e.Kind != trace.Write {
			continue
		}
		datum := e.Addr >> shift
		a.pos++
		if len(a.tree) <= a.pos {
			a.grow(a.pos)
		}
		i := a.last.slot(datum)
		if p := int(a.last.pos[i]); p != 0 {
			a.count(a.rangeSum(p, a.pos-1))
			a.add(p, -1)
		} else {
			a.last.keys[i] = datum
			a.last.n++
			a.cold++
		}
		a.last.pos[i] = int32(a.pos)
		a.add(a.pos, 1)
		if 2*a.last.n > len(a.last.keys) {
			a.last.grow()
		}
	}
}

// References returns the total number of references ingested.
func (a *Analyzer) References() uint64 { return uint64(a.pos) }

// Cold returns the number of first-time references.
func (a *Analyzer) Cold() uint64 { return a.cold }

// Distinct returns the number of distinct data seen.
func (a *Analyzer) Distinct() int { return a.last.n }

// Distribution extracts the empirical distance distribution accumulated so
// far. It is safe to keep ingesting afterwards.
func (a *Analyzer) Distribution() Distribution {
	n := 0
	for _, c := range a.hist {
		if c > 0 {
			n++
		}
	}
	dist := Distribution{
		Distances: make([]int, 0, n),
		Counts:    make([]uint64, 0, n),
		Cold:      a.cold,
	}
	// The dense histogram is already in ascending distance order.
	for d, c := range a.hist {
		if c == 0 {
			continue
		}
		dist.Distances = append(dist.Distances, d)
		dist.Counts = append(dist.Counts, c)
		dist.Total += c
	}
	return dist
}

// Distribution is an empirical stack-distance distribution: sorted distinct
// finite distances with their reference counts, plus the cold-miss count.
type Distribution struct {
	Distances []int    // sorted ascending
	Counts    []uint64 // parallel to Distances
	Cold      uint64   // first-time references (infinite distance)
	Total     uint64   // sum of Counts (finite-distance references)
}

// CDF returns the cumulative probability P(distance <= x) among
// finite-distance references. The curve is what the paper's eq. (1) is fit
// against. An empty distribution yields P(x) = 0.
func (d Distribution) CDF(x int) float64 {
	if d.Total == 0 || x < 0 {
		return 0
	}
	i := sort.SearchInts(d.Distances, x+1) // first index with distance > x
	var c uint64
	for j := 0; j < i; j++ {
		c += d.Counts[j]
	}
	return float64(c) / float64(d.Total)
}

// Points returns the empirical CDF as (x, P(distance <= x)) pairs, one per
// distinct observed distance, suitable for least-squares fitting.
func (d Distribution) Points() (xs []float64, ps []float64) {
	xs = make([]float64, len(d.Distances))
	ps = make([]float64, len(d.Distances))
	var c uint64
	for i, x := range d.Distances {
		c += d.Counts[i]
		xs[i] = float64(x)
		ps[i] = float64(c) / float64(d.Total)
	}
	return xs, ps
}

// HitRatio returns the hit ratio of a fully associative LRU cache with the
// given capacity (in the same units as the datum identities, e.g. lines),
// counting cold misses as misses: hits = references with distance < capacity.
func (d Distribution) HitRatio(capacity int) float64 {
	refs := d.Total + d.Cold
	if refs == 0 || capacity <= 0 {
		return 0
	}
	i := sort.SearchInts(d.Distances, capacity) // first index with distance >= capacity
	var hits uint64
	for j := 0; j < i; j++ {
		hits += d.Counts[j]
	}
	return float64(hits) / float64(refs)
}

// HitRatios evaluates the histogram at an ordered cache hierarchy: one
// cumulative hit ratio per level capacity (in datum units, innermost
// first). Because a smaller LRU cache's contents are a subset of a larger
// one's (stack inclusion), out[i] is the fraction of references served at
// or above level i, and out[i]−out[i−1] is the fraction level i itself
// absorbs — the per-level hit stream the multi-level EMAT recursion
// consumes.
func (d Distribution) HitRatios(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = d.HitRatio(c)
	}
	return out
}

// Mean returns the mean finite stack distance, or NaN if none were observed.
func (d Distribution) Mean() float64 {
	if d.Total == 0 {
		return math.NaN()
	}
	var s float64
	for i, x := range d.Distances {
		s += float64(x) * float64(d.Counts[i])
	}
	return s / float64(d.Total)
}

// Quantile returns the smallest distance q such that P(distance <= q) >= p,
// for p in (0, 1]. It returns an error on an empty distribution or a p out
// of range.
func (d Distribution) Quantile(p float64) (int, error) {
	if d.Total == 0 {
		return 0, fmt.Errorf("stackdist: quantile of empty distribution")
	}
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("stackdist: quantile p=%v out of (0,1]", p)
	}
	target := uint64(math.Ceil(p * float64(d.Total)))
	var c uint64
	for i, x := range d.Distances {
		c += d.Counts[i]
		if c >= target {
			return x, nil
		}
	}
	return d.Distances[len(d.Distances)-1], nil
}

// Merge combines two distributions (e.g. from different processors of an
// SPMD program) into one.
func Merge(a, b Distribution) Distribution {
	m := make(map[int]uint64, len(a.Distances)+len(b.Distances))
	for i, d := range a.Distances {
		m[d] += a.Counts[i]
	}
	for i, d := range b.Distances {
		m[d] += b.Counts[i]
	}
	ds := make([]int, 0, len(m))
	for d := range m {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	out := Distribution{Distances: ds, Counts: make([]uint64, len(ds)), Cold: a.Cold + b.Cold}
	for i, d := range ds {
		out.Counts[i] = m[d]
		out.Total += m[d]
	}
	return out
}

// Downsample returns a distribution whose support is reduced to at most
// maxPoints logarithmically spaced distances, preserving total mass by
// merging each bucket into its largest member distance. Fitting quality is
// insensitive to this compaction while it bounds the cost of least squares
// on very long traces.
func (d Distribution) Downsample(maxPoints int) Distribution {
	if maxPoints <= 0 || len(d.Distances) <= maxPoints {
		return d
	}
	lo, hi := d.Distances[0], d.Distances[len(d.Distances)-1]
	if lo < 1 {
		lo = 1
	}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(maxPoints))
	if ratio <= 1 {
		ratio = 1 + 1e-9
	}
	out := Distribution{Cold: d.Cold}
	bucketHi := float64(lo)
	var acc uint64
	accDist := d.Distances[0]
	flush := func() {
		if acc > 0 {
			out.Distances = append(out.Distances, accDist)
			out.Counts = append(out.Counts, acc)
			out.Total += acc
			acc = 0
		}
	}
	for i, x := range d.Distances {
		for float64(x) > bucketHi {
			flush()
			bucketHi *= ratio
		}
		acc += d.Counts[i]
		accDist = x
	}
	flush()
	return out
}
