package server

import (
	"container/list"
	"context"
	"sync"
)

// entry is one cached response: the HTTP status and the exact body bytes.
// Caching rendered bytes (rather than decoded values) is what makes cache
// hits byte-identical to the miss that produced them.
type entry struct {
	status int
	body   []byte
}

// outcome classifies how a request was answered by the cache layer.
type outcome int

const (
	outcomeHit    outcome = iota // served from the LRU
	outcomeMiss                  // this request ran the computation
	outcomeShared                // waited on an identical in-flight request
)

// flight is one in-progress computation that concurrent identical
// requests attach to.
type flight struct {
	done chan struct{} // closed when ent/err are final
	ent  entry
	err  error
}

// cacheShard is one lock domain of the result cache: an LRU of completed
// entries plus the in-flight table for single-flight dedup.
type cacheShard struct {
	mu      sync.Mutex
	cap     int                      // immutable after construction
	order   *list.List               // guarded by mu; front = most recently used
	items   map[string]*list.Element // guarded by mu; key → element holding *cacheItem
	flights map[string]*flight       // guarded by mu
}

type cacheItem struct {
	key string
	ent entry
}

// resultCache shards keys across independent LRUs so concurrent requests
// on different keys do not contend on one lock, and dedups concurrent
// identical requests through per-key flights.
type resultCache struct {
	shards []*cacheShard
}

// newResultCache builds a cache holding up to entries results across the
// given number of shards (minimums of one entry per shard, one shard).
func newResultCache(entries, shards int) *resultCache {
	if shards < 1 {
		shards = 1
	}
	if entries < shards {
		entries = shards
	}
	c := &resultCache{shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:     entries / shards,
			order:   list.New(),
			items:   make(map[string]*list.Element),
			flights: make(map[string]*flight),
		}
	}
	return c
}

// FNV-1a constants (hash/fnv), inlined so shard hashes the key string
// directly — the hash.Hash32 version allocated the hasher and a []byte
// copy of the key on every cache operation.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// shard picks the consistent shard for key. It runs once per cache
// operation, on the request hit path. The hash is bit-identical to
// fnv.New32a over the same bytes (TestShardHashMatchesFNV), so cached
// keys keep their shard across this change.
//chc:hotpath
func (c *resultCache) shard(key string) *cacheShard {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return c.shards[h%uint32(len(c.shards))]
}

// do returns the cached entry for key, or runs compute exactly once across
// all concurrent callers with the same key. Successful (2xx) results enter
// the LRU; errors and non-2xx entries are shared with concurrent waiters
// but not cached, so a transient failure doesn't poison the key. A waiter
// whose ctx expires abandons the wait (the leader still completes and
// caches for future callers).
//chc:hotpath
func (c *resultCache) do(ctx context.Context, key string, compute func() (entry, error)) (entry, outcome, error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.order.MoveToFront(el)
		ent := el.Value.(*cacheItem).ent
		sh.mu.Unlock()
		return ent, outcomeHit, nil
	}
	if f, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		select {
		case <-f.done:
			return f.ent, outcomeShared, f.err
		case <-ctx.Done():
			return entry{}, outcomeShared, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()

	f.ent, f.err = compute()

	sh.mu.Lock()
	delete(sh.flights, key)
	if f.err == nil && f.ent.status >= 200 && f.ent.status < 300 {
		sh.insertLocked(key, f.ent)
	}
	sh.mu.Unlock()
	close(f.done)
	return f.ent, outcomeMiss, f.err
}

// insertLocked adds the entry, evicting from the LRU tail past capacity.
// The caller holds sh.mu — the Locked suffix is the guardedby analyzer's
// contract for helpers that run under a caller's lock.
func (sh *cacheShard) insertLocked(key string, ent entry) {
	if el, ok := sh.items[key]; ok {
		el.Value.(*cacheItem).ent = ent
		sh.order.MoveToFront(el)
		return
	}
	sh.items[key] = sh.order.PushFront(&cacheItem{key: key, ent: ent})
	for sh.order.Len() > sh.cap {
		tail := sh.order.Back()
		sh.order.Remove(tail)
		delete(sh.items, tail.Value.(*cacheItem).key)
	}
}

// len reports the number of cached entries (for tests and /metrics).
func (c *resultCache) len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}
