package server

import (
	"expvar"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyBucketsMs are the upper bounds (milliseconds) of the per-endpoint
// latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMs = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	mu      sync.Mutex
	buckets []uint64 // guarded by mu; len(latencyBucketsMs)+1, last is overflow
	count   uint64   // guarded by mu
	sumMs   float64  // guarded by mu
	maxMs   float64  // guarded by mu
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]uint64, len(latencyBucketsMs)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(latencyBucketsMs, ms)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sumMs += ms
	if ms > h.maxMs {
		h.maxMs = ms
	}
	h.mu.Unlock()
}

// quantile returns an upper-bound estimate of the q-quantile from bucket
// boundaries (the overflow bucket reports the observed maximum).
func (h *histogram) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			if i < len(latencyBucketsMs) {
				return latencyBucketsMs[i]
			}
			return h.maxMs
		}
	}
	return h.maxMs
}

func (h *histogram) snapshot() map[string]any {
	h.mu.Lock()
	count, sum, max := h.count, h.sumMs, h.maxMs
	buckets := make(map[string]uint64, len(h.buckets))
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if i < len(latencyBucketsMs) {
			buckets[formatMs(latencyBucketsMs[i])] = n
		} else {
			buckets["+Inf"] = n
		}
	}
	h.mu.Unlock()
	mean := 0.0
	if count > 0 {
		mean = sum / float64(count)
	}
	return map[string]any{
		"count":      count,
		"mean_ms":    mean,
		"max_ms":     max,
		"p50_ms":     h.quantile(0.50),
		"p99_ms":     h.quantile(0.99),
		"buckets_ms": buckets,
	}
}

// formatMs renders a bucket bound as a compact key ("0.25", "5", "1000").
func formatMs(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// endpointMetrics counts one endpoint's traffic. The counters are expvar
// vars (unpublished instances, so multiple servers can coexist in one
// process — tests — while cmd/chc-serve publishes the snapshot globally).
type endpointMetrics struct {
	Requests expvar.Int
	Errors   expvar.Int
	Latency  *histogram
}

func (e *endpointMetrics) snapshot() map[string]any {
	return map[string]any{
		"requests": e.Requests.Value(),
		"errors":   e.Errors.Value(),
		"latency":  e.Latency.snapshot(),
	}
}

// serverMetrics is the service-wide operational state behind /metrics.
type serverMetrics struct {
	Requests    expvar.Int // all requests, all endpoints
	CacheHits   expvar.Int
	CacheMisses expvar.Int
	DedupWaits  expvar.Int // requests that attached to an in-flight twin
	Shed        expvar.Int // 429 responses from the full queue
	Panics      expvar.Int // handler panics recovered into 500s
	Timeouts    expvar.Int // requests answered 503 at their route deadline
	// Cluster-mode counters (zero and absent from the snapshot outside
	// cluster mode).
	Forwards       expvar.Map // per-peer misses proxied to their owner
	ForwardFails   expvar.Int // forward attempts that fell through to the next owner
	LocalFallbacks expvar.Int // peer-owned keys computed locally (owners unusable)
	queueDepth     func() int64
	cacheLen       func() int
	endpoints      map[string]*endpointMetrics
	cluster        func() map[string]any // forwarder's view; nil = single-node
}

func newServerMetrics(endpoints []string, queueDepth func() int64, cacheLen func() int) *serverMetrics {
	m := &serverMetrics{
		queueDepth: queueDepth,
		cacheLen:   cacheLen,
		endpoints:  make(map[string]*endpointMetrics, len(endpoints)),
	}
	for _, name := range endpoints {
		m.endpoints[name] = &endpointMetrics{Latency: newHistogram()}
	}
	m.Forwards.Init()
	return m
}

// observe records one finished request.
func (m *serverMetrics) observe(endpoint string, d time.Duration, status int) {
	m.Requests.Add(1)
	if e, ok := m.endpoints[endpoint]; ok {
		e.Requests.Add(1)
		if status >= 400 {
			e.Errors.Add(1)
		}
		e.Latency.observe(d)
	}
}

// snapshot renders the full metrics tree (the /metrics body and the
// expvar.Func payload).
func (m *serverMetrics) snapshot() map[string]any {
	eps := make(map[string]any, len(m.endpoints))
	for name, e := range m.endpoints {
		eps[name] = e.snapshot()
	}
	snap := map[string]any{
		"requests":     m.Requests.Value(),
		"cache_hits":   m.CacheHits.Value(),
		"cache_misses": m.CacheMisses.Value(),
		"dedup_waits":  m.DedupWaits.Value(),
		"shed":         m.Shed.Value(),
		"panics":       m.Panics.Value(),
		"timeouts":     m.Timeouts.Value(),
		"queue_depth":  m.queueDepth(),
		"cache_len":    m.cacheLen(),
		"endpoints":    eps,
	}
	if m.cluster != nil {
		forwards := make(map[string]int64)
		m.Forwards.Do(func(kv expvar.KeyValue) {
			if v, ok := kv.Value.(*expvar.Int); ok {
				forwards[kv.Key] = v.Value()
			}
		})
		snap["forwards"] = forwards
		snap["forward_fails"] = m.ForwardFails.Value()
		snap["local_fallbacks"] = m.LocalFallbacks.Value()
		snap["cluster"] = m.cluster()
	}
	return snap
}
