package server

import (
	"reflect"
	"testing"

	"memhier/internal/machine"
)

// FuzzCanonicalKeyLevels pins the tentpole's aliasing contract at the
// cache-key layer: a legacy cache_bytes spec and the equivalent 1-element
// levels spec must resolve to the same canonical config, derive the same
// cache key, and land on the same owner of a 5-node ring — one cache entry
// and one shard, whichever spelling the client uses. Multi-level specs must
// canonicalize to a fixed point (their keys cannot drift on re-resolve) and
// must never collide with the 1-level key. A separate target (rather than
// new FuzzCanonicalKey parameters) keeps the existing corpus valid.
func FuzzCanonicalKeyLevels(f *testing.F) {
	f.Add("smp", "none", 1, 4, int64(256<<10), int64(64<<20), 0, 0.0, int64(1<<20), 14.0, int64(4<<20), 44.0, uint8(0))
	f.Add("ws", "100", 8, 1, int64(512<<10), int64(64<<20), 0, 2.0, int64(2<<20), 12.0, int64(8<<20), 40.0, uint8(1))
	f.Add("csmp", "atm", 4, 2, int64(32<<10), int64(128<<20), 2, 4.0, int64(1<<20), 14.0, int64(4<<20), 44.0, uint8(2))
	f.Add("smp", "none", 1, 16, int64(32<<10), int64(1<<30), 0, 4.0, int64(512<<10), 12.0, int64(2<<20), 40.0, uint8(2))
	f.Add("ws", "10", 2, 1, int64(-1), int64(0), -4, -3.0, int64(0), -1.0, int64(7), 1e300, uint8(9))

	f.Fuzz(func(t *testing.T, kind, net string, machines, procs int,
		cacheBytes, memoryBytes int64, divisor int,
		l1Lat float64, l2Bytes int64, l2Lat float64, l3Bytes int64, l3Lat float64, depth uint8) {

		legacy := ConfigSpec{
			Kind: kind, Net: net, Machines: machines, Procs: procs,
			CacheBytes: cacheBytes, MemoryBytes: memoryBytes, Divisor: divisor,
		}
		oneLevel := legacy
		oneLevel.CacheBytes = 0
		oneLevel.Levels = []machine.CacheLevel{{Bytes: cacheBytes}}

		cfgA, errA := legacy.Resolve()
		cfgB, errB := oneLevel.Resolve()
		if (errA == nil) != (errB == nil) {
			// One exception: cache_bytes 0 means "default 256KB" in the
			// legacy spelling but is an invalid explicit level.
			if cacheBytes != 0 {
				t.Fatalf("spellings disagree on validity: legacy err %v, levels err %v", errA, errB)
			}
			return
		}
		if errA != nil {
			return
		}
		if !reflect.DeepEqual(cfgA, cfgB) {
			t.Fatalf("spellings resolve differently:\nlegacy: %+v\nlevels: %+v", cfgA, cfgB)
		}
		wl := WorkloadSpec{Name: "fft"}
		keyA, err := canonicalKey("predict", PredictRequest{Config: configKey(cfgA), Workload: wl})
		if err != nil {
			t.Fatalf("canonicalKey(legacy): %v", err)
		}
		keyB, err := canonicalKey("predict", PredictRequest{Config: configKey(cfgB), Workload: wl})
		if err != nil || keyA != keyB {
			t.Fatalf("cache keys split by spelling:\nlegacy: %q\nlevels: %q (err %v)", keyA, keyB, err)
		}
		if fuzzRing.Owner(keyA) != fuzzRing.Owner(keyB) {
			t.Fatalf("ring owners split by spelling for key %q", keyA)
		}

		// Multi-level: build a deeper spec from the remaining inputs.
		nLevels := 2 + int(depth)%2
		levels := []machine.CacheLevel{
			{Bytes: cacheBytes, LatencyCycles: l1Lat},
			{Bytes: l2Bytes, LatencyCycles: l2Lat},
			{Bytes: l3Bytes, LatencyCycles: l3Lat},
		}[:nLevels]
		deep := legacy
		deep.CacheBytes = 0
		deep.Levels = levels
		cfgD, err := deep.Resolve()
		if err != nil {
			return // invalid hierarchy: rejected before keying
		}
		keyD, err := canonicalKey("predict", PredictRequest{Config: configKey(cfgD), Workload: wl})
		if err != nil {
			t.Fatalf("canonicalKey(deep): %v", err)
		}
		if keyD == keyA {
			t.Fatalf("multi-level config collides with 1-level key %q", keyA)
		}
		cfgD2, err := configKey(cfgD).Resolve()
		if err != nil {
			t.Fatalf("canonical deep spec %+v rejected on re-resolve: %v", configKey(cfgD), err)
		}
		keyD2, err := canonicalKey("predict", PredictRequest{Config: configKey(cfgD2), Workload: wl})
		if err != nil || keyD2 != keyD {
			t.Fatalf("deep canonical key not a fixed point: %q vs %q (err %v)", keyD2, keyD, err)
		}
	})
}
