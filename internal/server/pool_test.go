package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := newWorkerPool(4, 4)
	defer p.shutdown()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.do(context.Background(), func() { n.Add(1) }); err != nil && err != ErrOverloaded {
				t.Errorf("do: %v", err)
			}
		}()
	}
	wg.Wait()
	if n.Load() == 0 {
		t.Error("no jobs ran")
	}
	if d := p.depth(); d != 0 {
		t.Errorf("depth after quiesce = %d, want 0", d)
	}
}

func TestPoolShedsWhenFull(t *testing.T) {
	p := newWorkerPool(1, 1)
	defer p.shutdown()
	block := make(chan struct{})
	started := make(chan struct{})

	// Fill the worker...
	go p.do(context.Background(), func() { close(started); <-block })
	<-started
	// ...and the single queue slot.
	queued := make(chan error, 1)
	go func() { queued <- p.do(context.Background(), func() {}) }()
	for p.depth() < 2 {
		time.Sleep(time.Millisecond)
	}

	// The pool is saturated: the next submission is shed immediately.
	if err := p.do(context.Background(), func() {}); err != ErrOverloaded {
		t.Errorf("do on full pool = %v, want ErrOverloaded", err)
	}

	close(block)
	if err := <-queued; err != nil {
		t.Errorf("queued job err = %v", err)
	}
}

func TestPoolContextCancellation(t *testing.T) {
	p := newWorkerPool(1, 4)
	defer p.shutdown()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.do(context.Background(), func() { close(started); <-block })
	<-started

	// A queued job whose requester gives up: do returns the context error,
	// and the worker later skips the job (expired ctx).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ran := false
	if err := p.do(ctx, func() { ran = true }); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("do = %v, want DeadlineExceeded", err)
	}
	close(block)
	p.shutdown()
	if ran {
		t.Error("job with expired context still ran")
	}
}

func TestPoolShutdownDrains(t *testing.T) {
	p := newWorkerPool(2, 4)
	var done atomic.Int64
	errs := make(chan error, 6)
	gate := make(chan struct{})
	var entered sync.WaitGroup
	for i := 0; i < 2; i++ {
		entered.Add(1)
		go func() {
			errs <- p.do(context.Background(), func() {
				entered.Done()
				<-gate
				done.Add(1)
			})
		}()
	}
	entered.Wait()
	// Queue two more behind the busy workers.
	for i := 0; i < 2; i++ {
		go func() { errs <- p.do(context.Background(), func() { done.Add(1) }) }()
	}
	for p.depth() < 4 {
		time.Sleep(time.Millisecond)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	p.shutdown() // must wait for all four accepted jobs

	if n := done.Load(); n != 4 {
		t.Errorf("completed jobs = %d, want all 4 accepted before shutdown", n)
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Errorf("accepted job err = %v", err)
		}
	}
	if err := p.do(context.Background(), func() {}); err != ErrShuttingDown {
		t.Errorf("do after shutdown = %v, want ErrShuttingDown", err)
	}
	p.shutdown() // idempotent
}
