// Package server implements chc-serve: a long-running HTTP JSON service
// exposing the repository's analytical machinery — the Du–Zhang E(Instr)
// model (/v1/predict), the budget optimizer (/v1/optimize), the upgrade
// advisor (/v1/advise), locality curve fitting (/v1/fit), and the
// instrumented-kernel simulator (/v1/validate) — plus the operational
// endpoints /healthz, /readyz, and /metrics.
//
// The service layer is built for load, not as a thin wrapper: requests are
// canonicalized into cache keys feeding a sharded LRU result cache with
// single-flight deduplication (identical concurrent predictions are
// computed once), simulation-backed requests run on a bounded worker pool
// with a configurable queue depth and 429 + Retry-After load shedding, and
// every request carries a context deadline so a stuck computation cannot
// pin a connection forever.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/locality"
	"memhier/internal/machine"
	"memhier/internal/workloads"
)

// ConfigSpec selects the platform of a request: either a catalog
// configuration C1–C15 by name, or a custom platform description in the
// chc-model CLI's vocabulary.
type ConfigSpec struct {
	// Name is a catalog configuration (C1–C15); when set, the remaining
	// fields are ignored.
	Name string `json:"name,omitempty"`
	// Kind is the custom platform class: "smp", "ws", or "csmp".
	Kind string `json:"kind,omitempty"`
	// Machines is N (default 1); Procs is n (default 1).
	Machines int `json:"machines,omitempty"`
	Procs    int `json:"procs,omitempty"`
	// CacheBytes and MemoryBytes are the per-processor cache and
	// per-machine memory capacities (defaults: 256 KB and 64 MB).
	CacheBytes  int64 `json:"cache_bytes,omitempty"`
	MemoryBytes int64 `json:"memory_bytes,omitempty"`
	// Levels is the per-processor cache hierarchy, innermost first (up to
	// three levels). A 1-element list is the same platform as the
	// equivalent cache_bytes — both spellings share one cache key.
	Levels []machine.CacheLevel `json:"levels,omitempty"`
	// Net is the cluster network: "none", "10", "100", or "atm".
	Net string `json:"net,omitempty"`
	// ClockMHz is the processor clock (default the 200 MHz reference).
	ClockMHz float64 `json:"clock_mhz,omitempty"`
	// Divisor optionally divides cache/memory capacities (validation runs).
	Divisor int `json:"divisor,omitempty"`
}

// Resolve returns the machine configuration the spec describes.
func (c ConfigSpec) Resolve() (machine.Config, error) {
	var cfg machine.Config
	if c.Name != "" {
		var err error
		if cfg, err = machine.ByName(c.Name); err != nil {
			return machine.Config{}, err
		}
	} else {
		if c.Kind == "" {
			return machine.Config{}, errors.New("server: config: need a catalog name or a platform kind")
		}
		kind, err := machine.ParsePlatformKind(c.Kind)
		if err != nil {
			return machine.Config{}, err
		}
		net, err := machine.ParseNetwork(c.Net)
		if err != nil {
			return machine.Config{}, err
		}
		cfg = machine.Config{
			Name: "custom", Kind: kind,
			N: c.Machines, Procs: c.Procs,
			CacheBytes: c.CacheBytes, MemoryBytes: c.MemoryBytes,
			Levels: c.Levels,
			Net:    net, ClockMHz: c.ClockMHz,
		}
		if cfg.N == 0 {
			cfg.N = 1
		}
		if cfg.Procs == 0 {
			cfg.Procs = 1
		}
		if cfg.CacheBytes == 0 && len(cfg.Levels) == 0 {
			cfg.CacheBytes = 256 << 10
		}
		if cfg.MemoryBytes == 0 {
			cfg.MemoryBytes = 64 << 20
		}
		if cfg.ClockMHz == 0 {
			cfg.ClockMHz = machine.ReferenceClockMHz
		}
	}
	// Validate before scaling: Scaled only divides capacities (clamped to
	// >= 1), so it cannot repair an invalid platform — and skipping
	// validation here would let specs like {machines: -55, divisor: 16}
	// resolve into configs their own canonical form rejects.
	if err := cfg.Validate(); err != nil {
		return machine.Config{}, err
	}
	// Canonicalize after validation (validation still sees a cache_bytes /
	// levels[0] disagreement): a 1-element zero-latency levels list folds
	// back to the legacy spelling, so both forms resolve to one config —
	// and through configKey, one cache entry.
	cfg = cfg.Canonical()
	if c.Divisor > 1 {
		return cfg.Scaled(c.Divisor)
	}
	return cfg, nil
}

// WorkloadSpec selects the workload of a request: a named paper workload
// (Table 2 parameters; names are case-insensitive, kernel aliases accepted),
// the same name with measured=true for an on-the-fly characterization of
// the instrumented Go kernel, or a full inline workload description in the
// chc-model -workload-file schema.
type WorkloadSpec struct {
	Name     string         `json:"name,omitempty"`
	Measured bool           `json:"measured,omitempty"`
	Inline   *core.Workload `json:"workload,omitempty"`
}

// Validate performs the cheap structural checks that must precede cache
// keying (full resolution of a measured workload is expensive and happens
// inside the single-flight computation).
func (w WorkloadSpec) Validate() error {
	if w.Inline != nil {
		return w.Inline.Validate()
	}
	if w.Name == "" {
		return errors.New("server: workload: need a name or an inline workload description")
	}
	return nil
}

// PredictRequest asks for one model evaluation (the chc-model CLI as an
// API call).
type PredictRequest struct {
	Config   ConfigSpec   `json:"config"`
	Workload WorkloadSpec `json:"workload"`
	// Delta is the coherence rate adjustment (0 means the paper's 0.124;
	// negative disables it).
	Delta float64 `json:"delta,omitempty"`
}

// PredictResponse carries the solved model plus the exact text the
// chc-model CLI would print (byte-identical by construction: both sides
// call core.RenderResult).
type PredictResponse struct {
	Result core.Result `json:"result"`
	// Workload echoes the resolved workload (useful for measured kernels,
	// whose parameters the client did not supply).
	Workload core.Workload `json:"workload"`
	Text     string        `json:"text"`
}

// OptimizeRequest asks for the eq. 6 budget optimization.
type OptimizeRequest struct {
	Budget   float64      `json:"budget"`
	Workload WorkloadSpec `json:"workload"`
	// Top bounds the returned ranking (default 5, max 50).
	Top   int     `json:"top,omitempty"`
	Delta float64 `json:"delta,omitempty"`
}

// OptimizeResponse reports the winner, the ranking head, and the §6
// principle classification.
type OptimizeResponse struct {
	Workload  string        `json:"workload"`
	Principle string        `json:"principle"`
	Feasible  int           `json:"feasible"`
	Best      cost.Scored   `json:"best"`
	Top       []cost.Scored `json:"top"`
}

// AdviseRequest asks for the §6 upgrade problem: the best configuration
// reachable from an existing cluster with a budget increase.
type AdviseRequest struct {
	Config   ConfigSpec   `json:"config"`
	Budget   float64      `json:"budget"`
	Workload WorkloadSpec `json:"workload"`
	Delta    float64      `json:"delta,omitempty"`
}

// AdviseResponse reports the upgrade plan plus the paper's qualitative
// guidance (capacity first vs network first) and principle class.
type AdviseResponse struct {
	Workload  string           `json:"workload"`
	Principle string           `json:"principle"`
	Plan      cost.UpgradePlan `json:"plan"`
	Advice    string           `json:"advice"`
}

// FitRequest asks for a locality-model fit to empirical CDF points:
// ps[i] ≈ P(xs[i]).
type FitRequest struct {
	Xs []float64 `json:"xs"`
	Ps []float64 `json:"ps"`
	// Weights optionally weights the points (e.g. reference counts).
	Weights []float64 `json:"weights,omitempty"`
	// Gamma is the memory-reference fraction to report back; the curve fit
	// itself cannot produce it.
	Gamma float64 `json:"gamma,omitempty"`
}

// FitResponse reports the fitted parameters and fit quality.
type FitResponse struct {
	Params locality.Params   `json:"params"`
	Stats  locality.FitStats `json:"stats"`
}

// ValidateRequest asks for one execution-driven simulation of an
// instrumented kernel — the expensive, worker-pool-backed endpoint.
type ValidateRequest struct {
	Config ConfigSpec `json:"config"`
	// Workload is a kernel name: fft, lu, radix, edge, tpcc.
	Workload string `json:"workload"`
	// Divisor divides the platform's capacities, matching the scaled-down
	// problem sizes (default 16, the validation figures' setting).
	Divisor int `json:"divisor,omitempty"`
}

// ValidateResponse summarizes the simulated execution.
type ValidateResponse struct {
	Platform       string             `json:"platform"`
	Workload       string             `json:"workload"`
	EInstr         float64            `json:"e_instr_cycles"`
	Seconds        float64            `json:"seconds"`
	AvgT           float64            `json:"avg_t_cycles"`
	WallCycles     float64            `json:"wall_cycles"`
	Instructions   uint64             `json:"instructions"`
	MemoryRefs     uint64             `json:"memory_refs"`
	Barriers       uint64             `json:"barriers"`
	ClassShare     map[string]float64 `json:"class_share"`
	CoherenceShare float64            `json:"coherence_share"`
	NetUtilization float64            `json:"net_utilization"`
}

// ErrorResponse is the JSON error body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable error class (bad_request, overloaded,
	// saturated, infeasible, deadline, transient, panic, draining,
	// not_found, method_not_allowed, internal). Clients branch on this,
	// not on the message text.
	Code string `json:"code,omitempty"`
	// RequestID echoes the X-Request-ID header so error reports are
	// self-contained.
	RequestID string `json:"request_id,omitempty"`
	// Rho is the offending utilization when the model refused a
	// near-saturated or saturated operating point (queueing.SaturationError).
	Rho float64 `json:"rho,omitempty"`
	// RetryAfterSeconds accompanies 429 load-shedding responses.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// canonicalKey builds the cache key of a request: the endpoint name plus
// the canonical JSON encoding of its resolved, defaulted form. Two
// requests that differ only in spelling (config case, workload aliases,
// omitted defaults) canonicalize to the same key.
func canonicalKey(endpoint string, v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("server: canonicalizing %s request: %w", endpoint, err)
	}
	return endpoint + "\x00" + string(b), nil
}

// canonicalWorkload normalizes a workload spec for keying without paying
// for resolution: inline workloads key on their full encoding, named ones
// on the canonical paper name (or lower-cased kernel name when measured).
func canonicalWorkload(w WorkloadSpec) (WorkloadSpec, error) {
	if err := w.Validate(); err != nil {
		return WorkloadSpec{}, err
	}
	if w.Inline != nil {
		return WorkloadSpec{Inline: w.Inline}, nil
	}
	if w.Measured {
		// Kernel existence is checked cheaply; characterization is deferred.
		name, err := canonicalKernelName(w.Name)
		if err != nil {
			return WorkloadSpec{}, err
		}
		return WorkloadSpec{Name: name, Measured: true}, nil
	}
	wl, err := core.PaperWorkloadByName(w.Name)
	if err != nil {
		return WorkloadSpec{}, err
	}
	return WorkloadSpec{Name: wl.Name}, nil
}

// canonicalKernelName lower-cases and validates an instrumented-kernel
// name without constructing a trace or characterization.
func canonicalKernelName(name string) (string, error) {
	k, err := workloads.ByName(name, workloads.ScaleSmall)
	if err != nil {
		return "", err
	}
	return strings.ToLower(k.Name()), nil
}
