package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned when the simulation queue is full: the caller
// should shed the request with 429 + Retry-After instead of queueing
// without bound.
var ErrOverloaded = errors.New("server: overloaded: simulation queue is full")

// ErrShuttingDown is returned for work submitted after drain began.
var ErrShuttingDown = errors.New("server: shutting down")

// workerPool runs expensive jobs (simulations) on a fixed number of
// workers behind a bounded queue. Submissions beyond workers+queue are
// rejected immediately — load shedding, not convoying.
type workerPool struct {
	mu     sync.RWMutex
	closed bool  // guarded by mu
	limit  int64 // max accepted jobs: workers running + queueDepth waiting
	jobs   chan *poolJob
	wg     sync.WaitGroup
	queued atomic.Int64 // jobs accepted but not yet finished
}

type poolJob struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
}

// newWorkerPool starts workers goroutines behind a queue of queueDepth
// waiting jobs (minimums of one worker, zero queue).
func newWorkerPool(workers, queueDepth int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &workerPool{
		limit: int64(workers + queueDepth),
		jobs:  make(chan *poolJob, workers+queueDepth),
	}
	// Admission is gated on the accepted-jobs counter, not channel
	// capacity: a running job has left the channel but still occupies a
	// worker, so counting channel slots alone would admit up to
	// 2×workers+queueDepth jobs. With accepted ≤ limit and running jobs
	// outside the channel, the buffered send below can never block.
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.run()
	}
	return p
}

func (p *workerPool) run() {
	defer p.wg.Done()
	for j := range p.jobs {
		if j.ctx.Err() == nil { // skip work whose requester already left
			j.fn()
		}
		p.queued.Add(-1)
		close(j.done)
	}
}

// do runs fn on a pool worker. It fails fast with ErrOverloaded when the
// queue is full and returns ctx.Err() if the context expires while the job
// is queued or running (an accepted job still runs to completion so its
// result can be cached; fn must tolerate an absent requester).
func (p *workerPool) do(ctx context.Context, fn func()) error {
	j := &poolJob{ctx: ctx, fn: fn, done: make(chan struct{})}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrShuttingDown
	}
	if p.queued.Add(1) > p.limit {
		p.queued.Add(-1)
		p.mu.RUnlock()
		return ErrOverloaded
	}
	p.jobs <- j // cannot block: accepted jobs ≤ limit = channel capacity
	p.mu.RUnlock()
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// depth reports jobs accepted and not yet finished (queued + running).
func (p *workerPool) depth() int64 { return p.queued.Load() }

// shutdown stops intake and waits for every accepted job to finish —
// the draining half of graceful shutdown.
func (p *workerPool) shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
