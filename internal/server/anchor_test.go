package server

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"memhier/internal/machine"
)

// anchorRequests is the fixed request table of the bit-identity regression
// anchor: representative 1-level /v1/predict requests spanning catalog
// names, scaled variants, and custom platforms of all three kinds. Their
// response bodies were captured before the multi-level cache refactor;
// the Levels generalization must reproduce them byte for byte.
func anchorRequests() []struct {
	label string
	req   PredictRequest
} {
	return []struct {
		label string
		req   PredictRequest
	}{
		{"c4_fft", PredictRequest{
			Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "FFT"}}},
		{"c11_radix", PredictRequest{
			Config: ConfigSpec{Name: "C11"}, Workload: WorkloadSpec{Name: "Radix"}}},
		{"c13_div16_lu", PredictRequest{
			Config: ConfigSpec{Name: "C13", Divisor: 16}, Workload: WorkloadSpec{Name: "LU"}}},
		{"custom_smp_edge", PredictRequest{
			Config: ConfigSpec{Kind: "smp", Procs: 4, CacheBytes: 512 << 10,
				MemoryBytes: 128 << 20, ClockMHz: 400},
			Workload: WorkloadSpec{Name: "EDGE"}}},
		{"custom_csmp_lu", PredictRequest{
			Config: ConfigSpec{Kind: "csmp", Machines: 4, Procs: 2, CacheBytes: 256 << 10,
				MemoryBytes: 128 << 20, Net: "atm"},
			Workload: WorkloadSpec{Name: "LU"}}},
		{"custom_ws_tpcc", PredictRequest{
			Config: ConfigSpec{Kind: "ws", Machines: 8, CacheBytes: 512 << 10,
				MemoryBytes: 64 << 20, Net: "100"},
			Workload: WorkloadSpec{Name: "TPC-C"}}},
	}
}

// TestPredictBodiesMatchGoldenAnchor replays the anchor request table
// against the in-process handler and requires byte-identical response
// bodies to the pre-refactor goldens in testdata/golden_predict. It runs
// under -race as part of the race CI job.
//
// Regenerate (only for an intentional API output change) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/server -run TestPredictBodiesMatchGoldenAnchor
func TestPredictBodiesMatchGoldenAnchor(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	update := os.Getenv("UPDATE_GOLDEN") != ""
	if update {
		if err := os.MkdirAll("testdata/golden_predict", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range anchorRequests() {
		rec := post(t, s, "/v1/predict", tc.req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", tc.label, rec.Code, rec.Body.String())
		}
		path := filepath.Join("testdata", "golden_predict", tc.label+".json")
		if update {
			if err := os.WriteFile(path, rec.Body.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden body (run with UPDATE_GOLDEN=1 to create): %v", tc.label, err)
		}
		if got := rec.Body.String(); got != string(want) {
			t.Errorf("%s: /v1/predict body drifted from the pre-refactor anchor\n got: %s\nwant: %s",
				tc.label, got, want)
		}
	}
}

// TestPredictLevelsAliasSharesGoldenAnchor pins the tentpole's aliasing
// contract end to end: respelling each custom anchor request's cache_bytes
// as a 1-element levels list must return the same pre-refactor golden
// bytes, and must answer from the cache entry the legacy spelling warmed
// (X-Cache: hit) — one entry per platform, whichever spelling arrives.
func TestPredictLevelsAliasSharesGoldenAnchor(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	for _, tc := range anchorRequests() {
		if tc.req.Config.CacheBytes == 0 {
			continue // catalog-name anchors have no spelling to alias
		}
		legacy := post(t, s, "/v1/predict", tc.req)
		if legacy.Code != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", tc.label, legacy.Code, legacy.Body.String())
		}

		alias := tc.req
		alias.Config.Levels = []machine.CacheLevel{{Bytes: alias.Config.CacheBytes}}
		alias.Config.CacheBytes = 0
		rec := post(t, s, "/v1/predict", alias)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s (levels spelling): status = %d, body %s", tc.label, rec.Code, rec.Body.String())
		}
		if rec.Body.String() != legacy.Body.String() {
			t.Errorf("%s: levels spelling answered different bytes than cache_bytes", tc.label)
		}
		if cacheHdr := rec.Header().Get("X-Cache"); cacheHdr != "hit" {
			t.Errorf("%s: levels spelling missed the legacy spelling's cache entry (X-Cache %q)",
				tc.label, cacheHdr)
		}
		want, err := os.ReadFile(filepath.Join("testdata", "golden_predict", tc.label+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Body.String() != string(want) {
			t.Errorf("%s: levels spelling drifted from the pre-refactor anchor", tc.label)
		}
	}
}
