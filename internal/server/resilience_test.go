package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memhier/internal/core"
	"memhier/internal/faults"
	"memhier/internal/machine"
	"memhier/internal/queueing"
)

// hookFunc adapts a function to faults.Hook for targeted injection.
type hookFunc func(site faults.Site, endpoint string) error

func (f hookFunc) Inject(site faults.Site, endpoint string) error { return f(site, endpoint) }

// checkErrorContract asserts the invariants every non-2xx response must
// satisfy: JSON content type, a machine-readable code, and the request ID
// echoed in both header and body. Returns the decoded body.
func checkErrorContract(t *testing.T, rec *httptest.ResponseRecorder, wantStatus int, wantCode string) ErrorResponse {
	t.Helper()
	if rec.Code != wantStatus {
		t.Fatalf("status = %d, want %d; body %s", rec.Code, wantStatus, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	resp := decodeBody[ErrorResponse](t, rec)
	if resp.Code != wantCode {
		t.Errorf("code = %q, want %q (error: %s)", resp.Code, wantCode, resp.Error)
	}
	headerID := rec.Header().Get("X-Request-ID")
	if headerID == "" {
		t.Error("response missing X-Request-ID header")
	}
	if resp.RequestID != headerID {
		t.Errorf("body request_id = %q, header = %q", resp.RequestID, headerID)
	}
	return resp
}

func TestPanicRecovery(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	s.evaluate = func(machine.Config, core.Workload, core.Options) (core.Result, error) {
		panic("synthetic handler crash")
	}

	rec := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"},
	})
	resp := checkErrorContract(t, rec, http.StatusInternalServerError, CodePanic)
	if !strings.Contains(resp.Error, "panicked") {
		t.Errorf("error message %q does not mention the panic", resp.Error)
	}
	if got := s.metrics.Panics.Value(); got != 1 {
		t.Errorf("panics metric = %d, want 1", got)
	}

	// The server keeps serving after a recovered panic.
	s.evaluate = core.Evaluate
	if rec := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"},
	}); rec.Code != http.StatusOK {
		t.Fatalf("post-panic request: status = %d, body %s", rec.Code, rec.Body.String())
	}
}

func TestInjectedPanicRecovered(t *testing.T) {
	s := New(Config{Faults: hookFunc(func(site faults.Site, endpoint string) error {
		if site == faults.SiteEntry {
			panic(faults.InjectedPanic{Endpoint: endpoint})
		}
		return nil
	})})
	defer s.Close()

	rec := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"},
	})
	checkErrorContract(t, rec, http.StatusInternalServerError, CodePanic)
	if got := s.metrics.Panics.Value(); got != 1 {
		t.Errorf("panics metric = %d, want 1", got)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	t.Run("client ID echoed", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		req.Header.Set("X-Request-ID", "trace-abc-123")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if got := rec.Header().Get("X-Request-ID"); got != "trace-abc-123" {
			t.Errorf("echoed ID = %q, want trace-abc-123", got)
		}
	})

	t.Run("missing ID generated", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Header().Get("X-Request-ID") == "" {
			t.Error("no X-Request-ID generated")
		}
	})

	t.Run("invalid ID replaced", func(t *testing.T) {
		for _, bad := range []string{strings.Repeat("x", 200), "has space", "ctrl\x01char"} {
			req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
			req.Header.Set("X-Request-ID", bad)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if got := rec.Header().Get("X-Request-ID"); got == bad || got == "" {
				t.Errorf("invalid ID %q: response carries %q, want a fresh ID", bad, got)
			}
		}
	})

	t.Run("error body carries the ID", func(t *testing.T) {
		b, _ := json.Marshal(PredictRequest{Config: ConfigSpec{Name: "no-such"}, Workload: WorkloadSpec{Name: "fft"}})
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(string(b)))
		req.Header.Set("X-Request-ID", "err-trace-9")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		resp := checkErrorContract(t, rec, http.StatusBadRequest, CodeBadRequest)
		if resp.RequestID != "err-trace-9" {
			t.Errorf("error body request_id = %q, want err-trace-9", resp.RequestID)
		}
	})
}

func TestRouteDeadlineEnforced(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{RequestTimeout: 50 * time.Millisecond})
	defer s.Close()
	defer close(release)
	s.evaluate = func(machine.Config, core.Workload, core.Options) (core.Result, error) {
		<-release // stalled computation: never finishes within the deadline
		return core.Result{}, errors.New("released")
	}

	start := time.Now()
	rec := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"},
	})
	checkErrorContract(t, rec, http.StatusServiceUnavailable, CodeDeadline)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline response took %v", elapsed)
	}
	if got := s.metrics.Timeouts.Value(); got != 1 {
		t.Errorf("timeouts metric = %d, want 1", got)
	}
}

func TestEntryFaultMapsToTransient503(t *testing.T) {
	s := New(Config{Faults: hookFunc(func(site faults.Site, endpoint string) error {
		if site == faults.SiteEntry {
			return fmt.Errorf("server: injected entry fault: %w", faults.ErrInjected)
		}
		return nil
	})})
	defer s.Close()

	rec := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"},
	})
	checkErrorContract(t, rec, http.StatusServiceUnavailable, CodeTransient)
}

func TestComputeFaultMapsToTransient503(t *testing.T) {
	s := New(Config{Faults: hookFunc(func(site faults.Site, endpoint string) error {
		if site == faults.SiteCompute {
			return fmt.Errorf("server: injected compute fault: %w", faults.ErrInjected)
		}
		return nil
	})})
	defer s.Close()

	rec := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"},
	})
	checkErrorContract(t, rec, http.StatusServiceUnavailable, CodeTransient)

	// Failed flights must not poison the cache: the same request succeeds
	// once injection stops.
	s.faults = nil
	rec = post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-fault retry: status = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("post-fault retry X-Cache = %q, want miss (error was not cached)", got)
	}
}

func TestInjectedSaturationMapsTo422(t *testing.T) {
	s := New(Config{Faults: hookFunc(func(site faults.Site, endpoint string) error {
		if site == faults.SiteCompute {
			return fmt.Errorf("server: injected saturation: %w",
				queueing.NewSaturationError(0.9995, queueing.DefaultMaxRho, 4, 0.2499, true))
		}
		return nil
	})})
	defer s.Close()

	rec := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"},
	})
	resp := checkErrorContract(t, rec, http.StatusUnprocessableEntity, CodeSaturated)
	if resp.Rho <= queueing.DefaultMaxRho || resp.Rho >= 1 {
		t.Errorf("rho = %v, want in (%v, 1)", resp.Rho, queueing.DefaultMaxRho)
	}
}

func TestNotFoundIsJSON(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	req := httptest.NewRequest(http.MethodGet, "/v2/nonsense", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	resp := checkErrorContract(t, rec, http.StatusNotFound, CodeNotFound)
	if !strings.Contains(resp.Error, "/v2/nonsense") {
		t.Errorf("404 message %q does not name the path", resp.Error)
	}
}

func TestMethodNotAllowedIsJSON(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	req := httptest.NewRequest(http.MethodGet, "/v1/predict", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	checkErrorContract(t, rec, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	if got := rec.Header().Get("Allow"); got != http.MethodPost {
		t.Errorf("Allow = %q, want POST", got)
	}
}

func TestReadyzDrainingIsJSON(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	s.BeginDrain()

	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	checkErrorContract(t, rec, http.StatusServiceUnavailable, CodeDraining)
}

func TestShedResponseContract(t *testing.T) {
	// One worker, zero queue: a second concurrent validate is shed. Easier:
	// drain mode makes the pool reject immediately with ErrShuttingDown.
	s := New(Config{SimWorkers: 1, SimQueueDepth: 0})
	s.pool.shutdown() // pool rejects everything with ErrShuttingDown → 429

	rec := post(t, s, "/v1/validate", ValidateRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: "fft", Divisor: 64,
	})
	resp := checkErrorContract(t, rec, http.StatusTooManyRequests, CodeDraining)
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	if resp.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %d, want >= 1", resp.RetryAfterSeconds)
	}
}

func TestCachedResponsesByteIdenticalUnderEntryLatency(t *testing.T) {
	// Entry-site latency faults must not perturb response bytes: the
	// cached body is written verbatim regardless of injection.
	inj := faults.NewInjector(faults.Profile{Name: "lat", LatencyProb: 1, Latency: time.Millisecond}, 1)
	s := New(Config{Faults: inj})
	defer s.Close()

	req := PredictRequest{Config: ConfigSpec{Name: "C7"}, Workload: WorkloadSpec{Name: "radix"}}
	first := post(t, s, "/v1/predict", req)
	if first.Code != http.StatusOK {
		t.Fatalf("first: %d %s", first.Code, first.Body.String())
	}
	for i := 0; i < 3; i++ {
		rec := post(t, s, "/v1/predict", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("repeat %d: %d %s", i, rec.Code, rec.Body.String())
		}
		if rec.Body.String() != first.Body.String() {
			t.Fatalf("repeat %d body differs from first under latency faults", i)
		}
	}
	if inj.Total() == 0 {
		t.Error("latency injector never fired")
	}
}
