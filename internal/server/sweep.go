package server

// /v1/sweep and /v1/batch: whole parameter grids in one request. A sweep
// is the cross product configs × workloads (plus an optional budget
// optimization per workload); a batch is an explicit list of predict
// requests. Both stream NDJSON — one result line per point, in point-index
// order, closed by a summary trailer — and both ride the existing
// machinery: every point goes through the result cache under the same key
// the equivalent /v1/predict request would use, so cached points
// short-circuit, a sweep warms the cache for single requests (and vice
// versa), and concurrent identical points dedup through single-flight.
//
// Grids are one admission unit: SweepConcurrency tokens gate streaming
// sweeps, and grids beyond the limit (or during drain) are shed with the
// same 429 + Retry-After contract as the simulation pool. Within an
// admitted grid, SweepWorkers evaluation workers with reused per-worker
// buffers fan out over the points; per-point canonicalization is amortized
// by composing cache keys from per-axis JSON fragments marshaled once.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/machine"
	"memhier/internal/queueing"
)

// SweepRequest asks for a whole grid: every config × workload model
// evaluation, plus — when Budgets is non-empty — one eq. 6 budget
// optimization per workload over those budgets.
type SweepRequest struct {
	Configs   []ConfigSpec   `json:"configs,omitempty"`
	Workloads []WorkloadSpec `json:"workloads"`
	// Budgets adds a budget-optimization point per workload, evaluated in
	// one branch-and-bound pass over all budgets (duplicates collapse).
	Budgets []float64 `json:"budgets,omitempty"`
	// Delta is the coherence adjustment applied to every point.
	Delta float64 `json:"delta,omitempty"`
	// Brute forces the budget optimization through the per-budget
	// brute-force enumeration instead of the pruned search — a
	// verification aid; winners are bit-identical either way.
	Brute bool `json:"brute,omitempty"`
	// Offset resumes an interrupted stream: points with index < Offset are
	// assumed delivered and not re-sent. Point indices are a function of
	// the grid alone, so a client can re-request only the missing tail.
	Offset int `json:"offset,omitempty"`
}

// BatchRequest asks for an explicit list of predictions in one request.
type BatchRequest struct {
	Requests []PredictRequest `json:"requests"`
	Offset   int              `json:"offset,omitempty"`
}

// SweepLine is one NDJSON result line. Kind "predict" carries the compact
// form of the exact PredictResponse bytes the equivalent /v1/predict
// request returns; kind "budget" carries a BudgetSweepResponse. A failed
// point reports its error in place without ending the stream.
type SweepLine struct {
	Kind  string `json:"kind"`
	Index int    `json:"index"`
	// Config and Workload name the point (display names; empty on budget
	// lines' Config).
	Config   string `json:"config,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Cache reports how the point was answered: hit, miss, or dedup.
	Cache    string          `json:"cache,omitempty"`
	Status   int             `json:"status"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    *ErrorResponse  `json:"error,omitempty"`
}

// SweepSummary is the NDJSON trailer: totals for the stream. Complete is
// false when the deadline (or the client) cut the stream short — the
// client resumes with Offset set past the last received index.
type SweepSummary struct {
	Kind        string `json:"kind"` // always "summary"
	Points      int    `json:"points"`
	Emitted     int    `json:"emitted"`
	Errors      int    `json:"errors"`
	CacheHits   int    `json:"cache_hits"`
	CacheMisses int    `json:"cache_misses"`
	DedupWaits  int    `json:"dedup_waits"`
	Complete    bool   `json:"complete"`
}

// BudgetSweepResponse is the payload of a kind "budget" line: the eq. 6
// winners across the requested budgets for one workload, with the search's
// work accounting (zeroed in brute mode, which does not track pruning).
type BudgetSweepResponse struct {
	Workload string             `json:"workload"`
	Points   []cost.BudgetPoint `json:"points"`
	Stats    cost.SweepStats    `json:"stats"`
	Brute    bool               `json:"brute,omitempty"`
}

// sweepBudgetsKey is the canonical cache-key form of a budget point.
type sweepBudgetsKey struct {
	Workload WorkloadSpec `json:"workload"`
	Budgets  []float64    `json:"budgets"`
	Delta    float64      `json:"delta,omitempty"`
	Brute    bool         `json:"brute,omitempty"`
}

// sweepJob is one point of an admitted grid.
type sweepJob struct {
	index    int
	kind     string // "predict" or "budget"
	config   string
	workload string
	key      string
	compute  func() (entry, error)
	// err is a pre-resolution failure (batch points resolve independently);
	// the worker emits it as an error line without touching the cache.
	err error
}

// composePredictKey builds the cache key of a sweep's predict point from
// per-axis JSON fragments, byte-identical to canonicalKey("predict",
// PredictRequest{...}) — json.Marshal emits struct fields in declaration
// order, so the envelope is a fixed frame around the fragments. This is
// what lets a grid of C×W points pay C+W marshals instead of C×W.
func composePredictKey(cfgJSON, wlJSON, deltaJSON []byte) string {
	var b bytes.Buffer
	b.Grow(len("predict\x00{\"config\":,\"workload\":,\"delta\":}") + len(cfgJSON) + len(wlJSON) + len(deltaJSON))
	b.WriteString("predict\x00{\"config\":")
	b.Write(cfgJSON)
	b.WriteString(",\"workload\":")
	b.Write(wlJSON)
	if len(deltaJSON) > 0 {
		b.WriteString(",\"delta\":")
		b.Write(deltaJSON)
	}
	b.WriteByte('}')
	return b.String()
}

// budgetCompute is the kind "budget" computation: one optimization pass
// answering every budget for one workload. An all-infeasible sweep is an
// errInfeasible (422 on the line, code "infeasible").
func (s *Server) budgetCompute(wspec WorkloadSpec, budgets []float64, delta float64, brute bool) func() (entry, error) {
	return func() (entry, error) {
		wl, err := s.resolveSpec(wspec)
		if err != nil {
			return entry{}, err
		}
		opts := core.Options{CoherenceAdjust: delta}
		resp := BudgetSweepResponse{Brute: brute}
		if brute {
			sw, err := cost.BudgetSweep(budgets, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
			if err != nil {
				return entry{}, fmt.Errorf("%w: %w", errInfeasible, err)
			}
			for _, p := range sw {
				resp.Points = append(resp.Points, cost.BudgetPoint{Budget: p.Budget, Best: p.Best, Candidates: p.Feasible})
			}
		} else {
			pts, stats, err := cost.OptimizeBudgets(budgets, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
			if err != nil {
				return entry{}, fmt.Errorf("%w: %w", errInfeasible, err)
			}
			resp.Points, resp.Stats = pts, stats
		}
		resp.Workload = wl.Name
		return render(resp)
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := s.post(w, r, s.cfg.SweepTimeout)
	if !ok {
		return
	}
	defer cancel()
	if s.draining.Load() {
		s.fail(w, http.StatusTooManyRequests, ErrShuttingDown)
		return
	}
	var req SweepRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Workloads) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("server: sweep: need at least one workload"))
		return
	}
	if len(req.Configs) == 0 && len(req.Budgets) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("server: sweep: need configs or budgets (an empty grid has no points)"))
		return
	}
	for _, b := range req.Budgets {
		if b <= 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("server: sweep: budgets must be positive, got %v", b))
			return
		}
	}

	// Resolve each axis once; any invalid axis value fails the whole grid
	// up front (unlike batch, whose points are independent requests).
	type cfgAxis struct {
		cfg  machine.Config
		name string
		json []byte
	}
	cfgs := make([]cfgAxis, len(req.Configs))
	for i, spec := range req.Configs {
		cfg, err := spec.Resolve()
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("server: sweep: configs[%d]: %w", i, err))
			return
		}
		j, err := json.Marshal(configKey(cfg))
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		cfgs[i] = cfgAxis{cfg: cfg, name: cfg.Name, json: j}
	}
	type wlAxis struct {
		spec WorkloadSpec
		name string
		json []byte
	}
	wls := make([]wlAxis, len(req.Workloads))
	for i, spec := range req.Workloads {
		wspec, err := canonicalWorkload(spec)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("server: sweep: workloads[%d]: %w", i, err))
			return
		}
		j, err := json.Marshal(wspec)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		name := wspec.Name
		if wspec.Inline != nil {
			name = wspec.Inline.Name
		}
		wls[i] = wlAxis{spec: wspec, name: name, json: j}
	}
	var deltaJSON []byte
	if req.Delta != 0 {
		var err error
		if deltaJSON, err = json.Marshal(req.Delta); err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
	}
	// Budgets: sorted, deduped — the canonical form shared by the cache
	// key and the optimization (which sorts anyway).
	var budgets []float64
	if len(req.Budgets) > 0 {
		budgets = append([]float64(nil), req.Budgets...)
		sort.Float64s(budgets)
		budgets = budgets[:uniqFloats(budgets)]
	}

	// Point layout: predict points first (row-major configs × workloads),
	// then one budget point per workload. Indices depend only on the grid,
	// so Offset resumption is well-defined across requests.
	total := len(cfgs) * len(wls)
	if len(budgets) > 0 {
		total += len(wls)
	}
	if total > s.cfg.MaxSweepPoints {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("server: sweep: grid has %d points, limit %d", total, s.cfg.MaxSweepPoints))
		return
	}
	if req.Offset < 0 || req.Offset > total {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("server: sweep: offset %d outside grid of %d points", req.Offset, total))
		return
	}

	jobs := make([]sweepJob, 0, total-req.Offset)
	for ci := range cfgs {
		for wi := range wls {
			idx := ci*len(wls) + wi
			if idx < req.Offset {
				continue
			}
			jobs = append(jobs, sweepJob{
				index: idx, kind: "predict",
				config: cfgs[ci].name, workload: wls[wi].name,
				key:     composePredictKey(cfgs[ci].json, wls[wi].json, deltaJSON),
				compute: s.predictCompute(cfgs[ci].cfg, wls[wi].spec, req.Delta),
			})
		}
	}
	if len(budgets) > 0 {
		base := len(cfgs) * len(wls)
		for wi := range wls {
			idx := base + wi
			if idx < req.Offset {
				continue
			}
			key, err := canonicalKey("sweepbudgets", sweepBudgetsKey{
				Workload: wls[wi].spec, Budgets: budgets, Delta: req.Delta, Brute: req.Brute})
			if err != nil {
				s.fail(w, http.StatusInternalServerError, err)
				return
			}
			jobs = append(jobs, sweepJob{
				index: idx, kind: "budget", workload: wls[wi].name,
				key:     key,
				compute: s.budgetCompute(wls[wi].spec, budgets, req.Delta, req.Brute),
			})
		}
	}
	s.streamGrid(ctx, w, r, "sweep", total, req.Offset, jobs)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := s.post(w, r, s.cfg.SweepTimeout)
	if !ok {
		return
	}
	defer cancel()
	if s.draining.Load() {
		s.fail(w, http.StatusTooManyRequests, ErrShuttingDown)
		return
	}
	var req BatchRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	total := len(req.Requests)
	if total == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("server: batch: need at least one request"))
		return
	}
	if total > s.cfg.MaxSweepPoints {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("server: batch: %d points, limit %d", total, s.cfg.MaxSweepPoints))
		return
	}
	if req.Offset < 0 || req.Offset > total {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("server: batch: offset %d outside batch of %d points", req.Offset, total))
		return
	}
	// Batch points are independent requests: one invalid point becomes an
	// error line, the rest of the batch still runs.
	jobs := make([]sweepJob, 0, total-req.Offset)
	for i := req.Offset; i < total; i++ {
		pr := req.Requests[i]
		job := sweepJob{index: i, kind: "predict"}
		cfg, err := pr.Config.Resolve()
		if err == nil {
			job.config = cfg.Name
			var wspec WorkloadSpec
			if wspec, err = canonicalWorkload(pr.Workload); err == nil {
				job.workload = wspec.Name
				if wspec.Inline != nil {
					job.workload = wspec.Inline.Name
				}
				if job.key, err = canonicalKey("predict", PredictRequest{Config: configKey(cfg), Workload: wspec, Delta: pr.Delta}); err == nil {
					job.compute = s.predictCompute(cfg, wspec, pr.Delta)
				}
			}
		}
		job.err = err
		jobs = append(jobs, job)
	}
	s.streamGrid(ctx, w, r, "batch", total, req.Offset, jobs)
}

// streamGrid admits the grid against the sweep semaphore, fans the jobs
// out over the evaluation workers, and streams the result lines in point
// order followed by the summary trailer. Admission is non-blocking: a
// saturated server sheds the whole grid with 429 + Retry-After rather
// than queueing it.
//
// In cluster mode the grid's predict points are placed on the ring like
// single requests: a worker that draws a peer-owned point forwards it to
// the owner under the grid's request ID — the grid itself is never
// forwarded wholesale, its points scatter to their home shards.
func (s *Server) streamGrid(ctx context.Context, w http.ResponseWriter, r *http.Request, endpoint string, total, offset int, jobs []sweepJob) {
	requestID := w.Header().Get(requestIDHeader)
	forwarded := r.Header.Get(ForwardedHeader) != ""
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		s.fail(w, http.StatusTooManyRequests,
			fmt.Errorf("server: %s: %w: %d grids already streaming", endpoint, ErrOverloaded, s.cfg.SweepConcurrency))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("X-Sweep-Points", strconv.Itoa(total))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Fan out. The results channel holds every outstanding line, so
	// workers never block on the handler and a mid-stream deadline cannot
	// deadlock them; they observe ctx and stop picking up new points.
	jobsCh := make(chan sweepJob)
	results := make(chan *SweepLine, len(jobs))
	workers := s.cfg.SweepWorkers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for i := 0; i < workers; i++ {
		go s.gridWorker(ctx, endpoint, requestID, forwarded, jobsCh, results)
	}
	go func() {
		defer close(jobsCh)
		for _, job := range jobs {
			select {
			case jobsCh <- job:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Sequence: lines finish out of order, emit in index order so the
	// stream is deterministic and Offset resumption is exact.
	summary := SweepSummary{Kind: "summary", Points: total}
	pending := make(map[int]*SweepLine, workers)
	next := offset
	received := 0
recv:
	for received < len(jobs) {
		select {
		case line := <-results:
			received++
			pending[line.Index] = line
			for {
				line, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				summary.Emitted++
				switch line.Cache {
				case "hit":
					summary.CacheHits++
				case "miss":
					summary.CacheMisses++
				case "dedup":
					summary.DedupWaits++
				}
				if line.Error != nil {
					summary.Errors++
				}
				if err := enc.Encode(line); err != nil {
					break recv // client went away; the summary won't arrive either
				}
			}
			// One flush per drained burst, not per line: consecutive
			// ready points share a write.
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			s.metrics.Timeouts.Add(1)
			break recv
		}
	}
	summary.Complete = next == total
	enc.Encode(summary)
	if flusher != nil {
		flusher.Flush()
	}
}

// gridWorker evaluates points: each line goes through the result cache
// under its canonical key (hits short-circuit, concurrent identical points
// dedup). The compact buffer is reused across the worker's points, so
// steady-state allocation per point is one exact-size response copy.
func (s *Server) gridWorker(ctx context.Context, endpoint, requestID string, forwarded bool, jobs <-chan sweepJob, results chan<- *SweepLine) {
	var buf bytes.Buffer
	for job := range jobs {
		if ctx.Err() != nil {
			return
		}
		line := &SweepLine{Kind: job.kind, Index: job.index, Config: job.config, Workload: job.workload}
		if job.err != nil {
			s.errorLine(line, job.err, http.StatusBadRequest)
			results <- line
			continue
		}
		run := s.wrapCompute(endpoint, job.compute)
		var note forwardNote
		if s.forwarder != nil && !forwarded && job.kind == "predict" {
			// Predict points share keys — and therefore ring placement —
			// with single /v1/predict requests; budget points have no
			// standalone endpoint to replay against and stay local.
			run = s.forwardableCompute(ctx, "predict", job.key, requestID, run, &note)
		}
		ent, how, err := s.cache.do(ctx, job.key, run)
		switch how {
		case outcomeHit:
			s.metrics.CacheHits.Add(1)
			line.Cache = "hit"
		case outcomeShared:
			s.metrics.DedupWaits.Add(1)
			line.Cache = "dedup"
		default:
			s.metrics.CacheMisses.Add(1)
			line.Cache = "miss"
			if note.via == "forward" && note.cache != "" {
				line.Cache = note.cache
			}
		}
		if err != nil {
			s.errorLine(line, err, http.StatusInternalServerError)
			results <- line
			continue
		}
		// NDJSON lines cannot carry the entry's indented bytes verbatim;
		// embed the compact form of the same bytes (identical JSON value).
		buf.Reset()
		if err := json.Compact(&buf, ent.body); err != nil {
			s.errorLine(line, fmt.Errorf("server: compacting %s point: %w", endpoint, err), http.StatusInternalServerError)
			results <- line
			continue
		}
		line.Status = ent.status
		line.Response = append(make(json.RawMessage, 0, buf.Len()), buf.Bytes()...)
		results <- line
	}
}

// errorLine fills a result line's error fields under the same
// status/code/ρ mapping whole-request failures use.
func (s *Server) errorLine(line *SweepLine, err error, fallback int) {
	status := errorStatus(err, fallback)
	line.Status = status
	line.Error = &ErrorResponse{Error: err.Error(), Code: errorCode(status, err)}
	var sat *queueing.SaturationError
	if errors.As(err, &sat) {
		line.Error.Rho = sat.Rho
	}
}

// uniqFloats compacts a sorted slice in place, returning the unique length.
func uniqFloats(xs []float64) int {
	n := 0
	for i, x := range xs {
		if i == 0 || x != xs[n-1] {
			xs[n] = x
			n++
		}
	}
	return n
}
