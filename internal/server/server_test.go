package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/locality"
	"memhier/internal/machine"
	"memhier/internal/queueing"
	"memhier/internal/sim/backend"
)

// post fires one request at the in-process handler and returns the recorder.
func post(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decodeBody[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestPredictGolden(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	rec := post(t, s, "/v1/predict", PredictRequest{
		Config:   ConfigSpec{Name: "C4"},
		Workload: WorkloadSpec{Name: "FFT"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[PredictResponse](t, rec)

	cfg, err := machine.ByName("C4")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := core.PaperWorkloadByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Evaluate(cfg, wl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.EInstr != want.EInstr || resp.Result.T != want.T {
		t.Errorf("result = {T:%v E:%v}, want {T:%v E:%v}",
			resp.Result.T, resp.Result.EInstr, want.T, want.EInstr)
	}

	// The Text field must be byte-identical to what the chc-model CLI
	// prints: both sides render through core.RenderResult.
	var cli bytes.Buffer
	core.RenderResult(&cli, wl, want)
	if resp.Text != cli.String() {
		t.Errorf("predict text diverges from CLI output:\napi:\n%s\ncli:\n%s", resp.Text, cli.String())
	}
}

func TestPredictCacheHit(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	req := PredictRequest{Config: ConfigSpec{Name: "C8"}, Workload: WorkloadSpec{Name: "lu"}}
	first := post(t, s, "/v1/predict", req)
	if first.Code != http.StatusOK {
		t.Fatalf("first status = %d, body %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}

	// Alias spellings must canonicalize to the same key.
	second := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "c8"}, Workload: WorkloadSpec{Name: "LU"},
	})
	if second.Code != http.StatusOK {
		t.Fatalf("second status = %d", second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit body differs from the miss that populated it")
	}
	if s.metrics.CacheHits.Value() != 1 || s.metrics.CacheMisses.Value() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1",
			s.metrics.CacheHits.Value(), s.metrics.CacheMisses.Value())
	}
}

func TestPredictConcurrentDedup(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	const clients = 8
	var computations atomic.Int64
	arrived := make(chan struct{}, clients)
	release := make(chan struct{})
	real := s.evaluate
	s.evaluate = func(cfg machine.Config, wl core.Workload, opts core.Options) (core.Result, error) {
		computations.Add(1)
		<-release // hold the leader until every client has sent its request
		return real(cfg, wl, opts)
	}

	var wg sync.WaitGroup
	codes := make([]int, clients)
	caches := make([]string, clients)
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			rec := post(t, s, "/v1/predict", PredictRequest{
				Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"},
			})
			codes[i] = rec.Code
			caches[i] = rec.Header().Get("X-Cache")
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	for i := 0; i < clients; i++ {
		<-arrived
	}
	// All clients are at least at the door; give the stragglers a moment to
	// reach the flight table, then release the leader.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computations.Load(); n != 1 {
		t.Fatalf("computations = %d, want exactly 1 for %d identical requests", n, clients)
	}
	var misses, shared int
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d status = %d", i, codes[i])
		}
		switch caches[i] {
		case "miss":
			misses++
		case "dedup":
			shared++
		case "hit": // a client that arrived after the flight finished
		default:
			t.Errorf("client %d X-Cache = %q", i, caches[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("client %d body differs", i)
		}
	}
	if misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if shared == 0 {
		t.Error("no client reported X-Cache: dedup")
	}
}

func fakeRunResult() backend.RunResult {
	res := backend.RunResult{
		Config: "C4", WallCycles: 1e6, Instructions: 5e5, MemoryRefs: 2e5,
		EInstr: 2.0, Seconds: 0.005, AvgT: 3.5, Barriers: 10,
		CoherenceShare: 0.03, NetUtilization: 0.4,
	}
	res.ClassShare[backend.ClassCacheHit] = 0.95
	res.ClassShare[backend.ClassDisk] = 0.01
	return res
}

func TestValidateEndpoint(t *testing.T) {
	s := New(Config{SimWorkers: 2})
	defer s.Close()
	s.simulate = func(cfg machine.Config, kernel string) (backend.RunResult, error) {
		if kernel != "fft" {
			t.Errorf("kernel = %q, want canonicalized fft", kernel)
		}
		if cfg.CacheBytes*16 != 512<<10 { // C4's 512KB cache divided by 16
			t.Errorf("cache = %d, want scaled-down C4", cfg.CacheBytes)
		}
		return fakeRunResult(), nil
	}

	rec := post(t, s, "/v1/validate", ValidateRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: "FFT",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[ValidateResponse](t, rec)
	if resp.EInstr != 2.0 || resp.Workload != "fft" || resp.Barriers != 10 {
		t.Errorf("response = %+v", resp)
	}
	if resp.ClassShare[backend.ClassCacheHit.String()] != 0.95 {
		t.Errorf("class share = %v", resp.ClassShare)
	}

	// A repeat must be served from cache without re-simulating.
	s.simulate = func(machine.Config, string) (backend.RunResult, error) {
		t.Error("simulate called on what should be a cache hit")
		return backend.RunResult{}, nil
	}
	again := post(t, s, "/v1/validate", ValidateRequest{
		Config: ConfigSpec{Name: "c4"}, Workload: "fft",
	})
	if again.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeat X-Cache = %q, want hit", again.Header().Get("X-Cache"))
	}
	if !bytes.Equal(rec.Body.Bytes(), again.Body.Bytes()) {
		t.Error("cached validate body differs")
	}
}

func TestValidateShedsAtSaturation(t *testing.T) {
	s := New(Config{SimWorkers: 1, SimQueueDepth: -1, RetryAfter: 7 * time.Second})
	defer s.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	s.simulate = func(machine.Config, string) (backend.RunResult, error) {
		started <- struct{}{}
		<-block
		return fakeRunResult(), nil
	}

	// Occupy the single worker (queue depth 0, so the pool is now full).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := post(t, s, "/v1/validate", ValidateRequest{
			Config: ConfigSpec{Name: "C4"}, Workload: "fft",
		})
		if rec.Code != http.StatusOK {
			t.Errorf("occupying request status = %d", rec.Code)
		}
	}()
	<-started

	// A different request (different key: no dedup) must be shed.
	rec := post(t, s, "/v1/validate", ValidateRequest{
		Config: ConfigSpec{Name: "C5"}, Workload: "lu",
	})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}
	resp := decodeBody[ErrorResponse](t, rec)
	if resp.RetryAfterSeconds != 7 {
		t.Errorf("retry_after_seconds = %d, want 7", resp.RetryAfterSeconds)
	}
	if s.metrics.Shed.Value() != 1 {
		t.Errorf("shed counter = %d, want 1", s.metrics.Shed.Value())
	}

	close(block)
	wg.Wait()
}

func TestPredictSaturationMapsTo422(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	s.evaluate = func(machine.Config, core.Workload, core.Options) (core.Result, error) {
		err := &queueing.SaturationError{Rho: 1.25, MaxRho: 0.95, Tau: 4, Lambda: 0.3}
		return core.Result{}, fmt.Errorf("core: solving model: %w", err)
	}

	rec := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C1"}, Workload: WorkloadSpec{Name: "tpcc"},
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[ErrorResponse](t, rec)
	if resp.Rho != 1.25 {
		t.Errorf("rho = %v, want 1.25", resp.Rho)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	cases := []struct {
		name string
		do   func() *httptest.ResponseRecorder
		want int
	}{
		{"method", func() *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodGet, "/v1/predict", nil)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			return rec
		}, http.StatusMethodNotAllowed},
		{"malformed json", func() *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader("{nope"))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			return rec
		}, http.StatusBadRequest},
		{"unknown config", func() *httptest.ResponseRecorder {
			return post(t, s, "/v1/predict", PredictRequest{
				Config: ConfigSpec{Name: "C99"}, Workload: WorkloadSpec{Name: "fft"},
			})
		}, http.StatusBadRequest},
		{"unknown workload", func() *httptest.ResponseRecorder {
			return post(t, s, "/v1/predict", PredictRequest{
				Config: ConfigSpec{Name: "C1"}, Workload: WorkloadSpec{Name: "quicksort"},
			})
		}, http.StatusBadRequest},
		{"unknown field", func() *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict",
				strings.NewReader(`{"config":{"name":"C1"},"workload":{"name":"fft"},"detla":1}`))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			return rec
		}, http.StatusBadRequest},
		{"missing budget", func() *httptest.ResponseRecorder {
			return post(t, s, "/v1/optimize", OptimizeRequest{Workload: WorkloadSpec{Name: "fft"}})
		}, http.StatusBadRequest},
		{"bad divisor", func() *httptest.ResponseRecorder {
			return post(t, s, "/v1/validate", ValidateRequest{
				Config: ConfigSpec{Name: "C1"}, Workload: "fft", Divisor: -3,
			})
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := tc.do()
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d; body %s", tc.name, rec.Code, tc.want, rec.Body.String())
		}
		if tc.want != http.StatusMethodNotAllowed {
			resp := decodeBody[ErrorResponse](t, rec)
			if resp.Error == "" {
				t.Errorf("%s: empty error body", tc.name)
			}
		}
	}
}

func TestOptimizeEndpoint(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	rec := post(t, s, "/v1/optimize", OptimizeRequest{
		Budget: 5000, Workload: WorkloadSpec{Name: "fft"}, Top: 3,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[OptimizeResponse](t, rec)

	wl, err := core.PaperWorkloadByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	best, all, err := cost.Optimize(5000, wl, cost.DefaultCatalog(), cost.DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Best.Config, best.Config) || resp.Best.EInstr != best.EInstr {
		t.Errorf("best = %+v, want %+v", resp.Best, best)
	}
	if resp.Feasible != len(all) {
		t.Errorf("feasible = %d, want %d", resp.Feasible, len(all))
	}
	if len(resp.Top) != 3 {
		t.Errorf("top has %d entries, want 3", len(resp.Top))
	}
	if resp.Principle == "" {
		t.Error("missing principle classification")
	}
}

func TestAdviseEndpoint(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	rec := post(t, s, "/v1/advise", AdviseRequest{
		Config: ConfigSpec{Name: "C1"}, Budget: 3000, Workload: WorkloadSpec{Name: "tpcc"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AdviseResponse](t, rec)
	if resp.Plan.From.Name == "" || resp.Plan.To.Name == "" {
		t.Errorf("incomplete plan: %+v", resp.Plan)
	}
	if resp.Advice == "" {
		t.Error("missing advice text")
	}
}

func TestFitEndpoint(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	truth := locality.Params{Alpha: 1.8, Beta: 700}
	xs := []float64{0, 250, 1000, 4000, 16000, 64000, 256000}
	ps := make([]float64, len(xs))
	for i, x := range xs {
		ps[i] = truth.CDF(x)
	}
	rec := post(t, s, "/v1/fit", FitRequest{Xs: xs, Ps: ps, Gamma: 0.3})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[FitResponse](t, rec)
	if d := resp.Params.Alpha - truth.Alpha; d > 1e-6 || d < -1e-6 {
		t.Errorf("alpha = %v, want %v", resp.Params.Alpha, truth.Alpha)
	}
	if resp.Params.Gamma != 0.3 {
		t.Errorf("gamma = %v, want the request's 0.3", resp.Params.Gamma)
	}
	if resp.Stats.RMSE > 1e-9 {
		t.Errorf("rmse = %v on noiseless points", resp.Stats.RMSE)
	}
}

func TestOperationalEndpoints(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	get := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz = %d", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Errorf("readyz = %d", rec.Code)
	}

	post(t, s, "/v1/predict", PredictRequest{Config: ConfigSpec{Name: "C2"}, Workload: WorkloadSpec{Name: "radix"}})
	rec := get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	snap := decodeBody[map[string]any](t, rec)
	for _, key := range []string{"requests", "cache_hits", "cache_misses", "shed", "queue_depth", "endpoints"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	eps, _ := snap["endpoints"].(map[string]any)
	pred, _ := eps["predict"].(map[string]any)
	if pred == nil || pred["requests"].(float64) < 1 {
		t.Errorf("predict endpoint metrics = %v", pred)
	}

	s.BeginDrain()
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", rec.Code)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200 (process is alive)", rec.Code)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	s := New(Config{SimWorkers: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	s.simulate = func(machine.Config, string) (backend.RunResult, error) {
		close(started)
		<-block
		return fakeRunResult(), nil
	}

	ts := httptest.NewServer(s.Handler())

	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/validate", "application/json",
			strings.NewReader(`{"config":{"name":"C4"},"workload":"fft"}`))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: b}
	}()
	<-started

	// Drain: stop advertising readiness, then release the simulation and
	// shut down; the in-flight request must complete with its real result.
	s.BeginDrain()
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(block)
	}()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("http shutdown: %v", err)
	}
	s.Close()

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request failed: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d, body %s", res.status, res.body)
	}
	var v ValidateResponse
	if err := json.Unmarshal(res.body, &v); err != nil {
		t.Fatal(err)
	}
	if v.EInstr != 2.0 {
		t.Errorf("drained response EInstr = %v, want the simulation's 2.0", v.EInstr)
	}

	// New simulation work after drain is refused, not queued.
	if err := s.pool.do(context.Background(), func() {}); err != ErrShuttingDown {
		t.Errorf("pool.do after shutdown = %v, want ErrShuttingDown", err)
	}
}

func TestInlineAndMeasuredWorkloads(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	wl, err := core.PaperWorkloadByName("edge")
	if err != nil {
		t.Fatal(err)
	}
	inline := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Inline: &wl},
	})
	if inline.Code != http.StatusOK {
		t.Fatalf("inline status = %d, body %s", inline.Code, inline.Body.String())
	}
	named := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "edge"},
	})
	ir := decodeBody[PredictResponse](t, inline)
	nr := decodeBody[PredictResponse](t, named)
	if ir.Result.EInstr != nr.Result.EInstr {
		t.Errorf("inline E=%v != named E=%v for identical parameters", ir.Result.EInstr, nr.Result.EInstr)
	}

	if testing.Short() {
		t.Skip("measured characterization in -short mode")
	}
	measured := post(t, s, "/v1/predict", PredictRequest{
		Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft", Measured: true},
	})
	if measured.Code != http.StatusOK {
		t.Fatalf("measured status = %d, body %s", measured.Code, measured.Body.String())
	}
	mr := decodeBody[PredictResponse](t, measured)
	if mr.Workload.Name == "" || mr.Result.EInstr <= 0 {
		t.Errorf("measured response = %+v", mr.Result)
	}
}

func TestCustomConfigPredict(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	rec := post(t, s, "/v1/predict", PredictRequest{
		Config:   ConfigSpec{Kind: "csmp", Machines: 4, Procs: 2, Net: "atm"},
		Workload: WorkloadSpec{Name: "radix"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[PredictResponse](t, rec)
	if resp.Result.EInstr <= 0 {
		t.Errorf("E(Instr) = %v", resp.Result.EInstr)
	}
}
