package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/experiments"
	"memhier/internal/faults"
	"memhier/internal/locality"
	"memhier/internal/machine"
	"memhier/internal/queueing"
	"memhier/internal/sim/backend"
	"memhier/internal/workloads"
)

// Config tunes the service. The zero value selects production defaults.
type Config struct {
	// CacheEntries bounds the result cache (default 4096 responses,
	// spread over CacheShards shards, default 16).
	CacheEntries int
	CacheShards  int
	// SimWorkers bounds concurrent simulations (default NumCPU);
	// SimQueueDepth bounds simulations waiting for a worker (default
	// 2×SimWorkers). Submissions beyond workers+queue are shed with 429.
	SimWorkers    int
	SimQueueDepth int
	// RequestTimeout is the context deadline of the analytical endpoints
	// (default 30s); SimTimeout is the deadline of /v1/validate (default
	// 5m — a scaled-down simulation takes seconds, paper-scale minutes).
	RequestTimeout time.Duration
	SimTimeout     time.Duration
	// RetryAfter is the client back-off hint on shed requests (default 2s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// SweepWorkers bounds the per-sweep evaluation workers (default
	// NumCPU); SweepConcurrency bounds concurrently streaming sweeps —
	// a whole grid is one admission unit, and grids beyond the limit are
	// shed with 429 (default 2). SweepTimeout is the grid deadline
	// (default 2m), MaxSweepPoints the largest accepted grid (default
	// 4096 points).
	SweepWorkers     int
	SweepConcurrency int
	SweepTimeout     time.Duration
	MaxSweepPoints   int
	// Faults optionally injects faults at the instrumented sites (chaos
	// testing; see internal/faults). Nil — the default — disables
	// injection entirely: the hot path pays one nil check.
	Faults faults.Hook
	// Forwarder enables cluster mode: cache misses for keys owned by a
	// peer are proxied to that peer (see cluster.go). Nil — the default —
	// is single-node operation with no extra cost on the hot path.
	Forwarder PeerForwarder
}

func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = runtime.NumCPU()
	}
	if c.SimQueueDepth < 0 {
		c.SimQueueDepth = 0
	} else if c.SimQueueDepth == 0 {
		c.SimQueueDepth = 2 * c.SimWorkers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.SimTimeout <= 0 {
		c.SimTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = runtime.NumCPU()
	}
	if c.SweepConcurrency <= 0 {
		c.SweepConcurrency = 2
	}
	if c.SweepTimeout <= 0 {
		c.SweepTimeout = 2 * time.Minute
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	return c
}

// endpointNames is the fixed metrics vocabulary.
var endpointNames = []string{"predict", "sweep", "batch", "optimize", "advise", "fit", "validate", "healthz", "readyz", "metrics", "notfound"}

// Server is the chc-serve service: handlers, result cache, simulation
// worker pool, and operational state.
type Server struct {
	cfg       Config
	cache     *resultCache
	pool      *workerPool
	metrics   *serverMetrics
	mux       *http.ServeMux
	faults    faults.Hook   // nil = no injection
	forwarder PeerForwarder // nil = single-node mode
	draining  atomic.Bool
	// sweepSem admits whole-grid sweeps: one token per streaming sweep,
	// acquired non-blocking so excess grids shed immediately with 429.
	sweepSem chan struct{}

	// Computation seams, overridable in tests to control timing and
	// failure injection; production values are the real packages.
	evaluate func(machine.Config, core.Workload, core.Options) (core.Result, error)
	simulate func(cfg machine.Config, kernel string) (backend.RunResult, error)
	resolve  func(name string, measured bool) (core.Workload, error)
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newResultCache(cfg.CacheEntries, cfg.CacheShards),
		pool:      newWorkerPool(cfg.SimWorkers, cfg.SimQueueDepth),
		sweepSem:  make(chan struct{}, cfg.SweepConcurrency),
		faults:    cfg.Faults,
		forwarder: cfg.Forwarder,
		evaluate:  core.Evaluate,
		simulate:  runSimulation,
		resolve:   experiments.ResolveWorkload,
	}
	s.metrics = newServerMetrics(endpointNames, s.pool.depth, s.cache.len)
	if s.forwarder != nil {
		s.metrics.cluster = s.forwarder.Stats
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/predict", s.instrument("predict", true, s.handlePredict))
	s.mux.HandleFunc("/v1/sweep", s.instrument("sweep", true, s.handleSweep))
	s.mux.HandleFunc("/v1/batch", s.instrument("batch", true, s.handleBatch))
	s.mux.HandleFunc("/v1/optimize", s.instrument("optimize", true, s.handleOptimize))
	s.mux.HandleFunc("/v1/advise", s.instrument("advise", true, s.handleAdvise))
	s.mux.HandleFunc("/v1/fit", s.instrument("fit", true, s.handleFit))
	s.mux.HandleFunc("/v1/validate", s.instrument("validate", true, s.handleValidate))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.instrument("readyz", false, s.handleReadyz))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", false, s.handleMetrics))
	s.mux.HandleFunc("/", s.instrument("notfound", false, s.handleNotFound))
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips /readyz to failing so load balancers stop routing new
// traffic; call it before http.Server.Shutdown, which then drains the
// in-flight requests.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close stops the simulation worker pool after completing accepted jobs.
func (s *Server) Close() { s.pool.shutdown() }

// Publish registers the metrics snapshot in the process-wide expvar
// namespace under "chcserve" (call at most once per process; tests read
// /metrics instead).
func (s *Server) Publish() {
	expvar.Publish("chcserve", expvar.Func(func() any { return s.metrics.snapshot() }))
}

// Metrics returns the current metrics snapshot (for the load generator and
// tests).
func (s *Server) Metrics() map[string]any { return s.metrics.snapshot() }

// ---- operational endpoints ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Draining is an error response like any other: JSON body with a
		// machine-readable code and the request ID.
		s.failCode(w, http.StatusServiceUnavailable, CodeDraining,
			errors.New("server: draining: not accepting new work"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleNotFound is the fallback route: unknown paths get the same JSON
// error contract as every other failure, not net/http's bare-text 404.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.failCode(w, http.StatusNotFound, CodeNotFound,
		fmt.Errorf("server: no such endpoint %q", r.URL.Path))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.metrics.snapshot())
}

// ---- request plumbing ----

// decode reads one JSON request body, rejecting unknown fields so typos
// fail loudly instead of silently selecting defaults.
func (s *Server) decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: decoding request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Even the fallback honors the error contract: JSON content type
		// and a machine-readable code (http.Error would write text/plain).
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\n  \"error\": \"server: encoding response\",\n  \"code\": %q\n}\n", CodeInternal)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

// Machine-readable error codes: the stable vocabulary of the "code" field
// in every non-2xx body. Clients branch on these, not on message text —
// they are exported so internal/client and the cluster forwarding layer
// share the vocabulary instead of re-spelling the strings.
const (
	CodeBadRequest       = "bad_request"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeOverloaded       = "overloaded"
	CodeDraining         = "draining"
	CodeSaturated        = "saturated"
	CodeInfeasible       = "infeasible"
	CodeDeadline         = "deadline"
	CodeTransient        = "transient"
	CodePanic            = "panic"
	CodeInternal         = "internal"
)

// errInfeasible marks an optimization with no feasible configuration at
// any requested budget — a property of the request (422), not a server
// failure.
var errInfeasible = errors.New("infeasible")

// computePanicError is a recovered compute-goroutine panic carried back
// to the handler as an ordinary error (status 500, code "panic").
type computePanicError struct {
	endpoint string
	value    any
}

func (e *computePanicError) Error() string {
	return fmt.Sprintf("server: %s computation panicked: %v", e.endpoint, e.value)
}

// errorCode maps a (status, error) pair to its machine-readable code.
func errorCode(status int, err error) string {
	var sat *queueing.SaturationError
	var cpe *computePanicError
	switch {
	case errors.As(err, &cpe):
		return CodePanic
	case errors.Is(err, ErrShuttingDown):
		return CodeDraining
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.As(err, &sat):
		return CodeSaturated
	case errors.Is(err, errInfeasible):
		return CodeInfeasible
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return CodeDeadline
	case errors.Is(err, faults.ErrInjected):
		return CodeTransient
	}
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusNotFound:
		return CodeNotFound
	default:
		return CodeInternal
	}
}

// errorStatus maps an error to its HTTP status: queue shed → 429,
// saturation or infeasibility → 422, deadline or injected transient fault
// → 503, everything else → the given fallback status. Whole-request
// failures (fail) and per-point sweep error lines share this mapping.
func errorStatus(err error, fallback int) int {
	var sat *queueing.SaturationError
	switch {
	case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrShuttingDown):
		return http.StatusTooManyRequests
	case errors.As(err, &sat), errors.Is(err, errInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled),
		errors.Is(err, faults.ErrInjected):
		return http.StatusServiceUnavailable
	}
	return fallback
}

// fail maps an error to its status (see errorStatus) and JSON body. Every
// body carries a machine-readable code and the request ID.
func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	status = errorStatus(err, status)
	s.failCode(w, status, errorCode(status, err), err)
}

// failCode writes the error body with an explicit code (fail derives it).
func (s *Server) failCode(w http.ResponseWriter, status int, code string, err error) {
	// The request-ID middleware stamped the response header before the
	// handler ran; echo it into the body so error reports are self-contained.
	resp := ErrorResponse{Error: err.Error(), Code: code, RequestID: w.Header().Get(requestIDHeader)}
	var sat *queueing.SaturationError
	switch {
	case status == http.StatusTooManyRequests:
		s.metrics.Shed.Add(1)
		retry := int(s.cfg.RetryAfter / time.Second)
		if retry < 1 {
			retry = 1
		}
		resp.RetryAfterSeconds = retry
		w.Header().Set("Retry-After", strconv.Itoa(retry))
	case errors.As(err, &sat):
		resp.Rho = sat.Rho
	}
	writeJSON(w, status, resp)
}

// post guards an API handler: POST only, with a per-request deadline.
func (s *Server) post(w http.ResponseWriter, r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, errors.New("server: use POST with a JSON body"))
		return nil, nil, false
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, true
}

// serveCached runs the cache+singleflight protocol around compute and
// writes the resulting bytes, tagging the response with X-Cache. The
// route's deadline is enforced here even against a stalled computation:
// the cache protocol runs in its own goroutine and the handler answers
// 503 at the deadline, while a leader keeps computing in the background so
// the finished result is cached for future callers (waiters already
// abandon on ctx inside cache.do). Compute-site fault injection wraps the
// computation, so injected failures share the single-flight path real
// failures take.
//
// In cluster mode the single-flight leader additionally consults the
// ring (cluster.go): a miss on a peer-owned key forwards to the owner
// inside the leader slot, so local duplicates dedup onto one forward and
// the forwarded answer — byte-identical to the owner's — lands in the
// local cache, replicating the hot key at its entry node.
//chc:hotpath
func (s *Server) serveCached(ctx context.Context, w http.ResponseWriter, r *http.Request, endpoint, key string, compute func() (entry, error)) {
	var note forwardNote
	run := s.wrapCompute(endpoint, compute)
	if s.forwarder != nil {
		w.Header().Set(ClusterNodeHeader, s.forwarder.Self())
		if r.Header.Get(ForwardedHeader) != "" {
			// A forwarded request always computes here — one hop maximum,
			// so disagreeing ring views cannot loop a request — and a
			// draining node refuses it outright: the deliberate draining
			// answer tells the forwarder to fall back to local compute
			// instead of waiting out a dying peer.
			if s.draining.Load() {
				s.fail(w, http.StatusTooManyRequests, ErrShuttingDown)
				return
			}
		} else {
			run = s.forwardableCompute(ctx, endpoint, key, w.Header().Get(requestIDHeader), run, &note)
		}
	}
	type cacheAnswer struct {
		ent entry
		how outcome
		err error
	}
	done := make(chan cacheAnswer, 1)
	go func() {
		ent, how, err := s.cache.do(ctx, key, run)
		done <- cacheAnswer{ent, how, err}
	}()
	var ans cacheAnswer
	select {
	case ans = <-done:
	case <-ctx.Done():
		s.metrics.Timeouts.Add(1)
		s.fail(w, http.StatusServiceUnavailable, ctx.Err())
		return
	}
	switch ans.how {
	case outcomeHit:
		s.metrics.CacheHits.Add(1)
		w.Header().Set("X-Cache", "hit")
	case outcomeShared:
		s.metrics.DedupWaits.Add(1)
		w.Header().Set("X-Cache", "dedup")
	default:
		s.metrics.CacheMisses.Add(1)
		// A forwarded answer relays the owner's X-Cache verdict: the
		// cluster-wide miss count then equals actual computations, no
		// matter which entry node a client hit.
		if note.via == "forward" && note.cache != "" {
			w.Header().Set("X-Cache", note.cache)
		} else {
			w.Header().Set("X-Cache", "miss")
		}
	}
	// note is written by the leader closure before its cache.do returns,
	// which happens-before the done receive above; waiters and hits leave
	// it empty and get no placement headers.
	if note.via != "" {
		w.Header().Set(ClusterViaHeader, note.via)
		if note.owner != "" {
			w.Header().Set(ClusterOwnerHeader, note.owner)
		}
	}
	if ans.err != nil {
		s.fail(w, http.StatusInternalServerError, ans.err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(ans.ent.status)
	w.Write(ans.ent.body)
}

// wrapCompute guards a computation with panic recovery and compute-site
// fault injection. Computations run in detached goroutines (the cache
// protocol's, or a sweep worker's), out of reach of the middleware's
// recover: panics convert to errors here so a crashed computation yields a
// 500 (or an error line), never a dead process, and the single-flight
// leader state unwinds normally on the error path.
func (s *Server) wrapCompute(endpoint string, compute func() (entry, error)) func() (entry, error) {
	return func() (ent entry, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Panics.Add(1)
				err = &computePanicError{endpoint: endpoint, value: rec}
			}
		}()
		if s.faults != nil {
			if err := s.faults.Inject(faults.SiteCompute, endpoint); err != nil {
				return entry{}, err
			}
		}
		return compute()
	}
}

// render marshals a successful response body into a cacheable entry.
func render(v any) (entry, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return entry{}, err
	}
	return entry{status: http.StatusOK, body: buf.Bytes()}, nil
}

// ---- API endpoints ----

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := s.post(w, r, s.cfg.RequestTimeout)
	if !ok {
		return
	}
	defer cancel()
	var req PredictRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := req.Config.Resolve()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	wspec, err := canonicalWorkload(req.Workload)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	key, err := canonicalKey("predict", PredictRequest{Config: configKey(cfg), Workload: wspec, Delta: req.Delta})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(ctx, w, r, "predict", key, s.predictCompute(cfg, wspec, req.Delta))
}

// predictCompute is the /v1/predict computation behind the cache: resolve
// the workload, solve the model, render. Sweep and batch points run the
// same closure under the same keys, so a sweep point and the equivalent
// single request share one cache entry byte for byte.
func (s *Server) predictCompute(cfg machine.Config, wspec WorkloadSpec, delta float64) func() (entry, error) {
	return func() (entry, error) {
		wl, err := s.resolveSpec(wspec)
		if err != nil {
			return entry{}, err
		}
		res, err := s.evaluate(cfg, wl, core.Options{CoherenceAdjust: delta})
		if err != nil {
			return entry{}, err
		}
		var text bytes.Buffer
		core.RenderResult(&text, wl, res)
		return render(PredictResponse{Result: res, Workload: wl, Text: text.String()})
	}
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := s.post(w, r, s.cfg.RequestTimeout)
	if !ok {
		return
	}
	defer cancel()
	var req OptimizeRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.Budget <= 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: budget must be positive, got %v", req.Budget))
		return
	}
	top := req.Top
	if top <= 0 {
		top = 5
	} else if top > 50 {
		top = 50
	}
	wspec, err := canonicalWorkload(req.Workload)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	key, err := canonicalKey("optimize", OptimizeRequest{Budget: req.Budget, Workload: wspec, Top: top, Delta: req.Delta})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(ctx, w, r, "optimize", key, func() (entry, error) {
		wl, err := s.resolveSpec(wspec)
		if err != nil {
			return entry{}, err
		}
		opts := core.Options{CoherenceAdjust: req.Delta}
		best, all, err := cost.Optimize(req.Budget, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
		if err != nil {
			return entry{}, err
		}
		n := top
		if n > len(all) {
			n = len(all)
		}
		return render(OptimizeResponse{
			Workload:  wl.Name,
			Principle: cost.Recommend(wl).String(),
			Feasible:  len(all),
			Best:      best,
			Top:       all[:n],
		})
	})
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := s.post(w, r, s.cfg.RequestTimeout)
	if !ok {
		return
	}
	defer cancel()
	var req AdviseRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := req.Config.Resolve()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.Budget < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: negative budget increase %v", req.Budget))
		return
	}
	wspec, err := canonicalWorkload(req.Workload)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	key, err := canonicalKey("advise", AdviseRequest{Config: configKey(cfg), Budget: req.Budget, Workload: wspec, Delta: req.Delta})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(ctx, w, r, "advise", key, func() (entry, error) {
		wl, err := s.resolveSpec(wspec)
		if err != nil {
			return entry{}, err
		}
		opts := core.Options{CoherenceAdjust: req.Delta}
		plan, err := cost.Upgrade(cfg, req.Budget, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
		if err != nil {
			return entry{}, err
		}
		advice, err := cost.UpgradeAdvice(cfg, wl, opts)
		if err != nil {
			return entry{}, err
		}
		return render(AdviseResponse{
			Workload:  wl.Name,
			Principle: cost.Recommend(wl).String(),
			Plan:      plan,
			Advice:    advice,
		})
	})
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := s.post(w, r, s.cfg.RequestTimeout)
	if !ok {
		return
	}
	defer cancel()
	var req FitRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	key, err := canonicalKey("fit", req)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(ctx, w, r, "fit", key, func() (entry, error) {
		params, stats, err := locality.Fit(req.Xs, req.Ps, locality.FitOptions{Weights: req.Weights})
		if err != nil {
			return entry{}, err
		}
		params.Gamma = req.Gamma
		return render(FitResponse{Params: params, Stats: stats})
	})
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := s.post(w, r, s.cfg.SimTimeout)
	if !ok {
		return
	}
	defer cancel()
	var req ValidateRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	kernel, err := canonicalKernelName(req.Workload)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	divisor := req.Divisor
	if divisor == 0 {
		divisor = 16
	}
	if divisor < 1 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: divisor must be >= 1, got %d", divisor))
		return
	}
	cfg, err := req.Config.Resolve()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if divisor > 1 {
		if cfg, err = cfg.Scaled(divisor); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	// The canonical Config is the already-scaled form (its Divisor, if
	// any, is part of configKey), so the canonical request pins Divisor
	// to 1: replaying these bytes — as the cluster forwarder does — must
	// not scale the platform a second time.
	key, err := canonicalKey("validate", ValidateRequest{Config: configKey(cfg), Workload: kernel, Divisor: 1})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(ctx, w, r, "validate", key, func() (entry, error) {
		// The expensive leg: bounded workers, bounded queue, shed beyond.
		var res backend.RunResult
		var simErr error
		if err := s.pool.do(ctx, func() {
			res, simErr = s.simulate(cfg, kernel)
		}); err != nil {
			return entry{}, err
		}
		if simErr != nil {
			return entry{}, simErr
		}
		share := make(map[string]float64, int(backend.ClassDisk-backend.ClassCacheHit)+1)
		for c := backend.ClassCacheHit; c <= backend.ClassDisk; c++ {
			// Deep-level classes appear only when the config has them:
			// one-level responses keep their historical key set.
			if c.DeepOnly() && res.ClassShare[c] == 0 {
				continue
			}
			share[c.String()] = res.ClassShare[c]
		}
		return render(ValidateResponse{
			Platform:       cfg.Name,
			Workload:       kernel,
			EInstr:         res.EInstr,
			Seconds:        res.Seconds,
			AvgT:           res.AvgT,
			WallCycles:     res.WallCycles,
			Instructions:   res.Instructions,
			MemoryRefs:     res.MemoryRefs,
			Barriers:       res.Barriers,
			ClassShare:     share,
			CoherenceShare: res.CoherenceShare,
			NetUtilization: res.NetUtilization,
		})
	})
}

// resolveSpec turns a canonicalized workload spec into a model workload.
func (s *Server) resolveSpec(w WorkloadSpec) (core.Workload, error) {
	if w.Inline != nil {
		return *w.Inline, nil
	}
	return s.resolve(w.Name, w.Measured)
}

// configKey reduces a resolved configuration to its canonical request
// form: catalog configurations key on their name alone, custom ones on
// the full resolved field set.
func configKey(cfg machine.Config) ConfigSpec {
	// Catalog configurations key on their (unique) name, including scaled
	// variants ("C4/16"). Custom platforms must key on their full field
	// set: a scaled custom is renamed "custom/N" by Scaled, and keying
	// that on the name alone would collide every divisor-N custom
	// platform into one cache entry regardless of its capacities.
	if cfg.Name != "custom" && !strings.HasPrefix(cfg.Name, "custom/") {
		// A scaled catalog config is named "C4/16" by Scaled; key it as
		// the resolvable canonical form {Name: "C4", Divisor: 16}.
		if base, div, ok := strings.Cut(cfg.Name, "/"); ok {
			if n, err := strconv.Atoi(div); err == nil && n > 1 {
				return ConfigSpec{Name: base, Divisor: n}
			}
		}
		return ConfigSpec{Name: cfg.Name}
	}
	net, _ := cfg.Net.MarshalText()
	kind, _ := cfg.Kind.MarshalText()
	return ConfigSpec{
		Kind: string(kind), Machines: cfg.N, Procs: cfg.Procs,
		CacheBytes: cfg.CacheBytes, MemoryBytes: cfg.MemoryBytes,
		Levels: cfg.Levels,
		Net:    string(net), ClockMHz: cfg.ClockMHz,
	}
}

// runSimulation is the production simulate seam: generate the kernel's
// trace at the small scale and run the execution-driven simulator.
func runSimulation(cfg machine.Config, kernel string) (backend.RunResult, error) {
	k, err := workloads.ByName(kernel, workloads.ScaleSmall)
	if err != nil {
		return backend.RunResult{}, err
	}
	tr, err := workloads.GenerateTrace(k, cfg.TotalProcs())
	if err != nil {
		return backend.RunResult{}, err
	}
	return backend.Simulate(tr, cfg)
}
