package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/machine"
)

// readStream parses an NDJSON sweep response into its result lines and
// summary trailer.
func readStream(t *testing.T, body []byte) ([]SweepLine, SweepSummary) {
	t.Helper()
	var lines []SweepLine
	var summary SweepSummary
	sawSummary := false
	dec := json.NewDecoder(bytes.NewReader(body))
	for dec.More() {
		if sawSummary {
			t.Fatal("lines after the summary trailer")
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		raw := json.RawMessage{}
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("decode line: %v", err)
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("probe line %s: %v", raw, err)
		}
		if probe.Kind == "summary" {
			if err := json.Unmarshal(raw, &summary); err != nil {
				t.Fatalf("decode summary: %v", err)
			}
			sawSummary = true
			continue
		}
		var line SweepLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("decode line %s: %v", raw, err)
		}
		lines = append(lines, line)
	}
	if !sawSummary {
		t.Fatalf("stream has no summary trailer:\n%s", body)
	}
	return lines, summary
}

func compact(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.Bytes()
}

// TestSweepMatchesPredict is the core contract: every predict point of a
// sweep carries exactly the bytes (modulo indentation) the equivalent
// /v1/predict request returns, and the two paths share one cache entry.
func TestSweepMatchesPredict(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	configs := []string{"C1", "C4", "C7"}
	workloads := []string{"fft", "radix"}
	req := SweepRequest{
		Workloads: []WorkloadSpec{{Name: "FFT"}, {Name: "Radix"}}, // alias spellings canonicalize
		Budgets:   []float64{5000, 20000},
	}
	for _, c := range configs {
		req.Configs = append(req.Configs, ConfigSpec{Name: c})
	}
	rec := post(t, s, "/v1/sweep", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	total := len(configs)*len(workloads) + len(workloads)
	if got := rec.Header().Get("X-Sweep-Points"); got != strconv.Itoa(total) {
		t.Errorf("X-Sweep-Points = %q, want %d", got, total)
	}
	lines, summary := readStream(t, rec.Body.Bytes())
	if len(lines) != total {
		t.Fatalf("got %d lines, want %d", len(lines), total)
	}
	if !summary.Complete || summary.Points != total || summary.Emitted != total || summary.Errors != 0 {
		t.Errorf("summary = %+v", summary)
	}
	if summary.CacheMisses != total {
		t.Errorf("cold sweep misses = %d, want %d (hits %d, dedups %d)",
			summary.CacheMisses, total, summary.CacheHits, summary.DedupWaits)
	}

	// Lines arrive in index order; each predict point byte-matches the
	// individual endpoint (the sweep populated the cache, so these are hits).
	for i, line := range lines {
		if line.Index != i {
			t.Fatalf("line %d has index %d — stream not sequenced", i, line.Index)
		}
	}
	for ci, c := range configs {
		for wi, w := range workloads {
			line := lines[ci*len(workloads)+wi]
			if line.Kind != "predict" || line.Status != http.StatusOK {
				t.Fatalf("line %d = %+v", line.Index, line)
			}
			single := post(t, s, "/v1/predict", PredictRequest{Config: ConfigSpec{Name: c}, Workload: WorkloadSpec{Name: w}})
			if single.Code != http.StatusOK {
				t.Fatalf("predict %s/%s status %d", c, w, single.Code)
			}
			if single.Header().Get("X-Cache") != "hit" {
				t.Errorf("predict %s/%s after sweep: X-Cache = %q, want hit (sweep must warm the predict cache)",
					c, w, single.Header().Get("X-Cache"))
			}
			if want := compact(t, single.Body.Bytes()); !bytes.Equal([]byte(line.Response), want) {
				t.Errorf("%s/%s sweep point differs from /v1/predict:\nsweep:   %s\npredict: %s",
					c, w, line.Response, want)
			}
		}
	}

	// Budget lines match a direct OptimizeBudgets call bit for bit.
	for wi, w := range workloads {
		line := lines[len(configs)*len(workloads)+wi]
		if line.Kind != "budget" || line.Status != http.StatusOK {
			t.Fatalf("budget line %d = %+v", line.Index, line)
		}
		var got BudgetSweepResponse
		if err := json.Unmarshal(line.Response, &got); err != nil {
			t.Fatal(err)
		}
		wl, err := core.PaperWorkloadByName(w)
		if err != nil {
			t.Fatal(err)
		}
		pts, stats, err := cost.OptimizeBudgets(req.Budgets, wl, cost.DefaultCatalog(), cost.DefaultSpace(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats != stats || len(got.Points) != len(pts) {
			t.Fatalf("budget line stats %+v (%d points), want %+v (%d points)", got.Stats, len(got.Points), stats, len(pts))
		}
		for i := range pts {
			if got.Points[i].Budget != pts[i].Budget || !reflect.DeepEqual(got.Points[i].Best, pts[i].Best) {
				t.Errorf("%s budget %v: %+v != %+v", w, pts[i].Budget, got.Points[i], pts[i])
			}
		}
	}

	// A second identical sweep is all cache hits.
	again := post(t, s, "/v1/sweep", req)
	if again.Code != http.StatusOK {
		t.Fatalf("second sweep status = %d", again.Code)
	}
	_, sum2 := readStream(t, again.Body.Bytes())
	if sum2.CacheHits != total || sum2.CacheMisses != 0 {
		t.Errorf("warm sweep hits=%d misses=%d, want %d/0", sum2.CacheHits, sum2.CacheMisses, total)
	}
}

// TestSweepBruteBudgetsBitIdentical holds the pruned and brute-force
// budget searches together through the API: same winners, byte for byte.
func TestSweepBruteBudgetsBitIdentical(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	req := SweepRequest{
		Workloads: []WorkloadSpec{{Name: "lu"}},
		Budgets:   []float64{3000, 5000, 20000},
	}
	budgetLine := func(brute bool) BudgetSweepResponse {
		r := req
		r.Brute = brute
		rec := post(t, s, "/v1/sweep", r)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
		}
		lines, _ := readStream(t, rec.Body.Bytes())
		if len(lines) != 1 || lines[0].Kind != "budget" || lines[0].Error != nil {
			t.Fatalf("lines = %+v", lines)
		}
		var resp BudgetSweepResponse
		if err := json.Unmarshal(lines[0].Response, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	pruned, brute := budgetLine(false), budgetLine(true)
	if !brute.Brute || pruned.Brute {
		t.Fatalf("brute flag not echoed: pruned=%v brute=%v", pruned.Brute, brute.Brute)
	}
	if len(pruned.Points) != len(brute.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(pruned.Points), len(brute.Points))
	}
	for i := range pruned.Points {
		if pruned.Points[i].Budget != brute.Points[i].Budget || !reflect.DeepEqual(pruned.Points[i].Best, brute.Points[i].Best) {
			t.Errorf("budget %v: pruned winner %+v != brute winner %+v",
				pruned.Points[i].Budget, pruned.Points[i].Best, brute.Points[i].Best)
		}
	}
}

// TestSweepOffsetResume: a sweep with Offset k returns exactly the tail of
// the full stream, byte-identical responses at the same indices.
func TestSweepOffsetResume(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	req := SweepRequest{
		Configs:   []ConfigSpec{{Name: "C1"}, {Name: "C4"}, {Name: "C8"}},
		Workloads: []WorkloadSpec{{Name: "fft"}, {Name: "lu"}},
		Budgets:   []float64{5000},
	}
	full := post(t, s, "/v1/sweep", req)
	if full.Code != http.StatusOK {
		t.Fatalf("status = %d", full.Code)
	}
	fullLines, fullSum := readStream(t, full.Body.Bytes())

	req.Offset = 4
	tail := post(t, s, "/v1/sweep", req)
	if tail.Code != http.StatusOK {
		t.Fatalf("tail status = %d", tail.Code)
	}
	tailLines, tailSum := readStream(t, tail.Body.Bytes())
	if want := fullSum.Points - req.Offset; len(tailLines) != want {
		t.Fatalf("tail has %d lines, want %d", len(tailLines), want)
	}
	if !tailSum.Complete || tailSum.Points != fullSum.Points || tailSum.Emitted != len(tailLines) {
		t.Errorf("tail summary = %+v", tailSum)
	}
	for i, line := range tailLines {
		want := fullLines[req.Offset+i]
		if line.Index != want.Index || line.Kind != want.Kind || line.Status != want.Status {
			t.Fatalf("tail line %d = %+v, want frame of %+v", i, line, want)
		}
		if !bytes.Equal(line.Response, want.Response) {
			t.Errorf("tail index %d response differs from full stream", line.Index)
		}
	}

	// Offset == total: no points, just a complete summary.
	req.Offset = fullSum.Points
	empty := post(t, s, "/v1/sweep", req)
	emptyLines, emptySum := readStream(t, empty.Body.Bytes())
	if len(emptyLines) != 0 || !emptySum.Complete || emptySum.Emitted != 0 {
		t.Errorf("offset=total: lines=%d summary=%+v", len(emptyLines), emptySum)
	}
}

func TestSweepShedsBeyondConcurrency(t *testing.T) {
	s := New(Config{SweepConcurrency: 1, SweepWorkers: 1})
	defer s.Close()
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	real := s.evaluate
	s.evaluate = func(cfg machine.Config, wl core.Workload, opts core.Options) (core.Result, error) {
		entered <- struct{}{}
		<-release
		return real(cfg, wl, opts)
	}

	req := SweepRequest{Configs: []ConfigSpec{{Name: "C4"}}, Workloads: []WorkloadSpec{{Name: "fft"}}}
	done := make(chan *SweepSummary, 1)
	go func() {
		rec := post(t, s, "/v1/sweep", req)
		if rec.Code != http.StatusOK {
			done <- nil
			return
		}
		_, sum := readStream(t, rec.Body.Bytes())
		done <- &sum
	}()
	<-entered // the first sweep holds the only token

	shed := post(t, s, "/v1/sweep", SweepRequest{Configs: []ConfigSpec{{Name: "C1"}}, Workloads: []WorkloadSpec{{Name: "lu"}}})
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("second sweep status = %d, want 429", shed.Code)
	}
	if shed.Header().Get("Retry-After") == "" {
		t.Error("shed sweep missing Retry-After")
	}
	if resp := decodeBody[ErrorResponse](t, shed); resp.Code != CodeOverloaded || resp.RetryAfterSeconds < 1 {
		t.Errorf("shed body = %+v", resp)
	}

	close(release)
	if sum := <-done; sum == nil || !sum.Complete {
		t.Fatalf("first sweep did not complete: %+v", sum)
	}

	// Token released: the next sweep is admitted.
	after := post(t, s, "/v1/sweep", req)
	if after.Code != http.StatusOK {
		t.Errorf("post-release sweep status = %d", after.Code)
	}
}

func TestSweepDrainingRejected(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	s.BeginDrain()
	rec := post(t, s, "/v1/sweep", SweepRequest{Configs: []ConfigSpec{{Name: "C4"}}, Workloads: []WorkloadSpec{{Name: "fft"}}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("draining sweep status = %d, want 429", rec.Code)
	}
	if resp := decodeBody[ErrorResponse](t, rec); resp.Code != CodeDraining {
		t.Errorf("code = %q, want %q", resp.Code, CodeDraining)
	}
	if rec = post(t, s, "/v1/batch", BatchRequest{Requests: []PredictRequest{{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}}}}); rec.Code != http.StatusTooManyRequests {
		t.Errorf("draining batch status = %d, want 429", rec.Code)
	}
}

func TestSweepDeadlineIncompleteSummary(t *testing.T) {
	s := New(Config{SweepTimeout: 30 * time.Millisecond, SweepWorkers: 1})
	defer s.Close()
	release := make(chan struct{})
	var once bool
	real := s.evaluate
	s.evaluate = func(cfg machine.Config, wl core.Workload, opts core.Options) (core.Result, error) {
		if !once {
			once = true
			<-release
		}
		return real(cfg, wl, opts)
	}
	defer close(release)

	rec := post(t, s, "/v1/sweep", SweepRequest{
		Configs:   []ConfigSpec{{Name: "C1"}, {Name: "C4"}},
		Workloads: []WorkloadSpec{{Name: "fft"}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (stream already started before the deadline?)", rec.Code)
	}
	lines, sum := readStream(t, rec.Body.Bytes())
	if sum.Complete {
		t.Fatalf("stalled sweep reported complete: %+v (lines %d)", sum, len(lines))
	}
	if sum.Points != 2 || sum.Emitted != len(lines) {
		t.Errorf("summary = %+v with %d lines", sum, len(lines))
	}
}

func TestSweepBadRequests(t *testing.T) {
	s := New(Config{MaxSweepPoints: 4})
	defer s.Close()
	cases := []struct {
		name string
		req  SweepRequest
	}{
		{"no workloads", SweepRequest{Configs: []ConfigSpec{{Name: "C4"}}}},
		{"no configs or budgets", SweepRequest{Workloads: []WorkloadSpec{{Name: "fft"}}}},
		{"negative budget", SweepRequest{Workloads: []WorkloadSpec{{Name: "fft"}}, Budgets: []float64{-5}}},
		{"bad config", SweepRequest{Configs: []ConfigSpec{{Name: "C99"}}, Workloads: []WorkloadSpec{{Name: "fft"}}}},
		{"bad workload", SweepRequest{Configs: []ConfigSpec{{Name: "C4"}}, Workloads: []WorkloadSpec{{Name: "no-such"}}}},
		{"too many points", SweepRequest{
			Configs:   []ConfigSpec{{Name: "C1"}, {Name: "C2"}, {Name: "C3"}},
			Workloads: []WorkloadSpec{{Name: "fft"}, {Name: "lu"}}}},
		{"offset out of range", SweepRequest{
			Configs: []ConfigSpec{{Name: "C4"}}, Workloads: []WorkloadSpec{{Name: "fft"}}, Offset: 2}},
	}
	for _, tc := range cases {
		rec := post(t, s, "/v1/sweep", tc.req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, rec.Code, rec.Body.String())
		}
	}
	if rec := post(t, s, "/v1/batch", BatchRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", rec.Code)
	}
	// GET is rejected like every API endpoint.
	rec := postRaw(t, s, httptest.NewRequest(http.MethodGet, "/v1/sweep", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET sweep status = %d, want 405", rec.Code)
	}
}

// TestSweepInfeasibleBudget: a budget no configuration fits becomes a 422
// "infeasible" error line; the predict points still stream normally.
func TestSweepInfeasibleBudget(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	rec := post(t, s, "/v1/sweep", SweepRequest{
		Configs:   []ConfigSpec{{Name: "C4"}},
		Workloads: []WorkloadSpec{{Name: "fft"}},
		Budgets:   []float64{1},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	lines, sum := readStream(t, rec.Body.Bytes())
	if len(lines) != 2 || sum.Errors != 1 || !sum.Complete {
		t.Fatalf("lines=%d summary=%+v", len(lines), sum)
	}
	if lines[0].Kind != "predict" || lines[0].Error != nil {
		t.Errorf("predict line = %+v", lines[0])
	}
	budget := lines[1]
	if budget.Kind != "budget" || budget.Status != http.StatusUnprocessableEntity ||
		budget.Error == nil || budget.Error.Code != CodeInfeasible {
		t.Errorf("budget line = %+v (error %+v)", budget, budget.Error)
	}
}

// TestBatchMixedPoints: invalid batch points become per-line errors while
// the valid points still answer, byte-identical to /v1/predict.
func TestBatchMixedPoints(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	rec := post(t, s, "/v1/batch", BatchRequest{Requests: []PredictRequest{
		{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}},
		{Config: ConfigSpec{Name: "C99"}, Workload: WorkloadSpec{Name: "fft"}},
		{Config: ConfigSpec{Name: "C8"}, Workload: WorkloadSpec{Name: "tpcc"}, Delta: 0.124},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	lines, sum := readStream(t, rec.Body.Bytes())
	if len(lines) != 3 || sum.Errors != 1 || !sum.Complete {
		t.Fatalf("lines=%d summary=%+v", len(lines), sum)
	}
	if lines[0].Error != nil || lines[2].Error != nil {
		t.Fatalf("valid points errored: %+v / %+v", lines[0].Error, lines[2].Error)
	}
	if lines[1].Status != http.StatusBadRequest || lines[1].Error == nil || lines[1].Error.Code != CodeBadRequest {
		t.Errorf("invalid point line = %+v (error %+v)", lines[1], lines[1].Error)
	}
	for i, pr := range []PredictRequest{
		{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}},
		{},
		{Config: ConfigSpec{Name: "C8"}, Workload: WorkloadSpec{Name: "tpcc"}, Delta: 0.124},
	} {
		if i == 1 {
			continue
		}
		single := post(t, s, "/v1/predict", pr)
		if single.Code != http.StatusOK || single.Header().Get("X-Cache") != "hit" {
			t.Fatalf("predict %d after batch: status=%d cache=%q", i, single.Code, single.Header().Get("X-Cache"))
		}
		if want := compact(t, single.Body.Bytes()); !bytes.Equal([]byte(lines[i].Response), want) {
			t.Errorf("batch point %d differs from /v1/predict", i)
		}
	}
}

// TestComposePredictKey pins the composed key to the canonical one across
// the request-shape corners (catalog, divisor, custom, measured, inline,
// delta spellings).
func TestComposePredictKey(t *testing.T) {
	inline := core.Workload{}
	if wl, err := core.PaperWorkloadByName("lu"); err == nil {
		inline = wl
	}
	cases := []struct {
		cfg   ConfigSpec
		wl    WorkloadSpec
		delta float64
	}{
		{ConfigSpec{Name: "C4"}, WorkloadSpec{Name: "FFT"}, 0},
		{ConfigSpec{Name: "c12"}, WorkloadSpec{Name: "radix"}, 0.124},
		{ConfigSpec{Name: "C4", Divisor: 16}, WorkloadSpec{Name: "fft", Measured: true}, -1},
		{ConfigSpec{Kind: "ws", Machines: 4, Net: "100"}, WorkloadSpec{Name: "edge"}, 0},
		{ConfigSpec{Kind: "csmp", Machines: 4, Procs: 2, Net: "atm", ClockMHz: 300}, WorkloadSpec{Inline: &inline}, 0.5},
	}
	for _, tc := range cases {
		cfg, err := tc.cfg.Resolve()
		if err != nil {
			t.Fatalf("%+v: %v", tc.cfg, err)
		}
		wspec, err := canonicalWorkload(tc.wl)
		if err != nil {
			t.Fatalf("%+v: %v", tc.wl, err)
		}
		want, err := canonicalKey("predict", PredictRequest{Config: configKey(cfg), Workload: wspec, Delta: tc.delta})
		if err != nil {
			t.Fatal(err)
		}
		cfgJSON, _ := json.Marshal(configKey(cfg))
		wlJSON, _ := json.Marshal(wspec)
		var deltaJSON []byte
		if tc.delta != 0 {
			deltaJSON, _ = json.Marshal(tc.delta)
		}
		if got := composePredictKey(cfgJSON, wlJSON, deltaJSON); got != want {
			t.Errorf("composed key diverges:\ncomposed:  %q\ncanonical: %q", got, want)
		}
	}
}

// postRaw serves an arbitrary request against the handler.
func postRaw(t *testing.T, s *Server, req *http.Request) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}
