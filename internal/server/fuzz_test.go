package server

import (
	"encoding/json"
	"strings"
	"testing"

	"memhier/internal/cluster/ring"
)

// fuzzRing places fuzzed keys on a small cluster; built once — ring
// construction is deterministic, lookups are read-only.
var fuzzRing = func() *ring.Ring {
	r, err := ring.New(ring.Config{Nodes: []string{"n0", "n1", "n2", "n3", "n4"}})
	if err != nil {
		panic(err)
	}
	return r
}()

// FuzzCanonicalKey exercises the request-canonicalization pipeline that
// derives cache keys — the exact path handlePredict runs before touching
// the cache. Properties, on arbitrary request fields:
//
//   - no panic, whatever the spelling
//   - determinism: canonicalizing twice yields the identical key
//   - idempotence: a canonicalized spec canonicalizes to itself, so
//     alias spellings and their canonical forms share one cache entry
//   - keys embed their endpoint: the same request canonicalized for two
//     endpoints never collides
func FuzzCanonicalKey(f *testing.F) {
	// Catalog names, aliases, customs, and degenerate spellings.
	f.Add("C4", "", "", 0, 0, int64(0), int64(0), 0, "fft", false, 0.0)
	f.Add("c12", "", "", 0, 0, int64(0), int64(0), 0, "LU", false, 0.124)
	f.Add("", "smp", "none", 1, 4, int64(256<<10), int64(64<<20), 0, "radix", false, 0.0)
	f.Add("", "csmp", "atm", 8, 4, int64(1<<20), int64(128<<20), 2, "tpcc", false, -1.0)
	f.Add("", "ws", "100", 32, 1, int64(0), int64(0), 16, "edge", true, 0.0)
	f.Add("C1", "", "", 0, 0, int64(0), int64(0), 0, "", false, 0.0)
	f.Add("", "", "", 0, 0, int64(0), int64(0), 0, "fft", false, 0.0)
	f.Add("C99", "bogus", "9000", -1, -1, int64(-5), int64(-5), -3, "no-such-kernel", true, 1e308)

	f.Fuzz(func(t *testing.T, name, kind, net string, machines, procs int,
		cacheBytes, memoryBytes int64, divisor int, workload string, measured bool, delta float64) {

		spec := ConfigSpec{
			Name: name, Kind: kind, Net: net,
			Machines: machines, Procs: procs,
			CacheBytes: cacheBytes, MemoryBytes: memoryBytes,
			Divisor: divisor,
		}
		wspec := WorkloadSpec{Name: workload, Measured: measured}

		cfg, err := spec.Resolve()
		if err != nil {
			return // invalid platform: rejected before keying, nothing to check
		}
		cwl, err := canonicalWorkload(wspec)
		if err != nil {
			return
		}

		req := PredictRequest{Config: configKey(cfg), Workload: cwl, Delta: delta}
		key1, err := canonicalKey("predict", req)
		if err != nil {
			t.Fatalf("canonicalKey failed on resolved request: %v", err)
		}
		key2, err := canonicalKey("predict", req)
		if err != nil || key1 != key2 {
			t.Fatalf("canonicalKey not deterministic: %q vs %q (err %v)", key1, key2, err)
		}
		if !strings.HasPrefix(key1, "predict\x00") {
			t.Fatalf("key %q does not embed its endpoint", key1)
		}
		other, err := canonicalKey("validate", req)
		if err != nil || other == key1 {
			t.Fatalf("keys collide across endpoints: %q", key1)
		}

		// Idempotence: the canonical workload is a fixed point.
		again, err := canonicalWorkload(cwl)
		if err != nil {
			t.Fatalf("canonical workload %+v rejected on re-canonicalization: %v", cwl, err)
		}
		if again != cwl {
			t.Fatalf("canonicalWorkload not idempotent: %+v -> %+v", cwl, again)
		}

		// Resolving the canonical config spec reproduces the same key, so
		// alias spellings cannot split the cache.
		cfg2, err := configKey(cfg).Resolve()
		if err != nil {
			t.Fatalf("canonical config spec %+v rejected on re-resolve: %v", configKey(cfg), err)
		}
		key3, err := canonicalKey("predict", PredictRequest{Config: configKey(cfg2), Workload: cwl, Delta: delta})
		if err != nil || key3 != key1 {
			t.Fatalf("canonical config not a fixed point: %q vs %q (err %v)", key3, key1, err)
		}

		// The sweep fast path composes predict keys from per-axis JSON
		// fragments instead of marshaling per point; composition must be
		// byte-identical to canonicalization or grid points would split
		// from (or, worse, collide with) single-request cache entries.
		cfgJSON, err := json.Marshal(configKey(cfg))
		if err != nil {
			t.Fatalf("marshal config fragment: %v", err)
		}
		wlJSON, err := json.Marshal(cwl)
		if err != nil {
			t.Fatalf("marshal workload fragment: %v", err)
		}
		var deltaJSON []byte
		if delta != 0 {
			if deltaJSON, err = json.Marshal(delta); err != nil {
				return // unencodable delta (NaN/Inf): the sweep handler rejects it with the same error
			}
		}
		composed := composePredictKey(cfgJSON, wlJSON, deltaJSON)
		if composed != key1 {
			t.Fatalf("composed sweep key diverges from canonical key:\ncomposed:  %q\ncanonical: %q", composed, key1)
		}

		// Cluster placement rides these keys: a sweep point and the
		// equivalent single request must land on the same ring owner, or
		// a grid would forward points away from the shard that caches
		// their single-request twins. (Byte-identity above implies this;
		// asserting it directly keys the property to what the cluster
		// actually consumes.)
		if fuzzRing.Owner(composed) != fuzzRing.Owner(key1) {
			t.Fatalf("composed key %q and canonical key %q placed on different owners", composed, key1)
		}

		// Sweep budget keys embed their own endpoint and the full budget
		// axis: they can never collide with predict keys, and the brute
		// flag keys separately (its stats differ).
		bk := sweepBudgetsKey{Workload: cwl, Budgets: []float64{1000, 5000}, Delta: delta}
		budgetKey, err := canonicalKey("sweepbudgets", bk)
		if err != nil {
			return // unencodable delta
		}
		if budgetKey == key1 {
			t.Fatalf("budget key collides with predict key: %q", budgetKey)
		}
		bk.Brute = true
		bruteKey, err := canonicalKey("sweepbudgets", bk)
		if err != nil || bruteKey == budgetKey {
			t.Fatalf("brute and pruned budget searches share a key: %q (err %v)", budgetKey, err)
		}
	})
}
