package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

func benchRequest(b *testing.B, body any) []byte {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	return buf
}

// BenchmarkServePredictMiss measures the uncached request path: decode,
// resolve, solve the model fixed point, render, insert.
func BenchmarkServePredictMiss(b *testing.B) {
	s := New(Config{CacheEntries: 1, CacheShards: 1})
	defer s.Close()
	h := s.Handler()
	// Alternate between two keys in a one-entry cache so every request
	// evicts the other and recomputes.
	reqs := [][]byte{
		benchRequest(b, PredictRequest{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}}),
		benchRequest(b, PredictRequest{Config: ConfigSpec{Name: "C8"}, Workload: WorkloadSpec{Name: "lu"}}),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(reqs[i%2]))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d", rec.Code)
		}
	}
}

// BenchmarkServePredictHit measures the cached request path: decode,
// canonicalize, LRU lookup, write bytes.
func BenchmarkServePredictHit(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	body := benchRequest(b, PredictRequest{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}})
	warm := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	h.ServeHTTP(httptest.NewRecorder(), warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
			b.Fatalf("status=%d cache=%s", rec.Code, rec.Header().Get("X-Cache"))
		}
	}
}

// BenchmarkServePredictDeepHit measures the cached path for a multi-level
// custom platform: the canonical key now carries the levels list, so this
// tracks what the Levels generalization costs request canonicalization.
func BenchmarkServePredictDeepHit(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	body := benchRequest(b, PredictRequest{
		Config:   ConfigSpec{Name: "modern-2s-server"},
		Workload: WorkloadSpec{Name: "fft"},
	})
	warm := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	h.ServeHTTP(httptest.NewRecorder(), warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
			b.Fatalf("status=%d cache=%s", rec.Code, rec.Header().Get("X-Cache"))
		}
	}
}

// BenchmarkServePredictHitParallel exercises shard-lock contention on the
// hot cached path.
func BenchmarkServePredictHitParallel(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	configs := []string{"C1", "C4", "C8", "C11", "C15"}
	var bodies [][]byte
	for _, c := range configs {
		body := benchRequest(b, PredictRequest{Config: ConfigSpec{Name: c}, Workload: WorkloadSpec{Name: "fft"}})
		warm := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		h.ServeHTTP(httptest.NewRecorder(), warm)
		bodies = append(bodies, body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(bodies[i%len(bodies)]))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status = %d", rec.Code)
			}
			i++
		}
	})
}

// sweepGridRequest is the full paper case-study grid: C1–C15 × the three
// validated kernels plus a Fig. 2–4 style budget axis per workload.
func sweepGridRequest() SweepRequest {
	req := SweepRequest{
		Workloads: []WorkloadSpec{{Name: "fft"}, {Name: "lu"}, {Name: "radix"}},
		Budgets:   []float64{2000, 3000, 5000, 8000, 12000, 16000, 20000, 30000, 40000, 60000},
	}
	for i := 1; i <= 15; i++ {
		req.Configs = append(req.Configs, ConfigSpec{Name: "C" + strconv.Itoa(i)})
	}
	return req
}

func runSweepBench(b *testing.B, s *Server, body []byte) int {
	h := s.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var summary struct {
		Complete bool `json:"complete"`
		Errors   int  `json:"errors"`
		Points   int  `json:"points"`
	}
	lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
	if err := json.Unmarshal(lines[len(lines)-1], &summary); err != nil {
		b.Fatal(err)
	}
	if !summary.Complete || summary.Errors != 0 {
		b.Fatalf("summary = %+v", summary)
	}
	return summary.Points
}

// BenchmarkServeSweepGridCold measures the full paper grid (C1–C15 × 3
// workloads × 10 budgets) against a cold cache — the one-request
// replacement for 55 individual API calls.
func BenchmarkServeSweepGridCold(b *testing.B) {
	body := benchRequest(b, sweepGridRequest())
	b.ReportAllocs()
	points := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Config{})
		b.StartTimer()
		points = runSweepBench(b, s, body)
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*points), "ns/point")
}

// BenchmarkServeSweepGridWarm measures the same grid fully cached: the
// per-point floor of the streaming path.
func BenchmarkServeSweepGridWarm(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	body := benchRequest(b, sweepGridRequest())
	points := runSweepBench(b, s, body) // warm every point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweepBench(b, s, body)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*points), "ns/point")
}

// BenchmarkServeCanonicalKey isolates the request-keying cost paid on
// every API call, hit or miss.
func BenchmarkServeCanonicalKey(b *testing.B) {
	req := PredictRequest{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := canonicalKey("predict", req); err != nil {
			b.Fatal(err)
		}
	}
}
