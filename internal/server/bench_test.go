package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func benchRequest(b *testing.B, body any) []byte {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	return buf
}

// BenchmarkServePredictMiss measures the uncached request path: decode,
// resolve, solve the model fixed point, render, insert.
func BenchmarkServePredictMiss(b *testing.B) {
	s := New(Config{CacheEntries: 1, CacheShards: 1})
	defer s.Close()
	h := s.Handler()
	// Alternate between two keys in a one-entry cache so every request
	// evicts the other and recomputes.
	reqs := [][]byte{
		benchRequest(b, PredictRequest{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}}),
		benchRequest(b, PredictRequest{Config: ConfigSpec{Name: "C8"}, Workload: WorkloadSpec{Name: "lu"}}),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(reqs[i%2]))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d", rec.Code)
		}
	}
}

// BenchmarkServePredictHit measures the cached request path: decode,
// canonicalize, LRU lookup, write bytes.
func BenchmarkServePredictHit(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	body := benchRequest(b, PredictRequest{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}})
	warm := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	h.ServeHTTP(httptest.NewRecorder(), warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
			b.Fatalf("status=%d cache=%s", rec.Code, rec.Header().Get("X-Cache"))
		}
	}
}

// BenchmarkServePredictHitParallel exercises shard-lock contention on the
// hot cached path.
func BenchmarkServePredictHitParallel(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	configs := []string{"C1", "C4", "C8", "C11", "C15"}
	var bodies [][]byte
	for _, c := range configs {
		body := benchRequest(b, PredictRequest{Config: ConfigSpec{Name: c}, Workload: WorkloadSpec{Name: "fft"}})
		warm := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		h.ServeHTTP(httptest.NewRecorder(), warm)
		bodies = append(bodies, body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(bodies[i%len(bodies)]))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status = %d", rec.Code)
			}
			i++
		}
	})
}

// BenchmarkServeCanonicalKey isolates the request-keying cost paid on
// every API call, hit or miss.
func BenchmarkServeCanonicalKey(b *testing.B) {
	req := PredictRequest{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := canonicalKey("predict", req); err != nil {
			b.Fatal(err)
		}
	}
}
