package server

// Tests for the server side of cluster mode: the PeerForwarder seam in
// serveCached (cluster.go), exercised with a stub forwarder so placement
// and transport outcomes are scripted. End-to-end multi-node behavior —
// real rings, real peer clients, byte-identity across entry nodes —
// lives in internal/cluster's tests.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/sim/backend"
)

// stubForwarder scripts placement and forwarding.
type stubForwarder struct {
	self    string
	place   func(key string) ([]string, bool)
	forward func(ctx context.Context, peer, path, requestID string, body []byte) (ForwardResult, error)

	mu       sync.Mutex
	placed   int      // guarded by mu
	forwards []string // guarded by mu; "peer path" per Forward call
}

func (f *stubForwarder) Self() string { return f.self }

func (f *stubForwarder) Place(key string) ([]string, bool) {
	f.mu.Lock()
	f.placed++
	f.mu.Unlock()
	return f.place(key)
}

func (f *stubForwarder) Forward(ctx context.Context, peer, path, requestID string, body []byte) (ForwardResult, error) {
	f.mu.Lock()
	f.forwards = append(f.forwards, peer+" "+path)
	f.mu.Unlock()
	return f.forward(ctx, peer, path, requestID, body)
}

func (f *stubForwarder) Stats() map[string]any { return map[string]any{"self": f.self} }

func (f *stubForwarder) forwardCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.forwards)
}

// postForwarded is post with the peer-forwarding hop marker set.
func postForwarded(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set(ForwardedHeader, "origin-node")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

var predictReq = PredictRequest{Config: ConfigSpec{Name: "C4"}, Workload: WorkloadSpec{Name: "fft"}}

// TestForwardMissRelaysOwnerBytes: a miss on a peer-owned key is proxied
// to the owner and the owner's bytes come back verbatim — the same body
// a standalone server computes — tagged with the owner's X-Cache verdict
// and the placement headers. The relayed answer enters the local cache,
// so the key is answered locally (hit) from then on.
func TestForwardMissRelaysOwnerBytes(t *testing.T) {
	owner := New(Config{})
	defer owner.Close()
	fwd := &stubForwarder{
		self:  "entry",
		place: func(string) ([]string, bool) { return []string{"owner"}, false },
	}
	fwd.forward = func(ctx context.Context, peer, path, requestID string, body []byte) (ForwardResult, error) {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set(ForwardedHeader, fwd.self)
		req.Header.Set(requestIDHeader, requestID)
		rec := httptest.NewRecorder()
		owner.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return ForwardResult{}, errors.New("owner answered " + rec.Result().Status)
		}
		return ForwardResult{Status: rec.Code, Cache: rec.Header().Get("X-Cache"), Body: rec.Body.Bytes()}, nil
	}
	entry := New(Config{Forwarder: fwd})
	defer entry.Close()
	standalone := New(Config{})
	defer standalone.Close()

	rec := post(t, entry, "/v1/predict", predictReq)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	want := post(t, standalone, "/v1/predict", predictReq)
	if !bytes.Equal(rec.Body.Bytes(), want.Body.Bytes()) {
		t.Error("forwarded answer is not byte-identical to a standalone computation")
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want the owner's verdict %q", got, "miss")
	}
	if got := rec.Header().Get(ClusterViaHeader); got != "forward" {
		t.Errorf("%s = %q, want %q", ClusterViaHeader, got, "forward")
	}
	if got := rec.Header().Get(ClusterOwnerHeader); got != "owner" {
		t.Errorf("%s = %q, want %q", ClusterOwnerHeader, got, "owner")
	}
	if got := rec.Header().Get(ClusterNodeHeader); got != "entry" {
		t.Errorf("%s = %q, want %q", ClusterNodeHeader, got, "entry")
	}

	// Hot-key replication at the entry node: the relayed bytes were
	// cached, so the repeat is a local hit — no second forward.
	rec = post(t, entry, "/v1/predict", predictReq)
	if got := rec.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("repeat X-Cache = %q, want local hit from the replicated entry", got)
	}
	if n := fwd.forwardCount(); n != 1 {
		t.Errorf("forward count = %d, want 1 (repeat served locally)", n)
	}
}

// TestForwardFailureFallsBackLocal: when every owner attempt fails, the
// node computes the answer itself — correctness over placement — and
// says so in the placement headers and metrics.
func TestForwardFailureFallsBackLocal(t *testing.T) {
	fwd := &stubForwarder{
		self:  "entry",
		place: func(string) ([]string, bool) { return []string{"dead1", "dead2"}, false },
		forward: func(context.Context, string, string, string, []byte) (ForwardResult, error) {
			return ForwardResult{}, errors.New("connection refused")
		},
	}
	s := New(Config{Forwarder: fwd})
	defer s.Close()

	rec := post(t, s, "/v1/predict", predictReq)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(ClusterViaHeader); got != "fallback" {
		t.Errorf("%s = %q, want %q", ClusterViaHeader, got, "fallback")
	}
	if n := fwd.forwardCount(); n != 2 {
		t.Errorf("forward attempts = %d, want 2 (both owners tried)", n)
	}
	if got := s.metrics.LocalFallbacks.Value(); got != 1 {
		t.Errorf("local_fallbacks = %d, want 1", got)
	}
	if got := s.metrics.ForwardFails.Value(); got != 2 {
		t.Errorf("forward_fails = %d, want 2", got)
	}
}

// TestForwardedRequestComputesLocally: a request that already took its
// one forwarding hop never consults the ring again, whatever the ring
// would say — the hop budget is what makes ring-view disagreement safe.
func TestForwardedRequestComputesLocally(t *testing.T) {
	fwd := &stubForwarder{
		self:  "owner",
		place: func(string) ([]string, bool) { return []string{"elsewhere"}, false },
		forward: func(context.Context, string, string, string, []byte) (ForwardResult, error) {
			return ForwardResult{}, errors.New("must not be called")
		},
	}
	s := New(Config{Forwarder: fwd})
	defer s.Close()

	rec := postForwarded(t, s, "/v1/predict", predictReq)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if fwd.forwardCount() != 0 || fwd.placed != 0 {
		t.Errorf("forwarded request consulted the ring (place=%d forwards=%d)", fwd.placed, fwd.forwardCount())
	}
	if got := rec.Header().Get(ClusterNodeHeader); got != "owner" {
		t.Errorf("%s = %q, want %q", ClusterNodeHeader, got, "owner")
	}
}

// TestForwardedDrainingRejected: a draining node refuses forwarded work
// with the draining error body, telling the forwarder to fall back to
// local compute instead of waiting out a dying peer. (The user-visible
// effect — no 429 reaches the client while other nodes are healthy — is
// asserted end-to-end in internal/cluster.)
func TestForwardedDrainingRejected(t *testing.T) {
	fwd := &stubForwarder{
		self:  "owner",
		place: func(string) ([]string, bool) { return nil, true },
	}
	s := New(Config{Forwarder: fwd})
	defer s.Close()
	s.BeginDrain()

	rec := postForwarded(t, s, "/v1/predict", predictReq)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 for forwarded work on a draining node", rec.Code)
	}
	resp := decodeBody[ErrorResponse](t, rec)
	if resp.Code != CodeDraining {
		t.Errorf("code = %q, want %q", resp.Code, CodeDraining)
	}
	if resp.RetryAfterSeconds < 1 || rec.Header().Get("Retry-After") == "" {
		t.Error("draining rejection is missing the Retry-After contract")
	}
}

// TestMetricsClusterSection: cluster counters and the forwarder's view
// appear in the snapshot only in cluster mode.
func TestMetricsClusterSection(t *testing.T) {
	solo := New(Config{})
	defer solo.Close()
	if _, ok := solo.Metrics()["cluster"]; ok {
		t.Error("single-node snapshot carries a cluster section")
	}

	fwd := &stubForwarder{
		self:  "entry",
		place: func(string) ([]string, bool) { return []string{"peer-b"}, false },
		forward: func(context.Context, string, string, string, []byte) (ForwardResult, error) {
			return ForwardResult{Status: http.StatusOK, Cache: "miss", Body: []byte("{}\n")}, nil
		},
	}
	s := New(Config{Forwarder: fwd})
	defer s.Close()
	if rec := post(t, s, "/v1/predict", predictReq); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	snap := s.Metrics()
	if got := snap["forwards"].(map[string]int64)["peer-b"]; got != 1 {
		t.Errorf("forwards[peer-b] = %d, want 1", got)
	}
	if got := snap["cluster"].(map[string]any)["self"]; got != "entry" {
		t.Errorf("cluster.self = %v, want entry", got)
	}
}

// TestValidateCanonicalReplayIdempotent: the canonical validate request
// the forwarder replays (already-scaled config, divisor pinned to 1)
// resolves to the same cache entry as the original divisor-N spelling —
// replaying must not scale the platform a second time.
func TestValidateCanonicalReplayIdempotent(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	var simulated []string
	s.simulate = func(cfg machine.Config, kernel string) (backend.RunResult, error) {
		simulated = append(simulated, cfg.Name)
		return backend.RunResult{}, nil
	}

	rec := post(t, s, "/v1/validate", ValidateRequest{Config: ConfigSpec{Name: "C4"}, Workload: "fft", Divisor: 16})
	if rec.Code != http.StatusOK {
		t.Fatalf("original request: status = %d, body %s", rec.Code, rec.Body.String())
	}
	// The canonical replay form: key the handler derived, body the
	// forwarder would send.
	rec = post(t, s, "/v1/validate", ValidateRequest{Config: ConfigSpec{Name: "C4", Divisor: 16}, Workload: "fft", Divisor: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("canonical replay: status = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("canonical replay X-Cache = %q, want hit (same cache entry)", got)
	}
	if len(simulated) != 1 || simulated[0] != "C4/16" {
		t.Errorf("simulated platforms %v, want exactly one run of the scaled C4/16", simulated)
	}
}
