package server

// Cluster mode: N chc-serve nodes acting as one sharded response cache.
// Every canonical request key has an owner node on a consistent-hash
// ring; a node receiving a request it does not own proxies the cache
// miss to the owner, so single-flight dedup happens at the owner and
// each canonical request is computed at most once cluster-wide — the
// serving layer applies the paper's thesis (cluster performance is
// decided by how the memory hierarchy is shared and traversed) one
// level up, with the cluster-wide cache as the outermost memory level.
//
// The server side of the seam is deliberately thin: a PeerForwarder
// interface that places keys and proxies canonical request bodies. The
// concrete implementation (ring, health view, resilient per-peer
// clients) lives in internal/cluster, which depends on internal/client
// and therefore on this package — the interface keeps the dependency
// arrow pointing one way.
//
// Degradation rules, in order of preference:
//
//  1. this node owns the key (or is one of its R replicas): compute
//     locally — the normal sharded path;
//  2. a healthy owner exists: forward the canonical body to it with the
//     original X-Request-ID and relay its byte-identical answer (which
//     also enters the local cache, replicating hot keys toward their
//     traffic);
//  3. every owner is unreachable, circuit-open, or draining: compute
//     locally — correctness over placement; the key is served, just not
//     from its home shard.
//
// A forwarded request carries the X-Chc-Forwarded hop marker: the
// receiver always computes locally (one hop maximum, so ring-view
// disagreement can never loop a request) and, when draining, rejects it
// with the draining error body so the forwarder falls back to rule 3
// instead of waiting out a dying node.

import (
	"context"
	"strings"
)

// Cluster hop and observability headers.
const (
	// ForwardedHeader marks a peer-forwarded request; its value is the
	// origin node's name. Presence disables re-forwarding at the receiver.
	ForwardedHeader = "X-Chc-Forwarded"
	// ClusterNodeHeader names the node that answered (every response in
	// cluster mode).
	ClusterNodeHeader = "X-Cluster-Node"
	// ClusterOwnerHeader names the ring owner of the request's key on
	// computed (non-hit) answers.
	ClusterOwnerHeader = "X-Cluster-Owner"
	// ClusterViaHeader reports how a computed answer was obtained:
	// "local" (this node owns the key), "forward" (relayed from the
	// owner), or "fallback" (owner unavailable, computed here anyway).
	ClusterViaHeader = "X-Cluster-Via"
)

// PeerForwarder is the server's seam to the cluster layer (implemented
// by internal/cluster.Cluster; nil = single-node mode).
type PeerForwarder interface {
	// Self returns this node's name.
	Self() string
	// Place returns the nodes that may own key — the ring owner first,
	// then its replicas, skipping peers currently considered unusable
	// (unhealthy, draining, circuit open) — and whether this node is
	// among the key's owners. An empty owners list with local=false
	// means every owner is unusable: the caller computes locally.
	Place(key string) (owners []string, local bool)
	// Forward replays the canonical request body against peer's path,
	// carrying requestID as X-Request-ID and this node's name as the hop
	// marker. It returns an error for anything but a 2xx answer.
	Forward(ctx context.Context, peer, path, requestID string, body []byte) (ForwardResult, error)
	// Stats reports the cluster view (peer health, ring ownership
	// fraction, …); merged into /metrics under "cluster".
	Stats() map[string]any
}

// ForwardResult is a successful (2xx) forwarded answer.
type ForwardResult struct {
	Status int
	// Cache is the owner's X-Cache answer (hit, miss, or dedup) — the
	// cluster-wide truth about whether this request caused a computation.
	Cache string
	Body  []byte
}

// forwardPaths maps cache-backed endpoints to the API path a forwarded
// canonical body replays against. Every key of the result cache is
// "endpoint\x00canonicalJSON", and for these endpoints the canonical
// JSON is itself a valid request that resolves back to the same key —
// so the forwarder needs no separate serialization of the request.
var forwardPaths = map[string]string{
	"predict":  "/v1/predict",
	"optimize": "/v1/optimize",
	"advise":   "/v1/advise",
	"fit":      "/v1/fit",
	"validate": "/v1/validate",
}

// forwardNote records, out of band of the cache protocol, how a leader's
// computation was actually answered; the handler turns it into the
// X-Cluster-* response headers and the relayed X-Cache value.
type forwardNote struct {
	via   string // "local", "forward", or "fallback" (empty: not a leader)
	owner string
	cache string // the owner's X-Cache, when via == "forward"
}

// keyPayload strips the endpoint frame from a cache key, leaving the
// canonical JSON body a forwarded request replays.
func keyPayload(key string) []byte {
	if i := strings.IndexByte(key, 0); i >= 0 {
		return []byte(key[i+1:])
	}
	return []byte(key)
}

// forwardableCompute wraps a leader computation with the cluster
// placement rules above. It must only wrap computations for endpoints in
// forwardPaths and requests that did not themselves arrive forwarded.
//chc:hotpath
func (s *Server) forwardableCompute(ctx context.Context, endpoint, key, requestID string, compute func() (entry, error), note *forwardNote) func() (entry, error) {
	path, ok := forwardPaths[endpoint]
	if !ok || s.forwarder == nil {
		return compute
	}
	return func() (entry, error) {
		owners, local := s.forwarder.Place(key)
		if local {
			note.via = "local"
			return compute()
		}
		payload := keyPayload(key)
		for _, peer := range owners {
			res, err := s.forwarder.Forward(ctx, peer, path, requestID, payload)
			if err != nil {
				// Unreachable, circuit-open, draining, or a non-2xx
				// answer: try the next owner, then fall back locally. A
				// deterministic rejection (bad request, infeasible) will
				// reproduce identically in the local computation, with
				// this node's error body.
				s.metrics.ForwardFails.Add(1)
				continue
			}
			note.via, note.owner, note.cache = "forward", peer, res.Cache
			s.metrics.Forwards.Add(peer, 1)
			return entry{status: res.Status, body: res.Body}, nil
		}
		s.metrics.LocalFallbacks.Add(1)
		note.via = "fallback"
		if len(owners) > 0 {
			note.owner = owners[0]
		}
		return compute()
	}
}
