package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"testing"
)

func ok(body string) func() (entry, error) {
	return func() (entry, error) { return entry{status: 200, body: []byte(body)}, nil }
}

func TestCacheHitAndMiss(t *testing.T) {
	c := newResultCache(8, 2)
	ctx := context.Background()

	ent, how, err := c.do(ctx, "k", ok("v1"))
	if err != nil || how != outcomeMiss || string(ent.body) != "v1" {
		t.Fatalf("first do = %q %v %v", ent.body, how, err)
	}
	ent, how, err = c.do(ctx, "k", ok("v2"))
	if err != nil || how != outcomeHit || string(ent.body) != "v1" {
		t.Fatalf("second do = %q %v %v, want cached v1", ent.body, how, err)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(4, 1) // one shard, capacity 4
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		c.do(ctx, fmt.Sprintf("k%d", i), ok("v"))
	}
	// Touch k0 so k1 is the LRU victim.
	if _, how, _ := c.do(ctx, "k0", ok("x")); how != outcomeHit {
		t.Fatalf("k0 = %v, want hit", how)
	}
	c.do(ctx, "k4", ok("v")) // evicts k1
	if _, how, _ := c.do(ctx, "k1", ok("recomputed")); how != outcomeMiss {
		t.Errorf("k1 after eviction = %v, want miss", how)
	}
	if _, how, _ := c.do(ctx, "k0", ok("x")); how != outcomeHit {
		t.Errorf("k0 = %v, want hit (recently used, not evicted)", how)
	}
	if c.len() != 4 {
		t.Errorf("len = %d, want capacity 4", c.len())
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(8, 1)
	ctx := context.Background()

	boom := errors.New("boom")
	_, how, err := c.do(ctx, "k", func() (entry, error) { return entry{}, boom })
	if how != outcomeMiss || err != boom {
		t.Fatalf("do = %v %v", how, err)
	}
	// Non-2xx results are shared with waiters but not cached either.
	c.do(ctx, "k4xx", func() (entry, error) { return entry{status: 400, body: []byte("bad")}, nil })
	if c.len() != 0 {
		t.Fatalf("len = %d after error and 4xx, want 0", c.len())
	}
	if _, how, err = c.do(ctx, "k", ok("fine")); how != outcomeMiss || err != nil {
		t.Errorf("retry = %v %v, want a fresh miss", how, err)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := newResultCache(8, 4)
	const waiters = 16
	var computations atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	outcomes := make([]outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, how, err := c.do(context.Background(), "same", func() (entry, error) {
				computations.Add(1)
				<-release
				return entry{status: 200, body: []byte("shared")}, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			outcomes[i] = how
		}(i)
	}
	// Wait until one goroutine holds the flight, then release. Spin rather
	// than sleep: the leader increments before blocking on release.
	for computations.Load() == 0 {
	}
	close(release)
	wg.Wait()

	if n := computations.Load(); n != 1 {
		t.Fatalf("computations = %d, want 1", n)
	}
	var misses int
	for _, how := range outcomes {
		if how == outcomeMiss {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 leader", misses)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newResultCache(8, 1)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go c.do(context.Background(), "k", func() (entry, error) {
		close(leaderIn)
		<-release
		return entry{status: 200, body: []byte("late")}, nil
	})
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.do(ctx, "k", ok("unused"))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestShardHashMatchesFNV pins the inlined shard hash to hash/fnv's
// FNV-1a: cached keys must keep their shard across the inlining.
func TestShardHashMatchesFNV(t *testing.T) {
	c := newResultCache(64, 8)
	for _, key := range []string{"", "a", "predict\x00{}", "sweep\x00{\"sizes\":[1,2,4]}", "Ωunicode\x00body"} {
		h := fnv.New32a()
		h.Write([]byte(key))
		want := c.shards[h.Sum32()%uint32(len(c.shards))]
		if got := c.shard(key); got != want {
			t.Errorf("shard(%q) diverged from FNV-1a placement", key)
		}
	}
}
