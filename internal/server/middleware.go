package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"time"

	"memhier/internal/faults"
)

// requestIDHeader is propagated in and out: a client-supplied ID is echoed
// (so retries and distributed traces correlate), otherwise one is
// generated. Every response carries it, and every error body repeats it.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted client-supplied IDs; longer (or
// non-printable) values are replaced rather than echoed.
const maxRequestIDLen = 128

// ensureRequestID resolves the request's ID — the client's when usable,
// a fresh one otherwise — and stamps it on the response headers so every
// response (success or failure, any endpoint) carries it.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(requestIDHeader)
	if !validRequestID(id) {
		id = newRequestID()
	}
	w.Header().Set(requestIDHeader, id)
	return id
}

func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' { // printable ASCII, no spaces
			return false
		}
	}
	return true
}

// newRequestID returns a fresh 16-hex-digit ID. Randomness (not a counter)
// keeps IDs unique across processes and restarts; on the improbable
// entropy failure it falls back to a timestamp so requests stay traceable.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t-%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// instrument wraps a handler with the operational middleware stack:
// request-ID propagation, request counting and latency recording, panic
// recovery (a crashed handler yields a 500 JSON error and a metric — never
// a dropped connection), and entry-site fault injection on API endpoints.
func (s *Server) instrument(name string, api bool, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ensureRequestID(sw, r)
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Panics.Add(1)
				// The connection survives: if nothing was written yet this
				// becomes a well-formed 500; if the handler crashed
				// mid-body, the status is already on the wire and only the
				// metric records the crash.
				if !sw.wroteHeader {
					s.failCode(sw, http.StatusInternalServerError, CodePanic,
						fmt.Errorf("server: %s handler panicked: %v", name, rec))
				}
			}
			s.metrics.observe(name, time.Since(start), sw.status)
		}()
		if api && s.faults != nil {
			// Entry-site faults: injected latency and panics. A returned
			// error surfaces as a retryable 503.
			if err := s.faults.Inject(faults.SiteEntry, name); err != nil {
				s.fail(sw, http.StatusServiceUnavailable, err)
				return
			}
		}
		h(sw, r)
	}
}

// statusWriter captures the response status for metrics and whether a
// header was written (so panic recovery knows if a 500 can still be sent).
type statusWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wroteHeader = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wroteHeader = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer (embedding the interface does
// not promote it) so streaming handlers can push completed NDJSON lines
// to the client without buffering a whole grid.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
