// Package profiling wires the standard runtime/pprof profilers into the
// command-line tools, so hot-path work on the simulators can be measured
// with `go tool pprof` against real artifact runs (see EXPERIMENTS.md,
// "Profiling").
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the two paths (empty disables that
// profile) and returns a stop function that finalizes them: it stops the
// CPU profile and writes the heap profile. The caller must invoke stop
// before exiting — profiles are unusable otherwise — and should check its
// error (a full disk surfaces there).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("profiling: closing %s: %w", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("profiling: %w", err)
				}
				return firstErr
			}
			// An up-to-date heap profile needs the allocator's free counts
			// settled; this is how net/http/pprof does it too.
			runtime.GC()
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: writing %s: %w", memPath, err)
			}
		}
		return firstErr
	}, nil
}
