package core

import (
	"encoding/json"
	"fmt"
	"io"

	"memhier/internal/locality"
)

// workloadJSON is the on-disk schema for a model workload, so users can
// describe their own applications to chc-model/chc-opt/chc-advisor without
// writing Go. All fields beyond alpha/beta/gamma are optional.
type workloadJSON struct {
	Name              string  `json:"name"`
	Alpha             float64 `json:"alpha"`
	Beta              float64 `json:"beta"`
	Gamma             float64 `json:"gamma"`
	HitMass           float64 `json:"hit_mass,omitempty"`
	BytesPerItem      float64 `json:"bytes_per_item,omitempty"`
	FootprintItems    float64 `json:"footprint_items,omitempty"`
	ConflictFactor    float64 `json:"conflict_factor,omitempty"`
	RemoteShare       float64 `json:"remote_share,omitempty"`
	CoherenceMissRate float64 `json:"coherence_miss_rate,omitempty"`

	ConflictCurve []struct {
		CapacityItems float64 `json:"capacity_items"`
		Kappa         float64 `json:"kappa"`
	} `json:"conflict_curve,omitempty"`
}

// MarshalJSON encodes the workload in the documented schema.
func (w Workload) MarshalJSON() ([]byte, error) {
	j := workloadJSON{
		Name:              w.Name,
		Alpha:             w.Locality.Alpha,
		Beta:              w.Locality.Beta,
		Gamma:             w.Locality.Gamma,
		HitMass:           w.HitMass,
		BytesPerItem:      w.BytesPerItem,
		FootprintItems:    w.FootprintItems,
		ConflictFactor:    w.ConflictFactor,
		RemoteShare:       w.RemoteShare,
		CoherenceMissRate: w.CoherenceMissRate,
	}
	for _, p := range w.ConflictCurve {
		j.ConflictCurve = append(j.ConflictCurve, struct {
			CapacityItems float64 `json:"capacity_items"`
			Kappa         float64 `json:"kappa"`
		}{p.CapacityItems, p.Kappa})
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes and validates a workload from the documented
// schema.
func (w *Workload) UnmarshalJSON(data []byte) error {
	var j workloadJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("core: decoding workload: %w", err)
	}
	out := Workload{
		Name:              j.Name,
		Locality:          locality.Params{Alpha: j.Alpha, Beta: j.Beta, Gamma: j.Gamma},
		HitMass:           j.HitMass,
		BytesPerItem:      j.BytesPerItem,
		FootprintItems:    j.FootprintItems,
		ConflictFactor:    j.ConflictFactor,
		RemoteShare:       j.RemoteShare,
		CoherenceMissRate: j.CoherenceMissRate,
	}
	for _, p := range j.ConflictCurve {
		out.ConflictCurve = append(out.ConflictCurve, ConflictPoint{
			CapacityItems: p.CapacityItems, Kappa: p.Kappa,
		})
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*w = out
	return nil
}

// ReadWorkload decodes one JSON workload description from r.
func ReadWorkload(r io.Reader) (Workload, error) {
	var w Workload
	dec := json.NewDecoder(r)
	if err := dec.Decode(&w); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// WriteWorkload encodes the workload as indented JSON.
func WriteWorkload(w io.Writer, wl Workload) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wl)
}
