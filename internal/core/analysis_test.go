package core

import (
	"math"
	"testing"

	"memhier/internal/machine"
)

func wsTemplate() machine.Config {
	return machine.Config{Name: "ws", Kind: machine.ClusterWS, N: 1, Procs: 1,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, Net: machine.NetSwitch155, ClockMHz: 200}
}

func TestScalabilitySweep(t *testing.T) {
	pts, err := Scalability(wsTemplate(), fft(), Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || pts[0].N != 1 {
		t.Fatalf("sweep should start at N=1: %+v", pts)
	}
	if pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Errorf("N=1 baseline: %+v", pts[0])
	}
	for _, p := range pts {
		if p.EInstr <= 0 || math.IsNaN(p.Speedup) {
			t.Errorf("degenerate point %+v", p)
		}
		if p.Efficiency > 1.0001 {
			t.Errorf("superlinear efficiency %+v (model has no superlinear mechanism beyond cache rescale; inspect)", p)
		}
	}
	best, err := OptimalMachines(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.EInstr < best.EInstr {
			t.Errorf("OptimalMachines missed %+v (picked %+v)", p, best)
		}
	}
}

func TestScalabilityErrors(t *testing.T) {
	if _, err := Scalability(wsTemplate(), fft(), Options{}, 0); err == nil {
		t.Error("maxN=0 accepted")
	}
	smp := machine.Config{Name: "s", Kind: machine.SMP, N: 1, Procs: 2,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, ClockMHz: 200}
	if _, err := Scalability(smp, fft(), Options{}, 4); err == nil {
		t.Error("SMP sweep accepted")
	}
	noNet := wsTemplate()
	noNet.Net = machine.NetNone
	if _, err := Scalability(noNet, fft(), Options{}, 4); err == nil {
		t.Error("netless template accepted beyond one machine")
	}
	if _, err := OptimalMachines(nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSensitivities(t *testing.T) {
	cfg := wsTemplate()
	cfg.N = 4
	sens, err := Sensitivities(cfg, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, s := range sens {
		byName[s.Resource] = s.Elasticity
	}
	// More cache can only help (elasticity <= 0); higher network latency
	// can only hurt (elasticity >= 0).
	if e, ok := byName["cache"]; !ok || e > 1e-9 {
		t.Errorf("cache elasticity = %v, want <= 0", e)
	}
	if e, ok := byName["network latency"]; !ok || e < -1e-9 {
		t.Errorf("network latency elasticity = %v, want >= 0", e)
	}
	// A network-bound FFT cluster should be far more sensitive to the
	// network than to memory capacity.
	if math.Abs(byName["network latency"]) <= math.Abs(byName["memory"]) {
		t.Errorf("expected network-dominated sensitivities: %+v", byName)
	}
	// A single SMP reports no network sensitivity.
	smp := machine.Config{Name: "s", Kind: machine.SMP, N: 1, Procs: 2,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, ClockMHz: 200}
	sens, err = Sensitivities(smp, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sens {
		if s.Resource == "network latency" {
			t.Error("SMP should have no network sensitivity")
		}
	}
}

func TestEvaluateMix(t *testing.T) {
	cfg := wsTemplate()
	cfg.N = 2
	lu, _ := PaperWorkload("LU")
	radix, _ := PaperWorkload("Radix")

	eLU, err := Evaluate(cfg, lu, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eRadix, err := Evaluate(cfg, radix, Options{})
	if err != nil {
		t.Fatal(err)
	}

	mix, err := EvaluateMix(cfg, []MixComponent{
		{Workload: lu, Weight: 3},
		{Workload: radix, Weight: 1},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := (3*eLU.EInstr + eRadix.EInstr) / 4
	if math.Abs(mix-want) > 1e-9*want {
		t.Errorf("mix = %v, want %v", mix, want)
	}
	// The mix lies between the extremes.
	lo, hi := math.Min(eLU.EInstr, eRadix.EInstr), math.Max(eLU.EInstr, eRadix.EInstr)
	if mix < lo || mix > hi {
		t.Errorf("mix %v outside [%v, %v]", mix, lo, hi)
	}

	if _, err := EvaluateMix(cfg, nil, Options{}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := EvaluateMix(cfg, []MixComponent{{Workload: lu, Weight: 0}}, Options{}); err == nil {
		t.Error("zero weight accepted")
	}
	bad := lu
	bad.Locality.Alpha = 0.1
	if _, err := EvaluateMix(cfg, []MixComponent{{Workload: bad, Weight: 1}}, Options{}); err == nil {
		t.Error("invalid component accepted")
	}
}
