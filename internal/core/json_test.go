package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestWorkloadJSONRoundTrip(t *testing.T) {
	in := fft()
	in.HitMass = 0.3
	in.FootprintItems = 12345
	in.ConflictFactor = 2.5
	in.RemoteShare = 0.2
	in.CoherenceMissRate = 0.05
	in.ConflictCurve = []ConflictPoint{{CapacityItems: 64, Kappa: 3}, {CapacityItems: 1024, Kappa: 1.5}}

	var buf bytes.Buffer
	if err := WriteWorkload(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the workload:\n in: %+v\nout: %+v", in, out)
	}
}

func TestWorkloadJSONSchema(t *testing.T) {
	// A hand-written minimal spec — what a user would actually type.
	spec := `{"name": "my-app", "alpha": 1.4, "beta": 250, "gamma": 0.33,
	          "footprint_items": 4194304}`
	w, err := ReadWorkload(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "my-app" || w.Locality.Alpha != 1.4 || w.FootprintItems != 1<<22 {
		t.Errorf("decoded %+v", w)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// The decoded workload evaluates.
	cfg := uniproc(256<<10, 64<<20)
	if _, err := Evaluate(cfg, w, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"name": "x", "alpha": 0.9, "beta": 100, "gamma": 0.3}`, // alpha <= 1
		`{"name": "x", "alpha": 1.4, "beta": -5, "gamma": 0.3}`,  // beta <= 0
		`{"name": "x", "alpha": 1.4, "beta": 100, "gamma": 0}`,   // no references
		`{"name": "x", "alpha": 1.4, "beta": 100, "gamma": 0.3, "remote_share": 2}`,
		`not json at all`,
	}
	for _, c := range cases {
		if _, err := ReadWorkload(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}
