// Package core implements the paper's primary contribution: the analytical
// model of Du & Zhang (IPPS 1999) predicting the average memory access time
// T and the average execution time per instruction E(Instr) of an SPMD
// application on a single SMP, a cluster of workstations, or a cluster of
// SMPs, from the application's locality characterization and the platform's
// memory hierarchy.
//
// The model follows the paper's construction:
//
//   - the stack-distance CDF P(x) = 1 − (x/β+1)^−(α−1) (eq. 1) with the
//     multiprocessor rescaling β → β/(nN) (§5.2);
//   - the hierarchy decomposition T = t1 + Σ t_i·∫_{s_{i−1}} p(x)dx
//     (eq. 7), each level's incremental penalty weighted by the miss
//     fraction beyond the previous level's capacity;
//   - M/G/1 contention with deterministic service at shared levels
//     (eq. for t2(o)): R(τ, a) = (τ − aτ²/2)/(1 − aτ);
//   - the order-statistics barrier term (1/2 + … + 1/p)/(γS) folded as in
//     eq. (11); and
//   - the remote-access-rate adjustment (+12.4%) that compensates for
//     unmodeled shared-memory coherence traffic on clusters (§5.3.2).
//
// One documented deviation: the arrival rates feeding the queueing terms
// use the achieved instruction rate 1/(1/S + γT) rather than the peak rate
// S. With peak-rate arrivals the paper's own Table 2 parameters drive the
// M/D/1 utilization far beyond 1 (processors cannot issue new blocking
// references while stalled), so the model is closed with a fixed point on
// T, solved by bisection. All times are in CPU cycles.
//
//chc:deterministic
package core

import (
	"errors"
	"fmt"
	"math"

	"memhier/internal/locality"
	"memhier/internal/machine"
	"memhier/internal/queueing"
)

// Workload is the model's application description, produced by trace
// characterization (or taken from the paper's Table 2).
type Workload struct {
	Name     string
	Locality locality.Params // α, β (in data items), γ — one-processor fit
	// HitMass is the fraction of references with stack distance < 2
	// (intra-operation reuse absorbed by the first level under any
	// configuration); the fitted P(x) describes the remaining references.
	HitMass float64
	// BytesPerItem converts level capacities in bytes to the data-item
	// units of β. Zero means 8 (one double-precision word).
	BytesPerItem float64
	// FootprintItems is the program's total distinct data items (0 if
	// unknown). Levels marked TruncateAtFootprint (disk) receive no
	// capacity traffic when the per-process footprint fits above them: a
	// program whose data fit in memory never pages, even though the fitted
	// power-law tail never quite reaches 1. Intermediate levels keep the
	// untruncated tail — on clusters it stands in for the sharing traffic
	// the capacity model cannot see, which is the paper's implicit
	// mechanism (its fitted curves also stay well below 1 at the
	// footprint), later calibrated by the coherence rate adjustment.
	FootprintItems float64
	// ConflictFactor is κ: the measured miss-ratio inflation of the 2-way
	// set-associative cache geometry over the fully associative LRU ideal
	// of the stack-distance theory, applied to the cache-level miss
	// fraction. Zero or negative means 1 (no correction).
	ConflictFactor float64
	// ConflictCurve optionally refines ConflictFactor with measurements at
	// several reference capacities (in the workload's data-item units);
	// the model interpolates log-linearly in capacity and clamps at the
	// ends. When set, it takes precedence over ConflictFactor.
	ConflictCurve []ConflictPoint
	// RemoteShare is the fraction of the application's references that
	// touch data homed on another machine of the cluster (measurable from
	// the multiprocessor address stream by first-touch partition analysis;
	// see experiments.RemoteShareOf). The cluster levels add
	// RemoteShare × (cache-miss fraction) of sharing traffic on top of the
	// capacity tail: a cache miss to remotely homed data crosses the
	// network no matter how large the local memory is. Zero (the default)
	// reduces to the pure capacity model. This reconstructs the
	// communication term of the paper's cluster formulas (tech report [3],
	// unavailable); see DESIGN.md §4.
	RemoteShare float64
	// CoherenceMissRate is the fraction of references that re-touch a
	// block another machine wrote since the accessor's previous access
	// (invalidation-induced misses under write-invalidate coherence),
	// measured from the multiprocessor address stream
	// (experiments.MeasureSharing). It adds directly to the cluster
	// remote-level traffic: these misses cross the network regardless of
	// any capacity. The coherence adjustment δ then scales the total
	// remote rate, as in the paper.
	CoherenceMissRate float64
}

func (w Workload) bytesPerItem() float64 {
	if w.BytesPerItem <= 0 {
		return 8
	}
	return w.BytesPerItem
}

// Validate checks the workload is inside the model's domain.
func (w Workload) Validate() error {
	if err := w.Locality.Validate(); err != nil {
		return err
	}
	if w.HitMass < 0 || w.HitMass >= 1 || math.IsNaN(w.HitMass) {
		return fmt.Errorf("core: HitMass %v out of [0,1)", w.HitMass)
	}
	if w.Locality.Gamma == 0 {
		return errors.New("core: workload has γ = 0; the model needs memory references")
	}
	if w.RemoteShare < 0 || w.RemoteShare > 1 || math.IsNaN(w.RemoteShare) {
		return fmt.Errorf("core: RemoteShare %v out of [0,1]", w.RemoteShare)
	}
	if w.CoherenceMissRate < 0 || w.CoherenceMissRate > 1 || math.IsNaN(w.CoherenceMissRate) {
		return fmt.Errorf("core: CoherenceMissRate %v out of [0,1]", w.CoherenceMissRate)
	}
	return nil
}

// Options tunes model variants; the zero value selects the paper's
// settings.
type Options struct {
	// CoherenceAdjust is δ, the remote-access-rate inflation compensating
	// for unmodeled coherence traffic on clusters (§5.3.2). NaN or 0 means
	// the paper's 12.4% for cluster platforms (it never applies to a
	// single SMP). Negative disables it (ablation).
	CoherenceAdjust float64
	// DirtyFraction is the fraction of remote accesses served from a
	// remote cache (three-hop transfers at the "remotely cached" latency)
	// rather than a remote memory. Zero means 0.2; negative means 0.
	DirtyFraction float64
	// DSMShare is φ, the fraction of a machine's memory that acts as the
	// local working area under the software shared-memory layer on
	// clusters; the rest caches remote data and holds DSM metadata. Zero
	// means 0.5.
	DSMShare float64
	// NoContention removes the queueing terms (ablation).
	NoContention bool
	// UseMVA replaces the paper's open M/D/1 contention model with exact
	// closed-network Mean Value Analysis: each shared level is a center
	// visited by (ArrivalMult+1) customers whose think time is their
	// inter-access gap. The closed model cannot saturate — a blocked
	// processor stops generating load — which makes it the principled
	// counterpart of the achieved-rate fixed point (ablation/extension).
	UseMVA bool
	// NoBarrier removes the barrier order-statistics term (ablation).
	NoBarrier bool
	// NoRescale disables the multiprocessor β rescaling (ablation).
	NoRescale bool
	// Latencies overrides the §5.1 latency table.
	Latencies *machine.Latencies
}

func (o Options) coherenceAdjust(kind machine.PlatformKind) float64 {
	if kind == machine.SMP {
		return 0
	}
	switch {
	case o.CoherenceAdjust < 0:
		return 0
	case o.CoherenceAdjust == 0 || math.IsNaN(o.CoherenceAdjust):
		return 0.124
	}
	return o.CoherenceAdjust
}

func (o Options) dirtyFraction() float64 {
	switch {
	case o.DirtyFraction < 0:
		return 0
	case o.DirtyFraction == 0:
		return 0.2
	}
	return math.Min(o.DirtyFraction, 1)
}

func (o Options) dsmShare() float64 {
	if o.DSMShare <= 0 {
		return 0.5
	}
	return math.Min(o.DSMShare, 1)
}

// ConflictPoint is one (capacity, κ) measurement of the conflict curve.
type ConflictPoint struct {
	CapacityItems float64
	Kappa         float64
}

// kappaAt returns the conflict factor at the given cache capacity,
// log-interpolating the curve when present.
func (w Workload) kappaAt(capacityItems float64) float64 {
	curve := w.ConflictCurve
	if len(curve) == 0 {
		if w.ConflictFactor > 0 {
			return w.ConflictFactor
		}
		return 1
	}
	if capacityItems <= curve[0].CapacityItems {
		return curve[0].Kappa
	}
	last := curve[len(curve)-1]
	if capacityItems >= last.CapacityItems {
		return last.Kappa
	}
	for i := 1; i < len(curve); i++ {
		a, b := curve[i-1], curve[i]
		if capacityItems <= b.CapacityItems {
			t := (math.Log(capacityItems) - math.Log(a.CapacityItems)) /
				(math.Log(b.CapacityItems) - math.Log(a.CapacityItems))
			return a.Kappa + t*(b.Kappa-a.Kappa)
		}
	}
	return last.Kappa
}

// Level is one memory-hierarchy level beyond the cache in the model's
// decomposition of T.
type Level struct {
	Name string
	// CapacityItems is the per-process effective capacity of the previous
	// level, in data items: references with stack distance beyond it pay
	// this level's penalty.
	CapacityItems float64
	// Service is the uncontended incremental penalty τ_i in cycles.
	Service float64
	// ArrivalMult scales the per-processor access rate into the external
	// competing arrival rate at the shared server (e.g. n−1 on an SMP
	// memory bus, Nn−1 on an Ethernet bus, n on a switch port).
	ArrivalMult float64
	// RateAdjust multiplies the access rate to this level (1+δ for remote
	// levels).
	RateAdjust float64
	// TruncateAtFootprint marks levels (disk) that carry no traffic when
	// the per-process footprint fits within the previous level's capacity.
	TruncateAtFootprint bool
	// SharingLevel marks the cluster's remote-memory level, which receives
	// the workload's RemoteShare sharing traffic in addition to its
	// capacity tail.
	SharingLevel bool
}

// LevelStats reports one level's share of the solved model. The JSON
// encoding is part of the chc-serve API surface.
type LevelStats struct {
	Name          string  `json:"name"`
	MissFraction  float64 `json:"miss_fraction"`      // fraction of references paying this penalty
	Uncontended   float64 `json:"uncontended_cycles"` // τ_i
	Contended     float64 `json:"contended_cycles"`   // M/D/1 response at the solution
	Utilization   float64 `json:"utilization"`        // offered load at the shared server
	CyclesPerRef  float64 `json:"cycles_per_ref"`     // MissFraction × Contended
	CapacityItems float64 `json:"capacity_items"`
}

// Result is a solved model evaluation. The JSON encoding is part of the
// chc-serve API surface.
type Result struct {
	Config  machine.Config `json:"config"`
	T       float64        `json:"t_cycles"`       // average memory access time per reference, cycles
	Barrier float64        `json:"barrier_cycles"` // barrier contribution included in T, cycles
	// EInstr is the average execution time per instruction across the
	// whole platform, (1/(nN))·(1/S + γT), in cycles (eq. 4).
	EInstr float64 `json:"e_instr_cycles"`
	// Seconds is EInstr converted with the configured clock.
	Seconds    float64      `json:"seconds"`
	Levels     []LevelStats `json:"levels"`
	Iterations int          `json:"iterations"` // fixed-point bisection steps
}

// Evaluate solves the model for one platform configuration and workload.
func Evaluate(cfg machine.Config, wl Workload, opts Options) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := wl.Validate(); err != nil {
		return Result{}, err
	}
	levels, err := buildLevels(cfg, opts)
	if err != nil {
		return Result{}, err
	}

	totalProcs := cfg.TotalProcs()
	params := wl.Locality
	if !opts.NoRescale {
		params = params.Rescale(totalProcs)
	}
	gamma := params.Gamma

	// Per-level miss fractions (constant in the fixed point). Capacities
	// come from buildLevels in 8-byte words; rescale to the workload's
	// data-item size.
	itemScale := 8 / wl.bytesPerItem()
	perProcFootprint := wl.FootprintItems
	if perProcFootprint > 0 && !opts.NoRescale {
		perProcFootprint /= float64(totalProcs)
	}
	// The index of the first beyond-cache level: intermediate cache levels
	// (L2, L3) occupy indices 0..cacheExit-1, so miss[cacheExit] is the
	// fraction of references leaving the private cache hierarchy — the
	// "cache miss fraction" of the one-level formulas (where cacheExit is
	// 0 and everything reduces to the paper's form).
	cacheExit := len(cfg.CacheLevels()) - 1
	miss := make([]float64, len(levels))
	for i := range levels {
		levels[i].CapacityItems *= itemScale
		if levels[i].TruncateAtFootprint && perProcFootprint > 0 &&
			levels[i].CapacityItems >= perProcFootprint {
			miss[i] = 0
			continue
		}
		miss[i] = (1 - wl.HitMass) * params.MissBeyond(levels[i].CapacityItems)
		// κ inflates the misses leaving the level-1 cache (the 2-way
		// set-associative geometry the factor was measured on); deeper
		// boundaries keep the associativity-free stack-distance tail. A
		// boundary whose capacity still equals L1's is the same boundary
		// (a degenerate equal-capacity level adds no stack inclusion), so
		// κ follows it — which makes collapsing a zero-latency
		// equal-capacity intermediate level an exact no-op.
		//chc:allow floateq -- capacities derive from identical integer byte counts
		if i == 0 || (i <= cacheExit && levels[i].CapacityItems == levels[0].CapacityItems) {
			kappa := wl.kappaAt(levels[i].CapacityItems)
			miss[i] = math.Min(1-wl.HitMass, miss[i]*kappa)
		}
		if levels[i].SharingLevel {
			// Sharing traffic on top of the capacity tail: the RemoteShare
			// portion of cache misses crosses the network regardless of
			// local memory capacity, and invalidation-induced coherence
			// misses cross it regardless of any capacity. Capped at the
			// non-register reference mass.
			withSharing := miss[i] + wl.RemoteShare*miss[cacheExit] + wl.CoherenceMissRate
			miss[i] = math.Min(withSharing, 1-wl.HitMass)
		}
	}

	// Barrier term: (1/2 + … + 1/p)/(γS) added to T (paper eq. 11), with
	// S = 1 instruction/cycle.
	barrier := 0.0
	if !opts.NoBarrier && totalProcs > 1 {
		barrier = queueing.BarrierSum(totalProcs) / gamma
	}

	lat := machine.LatenciesAt(cfg.Kind, cfg.ClockMHz)
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}
	// A multi-level config may pin its L1 hit latency; one-level configs
	// keep the table's value, so the paper platforms are untouched.
	lat.CacheHit = cfg.L1Latency(lat.CacheHit)

	// computeT evaluates the right-hand side of the fixed point given an
	// achieved instruction rate R (instructions per cycle). It returns
	// +Inf when a queueing center saturates at that rate.
	// On clusters the order-statistics factor applies to the network
	// component of a bulk-synchronous phase: the phase's wall time is the
	// maximum over processors of their (bursty, exponential-like) network
	// time, E[max] = H(p)·mean, so the remote level's effective time is
	// inflated by H(nN). The SMP-level barrier cost stays the paper's
	// additive term. See DESIGN.md §4.
	netFactor := 1.0
	if !opts.NoBarrier && totalProcs > 1 {
		netFactor = queueing.Harmonic(totalProcs)
	}
	// contended evaluates one level's response time under the selected
	// contention model at per-processor access rate lambda.
	contended := func(lv Level, lambda float64) (float64, error) {
		if opts.NoContention || lv.ArrivalMult <= 0 || lambda <= 0 {
			return lv.Service, nil
		}
		if opts.UseMVA {
			customers := int(math.Round(lv.ArrivalMult)) + 1
			think := 1/lambda - lv.Service
			if think < 0 {
				think = 0
			}
			return queueing.MVAResponse(lv.Service, think, customers)
		}
		// Guarded: near-saturated loads (ρ > 0.999) are treated as
		// saturated — the fixed point must not settle on a point where
		// the 1/(1−ρ) pole amplifies rate noise into the response.
		return queueing.MD1ResponseGuarded(lv.Service, lv.ArrivalMult*lambda,
			queueing.Guard{MaxRho: queueing.DefaultMaxRho})
	}

	computeT := func(r float64) float64 {
		t := lat.CacheHit + barrier
		for i, lv := range levels {
			lambda := gamma * r * miss[i] * lv.RateAdjust
			resp, err := contended(lv, lambda)
			if err != nil {
				return math.Inf(1)
			}
			if lv.SharingLevel {
				resp *= netFactor
			}
			t += miss[i] * resp
		}
		return t
	}
	rate := func(t float64) float64 { return 1 / (1/lat.Instruction + gamma*t) }

	// Uncontended T is the lower bound of the fixed point.
	lo := lat.CacheHit + barrier
	for i, lv := range levels {
		lo += miss[i] * lv.Service
	}
	// f(T) = computeT(rate(T)) − T is decreasing; find hi with f(hi) < 0.
	const maxIter = 400
	iter := 0
	hi := lo + 1
	for computeT(rate(hi)) > hi {
		hi *= 2
		iter++
		if iter > maxIter {
			return Result{}, fmt.Errorf("core: %s: fixed point diverged (T > %g cycles)", cfg.Name, hi)
		}
	}
	t := hi
	lob := lo
	for i := 0; i < 200 && (hi-lob) > 1e-9*hi; i++ {
		mid := (lob + hi) / 2
		if computeT(rate(mid)) > mid {
			lob = mid
		} else {
			hi = mid
		}
		iter++
	}
	t = hi

	r := rate(t)
	res := Result{
		Config:     cfg,
		T:          t,
		Barrier:    barrier,
		EInstr:     (1/lat.Instruction + gamma*t) / float64(totalProcs),
		Iterations: iter,
	}
	res.Seconds = res.EInstr / (cfg.ClockMHz * 1e6)
	for i, lv := range levels {
		lambda := gamma * r * miss[i] * lv.RateAdjust
		arrival := lv.ArrivalMult * lambda
		if opts.NoContention {
			arrival = 0
		}
		resp, err := contended(lv, lambda)
		if err != nil {
			return Result{}, fmt.Errorf("core: %s: saturated at solution (level %s): %w", cfg.Name, lv.Name, err)
		}
		if lv.SharingLevel {
			resp *= netFactor
		}
		res.Levels = append(res.Levels, LevelStats{
			Name:          lv.Name,
			MissFraction:  miss[i],
			Uncontended:   lv.Service,
			Contended:     resp,
			Utilization:   queueing.Utilization(lv.Service, arrival),
			CyclesPerRef:  miss[i] * resp,
			CapacityItems: lv.CapacityItems,
		})
	}
	return res, nil
}

// buildLevels constructs the per-platform hierarchy beyond the cache.
// Capacities are per-process effective shares in data items; see DESIGN.md
// §4 for the derivation.
func buildLevels(cfg machine.Config, opts Options) ([]Level, error) {
	lat := machine.LatenciesAt(cfg.Kind, cfg.ClockMHz)
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}
	// Capacities are expressed in 8-byte words here; Evaluate rescales them
	// to the workload's data-item size.
	items := func(bytes int64) float64 { return float64(bytes) / 8 }
	n := float64(cfg.Procs)
	N := float64(cfg.N)

	// Multi-level hierarchies: the intermediate cache levels (L2, L3) sit
	// in front of the per-platform beyond-cache hierarchy as private,
	// uncontended levels — each one's boundary is the previous level's
	// capacity, exactly the EMAT recursion
	// EMAT = L1 + m1·(L2 + m2·(L3 + m3·Mem)) unrolled into eq. 7's
	// per-level decomposition. The beyond-cache hierarchy then starts at
	// the outermost cache level's capacity. A one-level config prepends
	// nothing and returns the per-platform slice unchanged.
	cl := cfg.CacheLevels()
	lastCache := items(cfg.LastCacheBytes())
	deep := func(beyond []Level) []Level {
		if len(cl) == 1 {
			return beyond
		}
		levels := make([]Level, 0, len(cl)-1+len(beyond))
		for i := 1; i < len(cl); i++ {
			levels = append(levels, Level{
				Name:          fmt.Sprintf("L%d cache", i+1),
				CapacityItems: items(cl[i-1].Bytes),
				Service:       cl[i].LatencyCycles,
				ArrivalMult:   0,
				RateAdjust:    1,
			})
		}
		return append(levels, beyond...)
	}

	dirty := opts.dirtyFraction()
	netService := func() (float64, error) {
		rn, ok := lat.RemoteNode[cfg.Net]
		if !ok {
			return 0, fmt.Errorf("core: %s: no remote latency for network %v", cfg.Name, cfg.Net)
		}
		rc := lat.RemoteCached[cfg.Net]
		return (1-dirty)*rn + dirty*rc, nil
	}
	adj := 1 + opts.coherenceAdjust(cfg.Kind)

	switch cfg.Kind {
	case machine.SMP:
		return deep([]Level{
			{Name: "memory", CapacityItems: lastCache,
				Service: lat.LocalMemory, ArrivalMult: n - 1, RateAdjust: 1},
			{Name: "disk", CapacityItems: items(cfg.MemoryBytes) / n,
				Service: lat.LocalDisk, ArrivalMult: n - 1, RateAdjust: 1, TruncateAtFootprint: true},
		}), nil

	case machine.ClusterWS:
		if cfg.N == 1 {
			// A single workstation degenerates to a uniprocessor.
			return deep([]Level{
				{Name: "memory", CapacityItems: lastCache,
					Service: lat.LocalMemory, ArrivalMult: 0, RateAdjust: 1},
				{Name: "disk", CapacityItems: items(cfg.MemoryBytes),
					Service: lat.LocalDisk, ArrivalMult: 0, RateAdjust: 1, TruncateAtFootprint: true},
			}), nil
		}
		svc, err := netService()
		if err != nil {
			return nil, err
		}
		phi := opts.dsmShare()
		netArrival := 1.0 // switch: per-port server sees ≈ one node's rate
		if cfg.Net.IsBus() {
			netArrival = N - 1
		}
		_ = N
		return deep([]Level{
			// Beyond the cache: the local memory (the φ share acting as the
			// process's working area under the DSM layer).
			{Name: "local memory", CapacityItems: lastCache,
				Service: lat.LocalMemory, ArrivalMult: 0, RateAdjust: 1},
			// Beyond the local working area: a remote memory over the
			// cluster network.
			{Name: "remote memory", CapacityItems: phi * items(cfg.MemoryBytes),
				Service: svc, ArrivalMult: netArrival, RateAdjust: adj, SharingLevel: true},
			// Beyond the per-process share of the aggregate memory
			// (N·mem over N processes): disk.
			{Name: "disk", CapacityItems: items(cfg.MemoryBytes),
				Service: lat.LocalDisk, ArrivalMult: 0, RateAdjust: 1, TruncateAtFootprint: true},
		}), nil

	case machine.ClusterSMP:
		if cfg.N == 1 {
			// A single SMP machine: fall back to the SMP hierarchy.
			smp := cfg
			smp.Kind = machine.SMP
			return buildLevels(smp, opts)
		}
		svc, err := netService()
		if err != nil {
			return nil, err
		}
		phi := opts.dsmShare()
		netArrival := n // switch: a node's port is shared by its n processors
		if cfg.Net.IsBus() {
			netArrival = n*N - 1
		}
		_ = N
		return deep([]Level{
			// Beyond the cache: the machine's memory (n processors share
			// it, and its bus).
			{Name: "local memory", CapacityItems: lastCache,
				Service: lat.LocalMemory, ArrivalMult: n - 1, RateAdjust: 1},
			// Beyond the per-processor share of the local working area.
			{Name: "remote memory", CapacityItems: phi * items(cfg.MemoryBytes) / n,
				Service: svc, ArrivalMult: netArrival, RateAdjust: adj, SharingLevel: true},
			// Beyond the per-process share of the aggregate memory
			// (N·mem over nN processes): disk.
			{Name: "disk", CapacityItems: items(cfg.MemoryBytes) / n,
				Service: lat.LocalDisk, ArrivalMult: n - 1, RateAdjust: 1, TruncateAtFootprint: true},
		}), nil
	}
	return nil, fmt.Errorf("core: unknown platform kind %d", int(cfg.Kind))
}
