package core

import (
	"fmt"
	"strings"

	"memhier/internal/locality"
)

// PaperWorkloads returns the paper's Table 2 characterizations (plus the
// TPC-C measurement quoted in §5.2) as model workloads. β is in data items,
// as measured by the paper's address-stream analysis; HitMass is zero
// because the published fit already describes the full stream.
//
// These are the inputs for reproducing the paper's case studies exactly;
// the repository's own instrumented kernels produce their own (different)
// characterizations via the workloads package.
func PaperWorkloads() []Workload {
	return []Workload{
		// Footprints are the Table 2 problem sizes in 8-byte items:
		// FFT, 64K complex points plus roots and scratch (~3 MB);
		// LU, a 512×512 double matrix; Radix, 1M integers with a
		// destination array; EDGE, a 128×128 bitmap with blur/gradient/map
		// planes.
		{Name: "FFT", Locality: locality.Params{Alpha: 1.21, Beta: 103.26, Gamma: 0.20}, FootprintItems: 384 << 10},
		{Name: "LU", Locality: locality.Params{Alpha: 1.30, Beta: 90.27, Gamma: 0.31}, FootprintItems: 256 << 10},
		{Name: "Radix", Locality: locality.Params{Alpha: 1.14, Beta: 120.84, Gamma: 0.37}, FootprintItems: 1 << 20},
		{Name: "EDGE", Locality: locality.Params{Alpha: 1.71, Beta: 85.03, Gamma: 0.45}, FootprintItems: 64 << 10},
	}
}

// PaperTPCC returns the TPC-C characterization quoted in §5.2: a β more
// than ten times larger than any scientific program's, growing with the
// data set. The footprint (256 MB of warehouse data) exceeds every
// catalog memory, which is what makes the workload I/O bound.
func PaperTPCC() Workload {
	return Workload{Name: "TPC-C",
		Locality:       locality.Params{Alpha: 1.73, Beta: 1222.66, Gamma: 0.36},
		FootprintItems: 32 << 20}
}

// PaperWorkload returns the named Table 2 workload ("FFT", "LU", "Radix",
// "EDGE", or "TPC-C").
func PaperWorkload(name string) (Workload, bool) {
	if name == "TPC-C" {
		return PaperTPCC(), true
	}
	for _, w := range PaperWorkloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// PaperWorkloadNames returns the canonical Table 2 workload names in the
// paper's order.
func PaperWorkloadNames() []string {
	return []string{"FFT", "LU", "Radix", "EDGE", "TPC-C"}
}

// PaperWorkloadByName is the error-returning registry lookup shared by the
// CLIs and the chc-serve API: it resolves a Table 2 workload
// case-insensitively and accepts the kernel-style aliases ("fft", "tpcc",
// "tpc-c"). The error names the available set.
func PaperWorkloadByName(name string) (Workload, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "tpcc" || key == "tpc-c" {
		return PaperTPCC(), nil
	}
	for _, w := range PaperWorkloads() {
		if strings.ToLower(w.Name) == key {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("core: unknown paper workload %q (have %s)",
		name, strings.Join(PaperWorkloadNames(), ", "))
}
