package core

// Property tests for multi-level hierarchies: the EMAT recursion must stay
// monotone level by level — growing any one level's capacity can never slow
// the model down, slowing any one level's latency can never speed it up —
// and a degenerate intermediate level (zero latency, same capacity as its
// inner neighbor) must collapse out of the prediction exactly.

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/queueing"
)

// deepMonotonicityConfigs are the monotonicityConfigs with the 256KB
// one-level cache replaced by an explicit three-level hierarchy, so the
// per-level sweeps exercise the bus, network, and DSM branches too.
func deepMonotonicityConfigs() []machine.Config {
	out := monotonicityConfigs()
	for i := range out {
		out[i] = withHierarchy(out[i], []machine.CacheLevel{
			{Bytes: 64 << 10, LatencyCycles: 1},
			{Bytes: 1 << 20, LatencyCycles: 12},
			{Bytes: 8 << 20, LatencyCycles: 40},
		})
	}
	return out
}

func withHierarchy(cfg machine.Config, levels []machine.CacheLevel) machine.Config {
	cp := make([]machine.CacheLevel, len(levels))
	copy(cp, levels)
	cfg.Levels = cp
	cfg.CacheBytes = cp[0].Bytes
	return cfg.Canonical()
}

// levelCapacitySweeps returns, per hierarchy level, an increasing capacity
// sequence that keeps the three-level hierarchy valid (non-decreasing
// inward-out) while every other level stays at its base size.
func levelCapacitySweeps() [][]int64 {
	return [][]int64{
		{16 << 10, 64 << 10, 256 << 10, 1 << 20}, // L1: up to the base L2
		{64 << 10, 256 << 10, 1 << 20, 8 << 20},  // L2: between base L1 and L3
		{1 << 20, 4 << 20, 16 << 20, 32 << 20},   // L3: from the base L2 up
	}
}

func TestEInstrNonIncreasingInAnyLevelCapacity(t *testing.T) {
	for _, cfg := range deepMonotonicityConfigs() {
		for _, wl := range PaperWorkloads() {
			for li, sweep := range levelCapacitySweeps() {
				t.Run(fmt.Sprintf("%s-%dx%d/%s/L%d", cfg.Kind, cfg.N, cfg.Procs, wl.Name, li+1), func(t *testing.T) {
					prev := math.Inf(1)
					for _, bytes := range sweep {
						c := cfg
						levels := append([]machine.CacheLevel(nil), cfg.Levels...)
						levels[li].Bytes = bytes
						c = withHierarchy(c, levels)
						res, err := Evaluate(c, wl, Options{})
						if err != nil {
							// A small capacity can push a shared level past the
							// saturation guard; refusing is fine, but the model
							// must not refuse a larger capacity after accepting
							// a smaller one.
							if !math.IsInf(prev, 1) {
								t.Fatalf("L%d = %d KB rejected after a smaller capacity was accepted: %v",
									li+1, bytes>>10, err)
							}
							continue
						}
						if res.EInstr <= 0 || math.IsNaN(res.EInstr) {
							t.Fatalf("L%d = %d KB: EInstr = %v", li+1, bytes>>10, res.EInstr)
						}
						if res.EInstr > prev*(1+relTol) {
							t.Errorf("L%d = %d KB: EInstr %.9g > %.9g at a smaller capacity — growing one level slowed the model down",
								li+1, bytes>>10, res.EInstr, prev)
						}
						prev = res.EInstr
					}
				})
			}
		}
	}
}

func TestEInstrNonDecreasingInAnyLevelLatency(t *testing.T) {
	for _, cfg := range deepMonotonicityConfigs() {
		for _, wl := range PaperWorkloads() {
			for li := range cfg.Levels {
				t.Run(fmt.Sprintf("%s-%dx%d/%s/L%d", cfg.Kind, cfg.N, cfg.Procs, wl.Name, li+1), func(t *testing.T) {
					prev := 0.0
					for _, factor := range []float64{1, 2, 4, 8} {
						c := cfg
						levels := append([]machine.CacheLevel(nil), cfg.Levels...)
						levels[li].LatencyCycles *= factor
						c = withHierarchy(c, levels)
						res, err := Evaluate(c, wl, Options{})
						if err != nil {
							var sat *queueing.SaturationError
							if errors.As(err, &sat) {
								// A slower level raises utilization; saturating
								// at high factors is legitimate divergence.
								return
							}
							t.Fatalf("L%d × %v: %v", li+1, factor, err)
						}
						if res.EInstr < prev*(1-relTol) {
							t.Errorf("L%d × %v: EInstr %.9g < %.9g at a faster level — slowing one level sped the model up",
								li+1, factor, res.EInstr, prev)
						}
						prev = res.EInstr
					}
				})
			}
		}
	}
}

// TestCollapseDegenerateLevelIsExactNoOp pins the EMAT recursion's collapse
// identity: a zero-latency intermediate level with the same capacity as its
// inner neighbor adds no stack inclusion and no service time, so deleting it
// must not move the prediction by even one ulp. This is the property that
// makes the Levels generalization safe — the 1-level legacy path is the
// n-level path with every intermediate level collapsed.
func TestCollapseDegenerateLevelIsExactNoOp(t *testing.T) {
	type pair struct {
		label     string
		full      []machine.CacheLevel
		collapsed []machine.CacheLevel
	}
	pairs := []pair{
		{
			"after-L1",
			[]machine.CacheLevel{
				{Bytes: 64 << 10, LatencyCycles: 1},
				{Bytes: 64 << 10, LatencyCycles: 0},
				{Bytes: 8 << 20, LatencyCycles: 40},
			},
			[]machine.CacheLevel{
				{Bytes: 64 << 10, LatencyCycles: 1},
				{Bytes: 8 << 20, LatencyCycles: 40},
			},
		},
		{
			"trailing",
			[]machine.CacheLevel{
				{Bytes: 64 << 10, LatencyCycles: 1},
				{Bytes: 1 << 20, LatencyCycles: 12},
				{Bytes: 1 << 20, LatencyCycles: 0},
			},
			[]machine.CacheLevel{
				{Bytes: 64 << 10, LatencyCycles: 1},
				{Bytes: 1 << 20, LatencyCycles: 12},
			},
		},
	}
	for _, cfg := range monotonicityConfigs() {
		for _, wl := range PaperWorkloads() {
			for _, p := range pairs {
				t.Run(fmt.Sprintf("%s-%dx%d/%s/%s", cfg.Kind, cfg.N, cfg.Procs, wl.Name, p.label), func(t *testing.T) {
					full, err := Evaluate(withHierarchy(cfg, p.full), wl, Options{})
					if err != nil {
						t.Fatalf("full hierarchy: %v", err)
					}
					short, err := Evaluate(withHierarchy(cfg, p.collapsed), wl, Options{})
					if err != nil {
						t.Fatalf("collapsed hierarchy: %v", err)
					}
					//chc:allow floateq -- the collapse identity is exact by construction
					if full.EInstr != short.EInstr || full.T != short.T {
						t.Errorf("degenerate level moved the prediction: EInstr %.17g vs %.17g, T %.17g vs %.17g",
							full.EInstr, short.EInstr, full.T, short.T)
					}
				})
			}
		}
	}
}
