package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"memhier/internal/locality"
	"memhier/internal/machine"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type,
// and re-marshals, failing unless value and bytes are both stable. This is
// the drift guard for every payload type the chc-serve API exposes: if a
// field gains a tag, changes type, or loses its encoder, one of the three
// comparisons breaks.
func roundTrip(t *testing.T, v any) {
	t.Helper()
	first, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v))
	if err := json.Unmarshal(first, out.Interface()); err != nil {
		t.Fatalf("unmarshal %T from %s: %v", v, first, err)
	}
	got := out.Elem().Interface()
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("%T round trip changed the value:\n got %+v\nwant %+v", v, got, v)
	}
	second, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("re-marshal %T: %v", v, err)
	}
	if string(first) != string(second) {
		t.Fatalf("%T encoding not stable:\nfirst  %s\nsecond %s", v, first, second)
	}
}

// TestAPITypesJSONRoundTrip walks every request/response building block
// the prediction service serializes: workloads, machine configurations,
// solved results, per-level stats, locality parameters, and fit stats.
func TestAPITypesJSONRoundTrip(t *testing.T) {
	for _, wl := range append(PaperWorkloads(), PaperTPCC()) {
		roundTrip(t, wl)
	}
	roundTrip(t, Workload{
		Name:              "custom",
		Locality:          locality.Params{Alpha: 1.4, Beta: 250, Gamma: 0.33},
		HitMass:           0.25,
		BytesPerItem:      64,
		FootprintItems:    1 << 18,
		ConflictFactor:    1.2,
		ConflictCurve:     []ConflictPoint{{CapacityItems: 1024, Kappa: 1.5}, {CapacityItems: 65536, Kappa: 1.1}},
		RemoteShare:       0.15,
		CoherenceMissRate: 0.02,
	})
	for _, cfg := range machine.Catalog() {
		roundTrip(t, cfg)
	}
	roundTrip(t, LevelStats{Name: "remote memory", MissFraction: 0.01,
		Uncontended: 3275, Contended: 4100.5, Utilization: 0.4,
		CyclesPerRef: 41.005, CapacityItems: 1 << 20})
	roundTrip(t, locality.Params{Alpha: 1.21, Beta: 103.26, Gamma: 0.2})
	roundTrip(t, locality.FitStats{RMSE: 0.01, R2: 0.998, Iterations: 42, Points: 512})
}

// TestResultJSONRoundTrip solves the model for a sample of catalog
// configurations and round-trips the full Result — the richest payload
// /v1/predict derives from — including the embedded machine.Config with
// its text-encoded platform and network kinds.
func TestResultJSONRoundTrip(t *testing.T) {
	for _, name := range []string{"C1", "C4", "C8", "C11", "C15"} {
		cfg, err := machine.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range append(PaperWorkloads(), PaperTPCC()) {
			res, err := Evaluate(cfg, wl, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, wl.Name, err)
			}
			roundTrip(t, res)
		}
	}
}

// TestWorkloadJSONRoundTripRandom fuzzes the workload schema with a
// deterministic generator: random in-domain parameter draws must survive
// marshal→unmarshal→marshal unchanged (the custom codec validates on
// decode, so every draw is kept inside the model's domain).
func TestWorkloadJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		wl := Workload{
			Name: "fuzz",
			Locality: locality.Params{
				Alpha: 1 + math.Nextafter(0, 1) + rng.Float64()*2,
				Beta:  math.Ldexp(1+rng.Float64(), rng.Intn(20)),
				Gamma: 0.05 + 0.9*rng.Float64(),
			},
			HitMass:           0.99 * rng.Float64(),
			BytesPerItem:      float64(int(8) << rng.Intn(4)),
			FootprintItems:    float64(rng.Intn(1 << 22)),
			RemoteShare:       rng.Float64(),
			CoherenceMissRate: rng.Float64(),
		}
		if rng.Intn(2) == 0 {
			wl.ConflictFactor = 1 + rng.Float64()
		} else {
			cap := 1 + rng.Float64()*1024
			for j := 0; j < 1+rng.Intn(4); j++ {
				wl.ConflictCurve = append(wl.ConflictCurve, ConflictPoint{
					CapacityItems: cap, Kappa: 1 + rng.Float64(),
				})
				cap *= 2 + rng.Float64()
			}
		}
		roundTrip(t, wl)
	}
}

// TestPaperWorkloadByName checks the error-returning registry accessor:
// canonical names, case-insensitive spellings, kernel aliases, and the
// error listing the available set.
func TestPaperWorkloadByName(t *testing.T) {
	for alias, want := range map[string]string{
		"FFT": "FFT", "fft": "FFT", "Lu": "LU", "radix": "Radix",
		"edge": "EDGE", "EDGE": "EDGE", "tpcc": "TPC-C", "TPC-C": "TPC-C",
		"tpc-c": "TPC-C", " fft ": "FFT",
	} {
		wl, err := PaperWorkloadByName(alias)
		if err != nil {
			t.Fatalf("PaperWorkloadByName(%q): %v", alias, err)
		}
		if wl.Name != want {
			t.Errorf("PaperWorkloadByName(%q) = %q, want %q", alias, wl.Name, want)
		}
	}
	if _, err := PaperWorkloadByName("barnes"); err == nil {
		t.Fatal("expected an error for an unknown workload")
	}
}
