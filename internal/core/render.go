package core

import (
	"fmt"
	"io"
)

// RenderResult writes the human-readable evaluation report: the platform
// and workload lines, T and E(Instr), and the per-level breakdown. It is
// the single source of this format — the chc-model CLI prints it and the
// chc-serve /v1/predict endpoint embeds it, so the two are byte-identical
// for the same configuration and workload.
func RenderResult(w io.Writer, wl Workload, res Result) {
	cfg := res.Config
	// CacheDesc keeps the historical "%dKB" spelling for one-level configs
	// (the rendered text is part of the bit-identity contract) and lists
	// every level ("32KB+1MB+4MB") for multi-level hierarchies.
	fmt.Fprintf(w, "platform:  %s (%s, n=%d, N=%d, cache %s, mem %dMB, net %v)\n",
		cfg.Name, cfg.Kind, cfg.Procs, cfg.N, cfg.CacheDesc(), cfg.MemoryBytes>>20, cfg.Net)
	fmt.Fprintf(w, "workload:  %s (alpha=%.2f beta=%.2f gamma=%.2f)\n",
		wl.Name, wl.Locality.Alpha, wl.Locality.Beta, wl.Locality.Gamma)
	fmt.Fprintf(w, "T        = %.3f cycles/reference (barrier part %.3f)\n", res.T, res.Barrier)
	fmt.Fprintf(w, "E(Instr) = %.4f cycles = %.4g seconds at %g MHz\n", res.EInstr, res.Seconds, cfg.ClockMHz)
	fmt.Fprintln(w, "levels:")
	for _, lv := range res.Levels {
		fmt.Fprintf(w, "  %-14s miss=%.4f service=%.0f contended=%.1f utilization=%.3f cycles/ref=%.3f\n",
			lv.Name, lv.MissFraction, lv.Uncontended, lv.Contended, lv.Utilization, lv.CyclesPerRef)
	}
}
