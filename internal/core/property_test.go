package core

// Property and metamorphic tests for the analytical model: facts that
// must hold for every workload and platform, regardless of the fitted
// constants — a bigger cache can never slow a program down, slower memory
// can never speed it up, evaluation order is immaterial, and the queueing
// layer diverges only where, and how, the guard says it does.

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/queueing"
)

// monotonicityConfigs are the platform shapes the growth/latency
// properties sweep: one SMP, one NOW, one cluster of SMPs, so every
// hierarchy branch (bus, network, DSM) is exercised.
func monotonicityConfigs() []machine.Config {
	return []machine.Config{
		{Name: "custom", Kind: machine.SMP, N: 1, Procs: 8,
			CacheBytes: 256 << 10, MemoryBytes: 64 << 20,
			Net: machine.NetNone, ClockMHz: machine.ReferenceClockMHz},
		{Name: "custom", Kind: machine.ClusterWS, N: 8, Procs: 1,
			CacheBytes: 256 << 10, MemoryBytes: 64 << 20,
			Net: machine.NetBus100, ClockMHz: machine.ReferenceClockMHz},
		{Name: "custom", Kind: machine.ClusterSMP, N: 4, Procs: 4,
			CacheBytes: 256 << 10, MemoryBytes: 64 << 20,
			Net: machine.NetSwitch155, ClockMHz: machine.ReferenceClockMHz},
	}
}

// relTol absorbs fixed-point bisection noise: the solver stops at a
// tolerance, so "equal" operating points can differ by strictly less than
// the termination width.
const relTol = 1e-6

func TestEInstrNonIncreasingInCacheSize(t *testing.T) {
	for _, cfg := range monotonicityConfigs() {
		for _, wl := range PaperWorkloads() {
			t.Run(fmt.Sprintf("%s-%dx%d/%s", cfg.Kind, cfg.N, cfg.Procs, wl.Name), func(t *testing.T) {
				prev := math.Inf(1)
				for cacheKB := int64(16); cacheKB <= 16<<10; cacheKB *= 4 {
					c := cfg
					c.CacheBytes = cacheKB << 10
					res, err := Evaluate(c, wl, Options{})
					if err != nil {
						// A tiny cache can push a shared level past the
						// saturation guard; a refusal is fine, but the model
						// must not refuse a *bigger* cache after accepting a
						// smaller one.
						if !math.IsInf(prev, 1) {
							t.Fatalf("cache %d KB rejected after a smaller cache was accepted: %v", cacheKB, err)
						}
						continue
					}
					if res.EInstr <= 0 || math.IsNaN(res.EInstr) {
						t.Fatalf("cache %d KB: EInstr = %v", cacheKB, res.EInstr)
					}
					if res.EInstr > prev*(1+relTol) {
						t.Errorf("cache %d KB: EInstr %.9g > %.9g at a quarter the cache — bigger cache slowed the model down",
							cacheKB, res.EInstr, prev)
					}
					prev = res.EInstr
				}
			})
		}
	}
}

func TestEInstrNonDecreasingInMissLatency(t *testing.T) {
	for _, cfg := range monotonicityConfigs() {
		for _, wl := range PaperWorkloads() {
			t.Run(fmt.Sprintf("%s-%dx%d/%s", cfg.Kind, cfg.N, cfg.Procs, wl.Name), func(t *testing.T) {
				prev := 0.0
				for _, factor := range []float64{1, 2, 4, 8} {
					lat := machine.LatenciesAt(cfg.Kind, cfg.ClockMHz)
					lat.LocalMemory *= factor
					lat.LocalDisk *= factor
					lat.RemoteCache *= factor
					rn := make(map[machine.NetworkKind]float64, len(lat.RemoteNode))
					for k, v := range lat.RemoteNode {
						rn[k] = v * factor
					}
					lat.RemoteNode = rn
					rc := make(map[machine.NetworkKind]float64, len(lat.RemoteCached))
					for k, v := range lat.RemoteCached {
						rc[k] = v * factor
					}
					lat.RemoteCached = rc

					res, err := Evaluate(cfg, wl, Options{Latencies: &lat})
					if err != nil {
						var sat *queueing.SaturationError
						if errors.As(err, &sat) {
							// Slower devices raise utilization; saturating at
							// high factors is legitimate divergence. Nothing
							// after this factor can be checked.
							return
						}
						t.Fatalf("factor %v: %v", factor, err)
					}
					if res.EInstr < prev*(1-relTol) {
						t.Errorf("factor %v: EInstr %.9g < %.9g at faster devices — slower memory sped the model up",
							factor, res.EInstr, prev)
					}
					prev = res.EInstr
				}
			})
		}
	}
}

func TestEvaluateInvariantUnderOrderPermutation(t *testing.T) {
	// The model must be a pure function of (config, workload, options):
	// evaluating a batch forwards, backwards, and interleaved yields
	// bit-identical results, i.e. no hidden state leaks between calls.
	type job struct {
		cfg machine.Config
		wl  Workload
	}
	var jobs []job
	for _, cfg := range monotonicityConfigs() {
		for _, wl := range PaperWorkloads() {
			jobs = append(jobs, job{cfg, wl})
		}
	}
	run := func(order []int) []Result {
		out := make([]Result, len(jobs))
		for _, i := range order {
			res, err := Evaluate(jobs[i].cfg, jobs[i].wl, Options{})
			if err != nil {
				t.Fatalf("job %d (%s/%s): %v", i, jobs[i].cfg.Kind, jobs[i].wl.Name, err)
			}
			out[i] = res
		}
		return out
	}

	forward := make([]int, len(jobs))
	backward := make([]int, len(jobs))
	interleaved := make([]int, 0, len(jobs))
	for i := range jobs {
		forward[i] = i
		backward[i] = len(jobs) - 1 - i
	}
	for i := 0; i < len(jobs); i += 2 {
		interleaved = append(interleaved, i)
	}
	for i := 1; i < len(jobs); i += 2 {
		interleaved = append(interleaved, i)
	}

	base := run(forward)
	for name, order := range map[string][]int{"backward": backward, "interleaved": interleaved} {
		got := run(order)
		for i := range jobs {
			//chc:allow floateq -- bit-identity is the property under test
			if got[i].EInstr != base[i].EInstr || got[i].T != base[i].T {
				t.Errorf("%s order: job %d (%s/%s) diverged: EInstr %v vs %v",
					name, i, jobs[i].cfg.Kind, jobs[i].wl.Name, got[i].EInstr, base[i].EInstr)
			}
		}
	}
}

func TestMD1WaitMonotoneInRho(t *testing.T) {
	const tau = 25.0
	guard := queueing.Guard{MaxRho: queueing.DefaultMaxRho}
	prev := 0.0
	for rho := 0.0; rho < 0.995; rho += 0.005 {
		lambda := rho / tau
		r, err := queueing.MD1ResponseGuarded(tau, lambda, guard)
		if err != nil {
			t.Fatalf("rho %.3f: %v", rho, err)
		}
		if r < tau*(1-relTol) {
			t.Fatalf("rho %.3f: response %v below the uncontended service time %v", rho, r, tau)
		}
		if r < prev {
			t.Fatalf("rho %.3f: response %v < %v at lower load — wait not monotone in rho", rho, r, prev)
		}
		prev = r
	}
	// Approaching the guard from below the response grows without bound:
	// at ρ = 0.9985 the M/D/1 response exceeds 300 service times.
	r, err := queueing.MD1ResponseGuarded(tau, 0.9985/tau, guard)
	if err != nil {
		t.Fatalf("just below guard: %v", err)
	}
	if r < 300*tau {
		t.Errorf("rho 0.9985: response %v, want > %v (controlled divergence near saturation)", r, 300*tau)
	}
}

func TestMD1DivergesControlledlyAtGuard(t *testing.T) {
	const tau = 25.0
	guard := queueing.Guard{MaxRho: queueing.DefaultMaxRho}

	// In (MaxRho, 1): refused as near-saturated, with the offending rho
	// reported in the structured error.
	rho := (queueing.DefaultMaxRho + 1) / 2
	_, err := queueing.MD1ResponseGuarded(tau, rho/tau, guard)
	if !errors.Is(err, queueing.ErrNearSaturated) {
		t.Fatalf("rho %v: err = %v, want ErrNearSaturated", rho, err)
	}
	var sat *queueing.SaturationError
	if !errors.As(err, &sat) {
		t.Fatalf("near-saturation error %v carries no SaturationError", err)
	}
	if math.Abs(sat.Rho-rho) > 1e-12 {
		t.Errorf("reported rho %v, offered %v", sat.Rho, rho)
	}

	// At and beyond 1: saturated, guard or no guard.
	for _, rho := range []float64{1.0, 1.5} {
		_, err := queueing.MD1Response(tau, rho/tau)
		if !errors.Is(err, queueing.ErrSaturated) {
			t.Errorf("rho %v unguarded: err = %v, want ErrSaturated", rho, err)
		}
		_, err = queueing.MD1ResponseGuarded(tau, rho/tau, guard)
		if !errors.Is(err, queueing.ErrSaturated) {
			t.Errorf("rho %v guarded: err = %v, want ErrSaturated", rho, err)
		}
	}
}
