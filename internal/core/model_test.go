package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"memhier/internal/locality"
	"memhier/internal/machine"
)

func fft() Workload {
	w, _ := PaperWorkload("FFT")
	return w
}

func uniproc(cache, mem int64) machine.Config {
	return machine.Config{Name: "uni", Kind: machine.SMP, N: 1, Procs: 1,
		CacheBytes: cache, MemoryBytes: mem, Net: machine.NetNone, ClockMHz: 200}
}

// TestUniprocessorReducesToJacob checks the paper's anchor: with n = 1 the
// SMP model must equal the closed-form uniprocessor hierarchy model of
// Jacob et al. (no contention, no barrier):
// T = τ1 + F(s1)·τ2 + F(s2)·τ3, E = 1/S + γT.
func TestUniprocessorReducesToJacob(t *testing.T) {
	wl := fft()
	cfg := uniproc(256<<10, 64<<20)
	res, err := Evaluate(cfg, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := float64(cfg.CacheBytes) / 8
	f1 := wl.Locality.MissBeyond(s1)
	// FFT's 3 MB footprint fits the 64 MB memory, so the disk term is
	// truncated to zero and T reduces to τ1 + F(s1)·τ2.
	wantT := 1 + f1*50
	if math.Abs(res.T-wantT) > 1e-6*wantT {
		t.Errorf("T = %v, want closed form %v", res.T, wantT)
	}
	// With the footprint exceeding memory, the disk term reappears:
	// T = τ1 + F(s1)·τ2 + F(s2)·τ3.
	paging := wl
	paging.FootprintItems = 2 * float64(cfg.MemoryBytes) / 8
	resPaging, err := Evaluate(cfg, paging, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := float64(cfg.MemoryBytes) / 8
	wantPaging := 1 + f1*50 + wl.Locality.MissBeyond(s2)*2000
	if math.Abs(resPaging.T-wantPaging) > 1e-6*wantPaging {
		t.Errorf("paging T = %v, want closed form %v", resPaging.T, wantPaging)
	}
	wantE := 1 + wl.Locality.Gamma*wantT
	if math.Abs(res.EInstr-wantE) > 1e-6*wantE {
		t.Errorf("EInstr = %v, want %v", res.EInstr, wantE)
	}
	if res.Barrier != 0 {
		t.Errorf("uniprocessor has barrier term %v", res.Barrier)
	}
	if res.Seconds <= 0 || math.Abs(res.Seconds-res.EInstr/2e8) > 1e-18 {
		t.Errorf("Seconds = %v inconsistent with 200 MHz", res.Seconds)
	}
}

func TestEvaluateAllCatalogConfigsAllPaperWorkloads(t *testing.T) {
	for _, cfg := range machine.Catalog() {
		for _, wl := range append(PaperWorkloads(), PaperTPCC()) {
			res, err := Evaluate(cfg, wl, Options{})
			if err != nil {
				t.Errorf("%s/%s: %v", cfg.Name, wl.Name, err)
				continue
			}
			if res.T <= 0 || math.IsNaN(res.T) || math.IsInf(res.T, 0) {
				t.Errorf("%s/%s: bad T %v", cfg.Name, wl.Name, res.T)
			}
			if res.EInstr <= 0 {
				t.Errorf("%s/%s: bad EInstr %v", cfg.Name, wl.Name, res.EInstr)
			}
			for _, lv := range res.Levels {
				if lv.Utilization >= 1 {
					t.Errorf("%s/%s: level %s saturated at solution (ρ=%v)", cfg.Name, wl.Name, lv.Name, lv.Utilization)
				}
				if lv.MissFraction < 0 || lv.MissFraction > 1 {
					t.Errorf("%s/%s: level %s bad miss fraction %v", cfg.Name, wl.Name, lv.Name, lv.MissFraction)
				}
				if lv.Contended < lv.Uncontended-1e-9 {
					t.Errorf("%s/%s: level %s contended %v below uncontended %v", cfg.Name, wl.Name, lv.Name, lv.Contended, lv.Uncontended)
				}
			}
		}
	}
}

func TestMissFractionsDecreaseAlongHierarchy(t *testing.T) {
	for _, cfg := range machine.Catalog() {
		res, err := Evaluate(cfg, fft(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Levels); i++ {
			if res.Levels[i].MissFraction > res.Levels[i-1].MissFraction+1e-12 {
				t.Errorf("%s: miss fraction rises from %s (%v) to %s (%v)", cfg.Name,
					res.Levels[i-1].Name, res.Levels[i-1].MissFraction,
					res.Levels[i].Name, res.Levels[i].MissFraction)
			}
		}
	}
}

func TestLargerCacheNeverHurts(t *testing.T) {
	base, _ := machine.ByName("C1")
	big := base
	big.CacheBytes *= 2
	for _, wl := range PaperWorkloads() {
		r1, err := Evaluate(base, wl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Evaluate(big, wl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r2.T > r1.T+1e-9 {
			t.Errorf("%s: doubling cache raised T from %v to %v", wl.Name, r1.T, r2.T)
		}
	}
}

func TestFasterNetworkHelps(t *testing.T) {
	cfg := machine.Config{Name: "ws", Kind: machine.ClusterWS, N: 4, Procs: 1,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, Net: machine.NetBus10, ClockMHz: 200}
	slow, err := Evaluate(cfg, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Net = machine.NetBus100
	mid, err := Evaluate(cfg, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Net = machine.NetSwitch155
	fast, err := Evaluate(cfg, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.EInstr < mid.EInstr && mid.EInstr < slow.EInstr) {
		t.Errorf("network ordering violated: 10Mb=%v 100Mb=%v switch=%v",
			slow.EInstr, mid.EInstr, fast.EInstr)
	}
}

func TestContentionAblation(t *testing.T) {
	cfg, _ := machine.ByName("C5") // 4-processor SMP
	with, err := Evaluate(cfg, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Evaluate(cfg, fft(), Options{NoContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.T <= without.T {
		t.Errorf("contention should raise T: with=%v without=%v", with.T, without.T)
	}
	for _, lv := range without.Levels {
		if lv.Utilization != 0 {
			t.Errorf("NoContention left utilization %v at %s", lv.Utilization, lv.Name)
		}
	}
}

func TestBarrierAblation(t *testing.T) {
	cfg, _ := machine.ByName("C5")
	with, err := Evaluate(cfg, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Evaluate(cfg, fft(), Options{NoBarrier: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Barrier <= 0 || without.Barrier != 0 {
		t.Errorf("barrier terms: with=%v without=%v", with.Barrier, without.Barrier)
	}
	if with.T <= without.T {
		t.Errorf("barrier should raise T: with=%v without=%v", with.T, without.T)
	}
	// The folded term is (1/2+1/3+1/4)/γ for four processors.
	want := (0.5 + 1.0/3 + 0.25) / fft().Locality.Gamma
	if math.Abs(with.Barrier-want) > 1e-9 {
		t.Errorf("barrier = %v, want %v", with.Barrier, want)
	}
}

func TestCoherenceAdjustAblation(t *testing.T) {
	cfg := machine.Config{Name: "ws", Kind: machine.ClusterWS, N: 4, Procs: 1,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, Net: machine.NetBus100, ClockMHz: 200}
	with, err := Evaluate(cfg, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Evaluate(cfg, fft(), Options{CoherenceAdjust: -1})
	if err != nil {
		t.Fatal(err)
	}
	if with.T <= without.T {
		t.Errorf("12.4%% adjustment should raise T: with=%v without=%v", with.T, without.T)
	}
	// On a single SMP the adjustment never applies.
	smp, _ := machine.ByName("C1")
	a, err := Evaluate(smp, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(smp, fft(), Options{CoherenceAdjust: -1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.T-b.T) > 1e-12 {
		t.Errorf("coherence adjustment leaked into SMP model: %v vs %v", a.T, b.T)
	}
}

func TestMVAContentionOption(t *testing.T) {
	cfg, _ := machine.ByName("C5") // 4-processor SMP
	md1, err := Evaluate(cfg, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mva, err := Evaluate(cfg, fft(), Options{UseMVA: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both models add contention over the uncontended baseline …
	base, err := Evaluate(cfg, fft(), Options{NoContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if mva.T <= base.T || md1.T <= base.T {
		t.Errorf("contention missing: base=%v md1=%v mva=%v", base.T, md1.T, mva.T)
	}
	// … and the closed model is bounded: the memory level's contended
	// response cannot exceed customers × service.
	for _, lv := range mva.Levels {
		limit := lv.Uncontended * 4 // n = 4 customers
		if lv.Name == "memory" && lv.Contended > limit+1e-9 {
			t.Errorf("MVA response %v exceeds closed bound %v", lv.Contended, limit)
		}
	}
	// Agreement at the uniprocessor limit: no competitors, both equal.
	uni := uniproc(256<<10, 64<<20)
	a, err := Evaluate(uni, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(uni, fft(), Options{UseMVA: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.T-b.T) > 1e-9 {
		t.Errorf("uniprocessor: MD1 %v vs MVA %v", a.T, b.T)
	}
}

func TestRescaleAblation(t *testing.T) {
	cfg, _ := machine.ByName("C5")
	with, err := Evaluate(cfg, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Evaluate(cfg, fft(), Options{NoRescale: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rescaling shrinks per-process distances, so misses drop.
	if with.Levels[0].MissFraction >= without.Levels[0].MissFraction {
		t.Errorf("rescale should reduce misses: with=%v without=%v",
			with.Levels[0].MissFraction, without.Levels[0].MissFraction)
	}
}

func TestHitMassScalesMisses(t *testing.T) {
	cfg := uniproc(256<<10, 64<<20)
	plain := fft()
	damped := plain
	damped.HitMass = 0.5
	r1, err := Evaluate(cfg, plain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(cfg, damped, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Levels {
		want := r1.Levels[i].MissFraction / 2
		if math.Abs(r2.Levels[i].MissFraction-want) > 1e-12 {
			t.Errorf("level %d: HitMass=0.5 miss %v, want %v", i, r2.Levels[i].MissFraction, want)
		}
	}
}

func TestBytesPerItemScaling(t *testing.T) {
	cfg := uniproc(256<<10, 64<<20)
	w8 := fft()
	w16 := fft()
	w16.BytesPerItem = 16
	r8, err := Evaluate(cfg, w8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Evaluate(cfg, w16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Larger items mean fewer fit in the same cache: misses rise.
	if r16.Levels[0].MissFraction <= r8.Levels[0].MissFraction {
		t.Errorf("16-byte items should miss more: %v vs %v",
			r16.Levels[0].MissFraction, r8.Levels[0].MissFraction)
	}
}

func TestValidationErrors(t *testing.T) {
	good := fft()
	cfg := uniproc(256<<10, 64<<20)

	bad := good
	bad.Locality.Alpha = 0.5
	if _, err := Evaluate(cfg, bad, Options{}); err == nil {
		t.Error("bad alpha accepted")
	}
	bad = good
	bad.HitMass = 1.5
	if _, err := Evaluate(cfg, bad, Options{}); err == nil {
		t.Error("bad HitMass accepted")
	}
	bad = good
	bad.Locality.Gamma = 0
	if _, err := Evaluate(cfg, bad, Options{}); err == nil {
		t.Error("gamma=0 accepted")
	}
	badCfg := cfg
	badCfg.CacheBytes = 0
	if _, err := Evaluate(badCfg, good, Options{}); err == nil {
		t.Error("bad config accepted")
	}
	noNet := machine.Config{Name: "x", Kind: machine.ClusterWS, N: 4, Procs: 1,
		CacheBytes: 1 << 18, MemoryBytes: 1 << 26, Net: machine.NetNone, ClockMHz: 200}
	if _, err := Evaluate(noNet, good, Options{}); err == nil || !strings.Contains(err.Error(), "network") {
		t.Errorf("cluster without network: err=%v", err)
	}
}

func TestSingleMachineClusterDegenerations(t *testing.T) {
	// A 1-machine cluster of SMPs must equal the SMP model.
	smp := machine.Config{Name: "s", Kind: machine.SMP, N: 1, Procs: 2,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, Net: machine.NetNone, ClockMHz: 200}
	csmp := smp
	csmp.Kind = machine.ClusterSMP
	a, err := Evaluate(smp, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(csmp, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.T-b.T) > 1e-9 {
		t.Errorf("1-machine cluster-of-SMPs T=%v differs from SMP T=%v", b.T, a.T)
	}
	// A 1-machine "cluster" of workstations is a uniprocessor.
	ws := machine.Config{Name: "w", Kind: machine.ClusterWS, N: 1, Procs: 1,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, Net: machine.NetNone, ClockMHz: 200}
	uni := uniproc(256<<10, 64<<20)
	c, err := Evaluate(ws, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Evaluate(uni, fft(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.T-d.T) > 1e-9 {
		t.Errorf("1-node WS cluster T=%v differs from uniprocessor T=%v", c.T, d.T)
	}
}

// TestFixedPointConsistency verifies the solved T satisfies its own
// equation: recomputing the right-hand side at the achieved rate
// reproduces T.
func TestFixedPointConsistency(t *testing.T) {
	for _, name := range []string{"C5", "C8", "C14"} {
		cfg, err := machine.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(cfg, fft(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild T from the reported level stats plus cache and barrier.
		sum := 1.0 + res.Barrier
		for _, lv := range res.Levels {
			sum += lv.CyclesPerRef
		}
		if math.Abs(sum-res.T) > 1e-6*res.T {
			t.Errorf("%s: level stats sum to %v, T = %v", name, sum, res.T)
		}
	}
}

// TestPaperWorkloadOrdering reproduces a core qualitative claim: on the
// same SMP, the workload with the worst locality (Radix) has the highest
// per-instruction time of the scientific codes once weighted by γ.
func TestPaperWorkloadOrdering(t *testing.T) {
	cfg, _ := machine.ByName("C5")
	results := map[string]float64{}
	for _, wl := range PaperWorkloads() {
		res, err := Evaluate(cfg, wl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		results[wl.Name] = res.EInstr
	}
	if results["Radix"] <= results["LU"] || results["Radix"] <= results["FFT"] {
		t.Errorf("Radix should be slowest per instruction: %+v", results)
	}
}

func TestPaperWorkloadLookup(t *testing.T) {
	for _, name := range []string{"FFT", "LU", "Radix", "EDGE", "TPC-C"} {
		w, ok := PaperWorkload(name)
		if !ok || w.Name != name {
			t.Errorf("PaperWorkload(%q) = %+v, %v", name, w, ok)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, ok := PaperWorkload("nope"); ok {
		t.Error("unknown workload found")
	}
}

// TestEvaluatePropertyStability fuzzes workload parameters within the
// model's domain and checks Evaluate never returns garbage.
func TestEvaluatePropertyStability(t *testing.T) {
	cfg, _ := machine.ByName("C8")
	f := func(aRaw, bRaw, gRaw uint16) bool {
		wl := Workload{
			Name: "fuzz",
			Locality: locality.Params{
				Alpha: 1.02 + float64(aRaw%300)/100,
				Beta:  1 + float64(bRaw%5000),
				Gamma: 0.05 + float64(gRaw%90)/100,
			},
		}
		res, err := Evaluate(cfg, wl, Options{})
		if err != nil {
			return false
		}
		return res.T >= 1 && !math.IsNaN(res.T) && !math.IsInf(res.T, 0) &&
			res.EInstr > 0 && res.EInstr < 1e9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	cfg, _ := machine.ByName("C14")
	wl := fft()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(cfg, wl, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConflictCurveInterpolation(t *testing.T) {
	cfg := uniproc(256<<10, 64<<20) // cache = 32768 items
	wl := fft()
	wl.ConflictCurve = []ConflictPoint{
		{CapacityItems: 1 << 10, Kappa: 4},
		{CapacityItems: 1 << 15, Kappa: 2}, // exactly the cache capacity
		{CapacityItems: 1 << 20, Kappa: 1},
	}
	res, err := Evaluate(cfg, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := fft()
	base, err := Evaluate(cfg, plain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At the knot the curve applies exactly kappa = 2.
	want := base.Levels[0].MissFraction * 2
	if math.Abs(res.Levels[0].MissFraction-want) > 1e-9 {
		t.Errorf("curve at knot: miss %v, want %v", res.Levels[0].MissFraction, want)
	}
	// Below the first knot and above the last, kappa clamps. A light tail
	// keeps the κ-scaled miss under the 1−HitMass cap.
	light := Workload{Name: "light",
		Locality:      locality.Params{Alpha: 2.5, Beta: 20, Gamma: 0.3},
		ConflictCurve: wl.ConflictCurve}
	lightPlain := light
	lightPlain.ConflictCurve = nil
	small := uniproc(4<<10, 64<<20) // 512 items < first knot
	resSmall, err := Evaluate(small, light, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseSmall, err := Evaluate(small, lightPlain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := resSmall.Levels[0].MissFraction / baseSmall.Levels[0].MissFraction
	if math.Abs(ratio-4) > 1e-9 {
		t.Errorf("clamp below first knot: kappa %v, want 4", ratio)
	}
	// Interpolation is monotone between knots and the curve wins over the
	// scalar factor.
	wl.ConflictFactor = 100
	resAgain, err := Evaluate(cfg, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resAgain.Levels[0].MissFraction-want) > 1e-9 {
		t.Error("scalar ConflictFactor overrode the curve")
	}
}
