package core

import (
	"fmt"
	"sort"

	"memhier/internal/machine"
)

// ScalabilityPoint is one point of a machine-count sweep.
type ScalabilityPoint struct {
	N          int
	EInstr     float64
	Speedup    float64 // E(1 machine) / E(N machines)
	Efficiency float64 // Speedup / N
}

// Scalability sweeps the machine count of a cluster template from 1 to
// maxN, holding everything else fixed, and reports modeled speedup and
// efficiency — the "desktop-to-teraflop" scaling question of the paper's
// introduction. The template's N is ignored. Points where the model
// saturates are skipped.
func Scalability(template machine.Config, wl Workload, opts Options, maxN int) ([]ScalabilityPoint, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("core: maxN must be >= 1, got %d", maxN)
	}
	if template.Kind == machine.SMP {
		return nil, fmt.Errorf("core: scalability sweeps machines; %s has N fixed at 1", template.Kind)
	}
	var out []ScalabilityPoint
	base := 0.0
	for n := 1; n <= maxN; n++ {
		cfg := template
		cfg.N = n
		cfg.Name = fmt.Sprintf("%s N=%d", template.Name, n)
		if n == 1 {
			cfg.Net = machine.NetNone
		} else if cfg.Net == machine.NetNone {
			return nil, fmt.Errorf("core: template needs a network to scale beyond one machine")
		}
		res, err := Evaluate(cfg, wl, opts)
		if err != nil {
			continue
		}
		p := ScalabilityPoint{N: n, EInstr: res.EInstr}
		if n == 1 {
			base = res.EInstr
		}
		if base > 0 {
			p.Speedup = base / res.EInstr
			p.Efficiency = p.Speedup / float64(n)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no feasible point in 1..%d machines", maxN)
	}
	return out, nil
}

// OptimalMachines returns the sweep point with the lowest E(Instr).
func OptimalMachines(points []ScalabilityPoint) (ScalabilityPoint, error) {
	if len(points) == 0 {
		return ScalabilityPoint{}, fmt.Errorf("core: empty scalability sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.EInstr < best.EInstr {
			best = p
		}
	}
	return best, nil
}

// Sensitivity reports the elasticity of E(Instr) with respect to one
// resource: the percentage change in E per percent change in the resource,
// estimated by central finite differences. Negative values mean the
// resource helps (more of it lowers E).
type Sensitivity struct {
	Resource   string
	Elasticity float64
}

// Sensitivities estimates the model's elasticities for cache capacity,
// memory capacity, and (on clusters) network latency — the quantitative
// backing for the paper's upgrade rule ("money first on cache/memory
// capacity …; if network activities are independent of capacity, upgrade
// the network first").
func Sensitivities(cfg machine.Config, wl Workload, opts Options) ([]Sensitivity, error) {
	base, err := Evaluate(cfg, wl, opts)
	if err != nil {
		return nil, err
	}
	const eps = 0.10 // ±10% finite-difference step
	elasticity := func(up, down float64) float64 {
		return (up - down) / (2 * eps * base.EInstr) * 1.0
	}

	var out []Sensitivity
	evalE := func(c machine.Config) (float64, error) {
		r, err := Evaluate(c, wl, opts)
		if err != nil {
			return 0, err
		}
		return r.EInstr, nil
	}

	// Cache capacity: every level scales together, so the elasticity
	// describes growing the whole hierarchy (a one-level config reduces to
	// the old CacheBytes perturbation).
	cUp := scaleCacheLevels(cfg, 1+eps)
	cDown := scaleCacheLevels(cfg, 1-eps)
	if up, err1 := evalE(cUp); err1 == nil {
		if down, err2 := evalE(cDown); err2 == nil {
			out = append(out, Sensitivity{Resource: "cache", Elasticity: elasticity(up, down)})
		}
	}

	// Memory capacity.
	mUp, mDown := cfg, cfg
	mUp.MemoryBytes = int64(float64(cfg.MemoryBytes) * (1 + eps))
	mDown.MemoryBytes = int64(float64(cfg.MemoryBytes) * (1 - eps))
	if up, err1 := evalE(mUp); err1 == nil {
		if down, err2 := evalE(mDown); err2 == nil {
			out = append(out, Sensitivity{Resource: "memory", Elasticity: elasticity(up, down)})
		}
	}

	// Network latency (clusters only): scale the remote latencies.
	if cfg.N > 1 && cfg.Net != machine.NetNone {
		scaleNet := func(factor float64) Options {
			lat := machine.LatenciesAt(cfg.Kind, cfg.ClockMHz)
			if opts.Latencies != nil {
				lat = *opts.Latencies
			}
			rn := make(map[machine.NetworkKind]float64, len(lat.RemoteNode))
			rc := make(map[machine.NetworkKind]float64, len(lat.RemoteCached))
			for k, v := range lat.RemoteNode {
				rn[k] = v * factor
			}
			for k, v := range lat.RemoteCached {
				rc[k] = v * factor
			}
			lat.RemoteNode, lat.RemoteCached = rn, rc
			o := opts
			o.Latencies = &lat
			return o
		}
		up, err1 := Evaluate(cfg, wl, scaleNet(1+eps))
		down, err2 := Evaluate(cfg, wl, scaleNet(1-eps))
		if err1 == nil && err2 == nil {
			out = append(out, Sensitivity{Resource: "network latency",
				Elasticity: elasticity(up.EInstr, down.EInstr)})
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out, nil
}

// MixComponent weights one workload inside an application mix.
type MixComponent struct {
	Workload Workload
	Weight   float64 // relative share of the machine's instruction stream
}

// EvaluateMix models a platform running a weighted mix of applications: the
// mix's E(Instr) is the weight-averaged per-workload E(Instr). A site that
// runs 70% LU and 30% Radix optimizes this number, not either extreme.
func EvaluateMix(cfg machine.Config, mix []MixComponent, opts Options) (float64, error) {
	if len(mix) == 0 {
		return 0, fmt.Errorf("core: empty workload mix")
	}
	var total, acc float64
	for _, c := range mix {
		if c.Weight <= 0 {
			return 0, fmt.Errorf("core: mix weight %v must be positive", c.Weight)
		}
		res, err := Evaluate(cfg, c.Workload, opts)
		if err != nil {
			return 0, fmt.Errorf("core: mix component %s: %w", c.Workload.Name, err)
		}
		acc += c.Weight * res.EInstr
		total += c.Weight
	}
	return acc / total, nil
}

// scaleCacheLevels returns a copy of cfg with every cache level's capacity
// multiplied by factor (the legacy CacheBytes field stays in step with
// level 1).
func scaleCacheLevels(cfg machine.Config, factor float64) machine.Config {
	cfg.CacheBytes = int64(float64(cfg.CacheBytes) * factor)
	if len(cfg.Levels) > 0 {
		levels := make([]machine.CacheLevel, len(cfg.Levels))
		for i, lv := range cfg.Levels {
			lv.Bytes = int64(float64(lv.Bytes) * factor)
			levels[i] = lv
		}
		cfg.Levels = levels
		cfg.CacheBytes = levels[0].Bytes
	}
	return cfg
}
