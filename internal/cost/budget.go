package cost

// Branch-and-bound budget optimization: OptimizeBudgets answers the eq. 6
// question for a whole grid of budgets in one pass over a price-sorted
// enumeration, instead of re-enumerating (and re-evaluating) the space per
// budget the way BudgetSweep does.
//
// The search exploits two structural facts, both proven by the repository's
// property tests (internal/core/property_test.go):
//
//   - the feasible set only grows with the budget, so budgets processed in
//     ascending order share one frontier: each configuration is considered
//     exactly once, when it first becomes affordable, and the incumbent
//     winner carries over;
//   - E(Instr) — and therefore Seconds, at a fixed clock — is monotone
//     non-increasing in cache and memory capacity, so within a "structure
//     group" (same platform kind, machine count, processors, network, and
//     clock) the capacity-maximal member lower-bounds every member. A group
//     whose bound is strictly worse than the incumbent is pruned without
//     evaluating its members.
//
// Pruning uses strict inequality only: a group whose bound ties the
// incumbent is still evaluated, because the brute-force ranking breaks
// Seconds ties by price (and full ties by enumeration order), and a
// dominated-but-cheaper member can win such a tie — capacity plateaus are
// real (a footprint that fits in the smaller memory leaves E(Instr)
// unchanged and the cheaper configuration wins). The winners are therefore
// bit-identical to brute force; TestOptimizeBudgetsMatchesBruteForce holds
// the two searches together on randomized spaces.

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"memhier/internal/core"
	"memhier/internal/machine"
)

// BudgetPoint is one budget of a pruned sweep: the eq. 6 winner at that
// spend level, bit-identical to what Optimize would return.
type BudgetPoint struct {
	Budget float64 `json:"budget"`
	Best   Scored  `json:"best"`
	// Candidates counts the configurations priced within the budget
	// (whether or not the search had to evaluate them).
	Candidates int `json:"candidates"`
}

// SweepStats accounts for the work of one OptimizeBudgets call; the
// benchmark suite and the /v1/sweep summary report it so pruning stays
// observable.
type SweepStats struct {
	// Configs is the enumeration size (priced configurations).
	Configs int `json:"configs"`
	// Evaluated counts model evaluations spent, bound evaluations
	// included. Brute force spends Candidates evaluations per budget;
	// the pruned search spends at most Configs across all budgets.
	Evaluated int `json:"evaluated"`
	// BoundEvals counts the evaluations used to establish group lower
	// bounds (a subset of Evaluated).
	BoundEvals int `json:"bound_evals"`
	// Pruned counts affordable configurations skipped because their
	// group's monotone lower bound was strictly worse than the incumbent.
	Pruned int `json:"pruned"`
}

// pricedConfig is one enumerated configuration with its catalog price and
// its position in the enumeration (the brute-force tie-break order).
type pricedConfig struct {
	cfg   machine.Config
	cost  float64
	group int // structure group: same kind/N/procs/net/clock
	index int // enumeration position
}

// structureKey identifies a group of configurations that differ only along
// the monotone capacity axes (per-level cache bytes, memory bytes). The
// level signature — depth and per-level latencies — is part of the
// structure: capacity monotonicity only holds with latencies fixed.
type structureKey struct {
	kind   machine.PlatformKind
	n      int
	procs  int
	net    machine.NetworkKind
	clock  float64
	levels string
}

// levelSig folds a hierarchy's non-capacity shape into a comparable string.
// Every legacy one-level configuration maps to "", so spaces without
// DeepOptions group exactly as before.
func levelSig(cfg machine.Config) string {
	cl := cfg.CacheLevels()
	if len(cl) == 1 && cl[0].LatencyCycles == 0 {
		return ""
	}
	parts := make([]string, len(cl))
	for i, lv := range cl {
		parts[i] = strconv.FormatFloat(lv.LatencyCycles, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// dominatesCapacity reports whether b is at least a along every monotone
// capacity axis — each cache level's bytes and the memory bytes — and
// strictly above on one. Both configs must share a structure group, so the
// level counts match.
func dominatesCapacity(a, b machine.Config) bool {
	la, lb := a.CacheLevels(), b.CacheLevels()
	if len(la) != len(lb) || b.MemoryBytes < a.MemoryBytes {
		return false
	}
	strict := b.MemoryBytes > a.MemoryBytes
	for i := range la {
		if lb[i].Bytes < la[i].Bytes {
			return false
		}
		if lb[i].Bytes > la[i].Bytes {
			strict = true
		}
	}
	return strict
}

// enumeratePriced prices every configuration in the space and returns them
// sorted by ascending cost (ties keep enumeration order, matching the
// stable brute-force ranking). Configurations the catalog cannot price are
// dropped, exactly as Optimize skips them. The second result maps each
// structure group to its capacity-maximal members — the members no other
// member dominates componentwise in (cache, memory) — whose evaluations
// lower-bound the whole group.
func (s Space) enumeratePriced(cat Catalog) ([]pricedConfig, [][]int) {
	var pcs []pricedConfig
	groups := make(map[structureKey]int)
	var members [][]int // group → indices into pcs (pre-sort identity)
	for i, cfg := range s.Enumerate() {
		price, err := cat.ClusterCost(cfg)
		if err != nil {
			continue
		}
		key := structureKey{kind: cfg.Kind, n: cfg.N, procs: cfg.Procs, net: cfg.Net, clock: cfg.ClockMHz, levels: levelSig(cfg)}
		g, ok := groups[key]
		if !ok {
			g = len(members)
			groups[key] = g
			members = append(members, nil)
		}
		members[g] = append(members[g], len(pcs))
		pcs = append(pcs, pricedConfig{cfg: cfg, cost: price, group: g, index: i})
	}
	// Reduce each group to its maximal members. Every member is dominated
	// by at least one maximal member, so min(Seconds) over the maximal set
	// bounds the group from below.
	maxima := make([][]int, len(members))
	for g, idxs := range members {
		for _, i := range idxs {
			dominated := false
			for _, j := range idxs {
				if i == j {
					continue
				}
				if dominatesCapacity(pcs[i].cfg, pcs[j].cfg) {
					dominated = true
					break
				}
			}
			if !dominated {
				maxima[g] = append(maxima[g], i)
			}
		}
	}
	// Price-sorted frontier. The sort permutes pcs, so maxima must be
	// remapped through the permutation.
	perm := make([]int, len(pcs))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return pcs[perm[a]].cost < pcs[perm[b]].cost })
	sorted := make([]pricedConfig, len(pcs))
	where := make([]int, len(pcs)) // old index → new index
	for newIdx, oldIdx := range perm {
		sorted[newIdx] = pcs[oldIdx]
		where[oldIdx] = newIdx
	}
	for g := range maxima {
		for k, oldIdx := range maxima[g] {
			maxima[g][k] = where[oldIdx]
		}
	}
	return sorted, maxima
}

// OptimizeBudgets solves eq. 6 for every budget in one pass: budgets are
// processed in ascending order over the price-sorted enumeration, each
// configuration is evaluated at most once, and whole structure groups are
// pruned when their monotone lower bound cannot beat the incumbent. The
// returned winners are bit-identical to running Optimize per budget
// (BudgetSweep, the brute-force fallback); budgets with no feasible
// configuration are skipped, exactly as BudgetSweep skips them.
func OptimizeBudgets(budgets []float64, wl core.Workload, cat Catalog, space Space, opts core.Options) ([]BudgetPoint, SweepStats, error) {
	if len(budgets) == 0 {
		return nil, SweepStats{}, fmt.Errorf("cost: empty budget list")
	}
	pcs, maxima := space.enumeratePriced(cat)
	stats := SweepStats{Configs: len(pcs)}

	type evalOutcome struct {
		done    bool
		ok      bool
		eInstr  float64
		seconds float64
	}
	evals := make([]evalOutcome, len(pcs))
	eval := func(i int) evalOutcome {
		if evals[i].done {
			return evals[i]
		}
		stats.Evaluated++
		o := evalOutcome{done: true}
		if res, err := core.Evaluate(pcs[i].cfg, wl, opts); err == nil {
			o.ok = true
			o.eInstr = res.EInstr
			o.seconds = res.Seconds
		}
		evals[i] = o
		return o
	}

	// Group lower bounds, established lazily: min Seconds over the group's
	// capacity-maximal members. A failing maximal member disables the bound
	// (-Inf) rather than risking an unsound prune.
	bounds := make([]float64, len(maxima))
	haveBound := make([]bool, len(maxima))
	bound := func(g int) float64 {
		if haveBound[g] {
			return bounds[g]
		}
		lb := math.Inf(1)
		for _, mi := range maxima[g] {
			wasDone := evals[mi].done
			o := eval(mi)
			if !wasDone {
				stats.BoundEvals++
			}
			if !o.ok {
				lb = math.Inf(-1)
				break
			}
			if o.seconds < lb {
				lb = o.seconds
			}
		}
		haveBound[g] = true
		bounds[g] = lb
		return lb
	}

	sorted := append([]float64(nil), budgets...)
	sort.Float64s(sorted)

	var out []BudgetPoint
	var best Scored
	haveBest := false
	bestIdx := -1 // enumeration index of the incumbent, for full-tie breaks
	i := 0
	for _, b := range sorted {
		if b <= 0 {
			continue // Optimize rejects non-positive budgets; BudgetSweep skips them
		}
		for i < len(pcs) && pcs[i].cost <= b {
			pc := pcs[i]
			i++
			if haveBest && bound(pc.group) > best.Seconds {
				stats.Pruned++
				continue
			}
			o := eval(i - 1)
			if !o.ok {
				continue
			}
			// The incumbent is the lexicographic minimum under
			// (Seconds, Cost, enumeration order) — exactly the head of
			// Optimize's stable ranking.
			better := o.seconds < best.Seconds ||
				(o.seconds == best.Seconds &&
					(pc.cost < best.Cost || (pc.cost == best.Cost && pc.index < bestIdx)))
			if !haveBest || better {
				best = Scored{Config: pc.cfg, Cost: pc.cost, EInstr: o.eInstr, Seconds: o.seconds}
				bestIdx = pc.index
				haveBest = true
			}
		}
		if haveBest {
			out = append(out, BudgetPoint{Budget: b, Best: best, Candidates: i})
		}
	}
	if len(out) == 0 {
		return nil, stats, errors.New("cost: no budget in the sweep is feasible")
	}
	return out, stats, nil
}
