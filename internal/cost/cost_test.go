package cost

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"memhier/internal/core"
	"memhier/internal/machine"
)

func ws(n int, cache, mem int64, net machine.NetworkKind) machine.Config {
	return machine.Config{Name: "ws", Kind: machine.ClusterWS, N: n, Procs: 1,
		CacheBytes: cache, MemoryBytes: mem, Net: net, ClockMHz: 200}
}

func smp(n int, cache, mem int64) machine.Config {
	return machine.Config{Name: "smp", Kind: machine.SMP, N: 1, Procs: n,
		CacheBytes: cache, MemoryBytes: mem, Net: machine.NetNone, ClockMHz: 200}
}

func TestMachineCost(t *testing.T) {
	cat := DefaultCatalog()
	// Base workstation.
	got, err := cat.MachineCost(ws(1, 256<<10, 32<<20, machine.NetNone))
	if err != nil || got != 950 {
		t.Errorf("base WS = %v, %v; want 950", got, err)
	}
	// 64 MB workstation: +150.
	got, err = cat.MachineCost(ws(1, 256<<10, 64<<20, machine.NetNone))
	if err != nil || got != 1100 {
		t.Errorf("64MB WS = %v, %v; want 1100", got, err)
	}
	// 512 KB cache: +300.
	got, err = cat.MachineCost(ws(1, 512<<10, 32<<20, machine.NetNone))
	if err != nil || got != 1250 {
		t.Errorf("512KB WS = %v, %v; want 1250", got, err)
	}
	// 2-processor SMP base (64 MB): 6000; cache upgrade counts per CPU.
	got, err = cat.MachineCost(smp(2, 512<<10, 64<<20))
	if err != nil || got != 6600 {
		t.Errorf("2-proc SMP 512KB = %v, %v; want 6600", got, err)
	}
	// Unknown SMP size.
	if _, err := cat.MachineCost(smp(3, 256<<10, 64<<20)); err == nil {
		t.Error("3-processor SMP priced")
	}
}

func TestClusterCost(t *testing.T) {
	cat := DefaultCatalog()
	// Four 64MB workstations on 10Mb Ethernet: 4×(1100+75).
	got, err := cat.ClusterCost(ws(4, 256<<10, 64<<20, machine.NetBus10))
	if err != nil || got != 4*(1100+75) {
		t.Errorf("Ethernet cluster = %v, %v; want %v", got, err, 4*(1100+75))
	}
	// Three 32MB workstations on ATM: 3×(950+650).
	got, err = cat.ClusterCost(ws(3, 256<<10, 32<<20, machine.NetSwitch155))
	if err != nil || got != 3*(950+650) {
		t.Errorf("ATM cluster = %v, %v; want %v", got, err, 3*(950+650))
	}
	// Single machine pays no network.
	got, err = cat.ClusterCost(smp(2, 256<<10, 64<<20))
	if err != nil || got != 6000 {
		t.Errorf("single SMP = %v, %v; want 6000", got, err)
	}
}

// TestCaseStudyBudgetBoundaries verifies the catalog reproduces the paper's
// narrative: both §6 candidate clusters fit in $5,000, no SMP does, and
// $20,000 admits SMPs.
func TestCaseStudyBudgetBoundaries(t *testing.T) {
	cat := DefaultCatalog()
	eth, err := cat.ClusterCost(ws(4, 256<<10, 64<<20, machine.NetBus10))
	if err != nil || eth > 5000 {
		t.Errorf("4-node Ethernet cluster costs %v (err %v), must fit $5,000", eth, err)
	}
	atm, err := cat.ClusterCost(ws(3, 256<<10, 32<<20, machine.NetSwitch155))
	if err != nil || atm > 5000 {
		t.Errorf("3-node ATM cluster costs %v (err %v), must fit $5,000", atm, err)
	}
	cheapSMP, err := cat.ClusterCost(smp(2, 256<<10, 64<<20))
	if err != nil || cheapSMP <= 5000 {
		t.Errorf("cheapest SMP costs %v (err %v), must exceed $5,000", cheapSMP, err)
	}
	if cheapSMP > 20000 {
		t.Errorf("cheapest SMP costs %v, must fit $20,000", cheapSMP)
	}
}

func TestEnumerate(t *testing.T) {
	space := DefaultSpace()
	cfgs := space.Enumerate()
	if len(cfgs) == 0 {
		t.Fatal("empty enumeration")
	}
	kinds := map[machine.PlatformKind]int{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Fatalf("enumerated invalid config %+v: %v", c, err)
		}
		kinds[c.Kind]++
		if c.N > space.MaxMachines {
			t.Errorf("config exceeds MaxMachines: %+v", c)
		}
	}
	for _, k := range []machine.PlatformKind{machine.SMP, machine.ClusterWS, machine.ClusterSMP} {
		if kinds[k] == 0 {
			t.Errorf("no %v configurations enumerated", k)
		}
	}
}

func TestOptimizeRespectsBudget(t *testing.T) {
	wl, _ := core.PaperWorkload("FFT")
	best, all, err := Optimize(5000, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost > 5000 {
		t.Errorf("winner over budget: %+v", best)
	}
	for _, s := range all {
		if s.Cost > 5000 {
			t.Errorf("feasible set contains over-budget config: %+v", s)
		}
		if s.EInstr < best.EInstr {
			t.Errorf("ranking broken: %v beats winner %v", s.EInstr, best.EInstr)
		}
	}
	// $5,000 cannot buy an SMP.
	for _, s := range all {
		if s.Config.Kind != machine.ClusterWS {
			t.Errorf("non-workstation platform feasible at $5,000: %+v", s.Config)
		}
	}
}

func TestOptimizeMoreBudgetNeverWorse(t *testing.T) {
	wl, _ := core.PaperWorkload("Radix")
	small, _, err := Optimize(5000, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	large, _, err := Optimize(20000, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if large.EInstr > small.EInstr {
		t.Errorf("larger budget worse: %v vs %v", large.EInstr, small.EInstr)
	}
}

func TestOptimizeErrors(t *testing.T) {
	wl, _ := core.PaperWorkload("FFT")
	if _, _, err := Optimize(0, wl, DefaultCatalog(), DefaultSpace(), core.Options{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, _, err := Optimize(10, wl, DefaultCatalog(), DefaultSpace(), core.Options{}); err == nil {
		t.Error("infeasible budget produced a result")
	}
}

func TestUpgradeCost(t *testing.T) {
	cat := DefaultCatalog()
	old := ws(4, 256<<10, 32<<20, machine.NetBus10)

	// Add memory only: 4 machines × 32MB × 150.
	next := old
	next.MemoryBytes = 64 << 20
	got, err := cat.UpgradeCost(old, next)
	if err != nil || got != 4*150 {
		t.Errorf("memory upgrade = %v, %v; want 600", got, err)
	}
	// Add two machines on the same network: 2×(950+75).
	next = old
	next.N = 6
	got, err = cat.UpgradeCost(old, next)
	if err != nil || got != 2*(950+75) {
		t.Errorf("machine add = %v, %v; want %v", got, err, 2*(950+75))
	}
	// Network change re-equips every node.
	next = old
	next.Net = machine.NetSwitch155
	got, err = cat.UpgradeCost(old, next)
	if err != nil || got != 4*650 {
		t.Errorf("net change = %v, %v; want 2600", got, err)
	}
	// Class changes are rejected.
	bad := old
	bad.Kind = machine.ClusterSMP
	bad.Procs = 2
	if _, err := cat.UpgradeCost(old, bad); err == nil {
		t.Error("class change accepted")
	}
	shrink := old
	shrink.N = 2
	if _, err := cat.UpgradeCost(old, shrink); err == nil {
		t.Error("machine removal accepted")
	}
	// No-op upgrade is free.
	got, err = cat.UpgradeCost(old, old)
	if err != nil || got != 0 {
		t.Errorf("no-op upgrade = %v, %v; want 0", got, err)
	}
}

func TestUpgradeImproves(t *testing.T) {
	wl, _ := core.PaperWorkload("FFT")
	existing := ws(2, 256<<10, 32<<20, machine.NetBus10)
	plan, err := Upgrade(existing, 3000, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.UpgradeCost > 3000 {
		t.Errorf("plan over budget: %+v", plan)
	}
	if plan.NewEInstr > plan.OldEInstr {
		t.Errorf("upgrade made things worse: %+v", plan)
	}
	if plan.Speedup < 1 {
		t.Errorf("speedup %v < 1", plan.Speedup)
	}
	// With zero budget the plan is a no-op.
	noop, err := Upgrade(existing, 0, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(noop.To, existing) || noop.UpgradeCost != 0 || noop.Speedup != 1 {
		t.Errorf("zero-budget plan not a no-op: %+v", noop)
	}
	if _, err := Upgrade(existing, -5, wl, DefaultCatalog(), DefaultSpace(), core.Options{}); err == nil {
		t.Error("negative budget accepted")
	}
}

// TestRecommendPaperExamples reproduces the §6 classification of the
// paper's five example workloads.
func TestRecommendPaperExamples(t *testing.T) {
	want := map[string]Principle{
		"LU":    PrincipleManyWSSlowNet,
		"FFT":   PrincipleFewWSFastNet,
		"EDGE":  PrincipleBigMemorySlowNet,
		"Radix": PrincipleSMP,
		"TPC-C": PrincipleSMPOrFastSMPCluster,
	}
	for name, principle := range want {
		wl, ok := core.PaperWorkload(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		if got := Recommend(wl); got != principle {
			t.Errorf("Recommend(%s) = %v, want %v", name, got, principle)
		}
	}
}

func TestPrincipleStrings(t *testing.T) {
	for p := Principle(0); p <= PrincipleSMPOrFastSMPCluster; p++ {
		if p.String() == "" {
			t.Errorf("principle %d unnamed", int(p))
		}
	}
	if !strings.Contains(Principle(42).String(), "42") {
		t.Error("unknown principle should include its value")
	}
}

func TestUpgradeAdvice(t *testing.T) {
	wl, _ := core.PaperWorkload("EDGE")
	advice, err := UpgradeAdvice(ws(4, 256<<10, 32<<20, machine.NetBus100), wl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(advice, "capacity") && !strings.Contains(advice, "network") {
		t.Errorf("advice %q names neither lever", advice)
	}
	// A workload whose remote traffic is pure coherence (steep capacity
	// tail, measured coherence misses) is insensitive to memory capacity:
	// the paper's rule says upgrade the network first.
	coherent := wl
	coherent.Locality.Alpha = 3.5 // capacity tail vanishes fast
	coherent.CoherenceMissRate = 0.05
	advice, err = UpgradeAdvice(ws(4, 256<<10, 32<<20, machine.NetBus100), coherent, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(advice, "network bandwidth") {
		t.Errorf("coherence-bound workload should get network-first advice, got %q", advice)
	}
	// Capacity-sensitive workload (heavy tail): capacity-first advice.
	advice, err = UpgradeAdvice(ws(4, 256<<10, 32<<20, machine.NetBus100), wl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(advice, "capacity") {
		t.Errorf("capacity-sensitive workload should get capacity-first advice, got %q", advice)
	}
}

func TestEnumeratePricingTotal(t *testing.T) {
	// Every enumerated configuration must be priceable and cost more with
	// more machines, all else equal.
	cat := DefaultCatalog()
	for _, cfg := range DefaultSpace().Enumerate() {
		price, err := cat.ClusterCost(cfg)
		if err != nil {
			t.Fatalf("unpriceable config %+v: %v", cfg, err)
		}
		if price <= 0 {
			t.Fatalf("free config %+v", cfg)
		}
		if cfg.N > 1 {
			smaller := cfg
			smaller.N--
			if smaller.Validate() == nil {
				ps, err := cat.ClusterCost(smaller)
				if err == nil && ps >= price {
					t.Errorf("removing a machine did not lower cost: %+v", cfg)
				}
			}
		}
	}
}

func TestUpgradeCostMonotoneInBudgetTargets(t *testing.T) {
	cat := DefaultCatalog()
	old := ws(2, 256<<10, 32<<20, machine.NetBus10)
	// Combined upgrade = at least each single-dimension upgrade.
	combo := old
	combo.N = 4
	combo.MemoryBytes = 64 << 20
	combo.Net = machine.NetSwitch155
	comboCost, err := cat.UpgradeCost(old, combo)
	if err != nil {
		t.Fatal(err)
	}
	single := old
	single.Net = machine.NetSwitch155
	netOnly, err := cat.UpgradeCost(old, single)
	if err != nil {
		t.Fatal(err)
	}
	if comboCost <= netOnly {
		t.Errorf("combined upgrade (%v) should exceed network-only (%v)", comboCost, netOnly)
	}
}

func TestOptimizeRanksNetworkSensitivity(t *testing.T) {
	// The paper's FFT claim: with poor locality and cheap nodes, a fast
	// network beats more nodes. Verify the $5,000 FFT winner uses a faster
	// network than 10Mb Ethernet or is otherwise strictly better than the
	// best 10Mb option.
	wl, _ := core.PaperWorkload("FFT")
	best, all, err := Optimize(5000, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var best10 *Scored
	for i := range all {
		if all[i].Config.Net == machine.NetBus10 {
			best10 = &all[i]
			break
		}
	}
	if best10 == nil {
		t.Skip("no 10Mb configuration feasible")
	}
	if best.Config.Net == machine.NetBus10 {
		t.Errorf("FFT winner uses 10Mb Ethernet: %+v", best)
	}
	if math.IsNaN(best.EInstr) || best.EInstr > best10.EInstr {
		t.Errorf("winner (%v) not better than best 10Mb option (%v)", best.EInstr, best10.EInstr)
	}
}
