package cost

import (
	"testing"

	"memhier/internal/core"
	"memhier/internal/machine"
)

func TestBudgetSweep(t *testing.T) {
	wl, _ := core.PaperWorkload("Radix")
	pts, err := BudgetSweep([]float64{20000, 2000, 8000}, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty sweep")
	}
	// Sorted ascending, winners never get worse, feasible set never
	// shrinks.
	for i := 1; i < len(pts); i++ {
		if pts[i].Budget < pts[i-1].Budget {
			t.Error("sweep not sorted")
		}
		if pts[i].Best.Seconds > pts[i-1].Best.Seconds+1e-18 {
			t.Errorf("winner worsened with budget: %v after %v", pts[i].Best.Seconds, pts[i-1].Best.Seconds)
		}
		if pts[i].Feasible < pts[i-1].Feasible {
			t.Error("feasible set shrank with budget")
		}
	}
	if _, err := BudgetSweep(nil, wl, DefaultCatalog(), DefaultSpace(), core.Options{}); err == nil {
		t.Error("empty budget list accepted")
	}
	if _, err := BudgetSweep([]float64{1}, wl, DefaultCatalog(), DefaultSpace(), core.Options{}); err == nil {
		t.Error("infeasible-only sweep accepted")
	}
}

func TestCrossoversRadix(t *testing.T) {
	// The paper's WS-cluster → SMP transition for Radix must appear
	// somewhere between the $5,000 and $20,000 case studies.
	wl, _ := core.PaperWorkload("Radix")
	pts, err := BudgetSweep([]float64{3000, 5000, 8000, 12000, 20000}, wl,
		DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	xs := Crossovers(pts)
	foundToSMP := false
	for _, x := range xs {
		if x.To == machine.SMP {
			foundToSMP = true
			if x.LowBudget < 3000 || x.HighBudget > 20000 {
				t.Errorf("SMP crossover outside the studied range: %+v", x)
			}
		}
	}
	if !foundToSMP {
		t.Errorf("no WS→SMP crossover found for Radix: %+v", pts)
	}
	if got := Crossovers(pts[:1]); len(got) != 0 {
		t.Error("single point cannot cross over")
	}
}
