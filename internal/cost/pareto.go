package cost

import (
	"sort"

	"memhier/internal/core"
)

// ParetoFront returns the non-dominated configurations of the design space
// for a workload: every returned point is strictly cheaper than anything
// faster and strictly faster than anything cheaper. The front is sorted by
// ascending cost (hence descending E(Instr)) and is what a buyer actually
// chooses from — the cost/performance frontier behind the paper's eq. 6.
func ParetoFront(wl core.Workload, cat Catalog, space Space, opts core.Options) ([]Scored, error) {
	var all []Scored
	for _, cfg := range space.Enumerate() {
		price, err := cat.ClusterCost(cfg)
		if err != nil {
			continue
		}
		res, err := core.Evaluate(cfg, wl, opts)
		if err != nil {
			continue
		}
		all = append(all, Scored{Config: cfg, Cost: price, EInstr: res.EInstr, Seconds: res.Seconds})
	}
	if len(all) == 0 {
		return nil, ErrNoFeasible
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Cost != all[j].Cost {
			return all[i].Cost < all[j].Cost
		}
		return all[i].Seconds < all[j].Seconds
	})
	var front []Scored
	bestS := 0.0
	for _, s := range all {
		if len(front) == 0 || s.Seconds < bestS {
			// Same-cost duplicates: keep only the fastest (first by sort).
			if len(front) > 0 && front[len(front)-1].Cost == s.Cost {
				continue
			}
			front = append(front, s)
			bestS = s.Seconds
		}
	}
	return front, nil
}

// ErrNoFeasible reports an empty design space.
var ErrNoFeasible = errNoFeasible{}

type errNoFeasible struct{}

func (errNoFeasible) Error() string { return "cost: no evaluable configuration in the space" }

// KneePoint returns the front point with the best marginal-utility balance:
// the one maximizing the normalized distance from the segment joining the
// cheapest and fastest extremes — the usual "knee" heuristic for picking a
// budget when none is imposed.
func KneePoint(front []Scored) (Scored, error) {
	if len(front) == 0 {
		return Scored{}, ErrNoFeasible
	}
	if len(front) <= 2 {
		return front[0], nil
	}
	first, last := front[0], front[len(front)-1]
	dc := last.Cost - first.Cost
	de := last.Seconds - first.Seconds // negative: time falls along the front
	best, bestDist := front[0], -1.0
	for _, p := range front {
		// Perpendicular distance from the (cost, E) line, normalized axes.
		x := (p.Cost - first.Cost) / nonzero(dc)
		y := (p.Seconds - first.Seconds) / nonzero(de)
		d := x - y // chord runs x=y in normalized space; knee maximizes y-lag
		if d > bestDist {
			bestDist = d
			best = p
		}
	}
	return best, nil
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
