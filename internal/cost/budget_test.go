package cost

import (
	"math/rand"
	"reflect"
	"testing"

	"memhier/internal/core"
	"memhier/internal/machine"
)

// paperBudgets is the Fig. 2–4 style budget axis used across the
// equivalence tests and benchmarks.
var paperBudgets = []float64{2000, 3000, 5000, 8000, 12000, 16000, 20000, 30000, 40000, 60000}

// assertSweepEquivalent checks that a pruned sweep matches the brute-force
// sweep bit for bit: same skipped budgets, same winning configuration, and
// identical (not merely close) Cost, EInstr, and Seconds.
func assertSweepEquivalent(t *testing.T, pruned []BudgetPoint, brute []SweepPoint) {
	t.Helper()
	if len(pruned) != len(brute) {
		t.Fatalf("point count mismatch: pruned %d, brute %d", len(pruned), len(brute))
	}
	for i := range pruned {
		p, b := pruned[i], brute[i]
		if p.Budget != b.Budget {
			t.Fatalf("point %d: budget %v vs %v (different budgets skipped)", i, p.Budget, b.Budget)
		}
		if !reflect.DeepEqual(p.Best.Config, b.Best.Config) {
			t.Errorf("budget %v: winner differs:\n  pruned: %+v\n  brute:  %+v", p.Budget, p.Best.Config, b.Best.Config)
		}
		if p.Best.Cost != b.Best.Cost || p.Best.EInstr != b.Best.EInstr || p.Best.Seconds != b.Best.Seconds {
			t.Errorf("budget %v: scores not bit-identical: pruned (%v, %v, %v) vs brute (%v, %v, %v)",
				p.Budget, p.Best.Cost, p.Best.EInstr, p.Best.Seconds, b.Best.Cost, b.Best.EInstr, b.Best.Seconds)
		}
	}
}

func TestOptimizeBudgetsMatchesBruteForceDefaultSpace(t *testing.T) {
	for _, name := range []string{"FFT", "LU", "Radix", "EDGE", "TPC-C"} {
		wl, ok := core.PaperWorkload(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		pruned, stats, err := OptimizeBudgets(paperBudgets, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		brute, err := BudgetSweep(paperBudgets, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
		if err != nil {
			t.Fatalf("%s: brute: %v", name, err)
		}
		assertSweepEquivalent(t, pruned, brute)
		if stats.Evaluated > stats.Configs {
			t.Errorf("%s: evaluated %d of %d configs — memoization broken", name, stats.Evaluated, stats.Configs)
		}
		if stats.Pruned == 0 {
			t.Errorf("%s: pruning never fired on the default space (stats %+v)", name, stats)
		}
		t.Logf("%s: %+v", name, stats)
	}
}

// TestOptimizeBudgetsMatchesBruteForce is the randomized equivalence
// property: on arbitrary subspaces of the catalog's domain, the pruned
// search and the per-budget brute force must agree bit for bit.
func TestOptimizeBudgetsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pick := func(n int) int { return 1 + rng.Intn(n) } // 1..n
	subset := func(k int, opts []int64) []int64 {
		out := append([]int64(nil), opts...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out[:k]
	}
	allNets := []machine.NetworkKind{machine.NetBus10, machine.NetBus100, machine.NetSwitch155}
	wls := make([]core.Workload, 0, 5)
	for _, name := range []string{"FFT", "LU", "Radix", "EDGE", "TPC-C"} {
		wl, ok := core.PaperWorkload(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		wls = append(wls, wl)
	}
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		space := Space{
			MaxMachines:   pick(6),
			SMPSizes:      [][]int{{2}, {4}, {2, 4}}[rng.Intn(3)],
			CacheOptions:  subset(pick(2), []int64{256 << 10, 512 << 10}),
			MemoryOptions: subset(pick(3), []int64{32 << 20, 64 << 20, 128 << 20}),
			Networks:      allNets[:pick(3)],
			ClockMHz:      200,
		}
		if rng.Intn(3) == 0 {
			space.ClockOptions = []float64{200, 300}
		}
		budgets := make([]float64, 1+rng.Intn(8))
		for i := range budgets {
			budgets[i] = float64(500 + rng.Intn(40000))
		}
		wl := wls[rng.Intn(len(wls))]

		pruned, _, prunedErr := OptimizeBudgets(budgets, wl, DefaultCatalog(), space, core.Options{})
		brute, bruteErr := BudgetSweep(budgets, wl, DefaultCatalog(), space, core.Options{})
		if (prunedErr == nil) != (bruteErr == nil) {
			t.Fatalf("trial %d (space %+v, budgets %v): error mismatch: pruned %v, brute %v",
				trial, space, budgets, prunedErr, bruteErr)
		}
		if prunedErr != nil {
			continue
		}
		assertSweepEquivalent(t, pruned, brute)
	}
}

func TestOptimizeBudgetsErrorsAndEdgeCases(t *testing.T) {
	wl, _ := core.PaperWorkload("FFT")
	if _, _, err := OptimizeBudgets(nil, wl, DefaultCatalog(), DefaultSpace(), core.Options{}); err == nil {
		t.Error("empty budget list accepted")
	}
	if _, _, err := OptimizeBudgets([]float64{10}, wl, DefaultCatalog(), DefaultSpace(), core.Options{}); err == nil {
		t.Error("infeasible-only sweep produced points")
	}
	// Non-positive budgets are skipped, not fatal — and infeasible low
	// budgets drop out exactly as in BudgetSweep.
	pts, _, err := OptimizeBudgets([]float64{-100, 0, 10, 5000}, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Budget != 5000 {
		t.Fatalf("want the single $5,000 point, got %+v", pts)
	}
	if pts[0].Best.Cost > 5000 {
		t.Errorf("winner over budget: %+v", pts[0].Best)
	}
	if pts[0].Candidates <= 0 {
		t.Errorf("no candidates counted: %+v", pts[0])
	}
}

func TestOptimizeBudgetsCandidatesMonotone(t *testing.T) {
	wl, _ := core.PaperWorkload("LU")
	pts, _, err := OptimizeBudgets(paperBudgets, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Budget < pts[i-1].Budget {
			t.Error("points not sorted by budget")
		}
		if pts[i].Candidates < pts[i-1].Candidates {
			t.Error("candidate set shrank with budget")
		}
		if pts[i].Best.Seconds > pts[i-1].Best.Seconds {
			t.Errorf("winner worsened with budget: %v after %v", pts[i].Best.Seconds, pts[i-1].Best.Seconds)
		}
	}
}

func BenchmarkOptimizeBudgetsPruned(b *testing.B) {
	wl, _ := core.PaperWorkload("Radix")
	cat, space := DefaultCatalog(), DefaultSpace()
	b.ReportAllocs()
	var stats SweepStats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = OptimizeBudgets(paperBudgets, wl, cat, space, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Evaluated), "evals/op")
}

func BenchmarkBudgetSweepBrute(b *testing.B) {
	wl, _ := core.PaperWorkload("Radix")
	cat, space := DefaultCatalog(), DefaultSpace()
	b.ReportAllocs()
	evals := 0
	for i := 0; i < b.N; i++ {
		pts, err := BudgetSweep(paperBudgets, wl, cat, space, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		evals = 0
		for _, p := range pts {
			evals += p.Feasible
		}
	}
	b.ReportMetric(float64(evals), "evals/op")
}
