// Package cost implements the paper's cost model (eq. 5) and the
// constrained optimization of eq. 6: choose the number of machines N, the
// processors per machine n, the network type, and the cache/memory sizes
// that minimize the modeled E(Instr) subject to
//
//	C_cluster = N·C_machine(n) + N·C_net ≤ B,
//
// solved — as the paper does — by enumerating the (small) integer domain.
// It also implements the §6 upgrade problem: given an existing cluster and
// a budget increase B′, find the best reachable configuration.
package cost

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"memhier/internal/core"
	"memhier/internal/machine"
)

// Catalog prices the system components. DefaultCatalog encodes 1999-era
// estimates consistent with the paper's case-study narrative (a $5,000
// budget buys either four 64 MB workstations on Ethernet or three 32 MB
// workstations on an ATM switch, and cannot buy SMPs; $20,000 opens the SMP
// space). Absolute dollars only scale the budget axis.
type Catalog struct {
	// WSBase is a 200 MHz uniprocessor workstation with 256 KB cache and
	// 32 MB memory.
	WSBase float64
	// SMPBase prices an n-processor SMP machine with 256 KB caches and
	// 64 MB memory, keyed by n.
	SMPBase map[int]float64
	// CacheUpgrade is the per-processor cost of moving 256 KB → 512 KB.
	CacheUpgrade float64
	// MemoryPer32MB is the cost of each additional 32 MB of memory.
	MemoryPer32MB float64
	// NetPerNode is the per-machine cost of the cluster network (NIC plus
	// hub/switch-port share).
	NetPerNode map[machine.NetworkKind]float64
	// CPUPer100MHz is the per-processor premium of each 100 MHz of clock
	// above the 200 MHz baseline (slower clocks earn no refund).
	CPUPer100MHz float64
	// DeepCachePerMB is the per-processor cost of each MB of capacity in
	// cache levels beyond the first (L2/L3). Level-1 capacity is priced by
	// CacheUpgrade as before, so one-level platforms cost exactly what
	// they always did.
	DeepCachePerMB float64
}

// DefaultCatalog returns the 1999-era price estimates.
func DefaultCatalog() Catalog {
	return Catalog{
		WSBase:        950,
		SMPBase:       map[int]float64{2: 6000, 4: 11000},
		CacheUpgrade:  300,
		MemoryPer32MB: 150,
		NetPerNode: map[machine.NetworkKind]float64{
			machine.NetNone:      0,
			machine.NetBus10:     75,
			machine.NetBus100:    150,
			machine.NetSwitch155: 650,
		},
		CPUPer100MHz:   500,
		DeepCachePerMB: 200,
	}
}

const (
	baseCache = 256 << 10
	mb32      = 32 << 20
)

// deepBytes sums the capacity of every cache level beyond the first.
func deepBytes(cfg machine.Config) int64 {
	var total int64
	if levels := cfg.CacheLevels(); len(levels) > 1 {
		for _, lv := range levels[1:] {
			total += lv.Bytes
		}
	}
	return total
}

// MachineCost prices one machine of the configuration (C_machine(n) in
// eq. 5).
func (c Catalog) MachineCost(cfg machine.Config) (float64, error) {
	var price float64
	var baseMem int64
	if cfg.Procs == 1 && cfg.Kind != machine.ClusterSMP && cfg.Kind != machine.SMP {
		price = c.WSBase
		baseMem = mb32
	} else {
		p, ok := c.SMPBase[cfg.Procs]
		if !ok {
			return 0, fmt.Errorf("cost: no price for a %d-processor SMP", cfg.Procs)
		}
		price = p
		baseMem = 2 * mb32
	}
	if cfg.CacheBytes > baseCache {
		steps := float64(cfg.CacheBytes-baseCache) / float64(baseCache)
		price += steps * c.CacheUpgrade * float64(cfg.Procs)
	}
	if levels := cfg.CacheLevels(); len(levels) > 1 {
		for _, lv := range levels[1:] {
			price += float64(lv.Bytes) / (1 << 20) * c.DeepCachePerMB * float64(cfg.Procs)
		}
	}
	if cfg.MemoryBytes > baseMem {
		price += float64(cfg.MemoryBytes-baseMem) / mb32 * c.MemoryPer32MB
	}
	if cfg.ClockMHz > machine.ReferenceClockMHz {
		price += (cfg.ClockMHz - machine.ReferenceClockMHz) / 100 * c.CPUPer100MHz * float64(cfg.Procs)
	}
	return price, nil
}

// ClusterCost prices the whole platform: N·C_machine(n) + N·C_net (eq. 5).
func (c Catalog) ClusterCost(cfg machine.Config) (float64, error) {
	m, err := c.MachineCost(cfg)
	if err != nil {
		return 0, err
	}
	net, ok := c.NetPerNode[cfg.Net]
	if !ok {
		return 0, fmt.Errorf("cost: no price for network %v", cfg.Net)
	}
	if cfg.N == 1 {
		net = 0
	}
	return float64(cfg.N) * (m + net), nil
}

// Space is the enumeration domain of the optimizer.
type Space struct {
	MaxMachines   int
	SMPSizes      []int   // processors per SMP machine
	CacheOptions  []int64 // per-processor cache sizes (one-level hierarchies)
	MemoryOptions []int64 // per-machine memory sizes
	// DeepOptions adds multi-level hierarchy choices beside CacheOptions:
	// each entry is a full per-processor level stack, innermost first.
	DeepOptions [][]machine.CacheLevel
	Networks    []machine.NetworkKind
	ClockMHz    float64
	// ClockOptions adds alternative processor clocks to the enumeration
	// (empty means ClockMHz only). With mixed clocks the optimizer ranks
	// by wall seconds, not cycles.
	ClockOptions []float64
}

// DefaultSpace returns the domain used in the paper's case studies:
// clusters of up to 16 machines, 2- or 4-processor SMPs, 256/512 KB caches,
// 32–128 MB memories, and the three networks of §5.1.
func DefaultSpace() Space {
	return Space{
		MaxMachines:   16,
		SMPSizes:      []int{2, 4},
		CacheOptions:  []int64{256 << 10, 512 << 10},
		MemoryOptions: []int64{32 << 20, 64 << 20, 128 << 20},
		Networks:      []machine.NetworkKind{machine.NetBus10, machine.NetBus100, machine.NetSwitch155},
		ClockMHz:      200,
	}
}

// Enumerate generates every structurally valid configuration in the space:
// single SMPs, clusters of workstations, and clusters of SMPs, at every
// clock option.
func (s Space) Enumerate() []machine.Config {
	clocks := s.ClockOptions
	if len(clocks) == 0 {
		clocks = []float64{s.ClockMHz}
	}
	var out []machine.Config
	for _, clock := range clocks {
		out = append(out, s.enumerateAt(clock)...)
	}
	return out
}

func (s Space) enumerateAt(clock float64) []machine.Config {
	s.ClockMHz = clock
	var out []machine.Config
	add := func(c machine.Config) {
		if c.Validate() == nil {
			c.Name = describe(c)
			out = append(out, c)
		}
	}
	// The cache axis: every one-level option, then every deep stack.
	type hierOpt struct {
		cache  int64
		levels []machine.CacheLevel
	}
	hiers := make([]hierOpt, 0, len(s.CacheOptions)+len(s.DeepOptions))
	for _, cache := range s.CacheOptions {
		hiers = append(hiers, hierOpt{cache: cache})
	}
	for _, lv := range s.DeepOptions {
		if len(lv) > 0 {
			hiers = append(hiers, hierOpt{cache: lv[0].Bytes, levels: lv})
		}
	}
	for _, h := range hiers {
		for _, mem := range s.MemoryOptions {
			// Single SMPs.
			for _, n := range s.SMPSizes {
				add(machine.Config{Kind: machine.SMP, N: 1, Procs: n,
					CacheBytes: h.cache, Levels: h.levels, MemoryBytes: mem, Net: machine.NetNone, ClockMHz: s.ClockMHz})
			}
			for N := 1; N <= s.MaxMachines; N++ {
				nets := s.Networks
				if N == 1 {
					nets = []machine.NetworkKind{machine.NetNone}
				}
				for _, net := range nets {
					// Clusters of workstations.
					add(machine.Config{Kind: machine.ClusterWS, N: N, Procs: 1,
						CacheBytes: h.cache, Levels: h.levels, MemoryBytes: mem, Net: net, ClockMHz: s.ClockMHz})
					// Clusters of SMPs (N >= 2 to be a cluster).
					if N >= 2 {
						for _, n := range s.SMPSizes {
							add(machine.Config{Kind: machine.ClusterSMP, N: N, Procs: n,
								CacheBytes: h.cache, Levels: h.levels, MemoryBytes: mem, Net: net, ClockMHz: s.ClockMHz})
						}
					}
				}
			}
		}
	}
	return out
}

func describe(c machine.Config) string {
	clock := ""
	if c.ClockMHz != machine.ReferenceClockMHz {
		clock = fmt.Sprintf(" @%gMHz", c.ClockMHz)
	}
	// CacheDesc spells one-level hierarchies "%dKB" exactly as the old
	// format string did, and lists the levels ("32KB+1MB") otherwise.
	switch c.Kind {
	case machine.SMP:
		return fmt.Sprintf("SMP n=%d cache=%s mem=%dMB%s",
			c.Procs, c.CacheDesc(), c.MemoryBytes>>20, clock)
	case machine.ClusterWS:
		return fmt.Sprintf("WSx%d cache=%s mem=%dMB net=%v%s",
			c.N, c.CacheDesc(), c.MemoryBytes>>20, c.Net, clock)
	default:
		return fmt.Sprintf("SMP%dx%d cache=%s mem=%dMB net=%v%s",
			c.Procs, c.N, c.CacheDesc(), c.MemoryBytes>>20, c.Net, clock)
	}
}

// Scored is one feasible configuration with its price and modeled
// performance.
type Scored struct {
	Config machine.Config `json:"config"`
	Cost   float64        `json:"cost"`
	EInstr float64        `json:"e_instr_cycles"` // modeled cycles per instruction (cluster-wide)
	// Seconds is EInstr in wall time — the ranking key, so platforms with
	// different clocks compare fairly.
	Seconds float64 `json:"seconds"`
}

// Optimize solves eq. 6: the feasible configuration with minimal modeled
// E(Instr) under the budget. It returns the winner and the full feasible
// ranking (best first). Configurations whose model evaluation fails (e.g.
// saturation) are skipped.
func Optimize(budget float64, wl core.Workload, cat Catalog, space Space, opts core.Options) (Scored, []Scored, error) {
	if budget <= 0 {
		return Scored{}, nil, fmt.Errorf("cost: budget must be positive, got %v", budget)
	}
	var feasible []Scored
	for _, cfg := range space.Enumerate() {
		price, err := cat.ClusterCost(cfg)
		if err != nil || price > budget {
			continue
		}
		res, err := core.Evaluate(cfg, wl, opts)
		if err != nil {
			continue
		}
		feasible = append(feasible, Scored{Config: cfg, Cost: price,
			EInstr: res.EInstr, Seconds: res.Seconds})
	}
	if len(feasible) == 0 {
		return Scored{}, nil, errors.New("cost: no feasible configuration under the budget")
	}
	// Stable so full (Seconds, Cost) ties keep enumeration order — the
	// tie-break contract OptimizeBudgets reproduces bit-identically.
	sort.SliceStable(feasible, func(i, j int) bool {
		if feasible[i].Seconds != feasible[j].Seconds {
			return feasible[i].Seconds < feasible[j].Seconds
		}
		return feasible[i].Cost < feasible[j].Cost
	})
	return feasible[0], feasible, nil
}

// UpgradeCost prices moving an existing homogeneous cluster to a new
// configuration of the same platform kind and machine class: new machines
// are bought at the target spec, existing machines are retrofitted with the
// cache/memory difference, and a network change re-equips every node (the
// old interface is sunk cost). Shrinking any dimension is not a purchase
// and costs nothing for that dimension.
func (c Catalog) UpgradeCost(old, next machine.Config) (float64, error) {
	if next.Kind != old.Kind || next.Procs != old.Procs {
		return 0, fmt.Errorf("cost: upgrades keep the machine class (%v n=%d → %v n=%d)",
			old.Kind, old.Procs, next.Kind, next.Procs)
	}
	if next.N < old.N {
		return 0, fmt.Errorf("cost: upgrades do not remove machines (%d → %d)", old.N, next.N)
	}
	if next.ClockMHz != old.ClockMHz {
		return 0, fmt.Errorf("cost: upgrades keep the processor clock (%g → %g MHz)", old.ClockMHz, next.ClockMHz)
	}
	var total float64
	// New machines at full target spec.
	if next.N > old.N {
		m, err := c.MachineCost(next)
		if err != nil {
			return 0, err
		}
		total += float64(next.N-old.N) * m
	}
	// Retrofit the existing machines.
	if next.CacheBytes > old.CacheBytes {
		steps := float64(next.CacheBytes-old.CacheBytes) / float64(baseCache)
		total += float64(old.N) * steps * c.CacheUpgrade * float64(old.Procs)
	}
	if next.MemoryBytes > old.MemoryBytes {
		total += float64(old.N) * float64(next.MemoryBytes-old.MemoryBytes) / mb32 * c.MemoryPer32MB
	}
	if dn, do := deepBytes(next), deepBytes(old); dn > do {
		total += float64(old.N) * float64(dn-do) / (1 << 20) * c.DeepCachePerMB * float64(old.Procs)
	}
	// Network change: every node needs the new interface. Added nodes on an
	// unchanged network still need one each.
	netNew, ok := c.NetPerNode[next.Net]
	if !ok {
		return 0, fmt.Errorf("cost: no price for network %v", next.Net)
	}
	if next.N > 1 {
		if next.Net != old.Net {
			total += float64(next.N) * netNew
		} else if next.N > old.N {
			total += float64(next.N-old.N) * netNew
		}
	}
	return total, nil
}

// UpgradePlan is the outcome of the upgrade optimization.
type UpgradePlan struct {
	From        machine.Config `json:"from"`
	To          machine.Config `json:"to"`
	UpgradeCost float64        `json:"upgrade_cost"`
	OldEInstr   float64        `json:"old_e_instr_cycles"`
	NewEInstr   float64        `json:"new_e_instr_cycles"`
	Speedup     float64        `json:"speedup"` // OldEInstr / NewEInstr
}

// Upgrade finds the best configuration reachable from the existing cluster
// with at most budgetIncrease of new spending (the paper's second
// optimization problem). The machine class is fixed; machines, memory,
// cache, and the network are upgradable.
func Upgrade(existing machine.Config, budgetIncrease float64, wl core.Workload,
	cat Catalog, space Space, opts core.Options) (UpgradePlan, error) {
	if err := existing.Validate(); err != nil {
		return UpgradePlan{}, err
	}
	if budgetIncrease < 0 {
		return UpgradePlan{}, fmt.Errorf("cost: negative budget increase %v", budgetIncrease)
	}
	baseRes, err := core.Evaluate(existing, wl, opts)
	if err != nil {
		return UpgradePlan{}, fmt.Errorf("cost: evaluating existing cluster: %w", err)
	}
	best := UpgradePlan{From: existing, To: existing, OldEInstr: baseRes.EInstr,
		NewEInstr: baseRes.EInstr, Speedup: 1}
	for _, cfg := range space.Enumerate() {
		if cfg.Kind != existing.Kind || cfg.Procs != existing.Procs || cfg.N < existing.N {
			continue
		}
		if cfg.CacheBytes < existing.CacheBytes || cfg.MemoryBytes < existing.MemoryBytes ||
			deepBytes(cfg) < deepBytes(existing) {
			continue
		}
		price, err := cat.UpgradeCost(existing, cfg)
		if err != nil || price > budgetIncrease {
			continue
		}
		res, err := core.Evaluate(cfg, wl, opts)
		if err != nil {
			continue
		}
		if res.EInstr < best.NewEInstr {
			best.To = cfg
			best.UpgradeCost = price
			best.NewEInstr = res.EInstr
			best.Speedup = best.OldEInstr / res.EInstr
		}
	}
	if math.IsNaN(best.Speedup) {
		return UpgradePlan{}, errors.New("cost: degenerate upgrade evaluation")
	}
	return best, nil
}
