package cost

import (
	"fmt"
	"sort"

	"memhier/internal/core"
	"memhier/internal/machine"
)

// SweepPoint is one budget of a sweep: the winning configuration at that
// spend level.
type SweepPoint struct {
	Budget float64
	Best   Scored
	// Feasible counts the configurations under the budget.
	Feasible int
}

// BudgetSweep runs the eq. 6 optimization at each budget (ascending) and
// returns the winners. Budgets with no feasible configuration are skipped.
func BudgetSweep(budgets []float64, wl core.Workload, cat Catalog, space Space, opts core.Options) ([]SweepPoint, error) {
	if len(budgets) == 0 {
		return nil, fmt.Errorf("cost: empty budget list")
	}
	sorted := append([]float64(nil), budgets...)
	sort.Float64s(sorted)
	var out []SweepPoint
	for _, b := range sorted {
		best, all, err := Optimize(b, wl, cat, space, opts)
		if err != nil {
			continue
		}
		out = append(out, SweepPoint{Budget: b, Best: best, Feasible: len(all)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cost: no budget in the sweep is feasible")
	}
	return out, nil
}

// Crossover is a budget interval across which the winning platform family
// changes — e.g. the workstation-cluster → SMP transition of the paper's
// case studies.
type Crossover struct {
	LowBudget, HighBudget float64
	From, To              machine.PlatformKind
}

// Crossovers extracts the platform-family transitions from a sweep.
func Crossovers(points []SweepPoint) []Crossover {
	var out []Crossover
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		if a.Best.Config.Kind != b.Best.Config.Kind {
			out = append(out, Crossover{
				LowBudget:  a.Budget,
				HighBudget: b.Budget,
				From:       a.Best.Config.Kind,
				To:         b.Best.Config.Kind,
			})
		}
	}
	return out
}
