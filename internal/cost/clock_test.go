package cost

import (
	"math"
	"testing"

	"memhier/internal/core"
	"memhier/internal/machine"
)

func TestClockOptionsEnumeration(t *testing.T) {
	space := DefaultSpace()
	single := len(space.Enumerate())
	space.ClockOptions = []float64{200, 400}
	double := space.Enumerate()
	if len(double) != 2*single {
		t.Errorf("two clocks should double the space: %d vs %d", len(double), single)
	}
	seen := map[float64]bool{}
	for _, c := range double {
		seen[c.ClockMHz] = true
		if c.ClockMHz == 400 && c.Name == "" {
			t.Error("unnamed 400MHz config")
		}
	}
	if !seen[200] || !seen[400] {
		t.Errorf("clocks missing from enumeration: %+v", seen)
	}
}

func TestFasterCPUCostsMore(t *testing.T) {
	cat := DefaultCatalog()
	base := ws(1, 256<<10, 32<<20, machine.NetNone)
	fast := base
	fast.ClockMHz = 400
	pBase, err := cat.MachineCost(base)
	if err != nil {
		t.Fatal(err)
	}
	pFast, err := cat.MachineCost(fast)
	if err != nil {
		t.Fatal(err)
	}
	if pFast != pBase+2*500 {
		t.Errorf("400MHz premium wrong: %v vs %v", pFast, pBase)
	}
	// SMPs pay per processor.
	s := smp(4, 256<<10, 64<<20)
	s.ClockMHz = 300
	pSMP, err := cat.MachineCost(s)
	if err != nil {
		t.Fatal(err)
	}
	s.ClockMHz = 200
	pSMP200, err := cat.MachineCost(s)
	if err != nil {
		t.Fatal(err)
	}
	if pSMP != pSMP200+4*500 {
		t.Errorf("SMP clock premium wrong: %v vs %v", pSMP, pSMP200)
	}
	// No refund below the baseline.
	slow := base
	slow.ClockMHz = 100
	pSlow, err := cat.MachineCost(slow)
	if err != nil || pSlow != pBase {
		t.Errorf("slow clock priced %v, want %v", pSlow, pBase)
	}
}

// TestOptimizeRanksBySeconds: with mixed clocks, cycle counts are not
// comparable; the winner must be the wall-time best.
func TestOptimizeRanksBySeconds(t *testing.T) {
	wl, _ := core.PaperWorkload("LU")
	space := DefaultSpace()
	space.ClockOptions = []float64{200, 400}
	best, all, err := Optimize(30000, wl, DefaultCatalog(), space, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if s.Seconds < best.Seconds-1e-18 {
			t.Errorf("ranking broken: %v s beats winner's %v s", s.Seconds, best.Seconds)
		}
		if s.Seconds <= 0 {
			t.Errorf("missing Seconds on %+v", s)
		}
	}
}

// TestSpeedGapInOptimizer: because memory and network are wall-time
// devices, doubling the clock must *not* halve wall time — the model's
// diminishing return that makes "more machines" competitive with "faster
// machines".
func TestSpeedGapInOptimizer(t *testing.T) {
	wl, _ := core.PaperWorkload("Radix") // memory bound: the wall bites hardest
	cfg := smp(4, 256<<10, 128<<20)
	r200, err := core.Evaluate(cfg, wl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.ClockMHz = 400
	r400, err := core.Evaluate(cfg, wl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := r200.Seconds / r400.Seconds
	if speedup >= 1.9 {
		t.Errorf("2x clock gave %vx on a memory-bound code — wall missing", speedup)
	}
	if speedup <= 1 {
		t.Errorf("faster clock should still help some: %vx", speedup)
	}
	if math.IsNaN(speedup) {
		t.Fatal("NaN speedup")
	}
}

func TestUpgradeRejectsClockChange(t *testing.T) {
	cat := DefaultCatalog()
	old := ws(2, 256<<10, 32<<20, machine.NetBus10)
	next := old
	next.ClockMHz = 400
	if _, err := cat.UpgradeCost(old, next); err == nil {
		t.Error("clock change accepted in an upgrade")
	}
}
