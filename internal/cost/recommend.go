package cost

import (
	"fmt"

	"memhier/internal/core"
	"memhier/internal/machine"
)

// Principle is one of the paper's §6 workload-class recommendations for
// building a cost-effective cluster.
type Principle int

// The five §6 principles, in the paper's order.
const (
	// PrincipleManyWSSlowNet: CPU bound with good locality → a slow network
	// of a large number of high-speed workstations (example: LU).
	PrincipleManyWSSlowNet Principle = iota
	// PrincipleFewWSFastNet: CPU bound with poor locality → a fast network
	// of a small number of high-speed workstations (example: FFT).
	PrincipleFewWSFastNet
	// PrincipleBigMemorySlowNet: memory bound with good locality → a slow
	// network of workstations with large memories (example: EDGE).
	PrincipleBigMemorySlowNet
	// PrincipleSMP: memory bound with poor locality → an SMP (example:
	// Radix).
	PrincipleSMP
	// PrincipleSMPOrFastSMPCluster: memory and I/O bound with a very large
	// β → an SMP or a fast cluster of SMPs (example: TPC-C).
	PrincipleSMPOrFastSMPCluster
)

// String returns the recommendation text.
func (p Principle) String() string {
	switch p {
	case PrincipleManyWSSlowNet:
		return "slow network of a large number of high-speed workstations"
	case PrincipleFewWSFastNet:
		return "fast network of a small number of high-speed workstations"
	case PrincipleBigMemorySlowNet:
		return "slow network of workstations with a large capacity of memories"
	case PrincipleSMP:
		return "an SMP (processor count may be limited)"
	case PrincipleSMPOrFastSMPCluster:
		return "an SMP or a fast cluster of SMPs"
	}
	return fmt.Sprintf("Principle(%d)", int(p))
}

// Classification thresholds, from the paper's examples: γ below ~0.35 reads
// as CPU bound (FFT 0.20, LU 0.31) and above as memory bound (Radix 0.37,
// EDGE 0.45); β under 100 is good locality, over 100 poor; TPC-C's β over
// 1000 is "very large".
const (
	gammaMemoryBound = 0.35
	betaPoorLocality = 100
	betaVeryLarge    = 1000
)

// Recommend classifies a workload into the paper's §6 principles.
func Recommend(wl core.Workload) Principle {
	gamma := wl.Locality.Gamma
	beta := wl.Locality.Beta
	switch {
	case gamma >= gammaMemoryBound && beta >= betaVeryLarge:
		return PrincipleSMPOrFastSMPCluster
	case gamma < gammaMemoryBound && beta < betaPoorLocality:
		return PrincipleManyWSSlowNet
	case gamma < gammaMemoryBound:
		return PrincipleFewWSFastNet
	case beta < betaPoorLocality:
		return PrincipleBigMemorySlowNet
	default:
		return PrincipleSMP
	}
}

// UpgradeAdvice is the paper's final §6 recommendation: spend first on
// cache/memory capacity to cut network usage; if network traffic is
// insensitive to capacity, upgrade the network bandwidth first. The
// decision probe compares the modeled remote traffic before and after a
// hypothetical memory doubling.
func UpgradeAdvice(cfg machine.Config, wl core.Workload, opts core.Options) (string, error) {
	base, err := core.Evaluate(cfg, wl, opts)
	if err != nil {
		return "", err
	}
	bigger := cfg
	bigger.MemoryBytes *= 2
	grown, err := core.Evaluate(bigger, wl, opts)
	if err != nil {
		return "", err
	}
	remote := func(r core.Result) float64 {
		for _, lv := range r.Levels {
			if lv.Name == "remote memory" {
				return lv.MissFraction
			}
		}
		return 0
	}
	b, g := remote(base), remote(grown)
	if b > 0 && (b-g)/b < 0.05 {
		return "network activity is nearly independent of memory capacity: upgrade the cluster network bandwidth first", nil
	}
	return "spend first on increasing cache/memory capacity to reduce network usage", nil
}
