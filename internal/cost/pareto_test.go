package cost

import (
	"reflect"
	"testing"

	"memhier/internal/core"
)

func TestParetoFrontProperties(t *testing.T) {
	wl, _ := core.PaperWorkload("FFT")
	front, err := ParetoFront(wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("suspiciously small front: %d points", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].Cost <= front[i-1].Cost {
			t.Errorf("front not strictly increasing in cost at %d: %v <= %v",
				i, front[i].Cost, front[i-1].Cost)
		}
		if front[i].EInstr >= front[i-1].EInstr {
			t.Errorf("front not strictly decreasing in E at %d: %v >= %v",
				i, front[i].EInstr, front[i-1].EInstr)
		}
	}
	// Non-domination against the whole space: the eq. 6 winner at any
	// budget must match a front point's E(Instr).
	for _, budget := range []float64{3000, 8000, 25000} {
		best, _, err := Optimize(budget, wl, DefaultCatalog(), DefaultSpace(), core.Options{})
		if err != nil {
			continue
		}
		var frontBestE float64
		found := false
		for _, p := range front {
			if p.Cost <= budget {
				frontBestE = p.EInstr
				found = true
			}
		}
		if !found {
			t.Errorf("budget %v: no front point within budget", budget)
			continue
		}
		if best.EInstr < frontBestE-1e-9 {
			t.Errorf("budget %v: optimizer found %v better than front's %v", budget, best.EInstr, frontBestE)
		}
	}
}

func TestKneePoint(t *testing.T) {
	wl, _ := core.PaperWorkload("EDGE")
	front, err := ParetoFront(wl, DefaultCatalog(), DefaultSpace(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	knee, err := KneePoint(front)
	if err != nil {
		t.Fatal(err)
	}
	onFront := false
	for _, p := range front {
		if reflect.DeepEqual(p.Config, knee.Config) {
			onFront = true
		}
	}
	if !onFront {
		t.Error("knee not on the front")
	}
	// Degenerate inputs.
	if _, err := KneePoint(nil); err == nil {
		t.Error("empty front accepted")
	}
	single := front[:1]
	k, err := KneePoint(single)
	if err != nil || !reflect.DeepEqual(k.Config, single[0].Config) {
		t.Errorf("single-point knee: %+v, %v", k, err)
	}
}
