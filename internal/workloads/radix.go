package workloads

import (
	"fmt"
	"math/bits"

	"memhier/internal/trace"
)

// Radix is the SPLASH-2-style iterative radix sort kernel (paper §5.2): it
// sorts 32-bit keys in one pass per radix-r digit. Each pass builds
// per-processor histograms over contiguously partitioned keys, computes
// global bucket offsets with a parallel-over-buckets prefix phase, and
// permutes the keys into the destination array. Source and destination
// arrays ping-pong between passes.
type Radix struct {
	keys  int // number of keys
	radix int // bucket count per pass, a power of two
}

// NewRadix returns the kernel for the given key count and radix. It panics
// if the radix is not a power of two >= 2 or keys <= 0.
func NewRadix(keys, radix int) *Radix {
	if keys <= 0 || radix < 2 || bits.OnesCount(uint(radix)) != 1 {
		panic(fmt.Sprintf("workloads: bad radix sort config keys=%d radix=%d", keys, radix))
	}
	return &Radix{keys: keys, radix: radix}
}

// Name implements Workload.
func (r *Radix) Name() string { return "Radix" }

// EventHint implements EventHinter. Each pass histograms and permutes every
// key (~9 events per key per pass measured after register filtering); the
// radix term covers the per-processor histogram-merge and bucket-offset
// phases, which scan other processors' histograms and so do not shrink
// with nproc.
func (r *Radix) EventHint(nproc int) int {
	logR := bits.Len(uint(r.radix - 1))
	passes := (32 + logR - 1) / logR
	return 10*r.keys*passes/nproc + 8*r.radix*passes
}

// Description implements Workload.
func (r *Radix) Description() string {
	return fmt.Sprintf("radix sort, %d keys, radix %d", r.keys, r.radix)
}

// Keys returns the number of keys sorted.
func (r *Radix) Keys() int { return r.keys }

// Input returns the deterministic unsorted key array.
func (r *Radix) Input() []uint32 {
	k := make([]uint32, r.keys)
	state := uint32(0x9e3779b9)
	for i := range k {
		// xorshift32: fast deterministic pseudo-random keys.
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		k[i] = state
	}
	return k
}

// Run implements Workload.
func (r *Radix) Run(nproc int, sink trace.Sink) error {
	_, err := r.Sort(nproc, sink)
	return err
}

// Sort runs the instrumented sort and returns the sorted keys.
func (r *Radix) Sort(nproc int, sink trace.Sink) ([]uint32, error) {
	if nproc < 1 {
		return nil, fmt.Errorf("workloads: Radix needs nproc >= 1, got %d", nproc)
	}
	nk, R := r.keys, r.radix
	logR := bits.TrailingZeros(uint(R))
	passes := (32 + logR - 1) / logR

	src := r.Input()
	dst := make([]uint32, nk)

	as := trace.NewAddressSpace()
	regSrc := as.Alloc("radix.src", uint64(nk)*4, 64)
	regDst := as.Alloc("radix.dst", uint64(nk)*4, 64)
	regHist := as.Alloc("radix.hist", uint64(nproc)*uint64(R)*4, 64)
	regBase := as.Alloc("radix.base", uint64(R)*4, 64)
	regOff := as.Alloc("radix.off", uint64(nproc)*uint64(R)*4, 64)

	hist := make([]uint32, nproc*R)   // hist[p*R + b]
	base := make([]uint32, R)         // exclusive prefix of bucket totals
	offset := make([]uint32, nproc*R) // starting write position per (p, bucket)

	run := newRunner(nproc, sink)

	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * logR)
		mask := uint32(R - 1)

		// Phase 1: per-processor local histograms.
		run.Each(func(p *proc) {
			for b := 0; b < R; b++ {
				hist[p.cpu*R+b] = 0
				p.Compute(2)
				p.Write(regHist.Index(p.cpu*R+b, 4))
			}
			lo, hi := block(nk, nproc, p.cpu)
			for i := lo; i < hi; i++ {
				p.Read(regSrc.Index(i, 4))
				b := int((src[i] >> shift) & mask)
				p.Compute(5)
				p.Read(regHist.Index(p.cpu*R+b, 4))
				hist[p.cpu*R+b]++
				p.Write(regHist.Index(p.cpu*R+b, 4))
			}
		})
		run.Barrier()

		// Phase 2a: bucket totals, parallel over buckets.
		run.Each(func(p *proc) {
			lo, hi := block(R, nproc, p.cpu)
			for b := lo; b < hi; b++ {
				var t uint32
				for q := 0; q < nproc; q++ {
					p.Read(regHist.Index(q*R+b, 4))
					t += hist[q*R+b]
					p.Compute(3)
				}
				base[b] = t // reused as totals before the scan
				p.Write(regBase.Index(b, 4))
			}
		})
		run.Barrier()

		// Phase 2b: exclusive prefix over bucket totals (processor 0).
		run.Each(func(p *proc) {
			if p.cpu != 0 {
				return
			}
			var acc uint32
			for b := 0; b < R; b++ {
				p.Read(regBase.Index(b, 4))
				t := base[b]
				base[b] = acc
				acc += t
				p.Compute(4)
				p.Write(regBase.Index(b, 4))
			}
		})
		run.Barrier()

		// Phase 2c: per-(processor, bucket) offsets, parallel over buckets.
		run.Each(func(p *proc) {
			lo, hi := block(R, nproc, p.cpu)
			for b := lo; b < hi; b++ {
				p.Read(regBase.Index(b, 4))
				acc := base[b]
				p.Compute(2)
				for q := 0; q < nproc; q++ {
					offset[q*R+b] = acc
					p.Write(regOff.Index(q*R+b, 4))
					p.Read(regHist.Index(q*R+b, 4))
					acc += hist[q*R+b]
					p.Compute(3)
				}
			}
		})
		run.Barrier()

		// Phase 3: permute keys into dst.
		run.Each(func(p *proc) {
			lo, hi := block(nk, nproc, p.cpu)
			for i := lo; i < hi; i++ {
				p.Read(regSrc.Index(i, 4))
				k := src[i]
				b := int((k >> shift) & mask)
				p.Compute(6)
				p.Read(regOff.Index(p.cpu*R+b, 4))
				pos := offset[p.cpu*R+b]
				offset[p.cpu*R+b] = pos + 1
				p.Write(regOff.Index(p.cpu*R+b, 4))
				dst[pos] = k
				p.Write(regDst.Index(int(pos), 4))
			}
		})
		run.Barrier()

		src, dst = dst, src
		regSrc, regDst = regDst, regSrc
	}
	return src, nil
}
