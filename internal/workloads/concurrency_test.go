package workloads

import (
	"reflect"
	"sync"
	"testing"

	"memhier/internal/trace"
)

// TestGenerateTraceConcurrent pins the property the parallel reproduction
// pipeline depends on: a Workload value is immutable configuration, so
// concurrent GenerateTrace calls on the same kernel — same or different
// nproc — race on nothing and every generation of a given (kernel, nproc)
// is event-for-event identical.
func TestGenerateTraceConcurrent(t *testing.T) {
	for _, w := range Suite(ScaleSmall) {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			ref, err := GenerateTrace(w, 2)
			if err != nil {
				t.Fatal(err)
			}
			const gens = 6
			traces := make([]*trace.Trace, gens)
			errs := make([]error, gens)
			var wg sync.WaitGroup
			for i := 0; i < gens; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// Mix of repeat generations and a different nproc
					// running alongside them.
					np := 2
					if i%3 == 2 {
						np = 4
					}
					traces[i], errs[i] = GenerateTrace(w, np)
				}(i)
			}
			wg.Wait()
			for i := 0; i < gens; i++ {
				if errs[i] != nil {
					t.Fatalf("generation %d: %v", i, errs[i])
				}
				if traces[i].NumCPU() == 2 && !reflect.DeepEqual(ref.Streams, traces[i].Streams) {
					t.Errorf("generation %d: trace diverged from reference", i)
				}
			}
		})
	}
}
