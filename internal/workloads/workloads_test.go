package workloads

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"memhier/internal/trace"
)

func TestBlockPartition(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw)%8 + 1
		covered := 0
		prevHi := 0
		for cpu := 0; cpu < p; cpu++ {
			lo, hi := block(n, p, cpu)
			if lo != prevHi || hi < lo {
				return false
			}
			if hi-lo > n/p+1 || (n >= p && hi-lo < n/p) {
				return false // imbalance beyond one item
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProcGrid(t *testing.T) {
	tests := []struct{ p, pr, pc int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {6, 2, 3}, {9, 3, 3}, {7, 1, 7},
	}
	for _, tc := range tests {
		pr, pc := procGrid(tc.p)
		if pr != tc.pr || pc != tc.pc {
			t.Errorf("procGrid(%d) = %d,%d want %d,%d", tc.p, pr, pc, tc.pr, tc.pc)
		}
	}
}

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			si, co := math.Sincos(ang)
			s += x[j] * complex(co, si)
		}
		out[k] = s
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, nproc := range []int{1, 2, 4} {
		f := NewFFT(64)
		var sink trace.CountingSink
		got, err := f.Transform(nproc, trace.FuncSink(func(cpu int, e trace.Event) { sink.Emit(cpu, e) }))
		if err != nil {
			t.Fatalf("nproc=%d: %v", nproc, err)
		}
		want := naiveDFT(f.Input())
		for i := range want {
			if d := got[i] - want[i]; math.Hypot(real(d), imag(d)) > 1e-8 {
				t.Fatalf("nproc=%d: spectrum[%d] = %v, want %v", nproc, i, got[i], want[i])
			}
		}
	}
}

func TestFFTResultIndependentOfNproc(t *testing.T) {
	f := NewFFT(256)
	var base []complex128
	for _, nproc := range []int{1, 2, 4, 8} {
		got, err := f.Transform(nproc, trace.FuncSink(func(int, trace.Event) {}))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("nproc=%d changed the spectrum", nproc)
		}
	}
}

func TestFFTConfigValidation(t *testing.T) {
	for _, bad := range []int{0, 2, 8, 100, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFFT(%d) did not panic", bad)
				}
			}()
			NewFFT(bad)
		}()
	}
	f := NewFFT(16)
	if _, err := f.Transform(0, trace.FuncSink(func(int, trace.Event) {})); err == nil {
		t.Error("nproc=0 accepted")
	}
	if _, err := f.Transform(64, trace.FuncSink(func(int, trace.Event) {})); err == nil {
		t.Error("nproc > rows accepted")
	}
}

func TestLUFactorsCorrectly(t *testing.T) {
	for _, nproc := range []int{1, 2, 4} {
		l := NewLU(16, 4)
		lu, err := l.Factor(nproc, trace.FuncSink(func(int, trace.Event) {}))
		if err != nil {
			t.Fatalf("nproc=%d: %v", nproc, err)
		}
		// Reconstruct A = L*U from the packed factorization.
		n := 16
		a := l.Input()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k <= minInt(i, j); k++ {
					var lik float64
					if k == i {
						lik = 1
					} else {
						lik = lu[i*n+k]
					}
					if k <= j {
						s += lik * lu[k*n+j]
					}
				}
				if math.Abs(s-a[i*n+j]) > 1e-8 {
					t.Fatalf("nproc=%d: (L·U)[%d][%d] = %v, want %v", nproc, i, j, s, a[i*n+j])
				}
			}
		}
	}
}

func TestLUResultIndependentOfNproc(t *testing.T) {
	l := NewLU(24, 4)
	var base []float64
	for _, nproc := range []int{1, 2, 3, 6} {
		got, err := l.Factor(nproc, trace.FuncSink(func(int, trace.Event) {}))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		for i := range base {
			if math.Abs(base[i]-got[i]) > 1e-12 {
				t.Fatalf("nproc=%d changed element %d: %v vs %v", nproc, i, got[i], base[i])
			}
		}
	}
}

func TestLUConfigValidation(t *testing.T) {
	for _, bad := range [][2]int{{16, 5}, {0, 4}, {16, 0}, {-8, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLU(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewLU(bad[0], bad[1])
		}()
	}
	if _, err := NewLU(8, 4).Factor(0, trace.FuncSink(func(int, trace.Event) {})); err == nil {
		t.Error("nproc=0 accepted")
	}
}

func TestRadixSorts(t *testing.T) {
	for _, nproc := range []int{1, 2, 4, 8} {
		r := NewRadix(2000, 16)
		got, err := r.Sort(nproc, trace.FuncSink(func(int, trace.Event) {}))
		if err != nil {
			t.Fatalf("nproc=%d: %v", nproc, err)
		}
		want := append([]uint32(nil), r.Input()...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("nproc=%d: not sorted correctly", nproc)
		}
	}
}

func TestRadixStableAcrossRadixChoices(t *testing.T) {
	for _, radix := range []int{4, 64, 256, 1024} {
		r := NewRadix(1000, radix)
		got, err := r.Sort(3, trace.FuncSink(func(int, trace.Event) {}))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				t.Fatalf("radix=%d: out of order at %d", radix, i)
			}
		}
	}
}

func TestRadixConfigValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 16}, {10, 3}, {10, 1}, {-5, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRadix(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewRadix(bad[0], bad[1])
		}()
	}
	if _, err := NewRadix(10, 4).Sort(0, trace.FuncSink(func(int, trace.Event) {})); err == nil {
		t.Error("nproc=0 accepted")
	}
}

func TestEdgeDetectsRectangle(t *testing.T) {
	e := NewEdge(32, 32, 2)
	edges, err := e.Detect(4, trace.FuncSink(func(int, trace.Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	w, h := e.Bounds()
	// The bright rectangle spans [w/4, 3w/4) x [h/4, 3h/4). Its border must
	// be detected; deep interior/exterior must not.
	onBorder := 0
	for x := w / 4; x < 3*w/4; x++ {
		if edges[(h/4)*w+x] == 1 || edges[(h/4-1)*w+x] == 1 {
			onBorder++
		}
	}
	if onBorder < w/4 {
		t.Errorf("top border barely detected: %d of %d columns", onBorder, w/2)
	}
	if edges[(h/2)*w+w/2] != 0 {
		t.Error("rectangle center misdetected as edge")
	}
	if edges[1*w+1] != 0 {
		t.Error("background corner misdetected as edge")
	}
}

func TestEdgeResultIndependentOfNproc(t *testing.T) {
	e := NewEdge(24, 24, 2)
	var base []uint8
	for _, nproc := range []int{1, 2, 3, 8} {
		got, err := e.Detect(nproc, trace.FuncSink(func(int, trace.Event) {}))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("nproc=%d changed the edge map", nproc)
		}
	}
}

func TestEdgeConfigValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewEdge(4,4,1) did not panic")
			}
		}()
		NewEdge(4, 4, 1)
	}()
	if _, err := NewEdge(8, 8, 1).Detect(0, trace.FuncSink(func(int, trace.Event) {})); err == nil {
		t.Error("nproc=0 accepted")
	}
	if _, err := NewEdge(8, 8, 1).Detect(16, trace.FuncSink(func(int, trace.Event) {})); err == nil {
		t.Error("nproc > rows accepted")
	}
}

func TestTPCCStats(t *testing.T) {
	w := NewTPCC(2, 1000)
	stats, err := w.Execute(4, trace.FuncSink(func(int, trace.Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transactions != 1000 {
		t.Errorf("Transactions = %d, want 1000", stats.Transactions)
	}
	if stats.RowsTouched < 2*1000 || stats.RowsTouched > 4*1000 {
		t.Errorf("RowsTouched = %d outside [2000, 4000]", stats.RowsTouched)
	}
	if _, err := w.Execute(0, trace.FuncSink(func(int, trace.Event) {})); err == nil {
		t.Error("nproc=0 accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewTPCC(0,1) did not panic")
			}
		}()
		NewTPCC(0, 1)
	}()
}

// TestTracesBalancedBarriers verifies the bulk-synchronous contract for
// every workload at several processor counts.
func TestTracesBalancedBarriers(t *testing.T) {
	wls := append(Suite(ScaleSmall), NewTPCC(2, 400))
	for _, w := range wls {
		for _, nproc := range []int{1, 2, 4} {
			tr, err := GenerateTrace(w, nproc)
			if err != nil {
				t.Fatalf("%s nproc=%d: %v", w.Name(), nproc, err)
			}
			if tr.NumCPU() != nproc {
				t.Errorf("%s: NumCPU = %d, want %d", w.Name(), tr.NumCPU(), nproc)
			}
			if tr.MemoryRefs() == 0 {
				t.Errorf("%s: empty trace", w.Name())
			}
		}
	}
}

// TestTraceDeterminism checks that generating a trace twice yields
// identical event streams.
func TestTraceDeterminism(t *testing.T) {
	for _, w := range []Workload{NewFFT(64), NewLU(16, 4), NewRadix(500, 16), NewEdge(16, 16, 1), NewTPCC(1, 200)} {
		t1, err := GenerateTrace(w, 2)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := GenerateTrace(w, 2)
		if err != nil {
			t.Fatal(err)
		}
		for cpu := range t1.Streams {
			if !reflect.DeepEqual(t1.Streams[cpu].Events, t2.Streams[cpu].Events) {
				t.Fatalf("%s: nondeterministic trace on cpu %d", w.Name(), cpu)
			}
		}
	}
}

// TestGammaBands checks that each workload's memory-reference fraction γ
// falls in a plausible band around the paper's Table 2 values and that the
// paper's ordering FFT < LU < Radix < EDGE holds.
func TestGammaBands(t *testing.T) {
	want := map[string][2]float64{
		"FFT":   {0.10, 0.35}, // paper: 0.20
		"LU":    {0.20, 0.45}, // paper: 0.31
		"Radix": {0.25, 0.50}, // paper: 0.37
		"EDGE":  {0.35, 0.60}, // paper: 0.45
	}
	gammas := map[string]float64{}
	for _, w := range Suite(ScaleSmall) {
		tr, err := GenerateTrace(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := tr.Gamma()
		gammas[w.Name()] = g
		band := want[w.Name()]
		if g < band[0] || g > band[1] {
			t.Errorf("%s: γ = %.3f outside [%.2f, %.2f]", w.Name(), g, band[0], band[1])
		}
	}
	if !(gammas["FFT"] < gammas["LU"] && gammas["LU"] < gammas["Radix"] && gammas["Radix"] < gammas["EDGE"]) {
		t.Errorf("γ ordering violated: %+v", gammas)
	}
}

func TestByNameAndSuite(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name, ScaleSmall)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		} else if w.Name() == "" || w.Description() == "" {
			t.Errorf("ByName(%q): empty metadata", name)
		}
		if _, err := ByName(name, ScalePaper); err != nil {
			t.Errorf("ByName(%q, paper): %v", name, err)
		}
	}
	if _, err := ByName("nope", ScaleSmall); err == nil {
		t.Error("unknown name accepted")
	}
	if got := len(Suite(ScaleSmall)); got != 4 {
		t.Errorf("Suite has %d workloads, want 4", got)
	}
}

// TestCharacterizeSuite runs the full Table 2 pipeline at small scale and
// checks the paper's qualitative findings: every fit is good, EDGE has the
// best locality of the scientific codes, Radix the worst, and the TPC-C
// stand-in has a β an order of magnitude larger.
func TestCharacterizeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep")
	}
	chars := map[string]Characterization{}
	for _, w := range Suite(ScaleSmall) {
		c, err := Characterize(w, CharacterizeOptions{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if err := c.Params.Validate(); err != nil {
			t.Errorf("%s: invalid fitted params: %v", w.Name(), err)
		}
		if c.Fit.R2 < 0.70 {
			t.Errorf("%s: poor fit R2=%.3f", w.Name(), c.Fit.R2)
		}
		chars[w.Name()] = c
	}
	tpcc, err := Characterize(NewTPCC(4, 4000), CharacterizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Locality ordering via miss ratio beyond a cache-scale capacity
	// (paper §5.2): Radix has the worst locality of the scientific
	// kernels — in particular worse than EDGE — and the commercial
	// workload is worse than every scientific kernel. (The paper's
	// "EDGE best overall" ranking depends on its full-scale problem
	// sizes; see EXPERIMENTS.md.)
	const capacity = 512
	radixMiss := chars["Radix"].Params.MissBeyond(capacity)
	for name, c := range chars {
		if name == "Radix" {
			continue
		}
		if m := c.Params.MissBeyond(capacity); m >= radixMiss {
			t.Errorf("%s miss %.4f should be below Radix miss %.4f", name, m, radixMiss)
		}
		if tm := tpcc.Params.MissBeyond(2048); tm <= c.Params.MissBeyond(2048) {
			t.Errorf("TPC-C miss %.4f should exceed %s miss %.4f", tm, name, c.Params.MissBeyond(2048))
		}
	}
	// The paper's TPC-C observation, restated scale-free: the commercial
	// workload's effective working set (90% coverage capacity) is more than
	// an order of magnitude beyond any scientific kernel's.
	tpcc90, err := tpcc.Params.Coverage(0.9)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range chars {
		w90, err := c.Params.Coverage(0.9)
		if err != nil {
			t.Fatal(err)
		}
		if tpcc90 < 10*w90 {
			t.Errorf("TPC-C 90%% working set %.0f not ≫ %s's %.0f", tpcc90, name, w90)
		}
	}
}

func TestCharacterizeOptionsValidation(t *testing.T) {
	if _, err := Characterize(NewFFT(16), CharacterizeOptions{LineSize: 48}); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
}
