// Package workloads implements the paper's application suite as
// instrumented, from-scratch Go kernels: the three SPLASH-2 computational
// kernels (FFT, LU, Radix), the EDGE distributed edge detector, and a
// synthetic TPC-C-like commercial workload.
//
// Each kernel really executes its algorithm (results are checked in tests)
// while emitting, per logical processor, the memory-reference stream a
// MINT-style front-end would produce: reads and writes at element
// granularity, compute gaps for non-referencing instructions, and barrier
// crossings at the bulk-synchronous phase boundaries. This is the
// repository's substitute for the paper's MINT simulation front-end.
//
// The SPMD structure follows the paper (§3): one process per processor,
// equal-weight partitions, phases of local computation alternating with
// communication/synchronization.
//
//chc:deterministic
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"memhier/internal/trace"
)

// Workload is an instrumented parallel kernel.
type Workload interface {
	// Name returns the kernel's short name (e.g. "FFT").
	Name() string
	// Description returns a one-line description of the configuration.
	Description() string
	// Run executes the kernel partitioned over nproc logical processors,
	// emitting each processor's reference stream to sink. Implementations
	// must emit the same number of barriers on every CPU.
	Run(nproc int, sink trace.Sink) error
}

// EventHinter is optionally implemented by workloads that can estimate, from
// their problem size alone, how many events the busiest processor will emit.
// GenerateTrace uses the hint to pre-size the trace's event slices so
// materializing a stream costs one allocation instead of a growth chain.
// Hints are estimates: under-hinting just falls back to normal slice growth.
type EventHinter interface {
	// EventHint returns an approximate upper bound on the number of trace
	// events any single processor emits when run over nproc processors.
	EventHint(nproc int) int
}

// GenerateTrace runs the workload and materializes its full trace.
func GenerateTrace(w Workload, nproc int) (*trace.Trace, error) {
	tr := trace.New(nproc)
	if h, ok := w.(EventHinter); ok {
		if n := h.EventHint(nproc); n > 0 {
			tr.Reserve(n)
		}
	}
	if err := w.Run(nproc, tr); err != nil {
		return nil, fmt.Errorf("workloads: running %s: %w", w.Name(), err)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: %s produced inconsistent trace: %w", w.Name(), err)
	}
	return tr, nil
}

// regWindow is the size of the per-processor register-reuse filter: a load
// of an address touched within the last regWindow distinct element accesses
// is assumed register-resident and becomes one non-referencing instruction
// instead of a memory reference. The paper's MINT front-end traced compiled
// MIPS binaries, where such immediately-reused values live in registers and
// never reach the address stream; without this filter, element-granular
// instrumentation floods the stack-distance head with distance-0/1 reuse
// that no compiled program exhibits.
const regWindow = 8

// proc is the per-processor instrumentation handle passed to kernel bodies.
type proc struct {
	cpu  int
	sink trace.Sink
	// pending accumulates compute instructions so that consecutive
	// non-referencing work becomes a single Compute event.
	pending uint64
	// regs is the register-reuse filter, an LRU list of recently accessed
	// element addresses (most recent first).
	regs  [regWindow]uint64
	nregs int
}

func (p *proc) flush() {
	if p.pending > 0 {
		p.sink.Emit(p.cpu, trace.Event{Kind: trace.Compute, N: p.pending})
		p.pending = 0
	}
}

// regHit reports whether addr is register-resident, promoting it to most
// recently used if so.
func (p *proc) regHit(addr uint64) bool {
	for i := 0; i < p.nregs; i++ {
		if p.regs[i] == addr {
			copy(p.regs[1:i+1], p.regs[:i])
			p.regs[0] = addr
			return true
		}
	}
	return false
}

// regInsert records addr as most recently used.
func (p *proc) regInsert(addr uint64) {
	if p.nregs < regWindow {
		p.nregs++
	}
	copy(p.regs[1:p.nregs], p.regs[:p.nregs-1])
	p.regs[0] = addr
}

// Read records a load of one element at the given byte address. Loads of
// register-resident values count as one compute instruction instead.
func (p *proc) Read(addr uint64) {
	if p.regHit(addr) {
		p.Compute(1)
		return
	}
	p.flush()
	p.sink.Emit(p.cpu, trace.Event{Kind: trace.Read, Addr: addr})
	p.regInsert(addr)
}

// Write records a store of one element at the given byte address. Stores
// always reach the reference stream (the value must leave the register
// file), and make the address register-resident for subsequent loads.
func (p *proc) Write(addr uint64) {
	p.flush()
	p.sink.Emit(p.cpu, trace.Event{Kind: trace.Write, Addr: addr})
	p.regInsert(addr)
}

// Compute records n non-referencing instructions (ALU/FPU work, index
// arithmetic, branches).
func (p *proc) Compute(n uint64) { p.pending += n }

// runner sequences an SPMD execution: kernel phases run for every processor
// in turn (which both preserves data dependencies across the shared arrays
// and produces deterministic traces), and barriers are emitted on all
// processors at phase boundaries.
type runner struct {
	procs []*proc
}

func newRunner(nproc int, sink trace.Sink) *runner {
	r := &runner{procs: make([]*proc, nproc)}
	for i := range r.procs {
		r.procs[i] = &proc{cpu: i, sink: sink}
	}
	return r
}

// Each runs body once per processor, in CPU order.
func (r *runner) Each(body func(p *proc)) {
	for _, p := range r.procs {
		body(p)
	}
}

// Barrier emits a barrier crossing on every processor.
func (r *runner) Barrier() {
	for _, p := range r.procs {
		p.flush()
		p.sink.Emit(p.cpu, trace.Event{Kind: trace.Barrier})
	}
}

// block returns the half-open index range [lo, hi) of the cpu-th of nproc
// contiguous, balanced partitions of n items.
func block(n, nproc, cpu int) (lo, hi int) {
	q, r := n/nproc, n%nproc
	lo = cpu*q + minInt(cpu, r)
	hi = lo + q
	if cpu < r {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Scale selects a problem-size preset.
type Scale int

// Problem-size presets. ScaleSmall keeps traces in the low millions of
// events so the full validation matrix runs in seconds; ScalePaper uses the
// exact sizes in Table 2 of the paper (64K-point FFT, 512x512 LU, 1M-key
// Radix, 128x128 EDGE), which produce traces of hundreds of millions of
// events.
const (
	ScaleSmall Scale = iota
	ScalePaper
)

// Suite returns the paper's application suite at the given scale, in the
// paper's order: FFT, LU, Radix, EDGE.
func Suite(s Scale) []Workload {
	switch s {
	case ScalePaper:
		return []Workload{
			NewFFT(1 << 16),
			NewLU(512, 16),
			NewRadix(1<<20, 1024),
			NewEdge(128, 128, 4),
		}
	default:
		return []Workload{
			NewFFT(1 << 12),
			NewLU(96, 8),
			NewRadix(1<<15, 256),
			NewEdge(48, 48, 3),
		}
	}
}

// ByName returns the named workload ("fft", "lu", "radix", "edge", "tpcc")
// at the given scale. Lookup is case-insensitive and accepts the paper's
// "TPC-C" spelling, so every CLI and the prediction service share one
// registry without local normalization.
func ByName(name string, s Scale) (Workload, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "tpc-c" {
		name = "tpcc"
	}
	switch name {
	case "fft":
		return Suite(s)[0], nil
	case "lu":
		return Suite(s)[1], nil
	case "radix":
		return Suite(s)[2], nil
	case "edge":
		return Suite(s)[3], nil
	case "tpcc":
		if s == ScalePaper {
			return NewTPCC(32, 200000), nil
		}
		return NewTPCC(8, 20000), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
}

// Names returns the available workload names in a stable order.
func Names() []string {
	n := []string{"fft", "lu", "radix", "edge", "tpcc"}
	sort.Strings(n)
	return n
}
