package workloads

import (
	"math"
	"os"
	"sort"
	"testing"

	"memhier/internal/trace"
)

// TestRegisterFilter verifies the instrumentation's register-reuse window:
// an immediately re-read address becomes a compute instruction, a write
// always reaches the stream, and reuse beyond the window misses the filter.
func TestRegisterFilter(t *testing.T) {
	var events []trace.Event
	p := &proc{cpu: 0, sink: trace.FuncSink(func(_ int, e trace.Event) {
		events = append(events, e)
	})}

	p.Read(100) // cold: emitted
	p.Read(100) // register-resident: becomes compute
	p.Write(100)
	p.flush()
	if len(events) != 3 {
		t.Fatalf("events: %+v", events)
	}
	if events[0].Kind != trace.Read || events[1].Kind != trace.Compute || events[2].Kind != trace.Write {
		t.Errorf("unexpected kinds: %v %v %v", events[0].Kind, events[1].Kind, events[2].Kind)
	}

	// Touch more than regWindow distinct addresses, then re-read the first:
	// it must have been displaced and emit a real Read.
	events = events[:0]
	for i := 0; i < regWindow+1; i++ {
		p.Read(uint64(1000 + i*8))
	}
	p.Read(1000)
	p.flush()
	reads := 0
	for _, e := range events {
		if e.Kind == trace.Read {
			reads++
		}
	}
	if reads != regWindow+2 {
		t.Errorf("reads = %d, want %d (displacement + re-read)", reads, regWindow+2)
	}
}

func TestFFTLargerSizeAgainstDFT(t *testing.T) {
	if testing.Short() {
		t.Skip("O(n^2) reference transform")
	}
	f := NewFFT(1024)
	got, err := f.Transform(8, trace.FuncSink(func(int, trace.Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	want := naiveDFT(f.Input())
	var maxErr float64
	for i := range want {
		d := got[i] - want[i]
		if e := math.Hypot(real(d), imag(d)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-7 {
		t.Errorf("1024-point FFT max error %v", maxErr)
	}
}

func TestLUSingleBlockDegenerate(t *testing.T) {
	// Block size == matrix size: the whole factorization happens in the
	// diagonal-block step.
	l := NewLU(8, 8)
	lu, err := l.Factor(1, trace.FuncSink(func(int, trace.Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	a := l.Input()
	n := 8
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= minInt(i, j); k++ {
				lik := lu[i*n+k]
				if k == i {
					lik = 1
				}
				s += lik * lu[k*n+j]
			}
			if math.Abs(s-a[i*n+j]) > 1e-9 {
				t.Fatalf("single-block LU wrong at (%d,%d): %v vs %v", i, j, s, a[i*n+j])
			}
		}
	}
}

func TestLUOwnershipCoversAllBlocks(t *testing.T) {
	// Every block must have exactly one owner under the 2-D scatter, and
	// work must be spread over all processors.
	for _, nproc := range []int{2, 4, 6} {
		pr, pc := procGrid(nproc)
		nb := 12
		counts := make([]int, nproc)
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				owner := (i%pr)*pc + (j % pc)
				if owner < 0 || owner >= nproc {
					t.Fatalf("owner %d out of range for nproc %d", owner, nproc)
				}
				counts[owner]++
			}
		}
		for cpu, c := range counts {
			if c == 0 {
				t.Errorf("nproc=%d: cpu %d owns nothing", nproc, cpu)
			}
		}
	}
}

func TestRadixMoreProcsThanBuckets(t *testing.T) {
	// nproc exceeding the radix exercises empty bucket partitions.
	r := NewRadix(500, 4)
	got, err := r.Sort(8, trace.FuncSink(func(int, trace.Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("not sorted with nproc > radix")
	}
}

func TestRadixSingleKey(t *testing.T) {
	r := NewRadix(1, 4)
	got, err := r.Sort(1, trace.FuncSink(func(int, trace.Event) {}))
	if err != nil || len(got) != 1 {
		t.Fatalf("single key: %v, %v", got, err)
	}
}

func TestEdgeMoreIterationsStillDetect(t *testing.T) {
	e := NewEdge(24, 24, 5)
	edges, err := e.Detect(2, trace.FuncSink(func(int, trace.Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, v := range edges {
		if v == 1 {
			found++
		}
	}
	if found == 0 {
		t.Error("no edges after extra blur iterations")
	}
	// Blurring shrinks gradients; many iterations must not *grow* the map
	// beyond the 1-iteration result by much.
	e1 := NewEdge(24, 24, 1)
	edges1, err := e1.Detect(2, trace.FuncSink(func(int, trace.Event) {}))
	if err != nil {
		t.Fatal(err)
	}
	found1 := 0
	for _, v := range edges1 {
		if v == 1 {
			found1++
		}
	}
	if found > 3*found1+8 {
		t.Errorf("edge map exploded with iterations: %d vs %d", found, found1)
	}
}

// TestPaperScaleSmoke runs the paper-size FFT characterization end to end.
// It is opt-in (MEMHIER_PAPER_SCALE=1): the trace has tens of millions of
// events.
func TestPaperScaleSmoke(t *testing.T) {
	if os.Getenv("MEMHIER_PAPER_SCALE") == "" {
		t.Skip("set MEMHIER_PAPER_SCALE=1 to run the paper-size smoke test")
	}
	w := NewFFT(1 << 16) // the paper's 64K points
	c, err := Characterize(w, CharacterizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Params.Validate(); err != nil {
		t.Fatalf("paper-scale fit invalid: %v", err)
	}
	t.Logf("paper-scale FFT: alpha=%.3f beta=%.2f gamma=%.3f refs=%d footprint=%d",
		c.Params.Alpha, c.Params.Beta, c.Params.Gamma, c.Refs, c.Distinct)
}

// TestSuiteScalesDiffer checks that paper-scale configurations really are
// larger than the small ones.
func TestSuiteScalesDiffer(t *testing.T) {
	small := Suite(ScaleSmall)
	paper := Suite(ScalePaper)
	if len(small) != len(paper) {
		t.Fatal("suite size mismatch")
	}
	if small[0].(*FFT).Points() >= paper[0].(*FFT).Points() {
		t.Error("paper FFT not larger")
	}
	if small[1].(*LU).N() >= paper[1].(*LU).N() {
		t.Error("paper LU not larger")
	}
	if small[2].(*Radix).Keys() >= paper[2].(*Radix).Keys() {
		t.Error("paper Radix not larger")
	}
	sw, sh := small[3].(*Edge).Bounds()
	pw, ph := paper[3].(*Edge).Bounds()
	if sw*sh >= pw*ph {
		t.Error("paper EDGE not larger")
	}
}

func BenchmarkGenerateTraceFFT(b *testing.B) {
	w := NewFFT(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace(w, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCharacterizeRadix(b *testing.B) {
	w := NewRadix(1<<14, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Characterize(w, CharacterizeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
