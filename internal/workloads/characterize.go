package workloads

import (
	"fmt"
	"sync"

	"memhier/internal/locality"
	"memhier/internal/sim/cache"
	"memhier/internal/stackdist"
	"memhier/internal/trace"
)

// Characterization is the paper's per-program workload summary (Table 2):
// the fitted locality parameters plus the measurement context.
type Characterization struct {
	Workload string
	Problem  string
	Params   locality.Params // Alpha, Beta (in measurement granules), Gamma
	Fit      locality.FitStats
	LineSize int     // stack-distance granule in bytes: 1 = data item
	Refs     uint64  // memory references analyzed
	HitMass  float64 // fraction of references with stack distance < 2:
	// intra-operation reuse (read-modify-write pairs, butterfly operands)
	// that the first cache level absorbs under any configuration. The
	// fitted P(x) describes the remaining references; downstream miss
	// fractions scale by 1 − HitMass.
	Distinct int // distinct granules touched (the footprint, and the
	// truncation point for the model's CDF)
	// Conflict is κ: the measured miss-ratio inflation of the paper's
	// 2-way set-associative cache geometry (§5.1) over the fully
	// associative LRU ideal that the stack-distance theory describes,
	// at the reference capacity of CharacterizeOptions.ConflictRefBytes.
	// Strided access patterns (FFT transposes, Radix permutes) inflate
	// real misses well beyond the fully associative curve; the model
	// multiplies its cache-level miss fraction by κ.
	Conflict float64
	// ConflictCurve holds the same measurement at several capacities
	// (bytes → κ, ascending), letting the model interpolate κ at whatever
	// cache size a configuration has.
	ConflictCurve []ConflictSample
}

// CharacterizeOptions tunes Characterize. The zero value measures stack
// distances at data-item granularity — the paper's "number of unique data
// items" — and downsamples the empirical CDF to 512 logarithmically spaced
// points before fitting. Setting LineSize > 1 measures at cache-line
// granularity instead (folding spatial locality into the distances), which
// the ablation benchmarks use.
type CharacterizeOptions struct {
	LineSize  int // 0 or 1: item granularity; else a power-of-two line size
	MaxPoints int // CDF downsample budget; default 512; <0 disables
	// ConflictRefBytes is the cache capacity at which the 2-way conflict
	// factor κ is measured. 0 means 16 KB (the validation experiments'
	// scaled cache size); negative disables the measurement (κ = 1).
	ConflictRefBytes int
}

// ConflictSample is one (capacity, κ) point of the conflict curve.
type ConflictSample struct {
	Bytes int
	Kappa float64
}

// Characterize runs the workload on a single processor (as the paper does:
// α and β are collected on a one-processor system, then rescaled
// analytically for n processors), computes the stack-distance distribution
// of its reference stream, and fits the paper's P(x) model by least
// squares.
func Characterize(w Workload, opts CharacterizeOptions) (Characterization, error) {
	lineSize := opts.LineSize
	if lineSize == 0 {
		lineSize = 1
	}
	if lineSize < 1 || lineSize&(lineSize-1) != 0 {
		return Characterization{}, fmt.Errorf("workloads: line size %d not a power of two", lineSize)
	}
	maxPoints := opts.MaxPoints
	if maxPoints == 0 {
		maxPoints = 512
	}

	refBytes := opts.ConflictRefBytes
	if refBytes == 0 {
		refBytes = 16 << 10
	}
	// Conflict curve: the scalar reference size plus a spread of capacities
	// bracketing the validation experiments' scaled caches.
	var curveSizes []int
	var refCaches []*cache.Cache
	var refMisses []uint64
	var refAccesses uint64
	var lineAn *stackdist.Analyzer // 64-byte-line distances for the κ baseline
	if refBytes > 0 {
		curveSizes = []int{4 << 10, 16 << 10, 64 << 10}
		if refBytes != 16<<10 {
			curveSizes = append(curveSizes, refBytes)
			sortInts(curveSizes)
		}
		for _, sz := range curveSizes {
			refCaches = append(refCaches, cache.New(sz, 64, 2))
		}
		refMisses = make([]uint64, len(curveSizes))
		if lineSize != 64 {
			lineAn = stackdist.NewAnalyzer(1 << 16)
		}
	}

	an := stackdist.NewAnalyzer(1 << 16)
	var counts trace.CountingSink

	// The measurement consumers — the item-granularity analyzer, the
	// line-granularity analyzer for the κ baseline, and one LRU simulation
	// per conflict-curve capacity — are independent single-pass readers of
	// the same reference stream. Fan generated events out to them in chunks
	// over channels so they run concurrently; every consumer sees the full
	// stream in order, so results are identical to the serial pass.
	var wg sync.WaitGroup
	var chans []chan []trace.Event
	consume := func(fn func([]trace.Event)) {
		ch := make(chan []trace.Event, 8)
		chans = append(chans, ch)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for evs := range ch {
				fn(evs)
			}
		}()
	}
	consume(func(evs []trace.Event) { an.TouchAll(evs, lineSize) })
	if lineAn != nil {
		consume(func(evs []trace.Event) { lineAn.TouchAll(evs, 64) })
	}
	for i := range refCaches {
		i, rc := i, refCaches[i]
		consume(func(evs []trace.Event) {
			for _, e := range evs {
				if e.Kind == trace.Read || e.Kind == trace.Write {
					if _, hit := rc.Lookup(e.Addr); !hit {
						refMisses[i]++
						rc.Fill(e.Addr, cache.Shared)
					}
				}
			}
		})
	}

	const chunkEvents = 1 << 15
	buf := make([]trace.Event, 0, chunkEvents)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		for _, ch := range chans {
			ch <- buf
		}
		// Consumers share the flushed chunk read-only; start a fresh one.
		buf = make([]trace.Event, 0, chunkEvents)
	}
	sink := trace.FuncSink(func(_ int, e trace.Event) {
		counts.Emit(0, e)
		if e.Kind == trace.Read || e.Kind == trace.Write {
			refAccesses++
		}
		buf = append(buf, e)
		if len(buf) == chunkEvents {
			flush()
		}
	})
	err := w.Run(1, sink)
	flush()
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if err != nil {
		return Characterization{}, fmt.Errorf("workloads: characterizing %s: %w", w.Name(), err)
	}

	dist := an.Distribution()
	if maxPoints > 0 {
		dist = dist.Downsample(maxPoints)
	}
	// The model form has P(0) ≡ 0 and essentially no mass at unit
	// distances (the paper's Table 2 parameters give P(1) ≈ 0.002), yet an
	// element-granular reference stream necessarily carries intra-operation
	// reuse: a store back to the address just loaded is stack distance 0 or
	// 1. Such references hit the first cache level under every
	// configuration, so we split them off as HitMass and fit the paper's
	// curve to the conditional distribution of the remaining references, on
	// log-spaced points with uniform weights so every capacity decade gets
	// equal say.
	const dmin = 2
	hitMass := dist.CDF(dmin - 1)
	if 1-hitMass <= 0 {
		return Characterization{}, fmt.Errorf("workloads: %s trace has no reuse beyond distance %d; cannot fit", w.Name(), dmin-1)
	}
	allXs, allPs := dist.Points()
	var xs, ps []float64
	for i := range allXs {
		if allXs[i] >= dmin {
			xs = append(xs, allXs[i])
			ps = append(ps, (allPs[i]-hitMass)/(1-hitMass))
		}
	}
	if len(xs) < 2 {
		return Characterization{}, fmt.Errorf("workloads: %s trace has no reuse beyond distance %d; cannot fit", w.Name(), dmin)
	}
	params, stats, err := locality.Fit(xs, ps, locality.FitOptions{})
	if err != nil {
		return Characterization{}, fmt.Errorf("workloads: fitting %s: %w", w.Name(), err)
	}
	params.Gamma = counts.Gamma()

	conflict := 1.0
	var curve []ConflictSample
	if len(refCaches) > 0 && refAccesses > 0 {
		// The fully associative baseline uses the undownsampled line-64
		// distribution so capacity boundaries are exact.
		faDist := an.Distribution()
		if lineAn != nil {
			faDist = lineAn.Distribution()
		}
		for i, sz := range curveSizes {
			faMiss := 1 - faDist.HitRatio(sz/64)
			twoWayMiss := float64(refMisses[i]) / float64(refAccesses)
			k := 1.0
			if faMiss > 0 && twoWayMiss > 0 {
				k = twoWayMiss / faMiss
			}
			curve = append(curve, ConflictSample{Bytes: sz, Kappa: k})
			if sz == refBytes {
				conflict = k
			}
		}
	}

	return Characterization{
		Workload:      w.Name(),
		Problem:       w.Description(),
		Params:        params,
		Fit:           stats,
		LineSize:      lineSize,
		HitMass:       hitMass,
		Refs:          an.References(),
		Distinct:      an.Distinct(),
		Conflict:      conflict,
		ConflictCurve: curve,
	}, nil
}

// AnalyzeStreams computes the stack-distance distribution of every
// processor's reference stream and merges them into one distribution, the
// per-CPU counterpart of Characterize's single-stream measurement. Each
// stream is analyzed concurrently by its own Analyzer (batched through
// TouchAll), then the per-CPU distributions are combined with
// stackdist.Merge. lineSize is the measurement granule (1 = data item; else
// a power-of-two line size).
func AnalyzeStreams(tr *trace.Trace, lineSize int) (stackdist.Distribution, error) {
	if lineSize < 1 || lineSize&(lineSize-1) != 0 {
		return stackdist.Distribution{}, fmt.Errorf("workloads: line size %d not a power of two", lineSize)
	}
	if tr.NumCPU() == 0 {
		return stackdist.Distribution{}, nil
	}
	dists := make([]stackdist.Distribution, tr.NumCPU())
	var wg sync.WaitGroup
	for i := range tr.Streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := tr.Streams[i]
			// The stream's reference count bounds its footprint, so the
			// analyzer never regrows (capped to keep huge traces sane).
			hint := int(s.MemoryRefs())
			if hint > 1<<20 {
				hint = 1 << 20
			}
			an := stackdist.NewAnalyzer(hint)
			an.TouchAll(s.Events, lineSize)
			dists[i] = an.Distribution()
		}(i)
	}
	wg.Wait()
	merged := dists[0]
	for _, d := range dists[1:] {
		merged = stackdist.Merge(merged, d)
	}
	return merged, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
