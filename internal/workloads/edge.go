package workloads

import (
	"fmt"
	"math"

	"memhier/internal/trace"
)

// Edge is the distributed edge-detection application of the paper (§5.2,
// from Zhang, Dykes and Deng): an iterative algorithm combining good noise
// reduction with positional accuracy. Each iteration performs (1) blurring,
// (2) registering (gradient computation), (3) matching (thresholded edge
// decision against the previous map), then repeats or halts. The image is
// partitioned in rows among processors and a barrier follows every step,
// giving the highest barrier frequency (and γ) of the suite.
type Edge struct {
	w, h  int
	iters int
}

// NewEdge returns the kernel for a w×h image and the given iteration count.
// It panics on degenerate dimensions.
func NewEdge(w, h, iters int) *Edge {
	if w < 8 || h < 8 || iters < 1 {
		panic(fmt.Sprintf("workloads: bad EDGE config %dx%d iters=%d", w, h, iters))
	}
	return &Edge{w: w, h: h, iters: iters}
}

// Name implements Workload.
func (e *Edge) Name() string { return "EDGE" }

// EventHint implements EventHinter. Every iteration convolves each pixel's
// 3×3 neighborhood plus the exchange/threshold phases: ~24 events per pixel
// per iteration measured; 26 leaves room for boundary rows.
func (e *Edge) EventHint(nproc int) int {
	return 26 * e.w * e.h * e.iters / nproc
}

// Description implements Workload.
func (e *Edge) Description() string {
	return fmt.Sprintf("iterative edge detection, %dx%d bitmap, %d iterations", e.w, e.h, e.iters)
}

// Bounds returns the image dimensions.
func (e *Edge) Bounds() (w, h int) { return e.w, e.h }

// Input returns the deterministic test image: a bright rectangle on a dark
// background with mild deterministic noise, so real edges exist at known
// positions.
func (e *Edge) Input() []float64 {
	img := make([]float64, e.w*e.h)
	for y := 0; y < e.h; y++ {
		for x := 0; x < e.w; x++ {
			v := 0.1
			if x >= e.w/4 && x < 3*e.w/4 && y >= e.h/4 && y < 3*e.h/4 {
				v = 0.9
			}
			// Deterministic low-amplitude noise.
			v += 0.02 * math.Sin(float64(x*7+y*13))
			img[y*e.w+x] = v
		}
	}
	return img
}

// Run implements Workload.
func (e *Edge) Run(nproc int, sink trace.Sink) error {
	_, err := e.Detect(nproc, sink)
	return err
}

// Detect runs the instrumented detector and returns the final edge map
// (1 = edge pixel).
func (e *Edge) Detect(nproc int, sink trace.Sink) ([]uint8, error) {
	if nproc < 1 {
		return nil, fmt.Errorf("workloads: EDGE needs nproc >= 1, got %d", nproc)
	}
	if nproc > e.h {
		return nil, fmt.Errorf("workloads: EDGE with %d rows cannot use %d processors", e.h, nproc)
	}
	w, h := e.w, e.h

	img := e.Input()
	blur := make([]float64, w*h)
	grad := make([]float64, w*h)
	edges := make([]uint8, w*h)

	as := trace.NewAddressSpace()
	regImg := as.Alloc("edge.img", uint64(w*h)*8, 64)
	regBlur := as.Alloc("edge.blur", uint64(w*h)*8, 64)
	regGrad := as.Alloc("edge.grad", uint64(w*h)*8, 64)
	regEdge := as.Alloc("edge.map", uint64(w*h), 64)

	r := newRunner(nproc, sink)

	at := func(x, y int) int {
		if x < 0 {
			x = 0
		}
		if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		return y*w + x
	}

	for it := 0; it < e.iters; it++ {
		// Step 1: blurring (3×3 mean filter, reading the shared image).
		r.Each(func(p *proc) {
			lo, hi := block(h, nproc, p.cpu)
			for y := lo; y < hi; y++ {
				for x := 0; x < w; x++ {
					var s float64
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							idx := at(x+dx, y+dy)
							p.Read(regImg.Index(idx, 8))
							s += img[idx]
						}
					}
					blur[y*w+x] = s / 9
					p.Compute(12)
					p.Write(regBlur.Index(y*w+x, 8))
				}
			}
		})
		r.Barrier()

		// Step 2: registering — central-difference gradient magnitude.
		r.Each(func(p *proc) {
			lo, hi := block(h, nproc, p.cpu)
			for y := lo; y < hi; y++ {
				for x := 0; x < w; x++ {
					l, rr := at(x-1, y), at(x+1, y)
					u, d := at(x, y-1), at(x, y+1)
					p.Read(regBlur.Index(l, 8))
					p.Read(regBlur.Index(rr, 8))
					p.Read(regBlur.Index(u, 8))
					p.Read(regBlur.Index(d, 8))
					gx := blur[rr] - blur[l]
					gy := blur[d] - blur[u]
					grad[y*w+x] = math.Abs(gx) + math.Abs(gy)
					p.Compute(7)
					p.Write(regGrad.Index(y*w+x, 8))
				}
			}
		})
		r.Barrier()

		// Step 3: matching — thresholded decision merged with the previous
		// map (reads old value, writes new).
		const threshold = 0.25
		r.Each(func(p *proc) {
			lo, hi := block(h, nproc, p.cpu)
			for y := lo; y < hi; y++ {
				for x := 0; x < w; x++ {
					p.Read(regGrad.Index(y*w+x, 8))
					p.Read(regEdge.Index(y*w+x, 1))
					v := uint8(0)
					if grad[y*w+x] > threshold {
						v = 1
					}
					if it > 0 && edges[y*w+x] == 1 && grad[y*w+x] > threshold/2 {
						v = 1 // hysteresis: keep previously detected edges
					}
					edges[y*w+x] = v
					p.Compute(6)
					p.Write(regEdge.Index(y*w+x, 1))
				}
			}
		})
		r.Barrier()

		// Step 4: repeat or halt — feed the blurred image back as the next
		// iteration's input, as the iterative algorithm refines its map.
		r.Each(func(p *proc) {
			lo, hi := block(h, nproc, p.cpu)
			for y := lo; y < hi; y++ {
				for x := 0; x < w; x++ {
					p.Read(regBlur.Index(y*w+x, 8))
					img[y*w+x] = blur[y*w+x]
					p.Compute(3)
					p.Write(regImg.Index(y*w+x, 8))
				}
			}
		})
		r.Barrier()
	}
	return edges, nil
}
