package workloads

import (
	"fmt"

	"memhier/internal/trace"
)

// TPCC is a synthetic transaction-processing workload standing in for the
// TPC-C measurement the paper cites in §5.2 (α=1.73, β=1222.66, γ=0.36,
// with β growing with the data set). Each transaction walks a B-tree-like
// index (pointer-chasing reads over a large region), reads and updates a
// handful of rows selected nearly uniformly over a warehouse-scaled table,
// and appends a log record. The near-uniform row selection over a footprint
// far larger than any cache is what produces the order-of-magnitude-larger
// β the paper reports for commercial workloads.
type TPCC struct {
	warehouses int
	txns       int
}

// Rows per warehouse and bytes per row of the synthetic table.
const (
	tpccRowsPerWarehouse = 1 << 14
	tpccRowBytes         = 64
	tpccIndexFanout      = 64
)

// NewTPCC returns the synthetic commercial workload with the given number
// of warehouses and total transactions. It panics on non-positive values.
func NewTPCC(warehouses, txns int) *TPCC {
	if warehouses < 1 || txns < 1 {
		panic(fmt.Sprintf("workloads: bad TPCC config warehouses=%d txns=%d", warehouses, txns))
	}
	return &TPCC{warehouses: warehouses, txns: txns}
}

// Name implements Workload.
func (t *TPCC) Name() string { return "TPC-C" }

// EventHint implements EventHinter. A transaction walks the B-tree-like
// index and touches a bounded row set: ~20 events per transaction measured;
// 22 covers per-processor skew.
func (t *TPCC) EventHint(nproc int) int {
	return 22 * t.txns / nproc
}

// Description implements Workload.
func (t *TPCC) Description() string {
	return fmt.Sprintf("synthetic OLTP, %d warehouses, %d transactions", t.warehouses, t.txns)
}

// Run implements Workload.
func (t *TPCC) Run(nproc int, sink trace.Sink) error {
	_, err := t.Execute(nproc, sink)
	return err
}

// Stats summarizes an Execute run.
type Stats struct {
	Transactions int
	RowsTouched  int
}

// Execute runs the instrumented transaction mix and returns summary
// statistics.
func (t *TPCC) Execute(nproc int, sink trace.Sink) (Stats, error) {
	if nproc < 1 {
		return Stats{}, fmt.Errorf("workloads: TPCC needs nproc >= 1, got %d", nproc)
	}
	rows := t.warehouses * tpccRowsPerWarehouse
	// Index: one entry per row plus interior nodes (fanout tree).
	indexEntries := rows + rows/tpccIndexFanout + tpccIndexFanout

	as := trace.NewAddressSpace()
	regTable := as.Alloc("tpcc.table", uint64(rows)*tpccRowBytes, 64)
	regIndex := as.Alloc("tpcc.index", uint64(indexEntries)*16, 64)
	regLog := as.Alloc("tpcc.log", uint64(t.txns)*32, 64)

	depth := 1
	for f := tpccIndexFanout; f < rows; f *= tpccIndexFanout {
		depth++
	}

	r := newRunner(nproc, sink)
	var stats Stats

	// Commercial workloads synchronize rarely; we checkpoint (barrier) a
	// few times over the run so the SPMD trace stays bulk-synchronous.
	const checkpoints = 4
	for cp := 0; cp < checkpoints; cp++ {
		r.Each(func(p *proc) {
			lo, hi := block(t.txns, nproc, p.cpu)
			clo, chi := block(hi-lo, checkpoints, cp)
			state := uint64(p.cpu)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
			next := func(bound int) int {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return int(state % uint64(bound))
			}
			for txn := lo + clo; txn < lo+chi; txn++ {
				// Index walk: root to leaf, one read per level plus key
				// comparisons.
				node := 0
				for d := 0; d < depth; d++ {
					p.Read(regIndex.Index(node%indexEntries, 16))
					p.Compute(4)
					node = node*tpccIndexFanout + 1 + next(tpccIndexFanout)
				}
				// Row touches: read-modify-write a few nearly uniformly
				// selected rows (two fields each).
				touches := 2 + next(3)
				for k := 0; k < touches; k++ {
					row := next(rows)
					p.Read(regTable.Index(row, tpccRowBytes))
					p.Read(regTable.Index(row, tpccRowBytes) + 8)
					p.Compute(6)
					p.Write(regTable.Index(row, tpccRowBytes) + 8)
					stats.RowsTouched++
				}
				// Log append.
				p.Compute(3)
				p.Write(regLog.Index(txn, 32))
				stats.Transactions++
			}
		})
		r.Barrier()
	}
	return stats, nil
}
