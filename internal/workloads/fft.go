package workloads

import (
	"fmt"
	"math"
	"math/bits"

	"memhier/internal/trace"
)

// FFT is the SPLASH-2-style complex 1-D six-step FFT kernel (paper §5.2):
// the n data points are viewed as an m×m matrix (n = m²), and the transform
// proceeds as transpose, m-point row FFTs, twiddle multiplication,
// transpose, row FFTs, transpose. Rows are partitioned contiguously across
// processors and a barrier separates the steps, as in the paper's
// description where each processor's contiguous submatrix lives in its
// local memory.
type FFT struct {
	n int // total points, a power of 4
	m int // matrix edge, sqrt(n)
}

// NewFFT returns the kernel for n complex points. n must be a power of 4
// (so the data form a square power-of-two matrix); NewFFT panics otherwise,
// since workload configurations are static program data.
func NewFFT(n int) *FFT {
	if n < 4 || bits.OnesCount(uint(n)) != 1 || bits.TrailingZeros(uint(n))%2 != 0 {
		panic(fmt.Sprintf("workloads: FFT size %d is not a power of 4", n))
	}
	return &FFT{n: n, m: 1 << (bits.TrailingZeros(uint(n)) / 2)}
}

// Name implements Workload.
func (f *FFT) Name() string { return "FFT" }

// Description implements Workload.
func (f *FFT) Description() string {
	return fmt.Sprintf("complex 1-D six-step FFT, %d points (%dx%d)", f.n, f.m, f.m)
}

// Points returns the transform size.
func (f *FFT) Points() int { return f.n }

// EventHint implements EventHinter. The six-step FFT emits ~4.6·n·log2(n)
// events in total (three transposes at Θ(n), two rounds of row FFTs at
// Θ(n·log n) dominating); 5·n·log2(n) bounds the busiest processor's share
// with room for partition imbalance.
func (f *FFT) EventHint(nproc int) int {
	return 5 * f.n * bits.Len(uint(f.n-1)) / nproc
}

// Input returns the kernel's deterministic input signal.
func (f *FFT) Input() []complex128 {
	x := make([]complex128, f.n)
	for i := range x {
		// A deterministic, aperiodic signal exercising all outputs.
		t := float64(i)
		x[i] = complex(math.Sin(0.37*t)+0.25*math.Cos(2.11*t), 0.5*math.Sin(1.03*t+1))
	}
	return x
}

// Run implements Workload.
func (f *FFT) Run(nproc int, sink trace.Sink) error {
	_, err := f.Transform(nproc, sink)
	return err
}

// Transform runs the instrumented six-step FFT over nproc processors and
// returns the spectrum in natural order (so tests can check it against a
// reference DFT).
func (f *FFT) Transform(nproc int, sink trace.Sink) ([]complex128, error) {
	if nproc < 1 {
		return nil, fmt.Errorf("workloads: FFT needs nproc >= 1, got %d", nproc)
	}
	if nproc > f.m {
		return nil, fmt.Errorf("workloads: FFT with %d rows cannot use %d processors", f.m, nproc)
	}
	n, m := f.n, f.m

	as := trace.NewAddressSpace()
	const celem = 16 // bytes per complex element
	regA := as.Alloc("fft.A", uint64(n)*celem, 64)
	regB := as.Alloc("fft.B", uint64(n)*celem, 64)
	regW := as.Alloc("fft.roots", uint64(n)*celem, 64)

	a := f.Input()
	b := make([]complex128, n)
	// roots[k] = e^{-2πik/n}; the m-point row FFTs index it with stride m
	// (w_m^j = w_n^{j·m}), so one table serves both uses, mirroring the
	// paper's single "roots of unity" data set.
	roots := make([]complex128, n)
	for k := range roots {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		roots[k] = complex(c, s)
	}

	r := newRunner(nproc, sink)

	// Step 0: every processor initializes its share of the roots table
	// (counted as writes plus the sincos work).
	r.Each(func(p *proc) {
		lo, hi := block(n, nproc, p.cpu)
		for k := lo; k < hi; k++ {
			p.Compute(18) // sincos + index arithmetic
			p.Write(regW.Index(k, celem))
		}
	})
	r.Barrier()

	transpose := func(src []complex128, srcReg trace.Region, dst []complex128, dstReg trace.Region) {
		r.Each(func(p *proc) {
			lo, hi := block(m, nproc, p.cpu)
			for i := lo; i < hi; i++ { // destination rows
				for j := 0; j < m; j++ {
					p.Compute(4)
					p.Read(srcReg.Index(j*m+i, celem))
					dst[i*m+j] = src[j*m+i]
					p.Write(dstReg.Index(i*m+j, celem))
				}
			}
		})
		r.Barrier()
	}

	rowFFTs := func(data []complex128, reg trace.Region) {
		r.Each(func(p *proc) {
			lo, hi := block(m, nproc, p.cpu)
			for row := lo; row < hi; row++ {
				f.rowFFT(p, data, reg, roots, regW, row)
			}
		})
		r.Barrier()
	}

	// Step 1: transpose A -> B.
	transpose(a, regA, b, regB)
	// Step 2: m-point FFTs on rows of B.
	rowFFTs(b, regB)
	// Step 3: twiddle: B[i][j] *= w_n^{i*j}.
	r.Each(func(p *proc) {
		lo, hi := block(m, nproc, p.cpu)
		for i := lo; i < hi; i++ {
			for j := 0; j < m; j++ {
				p.Read(regB.Index(i*m+j, celem))
				p.Read(regW.Index((i*j)%n, celem))
				p.Compute(9) // complex multiply + indexing
				b[i*m+j] *= roots[(i*j)%n]
				p.Write(regB.Index(i*m+j, celem))
			}
		}
	})
	r.Barrier()
	// Step 4: transpose B -> A.
	transpose(b, regB, a, regA)
	// Step 5: m-point FFTs on rows of A.
	rowFFTs(a, regA)
	// Step 6: transpose A -> B; B then holds the spectrum in natural order.
	transpose(a, regA, b, regB)

	return b, nil
}

// rowFFT performs an instrumented in-place iterative radix-2 FFT on row
// `row` of the m×m matrix stored in data.
func (f *FFT) rowFFT(p *proc, data []complex128, reg trace.Region, roots []complex128, regW trace.Region, row int) {
	m := f.m
	base := row * m
	// Bit-reversal permutation.
	logm := bits.TrailingZeros(uint(m))
	for i := 0; i < m; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - logm))
		p.Compute(4)
		if i < j {
			p.Read(reg.Index(base+i, 16))
			p.Read(reg.Index(base+j, 16))
			data[base+i], data[base+j] = data[base+j], data[base+i]
			p.Write(reg.Index(base+i, 16))
			p.Write(reg.Index(base+j, 16))
		}
	}
	// Butterfly stages. w_len^k = roots[k * (n/len)].
	for length := 2; length <= m; length <<= 1 {
		stride := f.n / length
		for start := 0; start < m; start += length {
			half := length / 2
			for k := 0; k < half; k++ {
				i := base + start + k
				j := i + half
				p.Read(regW.Index(k*stride, 16))
				p.Read(reg.Index(i, 16))
				p.Read(reg.Index(j, 16))
				w := roots[k*stride]
				t := w * data[j]
				data[j] = data[i] - t
				data[i] += t
				p.Compute(20) // complex mul/add/sub + loop and index overhead
				p.Write(reg.Index(i, 16))
				p.Write(reg.Index(j, 16))
			}
		}
	}
}
