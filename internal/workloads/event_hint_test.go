package workloads

import "testing"

// TestEventHintBounds keeps the kernels' EventHint estimates honest: every
// hint must cover the busiest processor's actual event count (so the
// pre-sized slice never regrows) without over-reserving past 3x (so a hint
// never wastes multiples of the trace's real memory).
func TestEventHintBounds(t *testing.T) {
	ws := []Workload{
		NewFFT(1 << 12),
		NewLU(96, 8),
		NewRadix(1<<15, 256),
		NewEdge(48, 48, 3),
		NewTPCC(8, 20000),
	}
	for _, w := range ws {
		h, ok := w.(EventHinter)
		if !ok {
			t.Errorf("%s does not implement EventHinter", w.Name())
			continue
		}
		for _, nproc := range []int{1, 4} {
			tr, err := GenerateTrace(w, nproc)
			if err != nil {
				t.Fatalf("%s nproc=%d: %v", w.Name(), nproc, err)
			}
			max := 0
			for _, s := range tr.Streams {
				if len(s.Events) > max {
					max = len(s.Events)
				}
			}
			hint := h.EventHint(nproc)
			if hint < max {
				t.Errorf("%s nproc=%d: hint %d < busiest stream %d (pre-sized slice would regrow)",
					w.Name(), nproc, hint, max)
			}
			if hint > 3*max {
				t.Errorf("%s nproc=%d: hint %d > 3x busiest stream %d (wasteful over-reservation)",
					w.Name(), nproc, hint, max)
			}
		}
	}
}

// TestGenerateTraceSingleAllocation verifies the hint actually lands: after
// generation, the busiest stream's backing array must be the pre-sized one
// (capacity exactly the hint), proving no growth reallocation happened.
func TestGenerateTraceSingleAllocation(t *testing.T) {
	w := NewRadix(1<<12, 256)
	const nproc = 2
	tr, err := GenerateTrace(w, nproc)
	if err != nil {
		t.Fatal(err)
	}
	want := w.EventHint(nproc)
	for _, s := range tr.Streams {
		if cap(s.Events) != want {
			t.Errorf("cpu %d: event slice capacity %d, want pre-sized %d", s.CPU, cap(s.Events), want)
		}
	}
}
