package workloads

import (
	"fmt"

	"memhier/internal/trace"
)

// LU is the SPLASH-2-style blocked dense LU factorization kernel (paper
// §5.2): the n×n matrix is divided into B×B blocks assigned to processors
// with a 2-D scatter (cyclic) decomposition; traced addresses use a
// block-major layout so that a block is contiguous in memory, the layout
// SPLASH-2 uses to exploit spatial locality. Factorization is without
// pivoting (the test input is diagonally dominant).
type LU struct {
	n int // matrix edge
	b int // block edge; b divides n
}

// NewLU returns the kernel for an n×n matrix with b×b blocks. It panics if
// b does not divide n (static configuration error).
func NewLU(n, b int) *LU {
	if n <= 0 || b <= 0 || n%b != 0 {
		panic(fmt.Sprintf("workloads: LU block size %d must divide matrix size %d", b, n))
	}
	return &LU{n: n, b: b}
}

// Name implements Workload.
func (l *LU) Name() string { return "LU" }

// EventHint implements EventHinter. Blocked LU emits ~1.4·n³ events in total
// (the trailing-submatrix updates dominate at 2n³/3 multiply-adds); 5n³/3
// bounds the busiest processor's share, whose block ownership is uneven.
func (l *LU) EventHint(nproc int) int {
	return 5 * l.n * l.n * l.n / (3 * nproc)
}

// Description implements Workload.
func (l *LU) Description() string {
	return fmt.Sprintf("blocked dense LU, %dx%d matrix, %dx%d blocks, 2-D scatter", l.n, l.n, l.b, l.b)
}

// N returns the matrix edge length.
func (l *LU) N() int { return l.n }

// Input returns the deterministic, diagonally dominant input matrix in
// row-major order.
func (l *LU) Input() []float64 {
	n := l.n
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Pseudo-random but deterministic off-diagonal entries in
			// (-1, 1); strong diagonal keeps pivot-free LU stable.
			v := float64((i*2654435761+j*40503)%1997)/998.5 - 1
			a[i*n+j] = v
			if i == j {
				a[i*n+j] = float64(n) + 2
			}
		}
	}
	return a
}

// addr returns the traced byte address of element (i, j) in the block-major
// layout: block (I, J) occupies a contiguous b*b run of float64s.
func (l *LU) addr(reg trace.Region, i, j int) uint64 {
	b := l.b
	nb := l.n / b
	I, J := i/b, j/b
	bi, bj := i%b, j%b
	return reg.Index(((I*nb+J)*b*b)+(bi*b+bj), 8)
}

// Run implements Workload.
func (l *LU) Run(nproc int, sink trace.Sink) error {
	_, err := l.Factor(nproc, sink)
	return err
}

// Factor runs the instrumented factorization and returns the packed LU
// result (unit lower triangle of L below the diagonal, U on and above) in
// row-major order, so tests can verify L·U against the input.
func (l *LU) Factor(nproc int, sink trace.Sink) ([]float64, error) {
	if nproc < 1 {
		return nil, fmt.Errorf("workloads: LU needs nproc >= 1, got %d", nproc)
	}
	n, b := l.n, l.b
	nb := n / b
	pr, pc := procGrid(nproc)

	a := l.Input()
	as := trace.NewAddressSpace()
	reg := as.Alloc("lu.A", uint64(n)*uint64(n)*8, 64)

	owner := func(I, J int) int { return (I%pr)*pc + (J % pc) }

	r := newRunner(nproc, sink)

	for k := 0; k < nb; k++ {
		k0 := k * b
		// Step 1: factor the diagonal block (its owner only); the other
		// processors proceed straight to the barrier.
		r.Each(func(p *proc) {
			if p.cpu != owner(k, k) {
				return
			}
			for kk := 0; kk < b; kk++ {
				i0 := k0 + kk
				p.Read(l.addr(reg, i0, i0))
				piv := a[i0*n+i0]
				p.Compute(3)
				for i := kk + 1; i < b; i++ {
					ii := k0 + i
					p.Read(l.addr(reg, ii, i0))
					a[ii*n+i0] /= piv
					p.Compute(4)
					p.Write(l.addr(reg, ii, i0))
					for j := kk + 1; j < b; j++ {
						jj := k0 + j
						p.Read(l.addr(reg, ii, jj))
						p.Read(l.addr(reg, i0, jj))
						a[ii*n+jj] -= a[ii*n+i0] * a[i0*n+jj]
						p.Compute(6)
						p.Write(l.addr(reg, ii, jj))
					}
				}
			}
		})
		r.Barrier()

		// Step 2: perimeter blocks. Row panel (k, J): solve L(k,k)·X = A,
		// column panel (I, k): solve X·U(k,k) = A.
		r.Each(func(p *proc) {
			for J := k + 1; J < nb; J++ {
				if p.cpu != owner(k, J) {
					continue
				}
				j0 := J * b
				for kk := 0; kk < b; kk++ {
					for j := 0; j < b; j++ {
						for i := kk + 1; i < b; i++ {
							p.Read(l.addr(reg, k0+i, k0+kk))
							p.Read(l.addr(reg, k0+kk, j0+j))
							p.Read(l.addr(reg, k0+i, j0+j))
							a[(k0+i)*n+j0+j] -= a[(k0+i)*n+k0+kk] * a[(k0+kk)*n+j0+j]
							p.Compute(9)
							p.Write(l.addr(reg, k0+i, j0+j))
						}
					}
				}
			}
			for I := k + 1; I < nb; I++ {
				if p.cpu != owner(I, k) {
					continue
				}
				i0 := I * b
				for kk := 0; kk < b; kk++ {
					p.Read(l.addr(reg, k0+kk, k0+kk))
					piv := a[(k0+kk)*n+k0+kk]
					p.Compute(3)
					for i := 0; i < b; i++ {
						p.Read(l.addr(reg, i0+i, k0+kk))
						a[(i0+i)*n+k0+kk] /= piv
						p.Compute(4)
						p.Write(l.addr(reg, i0+i, k0+kk))
						for j := kk + 1; j < b; j++ {
							p.Read(l.addr(reg, i0+i, k0+j))
							p.Read(l.addr(reg, k0+kk, k0+j))
							a[(i0+i)*n+k0+j] -= a[(i0+i)*n+k0+kk] * a[(k0+kk)*n+k0+j]
							p.Compute(9)
							p.Write(l.addr(reg, i0+i, k0+j))
						}
					}
				}
			}
		})
		r.Barrier()

		// Step 3: interior update A[I][J] -= A[I][k] · A[k][J].
		r.Each(func(p *proc) {
			for I := k + 1; I < nb; I++ {
				for J := k + 1; J < nb; J++ {
					if p.cpu != owner(I, J) {
						continue
					}
					i0, j0 := I*b, J*b
					for i := 0; i < b; i++ {
						for kk := 0; kk < b; kk++ {
							p.Read(l.addr(reg, i0+i, k0+kk))
							lik := a[(i0+i)*n+k0+kk]
							p.Compute(2)
							for j := 0; j < b; j++ {
								p.Read(l.addr(reg, k0+kk, j0+j))
								p.Read(l.addr(reg, i0+i, j0+j))
								a[(i0+i)*n+j0+j] -= lik * a[(k0+kk)*n+j0+j]
								p.Compute(7)
								p.Write(l.addr(reg, i0+i, j0+j))
							}
						}
					}
				}
			}
		})
		r.Barrier()
	}
	return a, nil
}

// procGrid factors nproc into the most square pr×pc grid with pr <= pc.
func procGrid(nproc int) (pr, pc int) {
	pr = 1
	for d := 1; d*d <= nproc; d++ {
		if nproc%d == 0 {
			pr = d
		}
	}
	return pr, nproc / pr
}
