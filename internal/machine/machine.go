// Package machine defines the cluster platform descriptions of the paper:
// the three platform classes (a single SMP, a cluster of workstations, a
// cluster of SMPs), the two cluster network families (bus-based Ethernet
// and a switch-based ATM), the configuration catalogs C1–C15 of Tables 3–5,
// and the memory-hierarchy latency table of §5.1 (all in CPU cycles of a
// 200 MHz processor).
package machine

import (
	"fmt"
	"strings"
)

// PlatformKind classifies the three parallel systems of Table 1.
type PlatformKind int

// The platform classes.
const (
	SMP        PlatformKind = iota // a single bus-based SMP (gray block A)
	ClusterWS                      // a cluster of workstations (blocks B, C)
	ClusterSMP                     // a cluster of SMPs (blocks A, B, C)
)

// String returns the paper's name for the platform class.
func (k PlatformKind) String() string {
	switch k {
	case SMP:
		return "SMP"
	case ClusterWS:
		return "cluster of workstations"
	case ClusterSMP:
		return "cluster of SMPs"
	}
	return fmt.Sprintf("PlatformKind(%d)", int(k))
}

// MarshalText encodes the platform kind as its short CLI/API spelling
// ("smp", "ws", "csmp"), so machine.Config JSON stays human-readable.
func (k PlatformKind) MarshalText() ([]byte, error) {
	switch k {
	case SMP:
		return []byte("smp"), nil
	case ClusterWS:
		return []byte("ws"), nil
	case ClusterSMP:
		return []byte("csmp"), nil
	}
	return nil, fmt.Errorf("machine: unknown platform kind %d", int(k))
}

// UnmarshalText parses a platform kind via ParsePlatformKind.
func (k *PlatformKind) UnmarshalText(text []byte) error {
	v, err := ParsePlatformKind(string(text))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// ParsePlatformKind parses the CLI/API spellings of the platform classes:
// "smp", "ws" (cluster of workstations), "csmp" (cluster of SMPs).
func ParsePlatformKind(s string) (PlatformKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "smp":
		return SMP, nil
	case "ws", "cluster-ws", "workstations":
		return ClusterWS, nil
	case "csmp", "cluster-smp", "smp-cluster":
		return ClusterSMP, nil
	}
	return 0, fmt.Errorf("machine: unknown platform kind %q (want smp, ws, csmp)", s)
}

// ExtraLevels returns the additional memory-hierarchy levels (Table 1's
// gray blocks) the platform adds over a uniprocessor.
func (k PlatformKind) ExtraLevels() []string {
	switch k {
	case SMP:
		return []string{"A"}
	case ClusterWS:
		return []string{"B", "C"}
	case ClusterSMP:
		return []string{"A", "B", "C"}
	}
	return nil
}

// NetworkKind is the cluster interconnect family (Network 2/3 in Figure 1).
type NetworkKind int

// The cluster networks evaluated in the paper.
const (
	NetNone      NetworkKind = iota // single machine; no cluster network
	NetBus10                        // 10 Mb Ethernet (bus)
	NetBus100                       // 100 Mb Fast Ethernet (bus)
	NetSwitch155                    // 155 Mb ATM (switch)
)

// String returns a short label for the network.
func (n NetworkKind) String() string {
	switch n {
	case NetNone:
		return "none"
	case NetBus10:
		return "10Mb bus"
	case NetBus100:
		return "100Mb bus"
	case NetSwitch155:
		return "155Mb switch"
	}
	return fmt.Sprintf("NetworkKind(%d)", int(n))
}

// IsBus reports whether the network is bus-based (a single shared medium).
func (n NetworkKind) IsBus() bool { return n == NetBus10 || n == NetBus100 }

// MarshalText encodes the network as its short CLI/API spelling ("none",
// "10mb", "100mb", "atm").
func (n NetworkKind) MarshalText() ([]byte, error) {
	switch n {
	case NetNone:
		return []byte("none"), nil
	case NetBus10:
		return []byte("10mb"), nil
	case NetBus100:
		return []byte("100mb"), nil
	case NetSwitch155:
		return []byte("atm"), nil
	}
	return nil, fmt.Errorf("machine: unknown network kind %d", int(n))
}

// UnmarshalText parses a network via ParseNetwork.
func (n *NetworkKind) UnmarshalText(text []byte) error {
	v, err := ParseNetwork(string(text))
	if err != nil {
		return err
	}
	*n = v
	return nil
}

// ParseNetwork parses the CLI/API spellings of the cluster networks: "10"
// or "10mb" (Ethernet bus), "100" or "100mb" (Fast Ethernet bus), "155",
// "atm" or "switch" (the ATM switch), and "" or "none" for no network.
func ParseNetwork(s string) (NetworkKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return NetNone, nil
	case "10", "10mb", "ethernet":
		return NetBus10, nil
	case "100", "100mb", "fast-ethernet":
		return NetBus100, nil
	case "155", "155mb", "atm", "switch":
		return NetSwitch155, nil
	}
	return 0, fmt.Errorf("machine: unknown network %q (want 10, 100, atm)", s)
}

// CacheLevel describes one level of a per-processor cache hierarchy.
type CacheLevel struct {
	// Bytes is the level's capacity.
	Bytes int64 `json:"bytes"`
	// LatencyCycles is the level's access latency in CPU cycles. Zero on
	// the first level means the §5.1 default (one cycle); deeper levels
	// normally set it explicitly. Deep cache levels are on-package SRAM
	// that tracks the core, so — like the L1 hit cost — their cycle
	// latencies do not scale with the clock.
	LatencyCycles float64 `json:"latency_cycles,omitempty"`
}

// MaxCacheLevels bounds the hierarchy depth: L1, L2, L3. Every platform the
// predictor targets fits in three levels, and the simulator's access-class
// accounting enumerates them.
const MaxCacheLevels = 3

// Config is one cluster platform configuration. The JSON encoding is part
// of the chc-serve API surface: kinds and networks serialize as their short
// text spellings via the TextMarshaler implementations above.
type Config struct {
	Name  string       `json:"name"`
	Kind  PlatformKind `json:"kind"`
	N     int          `json:"machines"` // machines in the cluster
	Procs int          `json:"procs"`    // processors per machine (n)
	// CacheBytes is the per-processor level-1 cache capacity. It predates
	// Levels and remains the canonical spelling for one-level platforms
	// (every C1–C15 catalog entry): a config with an empty Levels list
	// means a single cache level of CacheBytes at the default hit latency,
	// and marshals byte-identically to the pre-Levels encoding.
	CacheBytes  int64 `json:"cache_bytes"`  // per-processor L1 capacity (deprecated alias, see Levels)
	MemoryBytes int64 `json:"memory_bytes"` // per-machine memory capacity
	// Levels is the ordered per-processor cache hierarchy, innermost
	// first. Empty means the one-level hierarchy [{Bytes: CacheBytes}].
	// When non-empty, Levels[0].Bytes and CacheBytes must agree (Canonical
	// repairs a zero CacheBytes).
	Levels   []CacheLevel `json:"cache_levels,omitempty"`
	Net      NetworkKind  `json:"net"`
	ClockMHz float64      `json:"clock_mhz"` // processor clock; instruction rate is 1/cycle
}

// TotalProcs returns n·N, the processor count of the whole platform.
func (c Config) TotalProcs() int { return c.N * c.Procs }

// CacheLevels returns the per-processor hierarchy in canonical expanded
// form, innermost first: the explicit Levels list, or the one-level
// hierarchy the legacy CacheBytes field describes.
func (c Config) CacheLevels() []CacheLevel {
	if len(c.Levels) > 0 {
		return c.Levels
	}
	return []CacheLevel{{Bytes: c.CacheBytes}}
}

// LastCacheBytes returns the capacity of the outermost cache level: the
// boundary at which references spill to memory.
func (c Config) LastCacheBytes() int64 {
	if n := len(c.Levels); n > 0 {
		return c.Levels[n-1].Bytes
	}
	return c.CacheBytes
}

// L1Latency returns the level-1 access latency, or def where the config
// leaves it at the default.
func (c Config) L1Latency(def float64) float64 {
	if len(c.Levels) > 0 && c.Levels[0].LatencyCycles > 0 {
		return c.Levels[0].LatencyCycles
	}
	return def
}

// Canonical returns the configuration in canonical form: a one-element
// Levels list at the default latency folds back into the legacy
// CacheBytes-only spelling (so the two spellings are one platform, with
// one JSON encoding and one server cache key), and a multi-level config
// has CacheBytes pinned to its first level. Validate accepts exactly the
// configurations whose Canonical form it accepts.
func (c Config) Canonical() Config {
	switch {
	case len(c.Levels) == 0:
		return c
	case len(c.Levels) == 1 && c.Levels[0].LatencyCycles == 0:
		c.CacheBytes = c.Levels[0].Bytes
		c.Levels = nil
	default:
		levels := make([]CacheLevel, len(c.Levels))
		copy(levels, c.Levels)
		c.Levels = levels
		c.CacheBytes = c.Levels[0].Bytes
	}
	return c
}

// validateLevels checks the explicit hierarchy: capacities positive and
// non-decreasing inward-out, latencies non-negative, depth bounded, and
// the deprecated CacheBytes alias in agreement when set.
func (c Config) validateLevels() error {
	if len(c.Levels) == 0 {
		return nil
	}
	if len(c.Levels) > MaxCacheLevels {
		return fmt.Errorf("machine: %s: at most %d cache levels supported, got %d",
			c.Name, MaxCacheLevels, len(c.Levels))
	}
	for i, lv := range c.Levels {
		if lv.Bytes <= 0 {
			return fmt.Errorf("machine: %s: cache level %d size must be positive, got %d",
				c.Name, i+1, lv.Bytes)
		}
		if lv.LatencyCycles < 0 {
			return fmt.Errorf("machine: %s: cache level %d latency must be non-negative, got %v",
				c.Name, i+1, lv.LatencyCycles)
		}
		if i > 0 && lv.Bytes < c.Levels[i-1].Bytes {
			return fmt.Errorf("machine: %s: cache level %d (%d bytes) smaller than level %d (%d bytes)",
				c.Name, i+1, lv.Bytes, i, c.Levels[i-1].Bytes)
		}
	}
	if c.CacheBytes != 0 && c.CacheBytes != c.Levels[0].Bytes {
		return fmt.Errorf("machine: %s: cache_bytes (%d) disagrees with cache level 1 (%d bytes)",
			c.Name, c.CacheBytes, c.Levels[0].Bytes)
	}
	return nil
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("machine: %s: need at least one machine, got %d", c.Name, c.N)
	case c.Procs < 1:
		return fmt.Errorf("machine: %s: need at least one processor per machine, got %d", c.Name, c.Procs)
	case len(c.Levels) == 0 && c.CacheBytes <= 0:
		return fmt.Errorf("machine: %s: cache size must be positive, got %d", c.Name, c.CacheBytes)
	case c.MemoryBytes <= 0:
		return fmt.Errorf("machine: %s: memory size must be positive, got %d", c.Name, c.MemoryBytes)
	case c.ClockMHz <= 0:
		return fmt.Errorf("machine: %s: clock must be positive, got %v", c.Name, c.ClockMHz)
	}
	if err := c.validateLevels(); err != nil {
		return err
	}
	switch c.Kind {
	case SMP:
		if c.N != 1 {
			return fmt.Errorf("machine: %s: a single SMP has N=1, got %d", c.Name, c.N)
		}
	case ClusterWS:
		if c.Procs != 1 {
			return fmt.Errorf("machine: %s: workstations are uniprocessors, got n=%d", c.Name, c.Procs)
		}
		if c.N > 1 && c.Net == NetNone {
			return fmt.Errorf("machine: %s: a cluster needs a network", c.Name)
		}
	case ClusterSMP:
		if c.N > 1 && c.Net == NetNone {
			return fmt.Errorf("machine: %s: a cluster needs a network", c.Name)
		}
	default:
		return fmt.Errorf("machine: %s: unknown platform kind %d", c.Name, int(c.Kind))
	}
	return nil
}

// Scaled returns a copy with cache and memory capacities divided by factor
// (at least one byte each). The validation experiments use scaled-down
// capacities together with scaled-down problem sizes so that every
// hierarchy level carries real traffic while runs stay fast.
//
// factor == 1 is the identity; factor < 1 (including zero and negative
// divisors) is an error rather than a silent no-op, so a miswired
// `-divisor 0` fails loudly instead of running unscaled.
func (c Config) Scaled(factor int) (Config, error) {
	if factor < 1 {
		return Config{}, fmt.Errorf("machine: %s: capacity divisor must be >= 1, got %d", c.Name, factor)
	}
	if factor == 1 {
		return c, nil
	}
	s := c
	s.Name = fmt.Sprintf("%s/%d", c.Name, factor)
	s.CacheBytes = maxInt64(1, c.CacheBytes/int64(factor))
	s.MemoryBytes = maxInt64(1, c.MemoryBytes/int64(factor))
	if len(c.Levels) > 0 {
		s.Levels = make([]CacheLevel, len(c.Levels))
		for i, lv := range c.Levels {
			lv.Bytes = maxInt64(1, lv.Bytes/int64(factor))
			s.Levels[i] = lv
		}
		s.CacheBytes = s.Levels[0].Bytes
	}
	return s, nil
}

// CacheDesc renders the cache hierarchy for human-readable output. A
// one-level config keeps the historical "%dKB" form (part of the rendered
// byte-identity contract); multi-level configs list every level, e.g.
// "32KB+1MB+4MB".
func (c Config) CacheDesc() string {
	if len(c.Levels) == 0 {
		return fmt.Sprintf("%dKB", c.CacheBytes/kb)
	}
	parts := make([]string, len(c.Levels))
	for i, lv := range c.Levels {
		parts[i] = sizeDesc(lv.Bytes)
	}
	return strings.Join(parts, "+")
}

// sizeDesc formats a capacity with the largest exact binary unit.
func sizeDesc(b int64) string {
	switch {
	case b >= mb && b%mb == 0:
		return fmt.Sprintf("%dMB", b/mb)
	case b >= kb && b%kb == 0:
		return fmt.Sprintf("%dKB", b/kb)
	}
	return fmt.Sprintf("%dB", b)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

const (
	kb = 1 << 10
	mb = 1 << 20
)

// SMPCatalog returns Table 3: the six SMP configurations C1–C6
// (200 MHz CPUs).
func SMPCatalog() []Config {
	mk := func(name string, n int, cache, mem int64) Config {
		return Config{Name: name, Kind: SMP, N: 1, Procs: n,
			CacheBytes: cache, MemoryBytes: mem, Net: NetNone, ClockMHz: 200}
	}
	return []Config{
		mk("C1", 2, 256*kb, 64*mb),
		mk("C2", 2, 512*kb, 64*mb),
		mk("C3", 2, 256*kb, 128*mb),
		mk("C4", 2, 512*kb, 128*mb),
		mk("C5", 4, 256*kb, 128*mb),
		mk("C6", 4, 512*kb, 128*mb),
	}
}

// WSCatalog returns Table 4: the five cluster-of-workstations
// configurations C7–C11 (200 MHz CPUs).
func WSCatalog() []Config {
	mk := func(name string, n int, cache, mem int64, net NetworkKind) Config {
		return Config{Name: name, Kind: ClusterWS, N: n, Procs: 1,
			CacheBytes: cache, MemoryBytes: mem, Net: net, ClockMHz: 200}
	}
	return []Config{
		mk("C7", 2, 256*kb, 32*mb, NetBus10),
		mk("C8", 4, 256*kb, 64*mb, NetBus100),
		mk("C9", 4, 512*kb, 64*mb, NetBus100),
		mk("C10", 4, 256*kb, 64*mb, NetSwitch155),
		mk("C11", 8, 512*kb, 64*mb, NetSwitch155),
	}
}

// SMPClusterCatalog returns Table 5: the four cluster-of-SMPs
// configurations C12–C15 (200 MHz CPUs).
func SMPClusterCatalog() []Config {
	mk := func(name string, n, N int, cache, mem int64, net NetworkKind) Config {
		return Config{Name: name, Kind: ClusterSMP, N: N, Procs: n,
			CacheBytes: cache, MemoryBytes: mem, Net: net, ClockMHz: 200}
	}
	return []Config{
		mk("C12", 2, 2, 256*kb, 64*mb, NetBus10),
		mk("C13", 2, 2, 256*kb, 128*mb, NetBus100),
		mk("C14", 4, 2, 256*kb, 128*mb, NetBus100),
		mk("C15", 4, 2, 256*kb, 128*mb, NetSwitch155),
	}
}

// Catalog returns all fifteen paper configurations C1–C15 in order.
func Catalog() []Config {
	all := SMPCatalog()
	all = append(all, WSCatalog()...)
	all = append(all, SMPClusterCatalog()...)
	return all
}

const gb = 1 << 30

// ModernCatalog returns present-day platform descriptions alongside the
// paper's 1999 tables: multi-level cache hierarchies and the clock speeds
// the paper's "speed gap" conclusion predicted. Clocks are exact multiples
// of the 200 MHz reference so every scaled latency stays an integral cycle
// count and the simulator keeps its exact integer-clock engine.
//
// These live in their own catalog — ByName resolves them, but Catalog()
// still returns exactly C1–C15, so the paper-reproduction tables and
// golden artifacts are untouched.
func ModernCatalog() []Config {
	return []Config{
		{
			// A two-socket server: 2×8 cores sharing one memory system.
			// Per-core L1/L2 plus a per-core share of a socket-level L3.
			Name: "modern-2s-server", Kind: SMP, N: 1, Procs: 16,
			CacheBytes: 32 * kb,
			Levels: []CacheLevel{
				{Bytes: 32 * kb, LatencyCycles: 4},
				{Bytes: 1 * mb, LatencyCycles: 14},
				{Bytes: 4 * mb, LatencyCycles: 44},
			},
			MemoryBytes: 64 * gb, Net: NetNone, ClockMHz: 3000,
		},
		{
			// A general-purpose 8-vCPU cloud instance.
			Name: "cloud-vm-8", Kind: SMP, N: 1, Procs: 8,
			CacheBytes: 32 * kb,
			Levels: []CacheLevel{
				{Bytes: 32 * kb, LatencyCycles: 4},
				{Bytes: 512 * kb, LatencyCycles: 12},
				{Bytes: 2 * mb, LatencyCycles: 40},
			},
			MemoryBytes: 32 * gb, Net: NetNone, ClockMHz: 2600,
		},
	}
}

// ByName returns the named configuration: a paper catalog entry (C1–C15)
// or a modern-platform entry (modern-2s-server, cloud-vm-8).
func ByName(name string) (Config, error) {
	name = strings.TrimSpace(name)
	for _, c := range Catalog() {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	for _, c := range ModernCatalog() {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("machine: no catalog configuration %q", name)
}

// Latencies is the §5.1 latency table, in CPU cycles. Remote latencies are
// per-network.
type Latencies struct {
	Instruction float64 // one instruction execution
	CacheHit    float64 // level-1 access
	LocalMemory float64 // cache miss to local memory
	LocalDisk   float64 // memory miss to local disk
	RemoteCache float64 // cache miss to a remote cache within an SMP

	RemoteNode   map[NetworkKind]float64 // cache miss to a remote node
	RemoteCached map[NetworkKind]float64 // cache miss to remotely cached data
}

// ReferenceClockMHz is the clock at which the §5.1 latency table is quoted.
const ReferenceClockMHz = 200

// LatenciesAt returns the latency table for a processor running at the
// given clock: memory, disk, and network are wall-time devices (their §5.1
// cycle counts are 200 MHz measurements, so their cycle cost scales with
// the clock), while instruction execution and the on-chip cache track the
// core. This is the "speed gap" of the paper's conclusions — the faster
// the processor, the more cycles every hierarchy level beyond the cache
// costs.
func LatenciesAt(kind PlatformKind, clockMHz float64) Latencies {
	l := DefaultLatencies(kind)
	if clockMHz <= 0 || clockMHz == ReferenceClockMHz {
		return l
	}
	f := clockMHz / ReferenceClockMHz
	l.LocalMemory *= f
	l.LocalDisk *= f
	l.RemoteCache *= f // a neighbour's cache is reached over the machine bus
	rn := make(map[NetworkKind]float64, len(l.RemoteNode))
	rc := make(map[NetworkKind]float64, len(l.RemoteCached))
	for k, v := range l.RemoteNode {
		rn[k] = v * f
	}
	for k, v := range l.RemoteCached {
		rc[k] = v * f
	}
	l.RemoteNode, l.RemoteCached = rn, rc
	return l
}

// The reference-clock remote-latency tables, built once: a simulator is
// constructed per run (sweeps build thousands), and re-allocating identical
// maps on every construction showed up in the streaming engine's allocation
// budget. Callers must treat the maps as read-only; LatenciesAt copies them
// before scaling.
var (
	csmpRemoteNode   = map[NetworkKind]float64{NetBus10: 45078, NetBus100: 4578, NetSwitch155: 3278}
	csmpRemoteCached = map[NetworkKind]float64{NetBus10: 90153, NetBus100: 9153, NetSwitch155: 6553}
	wsRemoteNode     = map[NetworkKind]float64{NetBus10: 45075, NetBus100: 4575, NetSwitch155: 3275}
	wsRemoteCached   = map[NetworkKind]float64{NetBus10: 90150, NetBus100: 9150, NetSwitch155: 6550}
)

// DefaultLatencies returns the paper's §5.1 values for the given platform
// kind, quoted at the 200 MHz reference clock. The cluster-of-SMPs remote
// latencies are three cycles higher than the workstation-cluster ones,
// exactly as listed. The RemoteNode and RemoteCached maps are shared across
// calls and must not be mutated.
func DefaultLatencies(kind PlatformKind) Latencies {
	l := Latencies{
		Instruction: 1,
		CacheHit:    1,
		LocalMemory: 50,
		LocalDisk:   2000,
		RemoteCache: 15,
	}
	switch kind {
	case ClusterSMP:
		l.RemoteNode, l.RemoteCached = csmpRemoteNode, csmpRemoteCached
	default:
		l.RemoteNode, l.RemoteCached = wsRemoteNode, wsRemoteCached
	}
	return l
}
