package machine

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// levels3 is a representative explicit three-level hierarchy.
func levels3() []CacheLevel {
	return []CacheLevel{
		{Bytes: 32 << 10, LatencyCycles: 4},
		{Bytes: 1 << 20, LatencyCycles: 14},
		{Bytes: 4 << 20, LatencyCycles: 44},
	}
}

func deepSMP(levels []CacheLevel) Config {
	c := Config{Name: "deep", Kind: SMP, N: 1, Procs: 2,
		MemoryBytes: 64 << 20, ClockMHz: 200, Levels: levels}
	if len(levels) > 0 {
		c.CacheBytes = levels[0].Bytes
	}
	return c
}

func TestCacheLevelsExpandsLegacyAlias(t *testing.T) {
	legacy := Config{Name: "x", Kind: SMP, N: 1, Procs: 2,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, ClockMHz: 200}
	if got := legacy.CacheLevels(); !reflect.DeepEqual(got, []CacheLevel{{Bytes: 256 << 10}}) {
		t.Errorf("legacy CacheLevels = %+v", got)
	}
	if legacy.LastCacheBytes() != 256<<10 {
		t.Errorf("legacy LastCacheBytes = %d", legacy.LastCacheBytes())
	}
	if legacy.L1Latency(1) != 1 {
		t.Errorf("legacy L1Latency = %v, want the default", legacy.L1Latency(1))
	}

	deep := deepSMP(levels3())
	if got := deep.CacheLevels(); !reflect.DeepEqual(got, levels3()) {
		t.Errorf("deep CacheLevels = %+v", got)
	}
	if deep.LastCacheBytes() != 4<<20 {
		t.Errorf("deep LastCacheBytes = %d, want the outermost level", deep.LastCacheBytes())
	}
	if deep.L1Latency(1) != 4 {
		t.Errorf("deep L1Latency = %v, want the explicit level-1 latency", deep.L1Latency(1))
	}
}

func TestCanonicalFoldsOneLevelAlias(t *testing.T) {
	legacy := Config{Name: "x", Kind: SMP, N: 1, Procs: 2,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, ClockMHz: 200}

	// A 1-element default-latency Levels list is the same platform as the
	// legacy spelling: Canonical folds it back so both share one struct,
	// one JSON encoding, and therefore one server cache key.
	alias := legacy
	alias.CacheBytes = 0
	alias.Levels = []CacheLevel{{Bytes: 256 << 10}}
	if got := alias.Canonical(); !reflect.DeepEqual(got, legacy) {
		t.Errorf("Canonical(1-level alias) = %+v, want %+v", got, legacy)
	}

	// The legacy spelling is already canonical.
	if got := legacy.Canonical(); !reflect.DeepEqual(got, legacy) {
		t.Errorf("Canonical(legacy) = %+v, want unchanged", got)
	}

	// A 1-level hierarchy with a non-default latency is NOT the legacy
	// platform; it must keep its Levels list.
	lat := alias
	lat.Levels = []CacheLevel{{Bytes: 256 << 10, LatencyCycles: 4}}
	got := lat.Canonical()
	if len(got.Levels) != 1 || got.CacheBytes != 256<<10 {
		t.Errorf("Canonical(1-level explicit latency) = %+v, want Levels kept and CacheBytes pinned", got)
	}

	// Multi-level: CacheBytes pins to level 1, and the returned config must
	// not share its Levels backing array with the input.
	deep := deepSMP(levels3())
	deep.CacheBytes = 0
	canon := deep.Canonical()
	if canon.CacheBytes != 32<<10 {
		t.Errorf("Canonical deep CacheBytes = %d, want level-1 capacity", canon.CacheBytes)
	}

	// Canonicalization is idempotent.
	if c2 := canon.Canonical(); !reflect.DeepEqual(c2, canon) {
		t.Errorf("Canonical not idempotent: %+v vs %+v", c2, canon)
	}

	// The returned config must not share its Levels backing array with the
	// input.
	canon.Levels[0].Bytes = 1
	if deep.Levels[0].Bytes == 1 {
		t.Error("Canonical aliased the input's Levels slice")
	}
}

func TestCanonicalOneLevelJSONIsByteIdentical(t *testing.T) {
	legacy := Config{Name: "x", Kind: SMP, N: 1, Procs: 2,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, ClockMHz: 200}
	alias := legacy
	alias.CacheBytes = 0
	alias.Levels = []CacheLevel{{Bytes: 256 << 10}}

	a, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(alias.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("canonical alias encodes differently:\nlegacy: %s\nalias:  %s", a, b)
	}
	if strings.Contains(string(a), "cache_levels") {
		t.Errorf("legacy encoding grew a cache_levels field: %s", a)
	}
}

func TestValidateLevels(t *testing.T) {
	if err := deepSMP(levels3()).Validate(); err != nil {
		t.Fatalf("valid 3-level hierarchy rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too many levels", func(c *Config) {
			c.Levels = append(c.Levels, CacheLevel{Bytes: 8 << 20, LatencyCycles: 80})
		}},
		{"non-positive level size", func(c *Config) { c.Levels[1].Bytes = 0 }},
		{"negative latency", func(c *Config) { c.Levels[2].LatencyCycles = -1 }},
		{"shrinking outward", func(c *Config) { c.Levels[1].Bytes = 16 << 10 }},
		{"alias disagreement", func(c *Config) { c.CacheBytes = 64 << 10 }},
	}
	for _, tc := range cases {
		c := deepSMP(levels3())
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, c)
		}
	}

	// Equal adjacent capacities are a degenerate but legal hierarchy.
	eq := deepSMP([]CacheLevel{
		{Bytes: 256 << 10, LatencyCycles: 1},
		{Bytes: 256 << 10, LatencyCycles: 10},
	})
	if err := eq.Validate(); err != nil {
		t.Errorf("equal-capacity adjacent levels rejected: %v", err)
	}

	// A zero CacheBytes alias is repaired by Canonical and accepted.
	noAlias := deepSMP(levels3())
	noAlias.CacheBytes = 0
	if err := noAlias.Validate(); err != nil {
		t.Errorf("zero alias with explicit levels rejected: %v", err)
	}
}

func TestScaledDividesEveryLevel(t *testing.T) {
	c := deepSMP(levels3())
	s, err := c.Scaled(16)
	if err != nil {
		t.Fatal(err)
	}
	want := []CacheLevel{
		{Bytes: 2 << 10, LatencyCycles: 4},
		{Bytes: 64 << 10, LatencyCycles: 14},
		{Bytes: 256 << 10, LatencyCycles: 44},
	}
	if !reflect.DeepEqual(s.Levels, want) {
		t.Errorf("Scaled(16) levels = %+v, want %+v", s.Levels, want)
	}
	if s.CacheBytes != s.Levels[0].Bytes {
		t.Errorf("Scaled alias %d disagrees with level 1 (%d)", s.CacheBytes, s.Levels[0].Bytes)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled hierarchy invalid: %v", err)
	}
	// The original must be untouched (Scaled copies the slice).
	if !reflect.DeepEqual(c.Levels, levels3()) {
		t.Errorf("Scaled mutated the input: %+v", c.Levels)
	}
}

func TestCacheDesc(t *testing.T) {
	one := Config{CacheBytes: 256 << 10}
	if got := one.CacheDesc(); got != "256KB" {
		t.Errorf("1-level CacheDesc = %q, want the historical form", got)
	}
	deep := deepSMP(levels3())
	if got := deep.CacheDesc(); got != "32KB+1MB+4MB" {
		t.Errorf("deep CacheDesc = %q", got)
	}
}

func TestModernCatalog(t *testing.T) {
	modern := ModernCatalog()
	if len(modern) == 0 {
		t.Fatal("empty modern catalog")
	}
	names := make(map[string]bool, len(modern))
	for _, c := range modern {
		names[c.Name] = true
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
		if len(c.Levels) < 2 {
			t.Errorf("%s has %d cache levels; modern presets are multi-level", c.Name, len(c.Levels))
		}
		if c.CacheBytes != c.Levels[0].Bytes {
			t.Errorf("%s alias %d disagrees with level 1 (%d)", c.Name, c.CacheBytes, c.Levels[0].Bytes)
		}
		// Clocks stay integral multiples of the 200 MHz reference so scaled
		// latencies remain integral cycle counts (the simulator's contract).
		if mult := c.ClockMHz / ReferenceClockMHz; mult != float64(int(mult)) {
			t.Errorf("%s clock %v MHz is not an integral multiple of the reference", c.Name, c.ClockMHz)
		}
	}
	for _, want := range []string{"modern-2s-server", "cloud-vm-8"} {
		if !names[want] {
			t.Errorf("modern catalog missing %q", want)
		}
	}

	// ByName resolves modern presets beside C1–C15, case-insensitively.
	got, err := ByName("Modern-2S-Server")
	if err != nil || got.Name != "modern-2s-server" {
		t.Errorf("ByName(modern preset) = %+v, %v", got, err)
	}
	// ...without leaking them into the paper catalog.
	for _, c := range Catalog() {
		if names[c.Name] {
			t.Errorf("modern preset %q leaked into the C1–C15 catalog", c.Name)
		}
	}
}
