package machine

import (
	"reflect"
	"strings"
	"testing"
)

func TestCatalogMatchesPaperTables(t *testing.T) {
	all := Catalog()
	if len(all) != 15 {
		t.Fatalf("catalog has %d configs, want 15 (C1–C15)", len(all))
	}
	for i, c := range all {
		if want := "C" + itoa(i+1); c.Name != want {
			t.Errorf("catalog[%d] = %s, want %s", i, c.Name, want)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
		if c.ClockMHz != 200 {
			t.Errorf("%s clock = %v, want 200 MHz", c.Name, c.ClockMHz)
		}
	}

	// Table 3 spot checks.
	c1 := all[0]
	if c1.Kind != SMP || c1.Procs != 2 || c1.CacheBytes != 256<<10 || c1.MemoryBytes != 64<<20 {
		t.Errorf("C1 = %+v", c1)
	}
	c6 := all[5]
	if c6.Procs != 4 || c6.CacheBytes != 512<<10 || c6.MemoryBytes != 128<<20 {
		t.Errorf("C6 = %+v", c6)
	}
	// Table 4 spot checks.
	c7 := all[6]
	if c7.Kind != ClusterWS || c7.N != 2 || c7.MemoryBytes != 32<<20 || c7.Net != NetBus10 {
		t.Errorf("C7 = %+v", c7)
	}
	c11 := all[10]
	if c11.N != 8 || c11.CacheBytes != 512<<10 || c11.Net != NetSwitch155 {
		t.Errorf("C11 = %+v", c11)
	}
	// Table 5 spot checks.
	c12 := all[11]
	if c12.Kind != ClusterSMP || c12.Procs != 2 || c12.N != 2 || c12.Net != NetBus10 {
		t.Errorf("C12 = %+v", c12)
	}
	c15 := all[14]
	if c15.Procs != 4 || c15.N != 2 || c15.MemoryBytes != 128<<20 || c15.Net != NetSwitch155 {
		t.Errorf("C15 = %+v", c15)
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestByName(t *testing.T) {
	c, err := ByName("C9")
	if err != nil || c.Name != "C9" || c.CacheBytes != 512<<10 {
		t.Errorf("ByName(C9) = %+v, %v", c, err)
	}
	if _, err := ByName("C99"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestTotalProcs(t *testing.T) {
	c, _ := ByName("C14")
	if c.TotalProcs() != 8 {
		t.Errorf("C14 TotalProcs = %d, want 8", c.TotalProcs())
	}
}

func TestValidateRejections(t *testing.T) {
	base := Config{Name: "x", Kind: SMP, N: 1, Procs: 2,
		CacheBytes: 1 << 18, MemoryBytes: 1 << 26, ClockMHz: 200}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero machines", func(c *Config) { c.N = 0 }},
		{"zero procs", func(c *Config) { c.Procs = 0 }},
		{"zero cache", func(c *Config) { c.CacheBytes = 0 }},
		{"zero memory", func(c *Config) { c.MemoryBytes = 0 }},
		{"zero clock", func(c *Config) { c.ClockMHz = 0 }},
		{"SMP with N>1", func(c *Config) { c.N = 2 }},
		{"WS with n>1", func(c *Config) { c.Kind = ClusterWS; c.Procs = 2 }},
		{"WS cluster without net", func(c *Config) { c.Kind = ClusterWS; c.Procs = 1; c.N = 4 }},
		{"SMP cluster without net", func(c *Config) { c.Kind = ClusterSMP; c.N = 4 }},
		{"unknown kind", func(c *Config) { c.Kind = PlatformKind(42) }},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, c)
		}
	}
}

func TestScaled(t *testing.T) {
	c, _ := ByName("C1")
	s, err := c.Scaled(16)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheBytes != c.CacheBytes/16 || s.MemoryBytes != c.MemoryBytes/16 {
		t.Errorf("Scaled(16) = %+v", s)
	}
	if !strings.Contains(s.Name, "C1") {
		t.Errorf("scaled name %q should reference the original", s.Name)
	}
	if got, err := c.Scaled(1); err != nil || !reflect.DeepEqual(got, c) {
		t.Errorf("Scaled(1) changed config: %+v, %v", got, err)
	}
	tiny := Config{Name: "t", Kind: SMP, N: 1, Procs: 1, CacheBytes: 4, MemoryBytes: 4, ClockMHz: 200}
	st, err := tiny.Scaled(100)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheBytes < 1 || st.MemoryBytes < 1 {
		t.Errorf("Scaled floor violated: %+v", st)
	}
	// A divisor below 1 — including the zero a miswired flag produces —
	// must fail loudly instead of silently running unscaled.
	for _, factor := range []int{0, -1, -16} {
		if got, err := c.Scaled(factor); err == nil {
			t.Errorf("Scaled(%d) = %+v, want error", factor, got)
		}
	}
}

func TestDefaultLatencies(t *testing.T) {
	ws := DefaultLatencies(ClusterWS)
	if ws.CacheHit != 1 || ws.LocalMemory != 50 || ws.LocalDisk != 2000 || ws.RemoteCache != 15 {
		t.Errorf("basic latencies wrong: %+v", ws)
	}
	if ws.RemoteNode[NetBus10] != 45075 || ws.RemoteNode[NetBus100] != 4575 || ws.RemoteNode[NetSwitch155] != 3275 {
		t.Errorf("WS remote-node latencies wrong: %+v", ws.RemoteNode)
	}
	if ws.RemoteCached[NetBus10] != 90150 || ws.RemoteCached[NetSwitch155] != 6550 {
		t.Errorf("WS remote-cached latencies wrong: %+v", ws.RemoteCached)
	}
	cs := DefaultLatencies(ClusterSMP)
	if cs.RemoteNode[NetBus10] != 45078 || cs.RemoteNode[NetBus100] != 4578 || cs.RemoteNode[NetSwitch155] != 3278 {
		t.Errorf("cluster-of-SMPs remote-node latencies wrong: %+v", cs.RemoteNode)
	}
	if cs.RemoteCached[NetBus100] != 9153 {
		t.Errorf("cluster-of-SMPs remote-cached latencies wrong: %+v", cs.RemoteCached)
	}
}

func TestLatenciesAtScalesWallTimeDevices(t *testing.T) {
	base := LatenciesAt(ClusterWS, 200)
	ref := DefaultLatencies(ClusterWS)
	if base.LocalMemory != ref.LocalMemory || base.RemoteNode[NetBus10] != ref.RemoteNode[NetBus10] {
		t.Error("200 MHz table must equal the reference table")
	}
	fast := LatenciesAt(ClusterWS, 400)
	// Core-speed devices stay in cycles.
	if fast.Instruction != 1 || fast.CacheHit != 1 {
		t.Errorf("core latencies must not scale: %+v", fast)
	}
	// Wall-time devices double their cycle cost with the clock.
	if fast.LocalMemory != 100 || fast.LocalDisk != 4000 || fast.RemoteCache != 30 {
		t.Errorf("memory-side latencies wrong at 400 MHz: mem=%v disk=%v rc=%v",
			fast.LocalMemory, fast.LocalDisk, fast.RemoteCache)
	}
	if fast.RemoteNode[NetBus100] != 9150 || fast.RemoteCached[NetSwitch155] != 13100 {
		t.Errorf("network latencies wrong at 400 MHz: %v / %v",
			fast.RemoteNode[NetBus100], fast.RemoteCached[NetSwitch155])
	}
	// Slower clock, cheaper cycles.
	slow := LatenciesAt(SMP, 100)
	if slow.LocalMemory != 25 {
		t.Errorf("100 MHz memory latency = %v, want 25", slow.LocalMemory)
	}
	// Degenerate clock falls back to the reference.
	if LatenciesAt(SMP, 0).LocalMemory != 50 {
		t.Error("zero clock should return the reference table")
	}
}

func TestPlatformKindStrings(t *testing.T) {
	if SMP.String() == "" || ClusterWS.String() == "" || ClusterSMP.String() == "" {
		t.Error("empty platform names")
	}
	if !strings.Contains(PlatformKind(9).String(), "9") {
		t.Error("unknown kind should include its value")
	}
}

// TestExtraLevelsTable1 reproduces Table 1: the additional memory levels of
// each platform class.
func TestExtraLevelsTable1(t *testing.T) {
	if got := SMP.ExtraLevels(); !reflect.DeepEqual(got, []string{"A"}) {
		t.Errorf("SMP levels = %v, want [A]", got)
	}
	if got := ClusterWS.ExtraLevels(); !reflect.DeepEqual(got, []string{"B", "C"}) {
		t.Errorf("ClusterWS levels = %v, want [B C]", got)
	}
	if got := ClusterSMP.ExtraLevels(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("ClusterSMP levels = %v, want [A B C]", got)
	}
	if PlatformKind(9).ExtraLevels() != nil {
		t.Error("unknown kind should have no levels")
	}
}

func TestNetworkKindHelpers(t *testing.T) {
	if !NetBus10.IsBus() || !NetBus100.IsBus() {
		t.Error("Ethernet buses misclassified")
	}
	if NetSwitch155.IsBus() || NetNone.IsBus() {
		t.Error("switch/none misclassified as bus")
	}
	for _, n := range []NetworkKind{NetNone, NetBus10, NetBus100, NetSwitch155} {
		if n.String() == "" {
			t.Errorf("empty name for network %d", int(n))
		}
	}
	if !strings.Contains(NetworkKind(9).String(), "9") {
		t.Error("unknown network should include its value")
	}
}
