package faults

import (
	"errors"
	"testing"
	"time"

	"memhier/internal/queueing"
)

func TestProfileCatalog(t *testing.T) {
	names := ProfileNames()
	if len(names) == 0 {
		t.Fatal("no built-in profiles")
	}
	for _, name := range names {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %q resolved to %q", name, p.Name)
		}
	}
	if _, err := ProfileByName("NONE"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile did not error")
	}
}

func TestNoneProfileInjectsNothing(t *testing.T) {
	p, _ := ProfileByName("none")
	in := NewInjector(p, 1)
	for i := 0; i < 1000; i++ {
		if err := in.Inject(SiteEntry, "predict"); err != nil {
			t.Fatalf("entry fault from the none profile: %v", err)
		}
		if err := in.Inject(SiteCompute, "predict"); err != nil {
			t.Fatalf("compute fault from the none profile: %v", err)
		}
	}
	if n := in.Total(); n != 0 {
		t.Errorf("none profile injected %d faults", n)
	}
	if got := in.Summary(); got != "none" {
		t.Errorf("Summary() = %q, want none", got)
	}
}

func TestSeedDeterminism(t *testing.T) {
	p, _ := ProfileByName("errors")
	run := func(seed int64) []bool {
		in := NewInjector(p, seed)
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Inject(SiteCompute, "predict") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at consultation %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical fault sequences")
	}
}

func TestErrorProfileRates(t *testing.T) {
	p, _ := ProfileByName("errors")
	in := NewInjector(p, 7)
	const n = 2000
	injected := 0
	for i := 0; i < n; i++ {
		if err := in.Inject(SiteCompute, "optimize"); err != nil {
			injected++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
		}
	}
	// 30% nominal rate; a seeded run is deterministic, so a generous band
	// only guards against wiring mistakes (always/never firing).
	if injected < n/10 || injected > n/2 {
		t.Errorf("injected %d/%d errors, want around 30%%", injected, n)
	}
	if in.Counts()["error"] != uint64(injected) {
		t.Errorf("counter %d != observed %d", in.Counts()["error"], injected)
	}
}

func TestSaturationFaultCarriesRho(t *testing.T) {
	in := NewInjector(Profile{Name: "sat", SaturationProb: 1}, 1)
	err := in.Inject(SiteCompute, "validate")
	if err == nil {
		t.Fatal("SaturationProb=1 injected nothing")
	}
	var sat *queueing.SaturationError
	if !errors.As(err, &sat) {
		t.Fatalf("injected error is not a SaturationError: %v", err)
	}
	if sat.Rho <= queueing.DefaultMaxRho || sat.Rho >= 1 {
		t.Errorf("injected rho = %v, want in (guard, 1)", sat.Rho)
	}
	if !errors.Is(err, queueing.ErrNearSaturated) {
		t.Errorf("injected saturation does not wrap ErrNearSaturated: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	in := NewInjector(Profile{Name: "p", PanicProb: 1}, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PanicProb=1 did not panic")
		}
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("panic value %T, want InjectedPanic", r)
		}
		if ip.Endpoint != "fit" {
			t.Errorf("panic endpoint = %q", ip.Endpoint)
		}
	}()
	in.Inject(SiteEntry, "fit")
}

func TestLatencyFaultSleeps(t *testing.T) {
	in := NewInjector(Profile{Name: "l", LatencyProb: 1, Latency: 5 * time.Millisecond}, 1)
	start := time.Now()
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if err := in.Inject(SiteEntry, "predict"); err != nil {
			t.Fatalf("latency fault returned an error: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed == 0 {
		t.Error("latency profile did not sleep at all")
	}
	if got := in.Counts()["latency"]; got != rounds {
		t.Errorf("latency count = %d, want %d", got, rounds)
	}
}

func TestInjectorConcurrencySafe(t *testing.T) {
	p, _ := ProfileByName("mixed")
	p.PanicProb = 0 // panics would crash the bare goroutines below
	p.Latency = time.Microsecond
	p.Overrun = time.Microsecond
	in := NewInjector(p, 3)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				in.Inject(SiteEntry, "predict")
				in.Inject(SiteCompute, "predict")
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	in.Counts() // must not race with itself
}
