// Package faults is a deterministic, seed-driven fault-injection layer for
// the chc-serve service. Instrumented code consults a Hook at named sites
// (request entry, inside the single-flight computation); an Injector
// implements the Hook by drawing from a seeded PRNG against a Profile of
// fault probabilities, so a chaos run with the same seed injects the same
// fault sequence given the same consultation order.
//
// The injected faults mirror the failure modes the paper's contention
// analysis warns about and the operational faults any cluster-facing
// service sees: added latency (network jitter), transient errors, panics
// (crashed handler goroutines), deadline overruns (a stuck backend), and
// simulated backend saturation via queueing.SaturationError (the ρ→1
// regime of the shared-level M/D/1 model, PAPER.md §3).
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"memhier/internal/queueing"
)

// Site names an injection point in the instrumented code.
type Site string

const (
	// SiteEntry is consulted at request entry, before decoding: latency
	// and panic faults fire here (the request never reaches the cache).
	SiteEntry Site = "entry"
	// SiteCompute is consulted inside the single-flight computation:
	// transient errors, saturation, and deadline overruns fire here (the
	// fault is observed by the flight leader and shared with waiters).
	SiteCompute Site = "compute"
)

// Hook is consulted by instrumented code at injection sites.
// Implementations must be safe for concurrent use. Inject may sleep
// (latency faults), panic (crash faults — the value is an InjectedPanic),
// or return an error to surface to the caller; nil means no fault.
type Hook interface {
	Inject(site Site, endpoint string) error
}

// ErrInjected marks injected transient errors so the service can map them
// to a retryable status and the chaos harness can tell injected faults
// from organic ones.
var ErrInjected = errors.New("faults: injected transient error")

// InjectedPanic is the value an Injector panics with, so the recovery
// middleware (and tests) can distinguish injected crashes from real bugs.
type InjectedPanic struct {
	Endpoint string
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic in %s handler", p.Endpoint)
}

// Profile is a named set of fault rates. Probabilities are per
// consultation of the matching site; zero disables that fault class.
type Profile struct {
	Name string

	// Entry-site faults.
	LatencyProb float64       // P(sleep before handling)
	Latency     time.Duration // injected sleep, uniform in (0, Latency]
	PanicProb   float64       // P(handler goroutine panics)

	// Compute-site faults.
	ErrorProb      float64       // P(transient error wrapping ErrInjected)
	SaturationProb float64       // P(queueing.SaturationError, ρ past the guard)
	OverrunProb    float64       // P(sleep past the route deadline)
	Overrun        time.Duration // deadline-overrun sleep
}

// profiles is the built-in catalog, keyed by Profile.Name.
var profiles = []Profile{
	{Name: "none"},
	{Name: "latency", LatencyProb: 0.5, Latency: 30 * time.Millisecond},
	{Name: "errors", ErrorProb: 0.3},
	{Name: "panics", PanicProb: 0.2},
	{Name: "saturation", SaturationProb: 0.3},
	{Name: "timeouts", OverrunProb: 0.25, Overrun: 300 * time.Millisecond},
	{
		Name:        "mixed",
		LatencyProb: 0.25, Latency: 20 * time.Millisecond,
		PanicProb: 0.05,
		ErrorProb: 0.1, SaturationProb: 0.05,
		OverrunProb: 0.05, Overrun: 300 * time.Millisecond,
	},
}

// ProfileByName returns a built-in profile; names are case-insensitive.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("faults: unknown profile %q (have %s)",
		name, strings.Join(ProfileNames(), ", "))
}

// ProfileNames lists the built-in profiles in catalog order.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// Injector implements Hook by drawing faults from a seeded PRNG. The same
// seed and consultation order reproduce the same fault sequence; under
// concurrency the interleaving varies but the drawn sequence is still a
// deterministic function of the consultation order.
type Injector struct {
	profile Profile

	mu     sync.Mutex
	rng    *rand.Rand        // guarded by mu
	counts map[string]uint64 // guarded by mu; fault kind → injections
}

// NewInjector builds an Injector for the profile, seeded deterministically.
func NewInjector(p Profile, seed int64) *Injector {
	return &Injector{
		profile: p,
		rng:     rand.New(rand.NewSource(seed)),
		counts:  make(map[string]uint64),
	}
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return in.profile }

// draw returns one uniform variate in [0,1) under the lock.
func (in *Injector) draw() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

func (in *Injector) count(kind string) {
	in.mu.Lock()
	in.counts[kind]++
	in.mu.Unlock()
}

// Counts returns a copy of the per-kind injection counters.
func (in *Injector) Counts() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, v := range in.counts {
		n += v
	}
	return n
}

// Summary renders the injection counters as "kind=n" pairs in sorted
// order (deterministic for logs and golden output).
func (in *Injector) Summary() string {
	counts := in.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Inject implements Hook. Entry sites may sleep or panic; compute sites
// may sleep past the deadline or return transient/saturation errors.
func (in *Injector) Inject(site Site, endpoint string) error {
	p := in.profile
	switch site {
	case SiteEntry:
		if p.LatencyProb > 0 && in.draw() < p.LatencyProb {
			in.count("latency")
			// Uniform in (0, Latency]: the +1 keeps the sleep nonzero.
			in.mu.Lock()
			d := time.Duration(in.rng.Int63n(int64(p.Latency))) + 1
			in.mu.Unlock()
			time.Sleep(d)
		}
		if p.PanicProb > 0 && in.draw() < p.PanicProb {
			in.count("panic")
			panic(InjectedPanic{Endpoint: endpoint})
		}
	case SiteCompute:
		if p.OverrunProb > 0 && in.draw() < p.OverrunProb {
			in.count("overrun")
			time.Sleep(p.Overrun)
		}
		if p.SaturationProb > 0 && in.draw() < p.SaturationProb {
			in.count("saturation")
			return fmt.Errorf("faults: injected backend saturation: %w",
				queueing.NewSaturationError(0.9995, queueing.DefaultMaxRho, 4, 0.2499, true))
		}
		if p.ErrorProb > 0 && in.draw() < p.ErrorProb {
			in.count("error")
			return fmt.Errorf("faults: %s backend unavailable: %w", endpoint, ErrInjected)
		}
	}
	return nil
}
