package tabulate

import (
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := NewChart("E(Instr)", "cycles")
	c.Width = 10
	c.Add("C1/FFT", 10)
	c.Add("C1/LU", 5)
	c.Add("C1/Radix", 0)
	out := c.String()
	if !strings.HasPrefix(out, "E(Instr)\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The max bar fills the width; half the value, half the bar; zero, none.
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("max bar wrong: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 5 {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Errorf("zero bar wrong: %q", lines[3])
	}
	// Labels aligned: the pipe column is identical.
	if strings.Index(lines[1], "|") != strings.Index(lines[2], "|") {
		t.Errorf("bars misaligned:\n%s", out)
	}
}

func TestChartLogScale(t *testing.T) {
	c := NewChart("", "")
	c.Width = 30
	c.Log = true
	c.Add("small", 1)
	c.Add("mid", 100)
	c.Add("big", 10000)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	n := func(i int) int { return strings.Count(lines[i], "#") }
	if !(n(0) < n(1) && n(1) < n(2)) {
		t.Fatalf("log bars not increasing:\n%s", out)
	}
	// Log spacing: the decade gaps are equal (within a cell).
	if d1, d2 := n(1)-n(0), n(2)-n(1); d1 < d2-2 || d1 > d2+2 {
		t.Errorf("log spacing uneven (%d vs %d):\n%s", d1, d2, out)
	}
	if n(0) == 0 {
		t.Error("smallest positive value should still show a cell")
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("t", "")
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
}
