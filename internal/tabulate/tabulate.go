// Package tabulate renders aligned text tables and CSV series for the
// experiment harness's reproduction of the paper's tables and figures.
//
//chc:deterministic
package tabulate

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			for i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, " ", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	seps := make([]string, len(widths))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table (headers then rows) as CSV.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
