package tabulate

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one bar of a chart.
type Bar struct {
	Label string
	Value float64
}

// Chart is a horizontal text bar chart — the rendering used for the
// paper's Figures 2–4, which are grouped bar charts of E(Instr) per
// configuration and program.
type Chart struct {
	Title string
	Unit  string
	Bars  []Bar
	// Width is the maximum bar length in characters (default 50).
	Width int
	// Log plots bar lengths on a log10 scale, for series spanning decades
	// (cluster E(Instr) values do).
	Log bool
}

// NewChart returns an empty chart.
func NewChart(title, unit string) *Chart { return &Chart{Title: title, Unit: unit} }

// Add appends one bar.
func (c *Chart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// Render writes the chart as text.
func (c *Chart) Render(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	if len(c.Bars) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	labelW := 0
	maxV, minV := math.Inf(-1), math.Inf(1)
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		if b.Value > maxV {
			maxV = b.Value
		}
		if b.Value < minV {
			minV = b.Value
		}
	}
	scale := func(v float64) int {
		if v <= 0 || maxV <= 0 {
			return 0
		}
		if c.Log {
			lo := math.Log10(math.Max(minV, 1e-12))
			hi := math.Log10(maxV)
			if hi <= lo {
				return width
			}
			n := int(math.Round((math.Log10(v) - lo) / (hi - lo) * float64(width-1)))
			return n + 1 // the smallest positive value still shows one cell
		}
		return int(math.Round(v / maxV * float64(width)))
	}
	for _, b := range c.Bars {
		n := scale(b.Value)
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(w, "  %-*s |%s %.3g %s\n", labelW, b.Label, strings.Repeat("#", n), b.Value, c.Unit)
	}
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var sb strings.Builder
	c.Render(&sb)
	return sb.String()
}
