package tabulate

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("Title", "Name", "Value")
	tb.AddRow("a", "1")
	tb.AddRow("longer", "22")
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// The Value column must start at the same offset in every body line.
	idx := strings.Index(lines[1], "Value")
	if idx < 0 {
		t.Fatal("no Value header")
	}
	if lines[3][idx:idx+1] != "1" || lines[4][idx:idx+2] != "22" {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestRenderHandlesRaggedRows(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "extra")
	out := tb.String()
	if !strings.Contains(out, "only-one") || !strings.Contains(out, "extra") {
		t.Errorf("ragged rows lost cells:\n%s", out)
	}
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRowf("%d\t%s", 42, "hi")
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "42" || tb.Rows[0][1] != "hi" {
		t.Errorf("AddRowf rows: %+v", tb.Rows)
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "A", "B")
	tb.AddRow("1", "with,comma")
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "A,B\n1,\"with,comma\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}
