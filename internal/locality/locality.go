// Package locality models program locality the way Du & Zhang's paper does:
// the cumulative stack-distance distribution is approximated by
//
//	P(x) = 1 − (x/β + 1)^−(α−1),  α > 1, β > 0,          (paper eq. 1)
//
// with density
//
//	p(x) = (α−1)/β · (x/β + 1)^−α,                        (paper eq. 2)
//
// plus the memory-reference fraction γ = M/(m+M). The package fits (α, β)
// to an empirical CDF by damped Gauss–Newton (Levenberg–Marquardt) least
// squares, built from scratch on the standard library.
//
//chc:deterministic
package locality

import (
	"errors"
	"fmt"
	"math"
)

// Params characterizes a workload: the locality parameters α and β of the
// paper's stack-distance model and the memory-reference fraction γ.
// Locality improves as α grows or β shrinks.
type Params struct {
	Alpha float64 `json:"alpha"` // decay exponent, > 1
	Beta  float64 `json:"beta"`  // scale (characteristic stack distance), > 0
	Gamma float64 `json:"gamma"` // fraction of instructions that reference memory, in [0, 1]
}

// Validate reports whether the parameters are inside the model's domain.
func (p Params) Validate() error {
	switch {
	case math.IsNaN(p.Alpha) || p.Alpha <= 1:
		return fmt.Errorf("locality: alpha must be > 1, got %v", p.Alpha)
	case math.IsNaN(p.Beta) || p.Beta <= 0:
		return fmt.Errorf("locality: beta must be > 0, got %v", p.Beta)
	case math.IsNaN(p.Gamma) || p.Gamma < 0 || p.Gamma > 1:
		return fmt.Errorf("locality: gamma must be in [0,1], got %v", p.Gamma)
	}
	return nil
}

// CDF returns P(x), the probability that a reference's stack distance is
// within x (paper eq. 1). Negative x yields 0.
func (p Params) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Pow(x/p.Beta+1, -(p.Alpha-1))
}

// Density returns p(x), the stack-distance probability density
// (paper eq. 2).
func (p Params) Density(x float64) float64 {
	if x < 0 {
		return 0
	}
	return (p.Alpha - 1) / p.Beta * math.Pow(x/p.Beta+1, -p.Alpha)
}

// MissBeyond returns ∫_s^∞ p(x) dx = (s/β + 1)^−(α−1): the fraction of
// memory references whose reuse distance exceeds a capacity s — the miss
// ratio of a fully associative LRU level of size s. This is the integral
// appearing in the paper's eq. (7) and (11).
func (p Params) MissBeyond(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return math.Pow(s/p.Beta+1, -(p.Alpha - 1))
}

// Coverage returns the stack distance x at which P(x) = p, i.e. the
// capacity needed to capture fraction p of references: the model's
// "effective working set" at coverage p. p must be in (0, 1).
func (pm Params) Coverage(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("locality: coverage fraction %v out of (0,1)", p)
	}
	return pm.Beta * (math.Pow(1-p, -1/(pm.Alpha-1)) - 1), nil
}

// Rescale returns the parameters of the same application split across
// nproc symmetric processes. Per the paper (§5.2), the maximum stack
// distance shrinks by the processor count while cumulative probabilities
// hold, i.e. P(x) = 1 − (nproc·x/β + 1)^−(α−1), which is a β → β/nproc
// rescale. Gamma is unchanged. nproc < 1 is treated as 1.
func (p Params) Rescale(nproc int) Params {
	if nproc <= 1 {
		return p
	}
	return Params{Alpha: p.Alpha, Beta: p.Beta / float64(nproc), Gamma: p.Gamma}
}

// FitStats summarizes fit quality.
type FitStats struct {
	RMSE       float64 `json:"rmse"`       // root mean squared residual of the CDF fit
	R2         float64 `json:"r2"`         // coefficient of determination
	Iterations int     `json:"iterations"` // LM iterations used
	Points     int     `json:"points"`     // number of fitted points
}

// FitOptions tunes the least-squares fit. The zero value selects sensible
// defaults.
type FitOptions struct {
	MaxIter int       // maximum LM iterations per start (default 200)
	Tol     float64   // relative SSE improvement tolerance (default 1e-12)
	Weights []float64 // optional per-point weights (e.g. reference counts)
}

// Fit estimates (α, β) from empirical CDF points: ps[i] ≈ P(xs[i]).
// Probabilities must lie in [0, 1]; at least two points with distinct xs
// are required. Gamma in the result is zero — it comes from instruction
// counting, not from the curve (use Params.Gamma directly).
//
// The optimizer is Levenberg–Marquardt over the reparameterization
// α = 1+e^a, β = e^b (which keeps iterates in-domain), started from a small
// grid of initial guesses to dodge local minima.
func Fit(xs, ps []float64, opts FitOptions) (Params, FitStats, error) {
	if len(xs) != len(ps) {
		return Params{}, FitStats{}, fmt.Errorf("locality: len(xs)=%d != len(ps)=%d", len(xs), len(ps))
	}
	if len(xs) < 2 {
		return Params{}, FitStats{}, errors.New("locality: need at least two points to fit")
	}
	w := opts.Weights
	if w != nil && len(w) != len(xs) {
		return Params{}, FitStats{}, fmt.Errorf("locality: len(weights)=%d != len(xs)=%d", len(w), len(xs))
	}
	distinct := false
	for i := range xs {
		if math.IsNaN(xs[i]) || xs[i] < 0 {
			return Params{}, FitStats{}, fmt.Errorf("locality: invalid x[%d]=%v", i, xs[i])
		}
		if math.IsNaN(ps[i]) || ps[i] < 0 || ps[i] > 1 {
			return Params{}, FitStats{}, fmt.Errorf("locality: invalid p[%d]=%v", i, ps[i])
		}
		// Exact identity on raw inputs, not on arithmetic results: any
		// bitwise difference between two x values is enough to fit a line.
		//chc:allow floateq -- degenerate-input guard compares identities
		if i > 0 && xs[i] != xs[0] {
			distinct = true
		}
	}
	if !distinct {
		return Params{}, FitStats{}, errors.New("locality: all x values identical")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-12
	}

	// Initial guesses: alpha around typical scientific-code values, beta
	// seeded by the median distance.
	betaSeed := median(xs)
	if betaSeed < 1 {
		betaSeed = 1
	}
	type start struct{ alpha, beta float64 }
	starts := []start{
		{1.2, betaSeed}, {1.5, betaSeed}, {2.0, betaSeed},
		{1.2, betaSeed / 8}, {1.5, betaSeed * 8}, {3.0, betaSeed / 2},
	}

	best := Params{Alpha: math.NaN()}
	bestSSE := math.Inf(1)
	bestIter := 0
	for _, s := range starts {
		a := math.Log(s.alpha - 1)
		b := math.Log(s.beta)
		sse := sseAt(xs, ps, w, a, b)
		lambda := 1e-3
		iters := 0
		for ; iters < maxIter; iters++ {
			// Build the 2x2 normal equations J'J + lambda*diag, J'r.
			var jtj00, jtj01, jtj11, jtr0, jtr1 float64
			alpha := 1 + math.Exp(a)
			beta := math.Exp(b)
			for i := range xs {
				u := xs[i]/beta + 1
				pm := 1 - math.Pow(u, -(alpha-1))
				r := ps[i] - pm
				lnu := math.Log(u)
				// dP/da = dP/dalpha * dalpha/da = u^-(alpha-1)*ln(u) * e^a
				dA := math.Pow(u, -(alpha-1)) * lnu * math.Exp(a)
				// dP/db = dP/dbeta * beta; dP/dbeta = -(alpha-1)*u^-alpha*x/beta^2
				dB := -(alpha - 1) * math.Pow(u, -alpha) * xs[i] / beta
				wi := 1.0
				if w != nil {
					wi = w[i]
				}
				jtj00 += wi * dA * dA
				jtj01 += wi * dA * dB
				jtj11 += wi * dB * dB
				jtr0 += wi * dA * r
				jtr1 += wi * dB * r
			}
			improved := false
			for try := 0; try < 8; try++ {
				m00 := jtj00 + lambda*(jtj00+1e-12)
				m11 := jtj11 + lambda*(jtj11+1e-12)
				det := m00*m11 - jtj01*jtj01
				if det == 0 || math.IsNaN(det) {
					lambda *= 10
					continue
				}
				da := (jtr0*m11 - jtr1*jtj01) / det
				db := (jtr1*m00 - jtr0*jtj01) / det
				na, nb := a+da, b+db
				// Clamp the reparameterized space to avoid overflow.
				na = clamp(na, -20, 20)
				nb = clamp(nb, -20, 40)
				nsse := sseAt(xs, ps, w, na, nb)
				if nsse < sse {
					a, b, sse = na, nb, nsse
					lambda = math.Max(lambda/4, 1e-12)
					improved = true
					break
				}
				lambda *= 10
			}
			if !improved {
				break
			}
			if sse <= tol {
				break
			}
		}
		if sse < bestSSE {
			bestSSE = sse
			best = Params{Alpha: 1 + math.Exp(a), Beta: math.Exp(b)}
			bestIter = iters
		}
	}
	if math.IsNaN(best.Alpha) {
		return Params{}, FitStats{}, errors.New("locality: fit failed to converge from any start")
	}

	stats := FitStats{Iterations: bestIter, Points: len(xs)}
	stats.RMSE = math.Sqrt(bestSSE / totalWeight(w, len(xs)))
	// R^2 against the (weighted) mean of the observations.
	mean := 0.0
	tw := 0.0
	for i := range ps {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		mean += wi * ps[i]
		tw += wi
	}
	mean /= tw
	var sst float64
	for i := range ps {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		d := ps[i] - mean
		sst += wi * d * d
	}
	if sst > 0 {
		stats.R2 = 1 - bestSSE/sst
	} else {
		stats.R2 = 1
	}
	return best, stats, nil
}

func sseAt(xs, ps, w []float64, a, b float64) float64 {
	alpha := 1 + math.Exp(a)
	beta := math.Exp(b)
	var sse float64
	for i := range xs {
		pm := 1 - math.Pow(xs[i]/beta+1, -(alpha-1))
		r := ps[i] - pm
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		sse += wi * r * r
	}
	return sse
}

func totalWeight(w []float64, n int) float64 {
	if w == nil {
		return float64(n)
	}
	t := 0.0
	for _, v := range w {
		t += v
	}
	if t == 0 {
		return float64(n)
	}
	return t
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// insertion-free selection: simple sort is fine for fit-sized data
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
