package locality_test

import (
	"math"
	"math/rand"
	"testing"

	"memhier/internal/locality"
	"memhier/internal/stackdist"
)

// synthStream generates a reference stream whose stack distances follow the
// model law exactly: at each step it draws a distance from the target
// distribution by inverse-CDF sampling and re-references the element at
// that LRU depth. Feeding it through the real analyzer and fitter must
// recover the parameters — the full measurement pipeline, ground truth
// known.
func synthStream(truth locality.Params, refs, universe int, rng *rand.Rand) *stackdist.Analyzer {
	an := stackdist.NewAnalyzer(refs)
	stack := make([]uint64, 0, universe)
	next := uint64(1)
	for i := 0; i < refs; i++ {
		if len(stack) < universe && (len(stack) == 0 || rng.Float64() < 0.02) {
			// Cold reference: introduce a new element.
			an.Touch(next)
			stack = append([]uint64{next}, stack...)
			next++
			continue
		}
		// Inverse CDF of P(x) = 1 − (x/β+1)^−(α−1).
		u := rng.Float64()
		df := truth.Beta * (math.Pow(1-u, -1/(truth.Alpha-1)) - 1)
		d := len(stack) - 1
		if df < float64(d) { // clamp in float space: the tail draw can overflow int
			d = int(df)
		}
		e := stack[d]
		an.Touch(e)
		stack = append(stack[:d], stack[d+1:]...)
		stack = append([]uint64{e}, stack...)
	}
	return an
}

func TestPipelineRecoversPrescribedLaw(t *testing.T) {
	// Tails must essentially vanish within the synthetic universe (50K
	// elements), or the LRU clamp distorts the law being tested: with
	// α ≥ 1.6 and these β, P(50000) > 0.998.
	cases := []locality.Params{
		{Alpha: 1.6, Beta: 120},
		{Alpha: 1.9, Beta: 80},
		{Alpha: 2.2, Beta: 40},
	}
	rng := rand.New(rand.NewSource(7))
	for _, truth := range cases {
		an := synthStream(truth, 200000, 50000, rng)
		dist := an.Distribution().Downsample(256)
		xs, ps := dist.Points()
		// Drop x = 0 like the production pipeline (inverse sampling floors
		// to 0 for small draws, inflating the head).
		var fx, fp []float64
		for i := range xs {
			if xs[i] >= 1 {
				fx = append(fx, xs[i])
				fp = append(fp, ps[i])
			}
		}
		got, stats, err := locality.Fit(fx, fp, locality.FitOptions{})
		if err != nil {
			t.Fatalf("truth %+v: %v", truth, err)
		}
		// The stack clamp truncates the tail, so the fit sees a slightly
		// more local stream; generous bounds still pin the law.
		if math.Abs(got.Alpha-truth.Alpha) > 0.25*truth.Alpha {
			t.Errorf("truth %+v: fitted alpha %v", truth, got.Alpha)
		}
		if got.Beta < truth.Beta/2.5 || got.Beta > truth.Beta*2.5 {
			t.Errorf("truth %+v: fitted beta %v", truth, got.Beta)
		}
		if stats.R2 < 0.95 {
			t.Errorf("truth %+v: pipeline fit R2 %v", truth, stats.R2)
		}
		// The miss ratios at capacity scales — what the hierarchy model
		// actually consumes — agree within a few points.
		for _, s := range []float64{256, 1024, 4096} {
			want := 1 - dist.CDF(int(s))
			gotMiss := got.MissBeyond(s)
			if math.Abs(gotMiss-want) > 0.08 {
				t.Errorf("truth %+v: miss(%v) fitted %v vs empirical %v", truth, s, gotMiss, want)
			}
		}
	}
}
