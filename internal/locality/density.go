package locality

import (
	"errors"
	"fmt"
	"math"
)

// FitDensity estimates (α, β) from empirical density points: ds[i] is the
// probability mass observed at stack distance xs[i] (paper eq. 2; the paper
// fits both the cumulative and the density forms, §5.2). Masses must be
// nonnegative; at least two points with distinct xs are required.
//
// The optimizer is the same damped Gauss–Newton over α = 1+e^a, β = e^b as
// Fit, with residuals against p(x) = (α−1)/β · (x/β+1)^−α. Residuals are
// taken in log space (log densities span many decades, and multiplicative
// accuracy is what matters for a power law); zero-mass points are skipped.
func FitDensity(xs, ds []float64, opts FitOptions) (Params, FitStats, error) {
	if len(xs) != len(ds) {
		return Params{}, FitStats{}, fmt.Errorf("locality: len(xs)=%d != len(ds)=%d", len(xs), len(ds))
	}
	w := opts.Weights
	if w != nil && len(w) != len(xs) {
		return Params{}, FitStats{}, fmt.Errorf("locality: len(weights)=%d != len(xs)=%d", len(w), len(xs))
	}
	// Keep the positive-mass points.
	var fx, fy, fw []float64
	for i := range xs {
		if math.IsNaN(xs[i]) || xs[i] < 0 {
			return Params{}, FitStats{}, fmt.Errorf("locality: invalid x[%d]=%v", i, xs[i])
		}
		if math.IsNaN(ds[i]) || ds[i] < 0 {
			return Params{}, FitStats{}, fmt.Errorf("locality: invalid density[%d]=%v", i, ds[i])
		}
		if ds[i] == 0 {
			continue
		}
		fx = append(fx, xs[i])
		fy = append(fy, math.Log(ds[i]))
		if w != nil {
			fw = append(fw, w[i])
		} else {
			fw = append(fw, 1)
		}
	}
	if len(fx) < 2 {
		return Params{}, FitStats{}, errors.New("locality: need at least two positive-mass points")
	}
	distinct := false
	for i := 1; i < len(fx); i++ {
		// Exact identity on raw inputs (see Fit): any difference suffices.
		//chc:allow floateq -- degenerate-input guard compares identities
		if fx[i] != fx[0] {
			distinct = true
			break
		}
	}
	if !distinct {
		return Params{}, FitStats{}, errors.New("locality: all x values identical")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}

	logModel := func(a, b, x float64) float64 {
		alpha := 1 + math.Exp(a)
		beta := math.Exp(b)
		return math.Log(alpha-1) - math.Log(beta) - alpha*math.Log(x/beta+1)
	}
	sse := func(a, b float64) float64 {
		var s float64
		for i := range fx {
			r := fy[i] - logModel(a, b, fx[i])
			s += fw[i] * r * r
		}
		return s
	}

	betaSeed := median(fx)
	if betaSeed < 1 {
		betaSeed = 1
	}
	type start struct{ alpha, beta float64 }
	starts := []start{
		{1.2, betaSeed}, {1.5, betaSeed}, {2.5, betaSeed},
		{1.2, betaSeed / 8}, {1.5, betaSeed * 8},
	}
	best := Params{Alpha: math.NaN()}
	bestSSE := math.Inf(1)
	bestIter := 0
	for _, s0 := range starts {
		a := math.Log(s0.alpha - 1)
		b := math.Log(s0.beta)
		cur := sse(a, b)
		lambda := 1e-3
		iters := 0
		for ; iters < maxIter; iters++ {
			var jtj00, jtj01, jtj11, jtr0, jtr1 float64
			alpha := 1 + math.Exp(a)
			beta := math.Exp(b)
			for i := range fx {
				u := fx[i]/beta + 1
				r := fy[i] - logModel(a, b, fx[i])
				// d(log p)/da = e^a·[1/(α−1) − ln u]
				dA := math.Exp(a) * (1/(alpha-1) - math.Log(u))
				// d(log p)/db = β·[−1/β + α·x/(β²·u)] = −1 + α·x/(β·u)
				dB := -1 + alpha*fx[i]/(beta*u)
				jtj00 += fw[i] * dA * dA
				jtj01 += fw[i] * dA * dB
				jtj11 += fw[i] * dB * dB
				jtr0 += fw[i] * dA * r
				jtr1 += fw[i] * dB * r
			}
			improved := false
			for try := 0; try < 8; try++ {
				m00 := jtj00 + lambda*(jtj00+1e-12)
				m11 := jtj11 + lambda*(jtj11+1e-12)
				det := m00*m11 - jtj01*jtj01
				if det == 0 || math.IsNaN(det) {
					lambda *= 10
					continue
				}
				na := clamp(a+(jtr0*m11-jtr1*jtj01)/det, -20, 20)
				nb := clamp(b+(jtr1*m00-jtr0*jtj01)/det, -20, 40)
				if ns := sse(na, nb); ns < cur {
					a, b, cur = na, nb, ns
					lambda = math.Max(lambda/4, 1e-12)
					improved = true
					break
				}
				lambda *= 10
			}
			if !improved || cur <= 1e-16 {
				break
			}
		}
		if cur < bestSSE {
			bestSSE = cur
			best = Params{Alpha: 1 + math.Exp(a), Beta: math.Exp(b)}
			bestIter = iters
		}
	}
	if math.IsNaN(best.Alpha) {
		return Params{}, FitStats{}, errors.New("locality: density fit failed to converge")
	}

	stats := FitStats{Iterations: bestIter, Points: len(fx)}
	var tw, mean float64
	for i := range fy {
		mean += fw[i] * fy[i]
		tw += fw[i]
	}
	mean /= tw
	var sst float64
	for i := range fy {
		d := fy[i] - mean
		sst += fw[i] * d * d
	}
	stats.RMSE = math.Sqrt(bestSSE / tw)
	if sst > 0 {
		stats.R2 = 1 - bestSSE/sst
	} else {
		stats.R2 = 1
	}
	return best, stats, nil
}
