package locality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidate(t *testing.T) {
	good := Params{Alpha: 1.21, Beta: 103.26, Gamma: 0.2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Alpha: 1, Beta: 10, Gamma: 0.5},
		{Alpha: 0.5, Beta: 10, Gamma: 0.5},
		{Alpha: math.NaN(), Beta: 10, Gamma: 0.5},
		{Alpha: 2, Beta: 0, Gamma: 0.5},
		{Alpha: 2, Beta: -3, Gamma: 0.5},
		{Alpha: 2, Beta: math.NaN(), Gamma: 0.5},
		{Alpha: 2, Beta: 10, Gamma: -0.1},
		{Alpha: 2, Beta: 10, Gamma: 1.1},
		{Alpha: 2, Beta: 10, Gamma: math.NaN()},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d (%+v) accepted", i, p)
		}
	}
}

func TestCDFProperties(t *testing.T) {
	p := Params{Alpha: 1.3, Beta: 90}
	if got := p.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v, want 0", got)
	}
	if got := p.CDF(-5); got != 0 {
		t.Errorf("CDF(-5) = %v, want 0", got)
	}
	if got := p.CDF(1e12); got < 0.999 {
		t.Errorf("CDF(1e12) = %v, want ~1", got)
	}
	prev := 0.0
	for x := 0.0; x < 1e4; x += 37 {
		c := p.CDF(x)
		if c < prev-1e-15 || c < 0 || c > 1 {
			t.Fatalf("CDF(%v)=%v violates monotonicity/range (prev %v)", x, c, prev)
		}
		prev = c
	}
}

func TestCDFPlusMissBeyondIsOne(t *testing.T) {
	f := func(aRaw, bRaw, xRaw uint16) bool {
		p := Params{Alpha: 1.01 + float64(aRaw%300)/100, Beta: 1 + float64(bRaw%2000)}
		x := float64(xRaw)
		return almostEq(p.CDF(x)+p.MissBeyond(x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDensityIntegratesToCDF(t *testing.T) {
	// Numerically integrate p(x) and compare with the closed-form CDF.
	p := Params{Alpha: 1.5, Beta: 50}
	const dx = 0.01
	acc := 0.0
	for x := 0.0; x < 2000; x += dx {
		acc += p.Density(x+dx/2) * dx
		if int(x)%500 == 0 && x > 0 {
			want := p.CDF(x + dx)
			if !almostEq(acc, want, 1e-3) {
				t.Fatalf("∫p up to %v = %v, CDF = %v", x, acc, want)
			}
		}
	}
}

func TestDensityNonnegativeAndDecreasing(t *testing.T) {
	p := Params{Alpha: 1.71, Beta: 85.03}
	if p.Density(-1) != 0 {
		t.Error("Density(-1) should be 0")
	}
	prev := math.Inf(1)
	for x := 0.0; x < 1e4; x += 13 {
		d := p.Density(x)
		if d < 0 || d > prev+1e-15 {
			t.Fatalf("density at %v = %v not nonincreasing (prev %v)", x, d, prev)
		}
		prev = d
	}
}

func TestMissBeyond(t *testing.T) {
	p := Params{Alpha: 2, Beta: 100}
	if got := p.MissBeyond(0); got != 1 {
		t.Errorf("MissBeyond(0) = %v, want 1", got)
	}
	if got := p.MissBeyond(-10); got != 1 {
		t.Errorf("MissBeyond(-10) = %v, want 1", got)
	}
	// alpha=2: (s/100+1)^-1; at s=100 → 0.5
	if got := p.MissBeyond(100); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("MissBeyond(100) = %v, want 0.5", got)
	}
}

func TestMissBeyondOrdering(t *testing.T) {
	// Better locality (higher alpha, lower beta) must not miss more.
	edge := Params{Alpha: 1.71, Beta: 85.03}   // best locality in Table 2
	radix := Params{Alpha: 1.14, Beta: 120.84} // worst locality in Table 2
	for _, s := range []float64{64, 256, 1024, 4096, 65536} {
		if edge.MissBeyond(s) >= radix.MissBeyond(s) {
			t.Errorf("s=%v: EDGE miss %v should be below Radix miss %v",
				s, edge.MissBeyond(s), radix.MissBeyond(s))
		}
	}
}

func TestCoverage(t *testing.T) {
	p := Params{Alpha: 2, Beta: 100}
	// P(x) = 1 - (x/100+1)^-1 = 0.5 at x = 100.
	x, err := p.Coverage(0.5)
	if err != nil || !almostEq(x, 100, 1e-9) {
		t.Errorf("Coverage(0.5) = %v, %v; want 100", x, err)
	}
	// Round trip: CDF(Coverage(p)) == p.
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.99} {
		x, err := p.Coverage(frac)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.CDF(x); !almostEq(got, frac, 1e-9) {
			t.Errorf("CDF(Coverage(%v)) = %v", frac, got)
		}
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, err := p.Coverage(bad); err == nil {
			t.Errorf("Coverage(%v) accepted", bad)
		}
	}
}

func TestRescale(t *testing.T) {
	p := Params{Alpha: 1.3, Beta: 90, Gamma: 0.31}
	r := p.Rescale(4)
	if r.Alpha != p.Alpha || r.Gamma != p.Gamma {
		t.Errorf("Rescale changed alpha/gamma: %+v", r)
	}
	if !almostEq(r.Beta, 22.5, 1e-12) {
		t.Errorf("Rescale(4).Beta = %v, want 22.5", r.Beta)
	}
	// P_n(x) == P(n x)
	for _, x := range []float64{1, 10, 100} {
		if !almostEq(r.CDF(x), p.CDF(4*x), 1e-12) {
			t.Errorf("Rescale CDF mismatch at %v", x)
		}
	}
	if got := p.Rescale(1); got != p {
		t.Errorf("Rescale(1) changed params: %+v", got)
	}
	if got := p.Rescale(0); got != p {
		t.Errorf("Rescale(0) changed params: %+v", got)
	}
}

func TestFitRecoversKnownParams(t *testing.T) {
	// Generate exact CDF points from known params across Table 2's range
	// and check the fit recovers them.
	cases := []Params{
		{Alpha: 1.21, Beta: 103.26},  // FFT
		{Alpha: 1.30, Beta: 90.27},   // LU
		{Alpha: 1.14, Beta: 120.84},  // Radix
		{Alpha: 1.71, Beta: 85.03},   // EDGE
		{Alpha: 1.73, Beta: 1222.66}, // TPC-C
	}
	for _, truth := range cases {
		var xs, ps []float64
		for x := 1.0; x < 1e6; x *= 1.6 {
			xs = append(xs, x)
			ps = append(ps, truth.CDF(x))
		}
		got, stats, err := Fit(xs, ps, FitOptions{})
		if err != nil {
			t.Fatalf("Fit(%+v): %v", truth, err)
		}
		if !almostEq(got.Alpha, truth.Alpha, 0.02) || math.Abs(got.Beta-truth.Beta)/truth.Beta > 0.05 {
			t.Errorf("Fit recovered %+v for truth %+v (rmse %v)", got, truth, stats.RMSE)
		}
		if stats.RMSE > 1e-3 {
			t.Errorf("RMSE %v too high for exact data (%+v)", stats.RMSE, truth)
		}
		if stats.R2 < 0.999 {
			t.Errorf("R2 %v too low for exact data (%+v)", stats.R2, truth)
		}
	}
}

func TestFitWithNoise(t *testing.T) {
	truth := Params{Alpha: 1.4, Beta: 200}
	rng := rand.New(rand.NewSource(42))
	var xs, ps, ws []float64
	for x := 1.0; x < 1e5; x *= 1.4 {
		xs = append(xs, x)
		noisy := truth.CDF(x) + rng.NormFloat64()*0.005
		ps = append(ps, math.Max(0, math.Min(1, noisy)))
		ws = append(ws, 1+float64(rng.Intn(10)))
	}
	got, stats, err := Fit(xs, ps, FitOptions{Weights: ws})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Alpha-truth.Alpha) > 0.1 || math.Abs(got.Beta-truth.Beta)/truth.Beta > 0.25 {
		t.Errorf("noisy fit %+v too far from truth %+v (rmse %v)", got, truth, stats.RMSE)
	}
}

func TestFitInputValidation(t *testing.T) {
	good := []float64{1, 2, 3}
	if _, _, err := Fit([]float64{1, 2}, []float64{0.1}, FitOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := Fit([]float64{1}, []float64{0.1}, FitOptions{}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := Fit([]float64{2, 2, 2}, []float64{0.1, 0.2, 0.3}, FitOptions{}); err == nil {
		t.Error("identical xs accepted")
	}
	if _, _, err := Fit(good, []float64{0.1, -0.2, 0.3}, FitOptions{}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, _, err := Fit(good, []float64{0.1, 1.2, 0.3}, FitOptions{}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, _, err := Fit([]float64{-1, 2, 3}, []float64{0.1, 0.2, 0.3}, FitOptions{}); err == nil {
		t.Error("negative x accepted")
	}
	if _, _, err := Fit(good, []float64{0.1, 0.2, 0.3}, FitOptions{Weights: []float64{1}}); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, _, err := Fit([]float64{math.NaN(), 2, 3}, []float64{0.1, 0.2, 0.3}, FitOptions{}); err == nil {
		t.Error("NaN x accepted")
	}
}

func TestFitPropertyRoundTrip(t *testing.T) {
	// Property: for random in-domain params, fitting exact samples recovers
	// a CDF that is pointwise close to the original (even if alpha/beta
	// trade off slightly).
	f := func(aRaw, bRaw uint16) bool {
		truth := Params{Alpha: 1.05 + float64(aRaw%250)/100, Beta: 5 + float64(bRaw%3000)}
		var xs, ps []float64
		for x := 1.0; x < 3e5; x *= 1.8 {
			xs = append(xs, x)
			ps = append(ps, truth.CDF(x))
		}
		got, _, err := Fit(xs, ps, FitOptions{})
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(got.CDF(xs[i])-ps[i]) > 0.01 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkFit(b *testing.B) {
	truth := Params{Alpha: 1.3, Beta: 90.27}
	var xs, ps []float64
	for x := 1.0; x < 1e6; x *= 1.3 {
		xs = append(xs, x)
		ps = append(ps, truth.CDF(x))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fit(xs, ps, FitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
