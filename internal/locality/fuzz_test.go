package locality

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzFit decodes raw bytes into alternating (x, p) float64 pairs and
// fits the locality curve. Properties, on arbitrary — including
// degenerate — inputs:
//
//   - no panic and no hang: empty input, a single point, identical xs,
//     non-monotone ps, NaN/±Inf bit patterns must all be either rejected
//     with an error or fitted
//   - a successful fit is always in-domain: α > 1, β > 0, both finite
//   - the fitted CDF is a CDF: P(x) ∈ [0, 1] at every input point
//   - reported fit quality is sane: RMSE finite and ≥ 0
func FuzzFit(f *testing.F) {
	pack := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add([]byte{})                       // no points
	f.Add(pack(1024, 0.5))                // single point
	f.Add(pack(1024, 0.5, 1024, 0.9))     // identical xs
	f.Add(pack(1024, 0.9, 4096, 0.2))     // non-monotone ps
	f.Add(pack(math.NaN(), 0.5, 1, 0.6))  // NaN x
	f.Add(pack(1, math.Inf(1), 2, 0.5))   // Inf p
	f.Add(pack(math.Inf(1), 0.5, 2, 0.6)) // Inf x
	f.Add(pack(-1, 0.5, 2, 0.6))          // negative x
	// A realistic curve: P(x) for alpha=1.5, beta=2000 sampled at powers
	// of two, which must fit essentially exactly.
	realistic := make([]float64, 0, 16)
	for _, x := range []float64{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22} {
		realistic = append(realistic, x, 1-math.Pow(x/2000+1, -0.5))
	}
	f.Add(pack(realistic...))

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 16 // one (x, p) pair per 16 bytes
		if n > 64 {
			n = 64 // bound fit cost, not coverage: shapes repeat beyond this
		}
		xs := make([]float64, n)
		ps := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
			ps[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
		}

		params, stats, err := Fit(xs, ps, FitOptions{MaxIter: 40})
		if err != nil {
			return // rejected inputs are fine; panics and bad fits are not
		}
		if math.IsNaN(params.Alpha) || math.IsInf(params.Alpha, 0) || params.Alpha <= 1 {
			t.Fatalf("fit accepted but alpha out of domain: %v (xs=%v ps=%v)", params.Alpha, xs, ps)
		}
		if math.IsNaN(params.Beta) || math.IsInf(params.Beta, 0) || params.Beta <= 0 {
			t.Fatalf("fit accepted but beta out of domain: %v (xs=%v ps=%v)", params.Beta, xs, ps)
		}
		if err := params.Validate(); err != nil {
			t.Fatalf("fit accepted but params invalid: %v", err)
		}
		for _, x := range xs {
			if p := params.CDF(x); math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("fitted CDF(%v) = %v outside [0,1] (params %+v)", x, p, params)
			}
		}
		if math.IsNaN(stats.RMSE) || stats.RMSE < 0 {
			t.Fatalf("RMSE = %v, want finite >= 0", stats.RMSE)
		}
	})
}
