package locality

import (
	"math"
	"testing"
)

func TestFitDensityRecoversKnownParams(t *testing.T) {
	cases := []Params{
		{Alpha: 1.21, Beta: 103.26},
		{Alpha: 1.71, Beta: 85.03},
		{Alpha: 1.73, Beta: 1222.66},
		{Alpha: 2.5, Beta: 20},
	}
	for _, truth := range cases {
		var xs, ds []float64
		for x := 1.0; x < 1e6; x *= 1.5 {
			xs = append(xs, x)
			ds = append(ds, truth.Density(x))
		}
		got, stats, err := FitDensity(xs, ds, FitOptions{})
		if err != nil {
			t.Fatalf("FitDensity(%+v): %v", truth, err)
		}
		if math.Abs(got.Alpha-truth.Alpha) > 0.02 || math.Abs(got.Beta-truth.Beta)/truth.Beta > 0.05 {
			t.Errorf("recovered %+v for truth %+v (R2 %v)", got, truth, stats.R2)
		}
		if stats.R2 < 0.999 {
			t.Errorf("R2 %v too low for exact data", stats.R2)
		}
	}
}

func TestFitDensityAgreesWithCDFFit(t *testing.T) {
	// Both forms fitted to data generated from the same truth should give
	// compatible parameters (the paper fits equations (1) and (2)).
	truth := Params{Alpha: 1.4, Beta: 150}
	var xs, ps, ds []float64
	for x := 1.0; x < 1e5; x *= 1.4 {
		xs = append(xs, x)
		ps = append(ps, truth.CDF(x))
		ds = append(ds, truth.Density(x))
	}
	cdfFit, _, err := Fit(xs, ps, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	denFit, _, err := FitDensity(xs, ds, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdfFit.Alpha-denFit.Alpha) > 0.05 {
		t.Errorf("alpha disagreement: CDF %v vs density %v", cdfFit.Alpha, denFit.Alpha)
	}
	if math.Abs(cdfFit.Beta-denFit.Beta)/truth.Beta > 0.1 {
		t.Errorf("beta disagreement: CDF %v vs density %v", cdfFit.Beta, denFit.Beta)
	}
}

func TestFitDensitySkipsZeroMass(t *testing.T) {
	truth := Params{Alpha: 1.5, Beta: 50}
	xs := []float64{1, 2, 4, 8, 16, 32, 64}
	ds := make([]float64, len(xs))
	for i, x := range xs {
		ds[i] = truth.Density(x)
	}
	ds[3] = 0 // hole in the histogram
	got, _, err := FitDensity(xs, ds, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Alpha-truth.Alpha) > 0.05 {
		t.Errorf("fit with a hole: %+v vs %+v", got, truth)
	}
}

func TestFitDensityValidation(t *testing.T) {
	if _, _, err := FitDensity([]float64{1}, []float64{0.1, 0.2}, FitOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := FitDensity([]float64{1, 2}, []float64{0.1, -0.2}, FitOptions{}); err == nil {
		t.Error("negative density accepted")
	}
	if _, _, err := FitDensity([]float64{-1, 2}, []float64{0.1, 0.2}, FitOptions{}); err == nil {
		t.Error("negative x accepted")
	}
	if _, _, err := FitDensity([]float64{1, 2}, []float64{0, 0}, FitOptions{}); err == nil {
		t.Error("all-zero mass accepted")
	}
	if _, _, err := FitDensity([]float64{3, 3}, []float64{0.1, 0.1}, FitOptions{}); err == nil {
		t.Error("identical xs accepted")
	}
	if _, _, err := FitDensity([]float64{1, 2}, []float64{0.1, 0.2}, FitOptions{Weights: []float64{1}}); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, _, err := FitDensity([]float64{math.NaN(), 2}, []float64{0.1, 0.2}, FitOptions{}); err == nil {
		t.Error("NaN x accepted")
	}
}
