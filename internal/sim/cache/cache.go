// Package cache implements the set-associative, LRU-replacement processor
// cache used by all five back-end simulators: two-way set-associative with
// 64-byte lines for the SMP configurations (paper §5.1), with coherence
// state stored per line for the snooping and directory protocols.
//
//chc:deterministic
package cache

import (
	"fmt"
	"math/bits"
)

// State is the MSI coherence state of a cache line.
type State uint8

// Coherence states. The paper's protocols are MSI (write-invalidate
// snooping and a three-state directory); Exclusive exists for the
// simulator's optional MESI variant, where a sole clean copy upgrades to
// Modified without a coherence transaction.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the state mnemonic.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// A way is one uint64: tag<<3 | mru<<2 | state. State Invalid==0 doubles as
// the empty marker. Bit 2 is meaningful only on way 0 of a two-way set: it
// says way 1 was touched more recently than way 0, which is complete LRU
// information for associativity two — every touch makes one way most
// recently used and the other the eviction victim, exactly the ordering a
// per-way timestamp would produce. An 8-byte way keeps a whole two-way set
// in one 16-byte span (half the footprint of a timestamped layout), which
// matters because the simulated caches dominate the simulator's own memory
// traffic. Addresses are bounded well below 2^61 (trace.MaxAddr), so the
// tag always fits.
//
// Generic associativities keep true LRU timestamps in a sidecar array (see
// Cache.used) and ignore bit 2.
const (
	wayStateMask = 3
	wayMRU1      = 4 // on way 0: way 1 is the set's most recently used
	wayTagShift  = 3
)

func wayState(w uint64) State { return State(w & wayStateMask) }
func wayTag(w uint64) uint64  { return w >> wayTagShift }
func packWay(tag uint64, s State) uint64 {
	return tag<<wayTagShift | uint64(s)
}

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64 // lines displaced by fills
	Writebacks  uint64 // displaced lines that were Modified
	Invalidates uint64 // lines killed by coherence actions
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	sets     int
	assoc    int
	lineSize int
	// lineShift is log2(lineSize) when lineSize is a power of two, else -1;
	// the hot lineTag path prefers the shift over a 64-bit division.
	lineShift int8
	// two is true for the two-way power-of-two geometry: LRU lives in the
	// ways' MRU bits and used/tick stay nil.
	two   bool
	lines []uint64
	// used and tick implement LRU for generic associativities only.
	used  []uint64
	tick  uint64
	stats Stats
}

// New returns a cache of sizeBytes capacity with the given line size and
// associativity. All three must be positive; sizeBytes must be a multiple
// of lineSize*assoc and the set count a power of two. New panics otherwise:
// cache geometry is static configuration.
func New(sizeBytes, lineSize, assoc int) *Cache {
	if sizeBytes <= 0 || lineSize <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d line=%d assoc=%d", sizeBytes, lineSize, assoc))
	}
	if sizeBytes%(lineSize*assoc) != 0 {
		panic(fmt.Sprintf("cache: size %d not a multiple of line*assoc (%d)", sizeBytes, lineSize*assoc))
	}
	sets := sizeBytes / (lineSize * assoc)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	shift := int8(-1)
	if lineSize&(lineSize-1) == 0 {
		shift = int8(bits.TrailingZeros(uint(lineSize)))
	}
	c := &Cache{
		sets:      sets,
		assoc:     assoc,
		lineSize:  lineSize,
		lineShift: shift,
		two:       assoc == 2 && shift >= 0,
		lines:     make([]uint64, sets*assoc),
	}
	if !c.two {
		c.used = make([]uint64, sets*assoc)
	}
	return c
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// lineTag maps a byte address to its line identity.
func (c *Cache) lineTag(addr uint64) uint64 {
	if c.lineShift >= 0 {
		return addr >> uint(c.lineShift)
	}
	return addr / uint64(c.lineSize)
}

// Lookup performs an access to addr. On a hit it refreshes LRU and returns
// the line's state with hit=true; on a miss it returns (Invalid, false).
// Lookup does not fill the cache; the caller decides the fill state after
// running the coherence protocol (see Fill).
//
// The two-way power-of-two geometry every simulator uses (CacheHit, §5.1)
// is specialized straight-line with no subslice or loop; engines that need
// the hit check with zero call overhead inline the same probe via Hot.
func (c *Cache) Lookup(addr uint64) (State, bool) {
	if !c.two {
		return c.lookupGeneric(addr)
	}
	tag := addr >> uint8(c.lineShift)
	base := (int(tag) & (c.sets - 1)) << 1
	w0 := c.lines[base]
	if w0&wayStateMask != 0 && w0>>wayTagShift == tag {
		c.lines[base] = w0 &^ wayMRU1
		c.stats.Hits++
		return State(w0 & wayStateMask), true
	}
	if w1 := c.lines[base+1]; w1&wayStateMask != 0 && w1>>wayTagShift == tag {
		c.lines[base] = w0 | wayMRU1
		c.stats.Hits++
		return State(w1 & wayStateMask), true
	}
	c.stats.Misses++
	return Invalid, false
}

// lookupGeneric is Lookup for any other geometry, with timestamped LRU.
func (c *Cache) lookupGeneric(addr uint64) (State, bool) {
	tag := c.lineTag(addr)
	c.tick++
	base := (int(tag) & (c.sets - 1)) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		w := c.lines[i]
		if w&wayStateMask != 0 && w>>wayTagShift == tag {
			c.used[i] = c.tick
			c.stats.Hits++
			return State(w & wayStateMask), true
		}
	}
	c.stats.Misses++
	return Invalid, false
}

// Hot is a flattened view of a two-way power-of-two cache for a simulator
// engine's inner loop: the way array plus the geometry and counters the
// hit path touches, with no method call in the way. Everything aliases the
// Cache's own state — probes and fills through Cache methods and updates
// through Hot interleave coherently because they read and write the same
// words.
//
// The contract for one access to addr, matching Lookup word for word:
// tag = addr>>Shift, base = (tag&Mask)<<1; a way w matches when
// w&3 != 0 && w>>3 == tag. On a way-0 match store Ways[base]&^4 back and
// count *Hits; on a way-1 match store Ways[base]|4 back (way 1 becomes most
// recently used) and count *Hits; otherwise count *Misses.
type Hot struct {
	Ways   []uint64
	Mask   uint64 // sets-1
	Shift  uint8  // log2(lineSize)
	Hits   *uint64
	Misses *uint64
	// Invalidates backs Set(addr, Invalid), mirroring Cache.SetState's
	// bookkeeping so snoops through either interface count identically.
	Invalidates *uint64
	// Evictions and Writebacks back a fill inlined through the view,
	// mirroring Cache.Fill's victim bookkeeping.
	Evictions  *uint64
	Writebacks *uint64
}

// Probe reports the state of addr without touching LRU or statistics,
// mirroring Cache.Probe for the two-way geometry. Unlike the method on
// Cache it is small enough to inline into a snoop loop.
func (h *Hot) Probe(addr uint64) (State, bool) {
	tag := addr >> h.Shift
	base := (tag & h.Mask) << 1
	if w := h.Ways[base]; w&wayStateMask != 0 && w>>wayTagShift == tag {
		return State(w & wayStateMask), true
	}
	if w := h.Ways[base+1]; w&wayStateMask != 0 && w>>wayTagShift == tag {
		return State(w & wayStateMask), true
	}
	return Invalid, false
}

// Set changes the state of a resident line, mirroring Cache.SetState word
// for word: a no-op when absent, Invalid clears only the state bits (the
// way's LRU standing survives) and counts an invalidation.
func (h *Hot) Set(addr uint64, st State) {
	tag := addr >> h.Shift
	base := (tag & h.Mask) << 1
	i := base
	w := h.Ways[i]
	if w&wayStateMask == 0 || w>>wayTagShift != tag {
		i = base + 1
		w = h.Ways[i]
		if w&wayStateMask == 0 || w>>wayTagShift != tag {
			return
		}
	}
	// Invalid's state bits are zero, so one masked store covers both the
	// invalidation and the downgrade case.
	h.Ways[i] = w&^wayStateMask | uint64(st)
	if st == Invalid {
		*h.Invalidates++
	}
}

// Hot returns the flattened fast-path view, or ok=false when the geometry
// is not two-way with a power-of-two line size and the caller must stay on
// Lookup.
func (c *Cache) Hot() (Hot, bool) {
	if !c.two {
		return Hot{}, false
	}
	return Hot{
		Ways:        c.lines,
		Mask:        uint64(c.sets - 1),
		Shift:       uint8(c.lineShift),
		Hits:        &c.stats.Hits,
		Misses:      &c.stats.Misses,
		Invalidates: &c.stats.Invalidates,
		Evictions:   &c.stats.Evictions,
		Writebacks:  &c.stats.Writebacks,
	}, true
}

// Probe reports the state of addr without touching LRU or statistics
// (a snoop from another processor).
func (c *Cache) Probe(addr uint64) (State, bool) {
	if c.two {
		tag := addr >> uint8(c.lineShift)
		base := (int(tag) & (c.sets - 1)) << 1
		if w := c.lines[base]; w&wayStateMask != 0 && w>>wayTagShift == tag {
			return State(w & wayStateMask), true
		}
		if w := c.lines[base+1]; w&wayStateMask != 0 && w>>wayTagShift == tag {
			return State(w & wayStateMask), true
		}
		return Invalid, false
	}
	tag := c.lineTag(addr)
	base := (int(tag) & (c.sets - 1)) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		w := c.lines[i]
		if w&wayStateMask != 0 && w>>wayTagShift == tag {
			return State(w & wayStateMask), true
		}
	}
	return Invalid, false
}

// Fill inserts addr with the given state, evicting the LRU line of the set
// if needed. It returns the evicted line's byte address and whether it was
// Modified (needing a write-back); evicted is false when an invalid way was
// available. Filling a line that is already present just updates its state.
// A fill counts as a touch for LRU purposes.
func (c *Cache) Fill(addr uint64, st State) (evictedAddr uint64, writeback, evicted bool) {
	if st == Invalid {
		panic("cache: Fill with Invalid state")
	}
	if !c.two {
		return c.fillGeneric(addr, st)
	}
	tag := addr >> uint8(c.lineShift)
	base := (int(tag) & (c.sets - 1)) << 1
	w0 := c.lines[base]
	w1 := c.lines[base+1]
	if w0&wayStateMask != 0 && w0>>wayTagShift == tag {
		// Refill of a resident line: new state, way 0 becomes MRU.
		c.lines[base] = packWay(tag, st)
		return 0, false, false
	}
	if w1&wayStateMask != 0 && w1>>wayTagShift == tag {
		c.lines[base+1] = packWay(tag, st)
		c.lines[base] = w0 | wayMRU1
		return 0, false, false
	}
	// Victim: first invalid way, else the not-most-recently-used way —
	// identical to timestamped LRU at associativity two.
	v := 0
	switch {
	case w0&wayStateMask == 0:
	case w1&wayStateMask == 0:
		v = 1
	default:
		if w0&wayMRU1 == 0 {
			v = 1
		}
		ev := c.lines[base+v]
		c.stats.Evictions++
		if State(ev&wayStateMask) == Modified {
			c.stats.Writebacks++
			writeback = true
		}
		evictedAddr = ev >> wayTagShift << uint8(c.lineShift)
		evicted = true
	}
	if v == 0 {
		c.lines[base] = packWay(tag, st) // bit 2 clear: way 0 is MRU
	} else {
		c.lines[base+1] = packWay(tag, st)
		c.lines[base] = w0 | wayMRU1
	}
	return evictedAddr, writeback, evicted
}

// fillGeneric is Fill for any other geometry, with timestamped LRU.
func (c *Cache) fillGeneric(addr uint64, st State) (evictedAddr uint64, writeback, evicted bool) {
	tag := c.lineTag(addr)
	base := (int(tag) & (c.sets - 1)) * c.assoc
	c.tick++
	victim := -1
	for i := base; i < base+c.assoc; i++ {
		w := c.lines[i]
		if w&wayStateMask != 0 && w>>wayTagShift == tag {
			c.lines[i] = packWay(tag, st)
			c.used[i] = c.tick
			return 0, false, false
		}
		if w&wayStateMask == 0 {
			if victim == -1 || c.lines[victim]&wayStateMask != 0 {
				victim = i
			}
		} else if victim == -1 || (c.lines[victim]&wayStateMask != 0 && c.used[i] < c.used[victim]) {
			victim = i
		}
	}
	ev := c.lines[victim]
	wasValid := ev&wayStateMask != 0
	if wasValid {
		c.stats.Evictions++
		if State(ev&wayStateMask) == Modified {
			c.stats.Writebacks++
			writeback = true
		}
	}
	c.lines[victim] = packWay(tag, st)
	c.used[victim] = c.tick
	if !wasValid {
		return 0, false, false
	}
	return wayTag(ev) * uint64(c.lineSize), writeback, true
}

// SetState changes the state of a resident line (e.g. a snoop downgrade
// Modified→Shared). It is a no-op if the line is absent. Setting Invalid
// invalidates the line; the way's LRU standing is untouched either way,
// like the timestamped scheme it replaced.
func (c *Cache) SetState(addr uint64, st State) {
	tag := c.lineTag(addr)
	base := (int(tag) & (c.sets - 1)) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		w := c.lines[i]
		if w&wayStateMask != 0 && w>>wayTagShift == tag {
			if st == Invalid {
				// Clear the state bits only: the MRU bit (meaningful on way
				// 0) must survive the line's death, exactly as timestamps
				// survived invalidation.
				c.lines[i] = w &^ wayStateMask
				c.stats.Invalidates++
			} else {
				c.lines[i] = w&^wayStateMask | uint64(st)
			}
			return
		}
	}
}

// Flush invalidates every line and returns how many were Modified. Each
// valid line killed counts toward Stats.Invalidates, the same as a
// coherence invalidation through SetState.
func (c *Cache) Flush() (dirty int) {
	for i, w := range c.lines {
		switch State(w & wayStateMask) {
		case Invalid:
			continue
		case Modified:
			dirty++
		}
		c.lines[i] = w &^ wayStateMask
		c.stats.Invalidates++
	}
	return dirty
}

// Lines calls fn for every valid line with its line address (byte address
// divided by the line size) and state. Iteration order is unspecified.
func (c *Cache) Lines(fn func(lineAddr uint64, st State)) {
	for _, w := range c.lines {
		if w&wayStateMask != 0 {
			fn(wayTag(w), State(w&wayStateMask))
		}
	}
}

// Resident returns the number of valid lines (for tests and occupancy
// statistics).
func (c *Cache) Resident() int {
	n := 0
	for _, w := range c.lines {
		if w&wayStateMask != 0 {
			n++
		}
	}
	return n
}
