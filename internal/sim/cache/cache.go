// Package cache implements the set-associative, LRU-replacement processor
// cache used by all five back-end simulators: two-way set-associative with
// 64-byte lines for the SMP configurations (paper §5.1), with coherence
// state stored per line for the snooping and directory protocols.
//
//chc:deterministic
package cache

import (
	"fmt"
	"math/bits"
)

// State is the MSI coherence state of a cache line.
type State uint8

// Coherence states. The paper's protocols are MSI (write-invalidate
// snooping and a three-state directory); Exclusive exists for the
// simulator's optional MESI variant, where a sole clean copy upgrades to
// Modified without a coherence transaction.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the state mnemonic.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

type line struct {
	tag   uint64
	state State
	used  uint64 // LRU timestamp
}

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64 // lines displaced by fills
	Writebacks  uint64 // displaced lines that were Modified
	Invalidates uint64 // lines killed by coherence actions
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	sets     int
	assoc    int
	lineSize int
	// lineShift is log2(lineSize) when lineSize is a power of two, else -1;
	// the hot lineTag path prefers the shift over a 64-bit division.
	lineShift int8
	lines     []line
	tick      uint64
	stats     Stats
}

// New returns a cache of sizeBytes capacity with the given line size and
// associativity. All three must be positive; sizeBytes must be a multiple
// of lineSize*assoc and the set count a power of two. New panics otherwise:
// cache geometry is static configuration.
func New(sizeBytes, lineSize, assoc int) *Cache {
	if sizeBytes <= 0 || lineSize <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d line=%d assoc=%d", sizeBytes, lineSize, assoc))
	}
	if sizeBytes%(lineSize*assoc) != 0 {
		panic(fmt.Sprintf("cache: size %d not a multiple of line*assoc (%d)", sizeBytes, lineSize*assoc))
	}
	sets := sizeBytes / (lineSize * assoc)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	shift := int8(-1)
	if lineSize&(lineSize-1) == 0 {
		shift = int8(bits.TrailingZeros(uint(lineSize)))
	}
	return &Cache{
		sets:      sets,
		assoc:     assoc,
		lineSize:  lineSize,
		lineShift: shift,
		lines:     make([]line, sets*assoc),
	}
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// lineTag maps a byte address to its line identity.
func (c *Cache) lineTag(addr uint64) uint64 {
	if c.lineShift >= 0 {
		return addr >> uint(c.lineShift)
	}
	return addr / uint64(c.lineSize)
}

func (c *Cache) set(tag uint64) []line {
	s := int(tag) & (c.sets - 1)
	return c.lines[s*c.assoc : (s+1)*c.assoc]
}

// Lookup performs an access to addr. On a hit it refreshes LRU and returns
// the line's state with hit=true; on a miss it returns (Invalid, false).
// Lookup does not fill the cache; the caller decides the fill state after
// running the coherence protocol (see Fill).
func (c *Cache) Lookup(addr uint64) (State, bool) {
	tag := c.lineTag(addr)
	set := c.set(tag)
	c.tick++
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			set[i].used = c.tick
			c.stats.Hits++
			return set[i].state, true
		}
	}
	c.stats.Misses++
	return Invalid, false
}

// Probe reports the state of addr without touching LRU or statistics
// (a snoop from another processor).
func (c *Cache) Probe(addr uint64) (State, bool) {
	tag := c.lineTag(addr)
	set := c.set(tag)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			return set[i].state, true
		}
	}
	return Invalid, false
}

// Fill inserts addr with the given state, evicting the LRU line of the set
// if needed. It returns the evicted line's byte address and whether it was
// Modified (needing a write-back); evicted is false when an invalid way was
// available. Filling a line that is already present just updates its state.
func (c *Cache) Fill(addr uint64, st State) (evictedAddr uint64, writeback, evicted bool) {
	if st == Invalid {
		panic("cache: Fill with Invalid state")
	}
	tag := c.lineTag(addr)
	set := c.set(tag)
	c.tick++
	victim := -1
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			set[i].state = st
			set[i].used = c.tick
			return 0, false, false
		}
		if set[i].state == Invalid {
			if victim == -1 || set[victim].state != Invalid {
				victim = i
			}
		} else if victim == -1 || (set[victim].state != Invalid && set[i].used < set[victim].used) {
			victim = i
		}
	}
	ev := set[victim]
	wasValid := ev.state != Invalid
	if wasValid {
		c.stats.Evictions++
		if ev.state == Modified {
			c.stats.Writebacks++
			writeback = true
		}
	}
	set[victim] = line{tag: tag, state: st, used: c.tick}
	if !wasValid {
		return 0, false, false
	}
	return ev.tag * uint64(c.lineSize), writeback, true
}

// SetState changes the state of a resident line (e.g. a snoop downgrade
// Modified→Shared). It is a no-op if the line is absent. Setting Invalid
// invalidates the line.
func (c *Cache) SetState(addr uint64, st State) {
	tag := c.lineTag(addr)
	set := c.set(tag)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			if st == Invalid {
				set[i].state = Invalid
				c.stats.Invalidates++
			} else {
				set[i].state = st
			}
			return
		}
	}
}

// Flush invalidates every line and returns how many were Modified. Each
// valid line killed counts toward Stats.Invalidates, the same as a
// coherence invalidation through SetState.
func (c *Cache) Flush() (dirty int) {
	for i := range c.lines {
		switch c.lines[i].state {
		case Invalid:
			continue
		case Modified:
			dirty++
		}
		c.lines[i].state = Invalid
		c.stats.Invalidates++
	}
	return dirty
}

// Lines calls fn for every valid line with its line address (byte address
// divided by the line size) and state. Iteration order is unspecified.
func (c *Cache) Lines(fn func(lineAddr uint64, st State)) {
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			fn(c.lines[i].tag, c.lines[i].state)
		}
	}
}

// Resident returns the number of valid lines (for tests and occupancy
// statistics).
func (c *Cache) Resident() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			n++
		}
	}
	return n
}
