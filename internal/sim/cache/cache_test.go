package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := New(256<<10, 64, 2)
	if c.Sets() != 2048 || c.Assoc() != 2 || c.LineSize() != 64 {
		t.Errorf("geometry: sets=%d assoc=%d line=%d", c.Sets(), c.Assoc(), c.LineSize())
	}
}

func TestNewPanics(t *testing.T) {
	cases := [][3]int{
		{0, 64, 2}, {256, 0, 2}, {256, 64, 0},
		{100, 64, 2},        // not a multiple of line*assoc
		{64 * 2 * 3, 64, 2}, // 3 sets: not a power of two
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", tc)
				}
			}()
			New(tc[0], tc[1], tc[2])
		}()
	}
}

func TestLookupFillBasics(t *testing.T) {
	c := New(256, 64, 2) // 2 sets x 2 ways
	if _, hit := c.Lookup(0); hit {
		t.Error("cold lookup hit")
	}
	c.Fill(0, Shared)
	if st, hit := c.Lookup(0); !hit || st != Shared {
		t.Errorf("after fill: %v %v", st, hit)
	}
	// Same line, different offset.
	if st, hit := c.Lookup(63); !hit || st != Shared {
		t.Errorf("same-line offset: %v %v", st, hit)
	}
	// Next line maps to the other set.
	if _, hit := c.Lookup(64); hit {
		t.Error("different line hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(256, 64, 2) // 2 sets x 2 ways; lines 0,128,256... map to set 0
	c.Fill(0, Shared)
	c.Fill(128, Shared)
	c.Lookup(0) // make line 0 most recently used
	ev, wb, evicted := c.Fill(256, Shared)
	if !evicted || wb || ev != 128 {
		t.Errorf("eviction: addr=%d wb=%v evicted=%v (want 128, clean)", ev, wb, evicted)
	}
	if _, hit := c.Probe(0); !hit {
		t.Error("MRU line evicted")
	}
	if _, hit := c.Probe(128); hit {
		t.Error("LRU line survived")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(256, 64, 2)
	c.Fill(0, Modified)
	c.Fill(128, Shared)
	c.Lookup(128)
	ev, wb, evicted := c.Fill(256, Shared)
	if !evicted || !wb || ev != 0 {
		t.Errorf("dirty eviction: addr=%d wb=%v evicted=%v", ev, wb, evicted)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestFillExistingUpdatesState(t *testing.T) {
	c := New(256, 64, 2)
	c.Fill(0, Shared)
	_, _, evicted := c.Fill(0, Modified)
	if evicted {
		t.Error("refill evicted")
	}
	if st, _ := c.Probe(0); st != Modified {
		t.Errorf("state = %v, want M", st)
	}
	if c.Resident() != 1 {
		t.Errorf("resident = %d", c.Resident())
	}
}

func TestFillInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fill(Invalid) did not panic")
		}
	}()
	New(256, 64, 2).Fill(0, Invalid)
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := New(256, 64, 2)
	c.Fill(0, Modified)
	c.SetState(0, Shared)
	if st, _ := c.Probe(0); st != Shared {
		t.Errorf("downgrade failed: %v", st)
	}
	c.SetState(0, Invalid)
	if _, hit := c.Probe(0); hit {
		t.Error("invalidate failed")
	}
	if c.Stats().Invalidates != 1 {
		t.Errorf("invalidates = %d", c.Stats().Invalidates)
	}
	// No-op on absent line.
	c.SetState(512, Modified)
	if _, hit := c.Probe(512); hit {
		t.Error("SetState created a line")
	}
}

func TestProbeDoesNotDisturbLRU(t *testing.T) {
	c := New(256, 64, 2)
	c.Fill(0, Shared)
	c.Fill(128, Shared)
	// Probing 0 must NOT make it MRU.
	c.Probe(0)
	ev, _, _ := c.Fill(256, Shared)
	if ev != 0 {
		t.Errorf("probe refreshed LRU: evicted %d, want 0", ev)
	}
}

func TestFlush(t *testing.T) {
	c := New(256, 64, 2)
	c.Fill(0, Modified)
	c.Fill(64, Shared)
	if dirty := c.Flush(); dirty != 1 {
		t.Errorf("Flush dirty = %d", dirty)
	}
	if c.Resident() != 0 {
		t.Errorf("resident after flush = %d", c.Resident())
	}
}

func TestFlushCountsInvalidates(t *testing.T) {
	c := New(256, 64, 2)
	c.Fill(0, Modified)
	c.Fill(64, Shared)
	c.Fill(128, Exclusive)
	base := c.Stats().Invalidates
	c.Flush()
	if got := c.Stats().Invalidates - base; got != 3 {
		t.Errorf("Flush of 3 valid lines recorded %d invalidates, want 3", got)
	}
	// A second flush finds only invalid lines and must not count again.
	c.Flush()
	if got := c.Stats().Invalidates - base; got != 3 {
		t.Errorf("flushing an empty cache recorded extra invalidates: %d, want 3", got)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Error("state mnemonics wrong")
	}
	if State(7).String() == "" {
		t.Error("unknown state empty")
	}
}

// TestMatchesFullyAssociativeWhenOneSet cross-checks the LRU logic against
// a simple reference model when the cache degenerates to fully associative.
func TestMatchesFullyAssociativeWhenOneSet(t *testing.T) {
	const ways = 8
	c := New(64*ways, 64, ways) // one set
	var ref []uint64            // reference LRU stack, MRU first
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(32)) * 64
		_, hit := c.Lookup(addr)
		wantHit := false
		for j, a := range ref {
			if a == addr {
				wantHit = true
				ref = append(ref[:j], ref[j+1:]...)
				break
			}
		}
		ref = append([]uint64{addr}, ref...)
		if len(ref) > ways {
			ref = ref[:ways]
		}
		if hit != wantHit {
			t.Fatalf("step %d addr %d: hit=%v want %v", i, addr, hit, wantHit)
		}
		if !hit {
			c.Fill(addr, Shared)
		}
	}
}

func TestResidentNeverExceedsCapacity(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(1024, 64, 2) // 16 lines
		for _, a := range addrs {
			if _, hit := c.Lookup(uint64(a)); !hit {
				c.Fill(uint64(a), Shared)
			}
		}
		return c.Resident() <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
