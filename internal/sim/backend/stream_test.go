package backend

import (
	"errors"
	"os"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

// TestStreamRunMatchesRun: the streaming engine must reproduce the
// materialized engine's results exactly, for every backend variant.
func TestStreamRunMatchesRun(t *testing.T) {
	cfgs := []machine.Config{
		smpConfig(2),
		wsConfig(2, machine.NetBus100),
		csmpConfig(2, 2, machine.NetSwitch155),
	}
	kernels := []workloads.Workload{
		workloads.NewFFT(256),
		workloads.NewLU(24, 4),
		workloads.NewRadix(2000, 16),
		workloads.NewEdge(24, 24, 2),
	}
	for _, cfg := range cfgs {
		for _, w := range kernels {
			tr, err := workloads.GenerateTrace(w, cfg.TotalProcs())
			if err != nil {
				t.Fatal(err)
			}
			matSys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mat, err := Run(tr, matSys)
			if err != nil {
				t.Fatal(err)
			}
			strSys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			str, err := StreamRun(strSys, cfg.TotalProcs(), func(sink trace.Sink) error {
				return w.Run(cfg.TotalProcs(), sink)
			})
			if err != nil {
				t.Fatal(err)
			}
			if mat.WallCycles != str.WallCycles {
				t.Errorf("%s/%s: wall %v (run) vs %v (stream)", cfg.Name, w.Name(), mat.WallCycles, str.WallCycles)
			}
			if mat.Instructions != str.Instructions || mat.MemoryRefs != str.MemoryRefs {
				t.Errorf("%s/%s: counts differ: %d/%d vs %d/%d", cfg.Name, w.Name(),
					mat.Instructions, mat.MemoryRefs, str.Instructions, str.MemoryRefs)
			}
			if mat.Stats != str.Stats {
				t.Errorf("%s/%s: stats differ:\nrun:    %+v\nstream: %+v", cfg.Name, w.Name(), mat.Stats, str.Stats)
			}
			if mat.Barriers != str.Barriers || mat.BarrierWaitCycles != str.BarrierWaitCycles {
				t.Errorf("%s/%s: barrier accounting differs", cfg.Name, w.Name())
			}
			if len(mat.Phases) != len(str.Phases) {
				t.Errorf("%s/%s: phase count %d vs %d", cfg.Name, w.Name(), len(mat.Phases), len(str.Phases))
			}
		}
	}
}

func TestStreamRunErrors(t *testing.T) {
	sys, err := NewSystem(smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Mismatched processor count.
	if _, err := StreamRun(sys, 3, func(trace.Sink) error { return nil }); err == nil {
		t.Error("processor mismatch accepted")
	}
	// Generator failure propagates.
	sys2, _ := NewSystem(smpConfig(2))
	boom := errors.New("boom")
	if _, err := StreamRun(sys2, 2, func(trace.Sink) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("generator error lost: %v", err)
	}
}

func TestStreamRunEmptyGenerator(t *testing.T) {
	sys, _ := NewSystem(smpConfig(2))
	res, err := StreamRun(sys, 2, func(trace.Sink) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles != 0 || res.Instructions != 0 {
		t.Errorf("empty stream: %+v", res)
	}
}

// TestStreamRunPaperScale is the opt-in proof that paper-size problems
// simulate without materializing their traces.
func TestStreamRunPaperScale(t *testing.T) {
	if os.Getenv("MEMHIER_PAPER_SCALE") == "" {
		t.Skip("set MEMHIER_PAPER_SCALE=1 to stream-simulate a paper-size problem")
	}
	cfg, err := machine.ByName("C8")
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.NewFFT(1 << 16) // the paper's 64K points
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := StreamRun(sys, cfg.TotalProcs(), func(sink trace.Sink) error {
		return w.Run(cfg.TotalProcs(), sink)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("paper-scale FFT on C8: E(Instr)=%.3f cycles over %d instructions", res.EInstr, res.Instructions)
	if res.MemoryRefs < 1<<20 {
		t.Errorf("expected millions of references, got %d", res.MemoryRefs)
	}
}
