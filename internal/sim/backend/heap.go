package backend

// heapEnt is one ready-queue entry: a processor's current clock and its
// index. The queue orders entries by (clock, cpu); cpu doubles as the FIFO
// tiebreak for determinism, since processors enter the queue in CPU order.
type heapEnt struct {
	clock float64
	cpu   int32
}

// entLess is the ready-queue ordering: earliest clock first, lowest CPU on
// ties. Keys are unique (one entry per CPU), so the pop sequence is fully
// determined regardless of the heap's internal arrangement.
func entLess(a, b heapEnt) bool {
	// The == is an exact tiebreak inside a total order, not an arithmetic
	// comparison: two clocks either are the same bits (tie → cpu decides)
	// or they are not. A tolerance here would make the order intransitive.
	//chc:allow floateq -- exact tiebreak in a comparator
	return a.clock < b.clock || (a.clock == b.clock && a.cpu < b.cpu)
}

// cpuQueue is a value-typed binary min-heap of heapEnt. Compared to
// container/heap it avoids interface method calls and boxing on the
// engine's hottest path; entries are plain 16-byte values in one slice.
type cpuQueue []heapEnt

// push inserts e, restoring the heap property.
func (q *cpuQueue) push(e heapEnt) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum entry. The queue must be non-empty.
func (q *cpuQueue) pop() heapEnt {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && entLess(h[r], h[l]) {
			m = r
		}
		if !entLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// heapify restores the heap property over arbitrary contents (used when a
// phase restarts the queue from per-processor clocks).
func (q cpuQueue) heapify() {
	n := len(q)
	for i := n/2 - 1; i >= 0; i-- {
		j := i
		for {
			l := 2*j + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && entLess(q[r], q[l]) {
				m = r
			}
			if !entLess(q[m], q[j]) {
				break
			}
			q[j], q[m] = q[m], q[j]
			j = m
		}
	}
}
