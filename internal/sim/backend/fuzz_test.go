package backend

import (
	"math/rand"
	"reflect"
	"testing"

	"memhier/internal/machine"
)

// FuzzRunEquivalence hammers the engine-equivalence contract with randomized
// balanced-barrier traces: the batched sequential engine, the parallel
// engine at several worker counts, and the unbatched reference executor must
// produce bit-identical RunResults on every platform kind. The generator
// parameters — not raw event bytes — are the fuzz input, so every corpus
// entry is a valid trace and the fuzzer explores the scheduling space
// (processor counts, phase structure, mix density) rather than the decoder.
func FuzzRunEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint16(120))
	f.Add(int64(7), uint8(2), uint8(1), uint16(40))
	f.Add(int64(42), uint8(6), uint8(4), uint16(90))
	f.Add(int64(-3), uint8(1), uint8(2), uint16(200))
	f.Add(int64(99), uint8(5), uint8(5), uint16(10))
	f.Fuzz(func(t *testing.T, seed int64, nprocRaw, phasesRaw uint8, eventsRaw uint16) {
		nproc := 1 + int(nprocRaw)%6
		phases := 1 + int(phasesRaw)%5
		events := 1 + int(eventsRaw)%150
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, nproc, phases, events)

		cfgs := []machine.Config{smpConfig(nproc)}
		if nproc%2 == 0 {
			cfgs = append(cfgs,
				wsConfig(nproc, machine.NetBus100),
				csmpConfig(nproc/2, 2, machine.NetSwitch155))
		}
		// Seed-derived multi-level variant: the same equivalence contract
		// must hold with a private L2/L3 stack in front of the coherence
		// machinery. Deriving the depth from the seed keeps the fuzz
		// signature — and the checked-in corpus — unchanged.
		depth := 2 + int(uint64(seed)%2)
		deep := withLevels(cfgs[uint64(seed)%uint64(len(cfgs))], depth)
		cfgs = append(cfgs, deep)
		for _, cfg := range cfgs {
			sysA, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := referenceRun(tr, sysA)
			if err != nil {
				t.Fatal(err)
			}
			sysB, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(tr, sysB)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Run diverged from reference (seed=%d nproc=%d phases=%d events=%d)",
					cfg.Name, seed, nproc, phases, events)
			}
			if err := sysB.VerifyCoherence(); err != nil {
				t.Errorf("%s: %v (seed=%d nproc=%d phases=%d events=%d)",
					cfg.Name, err, seed, nproc, phases, events)
			}
			for _, workers := range []int{2, 3} {
				sysC, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				par, err := RunParallel(tr, sysC, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(par, want) {
					t.Errorf("%s: RunParallel(workers=%d) diverged from reference (seed=%d nproc=%d phases=%d events=%d)",
						cfg.Name, workers, seed, nproc, phases, events)
				}
			}
		}
	})
}
