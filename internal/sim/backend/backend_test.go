package backend

import (
	"math"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

func smpConfig(n int) machine.Config {
	return machine.Config{Name: "test-smp", Kind: machine.SMP, N: 1, Procs: n,
		CacheBytes: 4 << 10, MemoryBytes: 1 << 20, Net: machine.NetNone, ClockMHz: 200}
}

func wsConfig(n int, net machine.NetworkKind) machine.Config {
	return machine.Config{Name: "test-ws", Kind: machine.ClusterWS, N: n, Procs: 1,
		CacheBytes: 4 << 10, MemoryBytes: 1 << 20, Net: net, ClockMHz: 200}
}

func csmpConfig(n, N int, net machine.NetworkKind) machine.Config {
	return machine.Config{Name: "test-csmp", Kind: machine.ClusterSMP, N: N, Procs: n,
		CacheBytes: 4 << 10, MemoryBytes: 1 << 20, Net: net, ClockMHz: 200}
}

func TestUniprocessorTiming(t *testing.T) {
	// One CPU, reads to two addresses in the same line, then a distinct
	// line: costs are exactly cache-hit and memory latencies.
	tr := trace.New(1)
	s := tr.Streams[0]
	s.AddRead(0)    // miss -> memory 50 (plus page fault on first page: disk 2000)
	s.AddRead(8)    // same line: hit, 1
	s.AddRead(4096) // miss, new page: memory + disk
	s.AddCompute(10)

	res, err := Simulate(tr, smpConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// First access: membus 50, page fault 2000 => completes at 2050.
	// Second: +1. Third: 50 + 2000 again. Compute: +10.
	want := 2050.0 + 1 + 2050 + 10
	if math.Abs(res.WallCycles-want) > 1e-9 {
		t.Errorf("WallCycles = %v, want %v", res.WallCycles, want)
	}
	if res.Stats.ClassCounts[ClassCacheHit] != 1 {
		t.Errorf("cache hits = %d, want 1", res.Stats.ClassCounts[ClassCacheHit])
	}
	if res.Stats.ClassCounts[ClassDisk] != 2 {
		t.Errorf("disk accesses = %d, want 2", res.Stats.ClassCounts[ClassDisk])
	}
	if res.Instructions != 13 {
		t.Errorf("instructions = %d, want 13", res.Instructions)
	}
}

func TestWarmPagesServeFromMemory(t *testing.T) {
	tr := trace.New(1)
	s := tr.Streams[0]
	s.AddRead(0) // faults the page in
	// Touch other lines of the now-resident page: memory latency only.
	s.AddRead(64)
	s.AddRead(128)
	res, err := Simulate(tr, smpConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ClassCounts[ClassLocalMemory] != 2 || res.Stats.ClassCounts[ClassDisk] != 1 {
		t.Errorf("classes: %+v", res.Stats.ClassCounts)
	}
	want := 2050.0 + 50 + 50
	if math.Abs(res.WallCycles-want) > 1e-9 {
		t.Errorf("WallCycles = %v, want %v", res.WallCycles, want)
	}
}

func TestSnoopingCacheToCacheTransfer(t *testing.T) {
	// CPU0 loads a line; CPU1 then reads it: must be a 15-cycle
	// cache-to-cache transfer, not a memory access.
	tr := trace.New(2)
	tr.Streams[0].AddRead(0)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddCompute(5000) // stay behind CPU0
	tr.Streams[1].AddBarrier()
	tr.Streams[0].AddCompute(1)
	tr.Streams[1].AddRead(0)

	res, err := Simulate(tr, smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ClassCounts[ClassRemoteCache] != 1 {
		t.Errorf("remote-cache transfers = %d, want 1 (%+v)", res.Stats.ClassCounts[ClassRemoteCache], res.Stats.ClassCounts)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	// Both CPUs read a line (shared), then CPU0 writes it (upgrade), then
	// CPU1 reads again: CPU1 must miss and fetch from CPU0's cache.
	tr := trace.New(2)
	tr.Streams[0].AddRead(0)
	tr.Streams[1].AddCompute(5000)
	tr.Streams[1].AddRead(0)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddBarrier()
	tr.Streams[0].AddWrite(0)
	tr.Streams[1].AddCompute(9000)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddBarrier()
	tr.Streams[1].AddRead(0)
	tr.Streams[0].AddCompute(1)

	sys, err := NewSystem(smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", res.Stats.Upgrades)
	}
	// CPU1's final read: the line was invalidated, CPU0 has it Modified →
	// cache-to-cache transfer.
	if got := res.Stats.ClassCounts[ClassRemoteCache]; got != 2 {
		// one for CPU1's initial read (after CPU0 cached it), one after
		// the invalidation
		t.Errorf("remote-cache transfers = %d, want 2 (%+v)", got, res.Stats.ClassCounts)
	}
	if res.CoherenceShare <= 0 {
		t.Error("coherence bus share should be positive")
	}
}

func TestClusterRemoteAccessLatencies(t *testing.T) {
	for _, tc := range []struct {
		net  machine.NetworkKind
		want float64
	}{
		{machine.NetBus10, 45075},
		{machine.NetBus100, 4575},
		{machine.NetSwitch155, 3275},
	} {
		// Node 0 touches a block (becomes home, faults page). Node 1 then
		// reads it remotely: a clean 2-hop transfer.
		tr := trace.New(2)
		tr.Streams[0].AddRead(0)
		tr.Streams[0].AddBarrier()
		tr.Streams[1].AddCompute(5000)
		tr.Streams[1].AddBarrier()
		tr.Streams[1].AddRead(0)
		tr.Streams[0].AddCompute(1)

		res, err := Simulate(tr, wsConfig(2, tc.net))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ClassCounts[ClassRemoteClean] != 1 {
			t.Errorf("%v: remote-clean = %d, want 1 (%+v)", tc.net, res.Stats.ClassCounts[ClassRemoteClean], res.Stats.ClassCounts)
		}
		if got := res.Stats.ClassCycles[ClassRemoteClean]; math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%v: remote access cost %v cycles, want %v", tc.net, got, tc.want)
		}
	}
}

func TestClusterDirtyRemoteAccess(t *testing.T) {
	// Node 0 writes a block (home, Modified). Node 1 reads: remotely
	// cached data, 3-hop latency 9150 on 100Mb.
	tr := trace.New(2)
	tr.Streams[0].AddWrite(0)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddCompute(9000)
	tr.Streams[1].AddBarrier()
	tr.Streams[1].AddRead(0)
	tr.Streams[0].AddCompute(1)

	res, err := Simulate(tr, wsConfig(2, machine.NetBus100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ClassCounts[ClassRemoteDirty] != 1 {
		t.Errorf("remote-dirty = %d, want 1 (%+v)", res.Stats.ClassCounts[ClassRemoteDirty], res.Stats.ClassCounts)
	}
	if got := res.Stats.ClassCycles[ClassRemoteDirty]; math.Abs(got-9150) > 1e-9 {
		t.Errorf("dirty remote cost %v, want 9150", got)
	}
}

func TestFirstTouchHomesKeepPartitionLocal(t *testing.T) {
	// Each node streams over its own distinct region: after first touch,
	// everything is local; no network traffic at all.
	tr := trace.New(4)
	for cpu := 0; cpu < 4; cpu++ {
		base := uint64(cpu) * (1 << 16)
		for i := uint64(0); i < 512; i++ {
			tr.Streams[cpu].AddRead(base + i*64)
		}
		tr.Streams[cpu].AddBarrier()
	}
	res, err := Simulate(tr, wsConfig(4, machine.NetBus100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ClassCounts[ClassRemoteClean]+res.Stats.ClassCounts[ClassRemoteDirty] != 0 {
		t.Errorf("partitioned streams caused remote traffic: %+v", res.Stats.ClassCounts)
	}
	if res.NetUtilization != 0 {
		t.Errorf("net utilization = %v, want 0", res.NetUtilization)
	}
}

func TestBusContentionSerializesTransfers(t *testing.T) {
	// Two nodes simultaneously read each other's block over a bus network:
	// the second transfer queues behind the first.
	mk := func(net machine.NetworkKind) float64 {
		tr := trace.New(2)
		// Establish homes.
		tr.Streams[0].AddRead(0)
		tr.Streams[1].AddRead(1 << 16)
		tr.Streams[0].AddBarrier()
		tr.Streams[1].AddBarrier()
		// Cross reads at the same instant.
		tr.Streams[0].AddRead(1 << 16)
		tr.Streams[1].AddRead(0)
		res, err := Simulate(tr, wsConfig(2, net))
		if err != nil {
			t.Fatal(err)
		}
		return res.WallCycles
	}
	bus := mk(machine.NetBus100)
	sw := mk(machine.NetSwitch155)
	// On the bus the two 4575-cycle transfers serialize; on the switch the
	// two ports work in parallel (3275 each).
	if bus < 2*4575 {
		t.Errorf("bus wall %v should include serialized transfers (>= %v)", bus, 2*4575)
	}
	if sw > bus {
		t.Errorf("switch (%v) should beat the saturated bus (%v)", sw, bus)
	}
}

func TestBarrierSynchronization(t *testing.T) {
	tr := trace.New(2)
	tr.Streams[0].AddCompute(100)
	tr.Streams[0].AddBarrier()
	tr.Streams[0].AddCompute(1)
	tr.Streams[1].AddCompute(1000)
	tr.Streams[1].AddBarrier()
	tr.Streams[1].AddCompute(1)

	res, err := Simulate(tr, smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles != 1001 {
		t.Errorf("WallCycles = %v, want 1001", res.WallCycles)
	}
	if res.BarrierWaitCycles != 900 {
		t.Errorf("BarrierWait = %v, want 900", res.BarrierWaitCycles)
	}
	if res.Barriers != 1 {
		t.Errorf("Barriers = %d, want 1", res.Barriers)
	}
}

func TestTraceStreamMismatch(t *testing.T) {
	tr := trace.New(3)
	if _, err := Simulate(tr, smpConfig(2)); err == nil {
		t.Error("stream/processor mismatch accepted")
	}
}

func TestUnbalancedBarriersRejected(t *testing.T) {
	tr := trace.New(2)
	tr.Streams[0].AddBarrier()
	if _, err := Simulate(tr, smpConfig(2)); err == nil {
		t.Error("unbalanced barriers accepted")
	}
}

func TestTooManyNodesRejected(t *testing.T) {
	cfg := wsConfig(65, machine.NetBus100)
	if _, err := NewSystem(cfg); err == nil {
		t.Error("65-node cluster accepted (sharer mask is 64 bits)")
	}
}

// TestDeterminism: same trace, same config, identical results.
func TestDeterminism(t *testing.T) {
	w := workloads.NewFFT(256)
	tr, err := workloads.GenerateTrace(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := csmpConfig(2, 2, machine.NetSwitch155)
	r1, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.WallCycles != r2.WallCycles || r1.Stats != r2.Stats {
		t.Error("simulation is nondeterministic")
	}
}

// TestAllFiveBackendsRunRealWorkloads drives each of the paper's five
// back-end variants with a real instrumented kernel and sanity-checks the
// outcome.
func TestAllFiveBackendsRunRealWorkloads(t *testing.T) {
	cfgs := []machine.Config{
		smpConfig(2),
		wsConfig(2, machine.NetBus10),
		wsConfig(2, machine.NetSwitch155),
		csmpConfig(2, 2, machine.NetBus100),
		csmpConfig(2, 2, machine.NetSwitch155),
	}
	for _, cfg := range cfgs {
		w := workloads.NewRadix(2000, 16)
		tr, err := workloads.GenerateTrace(w, cfg.TotalProcs())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(tr, cfg)
		if err != nil {
			t.Fatalf("%s/%v: %v", cfg.Name, cfg.Net, err)
		}
		if res.WallCycles <= 0 || res.EInstr <= 0 {
			t.Errorf("%s/%v: degenerate result %+v", cfg.Name, cfg.Net, res)
		}
		if res.AvgT < 1 {
			t.Errorf("%s/%v: AvgT %v below cache latency", cfg.Name, cfg.Net, res.AvgT)
		}
		var classTotal uint64
		for _, c := range res.Stats.ClassCounts {
			classTotal += c
		}
		if classTotal != res.Stats.Refs || res.Stats.Refs != res.MemoryRefs {
			t.Errorf("%s/%v: class counts %d != refs %d/%d", cfg.Name, cfg.Net, classTotal, res.Stats.Refs, res.MemoryRefs)
		}
		if cfg.N > 1 && res.Stats.ClassCounts[ClassRemoteClean]+res.Stats.ClassCounts[ClassRemoteDirty] == 0 {
			t.Errorf("%s/%v: a shared radix sort should produce remote traffic", cfg.Name, cfg.Net)
		}
	}
}

// TestMoreProcessorsReduceWallTime checks the basic parallel-speedup sanity
// on a compute-heavy workload.
func TestMoreProcessorsReduceWallTime(t *testing.T) {
	w := workloads.NewEdge(32, 32, 2)
	tr1, err := workloads.GenerateTrace(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr4, err := workloads.GenerateTrace(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Simulate(tr1, smpConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Simulate(tr4, smpConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if r4.WallCycles >= r1.WallCycles {
		t.Errorf("4 processors (%v cycles) not faster than 1 (%v cycles)", r4.WallCycles, r1.WallCycles)
	}
}

func TestAccessClassStrings(t *testing.T) {
	for c := AccessClass(0); c < numClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", int(c))
		}
	}
	if AccessClass(99).String() == "" {
		t.Error("unknown class empty")
	}
}
