package backend

import (
	"math/rand"
	"reflect"
	"testing"

	"memhier/internal/machine"
)

// TestWheelEngineMatchesScan pins the scan/wheel crossover contract: both
// schedulers retire work in identical (clock, cpu) order, so forcing a
// trace through the wheel must reproduce the scan engines' RunResult bit
// for bit. Below the crossover the wheel is invoked directly; above it
// (more processors than scanMaxProcs) the Run dispatch itself selects the
// wheel and is checked against the unbatched reference executor.
func TestWheelEngineMatchesScan(t *testing.T) {
	// Small config: every engine variant on the same trace.
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 4, 4, 300)
		for _, cfg := range []machine.Config{smpConfig(4), csmpConfig(2, 2, machine.NetBus100)} {
			sysA, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(tr, sysA) // scan (integer fast path)
			if err != nil {
				t.Fatal(err)
			}
			sysB, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := runSeqWheel(tr, sysB)
			if err != nil {
				t.Fatalf("seed %d %s: wheel: %v", seed, cfg.Name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d %s: wheel engine diverged from scan:\n got %+v\nwant %+v",
					seed, cfg.Name, got, want)
			}
			sysC, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			flt, err := runSeqScan(tr, sysC) // float scan variant
			if err != nil {
				t.Fatalf("seed %d %s: float scan: %v", seed, cfg.Name, err)
			}
			if !reflect.DeepEqual(flt, want) {
				t.Errorf("seed %d %s: float scan diverged from integer scan", seed, cfg.Name)
			}
		}
	}

	// Past the crossover: Run dispatches to the wheel on its own; the
	// reference executor is the oracle.
	rng := rand.New(rand.NewSource(7))
	n := scanMaxProcs + 4
	tr := randomTrace(rng, n, 3, 60)
	cfg := smpConfig(n)
	sysA, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(tr, sysA)
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := referenceRun(tr, sysB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%d-processor wheel dispatch diverged from reference", n)
	}
}

// benchScheduler drives one engine over a fixed seeded trace; the trace is
// hit-dominated with short compute gaps, so nearly all time goes to
// scheduling decisions — the quantity BenchmarkScheduler* compares across
// the scan and wheel structures at the same processor count.
func benchScheduler(b *testing.B, nproc int, wheel bool) {
	rng := rand.New(rand.NewSource(42))
	tr := randomTrace(rng, nproc, 4, 400)
	cfg := smpConfig(nproc)
	// Prime the op compilation outside the timed region.
	for _, s := range tr.Streams {
		if _, err := s.Ops(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var res RunResult
		if wheel {
			res, err = runSeqWheel(tr, sys)
		} else {
			res, err = runSeq(tr, sys)
		}
		if err != nil {
			b.Fatal(err)
		}
		if res.WallCycles == 0 {
			b.Fatal("empty run")
		}
	}
}

func BenchmarkSchedulerScan4(b *testing.B)   { benchScheduler(b, 4, false) }
func BenchmarkSchedulerWheel4(b *testing.B)  { benchScheduler(b, 4, true) }
func BenchmarkSchedulerScan16(b *testing.B)  { benchScheduler(b, 16, false) }
func BenchmarkSchedulerWheel16(b *testing.B) { benchScheduler(b, 16, true) }
func BenchmarkSchedulerScan32(b *testing.B)  { benchScheduler(b, 32, false) }
func BenchmarkSchedulerWheel32(b *testing.B) { benchScheduler(b, 32, true) }
