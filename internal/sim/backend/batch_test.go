package backend

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

// randomTrace builds a balanced bulk-synchronous trace with a randomized
// mix of reads, writes, compute gaps, and barriers. Addresses are drawn
// from a working set small enough to provoke sharing, evictions, and
// coherence traffic on every configuration.
func randomTrace(rng *rand.Rand, nproc, phases, eventsPerPhase int) *trace.Trace {
	tr := trace.New(nproc)
	for p := 0; p < phases; p++ {
		for cpu := 0; cpu < nproc; cpu++ {
			s := tr.Streams[cpu]
			n := 1 + rng.Intn(eventsPerPhase)
			for i := 0; i < n; i++ {
				switch rng.Intn(4) {
				case 0:
					s.AddCompute(uint64(1 + rng.Intn(50)))
				case 1:
					s.AddWrite(uint64(rng.Intn(1 << 16)))
				default:
					s.AddRead(uint64(rng.Intn(1 << 16)))
				}
			}
			s.AddBarrier()
		}
	}
	// Unbalanced tails after the last barrier.
	for cpu := 0; cpu < nproc; cpu++ {
		s := tr.Streams[cpu]
		for i := rng.Intn(eventsPerPhase); i > 0; i-- {
			s.AddRead(uint64(rng.Intn(1 << 16)))
		}
	}
	return tr
}

// TestRunMatchesReference cross-checks the batched engine against the
// retained pop-one-event reference executor on seeded random traces: the
// RunResults — wall time, per-phase profiles, every counter — must be
// bit-identical on all three platform kinds.
func TestRunMatchesReference(t *testing.T) {
	cfgs := []machine.Config{
		smpConfig(4),
		wsConfig(4, machine.NetBus100),
		csmpConfig(2, 2, machine.NetSwitch155),
	}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 4, 6, 400)
		for _, cfg := range cfgs {
			sysA, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(tr, sysA)
			if err != nil {
				t.Fatalf("seed %d %s: batched Run: %v", seed, cfg.Name, err)
			}
			sysB, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := referenceRun(tr, sysB)
			if err != nil {
				t.Fatalf("seed %d %s: reference run: %v", seed, cfg.Name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d %s: batched engine diverged from reference:\n got %+v\nwant %+v",
					seed, cfg.Name, got, want)
			}
			for _, workers := range []int{1, 2, runtime.NumCPU()} {
				sysC, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				par, err := RunParallel(tr, sysC, workers)
				if err != nil {
					t.Fatalf("seed %d %s: RunParallel(workers=%d): %v", seed, cfg.Name, workers, err)
				}
				if !reflect.DeepEqual(par, want) {
					t.Errorf("seed %d %s: parallel engine (workers=%d) diverged from reference",
						seed, cfg.Name, workers)
				}
			}
		}
	}
}

// TestRunMatchesReferenceWorkload cross-checks on a real kernel trace, where
// long compute runs exercise the batching path much harder than the random
// mix does.
func TestRunMatchesReferenceWorkload(t *testing.T) {
	tr, err := workloads.GenerateTrace(workloads.NewRadix(1<<12, 64), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []machine.Config{smpConfig(4), wsConfig(4, machine.NetSwitch155)} {
		sysA, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(tr, sysA)
		if err != nil {
			t.Fatal(err)
		}
		sysB, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceRun(tr, sysB)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: batched engine diverged from reference on Radix trace", cfg.Name)
		}
	}
}
