package backend

import "math/bits"

// wheel is a calendar-queue scheduler for the engine's ready queue: an array
// of buckets, each one bucket-width of simulated cycles wide, cycled through
// by a monotonically advancing cursor. The engine's pop clocks never
// decrease (a processor re-enters the queue at or after the time it was
// popped), so the cursor only moves forward and the common push/pop is O(1):
// push indexes a bucket directly, pop scans an occupancy bitmap from the
// cursor to the next non-empty bucket. Entries more than one rotation ahead
// of the cursor park in an overflow list and are folded back in as the
// cursor approaches them.
//
// The bucket width is sized from the latency table (see newWheel callers):
// the queue reorders only when a processor leaves the private-hit fast path,
// so consecutive pops are typically separated by at least the cheapest
// shared transaction (remote-cache, 15 cycles) and land a few buckets apart.
//
// Ordering is exactly entLess (clock, then CPU index): a bucket holds at
// most one tick's worth of entries and pop scans it for the entLess-minimum,
// so the pop sequence is identical to the binary heap it replaces.
type wheel struct {
	width   float64 // bucket width in cycles
	inv     float64 // 1/width
	mask    uint64
	curTick uint64 // absolute tick of the cursor; all entries are at ticks >= this
	buckets [][]heapEnt
	occ     []uint64 // occupancy bitmap over bucket indexes
	far     []heapEnt
	farMin  uint64 // minimum tick among far entries; ^0 when far is empty
	n       int
}

const wheelBuckets = 256 // power of two; one rotation = wheelBuckets*width cycles

func newWheel(width float64) *wheel {
	if width < 1 {
		width = 1
	}
	return &wheel{
		width:   width,
		inv:     1 / width,
		mask:    wheelBuckets - 1,
		buckets: make([][]heapEnt, wheelBuckets),
		occ:     make([]uint64, wheelBuckets/64),
		farMin:  ^uint64(0),
	}
}

func (w *wheel) tick(clock float64) uint64 {
	t := uint64(clock * w.inv)
	if t < w.curTick {
		// Equal-clock pushes can round below the cursor's tick; clamp so the
		// invariant (all entries at ticks >= curTick) holds.
		t = w.curTick
	}
	return t
}

// push inserts e. e.clock must be >= the clock of the last pop.
func (w *wheel) push(e heapEnt) {
	t := w.tick(e.clock)
	if t-w.curTick >= wheelBuckets {
		w.far = append(w.far, e)
		if t < w.farMin {
			w.farMin = t
		}
	} else {
		b := t & w.mask
		w.buckets[b] = append(w.buckets[b], e)
		w.occ[b>>6] |= 1 << (b & 63)
	}
	w.n++
}

// fold moves far entries that now fit inside the rotation window into their
// buckets and recomputes farMin.
func (w *wheel) fold() {
	kept := w.far[:0]
	newMin := ^uint64(0)
	for _, e := range w.far {
		t := w.tick(e.clock)
		if t-w.curTick >= wheelBuckets {
			kept = append(kept, e)
			if t < newMin {
				newMin = t
			}
		} else {
			b := t & w.mask
			w.buckets[b] = append(w.buckets[b], e)
			w.occ[b>>6] |= 1 << (b & 63)
		}
	}
	w.far = kept
	w.farMin = newMin
}

// findMin advances the cursor to the bucket holding the global minimum and
// returns its index plus the position of the minimum entry inside it. The
// wheel must be non-empty.
func (w *wheel) findMin() (bucket uint64, i int) {
	if w.n == len(w.far) {
		// Nothing bucketed: jump the cursor to the nearest far entry.
		w.curTick = w.farMin
		w.fold()
	} else if w.farMin-w.curTick < wheelBuckets {
		// A far entry has come inside the window; it may now be the minimum.
		w.fold()
	}
	// Scan the occupancy bitmap cyclically from the cursor; cyclic order from
	// curTick is absolute tick order because all entries sit within one
	// rotation of the cursor.
	start := w.curTick & w.mask
	idx := start
	for {
		m := w.occ[idx>>6] & (^uint64(0) << (idx & 63))
		if m != 0 {
			b := idx&^63 + uint64(bits.TrailingZeros64(m))
			w.curTick += (b - start) & w.mask
			bucket = b
			break
		}
		idx = (idx&^63 + 64) & w.mask
	}
	bk := w.buckets[bucket]
	i = 0
	for j := 1; j < len(bk); j++ {
		if entLess(bk[j], bk[i]) {
			i = j
		}
	}
	return bucket, i
}

// pop removes and returns the minimum entry. The wheel must be non-empty.
func (w *wheel) pop() heapEnt {
	b, i := w.findMin()
	bk := w.buckets[b]
	e := bk[i]
	last := len(bk) - 1
	bk[i] = bk[last]
	w.buckets[b] = bk[:last]
	if last == 0 {
		w.occ[b>>6] &^= 1 << (b & 63)
	}
	w.n--
	return e
}

// peek returns the minimum entry without removing it. The wheel must be
// non-empty. (It may still advance the cursor and fold far entries in.)
func (w *wheel) peek() heapEnt {
	b, i := w.findMin()
	return w.buckets[b][i]
}
