// Package backend implements the execution-driven memory-hierarchy
// simulators that validate the analytical model — the counterpart of the
// paper's five MINT back-ends:
//
//   - an SMP with a snooping write-invalidate (MSI) protocol over a shared
//     memory bus (2-way set-associative 64-byte-line caches, §5.1),
//   - a cluster of workstations with a directory-based protocol over
//     256-byte blocks (states uncached/shared/exclusive) on a bus (10/100
//     Mb Ethernet) or switch (155 Mb ATM) network, and
//   - a cluster of SMPs with the hybrid protocol: snooping inside a node,
//     directory across nodes sharing the same block states.
//
// All five variants are parameterizations of one System; NewSystem selects
// the protocol combination from the machine configuration. Timing is in
// CPU cycles using the paper's latency table. Shared media (memory buses,
// the cluster network, I/O buses) are serially occupied resources, so
// contention emerges from the simulation rather than from a formula.
//
//chc:deterministic
package backend

import (
	"fmt"
	"math/bits"

	"memhier/internal/machine"
	"memhier/internal/sim/cache"
	"memhier/internal/sim/interconnect"
	"memhier/internal/sim/memory"
)

// Block geometry of the paper's protocols.
const (
	CacheLineSize = 64  // SMP snooping granularity (§5.1)
	CacheAssoc    = 2   // two-way set-associative (§5.1)
	DSMBlockSize  = 256 // directory protocol block size (§5.1)
)

// dirState is the directory state of a 256-byte block (paper §5.1: each
// block of the memory has three states).
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirExclusive
)

// blockEnt is one 256-byte block's cluster-wide bookkeeping: its directory
// entry and its first-touch home node, combined so the cluster hot path
// resolves both with a single probe. A block with state dirUncached and no
// sharers is semantically identical to an absent directory entry; such
// entries exist only to remember the home assignment.
type blockEnt struct {
	block   uint64 // key; blockEmpty marks a free table slot
	sharers uint64 // bitmask of nodes with copies
	// dirty counts the block's Modified lines per node in 8-bit lanes
	// (lane = node index; maintained only when System.trackDirty). A block
	// has DSMBlockSize/CacheLineSize = 4 lines and the single-writer
	// invariant caps each at one Modified copy machine-wide, so a lane
	// never exceeds 4. It turns fill's keep-exclusive-while-dirty check
	// (nodeHoldsDirty) from a scan of every way of every cache in the
	// node into one load.
	dirty uint64
	home  int32 // first-touch home node
	owner int32 // valid when state == dirExclusive
	state dirState
}

// blockEmpty is the free-slot sentinel. Blocks are byte addresses divided
// by DSMBlockSize, so with addresses bounded by trace.MaxAddr (2^62-1) a
// real block key can never reach it.
const blockEmpty = ^uint64(0)

// blockTable maps block -> blockEnt with open addressing (linear probing,
// Fibonacci hashing). It replaces the previous dir/homes pair of Go maps:
// every cluster miss and write upgrade resolves a block, and the two map
// lookups dominated the cluster simulation profile.
type blockTable struct {
	slots []blockEnt
	shift uint // 64 - log2(len(slots)): Fibonacci hash to a slot index
	n     int  // occupied slots
	// One-entry memo for repeat resolutions of the same block — a miss
	// resolves its block in clusterMiss and again for the write-back in
	// fill, and the four lines of a block miss in bursts. The index (not a
	// pointer) stays valid until grow, which resets it.
	lastBlock uint64
	lastIdx   int32
}

// getOrCreate returns the entry for block, creating it (home = toucher,
// state dirUncached) on first touch. The returned pointer is invalidated
// by the next getOrCreate call, which may grow the table — callers must
// finish with an entry before resolving another block.
func (t *blockTable) getOrCreate(block uint64, toucher int) *blockEnt {
	if block == t.lastBlock && len(t.slots) > 0 {
		return &t.slots[t.lastIdx]
	}
	if t.n >= len(t.slots)-len(t.slots)/4 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	i := (block * 0x9E3779B97F4A7C15) >> t.shift
	for {
		s := &t.slots[i]
		if s.block == block {
			t.lastBlock, t.lastIdx = block, int32(i)
			return s
		}
		if s.block == blockEmpty {
			*s = blockEnt{block: block, home: int32(toucher), owner: -1}
			t.n++
			t.lastBlock, t.lastIdx = block, int32(i)
			return s
		}
		i = (i + 1) & mask
	}
}

func (t *blockTable) grow() {
	old := t.slots
	size := 2 * len(old)
	if size == 0 {
		size = 1 << 10
	}
	t.slots = make([]blockEnt, size)
	for i := range t.slots {
		t.slots[i].block = blockEmpty
	}
	t.lastBlock = blockEmpty
	t.shift = uint(64 - bits.Len(uint(size-1)))
	mask := uint64(size - 1)
	for _, e := range old {
		if e.block == blockEmpty {
			continue
		}
		i := (e.block * 0x9E3779B97F4A7C15) >> t.shift
		for t.slots[i].block != blockEmpty {
			i = (i + 1) & mask
		}
		t.slots[i] = e
	}
}

// AccessClass classifies where a reference was served, mirroring the
// paper's memory-hierarchy levels (Figure 1).
type AccessClass int

// Access classes, cheapest first. ClassL2Cache and ClassL3Cache exist only
// on multi-level configurations (machine.Config.Levels); one-level runs
// never record them.
const (
	ClassCacheHit    AccessClass = iota // own L1 cache
	ClassL2Cache                        // own L2 cache (multi-level configs)
	ClassL3Cache                        // own L3 cache (multi-level configs)
	ClassRemoteCache                    // another cache in the same machine (15)
	ClassLocalMemory                    // the machine's memory (50)
	ClassRemoteClean                    // a remote node's memory (2-hop transfer)
	ClassRemoteDirty                    // remotely cached data (3-hop transfer)
	ClassDisk                           // page fault to disk (2000)
	numClasses
)

// DeepOnly reports whether the class can only appear on multi-level
// configurations; output layers skip zero-count deep classes so one-level
// runs keep their historical output bytes.
func (c AccessClass) DeepOnly() bool { return c == ClassL2Cache || c == ClassL3Cache }

// String names the class.
func (c AccessClass) String() string {
	switch c {
	case ClassCacheHit:
		return "cache"
	case ClassL2Cache:
		return "l2-cache"
	case ClassL3Cache:
		return "l3-cache"
	case ClassRemoteCache:
		return "remote-cache"
	case ClassLocalMemory:
		return "local-memory"
	case ClassRemoteClean:
		return "remote-node"
	case ClassRemoteDirty:
		return "remote-cached"
	case ClassDisk:
		return "disk"
	}
	return fmt.Sprintf("AccessClass(%d)", int(c))
}

// Protocol selects the cache-coherence state machine.
type Protocol int

// Protocols. The paper's simulators use write-invalidate MSI (§5.1); MESI
// is the simulator's extension for the protocol ablation: a sole clean copy
// is installed Exclusive and upgrades to Modified silently.
const (
	ProtocolMSI Protocol = iota
	ProtocolMESI
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolMSI:
		return "MSI"
	case ProtocolMESI:
		return "MESI"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// SystemOptions tunes simulator variants beyond the machine configuration.
type SystemOptions struct {
	Protocol Protocol // default ProtocolMSI (the paper's)
}

// System is one simulated platform instance. It is not safe for concurrent
// use; the engine drives it from a single goroutine in global time order.
type System struct {
	cfg  machine.Config
	lat  machine.Latencies
	opts SystemOptions

	nodes int // N
	perN  int // n

	caches []*cache.Cache // per cpu (level 1, the coherent level)
	// deep holds the private L2/L3 victim caches of multi-level configs:
	// deep[l][cpu] is processor cpu's level l+2 cache. nil on one-level
	// configs, which keeps every 1-level code path — including the
	// engines' packed fast path — structurally identical to the
	// pre-Levels simulator. Deep levels hold only clean lines a processor
	// evicted from the level above (an exclusive victim hierarchy), so
	// the coherence protocol still runs entirely between the L1s; writes
	// and cross-node invalidations additionally kill deep copies.
	deep    [][]*cache.Cache
	deepLat []float64 // access latency per deep level, in cycles
	// hots holds the flattened fast-path views of every cache when the
	// geometry supports them (hotOK); the snoop and directory helpers then
	// probe with inlined loads instead of a call per line.
	hots  []cache.Hot
	hotOK bool
	// trackDirty enables the per-(node, block) Modified-line counters in
	// blockEnt.dirty: hot views available (every transition site can see
	// old states cheaply) and at most 8 nodes (one 8-bit lane each).
	// Otherwise nodeHoldsDirty falls back to scanning.
	trackDirty bool
	membus     []*interconnect.Resource // per node: memory/snoop bus
	iobus      []*interconnect.Resource // per node: I/O (disk) bus
	mems       []*memory.Memory         // per node: page residency

	netBus   *interconnect.Resource   // bus networks: one shared medium
	netPorts []*interconnect.Resource // switch networks: per-node port

	blocks blockTable // block -> directory entry + home node (clusters only)

	// Latency scalars hoisted out of the machine.Latencies maps: the map
	// lookups keyed by network kind were measurable on the cluster paths.
	latRemoteNode   float64
	latRemoteCached float64

	stats Stats
}

// Stats aggregates simulator-side measurements.
type Stats struct {
	Refs        uint64
	ClassCounts [numClasses]uint64
	ClassCycles [numClasses]float64

	Upgrades       uint64 // write hits on Shared lines
	SilentUpgrades uint64 // MESI Exclusive→Modified transitions (no traffic)
	InvalidateMsgs uint64 // cross-node invalidation transactions
	Writebacks     uint64 // dirty evictions pushed toward memory/home
	PageFaults     uint64

	CoherenceBusCycles float64 // membus cycles due to snoops/upgrades
	TotalBusCycles     float64 // all membus cycles
}

// Minus returns the counter deltas a − b (for per-phase accounting).
func (a Stats) Minus(b Stats) Stats {
	d := Stats{
		Refs:               a.Refs - b.Refs,
		Upgrades:           a.Upgrades - b.Upgrades,
		SilentUpgrades:     a.SilentUpgrades - b.SilentUpgrades,
		InvalidateMsgs:     a.InvalidateMsgs - b.InvalidateMsgs,
		Writebacks:         a.Writebacks - b.Writebacks,
		PageFaults:         a.PageFaults - b.PageFaults,
		CoherenceBusCycles: a.CoherenceBusCycles - b.CoherenceBusCycles,
		TotalBusCycles:     a.TotalBusCycles - b.TotalBusCycles,
	}
	for c := 0; c < int(numClasses); c++ {
		d.ClassCounts[c] = a.ClassCounts[c] - b.ClassCounts[c]
		d.ClassCycles[c] = a.ClassCycles[c] - b.ClassCycles[c]
	}
	return d
}

// NewSystem builds the simulator for a validated machine configuration,
// with the paper's protocol settings.
func NewSystem(cfg machine.Config) (*System, error) {
	return NewSystemOpts(cfg, SystemOptions{})
}

// NewSystemOpts builds the simulator with explicit variant options.
func NewSystemOpts(cfg machine.Config, opts SystemOptions) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		lat:   machine.LatenciesAt(cfg.Kind, cfg.ClockMHz),
		opts:  opts,
		nodes: cfg.N,
		perN:  cfg.Procs,
	}
	if cfg.N > 64 {
		return nil, fmt.Errorf("backend: %s: directory sharer mask supports at most 64 nodes, got %d", cfg.Name, cfg.N)
	}
	// A multi-level config may pin its L1 hit latency; one-level configs
	// keep the §5.1 table value.
	s.lat.CacheHit = cfg.L1Latency(s.lat.CacheHit)
	levels := cfg.CacheLevels()
	s.caches = make([]*cache.Cache, 0, cfg.TotalProcs())
	for cpu := 0; cpu < cfg.TotalProcs(); cpu++ {
		s.caches = append(s.caches, cache.New(int(levels[0].Bytes), CacheLineSize, CacheAssoc))
	}
	for li := 1; li < len(levels); li++ {
		assoc, ok := deepAssoc(levels[li].Bytes)
		if !ok {
			return nil, fmt.Errorf("backend: %s: cache level %d size %d is not a power-of-two multiple of the %d-byte line",
				cfg.Name, li+1, levels[li].Bytes, CacheLineSize)
		}
		lvl := make([]*cache.Cache, cfg.TotalProcs())
		for cpu := range lvl {
			lvl[cpu] = cache.New(int(levels[li].Bytes), CacheLineSize, assoc)
		}
		s.deep = append(s.deep, lvl)
		s.deepLat = append(s.deepLat, levels[li].LatencyCycles)
	}
	s.hots = make([]cache.Hot, len(s.caches))
	s.hotOK = true
	for i, c := range s.caches {
		h, ok := c.Hot()
		if !ok {
			s.hots, s.hotOK = nil, false
			break
		}
		s.hots[i] = h
	}
	s.trackDirty = s.hotOK && s.nodes > 1 && s.nodes <= 8
	s.membus = make([]*interconnect.Resource, 0, cfg.N)
	s.iobus = make([]*interconnect.Resource, 0, cfg.N)
	s.mems = make([]*memory.Memory, 0, cfg.N)
	for node := 0; node < cfg.N; node++ {
		s.membus = append(s.membus, interconnect.NewResource(fmt.Sprintf("membus%d", node)))
		s.iobus = append(s.iobus, interconnect.NewResource(fmt.Sprintf("iobus%d", node)))
		s.mems = append(s.mems, memory.New(cfg.MemoryBytes))
	}
	if cfg.N > 1 {
		s.latRemoteNode = s.lat.RemoteNode[cfg.Net]
		s.latRemoteCached = s.lat.RemoteCached[cfg.Net]
		if cfg.Net.IsBus() {
			s.netBus = interconnect.NewResource("netbus")
		} else {
			for node := 0; node < cfg.N; node++ {
				s.netPorts = append(s.netPorts, interconnect.NewResource(fmt.Sprintf("port%d", node)))
			}
		}
	}
	return s, nil
}

// deepAssoc picks a deep level's associativity: the highest of 8/4/2/1
// whose set count comes out a power of two for the given capacity (the
// cache package's geometry requirement).
func deepAssoc(sizeBytes int64) (int, bool) {
	for _, assoc := range []int{8, 4, 2, 1} {
		way := int64(CacheLineSize * assoc)
		if sizeBytes%way == 0 {
			if sets := sizeBytes / way; sets > 0 && sets&(sets-1) == 0 {
				return assoc, true
			}
		}
	}
	return 0, false
}

// deepTake serves addr from cpu's private deep hierarchy if resident: the
// line is removed from the deep level (it moves up into the L1 on the
// caller's fill) and the level index (0 = L2) is returned.
func (s *System) deepTake(cpu int, addr uint64) (int, bool) {
	for li := range s.deep {
		c := s.deep[li][cpu]
		if _, ok := c.Probe(addr); ok {
			c.SetState(addr, cache.Invalid)
			return li, true
		}
	}
	return 0, false
}

// deepClass maps a deep level index to its access class.
func deepClass(li int) AccessClass { return ClassL2Cache + AccessClass(li) }

// deepInstall pushes a line evicted from the L1 into the deep hierarchy:
// install clean at L2, cascading each level's victim into the next (an
// exclusive victim hierarchy). Deep lines are always clean — a dirty
// victim's write-back has already been charged by fill.
func (s *System) deepInstall(cpu int, addr uint64) {
	for li := range s.deep {
		evAddr, _, evicted := s.deep[li][cpu].Fill(addr, cache.Shared)
		if !evicted {
			return
		}
		addr = evAddr
	}
}

// deepHeldElsewhere reports whether any other processor of cpu's node
// holds addr in its deep hierarchy (a MESI Exclusive grant must see no
// other copy in the machine, deep levels included).
func (s *System) deepHeldElsewhere(cpu int, addr uint64) bool {
	myNode := s.node(cpu)
	for p := 0; p < s.perN; p++ {
		other := myNode*s.perN + p
		if other == cpu {
			continue
		}
		for li := range s.deep {
			if _, ok := s.deep[li][other].Probe(addr); ok {
				return true
			}
		}
	}
	return false
}

// deepInvalidateOthers kills addr in the deep hierarchies of cpu's node
// siblings — every write that takes ownership of a line must also
// invalidate the clean deep copies the L1 snoop cannot see.
func (s *System) deepInvalidateOthers(cpu int, addr uint64) {
	myNode := s.node(cpu)
	for p := 0; p < s.perN; p++ {
		other := myNode*s.perN + p
		if other == cpu {
			continue
		}
		for li := range s.deep {
			c := s.deep[li][other]
			if _, ok := c.Probe(addr); ok {
				c.SetState(addr, cache.Invalid)
			}
		}
	}
}

// deepDrop removes cpu's own deep copy of addr (the line just moved into
// its L1 through a path that bypassed the deep probe).
func (s *System) deepDrop(cpu int, addr uint64) {
	for li := range s.deep {
		c := s.deep[li][cpu]
		if _, ok := c.Probe(addr); ok {
			c.SetState(addr, cache.Invalid)
		}
	}
}

// deepInvalidateBlock kills every line of the block in every deep cache of
// the node (the deep complement of invalidateNode's L1 sweep), returning
// the number of lines dropped.
func (s *System) deepInvalidateBlock(node int, block uint64) int {
	killed := 0
	base := block * DSMBlockSize
	for p := 0; p < s.perN; p++ {
		cpu := node*s.perN + p
		for li := range s.deep {
			c := s.deep[li][cpu]
			for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
				if _, ok := c.Probe(base + off); ok {
					c.SetState(base+off, cache.Invalid)
					killed++
				}
			}
		}
	}
	return killed
}

// Config returns the simulated configuration.
func (s *System) Config() machine.Config { return s.cfg }

// Stats returns the aggregated counters.
func (s *System) Stats() Stats { return s.stats }

// exactLatencies reports whether every latency a run can charge is a
// non-negative integral number of cycles. Then every clock, wait, and cycle
// accumulator in a run holds exact integers (well below 2^53), float
// addition over them is associative, and the engines may defer or regroup
// commutative accounting without changing a single result bit. Scaled
// latency tables (machine.LatenciesAt with a non-divisor clock) can be
// fractional, which disables that.
func (s *System) exactLatencies() bool {
	//chc:allow floateq -- integrality test: v == trunc(v) is the predicate itself
	isInt := func(v float64) bool { return v >= 0 && v == float64(uint64(v)) }
	for _, d := range s.deepLat {
		if !isInt(d) {
			return false
		}
	}
	return isInt(s.lat.Instruction) && isInt(s.lat.CacheHit) &&
		isInt(s.lat.LocalMemory) && isInt(s.lat.LocalDisk) &&
		isInt(s.lat.RemoteCache) && isInt(s.latRemoteNode) && isInt(s.latRemoteCached)
}

// VerifyCoherence checks the protocol's single-writer invariant across all
// caches: a line held Modified (or Exclusive) by one processor must not be
// valid in any other cache. It returns the first violation found, or nil.
// Intended for tests and debugging; it scans every line of every cache.
func (s *System) VerifyCoherence() error {
	// owners[line] = cpu holding it Modified/Exclusive; sharers tracked to
	// cross-check.
	type holder struct {
		cpu int
		st  cache.State
	}
	held := make(map[uint64][]holder)
	for cpu := range s.caches {
		cpu := cpu
		s.caches[cpu].Lines(func(lineAddr uint64, st cache.State) {
			held[lineAddr] = append(held[lineAddr], holder{cpu: cpu, st: st})
		})
	}
	for line, hs := range held {
		exclusive := -1
		for _, h := range hs {
			if h.st == cache.Modified || h.st == cache.Exclusive {
				exclusive = h.cpu
			}
		}
		if exclusive >= 0 && len(hs) > 1 {
			return fmt.Errorf("backend: line %#x held %v by cpu %d but valid in %d caches",
				line*CacheLineSize, cache.Modified, exclusive, len(hs))
		}
	}
	// Deep levels hold only clean victims: no line may sit there
	// Modified/Exclusive, and a line owned by any L1 must have no deep copy
	// anywhere (every ownership grant sweeps the deep hierarchies).
	for li := range s.deep {
		for cpu := range s.deep[li] {
			var deepErr error
			s.deep[li][cpu].Lines(func(lineAddr uint64, st cache.State) {
				if deepErr != nil {
					return
				}
				if st == cache.Modified || st == cache.Exclusive {
					deepErr = fmt.Errorf("backend: line %#x held %v in cpu %d L%d (deep levels must stay clean)",
						lineAddr*CacheLineSize, st, cpu, li+2)
					return
				}
				for _, h := range held[lineAddr] {
					if h.st == cache.Modified || h.st == cache.Exclusive {
						deepErr = fmt.Errorf("backend: line %#x owned %v by cpu %d L1 but cached in cpu %d L%d",
							lineAddr*CacheLineSize, h.st, h.cpu, cpu, li+2)
						return
					}
				}
			})
			if deepErr != nil {
				return deepErr
			}
		}
	}
	// Cross-check the Modified-line lanes against a full scan: every test
	// that exercises the counters through randomized traffic also verifies
	// them here.
	if s.trackDirty {
		for i := range s.blocks.slots {
			e := &s.blocks.slots[i]
			if e.block == blockEmpty {
				continue
			}
			base := e.block * DSMBlockSize
			for node := 0; node < s.nodes; node++ {
				n := 0
				for p := 0; p < s.perN; p++ {
					c := s.caches[node*s.perN+p]
					for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
						if st, ok := c.Probe(base + off); ok && st == cache.Modified {
							n++
						}
					}
				}
				if got := int(e.dirty >> (8 * uint(node)) & 0xff); got != n {
					return fmt.Errorf("backend: block %#x node %d: dirty lane says %d Modified lines, scan finds %d",
						e.block, node, got, n)
				}
			}
		}
	}
	return nil
}

// CacheStats returns the per-processor cache counters.
func (s *System) CacheStats() []cache.Stats {
	out := make([]cache.Stats, len(s.caches))
	for i, c := range s.caches {
		out[i] = c.Stats()
	}
	return out
}

func (s *System) node(cpu int) int         { return cpu / s.perN }
func (s *System) block(addr uint64) uint64 { return addr / DSMBlockSize }

// entry returns the block's combined directory/home entry, assigning the
// home on first touch — which reproduces the paper's "contiguous subset
// allocated in its local memory" placement, since each process initializes
// its own partition first.
func (s *System) entry(block uint64, toucher int) *blockEnt {
	return s.blocks.getOrCreate(block, toucher)
}

// invalidateNode kills every cache line of the block in every cache of the
// node, returning how many lines were dropped.
func (s *System) invalidateNode(node int, block uint64) int {
	killed := 0
	base := block * DSMBlockSize
	if s.hotOK {
		// Fused probe+invalidate per the Hot contract: xor-ing a way with
		// tag<<3 leaves (on a tag match) just the MRU and state bits, so
		// "residue&^4 in 1..3" is "valid line with this tag" in one
		// compare. Invalidation clears only the state bits; the MRU bit
		// survives, as with Cache.SetState.
		dirtyKilled := 0
		for p := 0; p < s.perN; p++ {
			h := &s.hots[node*s.perN+p]
			for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
				tag := (base + off) >> h.Shift
				b := (tag & h.Mask) << 1
				if r := (h.Ways[b] ^ (tag << 3)) &^ 4; r-1 < 3 {
					if r == 3 {
						dirtyKilled++
					}
					h.Ways[b] &^= 3
					killed++
					*h.Invalidates++
				} else if r := (h.Ways[b+1] ^ (tag << 3)) &^ 4; r-1 < 3 {
					if r == 3 {
						dirtyKilled++
					}
					h.Ways[b+1] &^= 3
					killed++
					*h.Invalidates++
				}
			}
		}
		if s.trackDirty && dirtyKilled > 0 {
			s.dirtyAdd(node, block, -dirtyKilled)
		}
		if s.deep != nil {
			killed += s.deepInvalidateBlock(node, block)
		}
		return killed
	}
	for p := 0; p < s.perN; p++ {
		c := s.caches[node*s.perN+p]
		for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
			if _, ok := c.Probe(base + off); ok {
				c.SetState(base+off, cache.Invalid)
				killed++
			}
		}
	}
	if s.deep != nil {
		killed += s.deepInvalidateBlock(node, block)
	}
	return killed
}

// downgradeNode moves every Modified or Exclusive line of the block in the
// node's caches to Shared (a remote read of a dirty block).
func (s *System) downgradeNode(node int, block uint64) {
	base := block * DSMBlockSize
	if s.hotOK {
		// Fused probe+downgrade: residue&^4 of way^tag<<3 is the state on a
		// tag match; 2..3 (Exclusive, Modified) in one compare.
		downgraded := 0
		for p := 0; p < s.perN; p++ {
			h := &s.hots[node*s.perN+p]
			for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
				tag := (base + off) >> h.Shift
				b := (tag & h.Mask) << 1
				if r := (h.Ways[b] ^ (tag << 3)) &^ 4; r-2 < 2 {
					if r == 3 {
						downgraded++
					}
					h.Ways[b] = h.Ways[b]&^3 | uint64(cache.Shared)
				} else if r := (h.Ways[b+1] ^ (tag << 3)) &^ 4; r-2 < 2 {
					if r == 3 {
						downgraded++
					}
					h.Ways[b+1] = h.Ways[b+1]&^3 | uint64(cache.Shared)
				}
			}
		}
		if s.trackDirty && downgraded > 0 {
			s.dirtyAdd(node, block, -downgraded)
		}
		return
	}
	for p := 0; p < s.perN; p++ {
		c := s.caches[node*s.perN+p]
		for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
			if st, ok := c.Probe(base + off); ok && st != cache.Shared {
				c.SetState(base+off, cache.Shared)
			}
		}
	}
}

// dirtyAdd adjusts the block's Modified-line lane for node. Callers guard
// with s.trackDirty and only decrement lanes a prior increment made
// non-zero (the counters mirror real state transitions), so lanes cannot
// underflow into their neighbors.
func (s *System) dirtyAdd(node int, block uint64, delta int) {
	e := s.entry(block, node)
	if delta >= 0 {
		e.dirty += uint64(delta) << (8 * uint(node))
	} else {
		e.dirty -= uint64(-delta) << (8 * uint(node))
	}
}

// dirtyRefill adjusts the lane when a fill overwrites a resident copy:
// old is the displaced way's packed word, st the installed state.
func (s *System) dirtyRefill(cpu int, addr uint64, old uint64, st cache.State) {
	wasM := old&3 == 3
	isM := st == cache.Modified
	if isM && !wasM {
		s.dirtyAdd(s.node(cpu), s.block(addr), 1)
	} else if wasM && !isM {
		s.dirtyAdd(s.node(cpu), s.block(addr), -1)
	}
}

// nodeHoldsDirty reports whether any cache of the node holds a Modified
// line of the block.
func (s *System) nodeHoldsDirty(node int, block uint64) bool {
	if s.trackDirty {
		return s.entry(block, node).dirty>>(8*uint(node))&0xff != 0
	}
	base := block * DSMBlockSize
	if s.hotOK {
		// Fused probe+state test: residue&^4 of way^tag<<3 equals 3 exactly
		// when the way holds this tag in Modified — one compare per way.
		// base is DSMBlockSize-aligned, so the block's line tags are the
		// consecutive run t0, t0+1, … (every cache shares one geometry).
		t0 := base >> s.hots[node*s.perN].Shift
		for p := 0; p < s.perN; p++ {
			h := &s.hots[node*s.perN+p]
			for k := uint64(0); k < DSMBlockSize/CacheLineSize; k++ {
				tag := t0 + k
				b := (tag & h.Mask) << 1
				if (h.Ways[b]^(tag<<3))&^4 == 3 || (h.Ways[b+1]^(tag<<3))&^4 == 3 {
					return true
				}
			}
		}
		return false
	}
	for p := 0; p < s.perN; p++ {
		c := s.caches[node*s.perN+p]
		for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
			if st, ok := c.Probe(base + off); ok && st == cache.Modified {
				return true
			}
		}
	}
	return false
}

// netAcquire occupies the cluster network for one transfer whose
// destination is the home node, returning the completion time.
func (s *System) netAcquire(home int, now, dur float64) float64 {
	if s.netBus != nil {
		return s.netBus.Acquire(now, dur)
	}
	return s.netPorts[home].Acquire(now, dur)
}

// memTouch charges the node's memory for holding addr's page, adding a
// disk transfer on a page fault (and a posted disk write when the evicted
// page was dirty — it occupies the I/O bus without stalling the
// requester). It returns the completion time.
func (s *System) memTouch(node int, addr uint64, write bool, now float64) (float64, bool) {
	resident, evictedDirty := s.mems[node].TouchW(addr, write)
	if resident {
		return now, false
	}
	s.stats.PageFaults++
	done := s.iobus[node].Acquire(now, s.lat.LocalDisk)
	if evictedDirty {
		s.iobus[node].Acquire(done, s.lat.LocalDisk)
	}
	return done, true
}

// Access simulates one reference by cpu at time now and returns its
// completion time. The classification of where it was served is recorded
// in the statistics.
func (s *System) Access(cpu int, addr uint64, write bool, now float64) float64 {
	s.stats.Refs++

	// Private-hit fast path, ahead of all coherence machinery: a read hit
	// in any state and a write hit on an already-Modified line need no
	// protocol action — this is the overwhelming majority of references.
	// The engines inline this same check (see runSeq) and fall through to
	// accessRest only on the slow path.
	st, hit := s.caches[cpu].Lookup(addr)
	if hit && (!write || st == cache.Modified) {
		return s.finish(ClassCacheHit, now, now+s.lat.CacheHit)
	}
	return s.accessRest(cpu, addr, write, now, st, hit)
}

// accessRest runs the coherence machinery for a reference that failed the
// private-hit fast path: st/hit are the requester's own-cache lookup result
// (already performed and counted by the caller).
func (s *System) accessRest(cpu int, addr uint64, write bool, now float64, st cache.State, hit bool) float64 {
	myCache := s.caches[cpu]
	myNode := s.node(cpu)

	if hit {
		if st == cache.Exclusive {
			// MESI: the sole clean copy becomes Modified with no
			// coherence transaction.
			myCache.SetState(addr, cache.Modified)
			if s.trackDirty {
				s.dirtyAdd(myNode, s.block(addr), 1)
			}
			s.stats.SilentUpgrades++
			return s.finish(ClassCacheHit, now, now+s.lat.CacheHit)
		}
		// Write hit on a Shared line: upgrade via invalidation.
		s.stats.Upgrades++
		done := now + s.lat.CacheHit
		// Intra-node: a snooping upgrade transaction on the memory bus.
		if s.perN > 1 {
			t := s.membus[myNode].Acquire(now, s.lat.RemoteCache)
			s.stats.CoherenceBusCycles += s.lat.RemoteCache
			s.stats.TotalBusCycles += s.lat.RemoteCache
			for p := 0; p < s.perN; p++ {
				other := myNode*s.perN + p
				if other == cpu {
					continue
				}
				if s.hotOK {
					s.hots[other].Set(addr, cache.Invalid)
				} else {
					s.caches[other].SetState(addr, cache.Invalid)
				}
			}
			if t > done {
				done = t
			}
		}
		if s.deep != nil {
			// The write takes ownership: sibling deep copies are clean
			// spill-overs the L1 snoop cannot see — kill them too.
			s.deepInvalidateOthers(cpu, addr)
		}
		// Cross-node: invalidate sharer nodes through the directory.
		if s.nodes > 1 {
			done = s.dirUpgrade(cpu, addr, now, done)
		}
		myCache.SetState(addr, cache.Modified)
		if s.trackDirty {
			// The requester held the line Shared, so no copy anywhere was
			// Modified; the upgrade adds exactly one (sibling-line kills in
			// other nodes are counted inside invalidateNode).
			s.dirtyAdd(myNode, s.block(addr), 1)
		}
		return s.finish(ClassCacheHit, now, done)
	}

	// Miss: try a cache-to-cache transfer within the machine first.
	if s.perN > 1 {
		for p := 0; p < s.perN; p++ {
			other := myNode*s.perN + p
			if other == cpu {
				continue
			}
			var ost cache.State
			var ok bool
			if s.hotOK {
				ost, ok = s.hots[other].Probe(addr)
			} else {
				ost, ok = s.caches[other].Probe(addr)
			}
			if ok {
				done := s.membus[myNode].Acquire(now, s.lat.RemoteCache)
				s.stats.CoherenceBusCycles += s.lat.RemoteCache
				s.stats.TotalBusCycles += s.lat.RemoteCache
				if write {
					// Take ownership; kill the other intra-node copies.
					for q := 0; q < s.perN; q++ {
						oc := myNode*s.perN + q
						if oc == cpu {
							continue
						}
						if s.hotOK {
							s.hots[oc].Set(addr, cache.Invalid)
						} else {
							s.caches[oc].SetState(addr, cache.Invalid)
						}
					}
					if s.trackDirty && ost == cache.Modified {
						// The snooped owner's Modified copy died; the
						// requester's fill below re-adds one.
						s.dirtyAdd(myNode, s.block(addr), -1)
					}
					if s.nodes > 1 {
						done = s.dirUpgrade(cpu, addr, now, done)
					}
				} else if ost == cache.Modified || ost == cache.Exclusive {
					if s.hotOK {
						s.hots[other].Set(addr, cache.Shared)
					} else {
						s.caches[other].SetState(addr, cache.Shared)
					}
					if s.trackDirty && ost == cache.Modified {
						s.dirtyAdd(myNode, s.block(addr), -1)
					}
				}
				if s.deep != nil {
					// The line moved into the requester's L1 without a deep
					// probe: drop any stale own deep copy, and on a write
					// kill the siblings' clean deep copies as well.
					s.deepDrop(cpu, addr)
					if write {
						s.deepInvalidateOthers(cpu, addr)
					}
				}
				s.fill(cpu, addr, write, false, now)
				return s.finish(ClassRemoteCache, now, done)
			}
		}
	}

	// Own deep hierarchy (L2/L3), probed after the snoop: a sibling's
	// Modified copy must intervene first, and every write that takes
	// ownership kills deep copies, so a resident deep line is always
	// clean and current.
	if s.deep != nil {
		if li, ok := s.deepTake(cpu, addr); ok {
			if write {
				s.deepInvalidateOthers(cpu, addr)
				if s.nodes > 1 {
					return s.deepClusterServe(cpu, addr, write, now, li)
				}
			}
			s.fill(cpu, addr, write, false, now)
			return s.finish(deepClass(li), now, now+s.deepLat[li])
		}
	}

	if s.nodes == 1 {
		// Single SMP: fetch from the machine's memory over the bus.
		done := s.membus[myNode].Acquire(now, s.lat.LocalMemory)
		s.stats.TotalBusCycles += s.lat.LocalMemory
		class := ClassLocalMemory
		if t, faulted := s.memTouch(myNode, addr, write, done); faulted {
			done = t
			class = ClassDisk
		}
		// No other L1 in the machine holds the line (the snoop above would
		// have served it), so a MESI read fill may go Exclusive — unless a
		// sibling's deep hierarchy still holds a clean copy.
		sole := true
		if s.deep != nil && !write && s.opts.Protocol == ProtocolMESI {
			sole = !s.deepHeldElsewhere(cpu, addr)
		}
		if s.deep != nil && write {
			// The write takes ownership: clean spill-overs in sibling deep
			// hierarchies must die with it.
			s.deepInvalidateOthers(cpu, addr)
		}
		s.fill(cpu, addr, write, sole, now)
		return s.finish(class, now, done)
	}
	return s.clusterMiss(cpu, addr, write, now)
}

// deepClusterServe completes a write served from the processor's own deep
// hierarchy on a cluster: the line is clean and current (remote exclusivity
// would have invalidated it), so no data moves — but the directory must
// still take ownership for the writer's node, invalidating the other
// sharer nodes exactly as a write upgrade does.
func (s *System) deepClusterServe(cpu int, addr uint64, write bool, now float64, li int) float64 {
	done := s.dirUpgrade(cpu, addr, now, now+s.deepLat[li])
	s.fill(cpu, addr, write, false, now)
	return s.finish(deepClass(li), now, done)
}

// dirUpgrade acquires exclusive ownership of addr's block for cpu's node,
// invalidating other sharer nodes. It returns the new completion time.
func (s *System) dirUpgrade(cpu int, addr uint64, now, done float64) float64 {
	myNode := s.node(cpu)
	b := s.block(addr)
	e := s.entry(b, myNode)
	others := e.sharers &^ (1 << uint(myNode))
	if e.state == dirExclusive && int(e.owner) != myNode {
		others |= 1 << uint(e.owner)
	}
	if others != 0 {
		// One invalidation transaction on the network (broadcast on a bus;
		// the switch serializes through the home port).
		s.stats.InvalidateMsgs++
		t := s.netAcquire(int(e.home), now, s.latRemoteNode)
		if t > done {
			done = t
		}
		for node := 0; node < s.nodes; node++ {
			if others&(1<<uint(node)) != 0 {
				s.invalidateNode(node, b)
			}
		}
	}
	e.state = dirExclusive
	e.owner = int32(myNode)
	e.sharers = 1 << uint(myNode)
	return done
}

// clusterMiss serves a cache miss through the directory protocol.
func (s *System) clusterMiss(cpu int, addr uint64, write bool, now float64) float64 {
	myNode := s.node(cpu)
	b := s.block(addr)
	e := s.entry(b, myNode)
	home := int(e.home)

	dirtyRemote := e.state == dirExclusive && int(e.owner) != myNode
	// Sole copy in the system: no other node shares the block (and the
	// intra-node snoop already came up empty before reaching this path).
	sole := !dirtyRemote && e.sharers&^(1<<uint(myNode)) == 0
	if sole && s.deep != nil && !write && s.opts.Protocol == ProtocolMESI &&
		s.deepHeldElsewhere(cpu, addr) {
		// A sibling's deep hierarchy still holds a clean copy: the MESI
		// Exclusive grant below must not happen.
		sole = false
	}

	var done float64
	var class AccessClass
	switch {
	case home == myNode && !dirtyRemote:
		// Served by the local memory.
		done = s.membus[myNode].Acquire(now, s.lat.LocalMemory)
		s.stats.TotalBusCycles += s.lat.LocalMemory
		class = ClassLocalMemory
		if t, faulted := s.memTouch(myNode, addr, write, done); faulted {
			done = t
			class = ClassDisk
		}
	case dirtyRemote:
		// Remotely cached data: three-hop transfer.
		done = s.netAcquire(home, now, s.latRemoteCached)
		class = ClassRemoteDirty
		if t, faulted := s.memTouch(home, addr, write, done); faulted {
			done = t
			class = ClassDisk
		}
		if write {
			s.invalidateNode(int(e.owner), b)
		} else {
			s.downgradeNode(int(e.owner), b)
		}
	default:
		// Clean remote fetch: two-hop transfer from the home memory.
		done = s.netAcquire(home, now, s.latRemoteNode)
		class = ClassRemoteClean
		if t, faulted := s.memTouch(home, addr, write, done); faulted {
			done = t
			class = ClassDisk
		}
	}

	// Directory update.
	if write {
		if s.deep != nil {
			// Sibling deep copies within the writer's node are outside the
			// directory's cross-node sweep below.
			s.deepInvalidateOthers(cpu, addr)
		}
		others := e.sharers &^ (1 << uint(myNode))
		if dirtyRemote {
			others |= 1 << uint(e.owner)
		}
		if others != 0 && class != ClassRemoteDirty {
			// Invalidate other sharers (the dirty-remote path already
			// handled the owner above).
			s.stats.InvalidateMsgs++
			for node := 0; node < s.nodes; node++ {
				if others&(1<<uint(node)) != 0 {
					s.invalidateNode(node, b)
				}
			}
		}
		e.state = dirExclusive
		e.owner = int32(myNode)
		e.sharers = 1 << uint(myNode)
	} else if sole && s.opts.Protocol == ProtocolMESI {
		// MESI: the directory grants exclusivity with the clean fill, so
		// the later silent Exclusive→Modified upgrade stays coherent —
		// remote readers will take the owner-intervention path.
		e.state = dirExclusive
		e.owner = int32(myNode)
		e.sharers = 1 << uint(myNode)
	} else {
		if dirtyRemote {
			e.state = dirShared
			e.owner = -1
		}
		if e.state == dirUncached {
			e.state = dirShared
		}
		e.sharers |= 1 << uint(myNode)
	}

	s.fill(cpu, addr, write, sole, now)
	return s.finish(class, now, done)
}

// fill installs the line in cpu's cache, pushing a posted write-back toward
// memory or the home node when a dirty line is displaced (the write-back
// occupies the medium but does not stall the processor).
func (s *System) fill(cpu int, addr uint64, write, sole bool, now float64) {
	st := cache.Shared
	switch {
	case write:
		st = cache.Modified
	case sole && s.opts.Protocol == ProtocolMESI:
		// MESI: the only copy in the system is installed Exclusive and can
		// later upgrade silently.
		st = cache.Exclusive
	}
	var evAddr uint64
	var writeback bool
	if s.hotOK {
		// Cache.Fill's two-way path inlined through the Hot view (the call
		// is on every miss and doesn't inline itself); victim choice, MRU
		// update, and counters mirror it word for word.
		h := &s.hots[cpu]
		tag := addr >> h.Shift
		base := (tag & h.Mask) << 1
		w0 := h.Ways[base]
		w1 := h.Ways[base+1]
		packed := tag<<3 | uint64(st)
		switch {
		case w0&3 != 0 && w0>>3 == tag:
			// Refill of a resident line: new state, way 0 becomes MRU.
			h.Ways[base] = packed
			if s.trackDirty {
				s.dirtyRefill(cpu, addr, w0, st)
			}
			return
		case w1&3 != 0 && w1>>3 == tag:
			h.Ways[base+1] = packed
			h.Ways[base] = w0 | 4
			if s.trackDirty {
				s.dirtyRefill(cpu, addr, w1, st)
			}
			return
		case w0&3 == 0:
			h.Ways[base] = packed
			if s.trackDirty && st == cache.Modified {
				s.dirtyAdd(s.node(cpu), s.block(addr), 1)
			}
			return
		case w1&3 == 0:
			h.Ways[base+1] = packed
			h.Ways[base] = w0 | 4
			if s.trackDirty && st == cache.Modified {
				s.dirtyAdd(s.node(cpu), s.block(addr), 1)
			}
			return
		}
		// Both ways valid: evict the not-most-recently-used way.
		*h.Evictions++
		if w0&4 == 0 {
			if w1&3 == 3 {
				writeback = true
			}
			evAddr = w1 >> 3 << h.Shift
			h.Ways[base+1] = packed
			h.Ways[base] = w0 | 4
		} else {
			if w0&3 == 3 {
				writeback = true
			}
			evAddr = w0 >> 3 << h.Shift
			h.Ways[base] = packed
		}
		if s.trackDirty {
			// The installed line was not resident (the refill cases above
			// would have matched), and a write-back means the victim was
			// Modified. The victim lane must drop before the ownership
			// drop-check below reads it.
			if st == cache.Modified {
				s.dirtyAdd(s.node(cpu), s.block(addr), 1)
			}
			if writeback {
				s.dirtyAdd(s.node(cpu), s.block(evAddr), -1)
			}
		}
		if writeback {
			*h.Writebacks++
		}
		if s.deep != nil {
			// The victim spills into the deep hierarchy (clean: a dirty
			// victim's data is written back below, the tags stay).
			s.deepInstall(cpu, evAddr)
		}
		if !writeback {
			return
		}
	} else {
		var evicted bool
		evAddr, writeback, evicted = s.caches[cpu].Fill(addr, st)
		if evicted && s.deep != nil {
			s.deepInstall(cpu, evAddr)
		}
		if !writeback {
			return
		}
	}
	s.stats.Writebacks++
	node := s.node(cpu)
	if s.nodes == 1 {
		s.membus[node].Acquire(now, s.lat.LocalMemory)
		s.stats.TotalBusCycles += s.lat.LocalMemory
		return
	}
	evBlock := s.block(evAddr)
	e := s.entry(evBlock, node)
	// The evicted line is clean at home now, but the node keeps exclusive
	// ownership of the block while any sibling line remains Modified in its
	// caches — dropping it early would let another node fetch a stale
	// sibling line from the home memory.
	if e.state == dirExclusive && int(e.owner) == node &&
		!s.nodeHoldsDirty(node, evBlock) {
		e.state = dirShared
		e.owner = -1
	}
	if int(e.home) == node {
		s.membus[node].Acquire(now, s.lat.LocalMemory)
		s.stats.TotalBusCycles += s.lat.LocalMemory
		return
	}
	s.netAcquire(int(e.home), now, s.latRemoteNode)
}

// finish records an access and returns its completion time.
func (s *System) finish(class AccessClass, start, done float64) float64 {
	s.stats.ClassCounts[class]++
	s.stats.ClassCycles[class] += done - start
	return done
}
