// Package backend implements the execution-driven memory-hierarchy
// simulators that validate the analytical model — the counterpart of the
// paper's five MINT back-ends:
//
//   - an SMP with a snooping write-invalidate (MSI) protocol over a shared
//     memory bus (2-way set-associative 64-byte-line caches, §5.1),
//   - a cluster of workstations with a directory-based protocol over
//     256-byte blocks (states uncached/shared/exclusive) on a bus (10/100
//     Mb Ethernet) or switch (155 Mb ATM) network, and
//   - a cluster of SMPs with the hybrid protocol: snooping inside a node,
//     directory across nodes sharing the same block states.
//
// All five variants are parameterizations of one System; NewSystem selects
// the protocol combination from the machine configuration. Timing is in
// CPU cycles using the paper's latency table. Shared media (memory buses,
// the cluster network, I/O buses) are serially occupied resources, so
// contention emerges from the simulation rather than from a formula.
//
//chc:deterministic
package backend

import (
	"fmt"

	"memhier/internal/machine"
	"memhier/internal/sim/cache"
	"memhier/internal/sim/interconnect"
	"memhier/internal/sim/memory"
)

// Block geometry of the paper's protocols.
const (
	CacheLineSize = 64  // SMP snooping granularity (§5.1)
	CacheAssoc    = 2   // two-way set-associative (§5.1)
	DSMBlockSize  = 256 // directory protocol block size (§5.1)
)

// dirState is the directory state of a 256-byte block (paper §5.1: each
// block of the memory has three states).
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirExclusive
)

type dirEntry struct {
	state   dirState
	sharers uint64 // bitmask of nodes with copies
	owner   int    // valid when state == dirExclusive
}

// AccessClass classifies where a reference was served, mirroring the
// paper's memory-hierarchy levels (Figure 1).
type AccessClass int

// Access classes, cheapest first.
const (
	ClassCacheHit    AccessClass = iota // own cache
	ClassRemoteCache                    // another cache in the same machine (15)
	ClassLocalMemory                    // the machine's memory (50)
	ClassRemoteClean                    // a remote node's memory (2-hop transfer)
	ClassRemoteDirty                    // remotely cached data (3-hop transfer)
	ClassDisk                           // page fault to disk (2000)
	numClasses
)

// String names the class.
func (c AccessClass) String() string {
	switch c {
	case ClassCacheHit:
		return "cache"
	case ClassRemoteCache:
		return "remote-cache"
	case ClassLocalMemory:
		return "local-memory"
	case ClassRemoteClean:
		return "remote-node"
	case ClassRemoteDirty:
		return "remote-cached"
	case ClassDisk:
		return "disk"
	}
	return fmt.Sprintf("AccessClass(%d)", int(c))
}

// Protocol selects the cache-coherence state machine.
type Protocol int

// Protocols. The paper's simulators use write-invalidate MSI (§5.1); MESI
// is the simulator's extension for the protocol ablation: a sole clean copy
// is installed Exclusive and upgrades to Modified silently.
const (
	ProtocolMSI Protocol = iota
	ProtocolMESI
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolMSI:
		return "MSI"
	case ProtocolMESI:
		return "MESI"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// SystemOptions tunes simulator variants beyond the machine configuration.
type SystemOptions struct {
	Protocol Protocol // default ProtocolMSI (the paper's)
}

// System is one simulated platform instance. It is not safe for concurrent
// use; the engine drives it from a single goroutine in global time order.
type System struct {
	cfg  machine.Config
	lat  machine.Latencies
	opts SystemOptions

	nodes int // N
	perN  int // n

	caches []*cache.Cache           // per cpu
	membus []*interconnect.Resource // per node: memory/snoop bus
	iobus  []*interconnect.Resource // per node: I/O (disk) bus
	mems   []*memory.Memory         // per node: page residency

	netBus   *interconnect.Resource   // bus networks: one shared medium
	netPorts []*interconnect.Resource // switch networks: per-node port

	dir     map[uint64]*dirEntry // block -> directory entry (clusters only)
	dirSlab []dirEntry           // chunked backing store for directory entries
	homes   map[uint64]int       // block -> home node (first touch)

	stats Stats
}

// Stats aggregates simulator-side measurements.
type Stats struct {
	Refs        uint64
	ClassCounts [numClasses]uint64
	ClassCycles [numClasses]float64

	Upgrades       uint64 // write hits on Shared lines
	SilentUpgrades uint64 // MESI Exclusive→Modified transitions (no traffic)
	InvalidateMsgs uint64 // cross-node invalidation transactions
	Writebacks     uint64 // dirty evictions pushed toward memory/home
	PageFaults     uint64

	CoherenceBusCycles float64 // membus cycles due to snoops/upgrades
	TotalBusCycles     float64 // all membus cycles
}

// Minus returns the counter deltas a − b (for per-phase accounting).
func (a Stats) Minus(b Stats) Stats {
	d := Stats{
		Refs:               a.Refs - b.Refs,
		Upgrades:           a.Upgrades - b.Upgrades,
		SilentUpgrades:     a.SilentUpgrades - b.SilentUpgrades,
		InvalidateMsgs:     a.InvalidateMsgs - b.InvalidateMsgs,
		Writebacks:         a.Writebacks - b.Writebacks,
		PageFaults:         a.PageFaults - b.PageFaults,
		CoherenceBusCycles: a.CoherenceBusCycles - b.CoherenceBusCycles,
		TotalBusCycles:     a.TotalBusCycles - b.TotalBusCycles,
	}
	for c := 0; c < int(numClasses); c++ {
		d.ClassCounts[c] = a.ClassCounts[c] - b.ClassCounts[c]
		d.ClassCycles[c] = a.ClassCycles[c] - b.ClassCycles[c]
	}
	return d
}

// NewSystem builds the simulator for a validated machine configuration,
// with the paper's protocol settings.
func NewSystem(cfg machine.Config) (*System, error) {
	return NewSystemOpts(cfg, SystemOptions{})
}

// NewSystemOpts builds the simulator with explicit variant options.
func NewSystemOpts(cfg machine.Config, opts SystemOptions) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		lat:   machine.LatenciesAt(cfg.Kind, cfg.ClockMHz),
		opts:  opts,
		nodes: cfg.N,
		perN:  cfg.Procs,
	}
	if cfg.N > 64 {
		return nil, fmt.Errorf("backend: %s: directory sharer mask supports at most 64 nodes, got %d", cfg.Name, cfg.N)
	}
	s.caches = make([]*cache.Cache, 0, cfg.TotalProcs())
	for cpu := 0; cpu < cfg.TotalProcs(); cpu++ {
		s.caches = append(s.caches, cache.New(int(cfg.CacheBytes), CacheLineSize, CacheAssoc))
	}
	s.membus = make([]*interconnect.Resource, 0, cfg.N)
	s.iobus = make([]*interconnect.Resource, 0, cfg.N)
	s.mems = make([]*memory.Memory, 0, cfg.N)
	for node := 0; node < cfg.N; node++ {
		s.membus = append(s.membus, interconnect.NewResource(fmt.Sprintf("membus%d", node)))
		s.iobus = append(s.iobus, interconnect.NewResource(fmt.Sprintf("iobus%d", node)))
		s.mems = append(s.mems, memory.New(cfg.MemoryBytes))
	}
	if cfg.N > 1 {
		s.dir = make(map[uint64]*dirEntry)
		s.homes = make(map[uint64]int)
		if cfg.Net.IsBus() {
			s.netBus = interconnect.NewResource("netbus")
		} else {
			for node := 0; node < cfg.N; node++ {
				s.netPorts = append(s.netPorts, interconnect.NewResource(fmt.Sprintf("port%d", node)))
			}
		}
	}
	return s, nil
}

// Config returns the simulated configuration.
func (s *System) Config() machine.Config { return s.cfg }

// Stats returns the aggregated counters.
func (s *System) Stats() Stats { return s.stats }

// VerifyCoherence checks the protocol's single-writer invariant across all
// caches: a line held Modified (or Exclusive) by one processor must not be
// valid in any other cache. It returns the first violation found, or nil.
// Intended for tests and debugging; it scans every line of every cache.
func (s *System) VerifyCoherence() error {
	// owners[line] = cpu holding it Modified/Exclusive; sharers tracked to
	// cross-check.
	type holder struct {
		cpu int
		st  cache.State
	}
	held := make(map[uint64][]holder)
	for cpu := range s.caches {
		cpu := cpu
		s.caches[cpu].Lines(func(lineAddr uint64, st cache.State) {
			held[lineAddr] = append(held[lineAddr], holder{cpu: cpu, st: st})
		})
	}
	for line, hs := range held {
		exclusive := -1
		for _, h := range hs {
			if h.st == cache.Modified || h.st == cache.Exclusive {
				exclusive = h.cpu
			}
		}
		if exclusive >= 0 && len(hs) > 1 {
			return fmt.Errorf("backend: line %#x held %v by cpu %d but valid in %d caches",
				line*CacheLineSize, cache.Modified, exclusive, len(hs))
		}
	}
	return nil
}

// CacheStats returns the per-processor cache counters.
func (s *System) CacheStats() []cache.Stats {
	out := make([]cache.Stats, len(s.caches))
	for i, c := range s.caches {
		out[i] = c.Stats()
	}
	return out
}

func (s *System) node(cpu int) int         { return cpu / s.perN }
func (s *System) block(addr uint64) uint64 { return addr / DSMBlockSize }

// home returns the block's home node, assigned on first touch — which
// reproduces the paper's "contiguous subset allocated in its local memory"
// placement, since each process initializes its own partition first.
func (s *System) home(block uint64, toucher int) int {
	if h, ok := s.homes[block]; ok {
		return h
	}
	s.homes[block] = toucher
	return toucher
}

func (s *System) entry(block uint64) *dirEntry {
	e, ok := s.dir[block]
	if !ok {
		// Entries are carved from slab chunks: one allocation per 512
		// blocks instead of one per block. A chunk is never reallocated
		// once entries point into it (append only while len < cap).
		if len(s.dirSlab) == cap(s.dirSlab) {
			s.dirSlab = make([]dirEntry, 0, 512)
		}
		s.dirSlab = append(s.dirSlab, dirEntry{state: dirUncached, owner: -1})
		e = &s.dirSlab[len(s.dirSlab)-1]
		s.dir[block] = e
	}
	return e
}

// invalidateNode kills every cache line of the block in every cache of the
// node, returning how many lines were dropped.
func (s *System) invalidateNode(node int, block uint64) int {
	killed := 0
	base := block * DSMBlockSize
	for p := 0; p < s.perN; p++ {
		c := s.caches[node*s.perN+p]
		for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
			if _, ok := c.Probe(base + off); ok {
				c.SetState(base+off, cache.Invalid)
				killed++
			}
		}
	}
	return killed
}

// downgradeNode moves every Modified or Exclusive line of the block in the
// node's caches to Shared (a remote read of a dirty block).
func (s *System) downgradeNode(node int, block uint64) {
	base := block * DSMBlockSize
	for p := 0; p < s.perN; p++ {
		c := s.caches[node*s.perN+p]
		for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
			if st, ok := c.Probe(base + off); ok && st != cache.Shared {
				c.SetState(base+off, cache.Shared)
			}
		}
	}
}

// nodeHoldsDirty reports whether any cache of the node holds a Modified
// line of the block.
func (s *System) nodeHoldsDirty(node int, block uint64) bool {
	base := block * DSMBlockSize
	for p := 0; p < s.perN; p++ {
		c := s.caches[node*s.perN+p]
		for off := uint64(0); off < DSMBlockSize; off += CacheLineSize {
			if st, ok := c.Probe(base + off); ok && st == cache.Modified {
				return true
			}
		}
	}
	return false
}

// netAcquire occupies the cluster network for one transfer whose
// destination is the home node, returning the completion time.
func (s *System) netAcquire(home int, now, dur float64) float64 {
	if s.netBus != nil {
		return s.netBus.Acquire(now, dur)
	}
	return s.netPorts[home].Acquire(now, dur)
}

// memTouch charges the node's memory for holding addr's page, adding a
// disk transfer on a page fault (and a posted disk write when the evicted
// page was dirty — it occupies the I/O bus without stalling the
// requester). It returns the completion time.
func (s *System) memTouch(node int, addr uint64, write bool, now float64) (float64, bool) {
	resident, evictedDirty := s.mems[node].TouchW(addr, write)
	if resident {
		return now, false
	}
	s.stats.PageFaults++
	done := s.iobus[node].Acquire(now, s.lat.LocalDisk)
	if evictedDirty {
		s.iobus[node].Acquire(done, s.lat.LocalDisk)
	}
	return done, true
}

// Access simulates one reference by cpu at time now and returns its
// completion time. The classification of where it was served is recorded
// in the statistics.
func (s *System) Access(cpu int, addr uint64, write bool, now float64) float64 {
	s.stats.Refs++
	myCache := s.caches[cpu]

	// Private-hit fast path, ahead of all coherence machinery: a read hit
	// in any state and a write hit on an already-Modified line need no
	// protocol action — this is the overwhelming majority of references.
	st, hit := myCache.Lookup(addr)
	if hit && (!write || st == cache.Modified) {
		return s.finish(ClassCacheHit, now, now+s.lat.CacheHit)
	}
	myNode := s.node(cpu)

	if hit {
		if st == cache.Exclusive {
			// MESI: the sole clean copy becomes Modified with no
			// coherence transaction.
			myCache.SetState(addr, cache.Modified)
			s.stats.SilentUpgrades++
			return s.finish(ClassCacheHit, now, now+s.lat.CacheHit)
		}
		// Write hit on a Shared line: upgrade via invalidation.
		s.stats.Upgrades++
		done := now + s.lat.CacheHit
		// Intra-node: a snooping upgrade transaction on the memory bus.
		if s.perN > 1 {
			t := s.membus[myNode].Acquire(now, s.lat.RemoteCache)
			s.stats.CoherenceBusCycles += s.lat.RemoteCache
			s.stats.TotalBusCycles += s.lat.RemoteCache
			for p := 0; p < s.perN; p++ {
				other := myNode*s.perN + p
				if other != cpu {
					s.caches[other].SetState(addr, cache.Invalid)
				}
			}
			if t > done {
				done = t
			}
		}
		// Cross-node: invalidate sharer nodes through the directory.
		if s.nodes > 1 {
			done = s.dirUpgrade(cpu, addr, now, done)
		}
		myCache.SetState(addr, cache.Modified)
		return s.finish(ClassCacheHit, now, done)
	}

	// Miss: try a cache-to-cache transfer within the machine first.
	if s.perN > 1 {
		for p := 0; p < s.perN; p++ {
			other := myNode*s.perN + p
			if other == cpu {
				continue
			}
			if ost, ok := s.caches[other].Probe(addr); ok {
				done := s.membus[myNode].Acquire(now, s.lat.RemoteCache)
				s.stats.CoherenceBusCycles += s.lat.RemoteCache
				s.stats.TotalBusCycles += s.lat.RemoteCache
				if write {
					// Take ownership; kill the other intra-node copies.
					for q := 0; q < s.perN; q++ {
						oc := myNode*s.perN + q
						if oc != cpu {
							s.caches[oc].SetState(addr, cache.Invalid)
						}
					}
					if s.nodes > 1 {
						done = s.dirUpgrade(cpu, addr, now, done)
					}
				} else if ost == cache.Modified || ost == cache.Exclusive {
					s.caches[other].SetState(addr, cache.Shared)
				}
				s.fill(cpu, addr, write, false, now)
				return s.finish(ClassRemoteCache, now, done)
			}
		}
	}

	if s.nodes == 1 {
		// Single SMP: fetch from the machine's memory over the bus.
		done := s.membus[myNode].Acquire(now, s.lat.LocalMemory)
		s.stats.TotalBusCycles += s.lat.LocalMemory
		class := ClassLocalMemory
		if t, faulted := s.memTouch(myNode, addr, write, done); faulted {
			done = t
			class = ClassDisk
		}
		// No other cache in the machine holds the line (the snoop above
		// would have served it), so a MESI read fill may go Exclusive.
		s.fill(cpu, addr, write, true, now)
		return s.finish(class, now, done)
	}
	return s.clusterMiss(cpu, addr, write, now)
}

// dirUpgrade acquires exclusive ownership of addr's block for cpu's node,
// invalidating other sharer nodes. It returns the new completion time.
func (s *System) dirUpgrade(cpu int, addr uint64, now, done float64) float64 {
	myNode := s.node(cpu)
	b := s.block(addr)
	home := s.home(b, myNode)
	e := s.entry(b)
	others := e.sharers &^ (1 << uint(myNode))
	if e.state == dirExclusive && e.owner != myNode {
		others |= 1 << uint(e.owner)
	}
	if others != 0 {
		// One invalidation transaction on the network (broadcast on a bus;
		// the switch serializes through the home port).
		s.stats.InvalidateMsgs++
		rn := s.lat.RemoteNode[s.cfg.Net]
		t := s.netAcquire(home, now, rn)
		if t > done {
			done = t
		}
		for node := 0; node < s.nodes; node++ {
			if others&(1<<uint(node)) != 0 {
				s.invalidateNode(node, b)
			}
		}
	}
	e.state = dirExclusive
	e.owner = myNode
	e.sharers = 1 << uint(myNode)
	return done
}

// clusterMiss serves a cache miss through the directory protocol.
func (s *System) clusterMiss(cpu int, addr uint64, write bool, now float64) float64 {
	myNode := s.node(cpu)
	b := s.block(addr)
	home := s.home(b, myNode)
	e := s.entry(b)

	dirtyRemote := e.state == dirExclusive && e.owner != myNode
	// Sole copy in the system: no other node shares the block (and the
	// intra-node snoop already came up empty before reaching this path).
	sole := !dirtyRemote && e.sharers&^(1<<uint(myNode)) == 0

	var done float64
	var class AccessClass
	switch {
	case home == myNode && !dirtyRemote:
		// Served by the local memory.
		done = s.membus[myNode].Acquire(now, s.lat.LocalMemory)
		s.stats.TotalBusCycles += s.lat.LocalMemory
		class = ClassLocalMemory
		if t, faulted := s.memTouch(myNode, addr, write, done); faulted {
			done = t
			class = ClassDisk
		}
	case dirtyRemote:
		// Remotely cached data: three-hop transfer.
		done = s.netAcquire(home, now, s.lat.RemoteCached[s.cfg.Net])
		class = ClassRemoteDirty
		if t, faulted := s.memTouch(home, addr, write, done); faulted {
			done = t
			class = ClassDisk
		}
		if write {
			s.invalidateNode(e.owner, b)
		} else {
			s.downgradeNode(e.owner, b)
		}
	default:
		// Clean remote fetch: two-hop transfer from the home memory.
		done = s.netAcquire(home, now, s.lat.RemoteNode[s.cfg.Net])
		class = ClassRemoteClean
		if t, faulted := s.memTouch(home, addr, write, done); faulted {
			done = t
			class = ClassDisk
		}
	}

	// Directory update.
	if write {
		others := e.sharers &^ (1 << uint(myNode))
		if dirtyRemote {
			others |= 1 << uint(e.owner)
		}
		if others != 0 && class != ClassRemoteDirty {
			// Invalidate other sharers (the dirty-remote path already
			// handled the owner above).
			s.stats.InvalidateMsgs++
			for node := 0; node < s.nodes; node++ {
				if others&(1<<uint(node)) != 0 {
					s.invalidateNode(node, b)
				}
			}
		}
		e.state = dirExclusive
		e.owner = myNode
		e.sharers = 1 << uint(myNode)
	} else if sole && s.opts.Protocol == ProtocolMESI {
		// MESI: the directory grants exclusivity with the clean fill, so
		// the later silent Exclusive→Modified upgrade stays coherent —
		// remote readers will take the owner-intervention path.
		e.state = dirExclusive
		e.owner = myNode
		e.sharers = 1 << uint(myNode)
	} else {
		if dirtyRemote {
			e.state = dirShared
			e.owner = -1
		}
		if e.state == dirUncached {
			e.state = dirShared
		}
		e.sharers |= 1 << uint(myNode)
	}

	s.fill(cpu, addr, write, sole, now)
	return s.finish(class, now, done)
}

// fill installs the line in cpu's cache, pushing a posted write-back toward
// memory or the home node when a dirty line is displaced (the write-back
// occupies the medium but does not stall the processor).
func (s *System) fill(cpu int, addr uint64, write, sole bool, now float64) {
	st := cache.Shared
	switch {
	case write:
		st = cache.Modified
	case sole && s.opts.Protocol == ProtocolMESI:
		// MESI: the only copy in the system is installed Exclusive and can
		// later upgrade silently.
		st = cache.Exclusive
	}
	evAddr, writeback, _ := s.caches[cpu].Fill(addr, st)
	if !writeback {
		return
	}
	s.stats.Writebacks++
	node := s.node(cpu)
	if s.nodes == 1 {
		s.membus[node].Acquire(now, s.lat.LocalMemory)
		s.stats.TotalBusCycles += s.lat.LocalMemory
		return
	}
	evBlock := s.block(evAddr)
	// The evicted line is clean at home now, but the node keeps exclusive
	// ownership of the block while any sibling line remains Modified in its
	// caches — dropping it early would let another node fetch a stale
	// sibling line from the home memory.
	if e, ok := s.dir[evBlock]; ok && e.state == dirExclusive && e.owner == node &&
		!s.nodeHoldsDirty(node, evBlock) {
		e.state = dirShared
		e.owner = -1
	}
	evHome := s.home(evBlock, node)
	if evHome == node {
		s.membus[node].Acquire(now, s.lat.LocalMemory)
		s.stats.TotalBusCycles += s.lat.LocalMemory
		return
	}
	s.netAcquire(evHome, now, s.lat.RemoteNode[s.cfg.Net])
}

// finish records an access and returns its completion time.
func (s *System) finish(class AccessClass, start, done float64) float64 {
	s.stats.ClassCounts[class]++
	s.stats.ClassCycles[class] += done - start
	return done
}
