package backend

import (
	"testing"

	"memhier/internal/trace"
)

// Micro-benchmarks isolating the engine's three hot regimes. The workload
// benchmarks in bench_test.go mix them; these synthetic traces let a
// profile attribute regressions to one path: barrier release (heap refill),
// the event-run batching fast path, and the coherence machinery that the
// private-hit fast path must step aside for.

// barrierHeavyTrace alternates one private reference with a barrier, so
// almost every event ends an event run and exercises the release/refill
// path of the scheduler.
func barrierHeavyTrace(nproc, phases int) *trace.Trace {
	tr := trace.New(nproc)
	tr.Reserve(3 * phases)
	for p := 0; p < phases; p++ {
		for cpu, s := range tr.Streams {
			s.AddCompute(uint64(1 + cpu)) // stagger clocks so releases are non-trivial
			s.AddRead(uint64(cpu)<<20 + uint64(p%1024)*8)
			s.AddBarrier()
		}
	}
	return tr
}

// computeHeavyTrace is long private compute/reference runs with no
// synchronization: the regime where event-run batching should reduce heap
// traffic to almost nothing.
func computeHeavyTrace(nproc, events int) *trace.Trace {
	tr := trace.New(nproc)
	tr.Reserve(events)
	for cpu, s := range tr.Streams {
		for i := 0; i < events/2; i++ {
			s.AddCompute(20)
			s.AddRead(uint64(cpu)<<20 + uint64(i%1024)*8)
		}
	}
	return tr
}

// sharingHeavyTrace makes every processor write and read the same small set
// of lines, so nearly every reference takes the full coherence path
// (invalidation, dirty remote service) instead of the private-hit fast path.
func sharingHeavyTrace(nproc, rounds int) *trace.Trace {
	tr := trace.New(nproc)
	tr.Reserve(3 * rounds)
	for r := 0; r < rounds; r++ {
		line := uint64(r%64) * 64
		for _, s := range tr.Streams {
			s.AddWrite(line)
			s.AddRead(line + uint64((r+1)%64)*64)
			s.AddCompute(2)
		}
		if r%256 == 255 {
			for _, s := range tr.Streams {
				s.AddBarrier()
			}
		}
	}
	return tr
}

func benchRun(b *testing.B, tr *trace.Trace) {
	b.Helper()
	b.ReportAllocs()
	cfg := smpConfig(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunBarrierHeavy(b *testing.B) {
	benchRun(b, barrierHeavyTrace(4, 20000))
}

func BenchmarkRunComputeHeavy(b *testing.B) {
	benchRun(b, computeHeavyTrace(4, 120000))
}

func BenchmarkRunSharingHeavy(b *testing.B) {
	benchRun(b, sharingHeavyTrace(4, 40000))
}
