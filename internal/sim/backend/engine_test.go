package backend

import (
	"math"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/trace"
)

func TestEngineComputeOnlyTrace(t *testing.T) {
	tr := trace.New(2)
	tr.Streams[0].AddCompute(1000)
	tr.Streams[1].AddCompute(500)
	res, err := Simulate(tr, smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles != 1000 {
		t.Errorf("WallCycles = %v, want 1000 (slowest processor)", res.WallCycles)
	}
	if res.MemoryRefs != 0 || res.AvgT != 0 {
		t.Errorf("compute-only trace has refs=%d AvgT=%v", res.MemoryRefs, res.AvgT)
	}
	if res.EInstr <= 0 {
		t.Errorf("EInstr = %v", res.EInstr)
	}
}

func TestEngineEmptyStreams(t *testing.T) {
	tr := trace.New(2)
	res, err := Simulate(tr, smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles != 0 || res.Instructions != 0 {
		t.Errorf("empty trace: %+v", res)
	}
}

func TestEngineUnevenStreamLengths(t *testing.T) {
	// One processor finishes long before the other; the engine must drain
	// both without deadlock and report the longest clock.
	tr := trace.New(2)
	tr.Streams[0].AddRead(0)
	for i := 0; i < 100; i++ {
		tr.Streams[1].AddRead(uint64(4096 + i*64))
	}
	res, err := Simulate(tr, smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryRefs != 101 {
		t.Errorf("refs = %d, want 101", res.MemoryRefs)
	}
}

func TestEngineManyBarriers(t *testing.T) {
	tr := trace.New(3)
	const rounds = 50
	for r := 0; r < rounds; r++ {
		for cpu := 0; cpu < 3; cpu++ {
			tr.Streams[cpu].AddCompute(uint64(1 + cpu + r))
			tr.Streams[cpu].AddBarrier()
		}
	}
	res, err := Simulate(tr, smpConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Barriers != rounds {
		t.Errorf("Barriers = %d, want %d", res.Barriers, rounds)
	}
	// Every round the slowest cpu (cpu 2, compute 3+r) sets the pace.
	want := 0.0
	for r := 0; r < rounds; r++ {
		want += float64(3 + r)
	}
	if math.Abs(res.WallCycles-want) > 1e-9 {
		t.Errorf("WallCycles = %v, want %v", res.WallCycles, want)
	}
}

func TestEngineDeterministicTieBreak(t *testing.T) {
	// All CPUs start at clock 0 with a memory access to the same bus; the
	// order must be CPU index order, every run.
	for trial := 0; trial < 3; trial++ {
		tr := trace.New(4)
		for cpu := 0; cpu < 4; cpu++ {
			tr.Streams[cpu].AddRead(uint64(cpu) * 4096)
		}
		sys, err := NewSystem(smpConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tr, sys)
		if err != nil {
			t.Fatal(err)
		}
		// Bus serialization: 4 memory accesses of 50 cycles each queue up;
		// the last one ends at 200 + its disk fault handling.
		if res.Stats.ClassCounts[ClassDisk] != 4 {
			t.Fatalf("trial %d: disk counts %+v", trial, res.Stats.ClassCounts)
		}
	}
}

func TestEngineSeconds(t *testing.T) {
	tr := trace.New(1)
	tr.Streams[0].AddCompute(200) // 200 cycles at 200 MHz = 1 µs
	res, err := Simulate(tr, machine.Config{Name: "x", Kind: machine.SMP, N: 1, Procs: 1,
		CacheBytes: 4 << 10, MemoryBytes: 1 << 20, ClockMHz: 200})
	if err != nil {
		t.Fatal(err)
	}
	wantSeconds := res.EInstr / 2e8
	if math.Abs(res.Seconds-wantSeconds) > 1e-18 {
		t.Errorf("Seconds = %v, want %v", res.Seconds, wantSeconds)
	}
}

func TestRunRejectsBadKind(t *testing.T) {
	tr := trace.New(1)
	tr.Streams[0].Events = append(tr.Streams[0].Events, trace.Event{Kind: trace.Kind(9)})
	if _, err := Simulate(tr, smpConfig(1)); err == nil {
		t.Error("unknown event kind accepted")
	}
}

func TestPhaseProfiling(t *testing.T) {
	// Two phases with distinct characters: phase 0 is compute-heavy with a
	// known imbalance; phase 1 is memory-heavy; plus a compute tail.
	tr := trace.New(2)
	tr.Streams[0].AddCompute(100)
	tr.Streams[1].AddCompute(300)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddBarrier()
	for i := 0; i < 10; i++ {
		tr.Streams[0].AddRead(uint64(4096 + i*64))
	}
	tr.Streams[1].AddCompute(1)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddBarrier()
	tr.Streams[0].AddCompute(50)

	res, err := Simulate(tr, smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d, want 3 (two barriers + tail)", len(res.Phases))
	}
	p0, p1, p2 := res.Phases[0], res.Phases[1], res.Phases[2]
	if p0.Cycles() != 300 || p0.BarrierWait != 200 {
		t.Errorf("phase 0: cycles %v wait %v, want 300/200", p0.Cycles(), p0.BarrierWait)
	}
	if p0.Stats.Refs != 0 {
		t.Errorf("phase 0 should have no refs, got %d", p0.Stats.Refs)
	}
	if p1.Stats.Refs != 10 {
		t.Errorf("phase 1 refs = %d, want 10", p1.Stats.Refs)
	}
	if p1.StartCycle != p0.EndCycle {
		t.Errorf("phase 1 start %v != phase 0 end %v", p1.StartCycle, p0.EndCycle)
	}
	if p2.Cycles() != 50 || p2.Stats.Refs != 0 {
		t.Errorf("tail phase: cycles %v refs %d, want 50/0", p2.Cycles(), p2.Stats.Refs)
	}
	// Phase spans tile the wall clock.
	var total float64
	for _, p := range res.Phases {
		total += p.Cycles()
	}
	if math.Abs(total-res.WallCycles) > 1e-9 {
		t.Errorf("phase spans %v do not tile wall %v", total, res.WallCycles)
	}
	// Phase refs sum to the run's refs.
	var refs uint64
	for _, p := range res.Phases {
		refs += p.Stats.Refs
	}
	if refs != res.MemoryRefs {
		t.Errorf("phase refs %d != total %d", refs, res.MemoryRefs)
	}
}

func TestPhaseProfilingNoBarriers(t *testing.T) {
	tr := trace.New(1)
	tr.Streams[0].AddRead(0)
	tr.Streams[0].AddCompute(10)
	res, err := Simulate(tr, smpConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 {
		t.Fatalf("phases = %d, want 1 (tail only)", len(res.Phases))
	}
	if res.Phases[0].Stats.Refs != 1 {
		t.Errorf("tail refs = %d", res.Phases[0].Stats.Refs)
	}
}
