package backend

import (
	"fmt"

	"memhier/internal/trace"
)

// StreamRun drives the system directly from a workload generator without
// materializing the whole trace: the generator runs concurrently and its
// events are consumed phase by phase (barrier to barrier), so peak memory
// is one bulk-synchronous phase instead of the full execution. Paper-scale
// problems (hundreds of millions of references) become simulable.
//
// generate must emit the same bulk-synchronous stream a materialized run
// would (workloads.Workload.Run does); results are identical to Run on the
// materialized trace (see TestStreamRunMatchesRun).
func StreamRun(sys *System, nproc int, generate func(sink trace.Sink) error) (RunResult, error) {
	if nproc != sys.Config().TotalProcs() {
		return RunResult{}, fmt.Errorf("backend: generator has %d processors, %s simulates %d",
			nproc, sys.Config().Name, sys.Config().TotalProcs())
	}

	phases := make(chan phaseChunk, 1)
	genErr := make(chan error, 1)

	go func() {
		defer close(phases)
		collector := &phaseCollector{nproc: nproc, out: phases}
		if err := generate(collector); err != nil {
			genErr <- err
			return
		}
		collector.flushTail()
		genErr <- nil
	}()

	var res RunResult
	res.Config = sys.Config().Name
	clocks := make([]float64, nproc)
	idx := make([]int, nproc)
	q := make(cpuQueue, 0, nproc)
	var instructions, refs uint64
	var tTotal float64
	var phaseStart float64
	var phaseBase Stats

	for ph := range phases {
		// Interleave this phase's per-cpu event runs in global time order,
		// with the same batched value-heap scheduler Run uses.
		q = q[:0]
		for cpu := 0; cpu < nproc; cpu++ {
			idx[cpu] = 0
			q = append(q, heapEnt{clock: clocks[cpu], cpu: int32(cpu)})
		}
		q.heapify()
		for len(q) > 0 {
			cpu := q.pop().cpu
			evs := ph.chunks[cpu]
			clock := clocks[cpu]
		run:
			for {
				if idx[cpu] >= len(evs) {
					break run
				}
				e := evs[idx[cpu]]
				idx[cpu]++
				switch e.Kind {
				case trace.Compute:
					clock += float64(e.N) * sys.lat.Instruction
					instructions += e.N
				case trace.Read, trace.Write:
					start := clock
					clock = sys.Access(int(cpu), e.Addr, e.Kind == trace.Write, clock)
					tTotal += clock - start
					refs++
					instructions++
				default:
					return RunResult{}, fmt.Errorf("backend: unexpected event kind %v inside a streamed phase", e.Kind)
				}
				if len(q) > 0 && !entLess(heapEnt{clock: clock, cpu: cpu}, q[0]) {
					q.push(heapEnt{clock: clock, cpu: cpu})
					break run
				}
			}
			clocks[cpu] = clock
		}
		// Phase end: barrier rendezvous (or the run's tail).
		var max float64
		for cpu := 0; cpu < nproc; cpu++ {
			if clocks[cpu] > max {
				max = clocks[cpu]
			}
		}
		var wait float64
		if ph.barrier {
			res.Barriers++
			for cpu := 0; cpu < nproc; cpu++ {
				wait += max - clocks[cpu]
				clocks[cpu] = max
			}
			res.BarrierWaitCycles += wait
		}
		cur := sys.Stats()
		res.Phases = append(res.Phases, PhaseStats{
			Index:       len(res.Phases),
			StartCycle:  phaseStart,
			EndCycle:    max,
			BarrierWait: wait,
			Stats:       cur.Minus(phaseBase),
		})
		phaseStart = max
		phaseBase = cur
		if max > res.WallCycles {
			res.WallCycles = max
		}
	}
	if err := <-genErr; err != nil {
		return RunResult{}, err
	}
	res.Instructions = instructions
	res.MemoryRefs = refs
	if instructions > 0 {
		res.EInstr = res.WallCycles / float64(instructions)
	}
	res.Seconds = res.EInstr / (sys.Config().ClockMHz * 1e6)
	if refs > 0 {
		res.AvgT = tTotal / float64(refs)
	}
	res.Stats = sys.Stats()
	for c := 0; c < int(numClasses); c++ {
		if res.Stats.Refs > 0 {
			res.ClassShare[c] = float64(res.Stats.ClassCounts[c]) / float64(res.Stats.Refs)
		}
	}
	if res.Stats.TotalBusCycles > 0 {
		res.CoherenceShare = res.Stats.CoherenceBusCycles / res.Stats.TotalBusCycles
	}
	if res.WallCycles > 0 {
		if sys.netBus != nil {
			res.NetUtilization = sys.netBus.Utilization(res.WallCycles)
		} else if len(sys.netPorts) > 0 {
			var busy float64
			for _, p := range sys.netPorts {
				busy += p.BusyCycles()
			}
			res.NetUtilization = busy / (res.WallCycles * float64(len(sys.netPorts)))
		}
	}
	return res, nil
}

// phaseChunk is one bulk-synchronous phase of per-cpu event runs.
type phaseChunk struct {
	chunks  [][]trace.Event
	barrier bool // true when the phase ended at a barrier
}

// phaseCollector buffers one bulk-synchronous phase and hands it over when
// every processor has crossed the barrier.
type phaseCollector struct {
	nproc   int
	out     chan<- phaseChunk
	chunks  [][]trace.Event
	arrived []bool
	nwait   int
}

func (p *phaseCollector) ensure() {
	if p.chunks == nil {
		p.chunks = make([][]trace.Event, p.nproc)
		p.arrived = make([]bool, p.nproc)
		p.nwait = 0
	}
}

// Emit implements trace.Sink.
func (p *phaseCollector) Emit(cpu int, e trace.Event) {
	p.ensure()
	if e.Kind == trace.Barrier {
		if p.arrived[cpu] {
			panic("backend: processor crossed the same barrier twice in a streamed phase")
		}
		p.arrived[cpu] = true
		p.nwait++
		if p.nwait == p.nproc {
			p.out <- phaseChunk{chunks: p.chunks, barrier: true}
			p.chunks = nil
		}
		return
	}
	if p.arrived[cpu] {
		// A processor emitted work after its own barrier arrival and before
		// the rendezvous completed — the stream is not bulk-synchronous.
		panic("backend: event emitted after a barrier arrival; stream is not bulk-synchronous")
	}
	p.chunks[cpu] = append(p.chunks[cpu], e)
}

// flushTail hands over work emitted after the last barrier.
func (p *phaseCollector) flushTail() {
	p.ensure()
	for _, c := range p.chunks {
		if len(c) > 0 {
			p.out <- phaseChunk{chunks: p.chunks}
			return
		}
	}
}
