package backend

import (
	"fmt"
	"math"

	"memhier/internal/sim/cache"
	"memhier/internal/trace"
)

// StreamOption configures a StreamRun.
type StreamOption func(*streamConfig)

type streamConfig struct {
	eventHint int
}

// WithEventHint passes the generator's approximate total event count (see
// workloads.EventHinter) so the phase buffers can be pre-sized: the
// collector seeds each per-processor chunk near its steady-state capacity
// instead of discovering it through append-doubling, which is where almost
// all of a streamed run's allocations otherwise come from.
func WithEventHint(events int) StreamOption {
	return func(c *streamConfig) { c.eventHint = events }
}

// StreamRun drives the system directly from a workload generator without
// materializing the whole trace: the generator runs concurrently and its
// events are consumed phase by phase (barrier to barrier), so peak memory
// is one bulk-synchronous phase instead of the full execution. Paper-scale
// problems (hundreds of millions of references) become simulable.
//
// generate must emit the same bulk-synchronous stream a materialized run
// would (workloads.Workload.Run does); results are identical to Run on the
// materialized trace (see TestStreamRunMatchesRun).
//
// The consumer and generator exchange two phase buffers through a free
// list, so the steady state allocates nothing per phase: while the engine
// simulates one phase the generator fills the other, and each buffer's
// per-processor chunks keep their capacity across phases.
func StreamRun(sys *System, nproc int, generate func(sink trace.Sink) error, opts ...StreamOption) (RunResult, error) {
	if nproc != sys.Config().TotalProcs() {
		return RunResult{}, fmt.Errorf("backend: generator has %d processors, %s simulates %d",
			nproc, sys.Config().Name, sys.Config().TotalProcs())
	}
	var sc streamConfig
	for _, o := range opts {
		o(&sc)
	}

	// Pre-size each per-processor chunk from the hint: an even split across
	// processors and a nominal phase count, clamped so a missing or wild
	// hint can neither blow up memory nor matter much.
	chunkCap := 1 << 10
	if sc.eventHint > 0 {
		if c := sc.eventHint / (nproc * 2); c > chunkCap {
			chunkCap = c
		}
		if max := 1 << 17; chunkCap > max {
			chunkCap = max
		}
	}
	newBuf := func() *phaseBuf {
		// One backing array per buffer: a chunk that outgrows its slice
		// migrates out via append's reallocation, which the pre-size makes
		// rare.
		b := &phaseBuf{chunks: make([][]trace.Event, nproc)}
		backing := make([]trace.Event, nproc*chunkCap)
		for i := range b.chunks {
			b.chunks[i] = backing[i*chunkCap : i*chunkCap : (i+1)*chunkCap][:0]
		}
		return b
	}
	out := make(chan *phaseBuf, 1)
	free := make(chan *phaseBuf, 2)
	free <- newBuf()
	free <- newBuf()
	genErr := make(chan error, 1)

	go func() {
		defer close(out)
		collector := &phaseCollector{nproc: nproc, out: out, free: free}
		if err := generate(collector); err != nil {
			genErr <- err
			return
		}
		collector.flushTail()
		genErr <- nil
	}()

	var res RunResult
	res.Config = sys.Config().Name
	res.Phases = make([]PhaseStats, 0, 32)
	clocks := make([]float64, nproc)
	idx := make([]int, nproc)
	keys := make([]float64, nproc)
	var instructions, refs uint64
	var tTotal float64
	var phaseStart float64
	var phaseBase Stats
	latInstr := sys.lat.Instruction
	latHit := sys.lat.CacheHit
	stats := &sys.stats
	hots, hotOK := sysHots(sys)
	access := makeAccess(sys, &tTotal, &refs)

	for ph := range out {
		// Interleave this phase's per-cpu event runs in global time order
		// with the engine's flat min-scan: compute events advance a
		// processor's private clock unchecked; each memory reference is
		// gated against the runner-up key before it executes, so shared
		// transactions retire in (clock, cpu) order exactly as Run's
		// scheduler retires them.
		done := 0
		for cpu := 0; cpu < nproc; cpu++ {
			idx[cpu] = 0
			if len(ph.chunks[cpu]) == 0 {
				keys[cpu] = math.Inf(1)
				done++
			} else {
				keys[cpu] = clocks[cpu]
			}
		}
		for done < nproc {
			bi := 0
			bc := keys[0]
			si := 0
			sc := math.Inf(1)
			for i := 1; i < nproc; i++ {
				c := keys[i]
				if c < bc {
					sc, si = bc, bi
					bc, bi = c, i
				} else if c < sc {
					sc, si = c, i
				}
			}
			evs := ph.chunks[bi]
			clock := clocks[bi]
			i := idx[bi]
		run:
			for {
				if i >= len(evs) {
					keys[bi] = math.Inf(1)
					done++
					break run
				}
				e := evs[i]
				switch e.Kind {
				case trace.Compute:
					clock += float64(e.N) * latInstr
					instructions += e.N
				case trace.Read, trace.Write:
					//chc:allow floateq -- exact tiebreak in the (clock, cpu) retirement order
					if clock > sc || (clock == sc && bi >= si) {
						keys[bi] = clock
						break run
					}
					instructions++
					if !hotOK {
						kind := trace.OpRead
						if e.Kind == trace.Write {
							kind = trace.OpWrite
						}
						clock = access(int32(bi), e.Addr<<2|kind, clock)
						break
					}
					// Private-hit fast path inlined through the Hot view,
					// reproducing makeAccess (and so sys.Access) word for
					// word; only protocol-involving references pay a call.
					stats.Refs++
					h := &hots[bi]
					tag := e.Addr >> h.Shift
					base := (tag & h.Mask) << 1
					w1 := h.Ways[base+1]
					w0 := h.Ways[base]
					hit0 := (w0^(tag<<3))&^4-1 < 3
					hit1 := (w1^(tag<<3))&^4-1 < 3
					w := uint64(0)
					if hit1 {
						w = w1
					}
					if hit0 {
						w = w0
					}
					write := e.Kind == trace.Write
					if w != 0 {
						nm := w0 | 4
						if hit0 {
							nm = w0 &^ 4
						}
						h.Ways[base] = nm
						*h.Hits++
						if !write || w&3 == 3 {
							done := clock + latHit
							stats.ClassCounts[ClassCacheHit]++
							stats.ClassCycles[ClassCacheHit] += done - clock
							tTotal += done - clock
							refs++
							clock = done
						} else {
							done := sys.accessRest(bi, e.Addr, true, clock, cache.State(w&3), true)
							tTotal += done - clock
							refs++
							clock = done
						}
					} else {
						*h.Misses++
						done := sys.accessRest(bi, e.Addr, write, clock, cache.Invalid, false)
						tTotal += done - clock
						refs++
						clock = done
					}
				default:
					return RunResult{}, fmt.Errorf("backend: unexpected event kind %v inside a streamed phase", e.Kind)
				}
				i++
			}
			idx[bi] = i
			clocks[bi] = clock
		}
		// Phase end: barrier rendezvous (or the run's tail).
		var max float64
		for cpu := 0; cpu < nproc; cpu++ {
			if clocks[cpu] > max {
				max = clocks[cpu]
			}
		}
		var wait float64
		if ph.barrier {
			res.Barriers++
			for cpu := 0; cpu < nproc; cpu++ {
				wait += max - clocks[cpu]
				clocks[cpu] = max
			}
			res.BarrierWaitCycles += wait
		}
		cur := sys.Stats()
		res.Phases = append(res.Phases, PhaseStats{
			Index:       len(res.Phases),
			StartCycle:  phaseStart,
			EndCycle:    max,
			BarrierWait: wait,
			Stats:       cur.Minus(phaseBase),
		})
		phaseStart = max
		phaseBase = cur
		if max > res.WallCycles {
			res.WallCycles = max
		}
		ph.barrier = false
		free <- ph
	}
	if err := <-genErr; err != nil {
		return RunResult{}, err
	}
	assemble(&res, instructions, refs, tTotal, sys)
	return res, nil
}

// phaseBuf is one bulk-synchronous phase of per-cpu event runs. Buffers
// cycle between the generator and the engine through the free list; chunks
// keep their capacity across phases.
type phaseBuf struct {
	chunks  [][]trace.Event
	barrier bool // true when the phase ended at a barrier
}

// phaseCollector buffers one bulk-synchronous phase and hands it over when
// every processor has crossed the barrier.
type phaseCollector struct {
	nproc   int
	out     chan<- *phaseBuf
	free    <-chan *phaseBuf
	cur     *phaseBuf
	arrived []bool
	nwait   int
}

func (p *phaseCollector) ensure() {
	if p.cur == nil {
		p.cur = <-p.free
		for i := range p.cur.chunks {
			p.cur.chunks[i] = p.cur.chunks[i][:0]
		}
		if p.arrived == nil {
			p.arrived = make([]bool, p.nproc)
		} else {
			for i := range p.arrived {
				p.arrived[i] = false
			}
		}
		p.nwait = 0
	}
}

// Emit implements trace.Sink.
func (p *phaseCollector) Emit(cpu int, e trace.Event) {
	p.ensure()
	if e.Kind == trace.Barrier {
		if p.arrived[cpu] {
			panic("backend: processor crossed the same barrier twice in a streamed phase")
		}
		p.arrived[cpu] = true
		p.nwait++
		if p.nwait == p.nproc {
			p.cur.barrier = true
			p.out <- p.cur
			p.cur = nil
		}
		return
	}
	if p.arrived[cpu] {
		// A processor emitted work after its own barrier arrival and before
		// the rendezvous completed — the stream is not bulk-synchronous.
		panic("backend: event emitted after a barrier arrival; stream is not bulk-synchronous")
	}
	p.cur.chunks[cpu] = append(p.cur.chunks[cpu], e)
}

// flushTail hands over work emitted after the last barrier.
func (p *phaseCollector) flushTail() {
	p.ensure()
	for _, c := range p.cur.chunks {
		if len(c) > 0 {
			p.out <- p.cur
			p.cur = nil
			return
		}
	}
}
