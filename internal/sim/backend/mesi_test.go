package backend

import (
	"strings"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

func TestMESISilentUpgrade(t *testing.T) {
	// A single processor reads a line (sole copy → Exclusive under MESI)
	// then writes it: no upgrade transaction, one silent transition.
	tr := trace.New(2)
	tr.Streams[0].AddRead(0)
	tr.Streams[0].AddWrite(0)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddCompute(1)
	tr.Streams[1].AddBarrier()

	sys, err := NewSystemOpts(smpConfig(2), SystemOptions{Protocol: ProtocolMESI})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SilentUpgrades != 1 {
		t.Errorf("silent upgrades = %d, want 1", res.Stats.SilentUpgrades)
	}
	if res.Stats.Upgrades != 0 {
		t.Errorf("MESI should not need a bus upgrade, got %d", res.Stats.Upgrades)
	}
}

func TestMSINeedsBusUpgrade(t *testing.T) {
	// Same sequence under MSI: the read fills Shared (even as sole copy),
	// so the write needs an upgrade transaction on a 2-processor SMP.
	tr := trace.New(2)
	tr.Streams[0].AddRead(0)
	tr.Streams[0].AddWrite(0)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddCompute(1)
	tr.Streams[1].AddBarrier()

	res, err := Simulate(tr, smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Upgrades != 1 {
		t.Errorf("MSI upgrades = %d, want 1", res.Stats.Upgrades)
	}
	if res.Stats.SilentUpgrades != 0 {
		t.Errorf("MSI should have no silent upgrades, got %d", res.Stats.SilentUpgrades)
	}
}

func TestMESIExclusiveDowngradedBySecondReader(t *testing.T) {
	// CPU0 reads (Exclusive), CPU1 reads the same line: served
	// cache-to-cache, and both copies end Shared — so CPU0's later write
	// needs a real upgrade.
	tr := trace.New(2)
	tr.Streams[0].AddRead(0)
	tr.Streams[1].AddCompute(5000)
	tr.Streams[1].AddRead(0)
	tr.Streams[0].AddBarrier()
	tr.Streams[1].AddBarrier()
	tr.Streams[0].AddWrite(0)
	tr.Streams[1].AddCompute(1)

	sys, err := NewSystemOpts(smpConfig(2), SystemOptions{Protocol: ProtocolMESI})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ClassCounts[ClassRemoteCache] != 1 {
		t.Errorf("second read should be a cache-to-cache transfer: %+v", res.Stats.ClassCounts)
	}
	if res.Stats.Upgrades != 1 {
		t.Errorf("write after sharing needs an upgrade, got %d", res.Stats.Upgrades)
	}
	if res.Stats.SilentUpgrades != 0 {
		t.Errorf("no silent upgrade possible after sharing, got %d", res.Stats.SilentUpgrades)
	}
}

// TestMESINeverSlower: on a private-data workload MESI eliminates upgrade
// transactions, so wall time is never worse than MSI.
func TestMESINeverSlower(t *testing.T) {
	w := workloads.NewLU(24, 4)
	cfg := smpConfig(4)
	tr, err := workloads.GenerateTrace(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	msi, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sysMESI, err := NewSystemOpts(cfg, SystemOptions{Protocol: ProtocolMESI})
	if err != nil {
		t.Fatal(err)
	}
	mesi, err := Run(tr, sysMESI)
	if err != nil {
		t.Fatal(err)
	}
	if mesi.WallCycles > msi.WallCycles {
		t.Errorf("MESI (%v cycles) slower than MSI (%v cycles)", mesi.WallCycles, msi.WallCycles)
	}
	if mesi.Stats.SilentUpgrades == 0 {
		t.Error("LU under MESI should produce silent upgrades")
	}
	// MESI must preserve the results' accounting invariants.
	var classTotal uint64
	for _, c := range mesi.Stats.ClassCounts {
		classTotal += c
	}
	if classTotal != mesi.Stats.Refs {
		t.Errorf("class counts %d != refs %d", classTotal, mesi.Stats.Refs)
	}
}

func TestMESIOnCluster(t *testing.T) {
	w := workloads.NewRadix(2000, 16)
	cfg := wsConfig(2, machine.NetBus100)
	tr, err := workloads.GenerateTrace(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemOpts(cfg, SystemOptions{Protocol: ProtocolMESI})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles <= 0 || res.Stats.Refs == 0 {
		t.Errorf("degenerate MESI cluster run: %+v", res)
	}
}

func TestProtocolString(t *testing.T) {
	if ProtocolMSI.String() != "MSI" || ProtocolMESI.String() != "MESI" {
		t.Error("protocol names wrong")
	}
	if !strings.Contains(Protocol(9).String(), "9") {
		t.Error("unknown protocol should include its value")
	}
}
