package backend

import (
	"math/rand"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

// TestCoherenceInvariantRealWorkloads runs every backend variant on real
// kernels and checks the single-writer invariant at the end of the run.
func TestCoherenceInvariantRealWorkloads(t *testing.T) {
	cfgs := []machine.Config{
		smpConfig(2), smpConfig(4),
		wsConfig(2, machine.NetBus10), wsConfig(4, machine.NetSwitch155),
		csmpConfig(2, 2, machine.NetBus100), csmpConfig(2, 2, machine.NetSwitch155),
	}
	kernels := []workloads.Workload{
		workloads.NewFFT(256),
		workloads.NewLU(24, 4),
		workloads.NewRadix(3000, 16),
		workloads.NewEdge(24, 24, 2),
	}
	for _, proto := range []Protocol{ProtocolMSI, ProtocolMESI} {
		for _, cfg := range cfgs {
			for _, w := range kernels {
				tr, err := workloads.GenerateTrace(w, cfg.TotalProcs())
				if err != nil {
					t.Fatal(err)
				}
				sys, err := NewSystemOpts(cfg, SystemOptions{Protocol: proto})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := Run(tr, sys); err != nil {
					t.Fatalf("%v/%s/%s: %v", proto, cfg.Name, w.Name(), err)
				}
				if err := sys.VerifyCoherence(); err != nil {
					t.Errorf("%v/%s/%s: %v", proto, cfg.Name, w.Name(), err)
				}
			}
		}
	}
}

// TestCoherenceInvariantRandomTraces stresses the protocols with random
// read/write interleavings over a small shared region (maximal false
// sharing and ping-pong), checking the invariant at several points.
func TestCoherenceInvariantRandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 10; trial++ {
		nproc := 2 + rng.Intn(3)*2 // 2, 4, or 6
		cfg := csmpConfig(2, (nproc+1)/2, machine.NetBus100)
		cfg.Procs = 2
		cfg.N = nproc / 2
		if cfg.N < 1 {
			cfg.N = 1
			cfg.Kind = machine.SMP
			cfg.Net = machine.NetNone
		}
		total := cfg.TotalProcs()
		tr := trace.New(total)
		for i := 0; i < 400; i++ {
			for cpu := 0; cpu < total; cpu++ {
				addr := uint64(rng.Intn(64)) * 8 // 8 cache lines, 2 blocks
				if rng.Intn(2) == 0 {
					tr.Streams[cpu].AddRead(addr)
				} else {
					tr.Streams[cpu].AddWrite(addr)
				}
				if rng.Intn(16) == 0 {
					tr.Streams[cpu].AddCompute(uint64(rng.Intn(100)))
				}
			}
			if i%100 == 99 {
				for cpu := 0; cpu < total; cpu++ {
					tr.Streams[cpu].AddBarrier()
				}
			}
		}
		for _, proto := range []Protocol{ProtocolMSI, ProtocolMESI} {
			sys, err := NewSystemOpts(cfg, SystemOptions{Protocol: proto})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(tr, sys); err != nil {
				t.Fatalf("trial %d %v: %v", trial, proto, err)
			}
			if err := sys.VerifyCoherence(); err != nil {
				t.Errorf("trial %d %v (n=%d N=%d): %v", trial, proto, cfg.Procs, cfg.N, err)
			}
		}
	}
}

// TestDirtyEvictionKeepsSiblingOwnership reproduces the stale-sibling
// scenario: a node dirties two lines of a block, evicts one (write-back),
// and a remote reader of the *other* line must still see the three-hop
// dirty path, not a stale clean fetch.
func TestDirtyEvictionKeepsSiblingOwnership(t *testing.T) {
	cfg := wsConfig(2, machine.NetBus100)
	cfg.CacheBytes = 256 // 2 sets x 2 ways of 64B: tiny, easy to evict
	tr := trace.New(2)
	s0 := tr.Streams[0]
	// Dirty two lines of block 0 (lines 0 and 64 map to different sets).
	s0.AddWrite(0)
	s0.AddWrite(64)
	// Evict line 0 by filling its set: with 2 sets, line addresses 0, 128,
	// 256 share set 0.
	s0.AddWrite(128 * 64) // far-away block, set 0
	s0.AddWrite(256 * 64) // far-away block, set 0 — evicts line 0
	s0.AddBarrier()
	s1 := tr.Streams[1]
	s1.AddCompute(1 << 20)
	s1.AddBarrier()
	// Remote read of the still-dirty sibling line 64.
	s1.AddRead(64)
	s0.AddCompute(1)

	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ClassCounts[ClassRemoteDirty] != 1 {
		t.Errorf("sibling read should take the dirty three-hop path: %+v", res.Stats.ClassCounts)
	}
	if err := sys.VerifyCoherence(); err != nil {
		t.Error(err)
	}
}
