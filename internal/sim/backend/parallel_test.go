package backend

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

// TestRunParallelMatchesRun verifies the tentpole contract: the parallel
// engine's RunResult is bit-identical to the sequential engine's at every
// worker count, on every platform kind, for randomized bulk-synchronous
// traces. Run with -race this also exercises the retirement baton's
// happens-before edges.
func TestRunParallelMatchesRun(t *testing.T) {
	cfgs := []machine.Config{
		smpConfig(4),
		wsConfig(4, machine.NetBus100),
		csmpConfig(2, 2, machine.NetSwitch155),
	}
	counts := []int{1, 2, 3, 4, 9, runtime.NumCPU()}
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 4, 4, 300)
		for _, cfg := range cfgs {
			sysA, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(tr, sysA)
			if err != nil {
				t.Fatalf("seed %d %s: Run: %v", seed, cfg.Name, err)
			}
			for _, workers := range counts {
				sysB, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunParallel(tr, sysB, workers)
				if err != nil {
					t.Fatalf("seed %d %s workers=%d: RunParallel: %v",
						seed, cfg.Name, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d %s workers=%d: parallel engine diverged:\n got %+v\nwant %+v",
						seed, cfg.Name, workers, got, want)
				}
			}
		}
	}
}

// TestRunParallelWorkload cross-checks the parallel engine on a real kernel
// trace, whose long compute runs produce much larger batches per baton hold
// than the random mix.
func TestRunParallelWorkload(t *testing.T) {
	tr, err := workloads.GenerateTrace(workloads.NewRadix(1<<12, 64), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []machine.Config{smpConfig(4), csmpConfig(2, 2, machine.NetBus100)} {
		sysA, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(tr, sysA)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, runtime.NumCPU()} {
			sysB, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunParallel(tr, sysB, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d: parallel engine diverged on Radix trace", cfg.Name, workers)
			}
		}
	}
}

// TestRunParallelErrors checks the validation paths: mismatched streams and
// stuck barriers surface the same errors as Run.
func TestRunParallelErrors(t *testing.T) {
	tr := trace.New(2)
	tr.Streams[0].AddBarrier()
	tr.Streams[0].AddRead(0)
	tr.Streams[1].AddBarrier()
	tr.Streams[1].AddRead(64)
	sys, err := NewSystem(smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunParallel(tr, sys, 2); err != nil {
		t.Fatalf("balanced trace: %v", err)
	}

	bad := trace.New(3)
	sys2, err := NewSystem(smpConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunParallel(bad, sys2, 2); err == nil {
		t.Fatal("stream/processor mismatch not rejected")
	}
}
