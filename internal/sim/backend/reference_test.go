package backend

import (
	"container/heap"
	"fmt"

	"memhier/internal/trace"
)

// This file retains the original unbatched executor as a reference
// implementation: a container/heap scheduler that pays one pop+push per
// event. The production Run must produce bit-identical RunResults
// (TestRunMatchesReference); any divergence means the batching rewrite
// changed simulation semantics.

// refState is the reference executor's per-processor progress record.
type refState struct {
	cpu   int
	clock float64
	next  int // index into stream events
	order int // FIFO tiebreak for determinism
}

type refHeap []*refState

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].order < h[j].order
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refState)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// referenceRun is the pre-batching Run: pop the earliest processor, execute
// exactly one event, push it back.
func referenceRun(tr *trace.Trace, sys *System) (RunResult, error) {
	want := sys.Config().TotalProcs()
	if tr.NumCPU() != want {
		return RunResult{}, fmt.Errorf("backend: trace has %d streams, %s simulates %d processors",
			tr.NumCPU(), sys.Config().Name, want)
	}
	if err := tr.Validate(); err != nil {
		return RunResult{}, err
	}

	states := make([]*refState, want)
	h := make(refHeap, 0, want)
	for i := 0; i < want; i++ {
		states[i] = &refState{cpu: i, order: i}
		h = append(h, states[i])
	}
	heap.Init(&h)

	var res RunResult
	res.Config = sys.Config().Name
	waiting := 0
	var barrierMax float64
	var phaseStart float64
	var phaseBase Stats

	release := func() {
		// Barrier wait is summed in CPU index order, matching runSeq and
		// RunParallel, so the float sum is bit-identical across engines.
		res.Barriers++
		var wait float64
		for _, st := range states {
			wait += barrierMax - st.clock
			st.clock = barrierMax
			heap.Push(&h, st)
		}
		res.BarrierWaitCycles += wait
		cur := sys.Stats()
		res.Phases = append(res.Phases, PhaseStats{
			Index:       len(res.Phases),
			StartCycle:  phaseStart,
			EndCycle:    barrierMax,
			BarrierWait: wait,
			Stats:       cur.Minus(phaseBase),
		})
		phaseStart = barrierMax
		phaseBase = cur
		waiting = 0
		barrierMax = 0
	}

	var tStart, tTotal float64
	var refs uint64
	for h.Len() > 0 {
		st := heap.Pop(&h).(*refState)
		ev := tr.Streams[st.cpu].Events
		if st.next >= len(ev) {
			if st.clock > res.WallCycles {
				res.WallCycles = st.clock
			}
			continue
		}
		e := ev[st.next]
		st.next++
		switch e.Kind {
		case trace.Compute:
			st.clock += float64(e.N) * sys.lat.Instruction
			heap.Push(&h, st)
		case trace.Read, trace.Write:
			tStart = st.clock
			st.clock = sys.Access(st.cpu, e.Addr, e.Kind == trace.Write, st.clock)
			tTotal += st.clock - tStart
			refs++
			heap.Push(&h, st)
		case trace.Barrier:
			if st.clock > barrierMax {
				barrierMax = st.clock
			}
			waiting++
			if waiting == want {
				release()
			}
		default:
			return RunResult{}, fmt.Errorf("backend: unknown event kind %d", e.Kind)
		}
	}
	if waiting > 0 {
		return RunResult{}, fmt.Errorf("backend: %d processors stuck at a barrier", waiting)
	}
	appendTailPhase(&res, sys, phaseStart, phaseBase)
	assemble(&res, tr.Instructions(), refs, tTotal, sys)
	return res, nil
}
