package backend

import (
	"fmt"
	"math"

	"memhier/internal/machine"
	"memhier/internal/sim/cache"
	"memhier/internal/trace"
)

// RunResult summarizes one simulated execution.
type RunResult struct {
	Config       string
	WallCycles   float64 // completion time of the slowest processor
	Instructions uint64  // m + M across all processors
	MemoryRefs   uint64
	// EInstr is wall time divided by total instructions: the simulated
	// counterpart of the model's E(Instr) (eq. 4), in cycles.
	EInstr float64
	// Seconds converts EInstr with the configured clock.
	Seconds float64
	// AvgT is the observed average memory access time per reference.
	AvgT float64
	// BarrierWaitCycles is the total time processors spent blocked at
	// barriers.
	BarrierWaitCycles float64
	Barriers          uint64

	Stats Stats
	// Phases profiles the barrier-delimited bulk-synchronous phases: one
	// entry per barrier interval plus a final entry for work after the
	// last barrier (if any). Where the cycles go, phase by phase.
	Phases []PhaseStats
	// ClassShare[c] is the fraction of references served by class c.
	ClassShare [numClasses]float64
	// CoherenceShare is the fraction of memory-bus cycles spent on
	// coherence transactions (the paper reports 2.1–7.2% on SMPs).
	CoherenceShare float64
	// NetUtilization is network busy time over wall time (0 for an SMP).
	NetUtilization float64
}

// PhaseStats profiles one barrier-delimited phase of the execution.
type PhaseStats struct {
	Index       int
	StartCycle  float64
	EndCycle    float64 // the barrier-release instant (or final wall time)
	BarrierWait float64 // total processor-cycles waiting at the closing barrier
	Stats       Stats   // counter deltas for the phase
}

// Cycles returns the phase's wall-clock span.
func (p PhaseStats) Cycles() float64 { return p.EndCycle - p.StartCycle }

// checkTrace validates a trace against a system before a run. A valid trace
// has one stream per simulated processor, balanced barriers, and in-range
// addresses.
func checkTrace(tr *trace.Trace, sys *System) error {
	if want := sys.Config().TotalProcs(); tr.NumCPU() != want {
		return fmt.Errorf("backend: trace has %d streams, %s simulates %d processors",
			tr.NumCPU(), sys.Config().Name, want)
	}
	return tr.Validate()
}

// wheelWidth sizes the scheduler's bucket granularity from the latency
// table: the ready queue reorders only when a processor leaves the
// private-hit fast path, so consecutive pops are separated by at least the
// cheapest cross-processor transaction.
func wheelWidth(sys *System) float64 {
	if w := sys.lat.RemoteCache; w > 1 {
		return w
	}
	return 1
}

// scanMaxProcs is the processor count up to which the sequential engine
// schedules with a flat min-scan over per-CPU clocks instead of the event
// wheel. The ready queue holds at most one entry per processor, so at small
// counts a register-resident scan finding the minimum and runner-up in one
// pass beats any bucketed or tree structure (see BenchmarkScheduler*); the
// wheel's O(1) push/pop only wins once the scan's O(nproc) pass grows past
// its constants.
const scanMaxProcs = 32

// makeAccess builds the engine's memory-reference fast path: a closure that
// executes one compiled reference op, probing the processor's private cache
// inline through the flattened cache.Hot view (zero calls on the hit path)
// and falling through to the System's coherence machinery only when the
// protocol is actually involved. The bookkeeping — stats.Refs, cache
// tick/LRU/hit counters, cache-hit class accounting, tTotal and refs —
// reproduces sys.Access word for word, so every engine built on it stays
// bit-identical to the reference executor. When any cache's geometry has no
// Hot view the closure degrades to plain sys.Access.
func makeAccess(sys *System, tTotal *float64, refs *uint64) func(cpu int32, arg uint64, clock float64) float64 {
	hots, ok := sysHots(sys)
	if !ok {
		return func(cpu int32, arg uint64, clock float64) float64 {
			done := sys.Access(int(cpu), arg>>2, arg&3 == trace.OpWrite, clock)
			*tTotal += done - clock
			*refs++
			return done
		}
	}
	latHit := sys.lat.CacheHit
	return func(cpu int32, arg uint64, clock float64) float64 {
		addr := arg >> 2
		write := arg&3 == trace.OpWrite
		sys.stats.Refs++
		h := &hots[cpu]
		tag := addr >> h.Shift
		base := (tag & h.Mask) << 1
		// Two-way probe per the Hot contract; w ends 0 on a miss, else
		// holds the matching way.
		w := h.Ways[base]
		if w&3 != 0 && w>>3 == tag {
			h.Ways[base] = w &^ 4
		} else if w1 := h.Ways[base+1]; w1&3 != 0 && w1>>3 == tag {
			h.Ways[base] = w | 4
			w = w1
		} else {
			w = 0
		}
		if w != 0 {
			*h.Hits++
			st := cache.State(w & 3)
			if !write || st == cache.Modified {
				done := clock + latHit
				sys.stats.ClassCounts[ClassCacheHit]++
				sys.stats.ClassCycles[ClassCacheHit] += done - clock
				*tTotal += done - clock
				*refs++
				return done
			}
			// Hit, but a write to a non-Modified line: ownership upgrade
			// through the protocol.
			done := sys.accessRest(int(cpu), addr, write, clock, st, true)
			*tTotal += done - clock
			*refs++
			return done
		}
		*h.Misses++
		done := sys.accessRest(int(cpu), addr, write, clock, cache.Invalid, false)
		*tTotal += done - clock
		*refs++
		return done
	}
}

// sysHots collects the flattened fast-path views of every processor cache;
// ok is false when any geometry has none, in which case engines stay on the
// Lookup-based access path.
func sysHots(sys *System) ([]cache.Hot, bool) {
	hots := make([]cache.Hot, len(sys.caches))
	for i, c := range sys.caches {
		h, ok := c.Hot()
		if !ok {
			return nil, false
		}
		hots[i] = h
	}
	return hots, true
}

// Run drives the system with the trace, interleaving processors in global
// time order, and returns the execution summary. The trace must have one
// stream per simulated processor and balanced barriers.
//
// The engine executes each stream's compiled op form (trace.Op: a compute
// gap fused with the reference or barrier that follows it) with event-run
// batching: after picking the earliest processor, its ops keep executing
// inline while its clock stays ahead of the next ready processor, so a long
// compute/cache-hit run between barriers costs one scheduling decision
// instead of one per event. The ready queue is a flat min-scan up to
// scanMaxProcs processors and a calendar/event-wheel beyond that; both
// retire work in identical (clock, cpu) order, and results are identical to
// the unbatched reference executor (see TestRunMatchesReference).
func Run(tr *trace.Trace, sys *System) (RunResult, error) {
	if err := checkTrace(tr, sys); err != nil {
		return RunResult{}, err
	}
	return runSeq(tr, sys)
}

// runSeq is the sequential engine behind Run; RunParallel falls back to it
// for a single worker. The trace must already be validated.
func runSeq(tr *trace.Trace, sys *System) (RunResult, error) {
	if tr.NumCPU() <= scanMaxProcs {
		// The integer-clock specialization needs every latency integral and
		// every cache geometry flattenable; both hold for all stock machine
		// configurations. Exotic setups take the float path.
		if hots, ok := sysHots(sys); ok && sys.exactLatencies() {
			return runSeqScanInt(tr, sys, hots)
		}
		return runSeqScan(tr, sys)
	}
	return runSeqWheel(tr, sys)
}

// runSeqWheel is the event-wheel variant of the sequential engine, for
// processor counts past the scan crossover. It retires work in the same
// (clock, cpu) order as runSeqScan with the same arithmetic, so the two are
// bit-identical (TestWheelEngineMatchesScan).
func runSeqWheel(tr *trace.Trace, sys *System) (RunResult, error) {
	want := tr.NumCPU()
	clocks := make([]float64, want)
	nexts := make([]int, want)
	// pends[cpu] holds the action half of an op whose compute advance has
	// been applied but whose shared access must wait for global order (the
	// batching limit was hit between the two); 0 = none.
	pends := make([]uint64, want)
	opsPer := make([][]trace.Op, want)
	for i := range opsPer {
		var err error
		if opsPer[i], err = tr.Streams[i].Ops(); err != nil {
			return RunResult{}, fmt.Errorf("backend: %w", err)
		}
	}

	w := newWheel(wheelWidth(sys))
	for i := 0; i < want; i++ {
		w.push(heapEnt{cpu: int32(i)})
	}

	var res RunResult
	res.Config = sys.Config().Name
	if nb := tr.Streams[0].Barriers(); nb > 0 {
		// One phase per barrier plus the tail; pre-sizing skips the append
		// growth chain (PhaseStats is a couple hundred bytes).
		res.Phases = make([]PhaseStats, 0, nb+1)
	}
	arrived := 0
	var barrierMax float64
	var phaseStart float64
	var phaseBase Stats
	var tTotal float64
	var refs uint64
	latInstr := sys.lat.Instruction
	access := makeAccess(sys, &tTotal, &refs)

	release := func() {
		// All processors arrived: everyone resumes at the latest arrival.
		// Wait is summed in CPU index order — the same order every engine
		// (sequential, reference, parallel) uses, so the float sum is
		// bit-identical across them.
		res.Barriers++
		var wait float64
		for i := range clocks {
			wait += barrierMax - clocks[i]
			clocks[i] = barrierMax
			w.push(heapEnt{clock: barrierMax, cpu: int32(i)})
		}
		res.BarrierWaitCycles += wait
		cur := sys.Stats()
		res.Phases = append(res.Phases, PhaseStats{
			Index:       len(res.Phases),
			StartCycle:  phaseStart,
			EndCycle:    barrierMax,
			BarrierWait: wait,
			Stats:       cur.Minus(phaseBase),
		})
		phaseStart = barrierMax
		phaseBase = cur
		barrierMax = 0
	}

outer:
	for w.n > 0 {
		ent := w.pop()
		cpu := ent.cpu
		clock := clocks[cpu]
		next := nexts[cpu]
		ops := opsPer[cpu]
		var limit heapEnt
		bounded := w.n > 0
		if bounded {
			limit = w.peek()
		}
		if p := pends[cpu]; p != 0 {
			// Resume the parked action of a half-executed op. Being popped
			// as the queue minimum is exactly the order guarantee it was
			// parked to wait for.
			pends[cpu] = 0
			clock = access(cpu, p, clock)
			if bounded && !entLess(heapEnt{clock: clock, cpu: cpu}, limit) {
				clocks[cpu] = clock
				w.push(heapEnt{clock: clock, cpu: cpu})
				continue outer
			}
		}
		for {
			if next >= len(ops) {
				// Stream exhausted; the processor halts at its current clock.
				if clock > res.WallCycles {
					res.WallCycles = clock
				}
				break
			}
			op := ops[next]
			next++
			clock += float64(op.N) * latInstr
			switch op.Arg & 3 {
			case trace.OpNone:
				// Pure compute advances only this processor's clock; no
				// ordering against the rest of the machine is needed.
				continue
			case trace.OpBarrier:
				// Arrival bookkeeping commutes (max over clocks), so no
				// ordering is needed here either.
				if clock > barrierMax {
					barrierMax = clock
				}
				clocks[cpu] = clock
				nexts[cpu] = next
				arrived++
				if arrived == want {
					arrived = 0
					release()
				}
				continue outer
			}
			// Memory reference at time clock: it touches shared machinery,
			// so it must wait until this processor is globally earliest.
			if bounded && !entLess(heapEnt{clock: clock, cpu: cpu}, limit) {
				pends[cpu] = op.Arg
				clocks[cpu] = clock
				nexts[cpu] = next
				w.push(heapEnt{clock: clock, cpu: cpu})
				continue outer
			}
			clock = access(cpu, op.Arg, clock)
			// Batching: keep executing this processor while it is still the
			// earliest — exactly equivalent to pushing it back and popping
			// it again, minus the two queue operations.
			if bounded && !entLess(heapEnt{clock: clock, cpu: cpu}, limit) {
				clocks[cpu] = clock
				nexts[cpu] = next
				w.push(heapEnt{clock: clock, cpu: cpu})
				continue outer
			}
		}
		clocks[cpu] = clock
		nexts[cpu] = next
	}
	if arrived > 0 {
		return RunResult{}, fmt.Errorf("backend: %d processors stuck at a barrier", arrived)
	}
	appendTailPhase(&res, sys, phaseStart, phaseBase)
	assemble(&res, tr.Instructions(), refs, tTotal, sys)
	return res, nil
}

// runSeqScan is the small-configuration variant of the sequential engine:
// the ready queue is the per-CPU clock array itself, and each scheduling
// decision is one pass over it computing the (clock, cpu) minimum and
// runner-up. With at most one queue entry per processor the whole queue fits
// in a few cache lines, so the scan beats both the binary heap it replaced
// and the event wheel up to scanMaxProcs (BenchmarkScheduler*). The
// execution structure mirrors runSeqWheel step for step — same batching
// limit, same pend parking, same accounting order — so the two engines are
// bit-identical (TestWheelEngineMatchesScan).
//chc:hotpath
func runSeqScan(tr *trace.Trace, sys *System) (RunResult, error) {
	want := tr.NumCPU()
	inf := math.Inf(1)
	// ready[cpu] is the clock at which the processor next contends for the
	// machine; +Inf parks it (blocked at a barrier, or stream exhausted).
	// clocks[cpu] is its last known clock regardless of parking: release
	// needs arrival clocks after ready has been parked.
	ready := make([]float64, want)
	clocks := make([]float64, want)
	nexts := make([]int, want)
	opsPer := make([][]trace.Op, want)
	for i := range opsPer {
		var err error
		if opsPer[i], err = tr.Streams[i].Ops(); err != nil {
			//chc:allow hotalloc -- cold path: stream decode failed, the run is over
			return RunResult{}, fmt.Errorf("backend: %w", err)
		}
	}

	var res RunResult
	res.Config = sys.Config().Name
	if nb := tr.Streams[0].Barriers(); nb > 0 {
		res.Phases = make([]PhaseStats, 0, nb+1)
	}
	live := want
	arrived := 0
	var barrierMax float64
	var phaseStart float64
	var phaseBase Stats
	var tTotal float64
	var refs uint64
	latInstr := sys.lat.Instruction
	latHit := sys.lat.CacheHit
	access := makeAccess(sys, &tTotal, &refs)
	// hot enables the in-loop flattened probe (no indirect call per hit);
	// with exotic geometry every reference goes through the access closure.
	// (With integral latencies runSeq routes to runSeqScanInt instead, so
	// this variant only ever runs with fractional latencies somewhere in the
	// table — per-hit accounting must be immediate.)
	hots, hot := sysHots(sys)
	stats := &sys.stats

	release := func() {
		// All processors arrived: everyone resumes at the latest arrival.
		// Wait is summed in CPU index order — the same order every engine
		// uses, so the float sum is bit-identical across them.
		res.Barriers++
		var wait float64
		for i := range clocks {
			wait += barrierMax - clocks[i]
			clocks[i] = barrierMax
			ready[i] = barrierMax
		}
		live = want
		res.BarrierWaitCycles += wait
		cur := sys.Stats()
		res.Phases = append(res.Phases, PhaseStats{
			Index:       len(res.Phases),
			StartCycle:  phaseStart,
			EndCycle:    barrierMax,
			BarrierWait: wait,
			Stats:       cur.Minus(phaseBase),
		})
		phaseStart = barrierMax
		phaseBase = cur
		barrierMax = 0
	}

outer:
	for live > 0 {
		// One pass over the clock array: bi/bc is the (clock, cpu) minimum,
		// si/sc the runner-up. Only strict < displaces, so the lowest CPU
		// index wins ties — exactly entLess order. Parked processors sit at
		// +Inf and lose every comparison. A runner-up at +Inf means the
		// picked processor is effectively alone; entLess against the +Inf
		// limit is then always true, so no separate "unbounded" flag is
		// needed anywhere below.
		bi := 0
		bc := ready[0]
		si := int32(0)
		sc := inf
		for i := 1; i < want; i++ {
			c := ready[i]
			if c < bc {
				sc, si = bc, int32(bi)
				bc, bi = c, i
			} else if c < sc {
				sc, si = c, int32(i)
			}
		}
		cpu := int32(bi)
		// clocks[bi], not the scan key: a processor parked on a gated
		// reference keeps its committed clock here while ready[bi] holds the
		// reference's contention time (see the park below). For every other
		// processor the two are equal.
		clock := clocks[bi]
		next := nexts[bi]
		ops := opsPer[bi]
		limit := heapEnt{clock: sc, cpu: si}
		for {
			if next >= len(ops) {
				// Stream exhausted; the processor halts at its current clock.
				if clock > res.WallCycles {
					res.WallCycles = clock
				}
				ready[bi] = inf
				live--
				break
			}
			op := ops[next]
			next++
			kind := op.Arg & 3
			if kind == trace.OpNone {
				// Pure compute advances only this processor's clock; no
				// ordering against the rest of the machine is needed.
				clock += float64(op.N) * latInstr
				continue
			}
			if kind == trace.OpBarrier {
				clock += float64(op.N) * latInstr
				// Arrival bookkeeping commutes (max over clocks), so no
				// ordering is needed here either.
				if clock > barrierMax {
					barrierMax = clock
				}
				clocks[bi] = clock
				nexts[bi] = next
				ready[bi] = inf
				live--
				arrived++
				if arrived == want {
					arrived = 0
					release()
				}
				continue outer
			}
			// Memory reference at time t: it touches shared machinery, so it
			// must wait until this processor is globally earliest. Parking
			// rewinds next rather than saving a half-executed op: the compute
			// advance is recomputed from the same committed clock on resume
			// (bit-identical float add), which lets the resumed reference run
			// through the flattened fast path below instead of a slow-path
			// closure. Being picked as the scan minimum with ready[bi] = t
			// implies (t, cpu) precedes the new runner-up limit, so the
			// re-checked gate always passes on resume.
			t := clock + float64(op.N)*latInstr
			if !entLess(heapEnt{clock: t, cpu: cpu}, limit) {
				nexts[bi] = next - 1
				clocks[bi] = clock
				ready[bi] = t
				continue outer
			}
			clock = t
			if hot {
				// Flattened private-hit fast path: the two-way probe from
				// cache.Hot inlined into the loop, no call on a hit.
				addr := op.Arg >> 2
				h := &hots[bi]
				tag := addr >> h.Shift
				base := (tag & h.Mask) << 1
				w := h.Ways[base]
				if w&3 != 0 && w>>3 == tag {
					h.Ways[base] = w &^ 4
				} else if w1 := h.Ways[base+1]; w1&3 != 0 && w1>>3 == tag {
					h.Ways[base] = w | 4
					w = w1
				} else {
					w = 0
				}
				if w != 0 {
					st := cache.State(w & 3)
					if kind != trace.OpWrite || st == cache.Modified {
						*h.Hits++
						stats.Refs++
						done := clock + latHit
						stats.ClassCounts[ClassCacheHit]++
						stats.ClassCycles[ClassCacheHit] += done - clock
						tTotal += done - clock
						refs++
						clock = done
					} else {
						// Write hit on a non-Modified line: ownership
						// upgrade through the protocol.
						*h.Hits++
						stats.Refs++
						done := sys.accessRest(bi, addr, true, clock, st, true)
						tTotal += done - clock
						refs++
						clock = done
					}
				} else {
					*h.Misses++
					stats.Refs++
					done := sys.accessRest(bi, addr, kind == trace.OpWrite, clock, cache.Invalid, false)
					tTotal += done - clock
					refs++
					clock = done
				}
			} else {
				clock = access(cpu, op.Arg, clock)
			}
			// Batching: keep executing this processor while it is still the
			// earliest — exactly equivalent to re-scanning and picking it
			// again, minus the scan.
			if !entLess(heapEnt{clock: clock, cpu: cpu}, limit) {
				clocks[bi] = clock
				nexts[bi] = next
				ready[bi] = clock
				continue outer
			}
		}
		clocks[bi] = clock
		nexts[bi] = next
	}
	if arrived > 0 {
		//chc:allow hotalloc -- cold path: malformed trace detected after the loop exits
		return RunResult{}, fmt.Errorf("backend: %d processors stuck at a barrier", arrived)
	}
	appendTailPhase(&res, sys, phaseStart, phaseBase)
	assemble(&res, tr.Instructions(), refs, tTotal, sys)
	return res, nil
}

// runSeqScanInt is the integer-clock specialization of the scan engine, the
// production fast path: it requires every latency in the table to be
// integral (sys.exactLatencies) and every private cache to expose a
// flattened Hot view. Under those conditions every clock value, barrier
// wait, and cycle accumulator the simulation can produce is an exact
// integer far below 2^53, so the engine runs its entire serial dependency
// chain — compute advance, gate compare, min-scan — in uint64 arithmetic
// (1-cycle adds and compares against the float chain's 4-cycle FMA/compare
// latencies) and converts to float64 only at observation points: protocol
// calls, phase records, and the final result. Each conversion is exact in
// both directions, so the results are bit-identical to runSeqScan, the
// wheel engine, and the unbatched reference executor
// (TestRunMatchesReference).
//
// The same exactness licenses deferred hit accounting: hitNs[cpu] counts
// private hits whose counter updates (cache Hits, stats.Refs, hit-class
// count and cycles, tTotal, refs) haven't been applied yet; flush applies
// them in bulk and must run before anything reads those accumulators (phase
// snapshots and final assembly). See DESIGN.md ("Exact integer clocks") for
// the full argument.
//chc:hotpath
func runSeqScanInt(tr *trace.Trace, sys *System, hots []cache.Hot) (RunResult, error) {
	want := tr.NumCPU()
	const infu = math.MaxUint64
	// ready[cpu] is the clock at which the processor next contends for the
	// machine; infu parks it (blocked at a barrier, or stream exhausted).
	// clocks[cpu] is its committed clock: for a processor parked on a gated
	// reference, ready holds the reference's contention time while clocks
	// stays at the clock the compute advance will be recomputed from.
	ready := make([]uint64, want)
	clocks := make([]uint64, want)
	nexts := make([]int, want)
	opsPer := make([][]trace.Op, want)
	for i := range opsPer {
		var err error
		if opsPer[i], err = tr.Streams[i].Ops(); err != nil {
			//chc:allow hotalloc -- cold path: stream decode failed, the run is over
			return RunResult{}, fmt.Errorf("backend: %w", err)
		}
	}

	var res RunResult
	res.Config = sys.Config().Name
	if nb := tr.Streams[0].Barriers(); nb > 0 {
		res.Phases = make([]PhaseStats, 0, nb+1)
	}
	live := want
	arrived := 0
	var barrierMax uint64
	var phaseStart uint64
	var phaseBase Stats
	var tTotal float64
	var refs uint64
	var wall uint64
	latInstr := uint64(sys.lat.Instruction)
	latHit := uint64(sys.lat.CacheHit)
	fLatHit := sys.lat.CacheHit
	stats := &sys.stats
	hitNs := make([]uint64, want)
	flush := func() {
		var total uint64
		for i, n := range hitNs {
			if n != 0 {
				*hots[i].Hits += n
				hitNs[i] = 0
				total += n
			}
		}
		if total != 0 {
			stats.Refs += total
			stats.ClassCounts[ClassCacheHit] += total
			d := float64(total) * fLatHit
			stats.ClassCycles[ClassCacheHit] += d
			tTotal += d
			refs += total
		}
	}

	release := func() {
		flush()
		// All processors arrived: everyone resumes at the latest arrival.
		// The integer wait sum is exact, so converting the total reproduces
		// the float engines' term-by-term sum bit for bit.
		res.Barriers++
		var wait uint64
		for i := range clocks {
			wait += barrierMax - clocks[i]
			clocks[i] = barrierMax
			// Seed the scan key past the first compute gap (see the
			// batch-end park): every processor restarts at the same instant,
			// and keying on the first contention time instead dissolves that
			// all-way tie.
			key := barrierMax
			if n, ops := nexts[i], opsPer[i]; n < len(ops) {
				key += ops[n].N * latInstr
			}
			ready[i] = key
		}
		live = want
		res.BarrierWaitCycles += float64(wait)
		cur := sys.Stats()
		res.Phases = append(res.Phases, PhaseStats{
			Index:       len(res.Phases),
			StartCycle:  float64(phaseStart),
			EndCycle:    float64(barrierMax),
			BarrierWait: float64(wait),
			Stats:       cur.Minus(phaseBase),
		})
		phaseStart = barrierMax
		phaseBase = cur
		barrierMax = 0
	}

outer:
	for live > 0 {
		// One pass over the clock array: bi/bc is the (clock, cpu) minimum,
		// si/sc the runner-up; lowest index wins ties, matching entLess
		// order. Parked processors sit at infu and lose every comparison.
		bi := 0
		bc := ready[0]
		si := 0
		sc := uint64(infu)
		for i := 1; i < want; i++ {
			c := ready[i]
			if c < bc {
				sc, si = bc, bi
				bc, bi = c, i
			} else if c < sc {
				sc, si = c, i
			}
		}
		clock := clocks[bi]
		next := nexts[bi]
		ops := opsPer[bi]
		// hn mirrors hitNs[bi] in a register for the whole scheduling round;
		// every exit path below stores it back before the slot can be read
		// (flush) or another round begins.
		hn := hitNs[bi]
		h := &hots[bi]
		shift := h.Shift
		mask := h.Mask
		ways := h.Ways
		for {
			if next >= len(ops) {
				// Stream exhausted; the processor halts at its current clock.
				if clock > wall {
					wall = clock
				}
				ready[bi] = infu
				hitNs[bi] = hn
				live--
				break
			}
			op := ops[next]
			next++
			kind := op.Arg & 3
			if kind == trace.OpNone {
				// Pure compute advances only this processor's clock; no
				// ordering against the rest of the machine is needed.
				clock += op.N * latInstr
				continue
			}
			if kind == trace.OpBarrier {
				clock += op.N * latInstr
				// Arrival bookkeeping commutes (max over clocks), so no
				// ordering is needed here either.
				if clock > barrierMax {
					barrierMax = clock
				}
				clocks[bi] = clock
				nexts[bi] = next
				ready[bi] = infu
				hitNs[bi] = hn
				live--
				arrived++
				if arrived == want {
					arrived = 0
					release()
				}
				continue outer
			}
			// Memory reference at time t: it touches shared machinery, so it
			// must wait until this processor is globally earliest. Parking
			// rewinds next rather than saving a half-executed op: the
			// compute advance is recomputed from the same committed clock on
			// resume, which lets the resumed reference run through the
			// flattened fast path below. Being picked as the scan minimum
			// with ready[bi] = t implies (t, cpu) precedes the new runner-up
			// limit, so the re-checked gate always passes on resume.
			t := clock + op.N*latInstr
			if t > sc || (t == sc && bi >= si) {
				nexts[bi] = next - 1
				clocks[bi] = clock
				ready[bi] = t
				hitNs[bi] = hn
				continue outer
			}
			clock = t
			// Flattened private-hit fast path: the two-way probe from
			// cache.Hot inlined into the loop, no call on a hit. The way
			// match is branchless — which way hits is data-dependent and
			// mispredicts heavily if branched on: w ^ tag<<3 clears the tag
			// bits exactly on a match, so after masking the MRU bit the
			// residue is the state, and "in 1..3" (one unsigned compare) is
			// "valid line with this tag". The way selects below compile to
			// conditional moves; only hit-vs-miss remains a branch, and that
			// one is heavily biased.
			addr := op.Arg >> 2
			tag := addr >> shift
			base := (tag & mask) << 1
			w1 := ways[base+1]
			w0 := ways[base]
			hit0 := (w0^(tag<<3))&^4-1 < 3
			hit1 := (w1^(tag<<3))&^4-1 < 3
			w := uint64(0)
			if hit1 {
				w = w1
			}
			if hit0 {
				w = w0
			}
			if w != 0 {
				// MRU update per the Hot contract: way 0's bit 2 names the
				// MRU way; clear it on a way-0 hit, set it on a way-1 hit.
				nm := w0 | 4
				if hit0 {
					nm = w0 &^ 4
				}
				ways[base] = nm
				// Fast path unless this is a write to a non-Modified line.
				// Fused into one biased compare (kind^OpWrite stacked over
				// state^Modified): branching on kind and state separately
				// mispredicts on the workload's read/write mix.
				if m := (kind^trace.OpWrite)<<2 | (w&3 ^ 3); m-1 >= 3 {
					// Deferred hit accounting: one counter bump and one
					// integer add per hit; flush settles the books.
					hn++
					clock += latHit
				} else {
					// Write hit on a non-Modified line: ownership upgrade
					// through the protocol, on float clocks.
					*h.Hits++
					stats.Refs++
					fc := float64(clock)
					done := sys.accessRest(bi, addr, true, fc, cache.State(w&3), true)
					tTotal += done - fc
					refs++
					clock = uint64(done)
				}
			} else {
				*h.Misses++
				stats.Refs++
				fc := float64(clock)
				done := sys.accessRest(bi, addr, kind == trace.OpWrite, fc, cache.Invalid, false)
				tTotal += done - fc
				refs++
				clock = uint64(done)
			}
			// Batching: keep executing this processor while it is still the
			// earliest — exactly equivalent to re-scanning and picking it
			// again, minus the scan.
			if clock > sc || (clock == sc && bi >= si) {
				clocks[bi] = clock
				nexts[bi] = next
				// The scan key is a lower bound on this processor's next
				// shared-machinery touch, not its clock: peeking the next
				// op's compute gap lifts the key past the pure-compute
				// stretch, which lengthens every peer's batching limit and
				// breaks the exact clock ties that force park ping-pong.
				// Sound because retirement order is still (time, cpu) over
				// actual transactions — a key below the true next
				// transaction time only costs batching, never correctness.
				key := clock
				if next < len(ops) {
					key += ops[next].N * latInstr
				}
				ready[bi] = key
				hitNs[bi] = hn
				continue outer
			}
		}
		clocks[bi] = clock
		nexts[bi] = next
	}
	if arrived > 0 {
		//chc:allow hotalloc -- cold path: malformed trace detected after the loop exits
		return RunResult{}, fmt.Errorf("backend: %d processors stuck at a barrier", arrived)
	}
	flush()
	res.WallCycles = float64(wall)
	appendTailPhase(&res, sys, float64(phaseStart), phaseBase)
	assemble(&res, tr.Instructions(), refs, tTotal, sys)
	return res, nil
}

// appendTailPhase records the work after the last barrier (if any) as a
// final phase entry.
func appendTailPhase(res *RunResult, sys *System, phaseStart float64, phaseBase Stats) {
	if tail := sys.Stats().Minus(phaseBase); tail.Refs > 0 || res.WallCycles > phaseStart {
		res.Phases = append(res.Phases, PhaseStats{
			Index:      len(res.Phases),
			StartCycle: phaseStart,
			EndCycle:   res.WallCycles,
			Stats:      tail,
		})
	}
}

// assemble fills the derived result fields from the run's final counters.
// Every engine (sequential, reference, parallel, streaming) funnels through
// it so the derived arithmetic is shared and bit-identical.
func assemble(res *RunResult, instructions, refs uint64, tTotal float64, sys *System) {
	res.Instructions = instructions
	res.MemoryRefs = refs
	if instructions > 0 {
		res.EInstr = res.WallCycles / float64(instructions)
	}
	res.Seconds = res.EInstr / (sys.Config().ClockMHz * 1e6)
	if refs > 0 {
		res.AvgT = tTotal / float64(refs)
	}
	res.Stats = sys.Stats()
	for c := 0; c < int(numClasses); c++ {
		if res.Stats.Refs > 0 {
			res.ClassShare[c] = float64(res.Stats.ClassCounts[c]) / float64(res.Stats.Refs)
		}
	}
	if res.Stats.TotalBusCycles > 0 {
		res.CoherenceShare = res.Stats.CoherenceBusCycles / res.Stats.TotalBusCycles
	}
	if res.WallCycles > 0 {
		if sys.netBus != nil {
			res.NetUtilization = sys.netBus.Utilization(res.WallCycles)
		} else if len(sys.netPorts) > 0 {
			var busy float64
			for _, p := range sys.netPorts {
				busy += p.BusyCycles()
			}
			res.NetUtilization = busy / (res.WallCycles * float64(len(sys.netPorts)))
		}
	}
}

// Simulate is the one-call convenience wrapper: build the system for cfg
// and drive it with the trace.
func Simulate(tr *trace.Trace, cfg machine.Config) (RunResult, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return RunResult{}, err
	}
	return Run(tr, sys)
}
