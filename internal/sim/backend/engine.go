package backend

import (
	"fmt"

	"memhier/internal/machine"
	"memhier/internal/trace"
)

// RunResult summarizes one simulated execution.
type RunResult struct {
	Config       string
	WallCycles   float64 // completion time of the slowest processor
	Instructions uint64  // m + M across all processors
	MemoryRefs   uint64
	// EInstr is wall time divided by total instructions: the simulated
	// counterpart of the model's E(Instr) (eq. 4), in cycles.
	EInstr float64
	// Seconds converts EInstr with the configured clock.
	Seconds float64
	// AvgT is the observed average memory access time per reference.
	AvgT float64
	// BarrierWaitCycles is the total time processors spent blocked at
	// barriers.
	BarrierWaitCycles float64
	Barriers          uint64

	Stats Stats
	// Phases profiles the barrier-delimited bulk-synchronous phases: one
	// entry per barrier interval plus a final entry for work after the
	// last barrier (if any). Where the cycles go, phase by phase.
	Phases []PhaseStats
	// ClassShare[c] is the fraction of references served by class c.
	ClassShare [numClasses]float64
	// CoherenceShare is the fraction of memory-bus cycles spent on
	// coherence transactions (the paper reports 2.1–7.2% on SMPs).
	CoherenceShare float64
	// NetUtilization is network busy time over wall time (0 for an SMP).
	NetUtilization float64
}

// PhaseStats profiles one barrier-delimited phase of the execution.
type PhaseStats struct {
	Index       int
	StartCycle  float64
	EndCycle    float64 // the barrier-release instant (or final wall time)
	BarrierWait float64 // total processor-cycles waiting at the closing barrier
	Stats       Stats   // counter deltas for the phase
}

// Cycles returns the phase's wall-clock span.
func (p PhaseStats) Cycles() float64 { return p.EndCycle - p.StartCycle }

// cpuState tracks one processor's progress through its stream.
type cpuState struct {
	clock float64
	next  int // index into stream events
}

// Run drives the system with the trace, interleaving processors in global
// time order, and returns the execution summary. The trace must have one
// stream per simulated processor and balanced barriers.
//
// The scheduler is a value-typed min-heap keyed on (clock, cpu) with
// event-run batching: after popping the earliest processor, its events keep
// executing inline while its clock stays ahead of the second-smallest heap
// key, so a long compute/cache-hit run between barriers costs one heap
// operation instead of one pop+push per event. Results are identical to the
// unbatched reference executor (see TestRunMatchesReference).
func Run(tr *trace.Trace, sys *System) (RunResult, error) {
	want := sys.Config().TotalProcs()
	if tr.NumCPU() != want {
		return RunResult{}, fmt.Errorf("backend: trace has %d streams, %s simulates %d processors",
			tr.NumCPU(), sys.Config().Name, want)
	}
	if err := tr.Validate(); err != nil {
		return RunResult{}, err
	}

	states := make([]cpuState, want)
	q := make(cpuQueue, 0, want)
	for i := 0; i < want; i++ {
		// All clocks are zero and CPUs ascend, so the slice is already a
		// valid heap.
		q = append(q, heapEnt{cpu: int32(i)})
	}

	var res RunResult
	res.Config = sys.Config().Name
	if nb := tr.Streams[0].Barriers(); nb > 0 {
		// One phase per barrier plus the tail; pre-sizing skips the append
		// growth chain (PhaseStats is a couple hundred bytes).
		res.Phases = make([]PhaseStats, 0, nb+1)
	}
	waiting := make([]int32, 0, want)
	var barrierMax float64
	var phaseStart float64
	var phaseBase Stats

	release := func() {
		// All processors arrived: everyone resumes at the latest arrival.
		res.Barriers++
		var wait float64
		for _, cpu := range waiting {
			w := &states[cpu]
			wait += barrierMax - w.clock
			w.clock = barrierMax
			q.push(heapEnt{clock: barrierMax, cpu: cpu})
		}
		res.BarrierWaitCycles += wait
		cur := sys.Stats()
		res.Phases = append(res.Phases, PhaseStats{
			Index:       len(res.Phases),
			StartCycle:  phaseStart,
			EndCycle:    barrierMax,
			BarrierWait: wait,
			Stats:       cur.Minus(phaseBase),
		})
		phaseStart = barrierMax
		phaseBase = cur
		waiting = waiting[:0]
		barrierMax = 0
	}

	var tStart, tTotal float64
	var refs uint64
	for len(q) > 0 {
		cpu := q.pop().cpu
		st := &states[cpu]
		ev := tr.Streams[cpu].Events
	run:
		for {
			if st.next >= len(ev) {
				// Stream exhausted; the processor halts at its current clock.
				if st.clock > res.WallCycles {
					res.WallCycles = st.clock
				}
				break run
			}
			e := ev[st.next]
			st.next++
			switch e.Kind {
			case trace.Compute:
				st.clock += float64(e.N) * sys.lat.Instruction
			case trace.Read, trace.Write:
				tStart = st.clock
				st.clock = sys.Access(int(cpu), e.Addr, e.Kind == trace.Write, st.clock)
				tTotal += st.clock - tStart
				refs++
			case trace.Barrier:
				if st.clock > barrierMax {
					barrierMax = st.clock
				}
				waiting = append(waiting, cpu)
				if len(waiting) == want {
					release()
				}
				break run
			default:
				return RunResult{}, fmt.Errorf("backend: unknown event kind %d", e.Kind)
			}
			// Batching: keep executing this processor while it is still the
			// earliest — exactly equivalent to pushing it back and popping it
			// again, minus the two heap operations.
			if len(q) > 0 && !entLess(heapEnt{clock: st.clock, cpu: cpu}, q[0]) {
				q.push(heapEnt{clock: st.clock, cpu: cpu})
				break run
			}
		}
	}
	if len(waiting) > 0 {
		return RunResult{}, fmt.Errorf("backend: %d processors stuck at a barrier", len(waiting))
	}
	// Tail phase: work after the last barrier.
	if tail := sys.Stats().Minus(phaseBase); tail.Refs > 0 || res.WallCycles > phaseStart {
		res.Phases = append(res.Phases, PhaseStats{
			Index:      len(res.Phases),
			StartCycle: phaseStart,
			EndCycle:   res.WallCycles,
			Stats:      tail,
		})
	}

	res.Instructions = tr.Instructions()
	res.MemoryRefs = refs
	if res.Instructions > 0 {
		res.EInstr = res.WallCycles / float64(res.Instructions)
	}
	res.Seconds = res.EInstr / (sys.Config().ClockMHz * 1e6)
	if refs > 0 {
		res.AvgT = tTotal / float64(refs)
	}
	res.Stats = sys.Stats()
	for c := 0; c < int(numClasses); c++ {
		if res.Stats.Refs > 0 {
			res.ClassShare[c] = float64(res.Stats.ClassCounts[c]) / float64(res.Stats.Refs)
		}
	}
	if res.Stats.TotalBusCycles > 0 {
		res.CoherenceShare = res.Stats.CoherenceBusCycles / res.Stats.TotalBusCycles
	}
	if res.WallCycles > 0 {
		if sys.netBus != nil {
			res.NetUtilization = sys.netBus.Utilization(res.WallCycles)
		} else if len(sys.netPorts) > 0 {
			var busy float64
			for _, p := range sys.netPorts {
				busy += p.BusyCycles()
			}
			res.NetUtilization = busy / (res.WallCycles * float64(len(sys.netPorts)))
		}
	}
	return res, nil
}

// Simulate is the one-call convenience wrapper: build the system for cfg
// and drive it with the trace.
func Simulate(tr *trace.Trace, cfg machine.Config) (RunResult, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return RunResult{}, err
	}
	return Run(tr, sys)
}
