package backend

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"memhier/internal/machine"
)

// deepLevels returns a 2- or 3-level hierarchy whose L1 matches the test
// helpers' 4KB cache, so a config can be upgraded in place.
func deepLevels(n int) []machine.CacheLevel {
	lv := []machine.CacheLevel{
		{Bytes: 4 << 10, LatencyCycles: 1},
		{Bytes: 16 << 10, LatencyCycles: 6},
		{Bytes: 64 << 10, LatencyCycles: 18},
	}
	return lv[:n]
}

// withLevels upgrades one of the flat test configs to an n-level hierarchy.
func withLevels(cfg machine.Config, n int) machine.Config {
	cfg.Levels = deepLevels(n)
	cfg.CacheBytes = cfg.Levels[0].Bytes
	cfg.Name = cfg.Name + "-deep"
	return cfg
}

// TestDeepRunMatchesReference is the multi-level analogue of
// TestRunMatchesReference: with 2- and 3-level private hierarchies on every
// platform kind, the batched engine and the parallel engine at several
// worker counts must match the unbatched reference executor bit for bit,
// and the coherence invariants (including the deep levels' clean-and-
// unowned rule) must hold at the end of every run.
func TestDeepRunMatchesReference(t *testing.T) {
	cfgs := []machine.Config{
		withLevels(smpConfig(4), 2),
		withLevels(smpConfig(4), 3),
		withLevels(wsConfig(4, machine.NetBus100), 3),
		withLevels(csmpConfig(2, 2, machine.NetSwitch155), 2),
		withLevels(csmpConfig(2, 2, machine.NetSwitch155), 3),
	}
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 4, 5, 300)
		for _, cfg := range cfgs {
			sysA, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := referenceRun(tr, sysA)
			if err != nil {
				t.Fatalf("seed %d %s: reference run: %v", seed, cfg.Name, err)
			}
			if err := sysA.VerifyCoherence(); err != nil {
				t.Fatalf("seed %d %s: reference run: %v", seed, cfg.Name, err)
			}
			sysB, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(tr, sysB)
			if err != nil {
				t.Fatalf("seed %d %s: batched Run: %v", seed, cfg.Name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d %s: batched engine diverged from reference:\n got %+v\nwant %+v",
					seed, cfg.Name, got, want)
			}
			if err := sysB.VerifyCoherence(); err != nil {
				t.Errorf("seed %d %s: batched Run: %v", seed, cfg.Name, err)
			}
			for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
				sysC, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				par, err := RunParallel(tr, sysC, workers)
				if err != nil {
					t.Fatalf("seed %d %s: RunParallel(workers=%d): %v", seed, cfg.Name, workers, err)
				}
				if !reflect.DeepEqual(par, want) {
					t.Errorf("seed %d %s: parallel engine (workers=%d) diverged from reference",
						seed, cfg.Name, workers)
				}
				if err := sysC.VerifyCoherence(); err != nil {
					t.Errorf("seed %d %s: RunParallel(workers=%d): %v", seed, cfg.Name, workers, err)
				}
			}
		}
	}
}

// TestDeepLevelsServeTraffic checks that the deep levels actually catch
// L1 victims: a working set that overflows the 4KB L1 but fits in the 16KB
// L2 must produce L2 hits, and a one-level run of the same trace must leave
// every deep-only class at zero.
func TestDeepLevelsServeTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng, 4, 4, 500)

	deepRes, err := Simulate(tr, withLevels(smpConfig(4), 3))
	if err != nil {
		t.Fatal(err)
	}
	if deepRes.Stats.ClassCounts[ClassL2Cache] == 0 {
		t.Error("3-level run recorded no L2 hits")
	}

	flatRes, err := Simulate(tr, smpConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for c := ClassCacheHit; c <= ClassDisk; c++ {
		if c.DeepOnly() && flatRes.Stats.ClassCounts[c] != 0 {
			t.Errorf("1-level run counted %d %v accesses", flatRes.Stats.ClassCounts[c], c)
		}
	}
}

// TestDeepOneLevelUnchanged pins the tentpole's compatibility contract at
// the simulator layer: spelling a config as a 1-element Levels list must
// give bit-identical results to the legacy CacheBytes spelling.
func TestDeepOneLevelUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 4, 4, 300)
	for _, base := range []machine.Config{
		smpConfig(4),
		wsConfig(4, machine.NetBus100),
		csmpConfig(2, 2, machine.NetSwitch155),
	} {
		want, err := Simulate(tr, base)
		if err != nil {
			t.Fatal(err)
		}
		spelled := base
		spelled.Levels = []machine.CacheLevel{{Bytes: base.CacheBytes}}
		got, err := Simulate(tr, spelled)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: 1-element Levels diverged from CacheBytes:\n got %+v\nwant %+v",
				base.Name, got, want)
		}
	}
}

// TestDeepGeometryRejected pins the error for deep capacities the cache
// package's power-of-two geometry cannot express.
func TestDeepGeometryRejected(t *testing.T) {
	cfg := smpConfig(2)
	cfg.Levels = []machine.CacheLevel{
		{Bytes: 4 << 10, LatencyCycles: 1},
		{Bytes: 3<<10 + 32, LatencyCycles: 6}, // not a power-of-two line multiple
	}
	cfg.CacheBytes = cfg.Levels[0].Bytes
	if _, err := NewSystem(cfg); err == nil {
		t.Error("non-power-of-two deep level accepted")
	}
}
