package backend

import (
	"fmt"
	"math"
	"sync"

	"memhier/internal/machine"
	"memhier/internal/sim/cache"
	"memhier/internal/trace"
)

// RunParallel drives the system with the trace on worker goroutines and
// returns a RunResult bit-identical to Run's at any worker count.
//
// The engine is phase-parallel and conservative: processors advance on
// workers, but every shared-resource transaction (a cache miss, a write
// upgrade, a barrier release) retires in global (clock, cpu) order — the
// same order the sequential scan engine uses — under a retirement baton.
// Stream decode (event→op compilation) fans out across the workers before
// simulation starts; inside the simulated run, the baton serializes exactly
// as much as the memory model demands.
//
// On the simulated machines that demand is total: coherence traffic has
// zero lookahead (an invalidation issued at time t rewrites peer cache
// state at that same t), so a reference can only be classified hit or miss
// once every earlier transaction machine-wide has retired. Conservative
// parallel discrete-event simulation under zero lookahead degenerates to
// the critical path, and the critical path here is every memory reference.
// RunParallel therefore buys determinism and a retirement protocol that
// scales with trace decode, not a wall-clock win on coherence-bound traces;
// DESIGN.md ("Phase-parallel execution") carries the full argument.
//
// workers is clamped to [1, NumCPU()] of the trace; one worker — or a
// configuration without the flat integer fast path — falls back to the
// sequential engine, which retires in the identical order.
func RunParallel(tr *trace.Trace, sys *System, workers int) (RunResult, error) {
	if err := checkTrace(tr, sys); err != nil {
		return RunResult{}, err
	}
	want := tr.NumCPU()
	if workers > want {
		workers = want
	}
	if workers <= 1 || want > scanMaxProcs {
		return runSeq(tr, sys)
	}
	hots, ok := sysHots(sys)
	if !ok || !sys.exactLatencies() {
		return runSeq(tr, sys)
	}
	return runParScan(tr, sys, hots, workers)
}

// SimulateParallel is the one-call convenience wrapper for RunParallel,
// mirroring Simulate.
func SimulateParallel(tr *trace.Trace, cfg machine.Config, workers int) (RunResult, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return RunResult{}, err
	}
	return RunParallel(tr, sys, workers)
}

// parShared is the state of one parallel run. Everything below the mutex is
// guarded by it; workers mutate the simulation only while holding the
// retirement baton, which the mutex and ownership test implement together
// (see runParScan).
type parShared struct {
	mu   sync.Mutex
	cond *sync.Cond

	ready  []uint64 // guarded by mu; scan keys, infu parks a processor
	clocks []uint64 // guarded by mu; committed clocks
	nexts  []int    // guarded by mu
	hitNs  []uint64 // guarded by mu; deferred hits, flushed at phase ends

	live       int     // guarded by mu
	arrived    int     // guarded by mu
	barrierMax uint64  // guarded by mu
	phaseStart uint64  // guarded by mu
	phaseBase  Stats   // guarded by mu
	tTotal     float64 // guarded by mu
	refs       uint64  // guarded by mu
	wall       uint64  // guarded by mu

	res  RunResult // guarded by mu
	err  error     // guarded by mu
	done bool      // guarded by mu
}

// runParScan is the parallel counterpart of runSeqScanInt. Worker w owns the
// processors with index ≡ w (mod workers). The global minimum of the scan
// keys names the only processor allowed to touch shared machinery; its owner
// executes one scheduling round — the same round body as the sequential
// engine, hits batched inline, park on the gate — while every other worker
// waits. Because the round executed is always the scan minimum's, the
// retirement sequence is identical to the sequential engine's regardless of
// worker count or goroutine scheduling, which is what makes the result
// bit-identical and the engine deterministic.
func runParScan(tr *trace.Trace, sys *System, hots []cache.Hot, workers int) (RunResult, error) {
	want := tr.NumCPU()
	const infu = math.MaxUint64

	// Parallel stage 1: decode every stream's compiled op form on the
	// worker pool. This is the embarrassingly parallel part of a run, and
	// on a cold trace it is real work (one pass over every event).
	opsPer := make([][]trace.Op, want)
	decErr := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < want; i += workers {
				var err error
				if opsPer[i], err = tr.Streams[i].Ops(); err != nil {
					decErr[w] = err
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range decErr {
		if err != nil {
			return RunResult{}, fmt.Errorf("backend: %w", err)
		}
	}

	ps := &parShared{
		ready:  make([]uint64, want),
		clocks: make([]uint64, want),
		nexts:  make([]int, want),
		hitNs:  make([]uint64, want),
		live:   want,
	}
	ps.cond = sync.NewCond(&ps.mu)
	ps.res.Config = sys.Config().Name
	if nb := tr.Streams[0].Barriers(); nb > 0 {
		ps.res.Phases = make([]PhaseStats, 0, nb+1)
	}

	latInstr := uint64(sys.lat.Instruction)
	latHit := uint64(sys.lat.CacheHit)
	fLatHit := sys.lat.CacheHit
	stats := &sys.stats

	// flushLocked and releaseLocked mirror runSeqScanInt exactly; both run
	// with the baton (ps.mu) held by the calling worker — the Locked suffix
	// is the repo-wide caller-holds-the-lock contract — so the shared
	// System is quiescent and the float accumulation order matches the
	// sequential engine's.
	flushLocked := func() {
		var total uint64
		for i, n := range ps.hitNs {
			if n != 0 {
				*hots[i].Hits += n
				ps.hitNs[i] = 0
				total += n
			}
		}
		if total != 0 {
			stats.Refs += total
			stats.ClassCounts[ClassCacheHit] += total
			d := float64(total) * fLatHit
			stats.ClassCycles[ClassCacheHit] += d
			ps.tTotal += d
			ps.refs += total
		}
	}
	releaseLocked := func() {
		flushLocked()
		ps.res.Barriers++
		var wait uint64
		for i := range ps.clocks {
			wait += ps.barrierMax - ps.clocks[i]
			ps.clocks[i] = ps.barrierMax
			key := ps.barrierMax
			if n, ops := ps.nexts[i], opsPer[i]; n < len(ops) {
				key += ops[n].N * latInstr
			}
			ps.ready[i] = key
		}
		ps.live = want
		ps.res.BarrierWaitCycles += float64(wait)
		cur := sys.Stats()
		ps.res.Phases = append(ps.res.Phases, PhaseStats{
			Index:       len(ps.res.Phases),
			StartCycle:  float64(ps.phaseStart),
			EndCycle:    float64(ps.barrierMax),
			BarrierWait: float64(wait),
			Stats:       cur.Minus(ps.phaseBase),
		})
		ps.phaseStart = ps.barrierMax
		ps.phaseBase = cur
		ps.barrierMax = 0
	}

	// finishLocked runs once, by whichever worker retires the last round,
	// with the baton held.
	finishLocked := func() {
		if ps.arrived > 0 {
			ps.err = fmt.Errorf("backend: %d processors stuck at a barrier", ps.arrived)
		} else {
			flushLocked()
			ps.res.WallCycles = float64(ps.wall)
			appendTailPhase(&ps.res, sys, float64(ps.phaseStart), ps.phaseBase)
			assemble(&ps.res, tr.Instructions(), ps.refs, ps.tTotal, sys)
		}
		ps.done = true
		ps.cond.Broadcast()
	}

	worker := func(id int) {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		for {
			if ps.done {
				return
			}
			// The scan: minimum and runner-up over the ready keys, lowest
			// index winning ties — identical to the sequential engine.
			bi := 0
			bc := ps.ready[0]
			si := 0
			sc := uint64(infu)
			for i := 1; i < want; i++ {
				c := ps.ready[i]
				if c < bc {
					sc, si = bc, bi
					bc, bi = c, i
				} else if c < sc {
					sc, si = c, i
				}
			}
			if bi%workers != id {
				// Not this worker's processor: park until the owner retires
				// its round and republishes the keys.
				ps.cond.Wait()
				continue
			}

			// This worker holds the baton: execute one scheduling round for
			// bi. The mutex stays held — every peer is either in Wait or
			// about to scan and wait — so the System, caches, and result
			// accumulators are exclusively this worker's for the round, and
			// the round body below is the sequential engine's, verbatim.
			clock := ps.clocks[bi]
			next := ps.nexts[bi]
			ops := opsPer[bi]
			hn := ps.hitNs[bi]
			h := &hots[bi]
			shift := h.Shift
			mask := h.Mask
			ways := h.Ways
		round:
			for {
				if next >= len(ops) {
					if clock > ps.wall {
						ps.wall = clock
					}
					ps.ready[bi] = infu
					ps.hitNs[bi] = hn
					ps.clocks[bi] = clock
					ps.nexts[bi] = next
					ps.live--
					break round
				}
				op := ops[next]
				next++
				kind := op.Arg & 3
				if kind == trace.OpNone {
					clock += op.N * latInstr
					continue
				}
				if kind == trace.OpBarrier {
					clock += op.N * latInstr
					if clock > ps.barrierMax {
						ps.barrierMax = clock
					}
					ps.clocks[bi] = clock
					ps.nexts[bi] = next
					ps.ready[bi] = infu
					ps.hitNs[bi] = hn
					ps.live--
					ps.arrived++
					if ps.arrived == want {
						ps.arrived = 0
						releaseLocked()
					}
					break round
				}
				t := clock + op.N*latInstr
				if t > sc || (t == sc && bi >= si) {
					ps.nexts[bi] = next - 1
					ps.clocks[bi] = clock
					ps.ready[bi] = t
					ps.hitNs[bi] = hn
					break round
				}
				clock = t
				addr := op.Arg >> 2
				tag := addr >> shift
				base := (tag & mask) << 1
				w1 := ways[base+1]
				w0 := ways[base]
				hit0 := (w0^(tag<<3))&^4-1 < 3
				hit1 := (w1^(tag<<3))&^4-1 < 3
				w := uint64(0)
				if hit1 {
					w = w1
				}
				if hit0 {
					w = w0
				}
				if w != 0 {
					nm := w0 | 4
					if hit0 {
						nm = w0 &^ 4
					}
					ways[base] = nm
					if m := (kind^trace.OpWrite)<<2 | (w&3 ^ 3); m-1 >= 3 {
						hn++
						clock += latHit
					} else {
						*h.Hits++
						stats.Refs++
						fc := float64(clock)
						done := sys.accessRest(bi, addr, true, fc, cache.State(w&3), true)
						ps.tTotal += done - fc
						ps.refs++
						clock = uint64(done)
					}
				} else {
					*h.Misses++
					stats.Refs++
					fc := float64(clock)
					done := sys.accessRest(bi, addr, kind == trace.OpWrite, fc, cache.Invalid, false)
					ps.tTotal += done - fc
					ps.refs++
					clock = uint64(done)
				}
				if clock > sc || (clock == sc && bi >= si) {
					ps.clocks[bi] = clock
					ps.nexts[bi] = next
					key := clock
					if next < len(ops) {
						key += ops[next].N * latInstr
					}
					ps.ready[bi] = key
					ps.hitNs[bi] = hn
					break round
				}
			}

			if ps.live == 0 {
				finishLocked()
				return
			}
			// Hand the baton to whichever worker owns the new minimum.
			ps.cond.Broadcast()
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(w)
		}(w)
	}
	wg.Wait()
	if ps.err != nil {
		return RunResult{}, ps.err
	}
	return ps.res, nil
}
