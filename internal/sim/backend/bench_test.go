package backend

import (
	"runtime"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

func benchTraceFor(b *testing.B, nproc int) *trace.Trace {
	b.Helper()
	w := workloads.NewRadix(1<<14, 64)
	tr, err := workloads.GenerateTrace(w, nproc)
	if err != nil {
		b.Fatal(err)
	}
	// Prime the per-stream op compilation outside the timer: the Simulate
	// benchmarks track the engine, and a validation sweep simulates one
	// compiled trace across many configurations. Cold decode cost is
	// tracked separately (BenchmarkStreamRun).
	for _, s := range tr.Streams {
		s.Ops()
	}
	return tr
}

func BenchmarkSimulateSMPBus(b *testing.B) {
	tr := benchTraceFor(b, 4)
	cfg := smpConfig(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.MemoryRefs()), "refs")
}

func BenchmarkSimulateClusterWSBus(b *testing.B) {
	tr := benchTraceFor(b, 4)
	cfg := wsConfig(4, machine.NetBus100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateClusterWSSwitch(b *testing.B) {
	tr := benchTraceFor(b, 4)
	cfg := wsConfig(4, machine.NetSwitch155)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateClusterSMP(b *testing.B) {
	tr := benchTraceFor(b, 4)
	cfg := csmpConfig(2, 2, machine.NetSwitch155)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSMPBusDeep3 is BenchmarkSimulateSMPBus on a 3-level
// hierarchy: same trace, same coherence, plus the exclusive victim stack in
// front of memory. The pair bounds what the deep path costs the engine.
func BenchmarkSimulateSMPBusDeep3(b *testing.B) {
	tr := benchTraceFor(b, 4)
	cfg := withLevels(smpConfig(4), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.MemoryRefs()), "refs")
}

// BenchmarkSimulateClusterSMPDeep2 tracks the deep path under the DSM
// protocol, where the L2 probe sits between the snoop and the directory.
func BenchmarkSimulateClusterSMPDeep2(b *testing.B) {
	tr := benchTraceFor(b, 4)
	cfg := withLevels(csmpConfig(2, 2, machine.NetSwitch155), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunParallel tracks the phase-parallel engine A/B against
// BenchmarkSimulateSMPBus (same trace and configuration, sequential
// engine). bench.sh runs it under several -cpu values so per-core scaling
// is visible across BENCH_*.json snapshots.
func BenchmarkRunParallel(b *testing.B) {
	tr := benchTraceFor(b, 4)
	cfg := smpConfig(4)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateParallel(tr, cfg, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamRun(b *testing.B) {
	w := workloads.NewRadix(1<<14, 64)
	cfg := wsConfig(4, machine.NetBus100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := StreamRun(sys, 4, func(sink trace.Sink) error {
			return w.Run(4, sink)
		}, WithEventHint(w.EventHint(4))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccessCacheHit(b *testing.B) {
	sys, err := NewSystem(smpConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	sys.Access(0, 64, false, 0)
	b.ResetTimer()
	now := 1.0
	for i := 0; i < b.N; i++ {
		now = sys.Access(0, 64, false, now)
	}
}
