package backend

import (
	"reflect"
	"sync"
	"testing"

	"memhier/internal/machine"
	"memhier/internal/workloads"
)

// TestSimulateDeterministicUnderConcurrency pins the pipeline's
// determinism contract on the simulator side: simulating the same shared,
// read-only trace from many goroutines at once yields a RunResult deeply
// equal to a serial reference run — the heap's FIFO tiebreak
// (cpuHeap.order) leaves no room for scheduling to leak into results.
func TestSimulateDeterministicUnderConcurrency(t *testing.T) {
	cfg, err := machine.ByName("C5") // 4-processor SMP
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = cfg.Scaled(16)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("fft", workloads.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workloads.GenerateTrace(w, cfg.TotalProcs())
	if err != nil {
		t.Fatal(err)
	}

	ref, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const runs = 8
	results := make([]RunResult, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Simulate(tr, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(ref, results[i]) {
			t.Errorf("run %d: RunResult diverged from serial reference\nref: %+v\ngot: %+v",
				i, ref, results[i])
		}
	}
}
