// Package memory models a machine's main-memory capacity as an LRU-managed
// set of resident pages backed by disk: the level-2/level-4 capacity of the
// paper's hierarchy. An access to a non-resident page costs a disk transfer
// and displaces the least recently used page.
//
//chc:deterministic
package memory

import "fmt"

// PageSize is the residency granule in bytes.
const PageSize = 4096

// slot is one resident page in the intrusive LRU list. Slots live in a
// single slice and link by index, so steady-state residency tracking does
// no per-page allocation (unlike container/list, which allocates an
// Element per insertion on the simulator's hot path).
type slot struct {
	page       uint64
	prev, next int32 // slot indexes; -1 terminates
	dirty      bool
}

// Memory tracks page residency with LRU replacement and per-page dirty
// bits: evicting a dirty page costs a disk write on top of the fill read.
type Memory struct {
	capacity int // pages
	pages    map[uint64]int32
	slots    []slot
	head     int32 // most recently used; -1 when empty
	tail     int32 // least recently used; -1 when empty

	faults     uint64
	accesses   uint64
	writebacks uint64
}

// New returns a memory of the given byte capacity (at least one page).
func New(bytes int64) *Memory {
	pages := int(bytes / PageSize)
	if pages < 1 {
		pages = 1
	}
	// Pre-size the residency structures up to a bound: small memories
	// (validation configurations) never grow them again, and paper-scale
	// capacities start from a sensible floor instead of rehashing their
	// way up through the fault path.
	hint := pages
	if hint > 1<<16 {
		hint = 1 << 16
	}
	return &Memory{
		capacity: pages,
		pages:    make(map[uint64]int32, hint),
		slots:    make([]slot, 0, hint),
		head:     -1,
		tail:     -1,
	}
}

// Pages returns the page capacity.
func (m *Memory) Pages() int { return m.capacity }

// unlink removes slot i from the LRU list.
func (m *Memory) unlink(i int32) {
	s := &m.slots[i]
	if s.prev >= 0 {
		m.slots[s.prev].next = s.next
	} else {
		m.head = s.next
	}
	if s.next >= 0 {
		m.slots[s.next].prev = s.prev
	} else {
		m.tail = s.prev
	}
}

// toFront makes slot i the most recently used.
func (m *Memory) toFront(i int32) {
	if m.head == i {
		return
	}
	m.unlink(i)
	s := &m.slots[i]
	s.prev = -1
	s.next = m.head
	if m.head >= 0 {
		m.slots[m.head].prev = i
	}
	m.head = i
	if m.tail < 0 {
		m.tail = i
	}
}

// Touch accesses the page holding addr. It reports whether the page was
// resident; on a fault the page is brought in, evicting the LRU page if
// the memory is full.
func (m *Memory) Touch(addr uint64) (resident bool) {
	resident, _ = m.TouchW(addr, false)
	return resident
}

// TouchW accesses the page holding addr, marking it dirty on a write. On a
// fault it brings the page in, evicting the LRU page if the memory is
// full; evictedDirty reports whether that victim needed a disk write-back.
func (m *Memory) TouchW(addr uint64, write bool) (resident, evictedDirty bool) {
	m.accesses++
	page := addr / PageSize
	if i, ok := m.pages[page]; ok {
		m.toFront(i)
		if write {
			m.slots[i].dirty = true
		}
		return true, false
	}
	m.faults++
	var i int32
	if len(m.slots) < m.capacity {
		i = int32(len(m.slots))
		m.slots = append(m.slots, slot{})
	} else {
		// Full: reuse the LRU victim's slot.
		i = m.tail
		victim := &m.slots[i]
		if victim.dirty {
			evictedDirty = true
			m.writebacks++
		}
		delete(m.pages, victim.page)
		m.unlink(i)
	}
	m.slots[i] = slot{page: page, prev: -1, next: m.head, dirty: write}
	if m.head >= 0 {
		m.slots[m.head].prev = i
	}
	m.head = i
	if m.tail < 0 {
		m.tail = i
	}
	m.pages[page] = i
	return false, evictedDirty
}

// Writebacks returns the number of dirty pages written back on eviction.
func (m *Memory) Writebacks() uint64 { return m.writebacks }

// Resident returns the number of resident pages.
func (m *Memory) Resident() int { return len(m.pages) }

// Faults returns the number of page faults (disk transfers).
func (m *Memory) Faults() uint64 { return m.faults }

// Accesses returns the number of Touch calls.
func (m *Memory) Accesses() uint64 { return m.accesses }

// String summarizes occupancy.
func (m *Memory) String() string {
	return fmt.Sprintf("memory{%d/%d pages, %d faults}", len(m.pages), m.capacity, m.faults)
}
