// Package memory models a machine's main-memory capacity as an LRU-managed
// set of resident pages backed by disk: the level-2/level-4 capacity of the
// paper's hierarchy. An access to a non-resident page costs a disk transfer
// and displaces the least recently used page.
//
//chc:deterministic
package memory

import (
	"fmt"
	"math/bits"
)

// PageSize is the residency granule in bytes.
const PageSize = 4096

// slot is one resident page in the intrusive LRU list. Slots live in a
// single slice and link by index, so steady-state residency tracking does
// no per-page allocation (unlike container/list, which allocates an
// Element per insertion on the simulator's hot path).
type slot struct {
	page       uint64
	prev, next int32 // LRU list links; slot indexes, -1 terminates
	hnext      int32 // hash-chain link; slot index, -1 terminates
	dirty      bool
}

// Memory tracks page residency with LRU replacement and per-page dirty
// bits: evicting a dirty page costs a disk write on top of the fill read.
//
// Residency lookups go through an intrusive chained hash table (buckets of
// slot indexes linked by slot.hnext) instead of a Go map: the simulator
// touches memory on every cache miss, and the map's hashing and bucket
// probing dominated that path.
type Memory struct {
	capacity int // pages
	buckets  []int32
	mask     uint64
	slots    []slot
	head     int32 // most recently used; -1 when empty
	tail     int32 // least recently used; -1 when empty
	resident int

	faults     uint64
	accesses   uint64
	writebacks uint64
}

// New returns a memory of the given byte capacity (at least one page).
func New(bytes int64) *Memory {
	pages := int(bytes / PageSize)
	if pages < 1 {
		pages = 1
	}
	// Bucket count: roughly two buckets per resident page keeps chains at
	// one or two links, capped so paper-scale capacities don't front-load
	// megabytes of table (longer chains there are still cheap).
	hint := pages
	if hint > 1<<16 {
		hint = 1 << 16
	}
	nb := 1 << bits.Len(uint(2*hint-1))
	if nb < 64 {
		nb = 64
	}
	buckets := make([]int32, nb)
	for i := range buckets {
		buckets[i] = -1
	}
	return &Memory{
		capacity: pages,
		buckets:  buckets,
		mask:     uint64(nb - 1),
		slots:    make([]slot, 0, hint),
		head:     -1,
		tail:     -1,
	}
}

// Pages returns the page capacity.
func (m *Memory) Pages() int { return m.capacity }

func (m *Memory) bucket(page uint64) *int32 {
	return &m.buckets[(page*0x9E3779B97F4A7C15>>32)&m.mask]
}

// find returns the slot index holding page, or -1.
func (m *Memory) find(page uint64) int32 {
	for i := *m.bucket(page); i >= 0; i = m.slots[i].hnext {
		if m.slots[i].page == page {
			return i
		}
	}
	return -1
}

// chainRemove unlinks slot i (holding page) from its hash chain.
func (m *Memory) chainRemove(i int32) {
	p := m.bucket(m.slots[i].page)
	for *p != i {
		p = &m.slots[*p].hnext
	}
	*p = m.slots[i].hnext
}

// unlink removes slot i from the LRU list.
func (m *Memory) unlink(i int32) {
	s := &m.slots[i]
	if s.prev >= 0 {
		m.slots[s.prev].next = s.next
	} else {
		m.head = s.next
	}
	if s.next >= 0 {
		m.slots[s.next].prev = s.prev
	} else {
		m.tail = s.prev
	}
}

// toFront makes slot i the most recently used.
func (m *Memory) toFront(i int32) {
	if m.head == i {
		return
	}
	m.unlink(i)
	s := &m.slots[i]
	s.prev = -1
	s.next = m.head
	if m.head >= 0 {
		m.slots[m.head].prev = i
	}
	m.head = i
	if m.tail < 0 {
		m.tail = i
	}
}

// Touch accesses the page holding addr. It reports whether the page was
// resident; on a fault the page is brought in, evicting the LRU page if
// the memory is full.
func (m *Memory) Touch(addr uint64) (resident bool) {
	resident, _ = m.TouchW(addr, false)
	return resident
}

// TouchW accesses the page holding addr, marking it dirty on a write. On a
// fault it brings the page in, evicting the LRU page if the memory is
// full; evictedDirty reports whether that victim needed a disk write-back.
func (m *Memory) TouchW(addr uint64, write bool) (resident, evictedDirty bool) {
	m.accesses++
	page := addr / PageSize
	if i := m.find(page); i >= 0 {
		m.toFront(i)
		if write {
			m.slots[i].dirty = true
		}
		return true, false
	}
	m.faults++
	var i int32
	if len(m.slots) < m.capacity {
		i = int32(len(m.slots))
		m.slots = append(m.slots, slot{})
		m.resident++
	} else {
		// Full: reuse the LRU victim's slot.
		i = m.tail
		victim := &m.slots[i]
		if victim.dirty {
			evictedDirty = true
			m.writebacks++
		}
		m.chainRemove(i)
		m.unlink(i)
	}
	b := m.bucket(page)
	m.slots[i] = slot{page: page, prev: -1, next: m.head, hnext: *b, dirty: write}
	*b = i
	if m.head >= 0 {
		m.slots[m.head].prev = i
	}
	m.head = i
	if m.tail < 0 {
		m.tail = i
	}
	return false, evictedDirty
}

// Writebacks returns the number of dirty pages written back on eviction.
func (m *Memory) Writebacks() uint64 { return m.writebacks }

// Resident returns the number of resident pages.
func (m *Memory) Resident() int { return m.resident }

// Faults returns the number of page faults (disk transfers).
func (m *Memory) Faults() uint64 { return m.faults }

// Accesses returns the number of Touch calls.
func (m *Memory) Accesses() uint64 { return m.accesses }

// String summarizes occupancy.
func (m *Memory) String() string {
	return fmt.Sprintf("memory{%d/%d pages, %d faults}", m.resident, m.capacity, m.faults)
}
