// Package memory models a machine's main-memory capacity as an LRU-managed
// set of resident pages backed by disk: the level-2/level-4 capacity of the
// paper's hierarchy. An access to a non-resident page costs a disk transfer
// and displaces the least recently used page.
package memory

import (
	"container/list"
	"fmt"
)

// PageSize is the residency granule in bytes.
const PageSize = 4096

// Memory tracks page residency with LRU replacement and per-page dirty
// bits: evicting a dirty page costs a disk write on top of the fill read.
type Memory struct {
	capacity int // pages
	order    *list.List
	pages    map[uint64]*list.Element
	dirty    map[uint64]bool

	faults     uint64
	accesses   uint64
	writebacks uint64
}

// New returns a memory of the given byte capacity (at least one page).
func New(bytes int64) *Memory {
	pages := int(bytes / PageSize)
	if pages < 1 {
		pages = 1
	}
	return &Memory{
		capacity: pages,
		order:    list.New(),
		pages:    make(map[uint64]*list.Element, pages),
		dirty:    make(map[uint64]bool, pages),
	}
}

// Pages returns the page capacity.
func (m *Memory) Pages() int { return m.capacity }

// Touch accesses the page holding addr. It reports whether the page was
// resident; on a fault the page is brought in, evicting the LRU page if
// the memory is full.
func (m *Memory) Touch(addr uint64) (resident bool) {
	resident, _ = m.TouchW(addr, false)
	return resident
}

// TouchW accesses the page holding addr, marking it dirty on a write. On a
// fault it brings the page in, evicting the LRU page if the memory is
// full; evictedDirty reports whether that victim needed a disk write-back.
func (m *Memory) TouchW(addr uint64, write bool) (resident, evictedDirty bool) {
	m.accesses++
	page := addr / PageSize
	if e, ok := m.pages[page]; ok {
		m.order.MoveToFront(e)
		if write {
			m.dirty[page] = true
		}
		return true, false
	}
	m.faults++
	if m.order.Len() >= m.capacity {
		back := m.order.Back()
		victim := back.Value.(uint64)
		if m.dirty[victim] {
			evictedDirty = true
			m.writebacks++
			delete(m.dirty, victim)
		}
		delete(m.pages, victim)
		m.order.Remove(back)
	}
	m.pages[page] = m.order.PushFront(page)
	if write {
		m.dirty[page] = true
	}
	return false, evictedDirty
}

// Writebacks returns the number of dirty pages written back on eviction.
func (m *Memory) Writebacks() uint64 { return m.writebacks }

// Resident returns the number of resident pages.
func (m *Memory) Resident() int { return m.order.Len() }

// Faults returns the number of page faults (disk transfers).
func (m *Memory) Faults() uint64 { return m.faults }

// Accesses returns the number of Touch calls.
func (m *Memory) Accesses() uint64 { return m.accesses }

// String summarizes occupancy.
func (m *Memory) String() string {
	return fmt.Sprintf("memory{%d/%d pages, %d faults}", m.order.Len(), m.capacity, m.faults)
}
