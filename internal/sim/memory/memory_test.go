package memory

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTouchFaultsAndResidency(t *testing.T) {
	m := New(2 * PageSize)
	if m.Pages() != 2 {
		t.Fatalf("Pages = %d", m.Pages())
	}
	if m.Touch(0) {
		t.Error("cold touch resident")
	}
	if !m.Touch(100) {
		t.Error("same page faulted")
	}
	if m.Touch(PageSize) {
		t.Error("second page resident")
	}
	if m.Resident() != 2 || m.Faults() != 2 || m.Accesses() != 3 {
		t.Errorf("state: resident=%d faults=%d accesses=%d", m.Resident(), m.Faults(), m.Accesses())
	}
}

func TestLRUReplacement(t *testing.T) {
	m := New(2 * PageSize)
	m.Touch(0 * PageSize)
	m.Touch(1 * PageSize)
	m.Touch(0 * PageSize)       // page 0 now MRU
	m.Touch(2 * PageSize)       // evicts page 1
	if !m.Touch(0 * PageSize) { // still resident
		t.Error("MRU page evicted")
	}
	if m.Touch(1 * PageSize) { // was evicted
		t.Error("LRU page survived")
	}
}

func TestMinimumOnePage(t *testing.T) {
	m := New(10) // less than a page
	if m.Pages() != 1 {
		t.Errorf("Pages = %d, want 1", m.Pages())
	}
	m.Touch(0)
	m.Touch(PageSize)
	if m.Resident() != 1 {
		t.Errorf("resident = %d, want 1", m.Resident())
	}
}

func TestString(t *testing.T) {
	m := New(PageSize)
	if !strings.Contains(m.String(), "pages") {
		t.Errorf("String = %q", m.String())
	}
}

func TestResidencyBounded(t *testing.T) {
	f := func(pages []uint8, capRaw uint8) bool {
		capacity := int64(capRaw%8+1) * PageSize
		m := New(capacity)
		for _, p := range pages {
			m.Touch(uint64(p) * PageSize)
		}
		return m.Resident() <= m.Pages()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetWithinCapacityNeverRefaults(t *testing.T) {
	m := New(8 * PageSize)
	// Warm four pages, then touch them repeatedly: no more faults.
	for i := uint64(0); i < 4; i++ {
		m.Touch(i * PageSize)
	}
	before := m.Faults()
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 4; i++ {
			if !m.Touch(i * PageSize) {
				t.Fatalf("refault of warm page %d", i)
			}
		}
	}
	if m.Faults() != before {
		t.Errorf("faults grew from %d to %d", before, m.Faults())
	}
}

func TestDirtyPageWriteback(t *testing.T) {
	m := New(2 * PageSize)
	if _, d := m.TouchW(0, true); d {
		t.Error("first fault cannot evict")
	}
	m.TouchW(PageSize, false) // clean page
	// Evict the clean page (LRU): no write-back. Page 0 was touched first,
	// so refresh it to make page 1 the victim.
	m.TouchW(0, false)
	if _, d := m.TouchW(2*PageSize, false); d {
		t.Error("clean victim should not write back")
	}
	// Now evict dirty page 0: it is LRU after the last two touches? Order:
	// MRU [2, 0], so touch a new page evicts 0 (dirty).
	if _, d := m.TouchW(3*PageSize, false); !d {
		t.Error("dirty victim should write back")
	}
	if m.Writebacks() != 1 {
		t.Errorf("Writebacks = %d, want 1", m.Writebacks())
	}
	// Re-faulting the written-back page is clean again.
	m.TouchW(0, false)
	m.TouchW(4*PageSize, false)
	if _, d := m.TouchW(5*PageSize, false); d {
		t.Error("page 0 should be clean after its write-back")
	}
}
