// Package interconnect models the contended shared media of the simulated
// platforms: the SMP memory bus, the bus-based (Ethernet) and switch-based
// (ATM) cluster networks, and per-machine I/O buses. A resource serializes
// transfers: a request arriving while the medium is busy waits for it to
// drain, which is exactly how the paper's latency numbers behave (the
// quoted remote latencies are the serialization time of one block
// transfer).
//
//chc:deterministic
package interconnect

// Resource is a single serially-occupied medium.
type Resource struct {
	Name   string
	freeAt float64

	busy     float64 // total occupied cycles
	waited   float64 // total queueing delay imposed
	requests uint64
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Acquire occupies the resource for duration cycles starting no earlier
// than now, returning the completion time. Requests are served in arrival
// order (the engine presents them in global time order).
func (r *Resource) Acquire(now, duration float64) (done float64) {
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.waited += start - now
	r.busy += duration
	r.requests++
	r.freeAt = start + duration
	return r.freeAt
}

// FreeAt returns the time the resource next becomes idle.
func (r *Resource) FreeAt() float64 { return r.freeAt }

// Requests returns the number of transfers served.
func (r *Resource) Requests() uint64 { return r.requests }

// BusyCycles returns the total cycles the medium was occupied.
func (r *Resource) BusyCycles() float64 { return r.busy }

// WaitCycles returns the total queueing delay imposed on requesters.
func (r *Resource) WaitCycles() float64 { return r.waited }

// Utilization returns busy/elapsed for a run of the given length.
func (r *Resource) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := r.busy / elapsed
	if u > 1 {
		u = 1
	}
	return u
}

// MeanWait returns the average queueing delay per request.
func (r *Resource) MeanWait() float64 {
	if r.requests == 0 {
		return 0
	}
	return r.waited / float64(r.requests)
}
