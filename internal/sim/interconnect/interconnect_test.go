package interconnect

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAcquireIdle(t *testing.T) {
	r := NewResource("bus")
	if done := r.Acquire(100, 50); done != 150 {
		t.Errorf("idle acquire done = %v, want 150", done)
	}
	if r.FreeAt() != 150 || r.Requests() != 1 || r.BusyCycles() != 50 {
		t.Errorf("state: freeAt=%v req=%d busy=%v", r.FreeAt(), r.Requests(), r.BusyCycles())
	}
	if r.WaitCycles() != 0 || r.MeanWait() != 0 {
		t.Errorf("idle acquire should not wait: %v", r.WaitCycles())
	}
}

func TestAcquireQueues(t *testing.T) {
	r := NewResource("bus")
	r.Acquire(0, 100)
	// Arrives at 40 while busy until 100: starts at 100.
	if done := r.Acquire(40, 10); done != 110 {
		t.Errorf("queued acquire done = %v, want 110", done)
	}
	if r.WaitCycles() != 60 {
		t.Errorf("wait = %v, want 60", r.WaitCycles())
	}
	if r.MeanWait() != 30 {
		t.Errorf("mean wait = %v, want 30", r.MeanWait())
	}
	// Arrives after it drains: no wait.
	if done := r.Acquire(500, 10); done != 510 {
		t.Errorf("late acquire done = %v, want 510", done)
	}
}

func TestUtilization(t *testing.T) {
	r := NewResource("bus")
	r.Acquire(0, 250)
	if u := r.Utilization(1000); math.Abs(u-0.25) > 1e-12 {
		t.Errorf("utilization = %v, want 0.25", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Errorf("utilization over zero elapsed = %v", u)
	}
	if u := r.Utilization(100); u != 1 {
		t.Errorf("utilization clamp = %v, want 1", u)
	}
}

// TestSerialization checks the core property: total completion of
// back-to-back requests equals the sum of durations.
func TestSerialization(t *testing.T) {
	f := func(durs []uint8) bool {
		r := NewResource("x")
		var sum float64
		var last float64
		for _, d := range durs {
			dur := float64(d%50) + 1
			sum += dur
			last = r.Acquire(0, dur)
		}
		return len(durs) == 0 || math.Abs(last-sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMonotoneCompletion: completions never go backwards when requests
// arrive in time order.
func TestMonotoneCompletion(t *testing.T) {
	f := func(evs []uint16) bool {
		r := NewResource("x")
		now, prevDone := 0.0, 0.0
		for _, e := range evs {
			now += float64(e % 97)
			done := r.Acquire(now, float64(e%13)+1)
			if done < prevDone || done < now {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
