package experiments

import (
	"fmt"
	"io"
	"sync"

	"memhier/internal/core"
	"memhier/internal/machine"
	"memhier/internal/tabulate"
)

// WriteReport renders the full reproduction as a self-contained Markdown
// report: every table and figure with paper-vs-measured commentary, the
// case studies, and the extension experiments. It is the document form of
// WriteAll (`chc-repro -report`).
func WriteReport(w io.Writer, opts Options) error {
	s := NewSuite(opts)

	// The three validation figures dominate the report's cost and are
	// independent; compute them concurrently against the shared Suite
	// (safe: its caches are single-flight) while the front matter renders.
	figs := make([]Validation, 3)
	figErrs := make([]error, 3)
	var figWg sync.WaitGroup
	for i, fig := range []func() (Validation, error){s.Figure2, s.Figure3, s.Figure4} {
		figWg.Add(1)
		go func(i int, fig func() (Validation, error)) {
			defer figWg.Done()
			figs[i], figErrs[i] = fig()
		}(i, fig)
	}

	fmt.Fprintf(w, "# Reproduction report — Du & Zhang, IPPS 1999\n\n")
	fmt.Fprintf(w, "_The Impact of Memory Hierarchies on Cluster Computing._")
	// No wall-clock read here: an implicit timestamp would make every run's
	// report differ. Callers that want one say so through GeneratedAt.
	if opts.GeneratedAt != "" {
		fmt.Fprintf(w, " Generated %s.", opts.GeneratedAt)
	}
	fmt.Fprintf(w, "\n\n")

	section := func(title, narrative string, tables ...*tabulate.Table) {
		fmt.Fprintf(w, "## %s\n\n", title)
		if narrative != "" {
			fmt.Fprintf(w, "%s\n\n", narrative)
		}
		for _, t := range tables {
			fmt.Fprintln(w, "```")
			t.Render(w)
			fmt.Fprintln(w, "```")
			fmt.Fprintln(w)
		}
	}

	section("Table 1 — platform taxonomy",
		"Structural reproduction of the three platform classes and their extra hierarchy levels.",
		Table1())

	_, t2, err := s.Table2()
	if err != nil {
		return err
	}
	section("Table 2 — program characterization",
		"Locality parameters measured from this repository's instrumented kernels at "+
			"data-item granularity, next to the paper's published values. Absolute "+
			"numbers differ (different tracer, compiler model, problem scale); the "+
			"γ ordering FFT < LU < Radix < EDGE and Radix's worst-of-the-scientific-"+
			"kernels locality reproduce.",
		t2, PaperTable2())

	section("Tables 3–5 — configuration catalogs",
		"Exact reproduction of C1–C15.",
		Table3(), Table4(), Table5())

	figWg.Wait()
	for _, err := range figErrs {
		if err != nil {
			return err
		}
	}
	for _, v := range figs {
		section(v.Title,
			fmt.Sprintf("Mean |model−sim| deviation %.1f%%, worst point %.1f%%. "+
				"The paper reports 5–10%% against its own MINT front-end; see "+
				"EXPERIMENTS.md for why the bands differ and which orderings are asserted.",
				v.MeanAbsDiff(), v.MaxAbsDiff()),
			v.Table())
	}

	_, c1, err := Case1(opts.Model)
	if err != nil {
		return err
	}
	_, c2, err := Case2(opts.Model)
	if err != nil {
		return err
	}
	_, c3, err := Case3(2000, opts.Model)
	if err != nil {
		return err
	}
	fftRes, c4, err := CaseFFT4x(opts.Model)
	if err != nil {
		return err
	}
	section("§6 case studies",
		fmt.Sprintf("At $5,000 only workstation platforms are feasible (the paper's premise); "+
			"$20,000 moves Radix to a 4-way SMP (the paper's principle). The FFT "+
			"Ethernet-vs-ATM pair reproduces in direction with a measured factor of %.1f× "+
			"(paper: ≈4×).", fftRes.Ratio),
		c1, c2, c3, c4, Principles())

	_, modern, err := CaseModernNetworks(opts.Model)
	if err != nil {
		return err
	}
	fftWl, _ := core.PaperWorkload("FFT")
	_, gap, err := CaseSpeedGap(fftWl, opts.Model)
	if err != nil {
		return err
	}
	section("Extensions",
		"Beyond-1999 networks (derived from first principles; the cluster/SMP "+
			"recommendation flips at gigabit fabrics) and the quantified "+
			"processor–memory speed gap.",
		modern, gap)

	sc, err := s.ModelVsSimSpeed()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## §5.3 — cost of prediction\n\nOne model evaluation: %v. One simulation: %v. Ratio: %.0f×.\n\n",
		sc.ModelTime, sc.SimTime, sc.Ratio)

	fmt.Fprintf(w, "## Reproduction scope\n\nConfigurations: %d (C1–C15). Programs: %d + TPC-C. ",
		len(machine.Catalog()), len(s.Workloads()))
	fmt.Fprintf(w, "Validation scale: problem sizes at `ScaleSmall`, capacities ÷%d (see EXPERIMENTS.md).\n",
		s.opts.divisor())
	return nil
}
