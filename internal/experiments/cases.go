package experiments

import (
	"fmt"
	"time"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/machine"
	"memhier/internal/stopwatch"
	"memhier/internal/tabulate"
	"memhier/internal/workloads"
)

// CaseResult is one §6 case-study outcome for one workload.
type CaseResult struct {
	Workload string
	Best     cost.Scored
	Feasible int
}

// Case1 reproduces the first §6 case study: the best platform for each
// paper workload under a $5,000 budget (which only covers clusters of
// workstations at 1999 prices).
func Case1(opts core.Options) ([]CaseResult, *tabulate.Table, error) {
	return caseStudy("Case 1: best platform under a $5,000 budget", 5000, opts)
}

// Case2 reproduces the second §6 case study: a $20,000 budget, which opens
// the SMP and cluster-of-SMPs design space.
func Case2(opts core.Options) ([]CaseResult, *tabulate.Table, error) {
	return caseStudy("Case 2: best platform under a $20,000 budget", 20000, opts)
}

func caseStudy(title string, budget float64, opts core.Options) ([]CaseResult, *tabulate.Table, error) {
	t := tabulate.New(title,
		"Program", "Best platform", "Cost $", "E(Instr) cycles", "Feasible configs")
	var out []CaseResult
	for _, wl := range append(core.PaperWorkloads(), core.PaperTPCC()) {
		best, all, err := cost.Optimize(budget, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: case study %q (%s): %w", title, wl.Name, err)
		}
		out = append(out, CaseResult{Workload: wl.Name, Best: best, Feasible: len(all)})
		t.AddRow(wl.Name, best.Config.Name,
			fmt.Sprintf("%.0f", best.Cost),
			fmt.Sprintf("%.3f", best.EInstr),
			fmt.Sprint(len(all)))
	}
	return out, t, nil
}

// Case3 reproduces the third §6 case study: upgrading an existing cluster
// (a two-node 10 Mb Ethernet cluster of 32 MB workstations) with a budget
// increase, for each workload.
func Case3(budgetIncrease float64, opts core.Options) ([]cost.UpgradePlan, *tabulate.Table, error) {
	existing := machine.Config{
		Name: "existing", Kind: machine.ClusterWS, N: 2, Procs: 1,
		CacheBytes: 256 << 10, MemoryBytes: 32 << 20, Net: machine.NetBus10, ClockMHz: 200,
	}
	t := tabulate.New(
		fmt.Sprintf("Case 3: upgrading a 2-node 10Mb cluster with $%.0f", budgetIncrease),
		"Program", "Upgrade to", "Spend $", "Old E(Instr)", "New E(Instr)", "Speedup")
	var plans []cost.UpgradePlan
	for _, wl := range append(core.PaperWorkloads(), core.PaperTPCC()) {
		plan, err := cost.Upgrade(existing, budgetIncrease, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: case 3 (%s): %w", wl.Name, err)
		}
		plans = append(plans, plan)
		t.AddRow(wl.Name, plan.To.Name,
			fmt.Sprintf("%.0f", plan.UpgradeCost),
			fmt.Sprintf("%.3f", plan.OldEInstr),
			fmt.Sprintf("%.3f", plan.NewEInstr),
			fmt.Sprintf("%.2fx", plan.Speedup))
	}
	return plans, t, nil
}

// FFT4xResult quantifies the §6 headline observation.
type FFT4xResult struct {
	EthernetE float64 // 4 workstations, 64 MB each, 10 Mb Ethernet
	ATME      float64 // 3 workstations, 32 MB each, 155 Mb ATM switch
	Ratio     float64 // Ethernet / ATM
}

// CaseFFT4x reproduces the §6 observation that FFT ran about 4× slower on a
// slow Ethernet cluster of four 64 MB workstations than on an ATM cluster
// of three 32 MB workstations of the same cost.
func CaseFFT4x(opts core.Options) (FFT4xResult, *tabulate.Table, error) {
	fft, _ := core.PaperWorkload("FFT")
	eth := machine.Config{Name: "4xWS-10Mb-64MB", Kind: machine.ClusterWS, N: 4, Procs: 1,
		CacheBytes: 256 << 10, MemoryBytes: 64 << 20, Net: machine.NetBus10, ClockMHz: 200}
	atm := machine.Config{Name: "3xWS-ATM-32MB", Kind: machine.ClusterWS, N: 3, Procs: 1,
		CacheBytes: 256 << 10, MemoryBytes: 32 << 20, Net: machine.NetSwitch155, ClockMHz: 200}
	re, err := core.Evaluate(eth, fft, opts)
	if err != nil {
		return FFT4xResult{}, nil, err
	}
	ra, err := core.Evaluate(atm, fft, opts)
	if err != nil {
		return FFT4xResult{}, nil, err
	}
	res := FFT4xResult{EthernetE: re.EInstr, ATME: ra.EInstr, Ratio: re.EInstr / ra.EInstr}
	t := tabulate.New("§6: FFT on two same-cost clusters (paper: Ethernet ≈ 4× slower)",
		"Cluster", "E(Instr) cycles")
	t.AddRow(eth.Name, fmt.Sprintf("%.2f", re.EInstr))
	t.AddRow(atm.Name, fmt.Sprintf("%.2f", ra.EInstr))
	t.AddRow("ratio", fmt.Sprintf("%.2fx", res.Ratio))
	return res, t, nil
}

// Principles renders the §6 classification of the paper's workloads.
func Principles() *tabulate.Table {
	t := tabulate.New("§6 principles: recommended platform per workload class",
		"Program", "gamma", "beta", "Recommendation")
	for _, wl := range append(core.PaperWorkloads(), core.PaperTPCC()) {
		t.AddRow(wl.Name,
			fmt.Sprintf("%.2f", wl.Locality.Gamma),
			fmt.Sprintf("%.2f", wl.Locality.Beta),
			cost.Recommend(wl).String())
	}
	return t
}

// SpeedComparison times one model evaluation against one simulation of the
// same configuration, reproducing the §5.3 observation that the model is
// orders of magnitude cheaper (the paper: 0.5–1 s model vs > 20 min
// simulation).
type SpeedComparison struct {
	ModelTime time.Duration
	SimTime   time.Duration
	Ratio     float64
}

// ModelVsSimSpeed measures the §5.3 cost gap on one representative
// configuration and workload.
func (s *Suite) ModelVsSimSpeed() (SpeedComparison, error) {
	cfg, err := s.scaledConfig(machine.WSCatalog()[1]) // C8
	if err != nil {
		return SpeedComparison{}, err
	}
	w := s.wls[0] // FFT
	char, err := s.characterize(w)
	if err != nil {
		return SpeedComparison{}, err
	}
	wl := ModelWorkload(char)
	tr, err := s.Trace(w, cfg.TotalProcs())
	if err != nil {
		return SpeedComparison{}, err
	}

	elapsed := stopwatch.Start()
	const evals = 100
	for i := 0; i < evals; i++ {
		if _, err := core.Evaluate(cfg, wl, s.opts.Model); err != nil {
			return SpeedComparison{}, err
		}
	}
	modelTime := elapsed() / evals

	elapsed = stopwatch.Start()
	if _, err := s.simulate(tr, cfg); err != nil {
		return SpeedComparison{}, err
	}
	simTime := elapsed()

	sc := SpeedComparison{ModelTime: modelTime, SimTime: simTime}
	if modelTime > 0 {
		sc.Ratio = float64(simTime) / float64(modelTime)
	}
	return sc, nil
}

// Table2Scale regenerates Table 2 at a given problem scale (used to show
// how β grows with the data set, as the paper notes for TPC-C).
func Table2Scale(scale workloads.Scale) (*tabulate.Table, error) {
	s := NewSuite(Options{Scale: scale})
	_, t, err := s.Table2()
	return t, err
}
