package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"memhier/internal/core"
	"memhier/internal/machine"
	"memhier/internal/tabulate"
	"memhier/internal/workloads"
)

// ValidationRow is one modeled-vs-simulated point of Figures 2–4.
type ValidationRow struct {
	Config   string
	Workload string
	ModelE   float64 // modeled E(Instr), cycles
	SimE     float64 // simulated E(Instr), cycles
	DiffPct  float64 // (model − sim) / sim × 100
}

// Validation is one figure's full data set.
type Validation struct {
	Title string
	Rows  []ValidationRow
}

// MeanAbsDiff returns the mean |DiffPct| across the rows.
func (v Validation) MeanAbsDiff() float64 {
	if len(v.Rows) == 0 {
		return 0
	}
	var s float64
	for _, r := range v.Rows {
		s += math.Abs(r.DiffPct)
	}
	return s / float64(len(v.Rows))
}

// MaxAbsDiff returns the largest |DiffPct|.
func (v Validation) MaxAbsDiff() float64 {
	var m float64
	for _, r := range v.Rows {
		if d := math.Abs(r.DiffPct); d > m {
			m = d
		}
	}
	return m
}

// CSV renders the validation rows as comma-separated series (one row per
// config/program point), for plotting the figures.
func (v Validation) CSV() *tabulate.Table {
	t := tabulate.New("", "config", "program", "model_einstr_cycles", "sim_einstr_cycles", "diff_pct")
	for _, r := range v.Rows {
		t.AddRow(r.Config, r.Workload,
			fmt.Sprintf("%g", r.ModelE), fmt.Sprintf("%g", r.SimE), fmt.Sprintf("%g", r.DiffPct))
	}
	return t
}

// Charts renders the validation as per-program bar charts, the visual form
// of the paper's figures: for each program, paired model/sim bars per
// configuration on a log scale.
func (v Validation) Charts() []*tabulate.Chart {
	order := []string{}
	byWl := map[string][]ValidationRow{}
	for _, r := range v.Rows {
		if _, ok := byWl[r.Workload]; !ok {
			order = append(order, r.Workload)
		}
		byWl[r.Workload] = append(byWl[r.Workload], r)
	}
	var out []*tabulate.Chart
	for _, wl := range order {
		c := tabulate.NewChart(fmt.Sprintf("%s — %s (model vs simulation)", v.Title, wl), "cycles")
		c.Log = true
		for _, r := range byWl[wl] {
			c.Add(r.Config+" model", r.ModelE)
			c.Add(r.Config+" sim", r.SimE)
		}
		out = append(out, c)
	}
	return out
}

// Table renders the validation as a text table.
func (v Validation) Table() *tabulate.Table {
	t := tabulate.New(v.Title, "Config", "Program", "Model E(Instr)", "Sim E(Instr)", "diff %")
	for _, r := range v.Rows {
		t.AddRow(r.Config, r.Workload,
			fmt.Sprintf("%.3f", r.ModelE),
			fmt.Sprintf("%.3f", r.SimE),
			fmt.Sprintf("%+.1f", r.DiffPct))
	}
	t.AddRow("", "", "", "mean |diff|", fmt.Sprintf("%.1f", v.MeanAbsDiff()))
	return t
}

// validate runs the model and the simulator for every (config, workload)
// pair on capacity-scaled configurations. The whole pair — trace
// generation, characterization, sharing measurement, model evaluation, and
// simulation — fans out over a bounded worker pool sized by
// runtime.NumCPU; the Suite's single-flight caches guarantee each
// (workload, nproc) trace is generated exactly once even though many pairs
// demand it concurrently. Results keep deterministic order.
func (s *Suite) validate(title string, cfgs []machine.Config) (Validation, error) {
	type job struct {
		name   string
		scaled machine.Config
		wl     workloads.Workload
	}
	var jobs []job
	for _, cfg := range cfgs {
		scaled, err := s.scaledConfig(cfg)
		if err != nil {
			return Validation{}, fmt.Errorf("experiments: %s: %w", cfg.Name, err)
		}
		for _, w := range s.wls {
			jobs = append(jobs, job{name: cfg.Name, scaled: scaled, wl: w})
		}
	}

	rows := make([]ValidationRow, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			j := jobs[i]
			wlName := j.wl.Name()
			char, err := s.characterize(j.wl)
			if err != nil {
				errs[i] = err
				return
			}
			wl := ModelWorkload(char)
			tr, err := s.Trace(j.wl, j.scaled.TotalProcs())
			if err != nil {
				errs[i] = err
				return
			}
			if j.scaled.N > 1 {
				sh := s.sharing(wlName, tr, j.scaled.Procs)
				wl.RemoteShare = sh.RemoteShare
				wl.CoherenceMissRate = sh.CoherenceMissRate
			}
			res, err := core.Evaluate(j.scaled, wl, s.opts.Model)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: model %s/%s: %w", j.scaled.Name, wlName, err)
				return
			}
			sim, err := s.simulate(tr, j.scaled)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: sim %s/%s: %w", j.scaled.Name, wlName, err)
				return
			}
			row := ValidationRow{Config: j.name, Workload: wlName,
				ModelE: res.EInstr, SimE: sim.EInstr}
			if sim.EInstr > 0 {
				row.DiffPct = (res.EInstr - sim.EInstr) / sim.EInstr * 100
			}
			rows[i] = row
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Validation{}, err
		}
	}
	return Validation{Title: title, Rows: rows}, nil
}

// Figure2 reproduces Figure 2: modeled vs simulated E(Instr) on the SMP
// configurations C1–C6 (capacity-scaled; see package comment).
func (s *Suite) Figure2() (Validation, error) {
	return s.validate("Figure 2: modeled vs simulated E(Instr) on SMPs (C1-C6)",
		machine.SMPCatalog())
}

// Figure3 reproduces Figure 3: modeled vs simulated E(Instr) on the
// clusters of workstations C7–C11.
func (s *Suite) Figure3() (Validation, error) {
	return s.validate("Figure 3: modeled vs simulated E(Instr) on clusters of workstations (C7-C11)",
		machine.WSCatalog())
}

// Figure4 reproduces Figure 4: modeled vs simulated E(Instr) on the
// clusters of SMPs C12–C15.
func (s *Suite) Figure4() (Validation, error) {
	return s.validate("Figure 4: modeled vs simulated E(Instr) on clusters of SMPs (C12-C15)",
		machine.SMPClusterCatalog())
}

// CalibrateCoherenceAdjust searches for the remote-rate adjustment δ that
// minimizes the mean |model−sim| difference over the given cluster
// configurations — the repository's analogue of the paper's empirically
// determined 12.4% (§5.3.2). It returns the best δ and the resulting mean
// absolute difference.
func (s *Suite) CalibrateCoherenceAdjust(cfgs []machine.Config, deltas []float64) (float64, float64, error) {
	if len(deltas) == 0 {
		for d := 0.0; d <= 1.0001; d += 0.05 {
			deltas = append(deltas, d)
		}
	}
	bestDelta, bestDiff := 0.0, math.Inf(1)
	saved := s.opts.Model.CoherenceAdjust
	defer func() { s.opts.Model.CoherenceAdjust = saved }()
	for _, d := range deltas {
		s.opts.Model.CoherenceAdjust = d
		if d == 0 {
			s.opts.Model.CoherenceAdjust = -1 // 0 means "paper default"; -1 disables
		}
		v, err := s.validate("calibration", cfgs)
		if err != nil {
			return 0, 0, err
		}
		if diff := v.MeanAbsDiff(); diff < bestDiff {
			bestDiff = diff
			bestDelta = d
		}
	}
	return bestDelta, bestDiff, nil
}
