package experiments

import (
	"sync"
	"testing"
)

// TestSuiteConcurrentAccess hammers the Suite's caches from many
// goroutines. Run under -race it is the regression test for the plain-map
// caches the Suite used to have; the assertions additionally pin the
// single-flight contract: every goroutine sees the same cached value and
// each key is computed exactly once no matter how many demand it at once.
func TestSuiteConcurrentAccess(t *testing.T) {
	s := NewSuite(Options{})
	wls := s.Workloads()
	nprocs := []int{1, 2, 4}
	const goroutines = 16

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, w := range wls {
				for _, np := range nprocs {
					tr, err := s.Trace(w, np)
					if err != nil {
						t.Errorf("Trace(%s, %d): %v", w.Name(), np, err)
						return
					}
					if tr.NumCPU() != np {
						t.Errorf("Trace(%s, %d) has %d streams", w.Name(), np, tr.NumCPU())
						return
					}
					// Exercise the sharing cache too (2 nodes).
					if np > 1 {
						s.sharing(w.Name(), tr, np/2)
					}
				}
				if _, err := s.characterize(w); err != nil {
					t.Errorf("characterize(%s): %v", w.Name(), err)
					return
				}
				if _, err := s.characterizeItem(w); err != nil {
					t.Errorf("characterizeItem(%s): %v", w.Name(), err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Single-flight: each distinct key computed exactly once despite 16
	// goroutines demanding it concurrently.
	if want, got := int64(len(wls)*len(nprocs)), s.traces.computes.Load(); got != want {
		t.Errorf("trace generations = %d, want exactly %d", got, want)
	}
	if want, got := int64(len(wls)*2), s.chars.computes.Load(); got != want {
		t.Errorf("characterizations = %d, want exactly %d", got, want)
	}
	if want, got := int64(len(wls)*2), s.shares.computes.Load(); got != want {
		t.Errorf("sharing measurements = %d, want exactly %d", got, want)
	}

	// Cached pointers are stable: a later demand returns the same trace.
	for _, w := range wls {
		t1, err := s.Trace(w, 2)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := s.Trace(w, 2)
		if err != nil {
			t.Fatal(err)
		}
		if t1 != t2 {
			t.Errorf("%s: trace not cached across calls", w.Name())
		}
	}
}

// TestSuiteConcurrentValidate runs two validation figures concurrently
// against one Suite — the exact shape that raced on the old plain-map
// caches the moment two figures shared a Suite.
func TestSuiteConcurrentValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation matrices")
	}
	s := NewSuite(Options{})
	var wg sync.WaitGroup
	figs := []func() (Validation, error){s.Figure2, s.Figure3}
	vals := make([]Validation, len(figs))
	errs := make([]error, len(figs))
	for i, fig := range figs {
		wg.Add(1)
		go func(i int, fig func() (Validation, error)) {
			defer wg.Done()
			vals[i], errs[i] = fig()
		}(i, fig)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("figure %d: %v", i+2, err)
		}
		if len(vals[i].Rows) == 0 {
			t.Errorf("figure %d: no rows", i+2)
		}
	}
}
