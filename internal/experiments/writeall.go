package experiments

import (
	"fmt"
	"io"

	"memhier/internal/core"
)

// WriteAll renders the complete reproduction — every table, every figure,
// and the §6 case studies — to w. It is what `chc-repro -all` runs.
func WriteAll(w io.Writer, opts Options) error {
	s := NewSuite(opts)

	Table1().Render(w)
	fmt.Fprintln(w)

	if _, t2, err := s.Table2(); err != nil {
		return err
	} else {
		t2.Render(w)
	}
	fmt.Fprintln(w)
	PaperTable2().Render(w)
	fmt.Fprintln(w)

	Table3().Render(w)
	fmt.Fprintln(w)
	Table4().Render(w)
	fmt.Fprintln(w)
	Table5().Render(w)
	fmt.Fprintln(w)

	for _, fig := range []func() (Validation, error){s.Figure2, s.Figure3, s.Figure4} {
		v, err := fig()
		if err != nil {
			return err
		}
		v.Table().Render(w)
		fmt.Fprintln(w)
	}

	if _, t, err := Case1(opts.Model); err != nil {
		return err
	} else {
		t.Render(w)
	}
	fmt.Fprintln(w)
	if _, t, err := Case2(opts.Model); err != nil {
		return err
	} else {
		t.Render(w)
	}
	fmt.Fprintln(w)
	if _, t, err := Case3(2000, opts.Model); err != nil {
		return err
	} else {
		t.Render(w)
	}
	fmt.Fprintln(w)
	if _, t, err := CaseFFT4x(opts.Model); err != nil {
		return err
	} else {
		t.Render(w)
	}
	fmt.Fprintln(w)
	Principles().Render(w)
	fmt.Fprintln(w)
	if _, t, err := CaseModernNetworks(opts.Model); err != nil {
		return err
	} else {
		t.Render(w)
	}
	fmt.Fprintln(w)
	if fft, ok := core.PaperWorkload("FFT"); ok {
		if _, t, err := CaseSpeedGap(fft, opts.Model); err != nil {
			return err
		} else {
			t.Render(w)
		}
		fmt.Fprintln(w)
	}

	sc, err := s.ModelVsSimSpeed()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "§5.3 cost of prediction: model %v per evaluation vs simulation %v (%.0fx)\n",
		sc.ModelTime, sc.SimTime, sc.Ratio)
	return nil
}
