package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"memhier/internal/core"
	"memhier/internal/stopwatch"
)

// Artifact is one independently renderable deliverable of the reproduction
// (a table, a figure, a case study). Artifacts sharing a Suite may render
// concurrently; the Suite's single-flight caches dedup the expensive trace
// and characterization work between them.
type Artifact struct {
	Name string
	// Deterministic reports whether repeated renders produce identical
	// bytes (everything except the wall-clock §5.3 timing comparison).
	Deterministic bool
	Render        func(io.Writer) error
}

// Progress observes artifact completion: name, render duration, and the
// render error (nil on success). Called from the rendering goroutines, so
// implementations must be safe for concurrent use.
type Progress func(name string, d time.Duration, err error)

// Artifacts returns the complete reproduction — every table, every figure,
// and the §6 case studies — as independent render jobs in output order.
func (s *Suite) Artifacts() []Artifact {
	opts := s.opts
	art := func(name string, det bool, render func(io.Writer) error) Artifact {
		return Artifact{Name: name, Deterministic: det, Render: render}
	}
	tab := func(name string, f func() (interface{ Render(io.Writer) }, error)) Artifact {
		return art(name, true, func(w io.Writer) error {
			t, err := f()
			if err != nil {
				return err
			}
			t.Render(w)
			fmt.Fprintln(w)
			return nil
		})
	}
	return []Artifact{
		tab("table1", func() (interface{ Render(io.Writer) }, error) { return Table1(), nil }),
		tab("table2", func() (interface{ Render(io.Writer) }, error) {
			_, t, err := s.Table2()
			return t, err
		}),
		tab("table2-paper", func() (interface{ Render(io.Writer) }, error) { return PaperTable2(), nil }),
		tab("table3", func() (interface{ Render(io.Writer) }, error) { return Table3(), nil }),
		tab("table4", func() (interface{ Render(io.Writer) }, error) { return Table4(), nil }),
		tab("table5", func() (interface{ Render(io.Writer) }, error) { return Table5(), nil }),
		tab("figure2", func() (interface{ Render(io.Writer) }, error) {
			v, err := s.Figure2()
			return v.Table(), err
		}),
		tab("figure3", func() (interface{ Render(io.Writer) }, error) {
			v, err := s.Figure3()
			return v.Table(), err
		}),
		tab("figure4", func() (interface{ Render(io.Writer) }, error) {
			v, err := s.Figure4()
			return v.Table(), err
		}),
		tab("case1", func() (interface{ Render(io.Writer) }, error) {
			_, t, err := Case1(opts.Model)
			return t, err
		}),
		tab("case2", func() (interface{ Render(io.Writer) }, error) {
			_, t, err := Case2(opts.Model)
			return t, err
		}),
		tab("case3", func() (interface{ Render(io.Writer) }, error) {
			_, t, err := Case3(2000, opts.Model)
			return t, err
		}),
		tab("case-fft4x", func() (interface{ Render(io.Writer) }, error) {
			_, t, err := CaseFFT4x(opts.Model)
			return t, err
		}),
		tab("principles", func() (interface{ Render(io.Writer) }, error) { return Principles(), nil }),
		tab("case-modern", func() (interface{ Render(io.Writer) }, error) {
			_, t, err := CaseModernNetworks(opts.Model)
			return t, err
		}),
		art("case-speedgap", true, func(w io.Writer) error {
			fft, ok := core.PaperWorkload("FFT")
			if !ok {
				return nil
			}
			_, t, err := CaseSpeedGap(fft, opts.Model)
			if err != nil {
				return err
			}
			t.Render(w)
			fmt.Fprintln(w)
			return nil
		}),
		art("speed-comparison", false, func(w io.Writer) error {
			sc, err := s.ModelVsSimSpeed()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "§5.3 cost of prediction: model %v per evaluation vs simulation %v (%.0fx)\n",
				sc.ModelTime, sc.SimTime, sc.Ratio)
			return nil
		}),
	}
}

// RenderArtifacts renders the artifacts over a bounded worker pool
// (workers < 1 means runtime.NumCPU) into per-artifact buffers, then
// writes them to w in the given order. Output is byte-identical for any
// worker count: ordering is fixed by the artifact list, and each
// deterministic artifact's bytes depend only on the Suite's options.
// progress, if non-nil, is invoked as each artifact finishes rendering.
func RenderArtifacts(w io.Writer, arts []Artifact, workers int, progress Progress) error {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	bufs := make([]bytes.Buffer, len(arts))
	errs := make([]error, len(arts))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range arts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			elapsed := stopwatch.Start()
			errs[i] = arts[i].Render(&bufs[i])
			if progress != nil {
				progress(arts[i].Name, elapsed(), errs[i])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", arts[i].Name, err)
		}
	}
	for i := range bufs {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// WriteAll renders the complete reproduction — every table, every figure,
// and the §6 case studies — to w. It is what `chc-repro -all` runs.
// Rendering is serial at the artifact level (each figure still fans its
// validation matrix out internally); WriteAllParallel adds artifact-level
// concurrency with byte-identical output.
func WriteAll(w io.Writer, opts Options) error {
	return WriteAllParallel(w, opts, 1, nil)
}

// WriteAllParallel is WriteAll with an artifact-level worker pool
// (workers < 1 means runtime.NumCPU) and an optional progress reporter.
// Parallel and serial runs emit byte-identical output for every
// deterministic artifact: the shared Suite dedups trace generation via
// single-flight, the simulator itself is deterministic (FIFO tiebreak on
// equal clocks), and artifacts are concatenated in fixed order.
func WriteAllParallel(w io.Writer, opts Options, workers int, progress Progress) error {
	s := NewSuite(opts)
	return RenderArtifacts(w, s.Artifacts(), workers, progress)
}
