package experiments

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// TestArtifactPipelineRunToRunDeterminism is the runtime witness for what
// the detorder analyzer enforces statically: two completely independent
// runs of the chc-repro artifact pipeline — fresh Suite, fresh caches,
// different worker counts (-parallel 1 vs -parallel 8) — must produce
// byte-identical deterministic artifacts. Where detorder proves no map
// order, wall clock, or global randomness *can* leak into the output, this
// test observes that none *did*.
func TestArtifactPipelineRunToRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full reproduction renders")
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		s := NewSuite(Options{})
		var det []Artifact
		for _, a := range s.Artifacts() {
			if a.Deterministic {
				det = append(det, a)
			}
		}
		if len(det) == 0 {
			t.Fatal("no deterministic artifacts in the registry")
		}
		if err := RenderArtifacts(&buf, det, workers, nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	run1 := render(1)
	run8 := render(8)
	if len(run1) == 0 {
		t.Fatal("pipeline rendered no bytes")
	}
	if !bytes.Equal(run1, run8) {
		t.Errorf("two pipeline runs (-parallel 1 vs -parallel 8) differ:\n--- run 1 (%d bytes) ---\n%.2000s\n--- run 2 (%d bytes) ---\n%.2000s",
			len(run1), run1, len(run8), run8)
	}
}

// timingLine matches the one legitimately wall-clock-dependent line of the
// report: the §5.3 model-vs-simulation speed measurement, whose payload is
// elapsed time by definition.
var timingLine = regexp.MustCompile(`One model evaluation: .*`)

// TestWriteReportRunToRunDeterminism locks in the report-timestamp fix:
// with no GeneratedAt set, two independent WriteReport runs agree byte for
// byte outside the §5.3 timing line, and no implicit timestamp sneaks into
// the header.
func TestWriteReportRunToRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full report renders")
	}
	render := func() string {
		var buf bytes.Buffer
		if err := WriteReport(&buf, Options{}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	r1, r2 := render(), render()
	if strings.Contains(r1, "Generated") {
		t.Error("report embeds a timestamp without GeneratedAt being set")
	}
	norm1 := timingLine.ReplaceAllString(r1, "<timing>")
	norm2 := timingLine.ReplaceAllString(r2, "<timing>")
	if norm1 != norm2 {
		t.Error("two report runs differ outside the §5.3 timing line")
	}
	if norm1 == r1 {
		t.Error("report is missing the §5.3 timing line the test expects to normalize")
	}
}

// TestWriteReportStamp checks the explicit opt-in: a caller-provided
// GeneratedAt lands in the header verbatim (the wall clock stays in the
// CLI layer).
func TestWriteReportStamp(t *testing.T) {
	if testing.Short() {
		t.Skip("full report render")
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, Options{GeneratedAt: "2026-08-06 00:00 UTC"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Generated 2026-08-06 00:00 UTC.") {
		t.Error("GeneratedAt not embedded in the report header")
	}
}
