// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 1–5, Figures 2–4) and the §6 case studies, comparing
// the analytical model of internal/core against the execution-driven
// simulators of internal/sim/backend.
//
// Scaling: the validation experiments run the workloads at a reduced
// problem scale with proportionally reduced cache/memory capacities
// (machine.Config.Scaled), so every hierarchy level carries real traffic
// while the whole matrix completes in seconds; EXPERIMENTS.md records the
// paper-scale knobs. Model inputs for the validation come from a
// cache-line-granularity characterization of the same traces the
// simulators consume, which keeps the two sides' units consistent.
//
// Concurrency: a Suite is safe for concurrent use. Its caches are
// single-flight — when several goroutines demand the same trace,
// characterization, or sharing measurement, exactly one computes it and
// the rest block until it lands — so the reproduction pipeline can fan
// tables and figures out over a worker pool without duplicating the
// expensive trace generation.
//
//chc:deterministic
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"memhier/internal/core"
	"memhier/internal/machine"
	"memhier/internal/sim/backend"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

// Options configures a reproduction run.
type Options struct {
	// Scale selects workload problem sizes (default ScaleSmall).
	Scale workloads.Scale
	// Divisor scales down the catalog configurations' cache and memory
	// capacities to match the reduced problem sizes. Zero means 16;
	// negative values are rejected when a scaled configuration is built.
	Divisor int
	// Model passes through analytical-model options (ablations,
	// calibration).
	Model core.Options
	// GeneratedAt, when non-empty, is embedded in the report header.
	// Leaving it empty (the default) keeps WriteReport byte-identical
	// run-to-run; callers that want a stamp (chc-repro -stamp) must say
	// so explicitly and thereby opt out of determinism.
	GeneratedAt string
	// SimWorkers > 1 runs the validation simulations on the phase-parallel
	// engine with that many workers. Results are bit-identical to the
	// sequential engine at any worker count (backend.RunParallel's
	// contract), so this never perturbs a reproduction — it only changes
	// how the simulator schedules its own work.
	SimWorkers int
}

func (o Options) divisor() int {
	if o.Divisor == 0 {
		return 16
	}
	return o.Divisor
}

// flight is one single-flight cache entry: done closes once val/err land.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// flightMap is a concurrency-safe result cache with single-flight
// semantics: the first goroutine to demand a key computes it (outside the
// lock), later goroutines for the same key block on the in-flight call
// instead of recomputing. Results, including errors, are cached for the
// map's lifetime — every computation here is deterministic.
type flightMap[T any] struct {
	mu    sync.Mutex
	calls map[string]*flight[T] // guarded by mu
	// computes counts compute invocations, observable by tests asserting
	// the exactly-once guarantee under concurrent demand.
	computes atomic.Int64
}

func (m *flightMap[T]) get(key string, compute func() (T, error)) (T, error) {
	m.mu.Lock()
	if m.calls == nil {
		m.calls = make(map[string]*flight[T])
	}
	if c, ok := m.calls[key]; ok {
		m.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flight[T]{done: make(chan struct{})}
	m.calls[key] = c
	m.mu.Unlock()

	m.computes.Add(1)
	c.val, c.err = compute()
	close(c.done)
	return c.val, c.err
}

// Suite caches workload traces and characterizations across experiments.
// It is safe for concurrent use by multiple goroutines.
type Suite struct {
	opts   Options
	wls    []workloads.Workload
	chars  flightMap[workloads.Characterization] // keyed name/linesize
	traces flightMap[*trace.Trace]               // keyed name/nproc
	shares flightMap[SharingStats]               // keyed name/nproc/perNode
}

// NewSuite returns a reproduction suite for the paper's four applications.
func NewSuite(opts Options) *Suite {
	return &Suite{
		opts: opts,
		wls:  workloads.Suite(opts.Scale),
	}
}

// simulate dispatches one validation simulation to the engine the suite
// was configured for: sequential by default, phase-parallel when
// Options.SimWorkers > 1.
func (s *Suite) simulate(tr *trace.Trace, cfg machine.Config) (backend.RunResult, error) {
	if s.opts.SimWorkers > 1 {
		return backend.SimulateParallel(tr, cfg, s.opts.SimWorkers)
	}
	return backend.Simulate(tr, cfg)
}

// sharing caches MeasureSharing per (workload, trace shape, node grouping).
func (s *Suite) sharing(name string, tr *trace.Trace, perNode int) SharingStats {
	key := fmt.Sprintf("%s/%d/%d", name, tr.NumCPU(), perNode)
	v, _ := s.shares.get(key, func() (SharingStats, error) {
		return MeasureSharing(tr, perNode), nil
	})
	return v
}

// Workloads returns the suite's applications in the paper's order.
func (s *Suite) Workloads() []workloads.Workload { return s.wls }

// Trace returns (and caches) the workload's trace for nproc processors.
// Under concurrent demand the trace is generated exactly once.
func (s *Suite) Trace(w workloads.Workload, nproc int) (*trace.Trace, error) {
	key := fmt.Sprintf("%s/%d", w.Name(), nproc)
	return s.traces.get(key, func() (*trace.Trace, error) {
		return workloads.GenerateTrace(w, nproc)
	})
}

// characterize returns (and caches) the line-granularity characterization
// used as the model's input for validation experiments.
func (s *Suite) characterize(w workloads.Workload) (workloads.Characterization, error) {
	key := w.Name() + "/line64"
	return s.chars.get(key, func() (workloads.Characterization, error) {
		return workloads.Characterize(w, workloads.CharacterizeOptions{LineSize: 64})
	})
}

// characterizeItem returns (and caches) the data-item-granularity
// characterization Table 2 reports (the paper's "unique data items").
func (s *Suite) characterizeItem(w workloads.Workload) (workloads.Characterization, error) {
	key := w.Name() + "/item"
	return s.chars.get(key, func() (workloads.Characterization, error) {
		return workloads.Characterize(w, workloads.CharacterizeOptions{})
	})
}

// ModelWorkload converts a characterization into the analytical model's
// workload description.
func ModelWorkload(c workloads.Characterization) core.Workload {
	bpi := float64(c.LineSize)
	if bpi < 8 {
		bpi = 8 // item-granularity characterizations use 8-byte items
	}
	wl := core.Workload{
		Name:           c.Workload,
		Locality:       c.Params,
		HitMass:        c.HitMass,
		BytesPerItem:   bpi,
		FootprintItems: float64(c.Distinct),
		ConflictFactor: c.Conflict,
	}
	for _, p := range c.ConflictCurve {
		wl.ConflictCurve = append(wl.ConflictCurve, core.ConflictPoint{
			CapacityItems: float64(p.Bytes) / bpi,
			Kappa:         p.Kappa,
		})
	}
	return wl
}

// scaledConfig shrinks a catalog configuration's capacities for the
// reduced-scale validation runs.
func (s *Suite) scaledConfig(cfg machine.Config) (machine.Config, error) {
	return cfg.Scaled(s.opts.divisor())
}
