// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 1–5, Figures 2–4) and the §6 case studies, comparing
// the analytical model of internal/core against the execution-driven
// simulators of internal/sim/backend.
//
// Scaling: the validation experiments run the workloads at a reduced
// problem scale with proportionally reduced cache/memory capacities
// (machine.Config.Scaled), so every hierarchy level carries real traffic
// while the whole matrix completes in seconds; EXPERIMENTS.md records the
// paper-scale knobs. Model inputs for the validation come from a
// cache-line-granularity characterization of the same traces the
// simulators consume, which keeps the two sides' units consistent.
package experiments

import (
	"fmt"

	"memhier/internal/core"
	"memhier/internal/machine"
	"memhier/internal/trace"
	"memhier/internal/workloads"
)

// Options configures a reproduction run.
type Options struct {
	// Scale selects workload problem sizes (default ScaleSmall).
	Scale workloads.Scale
	// Divisor scales down the catalog configurations' cache and memory
	// capacities to match the reduced problem sizes. Zero means 16.
	Divisor int
	// Model passes through analytical-model options (ablations,
	// calibration).
	Model core.Options
}

func (o Options) divisor() int {
	if o.Divisor <= 0 {
		return 16
	}
	return o.Divisor
}

// Suite caches workload traces and characterizations across experiments.
type Suite struct {
	opts   Options
	wls    []workloads.Workload
	chars  map[string]workloads.Characterization // line-granularity (model inputs)
	traces map[string]*trace.Trace               // keyed name/nproc
	shares map[string]SharingStats               // keyed name/nproc/perNode
}

// NewSuite returns a reproduction suite for the paper's four applications.
func NewSuite(opts Options) *Suite {
	return &Suite{
		opts:   opts,
		wls:    workloads.Suite(opts.Scale),
		chars:  make(map[string]workloads.Characterization),
		traces: make(map[string]*trace.Trace),
		shares: make(map[string]SharingStats),
	}
}

// sharing caches MeasureSharing per (workload, trace shape, node grouping).
func (s *Suite) sharing(name string, tr *trace.Trace, perNode int) SharingStats {
	key := fmt.Sprintf("%s/%d/%d", name, tr.NumCPU(), perNode)
	if v, ok := s.shares[key]; ok {
		return v
	}
	v := MeasureSharing(tr, perNode)
	s.shares[key] = v
	return v
}

// Workloads returns the suite's applications in the paper's order.
func (s *Suite) Workloads() []workloads.Workload { return s.wls }

// Trace returns (and caches) the workload's trace for nproc processors.
func (s *Suite) Trace(w workloads.Workload, nproc int) (*trace.Trace, error) {
	key := fmt.Sprintf("%s/%d", w.Name(), nproc)
	if tr, ok := s.traces[key]; ok {
		return tr, nil
	}
	tr, err := workloads.GenerateTrace(w, nproc)
	if err != nil {
		return nil, err
	}
	s.traces[key] = tr
	return tr, nil
}

// characterize returns (and caches) the line-granularity characterization
// used as the model's input for validation experiments.
func (s *Suite) characterize(w workloads.Workload) (workloads.Characterization, error) {
	if c, ok := s.chars[w.Name()]; ok {
		return c, nil
	}
	c, err := workloads.Characterize(w, workloads.CharacterizeOptions{LineSize: 64})
	if err != nil {
		return workloads.Characterization{}, err
	}
	s.chars[w.Name()] = c
	return c, nil
}

// ModelWorkload converts a characterization into the analytical model's
// workload description.
func ModelWorkload(c workloads.Characterization) core.Workload {
	bpi := float64(c.LineSize)
	if bpi < 8 {
		bpi = 8 // item-granularity characterizations use 8-byte items
	}
	wl := core.Workload{
		Name:           c.Workload,
		Locality:       c.Params,
		HitMass:        c.HitMass,
		BytesPerItem:   bpi,
		FootprintItems: float64(c.Distinct),
		ConflictFactor: c.Conflict,
	}
	for _, p := range c.ConflictCurve {
		wl.ConflictCurve = append(wl.ConflictCurve, core.ConflictPoint{
			CapacityItems: float64(p.Bytes) / bpi,
			Kappa:         p.Kappa,
		})
	}
	return wl
}

// scaledConfig shrinks a catalog configuration's capacities for the
// reduced-scale validation runs.
func (s *Suite) scaledConfig(cfg machine.Config) machine.Config {
	return cfg.Scaled(s.opts.divisor())
}
