package experiments

import (
	"strings"
	"testing"

	"memhier/internal/core"
)

func TestCaseModernNetworks(t *testing.T) {
	rows, tab, err := CaseModernNetworks(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 { // 5 workloads x 5 links
		t.Fatalf("got %d rows, want 25", len(rows))
	}
	// Per workload, the cluster/SMP ratio must fall monotonically as the
	// network improves (the links are listed slowest first).
	prev := map[string]float64{}
	for _, r := range rows {
		if p, ok := prev[r.Workload]; ok && r.VsSMP > p+1e-9 {
			t.Errorf("%s: ratio rose from %v to %v at %s", r.Workload, p, r.VsSMP, r.Network)
		}
		prev[r.Workload] = r.VsSMP
		if r.EInstr <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	// The §6 recommendation flips with modern fabrics: on the 2Gb SAN the
	// I/O-bound TPC-C prefers the cluster's aggregated memory over the SMP.
	for _, r := range rows {
		if r.Workload == "TPC-C" && r.Network == "2Gb SAN" && r.VsSMP >= 1 {
			t.Errorf("TPC-C on a SAN should beat the SMP, ratio %v", r.VsSMP)
		}
		if r.Workload == "Radix" && r.Network == "10Mb Ethernet" && r.VsSMP < 10 {
			t.Errorf("Radix on 10Mb Ethernet should lose badly to the SMP, ratio %v", r.VsSMP)
		}
	}
	if !strings.Contains(tab.String(), "2Gb SAN") {
		t.Error("table missing the SAN rows")
	}
}
