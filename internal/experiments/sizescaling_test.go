package experiments

import (
	"strings"
	"testing"

	"memhier/internal/core"
)

func TestCaseSizeScaling(t *testing.T) {
	rows, tab, err := CaseSizeScaling(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		// The paper's claim: β grows with the data set (as does the
		// footprint).
		if rows[i].Beta <= rows[i-1].Beta {
			t.Errorf("beta did not grow: %v after %v (points %d)", rows[i].Beta, rows[i-1].Beta, rows[i].Points)
		}
		if rows[i].Footprint <= rows[i-1].Footprint {
			t.Errorf("footprint did not grow at %d points", rows[i].Points)
		}
	}
	// The cost per instruction rises from the cache-resident size to the
	// cache-saturating one in both model and simulator (between the two
	// saturated sizes E plateaus, so only the endpoints are ordered).
	first, last := rows[0], rows[len(rows)-1]
	if last.SimE <= first.SimE {
		t.Errorf("sim E did not grow from %d to %d points: %v vs %v",
			first.Points, last.Points, first.SimE, last.SimE)
	}
	if last.ModelE <= first.ModelE {
		t.Errorf("model E did not grow from %d to %d points: %v vs %v",
			first.Points, last.Points, first.ModelE, last.ModelE)
	}
	if !strings.Contains(tab.String(), "fitted beta") {
		t.Error("table missing beta column")
	}
}
