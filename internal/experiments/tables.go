package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"memhier/internal/core"
	"memhier/internal/machine"
	"memhier/internal/tabulate"
	"memhier/internal/workloads"
)

// Table1 reproduces the paper's Table 1: the three parallel systems
// classified by the additional memory-hierarchy levels of Figure 1.
func Table1() *tabulate.Table {
	t := tabulate.New("Table 1: parallel systems by cluster memory hierarchy",
		"Parallel system", "Additional memory levels")
	for _, k := range []machine.PlatformKind{machine.SMP, machine.ClusterWS, machine.ClusterSMP} {
		blocks := make([]string, 0, 3)
		for _, b := range k.ExtraLevels() {
			blocks = append(blocks, "gray block "+b)
		}
		t.AddRow("a "+k.String(), strings.Join(blocks, ", "))
	}
	return t
}

// Table2Row is one application's measured characterization next to the
// paper's published values.
type Table2Row struct {
	Char       workloads.Characterization
	PaperAlpha float64
	PaperBeta  float64
	PaperGamma float64
}

// Table2 reproduces Table 2: the locality characterization (α, β, γ) of the
// four applications, measured from this repository's instrumented kernels
// at data-item granularity (the paper's "unique data items"), alongside the
// paper's published values. Absolute numbers differ — the paper traced
// compiled MIPS binaries at its full problem sizes — but the qualitative
// structure (γ ordering, Radix worst scientific locality) must agree; see
// EXPERIMENTS.md.
func (s *Suite) Table2() ([]Table2Row, *tabulate.Table, error) {
	paper := map[string][3]float64{
		"FFT":   {1.21, 103.26, 0.20},
		"LU":    {1.30, 90.27, 0.31},
		"Radix": {1.14, 120.84, 0.37},
		"EDGE":  {1.71, 85.03, 0.45},
	}
	t := tabulate.New("Table 2: characteristics of the 4 programs (measured vs paper)",
		"Program", "Problem size", "alpha", "beta", "gamma",
		"paper alpha", "paper beta", "paper gamma", "fit R2")
	// The per-program characterizations are independent; fan them out over
	// a bounded pool and assemble rows in the paper's order afterwards.
	chars := make([]workloads.Characterization, len(s.wls))
	errs := make([]error, len(s.wls))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, w := range s.wls {
		wg.Add(1)
		go func(i int, w workloads.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			chars[i], errs[i] = s.characterizeItem(w)
		}(i, w)
	}
	wg.Wait()
	var rows []Table2Row
	for i, w := range s.wls {
		if errs[i] != nil {
			return nil, nil, fmt.Errorf("experiments: table 2: %w", errs[i])
		}
		c := chars[i]
		p := paper[w.Name()]
		rows = append(rows, Table2Row{Char: c, PaperAlpha: p[0], PaperBeta: p[1], PaperGamma: p[2]})
		t.AddRow(w.Name(), w.Description(),
			fmt.Sprintf("%.2f", c.Params.Alpha),
			fmt.Sprintf("%.2f", c.Params.Beta),
			fmt.Sprintf("%.2f", c.Params.Gamma),
			fmt.Sprintf("%.2f", p[0]),
			fmt.Sprintf("%.2f", p[1]),
			fmt.Sprintf("%.2f", p[2]),
			fmt.Sprintf("%.3f", c.Fit.R2))
	}
	return rows, t, nil
}

// configTable renders a configuration catalog in the paper's table layout.
func configTable(title string, cfgs []machine.Config, smpCluster bool) *tabulate.Table {
	cols := []string{"Name", "n", "Cache", "Memory"}
	if smpCluster {
		cols = []string{"Name", "n", "N", "Cache", "Memory", "Network"}
	} else if cfgs[0].Kind == machine.ClusterWS {
		cols = []string{"Name", "N", "Cache", "Memory", "Network"}
	}
	t := tabulate.New(title, cols...)
	for _, c := range cfgs {
		cache := fmt.Sprintf("%dKB", c.CacheBytes>>10)
		mem := fmt.Sprintf("%dMB", c.MemoryBytes>>20)
		switch {
		case smpCluster:
			t.AddRow(c.Name, fmt.Sprint(c.Procs), fmt.Sprint(c.N), cache, mem, c.Net.String())
		case c.Kind == machine.ClusterWS:
			t.AddRow(c.Name, fmt.Sprint(c.N), cache, mem, c.Net.String())
		default:
			t.AddRow(c.Name, fmt.Sprint(c.Procs), cache, mem)
		}
	}
	return t
}

// Table3 reproduces Table 3: the selected SMPs (200 MHz CPUs).
func Table3() *tabulate.Table {
	return configTable("Table 3: selected SMPs (200 MHz CPUs)", machine.SMPCatalog(), false)
}

// Table4 reproduces Table 4: the selected clusters of workstations.
func Table4() *tabulate.Table {
	return configTable("Table 4: selected clusters of workstations (200 MHz CPUs)", machine.WSCatalog(), false)
}

// Table5 reproduces Table 5: the selected clusters of SMPs.
func Table5() *tabulate.Table {
	return configTable("Table 5: selected clusters of SMPs (200 MHz CPUs)", machine.SMPClusterCatalog(), true)
}

// PaperTable2 renders the paper's published Table 2 parameters (the inputs
// the case studies use verbatim).
func PaperTable2() *tabulate.Table {
	t := tabulate.New("Paper Table 2 parameters (used by the case studies)",
		"Program", "alpha", "beta", "gamma")
	for _, w := range append(core.PaperWorkloads(), core.PaperTPCC()) {
		t.AddRow(w.Name,
			fmt.Sprintf("%.2f", w.Locality.Alpha),
			fmt.Sprintf("%.2f", w.Locality.Beta),
			fmt.Sprintf("%.2f", w.Locality.Gamma))
	}
	return t
}
