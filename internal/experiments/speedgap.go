package experiments

import (
	"fmt"

	"memhier/internal/core"
	"memhier/internal/machine"
	"memhier/internal/tabulate"
)

// SpeedGapRow is one clock point of the processor–memory gap sweep.
type SpeedGapRow struct {
	ClockMHz float64
	Seconds  float64 // modeled E(Instr) in seconds
	Speedup  float64 // vs the 100 MHz baseline
	// HierarchyShare is the fraction of each instruction's time spent
	// beyond the cache (γ·(T−τ1)/E in cycles): the memory wall.
	HierarchyShare float64
}

// machineConfigAt returns the reference 2-processor SMP at the given clock
// (helper shared with the clock-scaling consistency test).
func machineConfigAt(clockMHz float64) machine.Config {
	return machine.Config{Name: fmt.Sprintf("SMP2@%g", clockMHz), Kind: machine.SMP,
		N: 1, Procs: 2, CacheBytes: 256 << 10, MemoryBytes: 64 << 20,
		Net: machine.NetNone, ClockMHz: clockMHz}
}

// CaseSpeedGap quantifies the claim of the paper's conclusions that the
// memory-hierarchy factor "is playing a more important role as the speed
// gap between processors and memory hierarchy access continues to widen":
// sweeping the processor clock with wall-time-constant memory and network
// devices (machine.LatenciesAt), the useful speedup from faster processors
// saturates and the hierarchy's share of execution time climbs toward 1.
func CaseSpeedGap(wl core.Workload, opts core.Options) ([]SpeedGapRow, *tabulate.Table, error) {
	clocks := []float64{100, 200, 400, 800, 1600, 3200}
	t := tabulate.New(
		fmt.Sprintf("Extension: the processor-memory speed gap (%s on a 4-processor SMP)", wl.Name),
		"Clock MHz", "E(Instr) ns", "Speedup vs 100MHz", "Hierarchy share")
	var rows []SpeedGapRow
	var base float64
	for _, clock := range clocks {
		cfg := machine.Config{Name: fmt.Sprintf("SMP4@%g", clock), Kind: machine.SMP,
			N: 1, Procs: 4, CacheBytes: 512 << 10, MemoryBytes: 128 << 20,
			Net: machine.NetNone, ClockMHz: clock}
		res, err := core.Evaluate(cfg, wl, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: speed gap at %g MHz: %w", clock, err)
		}
		row := SpeedGapRow{ClockMHz: clock, Seconds: res.Seconds}
		if base == 0 {
			base = res.Seconds
		}
		row.Speedup = base / res.Seconds
		// Per instruction: 1/S compute + γ·τ1 cache + γ·(T−τ1) hierarchy.
		gamma := wl.Locality.Gamma
		perInstr := 1 + gamma*res.T
		row.HierarchyShare = gamma * (res.T - 1) / perInstr
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%g", clock),
			fmt.Sprintf("%.2f", res.Seconds*1e9),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.1f%%", row.HierarchyShare*100))
	}
	return rows, t, nil
}
