package experiments

import (
	"strings"
	"testing"

	"memhier/internal/core"
	"memhier/internal/sim/backend"
)

func TestCaseSpeedGap(t *testing.T) {
	fft, _ := core.PaperWorkload("FFT")
	rows, tab, err := CaseSpeedGap(fft, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("too few clock points: %d", len(rows))
	}
	for i, r := range rows {
		if r.Seconds <= 0 || r.HierarchyShare < 0 || r.HierarchyShare > 1 {
			t.Fatalf("degenerate row %+v", r)
		}
		if i == 0 {
			continue
		}
		// Faster clocks never slow wall time, but speedup is sublinear …
		if r.Seconds > rows[i-1].Seconds+1e-15 {
			t.Errorf("wall time rose with clock: %+v after %+v", r, rows[i-1])
		}
		clockRatio := r.ClockMHz / rows[0].ClockMHz
		if r.Speedup > clockRatio*0.99 {
			t.Errorf("speedup %v nearly linear at %g MHz — the wall is missing", r.Speedup, r.ClockMHz)
		}
		// … and the hierarchy's share of execution time grows.
		if r.HierarchyShare < rows[i-1].HierarchyShare-1e-9 {
			t.Errorf("hierarchy share fell with clock: %+v after %+v", r, rows[i-1])
		}
	}
	// The memory wall: at the fastest clock the hierarchy dominates and
	// the total speedup from a 32x clock is small.
	last := rows[len(rows)-1]
	if last.HierarchyShare < 0.9 {
		t.Errorf("hierarchy share at %g MHz is %v, want > 0.9", last.ClockMHz, last.HierarchyShare)
	}
	if last.Speedup > 3 {
		t.Errorf("speedup %v at 32x clock — the wall should cap it far below the clock ratio", last.Speedup)
	}
	if !strings.Contains(tab.String(), "Hierarchy share") {
		t.Error("table missing the hierarchy-share column")
	}
}

// TestClockScalingConsistency: model and simulator must agree that a faster
// clock shortens wall seconds sublinearly.
func TestClockScalingConsistency(t *testing.T) {
	s := NewSuite(Options{})
	w := s.Workloads()[0] // FFT
	tr, err := s.Trace(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	secondsAt := func(clock float64) float64 {
		cfg, err := s.scaledConfig(machineConfigAt(clock))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := backend.Simulate(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Seconds
	}
	s200 := secondsAt(200)
	s800 := secondsAt(800)
	if s800 >= s200 {
		t.Errorf("simulated wall seconds did not drop with clock: %v vs %v", s800, s200)
	}
	if s200/s800 > 3.9 {
		t.Errorf("simulated speedup %v at 4x clock — memory wall missing in the simulator", s200/s800)
	}
}
