package experiments

import (
	"reflect"
	"strings"
	"testing"

	"memhier/internal/core"
	"memhier/internal/machine"
	"memhier/internal/trace"
)

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 3 {
		t.Fatalf("Table 1 has %d rows, want 3", len(tab.Rows))
	}
	out := tab.String()
	for _, want := range []string{"SMP", "workstations", "A", "B", "C"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	s := NewSuite(Options{})
	rows, tab, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table 2 has %d rows, want 4", len(rows))
	}
	names := []string{"FFT", "LU", "Radix", "EDGE"}
	for i, r := range rows {
		if r.Char.Workload != names[i] {
			t.Errorf("row %d is %s, want %s", i, r.Char.Workload, names[i])
		}
		if err := r.Char.Params.Validate(); err != nil {
			t.Errorf("%s: invalid fit: %v", r.Char.Workload, err)
		}
		if r.PaperAlpha == 0 || r.PaperBeta == 0 || r.PaperGamma == 0 {
			t.Errorf("%s: missing paper reference values", r.Char.Workload)
		}
	}
	if !strings.Contains(tab.String(), "gamma") {
		t.Error("Table 2 missing gamma column")
	}
}

func TestConfigTables(t *testing.T) {
	if got := len(Table3().Rows); got != 6 {
		t.Errorf("Table 3 rows = %d, want 6", got)
	}
	if got := len(Table4().Rows); got != 5 {
		t.Errorf("Table 4 rows = %d, want 5", got)
	}
	if got := len(Table5().Rows); got != 4 {
		t.Errorf("Table 5 rows = %d, want 4", got)
	}
	if got := len(PaperTable2().Rows); got != 5 {
		t.Errorf("paper Table 2 rows = %d, want 5", got)
	}
	if !strings.Contains(Table4().String(), "155Mb switch") {
		t.Error("Table 4 missing the ATM switch")
	}
}

// checkValidation asserts the qualitative reproduction contract for a
// figure: finite values, a bounded mean deviation, and model/sim agreement
// on which program is cheapest per configuration (LU throughout the suite).
func checkValidation(t *testing.T, v Validation, meanBound float64) {
	t.Helper()
	if len(v.Rows) == 0 {
		t.Fatal("no validation rows")
	}
	if m := v.MeanAbsDiff(); m > meanBound {
		t.Errorf("%s: mean |diff| %.1f%% exceeds %.0f%%", v.Title, m, meanBound)
	}
	byConfig := map[string]map[string][2]float64{}
	for _, r := range v.Rows {
		if r.ModelE <= 0 || r.SimE <= 0 {
			t.Fatalf("%s: degenerate row %+v", v.Title, r)
		}
		if byConfig[r.Config] == nil {
			byConfig[r.Config] = map[string][2]float64{}
		}
		byConfig[r.Config][r.Workload] = [2]float64{r.ModelE, r.SimE}
	}
	for cfg, m := range byConfig {
		if len(m) != 4 {
			t.Errorf("%s/%s: %d workloads, want 4", v.Title, cfg, len(m))
			continue
		}
		for _, other := range []string{"FFT", "Radix"} {
			if !(m["LU"][0] < m[other][0]) || !(m["LU"][1] < m[other][1]) {
				t.Errorf("%s/%s: model and sim should both rank LU below %s (model %v vs %v, sim %v vs %v)",
					v.Title, cfg, other, m["LU"][0], m[other][0], m["LU"][1], m[other][1])
			}
		}
	}
}

func TestFigure2SMPValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation matrix")
	}
	s := NewSuite(Options{})
	v, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	checkValidation(t, v, 60)
}

func TestFigure3ClusterWSValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation matrix")
	}
	s := NewSuite(Options{})
	v, err := s.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	checkValidation(t, v, 60)
	// Network ordering at N=4: both sides must rank the 155Mb switch (C10)
	// below the 100Mb bus (C8) for the network-bound FFT.
	get := func(cfg, w string) (float64, float64) {
		for _, r := range v.Rows {
			if r.Config == cfg && r.Workload == w {
				return r.ModelE, r.SimE
			}
		}
		t.Fatalf("missing row %s/%s", cfg, w)
		return 0, 0
	}
	m8, s8 := get("C8", "FFT")
	m10, s10 := get("C10", "FFT")
	if !(m10 < m8) || !(s10 < s8) {
		t.Errorf("switch should beat 100Mb bus for FFT: model %v vs %v, sim %v vs %v", m10, m8, s10, s8)
	}
}

func TestFigure4ClusterSMPValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation matrix")
	}
	s := NewSuite(Options{})
	v, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	checkValidation(t, v, 60)
}

func TestValidationTableRendering(t *testing.T) {
	v := Validation{Title: "test", Rows: []ValidationRow{
		{Config: "C1", Workload: "FFT", ModelE: 1, SimE: 2, DiffPct: -50},
		{Config: "C1", Workload: "LU", ModelE: 3, SimE: 2, DiffPct: 50},
	}}
	if v.MeanAbsDiff() != 50 {
		t.Errorf("MeanAbsDiff = %v", v.MeanAbsDiff())
	}
	if v.MaxAbsDiff() != 50 {
		t.Errorf("MaxAbsDiff = %v", v.MaxAbsDiff())
	}
	out := v.Table().String()
	if !strings.Contains(out, "mean |diff|") {
		t.Errorf("table missing summary: %s", out)
	}
	var empty Validation
	if empty.MeanAbsDiff() != 0 || empty.MaxAbsDiff() != 0 {
		t.Error("empty validation should have zero diffs")
	}
}

func TestMeasureSharing(t *testing.T) {
	// Two CPUs on separate nodes: CPU0 touches block 0 first (home 0),
	// CPU1 reads it (remote), CPU0 writes it, CPU1 re-reads it (coherence
	// miss).
	tr := trace.New(2)
	tr.Streams[0].AddRead(0)  // home block 0 -> node 0
	tr.Streams[1].AddRead(4)  // remote read (round-robin: after cpu0's)
	tr.Streams[0].AddWrite(8) // invalidates cpu1's copy
	tr.Streams[1].AddRead(12) // coherence miss + remote
	tr.Streams[0].AddCompute(1)

	st := MeasureSharing(tr, 1)
	// refs: cpu0 r, cpu1 r, cpu0 w, cpu1 r = 4; remote = 2 (cpu1's two);
	// coherence = 1 (cpu1's second read).
	if st.RemoteShare != 0.5 {
		t.Errorf("RemoteShare = %v, want 0.5", st.RemoteShare)
	}
	if st.CoherenceMissRate != 0.25 {
		t.Errorf("CoherenceMissRate = %v, want 0.25", st.CoherenceMissRate)
	}
}

func TestMeasureSharingDisjointPartitions(t *testing.T) {
	tr := trace.New(4)
	for cpu := 0; cpu < 4; cpu++ {
		base := uint64(cpu) * (1 << 16)
		for i := uint64(0); i < 100; i++ {
			tr.Streams[cpu].AddRead(base + i*64)
			tr.Streams[cpu].AddWrite(base + i*64)
		}
	}
	st := MeasureSharing(tr, 1)
	if st.RemoteShare != 0 || st.CoherenceMissRate != 0 {
		t.Errorf("disjoint partitions should share nothing: %+v", st)
	}
	// Grouped as one node of 4 CPUs there is no cross-machine sharing
	// either.
	if st4 := MeasureSharing(tr, 4); st4.RemoteShare != 0 {
		t.Errorf("single node should have no remote share: %+v", st4)
	}
	// Empty trace.
	if e := MeasureSharing(trace.New(1), 1); e.RemoteShare != 0 || e.CoherenceMissRate != 0 {
		t.Errorf("empty trace: %+v", e)
	}
	if got := RemoteShareOf(tr, 1); got != 0 {
		t.Errorf("RemoteShareOf = %v", got)
	}
}

func TestCase1(t *testing.T) {
	results, tab, err := Case1(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d case-1 results, want 5", len(results))
	}
	for _, r := range results {
		if r.Best.Cost > 5000 {
			t.Errorf("%s: winner over budget: %+v", r.Workload, r.Best)
		}
		// The paper: $5,000 cannot buy SMPs.
		if r.Best.Config.Kind != machine.ClusterWS {
			t.Errorf("%s: $5,000 winner is not a workstation platform: %+v", r.Workload, r.Best.Config)
		}
	}
	if !strings.Contains(tab.String(), "$5,000") {
		t.Error("case 1 table missing title")
	}
}

func TestCase2(t *testing.T) {
	results, _, err := Case2(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CaseResult{}
	for _, r := range results {
		byName[r.Workload] = r
		if r.Best.Cost > 20000 {
			t.Errorf("%s: winner over budget: %+v", r.Workload, r.Best)
		}
		if r.Feasible <= 39 {
			t.Errorf("%s: $20,000 should open more of the space than $5,000 (got %d)", r.Workload, r.Feasible)
		}
	}
	// The paper's principle: Radix (memory bound, poor locality) wants an
	// SMP once the budget allows one.
	if got := byName["Radix"].Best.Config.Kind; got != machine.SMP {
		t.Errorf("Radix $20,000 winner is %v, want an SMP", got)
	}
}

func TestCase3(t *testing.T) {
	plans, tab, err := Case3(2000, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.UpgradeCost > 2000 {
			t.Errorf("%s plan over budget: %+v", p.From.Name, p)
		}
		if p.Speedup < 1 {
			t.Errorf("upgrade slowed things down: %+v", p)
		}
		if p.NewEInstr > p.OldEInstr {
			t.Errorf("upgrade worsened E(Instr): %+v", p)
		}
	}
	if !strings.Contains(tab.String(), "Speedup") {
		t.Error("case 3 table missing speedup column")
	}
}

func TestCaseFFT4x(t *testing.T) {
	res, tab, err := CaseFFT4x(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports the Ethernet cluster ≈ 4× slower; our model agrees
	// on direction and order of magnitude (see EXPERIMENTS.md for the
	// measured factor).
	if res.Ratio < 2 {
		t.Errorf("Ethernet/ATM ratio %.2f should clearly exceed 1", res.Ratio)
	}
	if res.EthernetE <= res.ATME {
		t.Errorf("Ethernet (%v) should be slower than ATM (%v)", res.EthernetE, res.ATME)
	}
	if !strings.Contains(tab.String(), "ratio") {
		t.Error("FFT4x table missing ratio row")
	}
}

func TestPrinciplesTable(t *testing.T) {
	tab := Principles()
	if len(tab.Rows) != 5 {
		t.Fatalf("principles table has %d rows, want 5", len(tab.Rows))
	}
	out := tab.String()
	for _, want := range []string{"SMP", "fast network", "slow network"} {
		if !strings.Contains(out, want) {
			t.Errorf("principles table missing %q", want)
		}
	}
}

func TestModelVsSimSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	s := NewSuite(Options{})
	sc, err := s.ModelVsSimSpeed()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §5.3 claim: modeling is orders of magnitude cheaper.
	if sc.Ratio < 10 {
		t.Errorf("model should be ≫10× faster than simulation, got %.1fx (model %v, sim %v)",
			sc.Ratio, sc.ModelTime, sc.SimTime)
	}
}

func TestCalibrateCoherenceAdjust(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	s := NewSuite(Options{})
	// A small sweep on one cluster config keeps this test fast.
	delta, diff, err := s.CalibrateCoherenceAdjust(
		machine.WSCatalog()[1:2], []float64{0, 0.124, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if delta < 0 || delta > 0.6 {
		t.Errorf("calibrated delta %v outside swept range", delta)
	}
	if diff <= 0 || diff > 200 {
		t.Errorf("calibrated diff %v implausible", diff)
	}
}

func TestSuiteCaching(t *testing.T) {
	s := NewSuite(Options{})
	w := s.Workloads()[1] // LU
	t1, err := s.Trace(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Trace(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("trace not cached")
	}
	c1, err := s.characterize(w)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.characterize(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Error("characterization not cached")
	}
}

func TestModelWorkloadConversion(t *testing.T) {
	s := NewSuite(Options{})
	c, err := s.characterize(s.Workloads()[0])
	if err != nil {
		t.Fatal(err)
	}
	wl := ModelWorkload(c)
	if err := wl.Validate(); err != nil {
		t.Fatalf("converted workload invalid: %v", err)
	}
	if wl.BytesPerItem != 64 {
		t.Errorf("line-granularity characterization should carry 64-byte items, got %v", wl.BytesPerItem)
	}
	if wl.FootprintItems != float64(c.Distinct) {
		t.Errorf("footprint not carried: %v vs %d", wl.FootprintItems, c.Distinct)
	}
}

func TestWriteReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation")
	}
	var buf strings.Builder
	if err := WriteReport(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Reproduction report", "Table 2", "Figure 2", "Figure 3", "Figure 4",
		"case studies", "Extensions", "cost of prediction", "Reproduction scope",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 5000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestTable2Scale(t *testing.T) {
	tab, err := Table2Scale(0) // ScaleSmall
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("Table2Scale rows = %d", len(tab.Rows))
	}
}
