package experiments

// Model-vs-simulator cross-check: every configuration × paper-workload
// point of Figures 2–4 must stay inside a per-point error envelope, not
// just a healthy mean. The bounds are set from the deviations recorded in
// REPORT.md (Fig 2: mean 35.5% / worst 70.9%; Fig 3: 39.2% / 122.5%;
// Fig 4: 39.8% / 176.8%) with headroom for platform variation in
// floating-point libm; both pipelines are deterministic, so a point that
// drifts past its bound signals a real modeling or simulator regression,
// not noise.

import (
	"fmt"
	"math"
	"testing"
)

func TestModelVsSimWithinEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation matrix")
	}
	s := NewSuite(Options{})

	figures := []struct {
		name     string
		run      func() (Validation, error)
		rowBound float64 // per-point |model−sim|/sim ceiling, percent
		mean     float64 // figure-wide mean ceiling, percent
	}{
		{"Figure2", s.Figure2, 80, 45},
		{"Figure3", s.Figure3, 135, 50},
		{"Figure4", s.Figure4, 190, 50},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			v, err := fig.run()
			if err != nil {
				t.Fatal(err)
			}
			if len(v.Rows) == 0 {
				t.Fatal("no validation rows")
			}
			for _, row := range v.Rows {
				row := row
				t.Run(fmt.Sprintf("%s/%s", row.Config, row.Workload), func(t *testing.T) {
					if row.ModelE <= 0 || math.IsNaN(row.ModelE) || math.IsInf(row.ModelE, 0) {
						t.Fatalf("model E(Instr) = %v, want finite > 0", row.ModelE)
					}
					if row.SimE <= 0 || math.IsNaN(row.SimE) || math.IsInf(row.SimE, 0) {
						t.Fatalf("simulated E(Instr) = %v, want finite > 0", row.SimE)
					}
					if math.IsNaN(row.DiffPct) || math.IsInf(row.DiffPct, 0) {
						t.Fatalf("diff = %v, want finite", row.DiffPct)
					}
					// DiffPct must actually be (model − sim)/sim × 100.
					want := (row.ModelE - row.SimE) / row.SimE * 100
					if math.Abs(row.DiffPct-want) > 1e-9 {
						t.Errorf("DiffPct %v inconsistent with ModelE/SimE (want %v)", row.DiffPct, want)
					}
					if d := math.Abs(row.DiffPct); d > fig.rowBound {
						t.Errorf("|model−sim| = %.1f%% exceeds the %.0f%% envelope (model %.2f, sim %.2f)",
							d, fig.rowBound, row.ModelE, row.SimE)
					}
				})
			}
			if m := v.MeanAbsDiff(); m > fig.mean {
				t.Errorf("mean |diff| %.1f%% exceeds %.0f%%", m, fig.mean)
			}
		})
	}
}
