package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenArtifacts is the checked-in bit-identity anchor for the repro
// pipeline: one SHA-256 per deterministic artifact, captured before the
// multi-level cache refactor. Every catalog configuration carries exactly
// one cache level, so the Levels generalization must reproduce these bytes
// exactly — any drift here means the 1-level reduction contract broke.
//
// Regenerate (only for an intentional output change) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestArtifactBytesMatchGoldenAnchor
const goldenArtifactsFile = "testdata/golden_artifacts.sha256"

// TestArtifactBytesMatchGoldenAnchor renders every deterministic Fig. 2–4 /
// §6 artifact and compares its bytes against the pre-refactor golden
// hashes. It runs under -race too (the race CI job runs the full test set),
// so the anchor also covers the parallel artifact pipeline.
func TestArtifactBytesMatchGoldenAnchor(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction render")
	}
	s := NewSuite(Options{})
	type sum struct{ name, hash string }
	var got []sum
	for _, a := range s.Artifacts() {
		if !a.Deterministic {
			continue
		}
		var buf bytes.Buffer
		if err := a.Render(&buf); err != nil {
			t.Fatalf("render %s: %v", a.Name, err)
		}
		h := sha256.Sum256(buf.Bytes())
		got = append(got, sum{a.Name, hex.EncodeToString(h[:])})
	}
	if len(got) == 0 {
		t.Fatal("no deterministic artifacts rendered")
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		var out strings.Builder
		for _, g := range got {
			fmt.Fprintf(&out, "%s  %s\n", g.hash, g.name)
		}
		if err := os.MkdirAll(filepath.Dir(goldenArtifactsFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenArtifactsFile, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), goldenArtifactsFile)
		return
	}

	raw, err := os.ReadFile(goldenArtifactsFile)
	if err != nil {
		t.Fatalf("missing golden anchor (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	want := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[1]] = fields[0]
	}
	for _, g := range got {
		wantHash, ok := want[g.name]
		if !ok {
			t.Errorf("artifact %s has no golden hash; regenerate with UPDATE_GOLDEN=1 if the addition is intentional", g.name)
			continue
		}
		if g.hash != wantHash {
			t.Errorf("artifact %s: bytes drifted from the pre-refactor anchor\n  got  %s\n  want %s", g.name, g.hash, wantHash)
		}
		delete(want, g.name)
	}
	for name := range want {
		t.Errorf("golden artifact %s no longer rendered", name)
	}
}
