package experiments

import (
	"fmt"

	"memhier/internal/core"
	"memhier/internal/machine"
	"memhier/internal/netmodel"
	"memhier/internal/tabulate"
)

// ModernRow is one point of the beyond-1999 network extension experiment.
type ModernRow struct {
	Workload string
	Network  string
	EInstr   float64
	VsSMP    float64 // E(cluster) / E(best 4-way SMP)
}

// CaseModernNetworks is an extension experiment the 1999 paper could not
// run: it re-asks the §6 question — cluster of workstations or SMP? — with
// post-1999 interconnects derived by the netmodel package. The paper's
// conclusion steers memory-bound, poor-locality workloads (Radix) to SMPs
// because 1999 cluster networks cost thousands of cycles per remote access;
// as the derived remote latency falls toward memory latency, the
// recommendation flips and the cluster's aggregate cache/memory wins.
func CaseModernNetworks(opts core.Options) ([]ModernRow, *tabulate.Table, error) {
	links := []netmodel.Link{netmodel.Ethernet10, netmodel.Ethernet100,
		netmodel.ATM155, netmodel.Gigabit, netmodel.SAN2G}
	t := tabulate.New("Extension: 4-node clusters vs a 4-way SMP as networks improve (E(Instr), cycles)",
		"Program", "Network", "Cluster E", "SMP E", "cluster/SMP")
	var rows []ModernRow
	for _, wl := range append(core.PaperWorkloads(), core.PaperTPCC()) {
		// Reference machine: the best 4-way SMP of the catalog space.
		smp := machine.Config{Name: "SMP4", Kind: machine.SMP, N: 1, Procs: 4,
			CacheBytes: 512 << 10, MemoryBytes: 128 << 20, Net: machine.NetNone, ClockMHz: 200}
		smpRes, err := core.Evaluate(smp, wl, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: modern: SMP/%s: %w", wl.Name, err)
		}
		for _, link := range links {
			cfg := machine.Config{Name: "WSx4/" + link.Name, Kind: machine.ClusterWS,
				N: 4, Procs: 1, CacheBytes: 512 << 10, MemoryBytes: 128 << 20,
				Net: link.NetKind(), ClockMHz: 200}
			lat := netmodel.Latencies(cfg.Kind, link, cfg.ClockMHz)
			o := opts
			o.Latencies = &lat
			res, err := core.Evaluate(cfg, wl, o)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: modern: %s/%s: %w", link.Name, wl.Name, err)
			}
			row := ModernRow{Workload: wl.Name, Network: link.Name,
				EInstr: res.EInstr, VsSMP: res.EInstr / smpRes.EInstr}
			rows = append(rows, row)
			t.AddRow(wl.Name, link.Name,
				fmt.Sprintf("%.3f", res.EInstr),
				fmt.Sprintf("%.3f", smpRes.EInstr),
				fmt.Sprintf("%.2f", row.VsSMP))
		}
	}
	return rows, t, nil
}
