package experiments

import (
	"fmt"

	"memhier/internal/core"
	"memhier/internal/machine"
	"memhier/internal/sim/backend"
	"memhier/internal/tabulate"
	"memhier/internal/workloads"
)

// SizeScalingRow is one problem size of the scaling experiment.
type SizeScalingRow struct {
	Points    int
	Beta      float64 // fitted at item granularity (paper's unit)
	ModelE    float64 // line-granularity model, cycles
	SimE      float64 // simulated, cycles
	DiffPct   float64
	Footprint int // distinct items
}

// CaseSizeScaling quantifies the paper's observation that "the β value
// continues to increase as the size of the workload data set increases"
// (§5.2, for TPC-C), on the FFT kernel: the transform size grows, the
// fitted β grows with it, and the model keeps tracking the simulator on a
// fixed (capacity-scaled) platform.
func CaseSizeScaling(opts core.Options) ([]SizeScalingRow, *tabulate.Table, error) {
	cfg := machine.Config{Name: "SMP2/16", Kind: machine.SMP, N: 1, Procs: 2,
		CacheBytes: 16 << 10, MemoryBytes: 4 << 20, Net: machine.NetNone, ClockMHz: 200}
	t := tabulate.New("Extension: problem-size scaling (FFT on a capacity-scaled 2-way SMP)",
		"Points", "fitted beta (items)", "footprint", "Model E", "Sim E", "diff %")
	var rows []SizeScalingRow
	for _, points := range []int{1 << 8, 1 << 12, 1 << 14} {
		w := workloads.NewFFT(points)
		// Paper-unit characterization (items) for the β-growth claim.
		itemChar, err := workloads.Characterize(w, workloads.CharacterizeOptions{})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: size scaling %d: %w", points, err)
		}
		// Line-granularity characterization feeds the model, as in the
		// validation figures.
		lineChar, err := workloads.Characterize(w, workloads.CharacterizeOptions{LineSize: 64})
		if err != nil {
			return nil, nil, err
		}
		wl := ModelWorkload(lineChar)
		tr, err := workloads.GenerateTrace(w, cfg.TotalProcs())
		if err != nil {
			return nil, nil, err
		}
		res, err := core.Evaluate(cfg, wl, opts)
		if err != nil {
			return nil, nil, err
		}
		sim, err := backend.Simulate(tr, cfg)
		if err != nil {
			return nil, nil, err
		}
		row := SizeScalingRow{
			Points:    points,
			Beta:      itemChar.Params.Beta,
			ModelE:    res.EInstr,
			SimE:      sim.EInstr,
			Footprint: itemChar.Distinct,
		}
		if sim.EInstr > 0 {
			row.DiffPct = (res.EInstr - sim.EInstr) / sim.EInstr * 100
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprint(points),
			fmt.Sprintf("%.2f", row.Beta),
			fmt.Sprint(row.Footprint),
			fmt.Sprintf("%.3f", row.ModelE),
			fmt.Sprintf("%.3f", row.SimE),
			fmt.Sprintf("%+.1f", row.DiffPct))
	}
	return rows, t, nil
}
