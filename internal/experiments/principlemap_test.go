package experiments

import (
	"strings"
	"testing"

	"memhier/internal/core"
	"memhier/internal/machine"
)

// TestPrincipleMapAlphaTransition pins the sweep's central finding: the
// platform frontier moves with the locality decay α, which the paper's §6
// classification (based on β and γ alone) does not capture. At a heavy
// tail (α=1.15) the optimizer picks SMPs across the whole (γ, β) plane; at
// a light tail (α=1.8) it picks workstation clusters nearly everywhere;
// in between, both families appear.
func TestPrincipleMapAlphaTransition(t *testing.T) {
	kindCounts := func(alpha float64) (smp, ws int) {
		cells, _, err := PrincipleMap(alpha, nil, nil, 20000, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			switch c.WinnerKind {
			case machine.SMP:
				smp++
			case machine.ClusterWS:
				ws++
			}
		}
		return smp, ws
	}
	smpHeavy, wsHeavy := kindCounts(1.15)
	if wsHeavy != 0 || smpHeavy == 0 {
		t.Errorf("alpha=1.15: want all-SMP plane, got smp=%d ws=%d", smpHeavy, wsHeavy)
	}
	smpLight, wsLight := kindCounts(1.8)
	if smpLight != 0 || wsLight == 0 {
		t.Errorf("alpha=1.8: want all-cluster plane, got smp=%d ws=%d", smpLight, wsLight)
	}
	smpMid, wsMid := kindCounts(1.5)
	if smpMid == 0 || wsMid == 0 {
		t.Errorf("alpha=1.5: want a mixed plane, got smp=%d ws=%d", smpMid, wsMid)
	}
}

func TestPrincipleMapDefaultsAndTable(t *testing.T) {
	cells, tab, err := PrincipleMap(0, nil, nil, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 20 { // 4 gammas x 5 betas
		t.Fatalf("cells = %d, want 20", len(cells))
	}
	out := tab.String()
	if !strings.Contains(out, "gamma") || !strings.Contains(out, "β=1500") {
		t.Errorf("map table malformed:\n%s", out)
	}
	rate := AgreementRate(cells)
	if rate < 0 || rate > 1 {
		t.Errorf("agreement rate %v out of range", rate)
	}
	if AgreementRate(nil) != 0 {
		t.Error("empty agreement should be 0")
	}
}
