package experiments

import (
	"memhier/internal/sim/backend"
	"memhier/internal/trace"
)

// SharingStats summarizes the cross-machine data sharing of a
// multiprocessor address stream, measured without any timing simulation —
// the model inputs that reconstruct the communication term of the paper's
// cluster formulas (DESIGN.md §4).
type SharingStats struct {
	// RemoteShare is the fraction of references touching DSM blocks homed
	// (first touched) on a different machine.
	RemoteShare float64
	// CoherenceMissRate is the fraction of references that re-touch a
	// block another machine wrote since this machine's previous access:
	// an invalidation-induced miss under write-invalidate coherence,
	// independent of cache capacity.
	CoherenceMissRate float64
}

// MeasureSharing analyzes the trace with streams merged round-robin (the
// simulators' first-touch placement emerges from each process initializing
// its own partition first). procsPerNode groups the trace's CPUs into
// machines.
func MeasureSharing(tr *trace.Trace, procsPerNode int) SharingStats {
	if procsPerNode < 1 {
		procsPerNode = 1
	}
	type blockState struct {
		home  int
		valid uint64 // nodes whose copy survived the last foreign write
		seen  uint64 // nodes that ever touched the block
	}
	// Value-typed and pre-sized: the per-block state is three words, so
	// storing it inline avoids one heap allocation per distinct block, and
	// the footprint bound (references / block sparsity) sizes the table past
	// most of its growth rehashes.
	hint := int(tr.MemoryRefs() / 8)
	if hint > 1<<20 {
		hint = 1 << 20
	}
	blocks := make(map[uint64]blockState, hint)
	var refs, remote, coherence uint64
	idx := make([]int, len(tr.Streams))
	for {
		progressed := false
		for cpu, s := range tr.Streams {
			if idx[cpu] >= len(s.Events) {
				continue
			}
			e := s.Events[idx[cpu]]
			idx[cpu]++
			progressed = true
			if e.Kind != trace.Read && e.Kind != trace.Write {
				continue
			}
			node := cpu / procsPerNode
			bit := uint64(1) << uint(node%64)
			block := e.Addr / backend.DSMBlockSize
			st, ok := blocks[block]
			if !ok {
				st = blockState{home: node}
			}
			refs++
			if st.home != node {
				remote++
			}
			// A re-reference by a node whose copy was invalidated by a
			// foreign write is a coherence miss.
			if st.seen&bit != 0 && st.valid&bit == 0 {
				coherence++
			}
			st.seen |= bit
			if e.Kind == trace.Write {
				st.valid = bit
			} else {
				st.valid |= bit
			}
			blocks[block] = st
		}
		if !progressed {
			break
		}
	}
	if refs == 0 {
		return SharingStats{}
	}
	return SharingStats{
		RemoteShare:       float64(remote) / float64(refs),
		CoherenceMissRate: float64(coherence) / float64(refs),
	}
}

// RemoteShareOf returns only the remote-home share; see MeasureSharing.
func RemoteShareOf(tr *trace.Trace, procsPerNode int) float64 {
	return MeasureSharing(tr, procsPerNode).RemoteShare
}
