package experiments

import (
	"fmt"

	"memhier/internal/core"
	"memhier/internal/cost"
	"memhier/internal/locality"
	"memhier/internal/machine"
	"memhier/internal/tabulate"
)

// PrincipleCell is one point of the (γ, β) sweep: what the §6 classifier
// recommends versus what the eq. 6 optimizer actually picks.
type PrincipleCell struct {
	Gamma, Beta float64
	Principle   cost.Principle
	WinnerKind  machine.PlatformKind
	WinnerNet   machine.NetworkKind
	Agree       bool
}

// PrincipleMap sweeps synthetic workloads over the (γ, β) plane at a fixed
// α and asks, for each cell, whether the optimizer's $20,000 winner matches
// the platform family the §6 principle predicts. It is the quantitative
// backing for the paper's principle list: the classifier is only useful
// where it agrees with the model it summarizes.
func PrincipleMap(alpha float64, gammas, betas []float64, budget float64, opts core.Options) ([]PrincipleCell, *tabulate.Table, error) {
	if len(gammas) == 0 {
		gammas = []float64{0.15, 0.25, 0.35, 0.45}
	}
	if len(betas) == 0 {
		betas = []float64{30, 80, 150, 400, 1500}
	}
	if alpha <= 1 {
		alpha = 1.3
	}
	if budget <= 0 {
		budget = 20000
	}
	t := tabulate.New(
		fmt.Sprintf("Principle map at alpha=%.2f, $%.0f: optimizer winner (— = agrees with §6 class)", alpha, budget),
		append([]string{"gamma \\ beta"}, betaHeaders(betas)...)...)
	var cells []PrincipleCell
	for _, g := range gammas {
		row := []string{fmt.Sprintf("%.2f", g)}
		for _, b := range betas {
			wl := core.Workload{
				Name:     fmt.Sprintf("synthetic g%.2f b%.0f", g, b),
				Locality: locality.Params{Alpha: alpha, Beta: b, Gamma: g},
				// A paper-scale footprint keeps the disk level honest.
				FootprintItems: 1 << 20,
			}
			principle := cost.Recommend(wl)
			best, _, err := cost.Optimize(budget, wl, cost.DefaultCatalog(), cost.DefaultSpace(), opts)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: principle map (γ=%v, β=%v): %w", g, b, err)
			}
			cell := PrincipleCell{Gamma: g, Beta: b, Principle: principle,
				WinnerKind: best.Config.Kind, WinnerNet: best.Config.Net,
				Agree: agrees(principle, best.Config)}
			cells = append(cells, cell)
			label := shortKind(best.Config)
			if cell.Agree {
				label += " —"
			}
			row = append(row, label)
		}
		t.AddRow(row...)
	}
	return cells, t, nil
}

func betaHeaders(betas []float64) []string {
	out := make([]string, len(betas))
	for i, b := range betas {
		out[i] = fmt.Sprintf("β=%.0f", b)
	}
	return out
}

func shortKind(c machine.Config) string {
	switch c.Kind {
	case machine.SMP:
		return fmt.Sprintf("SMP%d", c.Procs)
	case machine.ClusterWS:
		return fmt.Sprintf("WSx%d/%s", c.N, netShort(c.Net))
	default:
		return fmt.Sprintf("SMP%dx%d/%s", c.Procs, c.N, netShort(c.Net))
	}
}

func netShort(n machine.NetworkKind) string {
	switch n {
	case machine.NetBus10:
		return "10"
	case machine.NetBus100:
		return "100"
	case machine.NetSwitch155:
		return "atm"
	}
	return "-"
}

// agrees maps a principle to the platform families it endorses and checks
// the winner belongs to one of them.
func agrees(p cost.Principle, winner machine.Config) bool {
	switch p {
	case cost.PrincipleManyWSSlowNet:
		return winner.Kind == machine.ClusterWS
	case cost.PrincipleFewWSFastNet:
		// "fast network of a small number of workstations" — accept any
		// workstation platform on the fastest network, or a single machine
		// (the degenerate small cluster).
		return winner.Kind == machine.ClusterWS &&
			(winner.Net == machine.NetSwitch155 || winner.N <= 2)
	case cost.PrincipleBigMemorySlowNet:
		return winner.Kind == machine.ClusterWS
	case cost.PrincipleSMP:
		return winner.Kind == machine.SMP
	case cost.PrincipleSMPOrFastSMPCluster:
		return winner.Kind == machine.SMP ||
			(winner.Kind == machine.ClusterSMP && winner.Net == machine.NetSwitch155) ||
			// the optimizer may find a fast workstation cluster whose
			// aggregate memory serves the same end; count the fabric
			(winner.Net == machine.NetSwitch155)
	}
	return false
}

// AgreementRate returns the fraction of cells where classifier and
// optimizer agree.
func AgreementRate(cells []PrincipleCell) float64 {
	if len(cells) == 0 {
		return 0
	}
	n := 0
	for _, c := range cells {
		if c.Agree {
			n++
		}
	}
	return float64(n) / float64(len(cells))
}
