package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// renderArtifactsByName renders a fresh reproduction's artifacts with the
// given scheduling (serial or all-concurrent) and returns each
// deterministic artifact's bytes by name.
func renderArtifactsByName(t *testing.T, concurrent bool) map[string][]byte {
	t.Helper()
	s := NewSuite(Options{})
	arts := s.Artifacts()
	bufs := make([]bytes.Buffer, len(arts))
	if concurrent {
		var wg sync.WaitGroup
		for i := range arts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := arts[i].Render(&bufs[i]); err != nil {
					t.Errorf("%s: %v", arts[i].Name, err)
				}
			}(i)
		}
		wg.Wait()
	} else {
		for i := range arts {
			if err := arts[i].Render(&bufs[i]); err != nil {
				t.Fatalf("%s: %v", arts[i].Name, err)
			}
		}
	}
	out := make(map[string][]byte, len(arts))
	for i, a := range arts {
		if a.Deterministic {
			out[a.Name] = bufs[i].Bytes()
		}
	}
	return out
}

// TestWriteAllParallelDeterminism is the pipeline's core guarantee: a fully
// concurrent render of every artifact produces byte-identical output to a
// serial render, artifact by artifact.
func TestWriteAllParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full reproduction renders")
	}
	serial := renderArtifactsByName(t, false)
	parallel := renderArtifactsByName(t, true)
	if len(serial) != len(parallel) {
		t.Fatalf("artifact counts differ: %d vs %d", len(serial), len(parallel))
	}
	for name, want := range serial {
		got, ok := parallel[name]
		if !ok {
			t.Errorf("parallel render missing artifact %s", name)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("artifact %s differs between serial and parallel render:\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, want, got)
		}
		if len(want) == 0 {
			t.Errorf("artifact %s rendered empty", name)
		}
	}
}

// TestWriteAllMatchesWriteAllParallel checks the user-facing entry points:
// modulo the wall-clock §5.3 timing line, `chc-repro -all` output is
// byte-identical for any -parallel value.
func TestWriteAllMatchesWriteAllParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("two full reproduction renders")
	}
	stripTiming := func(s string) string {
		i := strings.Index(s, "§5.3 cost of prediction")
		if i < 0 {
			t.Fatalf("output missing the §5.3 timing line:\n%s", s)
		}
		return s[:i]
	}
	var serial, parallel strings.Builder
	if err := WriteAll(&serial, Options{}); err != nil {
		t.Fatal(err)
	}
	var calls []string
	var mu sync.Mutex
	progress := func(name string, d time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, name)
		if err != nil {
			t.Errorf("progress reported failure for %s: %v", name, err)
		}
		if d < 0 {
			t.Errorf("progress reported negative duration for %s", name)
		}
	}
	if err := WriteAllParallel(&parallel, Options{}, 8, progress); err != nil {
		t.Fatal(err)
	}
	if stripTiming(serial.String()) != stripTiming(parallel.String()) {
		t.Error("serial and parallel WriteAll output differ")
	}
	if len(calls) != len(NewSuite(Options{}).Artifacts()) {
		t.Errorf("progress saw %d artifacts, want %d", len(calls), len(NewSuite(Options{}).Artifacts()))
	}
}
