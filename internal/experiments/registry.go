package experiments

import (
	"fmt"

	"memhier/internal/core"
	"memhier/internal/workloads"
)

// MeasuredWorkload characterizes the named instrumented Go kernel at the
// small scale and cache-line granularity — the paper's §7 "trace collection
// + trace analysis" pipeline — returning both the model workload and the
// raw characterization (for CLIs that print α, β, γ, κ alongside).
func MeasuredWorkload(name string) (core.Workload, workloads.Characterization, error) {
	k, err := workloads.ByName(name, workloads.ScaleSmall)
	if err != nil {
		return core.Workload{}, workloads.Characterization{}, err
	}
	c, err := workloads.Characterize(k, workloads.CharacterizeOptions{LineSize: 64})
	if err != nil {
		return core.Workload{}, workloads.Characterization{}, err
	}
	return ModelWorkload(c), c, nil
}

// ResolveWorkload is the one name→workload registry shared by chc-model,
// chc-advisor, and the chc-serve API: paper Table 2 parameters by default,
// or an on-the-fly characterization of the instrumented kernel when
// measured is set. Names are case-insensitive in both modes.
func ResolveWorkload(name string, measured bool) (core.Workload, error) {
	if !measured {
		return core.PaperWorkloadByName(name)
	}
	wl, _, err := MeasuredWorkload(name)
	return wl, err
}

// Artifact returns the named artifact from the suite's registry (the same
// list -all renders), so chc-repro's per-table flags and any future caller
// share one name→renderer table instead of duplicating the dispatch.
func (s *Suite) Artifact(name string) (Artifact, error) {
	arts := s.Artifacts()
	for _, a := range arts {
		if a.Name == name {
			return a, nil
		}
	}
	names := make([]string, len(arts))
	for i, a := range arts {
		names[i] = a.Name
	}
	return Artifact{}, fmt.Errorf("experiments: no artifact %q (have %v)", name, names)
}
