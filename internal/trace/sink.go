package trace

// Sink receives trace events as a workload generates them. A Trace is
// itself a Sink (it materializes the events); analyzers that only need a
// single pass (e.g. stack-distance characterization) can consume events
// without materializing the whole trace.
type Sink interface {
	Emit(cpu int, e Event)
}

// Emit implements Sink by appending the event to the stream of the given
// CPU, which must exist.
func (t *Trace) Emit(cpu int, e Event) {
	s := t.Streams[cpu]
	switch e.Kind {
	case Read:
		s.AddRead(e.Addr)
	case Write:
		s.AddWrite(e.Addr)
	case Compute:
		s.AddCompute(e.N)
	case Barrier:
		s.AddBarrier()
	}
}

// CountingSink tallies events without storing them; useful for quick γ
// estimation and for sizing runs.
type CountingSink struct {
	Reads, Writes, ComputeInstrs, Barriers uint64
}

// Emit implements Sink.
func (c *CountingSink) Emit(_ int, e Event) {
	switch e.Kind {
	case Read:
		c.Reads++
	case Write:
		c.Writes++
	case Compute:
		c.ComputeInstrs += e.N
	case Barrier:
		c.Barriers++
	}
}

// Gamma returns M/(m+M) over everything seen so far, or 0 if nothing.
func (c *CountingSink) Gamma() float64 {
	m := c.Reads + c.Writes
	total := m + c.ComputeInstrs
	if total == 0 {
		return 0
	}
	return float64(m) / float64(total)
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(cpu int, e Event)

// Emit implements Sink.
func (f FuncSink) Emit(cpu int, e Event) { f(cpu, e) }

// TeeSink fans events out to multiple sinks.
type TeeSink []Sink

// Emit implements Sink.
func (t TeeSink) Emit(cpu int, e Event) {
	for _, s := range t {
		s.Emit(cpu, e)
	}
}
